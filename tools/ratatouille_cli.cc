// The Ratatouille command-line tool: every stage of the system as a
// subcommand, so the library can be driven without writing C++.
//
//   ratatouille_cli gen-corpus  --recipes=500 --seed=7 --out=corpus.jsonl
//   ratatouille_cli preprocess  --in=corpus.jsonl --out=clean.jsonl
//   ratatouille_cli train       --model=gpt2-medium --recipes=400 \
//                               --epochs=10 --checkpoint=model.ckpt
//   ratatouille_cli generate    --model=gpt2-medium --checkpoint=model.ckpt \
//                               --recipes=400 tomato onion garlic
//   ratatouille_cli evaluate    --model=word-lstm --recipes=300 --samples=10
//   ratatouille_cli serve       --model=word-lstm --recipes=300 \
//                               --backend-port=8081 --frontend-port=8080
//
// Train/generate/evaluate/serve rebuild the deterministic pipeline from
// (--recipes, --seed, --model); generate/serve restore weights from
// --checkpoint when given, so a `train` run's model is reusable.

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ratatouille.h"
#include "data/recipe_io.h"
#include "nn/checkpoint.h"
#include "serve/chaos.h"
#include "serve/replica_supervisor.h"
#include "serve/router.h"
#include "tensor/kernels.h"
#include "util/flags.h"
#include "util/obs.h"

namespace rt {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ratatouille_cli <command> [flags]\n"
      "commands:\n"
      "  gen-corpus  --recipes=N --seed=S --out=FILE [--raw]\n"
      "  preprocess  --in=FILE --out=FILE\n"
      "  train       --model=KIND --recipes=N --epochs=E\n"
      "              [--seed=S --lr=F --seq-len=T --batch=B\n"
      "               --checkpoint=FILE --quant-checkpoint=FILE\n"
      "               --patience=P --compute-threads=N]\n"
      "  generate    --model=KIND --recipes=N [--checkpoint=FILE\n"
      "               --max-tokens=M --temperature=F --top-k=K --top-p=F\n"
      "               --greedy --beam=W --gen-seed=S --quant=MODE]\n"
      "              INGREDIENT...\n"
      "  evaluate    --model=KIND --recipes=N --epochs=E --samples=K\n"
      "              [--quant=MODE]\n"
      "  serve       --model=KIND --recipes=N --epochs=E\n"
      "              [--backend-port=P --frontend-port=P --workers=N\n"
      "               --sessions=N --queue=N --request-timeout-ms=MS\n"
      "               --compute-threads=N --max-batch=M\n"
      "               --batch-share=F --replicas=N --chaos-seed=S\n"
      "               --trace-file=FILE --profile --quant=MODE\n"
      "               --postmortem-file=FILE --postmortem-dir=DIR\n"
      "               --history-interval-ms=MS\n"
      "               --slo-interactive-p99-ms=MS --slo-batch-p99-ms=MS\n"
      "               --slo-error-ratio=F --slo-fast-burn=X]\n"
      "models: char-lstm word-lstm distilgpt2 gpt2-medium gpt-deep\n"
      "serve observability: GET /v1/trace (Chrome trace JSON),\n"
      "  GET /v1/metrics[?format=prometheus],\n"
      "  GET /v1/metrics/history?window=S[&key=K] (on-box ring),\n"
      "  GET /v1/debug/slow (tail-sampled slow traces); --trace-file\n"
      "  writes the trace on shutdown, --profile adds per-op kernel\n"
      "  counters (env: RT_TRACE=1, RT_PROFILE=1)\n"
      "  --postmortem-file=FILE arms the crash flight recorder; the\n"
      "  fleet does this per replica (--postmortem-dir=DIR, default\n"
      "  /tmp) and serves collected dumps at GET /v1/debug/postmortem\n"
      "serve --replicas=N forks N supervised backend processes behind\n"
      "  a retrying router; --chaos-seed=S (or RT_CHAOS=S) arms seeded\n"
      "  fault injection across the fleet\n"
      "serve scheduling: requests carry priority=interactive|batch\n"
      "  (EDF by deadline slack); --batch-share=F caps the fraction of\n"
      "  batch slots batch-class rows may hold (0 < F <= 1)\n"
      "quantization: --quant=int8 runs inference on per-channel int8\n"
      "  weights (fp32 activations; see docs/quantization.md);\n"
      "  --quant=fp32 is the default. train --quant-checkpoint=FILE\n"
      "  writes an additional int8-quantized (v3) checkpoint\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Parses --quant=MODE (fp32 default, int8 = quantized inference) and
/// applies it process-wide: every Linear/LSTM/tied-head matmul on the
/// raw inference paths switches onto the packed int8 kernels. Training
/// tape paths are unaffected — quantization is inference-only.
StatusOr<bool> ApplyQuantFlag(const ArgParser& args) {
  const std::string mode = args.GetString("quant", "fp32");
  if (mode != "fp32" && mode != "int8") {
    return Status::InvalidArgument(
        "unknown --quant mode '" + mode + "' (expected fp32 or int8)");
  }
  const bool int8 = mode == "int8";
  kernels::Config().use_int8 = int8;
  return int8;
}

StatusOr<PipelineOptions> PipelineOptionsFromFlags(const ArgParser& args) {
  PipelineOptions options;
  RT_ASSIGN_OR_RETURN(auto recipes, args.GetInt("recipes", 300));
  RT_ASSIGN_OR_RETURN(auto seed, args.GetInt("seed", 2022));
  options.corpus.num_recipes = static_cast<int>(recipes);
  options.corpus.seed = static_cast<uint64_t>(seed);
  RT_ASSIGN_OR_RETURN(options.model,
                      ParseModelKind(args.GetString("model", "word-lstm")));
  RT_ASSIGN_OR_RETURN(auto epochs, args.GetInt("epochs", 4));
  options.trainer.epochs = static_cast<int>(epochs);
  RT_ASSIGN_OR_RETURN(auto lr, args.GetDouble("lr", 3e-3));
  options.trainer.lr = static_cast<float>(lr);
  const bool is_gpt = options.model == ModelKind::kDistilGpt2 ||
                      options.model == ModelKind::kGpt2Medium ||
                      options.model == ModelKind::kGptDeep;
  RT_ASSIGN_OR_RETURN(auto seq,
                      args.GetInt("seq-len", is_gpt ? 176 : 48));
  options.trainer.seq_len = static_cast<int>(seq);
  RT_ASSIGN_OR_RETURN(auto batch, args.GetInt("batch", is_gpt ? 4 : 8));
  options.trainer.batch_size = static_cast<int>(batch);
  RT_ASSIGN_OR_RETURN(auto patience, args.GetInt("patience", 0));
  options.trainer.early_stop_patience = static_cast<int>(patience);
  RT_ASSIGN_OR_RETURN(auto compute_threads,
                      args.GetInt("compute-threads", 0));
  options.trainer.compute_threads = static_cast<int>(compute_threads);
  options.trainer.checkpoint_path = args.GetString("checkpoint");
  options.bpe_vocab_budget = 800;
  return options;
}

int CmdGenCorpus(const ArgParser& args) {
  const std::string out = args.GetString("out");
  if (out.empty()) return Usage();
  auto recipes = args.GetInt("recipes", 500);
  auto seed = args.GetInt("seed", 2022);
  if (!recipes.ok() || !seed.ok()) return Usage();
  GeneratorOptions options;
  options.num_recipes = static_cast<int>(*recipes);
  options.seed = static_cast<uint64_t>(*seed);
  auto corpus = RecipeDbGenerator(options).Generate();
  if (args.GetBool("raw")) {
    // Raw text dump (Fig. 1 form) instead of JSONL.
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) return Fail(Status::IoError("cannot open " + out));
    for (const auto& r : corpus) {
      std::fprintf(f, "%s\n----\n", r.ToRawString().c_str());
    }
    std::fclose(f);
  } else {
    Status s = SaveRecipesJsonl(corpus, out);
    if (!s.ok()) return Fail(s);
  }
  std::printf("wrote %zu recipes to %s\n", corpus.size(), out.c_str());
  return 0;
}

int CmdPreprocess(const ArgParser& args) {
  const std::string in = args.GetString("in");
  const std::string out = args.GetString("out");
  if (in.empty() || out.empty()) return Usage();
  auto corpus = LoadRecipesJsonl(in);
  if (!corpus.ok()) return Fail(corpus.status());
  PreprocessStats stats;
  auto clean = Preprocessor().Run(*corpus, &stats);
  Status s = SaveRecipesJsonl(clean, out);
  if (!s.ok()) return Fail(s);
  std::printf(
      "in=%d removed_incomplete=%d removed_duplicates=%d merged=%d "
      "band=%d clamped=%d out=%d\n",
      stats.input_count, stats.removed_incomplete,
      stats.removed_duplicates, stats.merged_short, stats.removed_band,
      stats.clamped, stats.output_count);
  return 0;
}

StatusOr<std::unique_ptr<Pipeline>> BuildPipeline(const ArgParser& args,
                                                  bool load_checkpoint) {
  RT_ASSIGN_OR_RETURN(PipelineOptions options,
                      PipelineOptionsFromFlags(args));
  if (load_checkpoint) options.trainer.checkpoint_path.clear();
  RT_ASSIGN_OR_RETURN(auto pipeline, Pipeline::Create(options));
  if (load_checkpoint) {
    const std::string ckpt = args.GetString("checkpoint");
    if (!ckpt.empty()) {
      RT_RETURN_IF_ERROR(
          LoadCheckpoint(pipeline->model()->module(), ckpt));
      std::printf("restored weights from %s\n", ckpt.c_str());
    }
  }
  return pipeline;
}

int CmdTrain(const ArgParser& args) {
  auto pipeline = BuildPipeline(args, /*load_checkpoint=*/false);
  if (!pipeline.ok()) return Fail(pipeline.status());
  Pipeline& p = **pipeline;
  std::printf("model=%s params=%zu vocab=%d train_recipes=%zu\n",
              p.model()->name().c_str(), p.model()->NumParams(),
              p.tokenizer().vocab_size(), p.splits().train.size());
  auto result = p.Train();
  if (!result.ok()) return Fail(result.status());
  std::printf("steps=%lld epochs=%d final_loss=%.3f val_loss=%.3f "
              "seconds=%.1f tokens/s=%.0f%s%s\n",
              result->steps, result->epochs_completed,
              result->final_train_loss, p.ValidationLoss(),
              result->seconds, result->tokens_per_second,
              result->resumed ? " (resumed)" : "",
              result->early_stopped ? " (early stop)" : "");
  const std::string quant_ckpt = args.GetString("quant-checkpoint");
  if (!quant_ckpt.empty()) {
    SaveOptions save_options;
    save_options.quantize_int8 = true;
    CheckpointMetadata meta{
        {"epochs", static_cast<double>(result->epochs_completed)}};
    Status saved = SaveCheckpoint(p.model()->module(), meta, quant_ckpt,
                                  save_options);
    if (!saved.ok()) return Fail(saved);
    std::printf("int8 quantized checkpoint written to %s\n",
                quant_ckpt.c_str());
  }
  return 0;
}

int CmdGenerate(const ArgParser& args) {
  std::vector<std::string> ingredients(args.positional().begin() + 1,
                                       args.positional().end());
  if (ingredients.empty()) {
    ingredients = {"tomato", "onion", "garlic"};
  }
  auto quant = ApplyQuantFlag(args);
  if (!quant.ok()) return Fail(quant.status());
  auto pipeline = BuildPipeline(args, /*load_checkpoint=*/true);
  if (!pipeline.ok()) return Fail(pipeline.status());
  GenerationOptions gen;
  auto max_tokens = args.GetInt("max-tokens", 200);
  auto temperature = args.GetDouble("temperature", 0.8);
  auto top_k = args.GetInt("top-k", 10);
  auto top_p = args.GetDouble("top-p", 0.0);
  auto beam = args.GetInt("beam", 0);
  auto gen_seed = args.GetInt("gen-seed", 1);
  if (!max_tokens.ok() || !temperature.ok() || !top_k.ok() ||
      !top_p.ok() || !beam.ok() || !gen_seed.ok()) {
    return Usage();
  }
  gen.max_new_tokens = static_cast<int>(*max_tokens);
  gen.sampling.temperature = static_cast<float>(*temperature);
  gen.sampling.top_k = static_cast<int>(*top_k);
  gen.sampling.top_p = static_cast<float>(*top_p);
  gen.sampling.greedy = args.GetBool("greedy");
  gen.beam_width = static_cast<int>(*beam);
  gen.seed = static_cast<uint64_t>(*gen_seed);
  auto out = (*pipeline)->GenerateFromIngredients(ingredients, gen);
  if (!out.ok()) return Fail(out.status());
  std::printf("%s\n", RecipeToJsonRecord(out->recipe).Dump().c_str());
  std::fprintf(stderr, "generated %d tokens in %.2fs\n",
               out->tokens_generated, out->seconds);
  return 0;
}

int CmdEvaluate(const ArgParser& args) {
  auto quant = ApplyQuantFlag(args);
  if (!quant.ok()) return Fail(quant.status());
  auto pipeline = BuildPipeline(args, /*load_checkpoint=*/true);
  if (!pipeline.ok()) return Fail(pipeline.status());
  Pipeline& p = **pipeline;
  if (args.GetString("checkpoint").empty()) {
    auto train = p.Train();
    if (!train.ok()) return Fail(train.status());
  }
  auto samples = args.GetInt("samples", 10);
  if (!samples.ok()) return Usage();
  GenerationOptions gen;
  gen.max_new_tokens = 220;
  gen.sampling.greedy = true;
  auto report = p.EvaluateOnTestSet(static_cast<int>(*samples), gen);
  if (!report.ok()) return Fail(report.status());
  std::printf(
      "corpus_bleu=%.3f sentence_bleu=%.3f distinct2=%.3f novelty=%.2f "
      "coverage=%.2f quantity_ok=%.2f validity=%.2f gen_seconds=%.3f\n",
      report->corpus_bleu, report->mean_sentence_bleu, report->distinct2,
      report->novelty_rate, report->mean_ingredient_coverage,
      report->mean_quantity_wellformed, report->mean_structural_validity,
      report->mean_generation_seconds);
  return 0;
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

void WaitForStop() {
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    struct timespec ts{0, 200'000'000};
    nanosleep(&ts, nullptr);
  }
}

/// Builds the per-session generation callbacks for a BackendService,
/// owning the batch scheduler / per-session model clones that back
/// them. Shared between single-process serve and the replica process.
struct ServingSessions {
  std::vector<std::unique_ptr<LanguageModel>> session_models;
  std::unique_ptr<serve::BatchScheduler> scheduler;
  BackendService::SessionFactory factory;

  // --max-batch > 1 switches serving onto the cross-session batch
  // scheduler: sessions stop owning model clones and instead submit to
  // one scheduler that coalesces concurrent decodes into batched steps.
  ServingSessions(Pipeline* p, BackendOptions* options) {
    if (options->max_batch > 1) {
      serve::BatchSchedulerOptions sched_options;
      sched_options.max_batch = options->max_batch;
      sched_options.batch_share = options->batch_share;
      scheduler = std::make_unique<serve::BatchScheduler>(p->model(),
                                                          sched_options);
      InstallBatchMetrics(scheduler.get(), options);
      factory = MakeBatchedPipelineSessionFactory(p, scheduler.get());
    } else {
      factory = MakePipelineSessionFactory(p, &session_models);
    }
  }
};

/// SLO / observability knobs shared by serve and serve-replica (and
/// forwarded through the fleet command template). False = a flag
/// failed to validate (caller answers Usage()).
bool ApplyObsFlags(const ArgParser& args, BackendOptions* options) {
  auto history_interval = args.GetInt("history-interval-ms", 10000);
  auto interactive_p99 =
      args.GetDouble("slo-interactive-p99-ms", 2000.0);
  auto batch_p99 = args.GetDouble("slo-batch-p99-ms", 30000.0);
  auto error_ratio = args.GetDouble("slo-error-ratio", 0.01);
  auto fast_burn = args.GetDouble("slo-fast-burn", 14.0);
  if (!history_interval.ok() || *history_interval < 100 ||
      !interactive_p99.ok() || *interactive_p99 <= 0.0 ||
      !batch_p99.ok() || *batch_p99 <= 0.0 || !error_ratio.ok() ||
      *error_ratio <= 0.0 || *error_ratio >= 1.0 || !fast_burn.ok() ||
      *fast_burn <= 0.0) {
    return false;
  }
  options->history_interval_ms = static_cast<int>(*history_interval);
  options->slo_interactive_p99_ms = *interactive_p99;
  options->slo_batch_p99_ms = *batch_p99;
  options->slo_error_ratio = *error_ratio;
  options->slo_fast_burn_threshold = *fast_burn;
  options->postmortem_file = args.GetString("postmortem-file");
  return true;
}

/// The chaos seed: --chaos-seed flag first, RT_CHAOS env as fallback,
/// 0 = disabled.
uint64_t ResolveChaosSeed(const ArgParser& args) {
  auto flag = args.GetInt("chaos-seed", 0);
  if (flag.ok() && *flag != 0) return static_cast<uint64_t>(*flag);
  const char* env = std::getenv("RT_CHAOS");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0;
}

/// One supervised backend process (spawned by `serve --replicas=N`;
/// not meant to be run by hand). Loads the checkpoint the parent
/// trained, serves /v1 on --backend-port, and exits on SIGTERM.
int CmdServeReplica(const ArgParser& args) {
  auto quant = ApplyQuantFlag(args);
  if (!quant.ok()) return Fail(quant.status());
  auto pipeline = BuildPipeline(args, /*load_checkpoint=*/true);
  if (!pipeline.ok()) return Fail(pipeline.status());
  Pipeline& p = **pipeline;
  if (args.GetString("checkpoint").empty()) {
    auto train = p.Train();
    if (!train.ok()) return Fail(train.status());
  }
  auto backend_port = args.GetInt("backend-port", 0);
  auto workers = args.GetInt("workers", 0);
  auto sessions = args.GetInt("sessions", 2);
  auto queue = args.GetInt("queue", 64);
  auto request_timeout_ms = args.GetInt("request-timeout-ms", 30000);
  auto compute_threads = args.GetInt("compute-threads", 0);
  auto max_batch = args.GetInt("max-batch", 1);
  auto batch_share = args.GetDouble("batch-share", 1.0);
  if (!backend_port.ok() || !workers.ok() || !sessions.ok() ||
      !queue.ok() || !request_timeout_ms.ok() || *request_timeout_ms < 1 ||
      !compute_threads.ok() || *compute_threads < 0 || !max_batch.ok() ||
      *max_batch < 1 || !batch_share.ok() || *batch_share <= 0.0 ||
      *batch_share > 1.0) {
    return Usage();
  }
  BackendOptions options;
  options.model_sessions = static_cast<int>(*sessions);
  options.http.num_workers = static_cast<int>(*workers);
  if (options.http.num_workers == 0) {
    // A supervised replica serves router traffic plus the supervisor's
    // persistent keep-alive probe connection, which pins one worker.
    // On single-core machines the hardware_concurrency default of one
    // worker would let the probe starve every real request.
    unsigned hw = std::thread::hardware_concurrency();
    options.http.num_workers = static_cast<int>(hw < 4 ? 4 : hw);
  }
  options.http.max_queue = static_cast<int>(*queue);
  options.default_timeout_ms = static_cast<int>(*request_timeout_ms);
  options.compute_threads = static_cast<int>(*compute_threads);
  options.models = {args.GetString("model", "word-lstm")};
  options.max_batch = static_cast<int>(*max_batch);
  options.batch_share = *batch_share;
  options.quantized_int8 = *quant;
  options.enable_fault_admin = args.GetBool("fault-admin");
  if (!ApplyObsFlags(args, &options)) return Usage();
  ServingSessions serving(&p, &options);
  BackendService backend(serving.factory, options);
  Status s = backend.Start(static_cast<int>(*backend_port));
  if (!s.ok()) return Fail(s);
  std::printf("replica pid=%d http://127.0.0.1:%d\n",
              static_cast<int>(getpid()), backend.port());
  std::fflush(stdout);
  WaitForStop();
  backend.Stop();
  if (serving.scheduler != nullptr) serving.scheduler->Stop();
  return 0;
}

/// `serve --replicas=N`: train once, checkpoint, then fork/exec N
/// supervised replica processes and front them with the retrying
/// router. The frontend proxies to the router, so the public contract
/// is unchanged — replicas dying and restarting underneath it stay
/// invisible to clients (at worst a 503 while the whole fleet is
/// down).
int CmdServeFleet(const ArgParser& args, int replicas,
                  uint64_t chaos_seed) {
  auto request_timeout_ms = args.GetInt("request-timeout-ms", 30000);
  auto backend_port = args.GetInt("backend-port", 0);
  auto frontend_port = args.GetInt("frontend-port", 0);
  auto quant = ApplyQuantFlag(args);
  if (!quant.ok()) return Fail(quant.status());
  if (!request_timeout_ms.ok() || *request_timeout_ms < 1 ||
      !backend_port.ok() || !frontend_port.ok()) {
    return Usage();
  }
  // Train once in the parent; replicas only load the checkpoint, so
  // fleet startup costs one training run, not N.
  std::string checkpoint = args.GetString("checkpoint");
  if (checkpoint.empty()) {
    auto pipeline = BuildPipeline(args, /*load_checkpoint=*/false);
    if (!pipeline.ok()) return Fail(pipeline.status());
    std::printf("training backing model (shared by %d replicas)...\n",
                replicas);
    auto train = (*pipeline)->Train();
    if (!train.ok()) return Fail(train.status());
    checkpoint = "/tmp/ratatouille-fleet-" +
                 std::to_string(static_cast<int>(getpid())) + ".ckpt";
    CheckpointMetadata meta{{"epochs", static_cast<double>(
                                train->epochs_completed)}};
    // With --quant=int8 the shared checkpoint is stored quantized (v3,
    // ~4x smaller): N replicas each read a quarter of the bytes and the
    // runtime re-quantization of the dequantized weights is exact.
    SaveOptions save_options;
    save_options.quantize_int8 = *quant;
    Status saved = SaveCheckpoint((*pipeline)->model()->module(), meta,
                                  checkpoint, save_options);
    if (!saved.ok()) return Fail(saved);
    // The parent's model is no longer needed; replicas own their copies.
  }

  char exe[4096];
  const ssize_t exe_len =
      readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (exe_len <= 0) {
    return Fail(Status::IoError("cannot resolve /proc/self/exe"));
  }
  exe[exe_len] = '\0';

  ReplicaSupervisorOptions fleet_options;
  fleet_options.replicas = replicas;
  fleet_options.jitter_seed =
      chaos_seed != 0 ? chaos_seed : 1;
  fleet_options.command = {
      exe,
      "serve-replica",
      "--model=" + args.GetString("model", "word-lstm"),
      "--recipes=" + std::to_string(*args.GetInt("recipes", 300)),
      "--seed=" + std::to_string(*args.GetInt("seed", 2022)),
      "--epochs=" + std::to_string(*args.GetInt("epochs", 4)),
      "--checkpoint=" + checkpoint,
      "--sessions=" + std::to_string(*args.GetInt("sessions", 2)),
      "--queue=" + std::to_string(*args.GetInt("queue", 64)),
      "--max-batch=" + std::to_string(*args.GetInt("max-batch", 1)),
      "--batch-share=" +
          std::to_string(*args.GetDouble("batch-share", 1.0)),
      "--request-timeout-ms=" + std::to_string(*request_timeout_ms),
      "--compute-threads=" +
          std::to_string(*args.GetInt("compute-threads", 0)),
      std::string("--quant=") + (*quant ? "int8" : "fp32"),
      "--history-interval-ms=" +
          std::to_string(*args.GetInt("history-interval-ms", 10000)),
      "--slo-interactive-p99-ms=" +
          std::to_string(
              *args.GetDouble("slo-interactive-p99-ms", 2000.0)),
      "--slo-batch-p99-ms=" +
          std::to_string(*args.GetDouble("slo-batch-p99-ms", 30000.0)),
      "--slo-error-ratio=" +
          std::to_string(*args.GetDouble("slo-error-ratio", 0.01)),
      "--slo-fast-burn=" +
          std::to_string(*args.GetDouble("slo-fast-burn", 14.0)),
      "--backend-port={port}",
  };
  // Each replica pre-opens a per-port postmortem file; the supervisor
  // collects (and removes) it when that replica's process dies.
  const std::string postmortem_dir =
      args.GetString("postmortem-dir", "/tmp");
  if (::mkdir(postmortem_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr,
                 "warning: cannot create --postmortem-dir=%s: %s "
                 "(flight recorder will be disabled)\n",
                 postmortem_dir.c_str(), std::strerror(errno));
  }
  const std::string postmortem_template =
      postmortem_dir + "/rt-postmortem-{port}.json";
  fleet_options.postmortem_path_template = postmortem_template;
  fleet_options.command.push_back("--postmortem-file=" +
                                  postmortem_template);
  if (chaos_seed != 0) {
    // Chaos drives faults through each replica's admin endpoint.
    fleet_options.command.push_back("--fault-admin");
  }
  ReplicaSupervisor supervisor(fleet_options);
  Status s = supervisor.Start();
  if (!s.ok()) return Fail(s);
  std::printf("waiting for %d replicas to come up...\n", replicas);
  s = supervisor.WaitHealthy(replicas, /*timeout_ms=*/180000);
  if (!s.ok()) {
    supervisor.Stop();
    return Fail(s);
  }

  RouterOptions router_options;
  router_options.default_timeout_ms = static_cast<int>(*request_timeout_ms);
  router_options.jitter_seed = chaos_seed != 0 ? chaos_seed : 1;
  // The router samples on the same cadence the replicas do, so the
  // fleet-level history ring lines up with theirs.
  router_options.history_interval_ms =
      static_cast<int>(*args.GetInt("history-interval-ms", 10000));
  Router router(&supervisor, router_options);
  s = router.Start(static_cast<int>(*backend_port));
  if (!s.ok()) {
    supervisor.Stop();
    return Fail(s);
  }
  FrontendService frontend(router.port());
  s = frontend.Start(static_cast<int>(*frontend_port));
  if (!s.ok()) {
    router.Stop();
    supervisor.Stop();
    return Fail(s);
  }
  ChaosOptions chaos_options;
  chaos_options.seed = chaos_seed;
  ChaosDriver chaos(&supervisor, chaos_options);
  chaos.Start();

  std::printf("router   http://127.0.0.1:%d  (POST /v1/generate)\n"
              "frontend http://127.0.0.1:%d  (GET /)\n"
              "replicas=%d request-timeout-ms=%d chaos-seed=%llu\n",
              router.port(), frontend.port(), replicas,
              static_cast<int>(*request_timeout_ms),
              static_cast<unsigned long long>(chaos_seed));
  for (const ReplicaStatus& replica : supervisor.Snapshot()) {
    std::printf("replica %d pid=%lld http://127.0.0.1:%d\n",
                replica.index, replica.pid, replica.port);
  }
  std::printf("Ctrl-C to stop\n");
  std::fflush(stdout);
  WaitForStop();
  chaos.Stop();
  frontend.Stop();
  router.Stop();
  supervisor.Stop();
  const std::string trace_file = args.GetString("trace-file");
  if (!trace_file.empty()) {
    Status exported =
        obs::TraceRecorder::Instance().ExportToFile(trace_file);
    if (!exported.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   exported.ToString().c_str());
    }
  }
  return 0;
}

int CmdServe(const ArgParser& args) {
  auto replicas = args.GetInt("replicas", 1);
  if (!replicas.ok() || *replicas < 1) return Usage();
  const uint64_t chaos_seed = ResolveChaosSeed(args);
  if (*replicas > 1) {
    return CmdServeFleet(args, static_cast<int>(*replicas), chaos_seed);
  }
  if (chaos_seed != 0) {
    std::fprintf(stderr,
                 "warning: --chaos-seed needs --replicas>=2; ignored\n");
  }
  auto quant = ApplyQuantFlag(args);
  if (!quant.ok()) return Fail(quant.status());
  auto pipeline = BuildPipeline(args, /*load_checkpoint=*/true);
  if (!pipeline.ok()) return Fail(pipeline.status());
  Pipeline& p = **pipeline;
  if (args.GetString("checkpoint").empty()) {
    std::printf("training backing model...\n");
    auto train = p.Train();
    if (!train.ok()) return Fail(train.status());
  }
  auto backend_port = args.GetInt("backend-port", 0);
  auto frontend_port = args.GetInt("frontend-port", 0);
  auto workers = args.GetInt("workers", 0);
  auto sessions = args.GetInt("sessions", 2);
  auto queue = args.GetInt("queue", 64);
  auto request_timeout_ms = args.GetInt("request-timeout-ms", 30000);
  auto compute_threads = args.GetInt("compute-threads", 0);
  auto max_batch = args.GetInt("max-batch", 1);
  auto batch_share = args.GetDouble("batch-share", 1.0);
  const std::string trace_file = args.GetString("trace-file");
  const bool profile = args.GetBool("profile");
  if (!backend_port.ok() || !frontend_port.ok() || !workers.ok() ||
      !sessions.ok() || !queue.ok() || !request_timeout_ms.ok() ||
      *request_timeout_ms < 1 || !compute_threads.ok() ||
      *compute_threads < 0 || !max_batch.ok() || *max_batch < 1 ||
      !batch_share.ok() || *batch_share <= 0.0 || *batch_share > 1.0) {
    return Usage();
  }
  if (profile) obs::KernelProfiler::Instance().SetEnabled(true);

  BackendOptions options;
  options.model_sessions = static_cast<int>(*sessions);
  options.http.num_workers = static_cast<int>(*workers);
  options.http.max_queue = static_cast<int>(*queue);
  options.default_timeout_ms = static_cast<int>(*request_timeout_ms);
  options.compute_threads = static_cast<int>(*compute_threads);
  options.models = {args.GetString("model", "word-lstm")};
  options.max_batch = static_cast<int>(*max_batch);
  options.batch_share = *batch_share;
  options.quantized_int8 = *quant;
  if (!ApplyObsFlags(args, &options)) return Usage();

  ServingSessions serving(&p, &options);
  BackendService backend(serving.factory, options);
  Status s = backend.Start(static_cast<int>(*backend_port));
  if (!s.ok()) return Fail(s);
  FrontendService frontend(backend.port());
  s = frontend.Start(static_cast<int>(*frontend_port));
  if (!s.ok()) return Fail(s);
  std::printf("backend  http://127.0.0.1:%d  (POST /v1/generate)\n"
              "frontend http://127.0.0.1:%d  (GET /)\n"
              "workers=%d sessions=%d queue=%d request-timeout-ms=%d "
              "max-batch=%d\n"
              "Ctrl-C to stop\n",
              backend.port(), frontend.port(),
              backend.server().num_workers(), backend.model_sessions(),
              backend.server().options().max_queue,
              static_cast<int>(*request_timeout_ms), backend.max_batch());
  WaitForStop();
  frontend.Stop();
  backend.Stop();
  if (serving.scheduler != nullptr) serving.scheduler->Stop();
  if (!trace_file.empty()) {
    Status exported = obs::TraceRecorder::Instance().ExportToFile(trace_file);
    if (!exported.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   exported.ToString().c_str());
    } else {
      std::printf("trace written to %s (load in Perfetto / "
                  "chrome://tracing)\n",
                  trace_file.c_str());
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.positional().empty()) return Usage();
  const std::string& command = args.positional()[0];
  if (command == "gen-corpus") return CmdGenCorpus(args);
  if (command == "preprocess") return CmdPreprocess(args);
  if (command == "train") return CmdTrain(args);
  if (command == "generate") return CmdGenerate(args);
  if (command == "evaluate") return CmdEvaluate(args);
  if (command == "serve") return CmdServe(args);
  if (command == "serve-replica") return CmdServeReplica(args);
  return Usage();
}

}  // namespace
}  // namespace rt

int main(int argc, char** argv) { return rt::Main(argc, argv); }
