#include "bench/bench_util.h"

#include <cstdlib>
#include <string>

namespace rt::bench {

double ScaleFactor() {
  const char* env = std::getenv("RT_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const std::string s = env;
  if (s == "quick") return 0.3;
  if (s == "full") return 2.0;
  if (s == "default" || s.empty()) return 1.0;
  // Numeric override, e.g. RT_BENCH_SCALE=0.5.
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end != env && v > 0.0) return v;
  return 1.0;
}

int Scaled(int base, int min_value) {
  const int v = static_cast<int>(base * ScaleFactor());
  return v < min_value ? min_value : v;
}

GeneratorOptions StandardCorpus(int num_recipes, uint64_t seed) {
  GeneratorOptions corpus;
  corpus.num_recipes = num_recipes;
  corpus.seed = seed;
  corpus.incomplete_fraction = 0.04;
  corpus.duplicate_fraction = 0.05;
  corpus.overlong_fraction = 0.02;
  corpus.short_fraction = 0.04;
  return corpus;
}

StatusOr<TrainEvalOutcome> RunTrainEval(const TrainEvalSpec& spec) {
  PipelineOptions options = spec.pipeline;
  options.model = spec.kind;
  RT_ASSIGN_OR_RETURN(auto pipeline, Pipeline::Create(options));
  TrainEvalOutcome outcome;
  outcome.model_name = pipeline->model()->name();
  outcome.params = pipeline->model()->NumParams();
  RT_ASSIGN_OR_RETURN(outcome.train, pipeline->Train());
  outcome.val_loss = pipeline->ValidationLoss();
  RT_ASSIGN_OR_RETURN(
      outcome.report,
      pipeline->EvaluateOnTestSet(spec.eval_samples, spec.generation));
  return outcome;
}

TrainEvalSpec Table1Spec(ModelKind kind, int num_recipes) {
  TrainEvalSpec spec;
  spec.kind = kind;
  spec.pipeline.corpus = StandardCorpus(num_recipes);
  spec.pipeline.bpe_vocab_budget = 800;
  spec.pipeline.trainer.batch_size = 8;
  spec.pipeline.trainer.grad_clip = 1.0f;
  spec.pipeline.trainer.schedule = ScheduleKind::kWarmupCosine;
  spec.pipeline.trainer.warmup_steps = 20;
  spec.eval_samples = Scaled(20, 5);
  spec.generation.max_new_tokens = 220;
  spec.generation.sampling.greedy = true;
  switch (kind) {
    case ModelKind::kCharLstm:
      // Character streams are ~5x longer; fewer epochs, longer windows.
      spec.pipeline.trainer.epochs = Scaled(3);
      spec.pipeline.trainer.seq_len = 96;
      spec.pipeline.trainer.lr = 3e-3f;
      spec.generation.max_new_tokens = 900;
      break;
    case ModelKind::kWordLstm:
      spec.pipeline.trainer.epochs = Scaled(14);
      spec.pipeline.trainer.seq_len = 48;
      spec.pipeline.trainer.lr = 3e-3f;
      break;
    case ModelKind::kDistilGpt2:
      // Recipe-aligned windows: seq_len covers a whole tagged recipe.
      spec.pipeline.trainer.epochs = Scaled(14);
      spec.pipeline.trainer.seq_len = 176;
      spec.pipeline.trainer.batch_size = 4;
      spec.pipeline.trainer.lr = 3e-3f;
      spec.generation.max_new_tokens = 200;
      break;
    case ModelKind::kGpt2Medium:
    case ModelKind::kGptDeep:
      spec.pipeline.trainer.epochs = Scaled(14);
      spec.pipeline.trainer.seq_len = 176;
      spec.pipeline.trainer.batch_size = 4;
      spec.pipeline.trainer.lr = 2e-3f;
      spec.generation.max_new_tokens = 200;
      break;
  }
  return spec;
}

}  // namespace rt::bench
