// Int8 quantization parity benchmark. Emits BENCH_quant.json — the
// file the CI quant-parity job feeds to scripts/check_bench.py --quant=.
//
// Acceptance story for the int8 inference path (see docs/quantization.md):
// the Table-I BLEU harness is run twice on the SAME trained model and
// the SAME held-out prompts — once with the fp32 kernels, once with
// --quant=int8 semantics (kernels::Config().use_int8) — for a GPT-2
// transformer and a word-level LSTM. Quantization is weight-only
// per-channel symmetric int8 with fp32 activations, so generation BLEU
// must stay within a small relative margin of fp32; check_bench.py
// gates (bleu_fp32 - bleu_int8) / bleu_fp32 <= 2%. Because both
// numbers come from one run on one machine, the gate never flakes on
// runner-class differences.
//
// The same file carries the m=1 decode GEMV timing pair (packed fp32
// vs packed int8) at the GPT-2 medium MLP up-projection shape, so the
// quant job also enforces the >= 2x kernel speedup that justifies the
// int8 path's existence end to end.
//
// Env: RT_BENCH_SCALE=quick|default|full scales corpus/epochs.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/ratatouille.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "tensor/thread_pool.h"

namespace rt {
namespace {

using Clock = std::chrono::steady_clock;

double TimeNs(const std::function<void()>& fn, double min_ms) {
  fn();  // warmup: page in operands, pack panels
  long long iters = 0;
  auto start = Clock::now();
  double elapsed_ns = 0.0;
  do {
    fn();
    ++iters;
    elapsed_ns = std::chrono::duration<double, std::nano>(Clock::now() -
                                                          start)
                     .count();
  } while (elapsed_ns < min_ms * 1e6);
  return elapsed_ns / static_cast<double>(iters);
}

struct ParityRow {
  std::string op;
  double bleu_fp32 = 0.0;
  double bleu_int8 = 0.0;
};

/// Trains one Table-I model, then evaluates BLEU twice on the identical
/// test prompts: fp32 kernels, then int8 kernels on the same weights.
StatusOr<ParityRow> RunParity(ModelKind kind, const std::string& op,
                              int num_recipes) {
  bench::TrainEvalSpec spec = bench::Table1Spec(kind, num_recipes);
  PipelineOptions options = spec.pipeline;
  options.model = kind;
  RT_ASSIGN_OR_RETURN(auto pipeline, Pipeline::Create(options));
  std::printf("[quant] training %s ...\n", ModelKindName(kind));
  std::fflush(stdout);
  RT_ASSIGN_OR_RETURN(auto train, pipeline->Train());
  (void)train;

  ParityRow row;
  row.op = op;
  kernels::Config().use_int8 = false;
  RT_ASSIGN_OR_RETURN(
      auto fp32_report,
      pipeline->EvaluateOnTestSet(spec.eval_samples, spec.generation));
  row.bleu_fp32 = fp32_report.corpus_bleu;
  kernels::Config().use_int8 = true;
  auto int8_report =
      pipeline->EvaluateOnTestSet(spec.eval_samples, spec.generation);
  kernels::Config().use_int8 = false;
  RT_RETURN_IF_ERROR(int8_report.status());
  row.bleu_int8 = int8_report->corpus_bleu;
  std::printf("[quant] %s BLEU fp32=%.4f int8=%.4f (delta %+.2f%%)\n",
              ModelKindName(kind), row.bleu_fp32, row.bleu_int8,
              row.bleu_fp32 > 0.0
                  ? 100.0 * (row.bleu_int8 - row.bleu_fp32) / row.bleu_fp32
                  : 0.0);
  return row;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_quant.json";
  for (int i = 1; i < argc; ++i) out_path = argv[i];

  const int num_recipes = bench::Scaled(300, 120);
  std::printf("[quant] corpus=%d recipes, scale=%.2f\n", num_recipes,
              bench::ScaleFactor());

  std::vector<ParityRow> rows;
  for (const auto& [kind, op] :
       std::vector<std::pair<ModelKind, std::string>>{
           {ModelKind::kGpt2Medium, "quant_bleu_gpt2"},
           {ModelKind::kWordLstm, "quant_bleu_lstm"}}) {
    auto row = RunParity(kind, op, num_recipes);
    if (!row.ok()) {
      std::fprintf(stderr, "[quant] %s failed: %s\n", op.c_str(),
                   row.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*row);
  }

  // m=1 decode GEMV pair at the GPT-2 medium MLP up-projection shape
  // (768 -> 3072); same shape as the gemv_mlp_* rows in bench_kernels.
  ThreadPool::SetGlobalThreads(1);
  const int gk = 768, gn = 3072;
  Rng rng(29);
  Tensor a = Tensor::Normal({1, gk}, 1.0f, &rng);
  Tensor b = Tensor::Normal({gk, gn}, 1.0f, &rng);
  Tensor c({1, gn});
  kernels::PackedB packed_f32;
  packed_f32.Pack(gk, gn, b.data());
  kernels::PackedBInt8 packed_i8;
  packed_i8.Pack(gk, gn, b.data());
  const double ns_fp32 = TimeNs(
      [&] { kernels::GemmPacked(1, a.data(), packed_f32, c.data(), false); },
      200.0);
  const double ns_int8 = TimeNs(
      [&] {
        kernels::GemmPackedInt8(1, a.data(), packed_i8, c.data(), false);
      },
      200.0);
  std::printf("[quant] m=1 GEMV %dx%d: fp32 %.0f ns, int8 %.0f ns "
              "(speedup %.2fx)\n",
              gk, gn, ns_fp32, ns_int8, ns_fp32 / ns_int8);

  std::string json = "{\n\"results\": [\n";
  char buf[256];
  for (const auto& row : rows) {
    std::snprintf(buf, sizeof(buf),
                  "  {\"op\": \"%s\", \"threads\": 1, "
                  "\"bleu_fp32\": %.6f, \"bleu_int8\": %.6f},\n",
                  row.op.c_str(), row.bleu_fp32, row.bleu_int8);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  {\"op\": \"quant_gemv_m1\", \"shape\": \"1x%dx%d\", "
                "\"threads\": 1, \"ns_fp32\": %.1f, \"ns_int8\": %.1f}\n",
                gn, gk, ns_fp32, ns_int8);
  json += buf;
  json += "]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace rt

int main(int argc, char** argv) { return rt::Main(argc, argv); }
