// Experiment E3 — reproduces Fig. 3's dataset-shaping decisions: the
// recipe size distribution, its ~2-sigma (95.46 %) coverage used to pick
// the length band, and the short-recipe merging. Prints the histogram as
// an ASCII figure plus the coverage numbers.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/strings.h"

int main() {
  const int n = rt::bench::Scaled(6000, 600);
  rt::RecipeDbGenerator generator(rt::bench::StandardCorpus(n));
  auto corpus = generator.Generate();

  std::vector<size_t> lengths;
  lengths.reserve(corpus.size());
  for (const auto& r : corpus) lengths.push_back(r.TaggedLength());
  rt::LengthStats stats = rt::ComputeLengthStats(lengths);

  std::printf("FIG. 3 - RECIPE SIZE DISTRIBUTION (tagged chars, %zu "
              "recipes)\n",
              lengths.size());
  auto hist = rt::BuildLengthHistogram(lengths, 100);
  size_t peak = 1;
  for (size_t c : hist.counts) peak = std::max(peak, c);
  for (size_t i = 0; i < hist.counts.size(); ++i) {
    const int bar = static_cast<int>(56.0 * hist.counts[i] / peak);
    std::printf("%5zu | %-56s %zu\n", i * hist.bin_width,
                std::string(bar, '#').c_str(), hist.counts[i]);
  }

  const double cov1 = stats.CoverageWithin(1.0, lengths);
  const double cov2 = stats.CoverageWithin(2.0, lengths);
  const double cov3 = stats.CoverageWithin(3.0, lengths);
  std::printf("\nmean=%.1f stddev=%.1f min=%zu max=%zu\n", stats.mean,
              stats.stddev, stats.min_len, stats.max_len);
  std::printf("coverage within 1 sigma: %6.2f%%\n", 100 * cov1);
  std::printf("coverage within 2 sigma: %6.2f%%  (paper: ~95.46%% kept)\n",
              100 * cov2);
  std::printf("coverage within 3 sigma: %6.2f%%\n", 100 * cov3);

  // Short-tail merging report.
  rt::PreprocessStats pstats;
  rt::Preprocessor().Run(corpus, &pstats);
  std::printf("short recipes merged toward the mean: %d\n",
              pstats.merged_short);
  std::printf("post-preprocessing mean=%.1f stddev=%.1f (tighter "
              "distribution)\n",
              pstats.after.mean, pstats.after.stddev);

  const bool shape_ok = cov2 >= 0.90 && cov2 <= 1.0 && cov2 > cov1 &&
                        cov3 >= cov2 && pstats.merged_short > 0 &&
                        pstats.after.stddev < stats.stddev;
  std::printf("shape check: ~2-sigma covers >= 90%% and preprocessing "
              "tightens the distribution ... %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
