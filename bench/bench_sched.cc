// Scheduling-policy overload benchmark. Emits BENCH_sched.json: the
// batch scheduler driven at 2x capacity with a 50/50 interactive/batch
// mix, once under FIFO (the pre-EDF baseline, policy=kFifo) and once
// under EDF with --batch-share=0.5 — same workload, same model, same
// seeds. Per class and policy it records request-latency p50/p99 and
// decoded-token throughput; scripts/check_bench.py gates the headline
// claim (EDF interactive p99 <= 0.7x the FIFO in-run baseline) and
// prints the batch-throughput cost alongside.
//
// The driver talks to BatchScheduler directly — no HTTP — so the
// numbers isolate the scheduling policy from socket noise.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "models/lstm_model.h"
#include "serve/batch_scheduler.h"

namespace rt {
namespace {

using Clock = std::chrono::steady_clock;

/// One completed request's latency (ms) and decoded token count.
struct Sample {
  double latency_ms = 0.0;
  int tokens = 0;
};

struct ClassStats {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double tokens_per_sec = 0.0;
  int requests = 0;
};

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const size_t idx = static_cast<size_t>(
      std::min<double>(sorted.size() - 1.0,
                       q * static_cast<double>(sorted.size())));
  return sorted[idx];
}

ClassStats Summarize(const std::vector<Sample>& samples,
                     double elapsed_s) {
  ClassStats stats;
  stats.requests = static_cast<int>(samples.size());
  std::vector<double> latencies;
  long long tokens = 0;
  for (const Sample& sample : samples) {
    latencies.push_back(sample.latency_ms);
    tokens += sample.tokens;
  }
  stats.p50_ms = Percentile(latencies, 0.50);
  stats.p99_ms = Percentile(latencies, 0.99);
  stats.tokens_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(tokens) / elapsed_s : 0.0;
  return stats;
}

LstmConfig BenchModel() {
  LstmConfig config;
  config.vocab_size = 53;
  config.embed_dim = 16;
  config.hidden_dim = 32;
  config.num_layers = 2;
  config.init_seed = 11;
  return config;
}

/// Runs the 2x-overload mixed workload against one scheduler policy.
/// `submitters` threads per class run closed-loop (capacity is
/// max_batch=4 rows, so 8 concurrent submitters hold a 2x backlog);
/// interactive rows are short with a real deadline, batch rows are
/// long bulk decodes without one — the shape the EDF tentpole is
/// about.
void RunPolicy(serve::BatchSchedPolicy policy, double batch_share,
               int requests_per_submitter, ClassStats* interactive,
               ClassStats* batch) {
  LstmLm model(BenchModel());
  serve::BatchSchedulerOptions options;
  options.max_batch = 4;
  options.policy = policy;
  options.batch_share = batch_share;
  serve::BatchScheduler scheduler(&model, options);

  const int submitters = 4;  // per class; 8 total = 2x max_batch
  std::mutex mutex;
  std::vector<Sample> interactive_samples;
  std::vector<Sample> batch_samples;
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < submitters * 2; ++t) {
    threads.emplace_back([&, t] {
      const bool is_batch = t % 2 == 1;
      std::vector<Sample> local;
      for (int i = 0; i < requests_per_submitter; ++i) {
        GenerationOptions gen;
        gen.sampling.greedy = true;
        gen.seed = static_cast<uint64_t>(t * 1000 + i);
        if (is_batch) {
          gen.sched_class = 1;
          gen.max_new_tokens = 96;
        } else {
          gen.max_new_tokens = 8;
          gen.deadline = Deadline::AfterMillis(2000);
        }
        const std::vector<int> prompt = {1 + (t % 5), 7, 2 + (i % 11)};
        const auto sent = Clock::now();
        GenerationResult result = scheduler.Generate(prompt, gen);
        Sample sample;
        sample.latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - sent)
                .count();
        sample.tokens = static_cast<int>(result.ids.size());
        local.push_back(sample);
      }
      std::lock_guard<std::mutex> lock(mutex);
      auto& sink = is_batch ? batch_samples : interactive_samples;
      sink.insert(sink.end(), local.begin(), local.end());
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  scheduler.Stop();
  *interactive = Summarize(interactive_samples, elapsed_s);
  *batch = Summarize(batch_samples, elapsed_s);
}

void AppendJson(std::string* out, const char* op, const ClassStats& stats,
                bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  {\"op\": \"%s\", \"threads\": 1, \"requests\": %d, "
                "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"tokens_per_sec\": %.1f}%s\n",
                op, stats.requests, stats.p50_ms, stats.p99_ms,
                stats.tokens_per_sec, last ? "" : ",");
  *out += buf;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_sched.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const int requests_per_submitter = smoke ? 30 : 100;

  ClassStats fifo_interactive, fifo_batch;
  RunPolicy(serve::BatchSchedPolicy::kFifo, /*batch_share=*/1.0,
            requests_per_submitter, &fifo_interactive, &fifo_batch);
  ClassStats edf_interactive, edf_batch;
  RunPolicy(serve::BatchSchedPolicy::kEdf, /*batch_share=*/0.5,
            requests_per_submitter, &edf_interactive, &edf_batch);

  std::string json = "{\n\"results\": [\n";
  AppendJson(&json, "sched_fifo_interactive", fifo_interactive, false);
  AppendJson(&json, "sched_fifo_batch", fifo_batch, false);
  AppendJson(&json, "sched_edf_interactive", edf_interactive, false);
  AppendJson(&json, "sched_edf_batch", edf_batch, true);
  json += "]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);

  std::printf("interactive p99: fifo %.2f ms -> edf %.2f ms (%.2fx)\n"
              "batch tokens/sec: fifo %.1f -> edf %.1f (%.2fx)\n"
              "wrote %s\n",
              fifo_interactive.p99_ms, edf_interactive.p99_ms,
              fifo_interactive.p99_ms > 0.0
                  ? edf_interactive.p99_ms / fifo_interactive.p99_ms
                  : 0.0,
              fifo_batch.tokens_per_sec, edf_batch.tokens_per_sec,
              fifo_batch.tokens_per_sec > 0.0
                  ? edf_batch.tokens_per_sec / fifo_batch.tokens_per_sec
                  : 0.0,
              out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace rt

int main(int argc, char** argv) { return rt::Main(argc, argv); }
