// Experiment E5 — the paper's Sec. II claim that its system generates "a
// new recipe within lesser time" than RecipeGPT-style pipelines. The
// mechanism behind such gains is incremental decoding: we compare
// per-recipe generation latency of
//   (a) GPT-2 with a KV cache (our serving path),
//   (b) GPT-2 naively re-encoding the whole sequence per token
//       (the RecipeGPT-era decoding loop), and
//   (c) the LSTM baselines (recurrent state, naturally incremental),
// across output lengths. Shape: KV cache beats naive re-encode with a
// growing gap in sequence length; all models are interactive (< seconds).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "models/gpt2_model.h"
#include "models/lstm_model.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

double MedianSeconds(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Times GenerateIds over `reps` runs (prompt of 8 tokens).
double TimeGeneration(rt::LanguageModel* model, int new_tokens, int reps) {
  std::vector<int> prompt;
  for (int i = 0; i < 8; ++i) prompt.push_back(2 + i % 5);
  rt::GenerationOptions opts;
  opts.max_new_tokens = new_tokens;
  opts.sampling.temperature = 1.0f;
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    opts.seed = 100 + r;
    rt::Timer timer;
    auto out = model->GenerateIds(prompt, opts);
    times.push_back(timer.ElapsedSeconds());
  }
  return MedianSeconds(times);
}

}  // namespace

int main() {
  const int vocab = 480;
  const int reps = rt::bench::Scaled(5, 3);

  rt::Gpt2Config cfg = rt::Gpt2Config::Medium(vocab);
  auto cached = std::make_unique<rt::Gpt2Lm>(cfg);
  auto naive = std::make_unique<rt::Gpt2Lm>(cfg);
  cached->set_use_kv_cache(true);
  naive->set_use_kv_cache(false);

  rt::LstmConfig word_cfg;
  word_cfg.vocab_size = vocab;
  word_cfg.embed_dim = 64;
  word_cfg.hidden_dim = 128;
  word_cfg.name = "word-lstm";
  auto lstm = std::make_unique<rt::LstmLm>(word_cfg);

  rt::TextTable table({"new tokens", "gpt2 KV-cache (ms)",
                       "gpt2 re-encode (ms)", "speedup",
                       "word-lstm (ms)"});
  bool cache_always_wins = true;
  double first_speedup = 0.0, last_speedup = 0.0;
  const std::vector<int> lengths{32, 64, 128, 224};
  for (int len : lengths) {
    const double t_cache = TimeGeneration(cached.get(), len, reps);
    const double t_naive = TimeGeneration(naive.get(), len, reps);
    const double t_lstm = TimeGeneration(lstm.get(), len, reps);
    const double speedup = t_naive / t_cache;
    if (first_speedup == 0.0) first_speedup = speedup;
    last_speedup = speedup;
    cache_always_wins = cache_always_wins && t_cache < t_naive;
    table.AddRow({std::to_string(len),
                  rt::FormatDouble(t_cache * 1e3, 1),
                  rt::FormatDouble(t_naive * 1e3, 1),
                  rt::FormatDouble(speedup, 1) + "x",
                  rt::FormatDouble(t_lstm * 1e3, 1)});
  }

  std::printf("GENERATION LATENCY PER RECIPE (untrained weights; latency "
              "depends only on architecture)\n%s",
              table.Render().c_str());
  const bool gap_grows = last_speedup > first_speedup;
  std::printf("shape check: KV cache always faster and the gap grows "
              "with length ... %s\n",
              cache_always_wins && gap_grows ? "HOLDS" : "VIOLATED");
  return cache_always_wins && gap_grows ? 0 : 2;
}
