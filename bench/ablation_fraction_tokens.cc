// Ablation A2 — the fraction special tokens (paper Sec. II: "used
// special tokens to account the fractions and numbers"). With the
// tokens, "1/2" is one unit; without, it splits into "1 / 2" and the
// model must re-learn to compose valid fractions. We compare quantity
// well-formedness of generated ingredient lines and token-stream length.

#include <cstdio>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

struct ArmResult {
  size_t stream_tokens = 0;
  double bleu = 0.0;
  double quantity_ok = 0.0;
};

rt::StatusOr<ArmResult> RunArm(bool disable_fractions, int recipes,
                               int epochs, int samples) {
  rt::PipelineOptions options;
  options.corpus = rt::bench::StandardCorpus(recipes);
  options.model = rt::ModelKind::kWordLstm;  // word-level: fractions matter
  options.disable_fraction_tokens = disable_fractions;
  options.trainer.epochs = epochs;
  options.trainer.batch_size = 8;
  options.trainer.seq_len = 48;
  options.trainer.lr = 3e-3f;
  RT_ASSIGN_OR_RETURN(auto pipeline, rt::Pipeline::Create(options));
  ArmResult arm;
  arm.stream_tokens = pipeline->train_stream().size();
  RT_ASSIGN_OR_RETURN(auto train, pipeline->Train());
  (void)train;
  rt::GenerationOptions gen;
  gen.max_new_tokens = 200;
  gen.sampling.greedy = true;
  RT_ASSIGN_OR_RETURN(auto report,
                      pipeline->EvaluateOnTestSet(samples, gen));
  arm.bleu = report.corpus_bleu;
  arm.quantity_ok = report.mean_quantity_wellformed;
  return arm;
}

}  // namespace

int main() {
  using rt::bench::Scaled;
  const int recipes = Scaled(400, 120);
  const int epochs = Scaled(8, 2);
  const int samples = Scaled(15, 5);

  auto with = RunArm(/*disable_fractions=*/false, recipes, epochs, samples);
  auto without = RunArm(/*disable_fractions=*/true, recipes, epochs,
                        samples);
  if (!with.ok() || !without.ok()) {
    std::fprintf(stderr, "ablation arm failed\n");
    return 1;
  }

  rt::TextTable table({"arm", "train tokens", "corpus BLEU",
                       "quantity well-formed"});
  table.AddRow({"fraction tokens ON",
                rt::FormatWithCommas(
                    static_cast<long long>(with->stream_tokens)),
                rt::FormatDouble(with->bleu, 3),
                rt::FormatDouble(with->quantity_ok, 3)});
  table.AddRow({"fraction tokens OFF",
                rt::FormatWithCommas(
                    static_cast<long long>(without->stream_tokens)),
                rt::FormatDouble(without->bleu, 3),
                rt::FormatDouble(without->quantity_ok, 3)});
  std::printf("ABLATION A2 - FRACTION SPECIAL TOKENS (word-LSTM, %d "
              "recipes, %d epochs)\n%s",
              recipes, epochs, table.Render().c_str());

  // Shape: the special tokens shorten the stream and do not hurt
  // quantity fidelity (typically they help).
  const bool shape_ok =
      with->stream_tokens < without->stream_tokens &&
      with->quantity_ok + 1e-9 >= without->quantity_ok * 0.95;
  std::printf("shape check: fraction tokens compress the stream and "
              "preserve/improve quantity fidelity ... %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
