// Ablation A3 — tokenizer granularity at a fixed model and context
// budget: the same GPT-2 backbone trained on char, word and BPE token
// streams, one recipe per 176-token window. At that fixed window a
// char-level view covers only ~20 % of each recipe while word/BPE views
// cover all of it — exactly the economy that makes subword units the
// standard choice. Shape: char-level underperforms word/BPE.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "data/dataset.h"
#include "eval/bleu.h"
#include "models/gpt2_model.h"
#include "models/trainer.h"
#include "text/bpe_tokenizer.h"
#include "text/char_tokenizer.h"
#include "text/special_tokens.h"
#include "text/word_tokenizer.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

struct Arm {
  std::string name;
  std::unique_ptr<rt::Tokenizer> tokenizer;
};

}  // namespace

int main() {
  using rt::bench::Scaled;
  const int recipes = Scaled(350, 100);
  const int epochs = Scaled(8, 2);
  const int samples = Scaled(10, 4);
  const int seq_len = 176;

  // Shared corpus and splits.
  rt::RecipeDbGenerator generator(rt::bench::StandardCorpus(recipes));
  rt::PreprocessStats stats;
  auto clean = rt::Preprocessor().Run(generator.Generate(), &stats);
  auto splits = rt::SplitDataset(clean, 0.05, 0.15, 17);
  std::vector<std::string> train_docs;
  for (const auto& r : splits.train) {
    train_docs.push_back(r.ToTaggedString());
  }

  std::vector<Arm> arms;
  arms.push_back({"char", std::make_unique<rt::CharTokenizer>(
                              rt::CharTokenizer::Build(train_docs))});
  arms.push_back({"word", std::make_unique<rt::WordTokenizer>(
                              rt::WordTokenizer::Build(train_docs))});
  arms.push_back({"bpe-800", std::make_unique<rt::BpeTokenizer>(
                                 rt::BpeTokenizer::Train(train_docs, 800))});

  rt::TextTable table({"tokenizer", "vocab", "window coverage",
                       "corpus BLEU", "val loss"});
  double char_bleu = 0.0, word_bleu = 0.0, bpe_bleu = 0.0;
  for (auto& arm : arms) {
    rt::Gpt2Config cfg;
    cfg.vocab_size = arm.tokenizer->vocab_size();
    cfg.dim = 96;
    cfg.num_layers = 3;
    cfg.num_heads = 4;
    cfg.max_seq_len = 256;
    cfg.name = "gpt2-" + arm.name;
    rt::Gpt2Lm model(cfg);

    // One recipe per window for every arm (the GPT-2 training layout);
    // the char view simply fits far less of each recipe in the window.
    auto train_windows = rt::BuildRecipeWindows(
        *arm.tokenizer, splits.train, seq_len, arm.tokenizer->pad_id());
    auto val_windows = rt::BuildRecipeWindows(
        *arm.tokenizer, splits.val, seq_len, arm.tokenizer->pad_id());
    // Window coverage: fraction of each recipe's tokens inside the window.
    double covered = 0.0;
    for (size_t i = 0; i < splits.train.size(); ++i) {
      const size_t full =
          arm.tokenizer->Encode(splits.train[i].ToTaggedString()).size();
      covered +=
          full == 0
              ? 1.0
              : std::min<double>(1.0, static_cast<double>(seq_len) /
                                          static_cast<double>(full));
    }
    covered /= splits.train.size();

    rt::TrainerOptions topts;
    topts.epochs = epochs;
    topts.batch_size = 4;
    topts.seq_len = seq_len;
    topts.lr = 2e-3f;
    topts.schedule = rt::ScheduleKind::kWarmupCosine;
    topts.warmup_steps = 20;
    rt::Trainer trainer(&model, topts);
    rt::TokenSource train_src, val_src;
    train_src.windows = &train_windows;
    train_src.pad_id = arm.tokenizer->pad_id();
    val_src.windows = &val_windows;
    val_src.pad_id = arm.tokenizer->pad_id();
    auto result = trainer.Train(train_src, &val_src);
    if (!result.ok()) {
      std::fprintf(stderr, "train failed for %s\n", arm.name.c_str());
      return 1;
    }

    const int stop = arm.tokenizer->vocab().GetId(rt::kRecipeEnd);
    std::vector<std::string> cands, refs;
    for (int i = 0; i < samples && i < static_cast<int>(splits.test.size());
         ++i) {
      const rt::Recipe& ref = splits.test[i];
      rt::GenerationOptions gen;
      gen.max_new_tokens = 200;
      gen.sampling.greedy = true;
      gen.stop_token = stop;
      auto ids = model.GenerateIds(
          arm.tokenizer->Encode(ref.PromptPrefix()), gen);
      cands.push_back(ref.PromptPrefix() + " " +
                      arm.tokenizer->Decode(ids));
      refs.push_back(ref.ToTaggedString());
    }
    const double bleu = rt::CorpusBleu(cands, refs);
    table.AddRow({arm.name, std::to_string(arm.tokenizer->vocab_size()),
                  rt::FormatDouble(100.0 * covered, 0) + "%",
                  rt::FormatDouble(bleu, 3),
                  rt::FormatDouble(trainer.Evaluate(val_src), 3)});
    if (arm.name == "char") char_bleu = bleu;
    if (arm.name == "word") word_bleu = bleu;
    if (arm.name == "bpe-800") bpe_bleu = bleu;
  }

  std::printf("ABLATION A3 - TOKENIZER GRANULARITY (same GPT-2 backbone, "
              "%d recipes, %d epochs, %d-token windows)\n%s",
              recipes, epochs, seq_len, table.Render().c_str());
  const bool shape_ok = char_bleu < word_bleu && char_bleu < bpe_bleu;
  std::printf("shape check: char-level underperforms word/BPE at equal "
              "budget ... %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
