// Experiment E4 — reproduces the paper's Sec. V training-time claim:
// "On CPU, it's taking 2-3 days to train our whole model but on GPU it
// took around 16 hours."
//
// We cannot run an A100, so the experiment has two parts:
//  1. MEASURED: train the scaled GPT-2 on this machine's single core and
//     record tokens/second; this calibrates the analytical device model.
//  2. PROJECTED: apply the standard 6*params*tokens FLOP estimate to the
//     paper-scale workload (GPT-2 medium 355M params, RecipeDB ~27M
//     tokens/epoch, 3 epochs) on the authors' CPU-server and A100 device
//     profiles. The reproduced shape is the GPU/CPU ratio (~3-5x), not
//     absolute hours.

#include <cstdio>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using rt::bench::Scaled;

  // Part 1: measured calibration anchor.
  rt::PipelineOptions options;
  options.corpus = rt::bench::StandardCorpus(Scaled(300, 100));
  options.model = rt::ModelKind::kGpt2Medium;
  options.bpe_vocab_budget = 480;
  options.trainer.epochs = 2;
  options.trainer.batch_size = 8;
  options.trainer.seq_len = 48;
  options.trainer.lr = 2e-3f;
  auto pipeline = rt::Pipeline::Create(options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  auto result = (*pipeline)->Train();
  if (!result.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const size_t local_params = (*pipeline)->model()->NumParams();
  const double tok_s = result->tokens_per_second;
  std::printf("MEASURED on this host: %s, %zu params, %.0f tokens/s "
              "(%.1fs for %lld tokens)\n",
              (*pipeline)->model()->name().c_str(), local_params, tok_s,
              result->seconds, result->tokens_processed);
  rt::DeviceSpec local =
      rt::CalibrateFromMeasurement("this-host-1-core", local_params, tok_s);
  std::printf("  => achieved compute: %.2f GFLOP/s (6*N*rate)\n\n",
              local.achieved_flops() / 1e9);

  // Part 2: projection of the paper-scale workload.
  rt::TrainingWorkload paper = rt::PaperGpt2MediumWorkload();
  std::printf("PROJECTED paper workload: GPT-2 medium %zu params, "
              "%lld tokens/epoch, %d epochs (%.2e FLOPs)\n",
              paper.param_count, paper.tokens_per_epoch, paper.epochs,
              paper.TotalFlops());

  rt::TextTable table({"Device", "Achieved FLOP/s", "Projected time",
                       "Paper reports"});
  const rt::DeviceSpec cpu = rt::DeviceSpec::CpuServer();
  const rt::DeviceSpec gpu = rt::DeviceSpec::A100();
  const double cpu_h = rt::ProjectSeconds(paper, cpu) / 3600.0;
  const double gpu_h = rt::ProjectSeconds(paper, gpu) / 3600.0;
  const double local_d = rt::ProjectSeconds(paper, local) / 86400.0;
  table.AddRow({cpu.name, rt::FormatDouble(cpu.achieved_flops() / 1e12, 2) +
                              " T",
                rt::FormatDouble(cpu_h / 24.0, 1) + " days",
                "2-3 days"});
  table.AddRow({gpu.name, rt::FormatDouble(gpu.achieved_flops() / 1e12, 2) +
                              " T",
                rt::FormatDouble(gpu_h, 1) + " hours", "~16 hours"});
  table.AddRow({local.name,
                rt::FormatDouble(local.achieved_flops() / 1e9, 1) + " G",
                rt::FormatDouble(local_d, 0) + " days",
                "(why we simulate)"});
  std::printf("%s", table.Render().c_str());

  const double ratio = cpu_h / gpu_h;
  std::printf("GPU speedup over CPU server: %.1fx (paper: ~3-4.5x)\n",
              ratio);
  const bool shape_ok = gpu_h < cpu_h && ratio > 2.5 && ratio < 6.0 &&
                        cpu_h / 24.0 > 1.5 && cpu_h / 24.0 < 4.0 &&
                        gpu_h > 8.0 && gpu_h < 24.0;
  std::printf("shape check: GPU wins by 2.5-6x; CPU in the multi-day "
              "band; GPU under a day ... %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
