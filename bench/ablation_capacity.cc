// Ablation A5 — model capacity along the paper's future-work axis
// (Sec. VII names GPT-Neo, i.e. "same architecture, deeper/wider"). We
// sweep the three GPT-2 config points (DistilGPT2 -> GPT-2 medium ->
// GPT-deep) on the same corpus and budget. Shape: validation loss falls
// monotonically with capacity and BLEU does not degrade, supporting the
// paper's expectation that a larger config point is the way forward.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/metrics.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using rt::bench::Scaled;

  const int recipes = Scaled(250, 100);
  const int epochs = Scaled(8, 2);

  rt::TextTable table({"config point", "params", "val loss", "perplexity",
                       "corpus BLEU", "train s"});
  std::vector<double> losses;
  std::vector<double> bleus;
  for (rt::ModelKind kind :
       {rt::ModelKind::kDistilGpt2, rt::ModelKind::kGpt2Medium,
        rt::ModelKind::kGptDeep}) {
    rt::bench::TrainEvalSpec spec = rt::bench::Table1Spec(kind, recipes);
    spec.pipeline.trainer.epochs = epochs;
    spec.eval_samples = Scaled(10, 4);
    std::printf("[capacity] training %s ...\n", rt::ModelKindName(kind));
    std::fflush(stdout);
    auto outcome = rt::bench::RunTrainEval(spec);
    if (!outcome.ok()) {
      std::fprintf(stderr, "failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    losses.push_back(outcome->val_loss);
    bleus.push_back(outcome->report.corpus_bleu);
    table.AddRow(
        {rt::ModelKindName(kind),
         rt::FormatWithCommas(static_cast<long long>(outcome->params)),
         rt::FormatDouble(outcome->val_loss, 3),
         rt::FormatDouble(rt::PerplexityFromLoss(outcome->val_loss), 2),
         rt::FormatDouble(outcome->report.corpus_bleu, 3),
         rt::FormatDouble(outcome->train.seconds, 1)});
  }

  std::printf("\nABLATION A5 - CAPACITY SWEEP (same corpus/budget, %d "
              "recipes, %d epochs)\n%s",
              recipes, epochs, table.Render().c_str());
  // The paper-relevant metric is BLEU (Table I): it must be monotone
  // non-decreasing along the capacity axis. Validation loss must improve
  // distil -> medium; the deepest point may trail medium slightly on
  // loss at a fixed small budget (it is undertrained for its size),
  // which is itself the expected capacity/budget trade-off.
  const bool bleu_monotone =
      bleus[1] >= bleus[0] * 0.98 && bleus[2] >= bleus[1] * 0.98;
  const bool medium_beats_distil = losses[1] < losses[0];
  const bool ok = bleu_monotone && medium_beats_distil;
  std::printf("shape check: BLEU non-decreasing with capacity and "
              "medium beats distil on val loss ... %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 2;
}
