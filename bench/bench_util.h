#ifndef RATATOUILLE_BENCH_BENCH_UTIL_H_
#define RATATOUILLE_BENCH_BENCH_UTIL_H_

#include <string>

#include "core/ratatouille.h"

namespace rt::bench {

/// Global scale knob for the experiment harnesses, read from the
/// RT_BENCH_SCALE environment variable:
///   "quick"   - smallest sizes, for smoke runs (~10x faster)
///   "default" - the standard configuration reported in EXPERIMENTS.md
///   "full"    - larger corpus / more epochs
double ScaleFactor();

/// Scales an integer quantity by ScaleFactor(), with a floor.
int Scaled(int base, int min_value = 1);

/// Standard synthetic-RecipeDB options shared by the experiments
/// (seeded, with the noise mix the preprocessing figures rely on).
GeneratorOptions StandardCorpus(int num_recipes, uint64_t seed = 2022);

/// One Table-I-style run: build pipeline, train, evaluate BLEU on the
/// held-out prompts.
struct TrainEvalSpec {
  ModelKind kind = ModelKind::kGpt2Medium;
  PipelineOptions pipeline;  // .model is overwritten with `kind`
  int eval_samples = 20;
  GenerationOptions generation;
};

struct TrainEvalOutcome {
  std::string model_name;
  size_t params = 0;
  TrainResult train;
  BleuReport report;
  float val_loss = 0.0f;
};

StatusOr<TrainEvalOutcome> RunTrainEval(const TrainEvalSpec& spec);

/// Default per-model trainer settings used by the Table I experiment;
/// epochs are pre-scaled by ScaleFactor().
TrainEvalSpec Table1Spec(ModelKind kind, int num_recipes);

}  // namespace rt::bench

#endif  // RATATOUILLE_BENCH_BENCH_UTIL_H_
