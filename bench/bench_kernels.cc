// Kernel-layer trajectory benchmark. Emits BENCH_kernels.json — a
// machine-readable record of (op, shape, ns/iter, tokens/sec) for the
// blocked GEMM, the packed decode GEMV, thread scaling on the shared
// pool, and end-to-end GPT-2 KV-cache decode throughput. CI archives
// the file per commit so kernel regressions show up as a trajectory,
// not an anecdote.
//
// Acceptance gates checked here (see ISSUE):
//   * GemmBlocked >= 3x GemmRef on 256x768x768, single thread.
//   * Decode tokens/sec scales with --compute-threads 1 -> 4.
//
// Also measures the data-dependent-timing fix: the old ops::MatMul
// reference kernel skipped k-iterations where A[i][k] == 0
// ("if (av == 0) continue"), leaking operand values into latency. The
// skip variant is reproduced locally and timed A/B against the strict
// reference on dense and 50%-sparse operands to record the delta.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "models/batch_decode.h"
#include "models/gpt2_model.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "tensor/thread_pool.h"
#include "util/obs.h"
#include "util/slo.h"

namespace rt {
namespace {

using Clock = std::chrono::steady_clock;

/// Wall-time budget per measured op; --smoke shrinks it so the whole
/// suite finishes in CI-friendly seconds while keeping every gated op.
double g_min_ms = 250.0;

struct BenchResult {
  std::string op;
  std::string shape;
  double ns_per_iter = 0.0;
  double tokens_per_sec = 0.0;  // 0 when the op has no token notion
  double gflops = 0.0;          // 0 when the op has no flop count
  double gb_per_s = 0.0;        // weight bytes streamed / s; 0 if n/a
  int threads = 1;
};

/// Runs fn repeatedly for ~min_ms of wall time (after one untimed
/// warmup call) and returns mean ns per iteration. min_ms < 0 means
/// "use the global budget" (g_min_ms, shrunk by --smoke).
double TimeNs(const std::function<void()>& fn, double min_ms = -1.0) {
  if (min_ms < 0.0) min_ms = g_min_ms;
  fn();  // warmup: page in operands, size arenas, pack weights
  long long iters = 0;
  auto start = Clock::now();
  double elapsed_ns = 0.0;
  do {
    fn();
    ++iters;
    elapsed_ns = std::chrono::duration<double, std::nano>(Clock::now() -
                                                          start)
                     .count();
  } while (elapsed_ns < min_ms * 1e6);
  return elapsed_ns / static_cast<double>(iters);
}

std::string ShapeStr(int m, int n, int k) {
  return std::to_string(m) + "x" + std::to_string(n) + "x" +
         std::to_string(k);
}

/// The pre-fix ops::MatMul inner loop, reproduced verbatim for the A/B:
/// skipping zero A elements made latency a function of operand values.
/// Compared against an identically-compiled no-skip copy below (same
/// TU, same flags) so the delta isolates the branch, not compiler
/// flag differences against kernels::GemmRef.
void GemmRefWithZeroSkip(int m, int n, int k, const float* a,
                         const float* b, float* c) {
  std::fill(c, c + static_cast<size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a[static_cast<size_t>(i) * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<size_t>(p) * n;
      float* crow = c + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// The post-fix loop: identical except the skip branch is gone.
void GemmRefNoSkip(int m, int n, int k, const float* a, const float* b,
                   float* c) {
  std::fill(c, c + static_cast<size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a[static_cast<size_t>(i) * k + p];
      const float* brow = b + static_cast<size_t>(p) * n;
      float* crow = c + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

BenchResult BenchGemm(const std::string& op, int m, int n, int k,
                      const std::function<void(const float*, const float*,
                                               float*)>& gemm,
                      int threads) {
  Rng rng(42);
  Tensor a = Tensor::Normal({m, k}, 1.0f, &rng);
  Tensor b = Tensor::Normal({k, n}, 1.0f, &rng);
  Tensor c({m, n});
  BenchResult r;
  r.op = op;
  r.shape = ShapeStr(m, n, k);
  r.threads = threads;
  r.ns_per_iter = TimeNs([&] { gemm(a.data(), b.data(), c.data()); });
  r.gflops = 2.0 * m * n * k / r.ns_per_iter;
  return r;
}

BenchResult BenchDecode(const Gpt2Lm& model, int threads, int tokens) {
  ThreadPool::SetGlobalThreads(threads);
  Gpt2Lm::KvCache cache;
  BenchResult r;
  r.op = "gpt2_decode_step";
  const auto& cfg = model.config();
  r.shape = "L" + std::to_string(cfg.num_layers) + "_d" +
            std::to_string(cfg.dim) + "_H" + std::to_string(cfg.num_heads) +
            "_V" + std::to_string(cfg.vocab_size);
  r.threads = threads;
  r.ns_per_iter = TimeNs([&] {
    model.InitCache(&cache);
    for (int t = 0; t < tokens; ++t) {
      model.StepWithCache(t % cfg.vocab_size, &cache);
    }
  });
  r.ns_per_iter /= tokens;  // per decoded token
  r.tokens_per_sec = 1e9 / r.ns_per_iter;
  return r;
}

/// Decode with the observability layer actually exercised. Three modes:
///   "gpt2_decode_step"     (elsewhere) — hooks compiled in, disabled:
///                          the row the 3% tracing-overhead gate reads.
///   "gpt2_decode_traced"   — span ring enabled; the loop emits the same
///                          batch_step + sample spans the serving decode
///                          loop does, so the row prices enabled tracing.
///   "gpt2_decode_profiled" — kernel profiler enabled: every GEMM
///                          dispatch is timed and counted.
BenchResult BenchDecodeObs(const Gpt2Lm& model, bool traced, bool profiled,
                           int tokens) {
  ThreadPool::SetGlobalThreads(1);
  auto& recorder = obs::TraceRecorder::Instance();
  auto& profiler = obs::KernelProfiler::Instance();
  recorder.SetEnabled(traced);
  profiler.SetEnabled(profiled);
  if (profiled) profiler.Reset();
  Gpt2Lm::KvCache cache;
  BenchResult r;
  r.op = traced ? "gpt2_decode_traced" : "gpt2_decode_profiled";
  const auto& cfg = model.config();
  r.shape = "L" + std::to_string(cfg.num_layers) + "_d" +
            std::to_string(cfg.dim) + "_H" + std::to_string(cfg.num_heads) +
            "_V" + std::to_string(cfg.vocab_size);
  r.threads = 1;
  r.ns_per_iter = TimeNs([&] {
    const uint64_t trace_id = recorder.NextTraceId();
    const auto prefill_start = obs::Now();
    model.InitCache(&cache);
    obs::RecordSpanSince(obs::Stage::kPrefill, trace_id, prefill_start,
                         "prompt_tokens", 1);
    for (int t = 0; t < tokens; ++t) {
      const auto step_start = obs::Now();
      model.StepWithCache(t % cfg.vocab_size, &cache);
      obs::RecordSpanSince(obs::Stage::kBatchStep, trace_id, step_start,
                           "batch", 1);
      obs::RecordSpanSince(obs::Stage::kSample, trace_id, obs::Now());
      if (profiled) profiler.CountTokens(1);
    }
  });
  recorder.SetEnabled(false);
  profiler.SetEnabled(false);
  r.ns_per_iter /= tokens;  // per decoded token
  r.tokens_per_sec = 1e9 / r.ns_per_iter;
  return r;
}

/// Decode with the full rt::obs v2 stack hot: span ring enabled, every
/// token priced into the SLO engine as a completed request, and a
/// MetricsHistory ring sampling the SLO gauges at 100x the serving
/// cadence in the background. The row prices tracing + SLO recording +
/// history sampling together; check_bench.py holds it to >= 97% of the
/// disabled-hooks row in the same run.
BenchResult BenchDecodeSampled(const Gpt2Lm& model, int tokens) {
  ThreadPool::SetGlobalThreads(1);
  auto& recorder = obs::TraceRecorder::Instance();
  auto& slo = obs::SloEngine::Instance();
  recorder.SetEnabled(true);
  slo.Reset();
  obs::MetricsHistory history;
  obs::MetricsHistory::Options opts;
  opts.capacity = 64;
  opts.interval_ms = 100;
  history.Configure(opts, [&slo] {
    Json out{Json::Object{}};
    slo.FillMetrics(&out);
    return out;
  });
  history.Start();
  Gpt2Lm::KvCache cache;
  BenchResult r;
  r.op = "gpt2_decode_sampled";
  const auto& cfg = model.config();
  r.shape = "L" + std::to_string(cfg.num_layers) + "_d" +
            std::to_string(cfg.dim) + "_H" + std::to_string(cfg.num_heads) +
            "_V" + std::to_string(cfg.vocab_size);
  r.threads = 1;
  r.ns_per_iter = TimeNs([&] {
    const uint64_t trace_id = recorder.NextTraceId();
    const auto prefill_start = obs::Now();
    model.InitCache(&cache);
    obs::RecordSpanSince(obs::Stage::kPrefill, trace_id, prefill_start,
                         "prompt_tokens", 1);
    for (int t = 0; t < tokens; ++t) {
      const auto step_start = obs::Now();
      model.StepWithCache(t % cfg.vocab_size, &cache);
      obs::RecordSpanSince(obs::Stage::kBatchStep, trace_id, step_start,
                           "batch", 1);
      slo.RecordRequest(
          /*traffic_class=*/0,
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              obs::Now() - step_start)
              .count(),
          /*error=*/false);
    }
  });
  history.Stop();
  recorder.SetEnabled(false);
  slo.Reset();
  r.ns_per_iter /= tokens;  // per decoded token
  r.tokens_per_sec = 1e9 / r.ns_per_iter;
  return r;
}

/// Continuous-batching decode: `batch` sequences step in lockstep
/// through the BatchDecoder, one batched forward per iteration.
/// tokens_per_sec is AGGREGATE (batch rows per step), the number the
/// batch-8 >= 2x single-stream gate reads.
BenchResult BenchDecodeBatched(Gpt2Lm* model, int batch, int tokens) {
  ThreadPool::SetGlobalThreads(1);
  std::unique_ptr<BatchDecoder> decoder = model->MakeBatchDecoder();
  const auto& cfg = model->config();
  std::vector<std::unique_ptr<BatchSequence>> seqs;
  std::vector<BatchSequence*> rows(static_cast<size_t>(batch));
  std::vector<int> toks(static_cast<size_t>(batch));
  std::vector<float> logits(static_cast<size_t>(batch) * cfg.vocab_size);
  BenchResult r;
  r.op = "gpt2_decode_batched_b" + std::to_string(batch);
  r.shape = "L" + std::to_string(cfg.num_layers) + "_d" +
            std::to_string(cfg.dim) + "_H" + std::to_string(cfg.num_heads) +
            "_V" + std::to_string(cfg.vocab_size);
  r.threads = 1;
  r.ns_per_iter = TimeNs([&] {
    seqs.clear();  // returns pooled cache slots, then re-acquires
    for (int i = 0; i < batch; ++i) {
      seqs.push_back(decoder->NewSequence());
      rows[static_cast<size_t>(i)] = seqs.back().get();
    }
    for (int t = 0; t < tokens; ++t) {
      for (int i = 0; i < batch; ++i) {
        toks[static_cast<size_t>(i)] = (t + i) % cfg.vocab_size;
      }
      decoder->StepBatch(batch, toks.data(), rows.data(), logits.data());
    }
  });
  r.ns_per_iter /= tokens;  // per batched step
  r.tokens_per_sec = batch * 1e9 / r.ns_per_iter;
  return r;
}

/// Admission-to-first-token with a 64-token prompt, cold vs warm.
/// Cold prefills the whole prompt; warm restores a published
/// shared-prefix KV snapshot and steps once. ns_per_iter is the full
/// time-to-first-token, the number the TTFT >= 2x gate reads — the
/// point of the prefix cache is that the warm row stops scaling with
/// prompt length.
BenchResult BenchTtft(Gpt2Lm* model, bool warm, int prompt_tokens) {
  ThreadPool::SetGlobalThreads(1);
  std::unique_ptr<BatchDecoder> decoder = model->MakeBatchDecoder();
  decoder->EnablePrefixCache({});
  const auto& cfg = model->config();
  std::vector<int> prompt(static_cast<size_t>(prompt_tokens));
  for (int i = 0; i < prompt_tokens; ++i) {
    prompt[static_cast<size_t>(i)] = (7 * i + 3) % cfg.vocab_size;
  }
  std::vector<float> logits(static_cast<size_t>(cfg.vocab_size));
  if (warm) {
    // Seed the cache the way the batch scheduler does: prefill up to
    // the final prompt token, publish that snapshot.
    int restored = 0;
    auto seed = decoder->NewSequenceWithPrefix(prompt.data(),
                                               prompt_tokens, &restored);
    decoder->PrefillSeq(seed.get(), prompt.data(), prompt_tokens - 1);
    decoder->PublishPrefix(seed.get(), prompt.data(), prompt_tokens - 1);
  }
  BenchResult r;
  r.op = warm ? "gpt2_ttft_warm_prefix" : "gpt2_ttft_cold_prefill";
  r.shape = "P" + std::to_string(prompt_tokens) + "_L" +
            std::to_string(cfg.num_layers) + "_d" +
            std::to_string(cfg.dim);
  r.threads = 1;
  r.ns_per_iter = TimeNs([&] {
    int restored = 0;
    auto seq = decoder->NewSequenceWithPrefix(prompt.data(), prompt_tokens,
                                              &restored);
    if (prompt_tokens - 1 > restored) {
      decoder->PrefillSeq(seq.get(), prompt.data() + restored,
                          prompt_tokens - 1 - restored);
    }
    int last = prompt[static_cast<size_t>(prompt_tokens - 1)];
    BatchSequence* row = seq.get();
    decoder->StepBatch(1, &last, &row, logits.data());
  });
  r.tokens_per_sec = 1e9 / r.ns_per_iter;  // first tokens per second
  return r;
}

void AppendJson(std::string* out, const BenchResult& r, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  {\"op\": \"%s\", \"shape\": \"%s\", \"threads\": %d, "
                "\"ns_per_iter\": %.1f, \"tokens_per_sec\": %.1f, "
                "\"gflops\": %.3f, \"gb_per_s\": %.3f}%s\n",
                r.op.c_str(), r.shape.c_str(), r.threads, r.ns_per_iter,
                r.tokens_per_sec, r.gflops, r.gb_per_s, last ? "" : ",");
  *out += buf;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  // Smoke mode: every gated op still runs (the CI regression gate reads
  // them all) but with a small per-op time budget.
  if (smoke) g_min_ms = 40.0;
  const int decode_tokens = smoke ? 32 : 64;
  std::vector<BenchResult> results;

  // --- Single-thread GEMM: reference vs blocked (the >= 3x gate). ---
  ThreadPool::SetGlobalThreads(1);
  const int m = 256, n = 768, k = 768;
  results.push_back(BenchGemm(
      "gemm_ref", m, n, k,
      [&](const float* a, const float* b, float* c) {
        kernels::GemmRef(m, n, k, a, b, c);
      },
      1));
  const double ref_ns = results.back().ns_per_iter;
  results.push_back(BenchGemm(
      "gemm_blocked", m, n, k,
      [&](const float* a, const float* b, float* c) {
        kernels::GemmBlocked(m, n, k, a, b, c);
      },
      1));
  const double blocked_ns = results.back().ns_per_iter;

  // --- Blocked GEMM thread scaling on the shared pool. ---
  for (int threads : {2, 4}) {
    ThreadPool::SetGlobalThreads(threads);
    results.push_back(BenchGemm(
        "gemm_blocked", m, n, k,
        [&](const float* a, const float* b, float* c) {
          kernels::GemmBlocked(m, n, k, a, b, c);
        },
        threads));
  }
  ThreadPool::SetGlobalThreads(1);

  // --- Packed decode GEMV (per-token Linear with cached weights). ---
  {
    const int gk = 768, gn = 768;
    Rng rng(7);
    Tensor a = Tensor::Normal({1, gk}, 1.0f, &rng);
    Tensor b = Tensor::Normal({gk, gn}, 1.0f, &rng);
    kernels::PackedB packed;
    packed.Pack(gk, gn, b.data());
    Tensor c({1, gn});
    BenchResult r;
    r.op = "gemv_packed";
    r.shape = ShapeStr(1, gn, gk);
    r.threads = 1;
    r.ns_per_iter = TimeNs(
        [&] { kernels::GemmPacked(1, a.data(), packed, c.data(), false); });
    r.gflops = 2.0 * gk * gn / r.ns_per_iter;
    results.push_back(r);
  }

  // --- Int8 packed GEMM/GEMV vs blocked fp32 (the >= 2x GEMV gate). ---
  // Weight traffic per iteration is the packed-B footprint actually
  // streamed (1 byte/element int8 vs 4 fp32), reported as gb_per_s so
  // the trajectory shows the bandwidth win, not just the time.
  {
    // GEMM shape matches the fp32 blocked/packed rows above.
    Rng rng(13);
    Tensor a = Tensor::Normal({m, k}, 1.0f, &rng);
    Tensor b = Tensor::Normal({k, n}, 1.0f, &rng);
    kernels::PackedBInt8 packed_q;
    packed_q.Pack(k, n, b.data());
    Tensor c({m, n});
    BenchResult r;
    r.op = "gemm_packed_int8";
    r.shape = ShapeStr(m, n, k);
    r.threads = 1;
    r.ns_per_iter = TimeNs([&] {
      kernels::GemmPackedInt8(m, a.data(), packed_q, c.data(), false);
    });
    r.gflops = 2.0 * m * n * k / r.ns_per_iter;
    r.gb_per_s = static_cast<double>(k) * n / r.ns_per_iter;
    results.push_back(r);

    // Decode-shaped GEMV pair at m=1: the int8 >= 2x gate compares
    // these two rows. The shape is the GPT-2 medium MLP up-projection
    // (768 -> 3072) — at 9.4 MB the fp32 packed panels overflow L2 on
    // every CI runner class while the 2.4 MB int8 panels fit, so the
    // bandwidth advantage the gate asserts is structural, not a cache
    // accident of one machine.
    const int gk = 768, gn = 3072;
    Tensor gb = Tensor::Normal({gk, gn}, 1.0f, &rng);
    Tensor ga = Tensor::Normal({1, gk}, 1.0f, &rng);
    Tensor gc({1, gn});
    kernels::PackedB packed_f32;
    packed_f32.Pack(gk, gn, gb.data());
    kernels::PackedBInt8 packed_i8;
    packed_i8.Pack(gk, gn, gb.data());
    BenchResult rf;
    rf.op = "gemv_mlp_fp32";
    rf.shape = ShapeStr(1, gn, gk);
    rf.threads = 1;
    rf.ns_per_iter = TimeNs([&] {
      kernels::GemmPacked(1, ga.data(), packed_f32, gc.data(), false);
    });
    rf.gflops = 2.0 * gk * gn / rf.ns_per_iter;
    rf.gb_per_s = 4.0 * gk * gn / rf.ns_per_iter;
    results.push_back(rf);
    BenchResult ri;
    ri.op = "gemv_mlp_int8";
    ri.shape = ShapeStr(1, gn, gk);
    ri.threads = 1;
    ri.ns_per_iter = TimeNs([&] {
      kernels::GemmPackedInt8(1, ga.data(), packed_i8, gc.data(), false);
    });
    ri.gflops = 2.0 * gk * gn / ri.ns_per_iter;
    ri.gb_per_s = static_cast<double>(gk) * gn / ri.ns_per_iter;
    results.push_back(ri);
  }

  // --- Zero-skip removal A/B (data-dependent timing fix). ---
  {
    const int zm = 96, zn = 256, zk = 256;
    Rng rng(11);
    Tensor a = Tensor::Normal({zm, zk}, 1.0f, &rng);
    Tensor b = Tensor::Normal({zk, zn}, 1.0f, &rng);
    Tensor a_sparse = a;  // 50% exact zeros: the skip's best case
    for (size_t i = 0; i < a_sparse.numel(); i += 2) {
      a_sparse.data()[i] = 0.0f;
    }
    Tensor c({zm, zn});
    auto bench_variant = [&](const std::string& op, const Tensor& lhs,
                             bool with_skip) {
      BenchResult r;
      r.op = op;
      r.shape = ShapeStr(zm, zn, zk);
      r.threads = 1;
      r.ns_per_iter = TimeNs([&] {
        if (with_skip) {
          GemmRefWithZeroSkip(zm, zn, zk, lhs.data(), b.data(), c.data());
        } else {
          GemmRefNoSkip(zm, zn, zk, lhs.data(), b.data(), c.data());
        }
      });
      r.gflops = 2.0 * zm * zn * zk / r.ns_per_iter;
      results.push_back(r);
    };
    bench_variant("gemm_ref_noskip_dense", a, false);
    bench_variant("gemm_ref_zeroskip_dense", a, true);
    bench_variant("gemm_ref_noskip_sparse50", a_sparse, false);
    bench_variant("gemm_ref_zeroskip_sparse50", a_sparse, true);
  }

  // --- End-to-end GPT-2 KV decode tokens/sec at 1/2/4 threads. ---
  {
    Gpt2Config cfg;
    cfg.vocab_size = 512;
    cfg.dim = 256;
    cfg.num_layers = 4;
    cfg.num_heads = 8;
    cfg.max_seq_len = 128;
    cfg.dropout = 0.0f;
    Gpt2Lm model(cfg);
    for (int threads : {1, 2, 4}) {
      results.push_back(BenchDecode(model, threads, decode_tokens));
    }
    ThreadPool::SetGlobalThreads(1);

    // --- Observability overhead A/B (single thread). ---
    // gpt2_decode_step above already runs with the hooks compiled in
    // but disabled (the 3% gate row); these price them enabled.
    results.push_back(
        BenchDecodeObs(model, /*traced=*/true, /*profiled=*/false,
                       decode_tokens));
    results.push_back(
        BenchDecodeObs(model, /*traced=*/false, /*profiled=*/true,
                       decode_tokens));
    results.push_back(BenchDecodeSampled(model, decode_tokens));
    // The traced run filled the span ring; keep a loadable sample next
    // to the results for the CI artifact (open in Perfetto).
    if (Status s = obs::TraceRecorder::Instance().ExportToFile(
            "TRACE_sample.json");
        !s.ok()) {
      std::fprintf(stderr, "TRACE_sample.json export failed: %s\n",
                   s.ToString().c_str());
    }

    // --- Cross-session batched decode sweep (single thread). ---
    // Aggregate tokens/sec at batch 1/2/4/8; the b8 row must reach
    // >= 2x the b1 row (== 8 sequential m=1 decodes, which aggregate
    // to single-stream throughput).
    for (int batch : {1, 2, 4, 8}) {
      results.push_back(BenchDecodeBatched(&model, batch, decode_tokens));
    }

    // --- Shared-prefix TTFT A/B (single thread). ---
    // Cold prefills a 64-token prompt from scratch; warm restores the
    // published prefix snapshot first. check_bench.py gates
    // cold/warm >= 2x within the run.
    for (bool warm : {false, true}) {
      results.push_back(BenchTtft(&model, warm, /*prompt_tokens=*/64));
    }
  }

  // --- Emit. ---
  std::string json = "{\n\"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    AppendJson(&json, results[i], i + 1 == results.size());
  }
  json += "]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);

  // Human-readable recap on stdout.
  std::printf("%-28s %-18s %8s %14s %12s %10s\n", "op", "shape", "threads",
              "ns/iter", "tokens/sec", "GFLOP/s");
  for (const auto& r : results) {
    std::printf("%-28s %-18s %8d %14.1f %12.1f %10.3f\n", r.op.c_str(),
                r.shape.c_str(), r.threads, r.ns_per_iter, r.tokens_per_sec,
                r.gflops);
  }
  std::printf("\nblocked speedup over reference (256x768x768, 1 thread): "
              "%.2fx\n",
              ref_ns / blocked_ns);
  double gemv_f32_ns = 0.0, gemv_i8_ns = 0.0;
  for (const auto& r : results) {
    if (r.op == "gemv_mlp_fp32") gemv_f32_ns = r.ns_per_iter;
    if (r.op == "gemv_mlp_int8") gemv_i8_ns = r.ns_per_iter;
  }
  if (gemv_i8_ns > 0.0) {
    std::printf("int8 GEMV speedup over packed fp32 (1x3072x768): %.2fx\n",
                gemv_f32_ns / gemv_i8_ns);
  }
  double batched_b1 = 0.0, batched_b8 = 0.0;
  for (const auto& r : results) {
    if (r.op == "gpt2_decode_batched_b1") batched_b1 = r.tokens_per_sec;
    if (r.op == "gpt2_decode_batched_b8") batched_b8 = r.tokens_per_sec;
  }
  if (batched_b1 > 0.0) {
    std::printf("batch-8 aggregate speedup over sequential m=1: %.2fx\n",
                batched_b8 / batched_b1);
  }
  double plain_tps = 0.0, traced_tps = 0.0, profiled_tps = 0.0,
         sampled_tps = 0.0;
  for (const auto& r : results) {
    if (r.op == "gpt2_decode_step" && r.threads == 1 && plain_tps == 0.0) {
      plain_tps = r.tokens_per_sec;
    }
    if (r.op == "gpt2_decode_traced") traced_tps = r.tokens_per_sec;
    if (r.op == "gpt2_decode_profiled") profiled_tps = r.tokens_per_sec;
    if (r.op == "gpt2_decode_sampled") sampled_tps = r.tokens_per_sec;
  }
  if (plain_tps > 0.0 && traced_tps > 0.0) {
    std::printf("enabled tracing overhead vs disabled hooks: %.1f%%\n",
                100.0 * (plain_tps - traced_tps) / plain_tps);
  }
  if (plain_tps > 0.0 && profiled_tps > 0.0) {
    std::printf("enabled kernel profiling overhead: %.1f%%\n",
                100.0 * (plain_tps - profiled_tps) / plain_tps);
  }
  if (plain_tps > 0.0 && sampled_tps > 0.0) {
    std::printf("tracing + SLO + history sampling overhead: %.1f%%\n",
                100.0 * (plain_tps - sampled_tps) / plain_tps);
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace rt

int main(int argc, char** argv) { return rt::Main(argc, argv); }
