// Ablation A4 — does the Sec. III preprocessing actually help? Train the
// same model on (a) the cleaned corpus and (b) the raw corpus with
// incomplete records, duplicates, the overlong tail and the short tail
// left in. Shape: preprocessing improves held-out BLEU per training
// token (the model stops wasting capacity on malformed records) and
// removes duplicate leakage.

#include <cstdio>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

struct ArmResult {
  int corpus_size = 0;
  size_t train_tokens = 0;
  double bleu = 0.0;
  double novelty = 0.0;
  float val_loss = 0.0f;
};

rt::StatusOr<ArmResult> RunArm(bool skip_preprocessing, int recipes,
                               int epochs, int samples) {
  rt::PipelineOptions options;
  // Noisier-than-default corpus so the rules have something to remove.
  options.corpus = rt::bench::StandardCorpus(recipes);
  options.corpus.incomplete_fraction = 0.08;
  options.corpus.duplicate_fraction = 0.10;
  options.corpus.overlong_fraction = 0.04;
  options.corpus.short_fraction = 0.06;
  options.skip_preprocessing = skip_preprocessing;
  options.model = rt::ModelKind::kWordLstm;
  options.trainer.epochs = epochs;
  options.trainer.batch_size = 8;
  options.trainer.seq_len = 48;
  options.trainer.lr = 3e-3f;
  RT_ASSIGN_OR_RETURN(auto pipeline, rt::Pipeline::Create(options));
  ArmResult arm;
  arm.corpus_size = pipeline->preprocess_stats().output_count;
  arm.train_tokens = pipeline->train_stream().size();
  RT_ASSIGN_OR_RETURN(auto train, pipeline->Train());
  (void)train;
  arm.val_loss = pipeline->ValidationLoss();
  rt::GenerationOptions gen;
  gen.max_new_tokens = 200;
  gen.sampling.greedy = true;
  RT_ASSIGN_OR_RETURN(auto report,
                      pipeline->EvaluateOnTestSet(samples, gen));
  arm.bleu = report.corpus_bleu;
  arm.novelty = report.novelty_rate;
  return arm;
}

}  // namespace

int main() {
  using rt::bench::Scaled;
  const int recipes = Scaled(450, 140);
  const int epochs = Scaled(8, 2);
  const int samples = Scaled(15, 5);

  auto cleaned = RunArm(/*skip_preprocessing=*/false, recipes, epochs,
                        samples);
  auto raw = RunArm(/*skip_preprocessing=*/true, recipes, epochs, samples);
  if (!cleaned.ok() || !raw.ok()) {
    std::fprintf(stderr, "ablation arm failed\n");
    return 1;
  }

  rt::TextTable table({"arm", "recipes", "train tokens", "corpus BLEU",
                       "val loss", "BLEU per 100k tokens"});
  auto add = [&](const char* name, const ArmResult& a) {
    table.AddRow({name, std::to_string(a.corpus_size),
                  rt::FormatWithCommas(
                      static_cast<long long>(a.train_tokens)),
                  rt::FormatDouble(a.bleu, 3),
                  rt::FormatDouble(a.val_loss, 3),
                  rt::FormatDouble(a.bleu * 1e5 / a.train_tokens, 3)});
  };
  add("preprocessed (paper Sec. III)", *cleaned);
  add("raw (no preprocessing)", *raw);
  std::printf("ABLATION A4 - PREPROCESSING ON/OFF (word-LSTM, same "
              "generator seed)\n%s",
              table.Render().c_str());

  const double clean_eff = cleaned->bleu * 1e5 / cleaned->train_tokens;
  const double raw_eff = raw->bleu * 1e5 / raw->train_tokens;
  const bool shape_ok =
      cleaned->corpus_size < raw->corpus_size && clean_eff > raw_eff;
  std::printf("shape check: cleaning shrinks the corpus yet yields more "
              "BLEU per training token ... %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
