// Micro-benchmarks (google-benchmark) for the performance-critical
// kernels: matmul, LSTM cell step, attention block, tokenizers, BLEU,
// JSON codec and the sampler. These are the components the experiment
// harnesses are built from; regressions here show up as wall-clock in
// every bench above.

#include <benchmark/benchmark.h>

#include "data/generator.h"
#include "eval/bleu.h"
#include "models/sampler.h"
#include "nn/layers.h"
#include "util/deadline.h"
#include "util/fault_injection.h"
#include "util/json.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tape.h"
#include "text/bpe_tokenizer.h"
#include "text/char_tokenizer.h"
#include "text/word_tokenizer.h"

namespace rt {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Normal({n, n}, 1.0f, &rng);
  Tensor b = Tensor::Normal({n, n}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = ops::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransB(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Normal({n, n}, 1.0f, &rng);
  Tensor b = Tensor::Normal({n, n}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = ops::MatMulTransB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMulTransB)->Arg(128);

void BM_GemmReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Normal({n, n}, 1.0f, &rng);
  Tensor b = Tensor::Normal({n, n}, 1.0f, &rng);
  Tensor c({n, n});
  for (auto _ : state) {
    kernels::GemmRef(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmReference)->Arg(128)->Arg(256);

void BM_GemmBlocked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Normal({n, n}, 1.0f, &rng);
  Tensor b = Tensor::Normal({n, n}, 1.0f, &rng);
  Tensor c({n, n});
  for (auto _ : state) {
    kernels::GemmBlocked(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->Arg(128)->Arg(256);

void BM_GemmPackedDecode(benchmark::State& state) {
  // The decode hot path: one-row GEMV against a pre-packed weight, the
  // shape every Linear::ForwardRawTo hits per generated token.
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Normal({1, n}, 1.0f, &rng);
  Tensor b = Tensor::Normal({n, n}, 1.0f, &rng);
  kernels::PackedB packed;
  packed.Pack(n, n, b.data());
  Tensor c({1, n});
  for (auto _ : state) {
    kernels::GemmPacked(1, a.data(), packed, c.data(), false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n);
}
BENCHMARK(BM_GemmPackedDecode)->Arg(256)->Arg(768);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  Tensor x = Tensor::Normal({256, 512}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor y = ops::SoftmaxRows(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_SoftmaxRows);

void BM_LstmCellStep(benchmark::State& state) {
  const int hidden = static_cast<int>(state.range(0));
  Rng rng(3);
  LstmLayer cell(64, hidden, &rng);
  Tensor x = Tensor::Normal({8, 64}, 1.0f, &rng);
  for (auto _ : state) {
    Tape tape;
    LstmState s = cell.InitialState(&tape, 8);
    LstmState s2 = cell.Step(&tape, tape.Leaf(x), s);
    benchmark::DoNotOptimize(tape.value(s2.h).data());
  }
}
BENCHMARK(BM_LstmCellStep)->Arg(128)->Arg(256);

void BM_TransformerBlockForward(benchmark::State& state) {
  const int seq = static_cast<int>(state.range(0));
  Rng rng(4);
  TransformerBlock block(128, 4, 0.0f, &rng);
  Tensor x = Tensor::Normal({seq, 128}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor y = block.ForwardRaw(x, seq);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_TransformerBlockForward)->Arg(32)->Arg(128);

void BM_TransformerBlockTrainStep(benchmark::State& state) {
  Rng rng(5);
  TransformerBlock block(128, 4, 0.0f, &rng);
  Tensor x = Tensor::Normal({128, 128}, 1.0f, &rng);
  for (auto _ : state) {
    Tape tape;
    VarId in = tape.Leaf(x);
    VarId out = block.Forward(&tape, in, 2, 64, &rng, true);
    tape.Backward(tape.SumAll(tape.Mul(out, out)));
    benchmark::DoNotOptimize(tape.grad(in).data());
  }
}
BENCHMARK(BM_TransformerBlockTrainStep);

std::vector<std::string> BenchCorpus() {
  GeneratorOptions opts;
  opts.num_recipes = 60;
  opts.seed = 6;
  RecipeDbGenerator gen(opts);
  std::vector<std::string> docs;
  for (const auto& r : gen.Generate()) docs.push_back(r.ToTaggedString());
  return docs;
}

void BM_CharTokenizerEncode(benchmark::State& state) {
  auto docs = BenchCorpus();
  auto tok = CharTokenizer::Build(docs);
  size_t bytes = 0;
  for (auto _ : state) {
    for (const auto& d : docs) {
      auto ids = tok.Encode(d);
      benchmark::DoNotOptimize(ids.data());
      bytes += d.size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_CharTokenizerEncode);

void BM_WordTokenizerEncode(benchmark::State& state) {
  auto docs = BenchCorpus();
  auto tok = WordTokenizer::Build(docs);
  size_t bytes = 0;
  for (auto _ : state) {
    for (const auto& d : docs) {
      auto ids = tok.Encode(d);
      benchmark::DoNotOptimize(ids.data());
      bytes += d.size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_WordTokenizerEncode);

void BM_BpeTokenizerEncode(benchmark::State& state) {
  auto docs = BenchCorpus();
  auto tok = BpeTokenizer::Train(docs, 480);
  size_t bytes = 0;
  for (auto _ : state) {
    for (const auto& d : docs) {
      auto ids = tok.Encode(d);
      benchmark::DoNotOptimize(ids.data());
      bytes += d.size();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_BpeTokenizerEncode);

void BM_BpeTrain(benchmark::State& state) {
  auto docs = BenchCorpus();
  for (auto _ : state) {
    auto tok = BpeTokenizer::Train(docs, 300);
    benchmark::DoNotOptimize(tok.vocab_size());
  }
}
BENCHMARK(BM_BpeTrain);

void BM_CorpusBleu(benchmark::State& state) {
  auto docs = BenchCorpus();
  std::vector<std::string> cands(docs.begin(), docs.begin() + 30);
  std::vector<std::string> refs(docs.begin() + 30, docs.begin() + 60);
  for (auto _ : state) {
    double b = CorpusBleu(cands, refs);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_CorpusBleu);

void BM_JsonParseDump(benchmark::State& state) {
  const std::string doc =
      R"({"ingredients":[{"name":"tomato","quantity":"1/2","unit":"cup"},)"
      R"({"name":"onion","quantity":"2","unit":""}],"title":"test stew",)"
      R"("instructions":["heat the oil","add the onion","simmer"]})";
  for (auto _ : state) {
    auto parsed = Json::Parse(doc);
    std::string out = parsed->Dump();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_JsonParseDump);

void BM_SampleFromLogits(benchmark::State& state) {
  Rng rng(7);
  Tensor logits = Tensor::Normal({480}, 2.0f, &rng);
  SamplingOptions opts{.temperature = 0.8f, .top_k = 40};
  for (auto _ : state) {
    int id = SampleFromLogits(logits, opts, &rng);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_SampleFromLogits);

void BM_DeadlineExpiredCheck(benchmark::State& state) {
  // The per-token abort check every decode loop pays: one clock read
  // plus a comparison (plus a shared_ptr null test in CheckAbort).
  const Deadline deadline = Deadline::AfterMillis(3'600'000);
  for (auto _ : state) {
    bool expired = deadline.expired();
    benchmark::DoNotOptimize(expired);
  }
}
BENCHMARK(BM_DeadlineExpiredCheck);

void BM_FaultPointUnarmed(benchmark::State& state) {
  // Un-armed fast path of an instrumented fault point — this is the
  // always-on cost paid by every socket read/write in production.
  auto& faults = FaultInjector::Instance();
  for (auto _ : state) {
    auto fired = faults.Hit("bench.unarmed");
    benchmark::DoNotOptimize(fired.has_value());
  }
}
BENCHMARK(BM_FaultPointUnarmed);

void BM_RecipeGeneration(benchmark::State& state) {
  GeneratorOptions opts;
  opts.num_recipes = 1;
  RecipeDbGenerator gen(opts);
  Rng rng(8);
  long long id = 0;
  for (auto _ : state) {
    Recipe r = gen.GenerateOne(id++, &rng);
    benchmark::DoNotOptimize(r.title.data());
  }
}
BENCHMARK(BM_RecipeGeneration);

}  // namespace
}  // namespace rt

BENCHMARK_MAIN();
