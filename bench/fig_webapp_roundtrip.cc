// Experiment E6 — reproduces Figs. 4-5: the web application's request
// path. A user's ingredient list enters the decoupled frontend, is
// proxied to the model backend, and a structured recipe (title,
// quantified ingredients, instructions) returns. Measures end-to-end
// round-trip latency and sequential throughput through both tiers, then
// sweeps the concurrent serving core: a single-threaded baseline
// (1 worker, 1 model session) versus the pooled configuration
// (4 workers, 2 sessions) under 8 keep-alive client threads.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct SweepResult {
  int requests = 0;
  int ok = 0;
  double wall = 0.0;
  long served = 0;
  bool metrics_consistent = false;
};

// Hammers a backend configuration with `threads` keep-alive clients,
// `per_thread` requests each, directly against POST /v1/generate.
SweepResult RunConcurrentSweep(rt::Pipeline* p, int workers, int sessions,
                               int threads, int per_thread) {
  SweepResult result;
  rt::BackendOptions options;
  options.model_sessions = sessions;
  options.http.num_workers = workers;
  options.http.max_queue = 256;
  std::vector<std::unique_ptr<rt::LanguageModel>> session_models;
  rt::BackendService backend(
      rt::MakePipelineSessionFactory(p, &session_models), options);
  if (!backend.Start(0).ok()) return result;

  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  rt::Timer total;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      rt::HttpClient client(backend.port());
      for (int i = 0; i < per_thread; ++i) {
        const std::string body =
            R"({"ingredients":["tomato","onion"],"max_tokens":24,"seed":)" +
            std::to_string(t * per_thread + i + 1) + "}";
        auto resp = client.Post("/v1/generate", body);
        if (resp.ok() && resp->status == 200) ok_count.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  result.wall = total.ElapsedSeconds();
  result.requests = threads * per_thread;
  result.ok = ok_count.load();
  result.served = backend.requests_served();

  // /v1/metrics must agree with what the clients observed.
  auto metrics = rt::HttpGet(backend.port(), "/v1/metrics");
  if (metrics.ok() && metrics->status == 200) {
    auto parsed = rt::Json::Parse(metrics->body);
    result.metrics_consistent =
        parsed.ok() && parsed->Get("generate_ok").is_number() &&
        static_cast<int>(parsed->Get("generate_ok").AsNumber()) == result.ok;
  }
  backend.Stop();
  return result;
}

}  // namespace

int main() {
  // Train a small word-LSTM backend (fast, structurally coherent).
  rt::PipelineOptions options;
  options.corpus = rt::bench::StandardCorpus(rt::bench::Scaled(300, 100));
  options.model = rt::ModelKind::kWordLstm;
  options.trainer.epochs = rt::bench::Scaled(5, 2);
  options.trainer.batch_size = 8;
  options.trainer.seq_len = 48;
  auto pipeline = rt::Pipeline::Create(options);
  if (!pipeline.ok() || !(*pipeline)->Train().ok()) {
    std::fprintf(stderr, "backend model setup failed\n");
    return 1;
  }
  rt::Pipeline& p = **pipeline;

  std::vector<std::unique_ptr<rt::LanguageModel>> session_models;
  rt::BackendService backend(
      rt::MakePipelineSessionFactory(&p, &session_models),
      rt::BackendOptions{});
  if (!backend.Start(0).ok()) {
    std::fprintf(stderr, "backend start failed\n");
    return 1;
  }
  rt::FrontendService frontend(backend.port());
  if (!frontend.Start(0).ok()) {
    std::fprintf(stderr, "frontend start failed\n");
    return 1;
  }

  // The UI page itself (Fig. 4).
  auto page = rt::HttpGet(frontend.port(), "/");
  const bool page_ok =
      page.ok() && page->status == 200 &&
      page->body.find("Ratatouille") != std::string::npos;
  std::printf("FIG. 4 - frontend serves the ingredient-picker page: %s\n",
              page_ok ? "yes" : "NO");

  // Generation round trips (Fig. 5), sequentially through both tiers.
  const std::vector<std::string> bodies{
      R"({"ingredients":["tomato","onion","garlic"],"max_tokens":90,"seed":1})",
      R"({"ingredients":["chicken","rice","cumin"],"max_tokens":90,"seed":2})",
      R"({"ingredients":["flour","butter","sugar"],"max_tokens":90,"seed":3})",
  };
  const int reps = rt::bench::Scaled(10, 3);
  std::vector<double> latencies;
  int ok_count = 0;
  std::string sample_body;
  rt::Timer total;
  for (int r = 0; r < reps; ++r) {
    for (const auto& body : bodies) {
      rt::Timer timer;
      auto resp = rt::HttpPost(frontend.port(), "/v1/generate", body);
      latencies.push_back(timer.ElapsedSeconds());
      if (resp.ok() && resp->status == 200) {
        ++ok_count;
        if (sample_body.empty()) sample_body = resp->body;
      }
    }
  }
  const double wall = total.ElapsedSeconds();
  const int requests = static_cast<int>(latencies.size());
  std::sort(latencies.begin(), latencies.end());
  const double p50 = latencies[requests / 2];
  const double p95 = latencies[static_cast<size_t>(requests * 0.95)];

  std::printf("FIG. 5 - sample structured response (truncated):\n%.300s"
              "...\n\n",
              sample_body.c_str());
  rt::TextTable table({"metric", "value"});
  table.AddRow({"requests", std::to_string(requests)});
  table.AddRow({"success", std::to_string(ok_count)});
  table.AddRow({"p50 latency", rt::FormatDouble(p50 * 1e3, 1) + " ms"});
  table.AddRow({"p95 latency", rt::FormatDouble(p95 * 1e3, 1) + " ms"});
  table.AddRow({"throughput",
                rt::FormatDouble(requests / wall, 1) + " req/s"});
  table.AddRow({"backend requests seen",
                std::to_string(backend.requests_served())});
  std::printf("%s", table.Render().c_str());

  frontend.Stop();
  backend.Stop();

  // Concurrent serving sweep: single-threaded baseline vs the pooled
  // configuration, 8 keep-alive clients each.
  const int threads = 8;
  const int per_thread = rt::bench::Scaled(8, 3);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\nConcurrent sweep (%d clients x %d requests, %u cores):\n",
              threads, per_thread, cores);
  SweepResult base = RunConcurrentSweep(&p, 1, 1, threads, per_thread);
  SweepResult pooled = RunConcurrentSweep(&p, 4, 2, threads, per_thread);
  const double base_tput = base.wall > 0 ? base.requests / base.wall : 0;
  const double pooled_tput =
      pooled.wall > 0 ? pooled.requests / pooled.wall : 0;
  const double speedup = base_tput > 0 ? pooled_tput / base_tput : 0;
  rt::TextTable sweep({"config", "ok/total", "throughput", "served"});
  sweep.AddRow({"1 worker, 1 session",
                std::to_string(base.ok) + "/" + std::to_string(base.requests),
                rt::FormatDouble(base_tput, 1) + " req/s",
                std::to_string(base.served)});
  sweep.AddRow({"4 workers, 2 sessions",
                std::to_string(pooled.ok) + "/" +
                    std::to_string(pooled.requests),
                rt::FormatDouble(pooled_tput, 1) + " req/s",
                std::to_string(pooled.served)});
  std::printf("%s", sweep.Render().c_str());
  std::printf("speedup: %.2fx\n", speedup);

  // Shape: all requests succeed through the proxy; the backend tier saw
  // them (true decoupling); responses parse as structured recipes; the
  // concurrent sweep drops nothing and /v1/metrics agrees with the
  // clients. The >= 2x pooled speedup is only physically meaningful with
  // enough cores to run workers in parallel, so it is gated on that.
  auto parsed = rt::Json::Parse(sample_body);
  const bool structured =
      parsed.ok() && parsed->Get("recipe").Get("title").is_string() &&
      parsed->Get("recipe").Get("instructions").is_array();
  const bool sweep_ok =
      base.ok == base.requests && pooled.ok == pooled.requests &&
      base.served >= base.requests && pooled.served >= pooled.requests &&
      base.metrics_consistent && pooled.metrics_consistent;
  const bool speedup_ok = cores < 4 || speedup >= 2.0;
  if (cores < 4) {
    std::printf("speedup gate skipped: %u cores (< 4) cannot run the "
                "worker pool in parallel\n", cores);
  }
  const bool shape_ok = page_ok && ok_count == requests &&
                        backend.requests_served() >= requests && structured &&
                        sweep_ok && speedup_ok;
  std::printf("shape check: UI page + 100%% proxied success + structured "
              "recipe JSON + lossless concurrent sweep ... %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
