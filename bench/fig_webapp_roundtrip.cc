// Experiment E6 — reproduces Figs. 4-5: the web application's request
// path. A user's ingredient list enters the decoupled frontend, is
// proxied to the model backend, and a structured recipe (title,
// quantified ingredients, instructions) returns. Measures end-to-end
// round-trip latency and sequential throughput through both tiers.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  // Train a small word-LSTM backend (fast, structurally coherent).
  rt::PipelineOptions options;
  options.corpus = rt::bench::StandardCorpus(rt::bench::Scaled(300, 100));
  options.model = rt::ModelKind::kWordLstm;
  options.trainer.epochs = rt::bench::Scaled(5, 2);
  options.trainer.batch_size = 8;
  options.trainer.seq_len = 48;
  auto pipeline = rt::Pipeline::Create(options);
  if (!pipeline.ok() || !(*pipeline)->Train().ok()) {
    std::fprintf(stderr, "backend model setup failed\n");
    return 1;
  }
  rt::Pipeline& p = **pipeline;

  rt::BackendService backend(
      [&p](const rt::GenerateRequest& req) -> rt::StatusOr<rt::Recipe> {
        rt::GenerationOptions gen;
        gen.max_new_tokens = req.max_tokens;
        gen.sampling.temperature = static_cast<float>(req.temperature);
        gen.sampling.top_k = req.top_k;
        gen.seed = req.seed;
        RT_ASSIGN_OR_RETURN(rt::GeneratedRecipe out,
                            p.GenerateFromIngredients(req.ingredients, gen));
        return out.recipe;
      });
  if (!backend.Start(0).ok()) {
    std::fprintf(stderr, "backend start failed\n");
    return 1;
  }
  rt::FrontendService frontend(backend.port());
  if (!frontend.Start(0).ok()) {
    std::fprintf(stderr, "frontend start failed\n");
    return 1;
  }

  // The UI page itself (Fig. 4).
  auto page = rt::HttpGet(frontend.port(), "/");
  const bool page_ok =
      page.ok() && page->status == 200 &&
      page->body.find("Ratatouille") != std::string::npos;
  std::printf("FIG. 4 - frontend serves the ingredient-picker page: %s\n",
              page_ok ? "yes" : "NO");

  // Generation round trips (Fig. 5).
  const std::vector<std::string> bodies{
      R"({"ingredients":["tomato","onion","garlic"],"max_tokens":90,"seed":1})",
      R"({"ingredients":["chicken","rice","cumin"],"max_tokens":90,"seed":2})",
      R"({"ingredients":["flour","butter","sugar"],"max_tokens":90,"seed":3})",
  };
  const int reps = rt::bench::Scaled(10, 3);
  std::vector<double> latencies;
  int ok_count = 0;
  std::string sample_body;
  rt::Timer total;
  for (int r = 0; r < reps; ++r) {
    for (const auto& body : bodies) {
      rt::Timer timer;
      auto resp = rt::HttpPost(frontend.port(), "/api/generate", body);
      latencies.push_back(timer.ElapsedSeconds());
      if (resp.ok() && resp->status == 200) {
        ++ok_count;
        if (sample_body.empty()) sample_body = resp->body;
      }
    }
  }
  const double wall = total.ElapsedSeconds();
  const int requests = static_cast<int>(latencies.size());
  std::sort(latencies.begin(), latencies.end());
  const double p50 = latencies[requests / 2];
  const double p95 = latencies[static_cast<size_t>(requests * 0.95)];

  std::printf("FIG. 5 - sample structured response (truncated):\n%.300s"
              "...\n\n",
              sample_body.c_str());
  rt::TextTable table({"metric", "value"});
  table.AddRow({"requests", std::to_string(requests)});
  table.AddRow({"success", std::to_string(ok_count)});
  table.AddRow({"p50 latency", rt::FormatDouble(p50 * 1e3, 1) + " ms"});
  table.AddRow({"p95 latency", rt::FormatDouble(p95 * 1e3, 1) + " ms"});
  table.AddRow({"throughput",
                rt::FormatDouble(requests / wall, 1) + " req/s"});
  table.AddRow({"backend requests seen",
                std::to_string(backend.requests_served())});
  std::printf("%s", table.Render().c_str());

  frontend.Stop();
  backend.Stop();

  // Shape: all requests succeed through the proxy; the backend tier saw
  // them (true decoupling); responses parse as structured recipes.
  auto parsed = rt::Json::Parse(sample_body);
  const bool structured = parsed.ok() && parsed->Get("title").is_string() &&
                          parsed->Get("instructions").is_array();
  const bool shape_ok = page_ok && ok_count == requests &&
                        backend.requests_served() >= requests && structured;
  std::printf("shape check: UI page + 100%% proxied success + structured "
              "recipe JSON ... %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
