// Experiment E1 — reproduces Table I: "Performance statistics of models".
//
// Paper numbers (RecipeDB, authors' training budget):
//   Char-level LSTM  0.347
//   Word-level LSTM  0.412
//   DistilGPT2       0.442
//   GPT-2 medium     0.806
//
// This harness trains all four models from scratch on the synthetic
// RecipeDB corpus and reports corpus BLEU of generated continuations of
// held-out ingredient prompts. Absolute values differ from the paper (a
// synthetic corpus and CPU-scale models), but the *ordering* and the
// pronounced jump to GPT-2 medium are the reproduced shape.
//
// Env: RT_BENCH_SCALE=quick|default|full scales corpus/epochs.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using rt::bench::RunTrainEval;
  using rt::bench::Scaled;
  using rt::bench::Table1Spec;

  const int num_recipes = Scaled(400, 120);
  std::printf("[table1] corpus=%d recipes, scale=%.2f\n", num_recipes,
              rt::bench::ScaleFactor());

  const std::vector<std::pair<rt::ModelKind, double>> rows{
      {rt::ModelKind::kCharLstm, 0.347},
      {rt::ModelKind::kWordLstm, 0.412},
      {rt::ModelKind::kDistilGpt2, 0.442},
      {rt::ModelKind::kGpt2Medium, 0.806},
  };

  rt::TextTable table({"Model", "BLEU (paper)", "BLEU (ours)",
                       "sentence BLEU", "val loss", "params",
                       "train s", "tok/s"});
  double prev_bleu = -1.0;
  bool ordering_holds = true;
  for (const auto& [kind, paper_bleu] : rows) {
    std::printf("[table1] training %s ...\n", rt::ModelKindName(kind));
    std::fflush(stdout);
    auto outcome = RunTrainEval(Table1Spec(kind, num_recipes));
    if (!outcome.ok()) {
      std::fprintf(stderr, "[table1] %s failed: %s\n",
                   rt::ModelKindName(kind),
                   outcome.status().ToString().c_str());
      return 1;
    }
    const double bleu = outcome->report.corpus_bleu;
    table.AddRow({rt::ModelKindName(kind),
                  rt::FormatDouble(paper_bleu, 3),
                  rt::FormatDouble(bleu, 3),
                  rt::FormatDouble(outcome->report.mean_sentence_bleu, 3),
                  rt::FormatDouble(outcome->val_loss, 3),
                  rt::FormatWithCommas(
                      static_cast<long long>(outcome->params)),
                  rt::FormatDouble(outcome->train.seconds, 1),
                  rt::FormatDouble(outcome->train.tokens_per_second, 0)});
    if (bleu < prev_bleu) ordering_holds = false;
    prev_bleu = bleu;
  }

  std::printf("\nTABLE I - PERFORMANCE STATISTICS OF MODELS\n%s",
              table.Render().c_str());
  std::printf("shape check: BLEU ordering char-LSTM < word-LSTM < "
              "DistilGPT2 < GPT-2 medium ... %s\n",
              ordering_holds ? "HOLDS" : "VIOLATED");
  std::printf("\nCSV:\n%s", table.RenderCsv().c_str());
  return ordering_holds ? 0 : 2;
}
