// Experiment E2 — reproduces Figs. 1-2: the dataset before vs after
// preprocessing. Prints a raw record, the same record in the tagged
// training format, and the per-rule removal accounting the paper's
// Sec. III describes ("removing incomplete and redundant recipes, fixing
// the length of recipes to 2000 characters").

#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

int main() {
  const int n = rt::bench::Scaled(4000, 500);
  rt::RecipeDbGenerator generator(rt::bench::StandardCorpus(n));
  auto corpus = generator.Generate();

  std::printf("FIG. 1 - DATASET BEFORE PREPROCESSING (one raw record)\n");
  std::printf("------------------------------------------------------\n");
  std::printf("%s\n", corpus[1].ToRawString().c_str());

  rt::PreprocessStats stats;
  auto clean = rt::Preprocessor().Run(corpus, &stats);
  if (clean.empty()) {
    std::fprintf(stderr, "preprocessing removed everything\n");
    return 1;
  }

  std::printf("FIG. 2 - DATASET AFTER PREPROCESSING (same corpus, tagged "
              "format)\n");
  std::printf("------------------------------------------------------\n");
  std::printf("%s\n\n", clean[1].ToTaggedString().c_str());

  rt::TextTable table({"Preprocessing rule", "Records affected"});
  table.AddRow({"input records", std::to_string(stats.input_count)});
  table.AddRow({"removed: incomplete",
                std::to_string(stats.removed_incomplete)});
  table.AddRow({"removed: redundant (duplicates)",
                std::to_string(stats.removed_duplicates)});
  table.AddRow({"merged: short tail (-3 sigma)",
                std::to_string(stats.merged_short)});
  table.AddRow({"removed: outside 2-sigma band",
                std::to_string(stats.removed_band)});
  table.AddRow({"clamped: > 2000 chars", std::to_string(stats.clamped)});
  table.AddRow({"output records", std::to_string(stats.output_count)});
  std::printf("%s", table.Render().c_str());

  const bool shape_ok =
      stats.removed_incomplete > 0 && stats.removed_duplicates > 0 &&
      stats.clamped > 0 && stats.output_count < stats.input_count &&
      stats.after.max_len <= 2000;
  std::printf("shape check: every rule fired and max length <= 2000 ... "
              "%s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
