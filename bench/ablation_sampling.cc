// Ablation A1 — decoding strategy: greedy vs temperature vs top-k vs
// top-p on the same trained GPT-2. Trade-off to reproduce: greedy
// maximizes BLEU (fidelity to the reference) while sampling increases
// distinct-2 diversity and novelty; very high temperature collapses both.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using rt::bench::Scaled;

  // Same configuration the Table I experiment trains GPT-2 medium with.
  rt::PipelineOptions options =
      rt::bench::Table1Spec(rt::ModelKind::kGpt2Medium, Scaled(400, 120))
          .pipeline;
  options.model = rt::ModelKind::kGpt2Medium;
  options.trainer.epochs = Scaled(12, 2);
  auto pipeline = rt::Pipeline::Create(options);
  if (!pipeline.ok() || !(*pipeline)->Train().ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  rt::Pipeline& p = **pipeline;
  const int samples = Scaled(15, 5);

  struct Strategy {
    const char* name;
    rt::SamplingOptions sampling;
    int beam_width = 0;
  };
  const std::vector<Strategy> strategies{
      {"greedy", {.greedy = true}},
      {"beam-4", {}, /*beam_width=*/4},
      {"temperature 0.7", {.temperature = 0.7f}},
      {"temperature 1.0", {.temperature = 1.0f}},
      {"temperature 2.0", {.temperature = 2.0f}},
      {"top-k 8", {.temperature = 1.0f, .top_k = 8}},
      {"top-p 0.9", {.temperature = 1.0f, .top_p = 0.9f}},
  };

  rt::TextTable table({"strategy", "corpus BLEU", "distinct-2",
                       "novelty", "ingredient coverage"});
  double greedy_bleu = 0.0, greedy_d2 = 0.0;
  double topk_bleu = 0.0, topk_d2 = 0.0, hot_bleu = 1.0;
  for (const auto& s : strategies) {
    rt::GenerationOptions gen;
    gen.sampling = s.sampling;
    gen.beam_width = s.beam_width;
    gen.max_new_tokens = 220;
    gen.seed = 77;
    auto report = p.EvaluateOnTestSet(samples, gen);
    if (!report.ok()) {
      std::fprintf(stderr, "eval failed for %s\n", s.name);
      return 1;
    }
    table.AddRow({s.name, rt::FormatDouble(report->corpus_bleu, 3),
                  rt::FormatDouble(report->distinct2, 3),
                  rt::FormatDouble(report->novelty_rate, 2),
                  rt::FormatDouble(report->mean_ingredient_coverage, 2)});
    if (std::string(s.name) == "greedy") {
      greedy_bleu = report->corpus_bleu;
      greedy_d2 = report->distinct2;
    }
    if (std::string(s.name) == "top-k 8") {
      topk_bleu = report->corpus_bleu;
      topk_d2 = report->distinct2;
    }
    if (std::string(s.name) == "temperature 2.0") {
      hot_bleu = report->corpus_bleu;
    }
  }
  std::printf("ABLATION A1 - SAMPLING STRATEGY (same trained GPT-2 "
              "medium, %d prompts)\n%s",
              samples, table.Render().c_str());

  const bool shape_ok = greedy_bleu > hot_bleu && topk_d2 > greedy_d2 &&
                        topk_bleu <= greedy_bleu + 0.05;
  std::printf("shape check: greedy maximizes BLEU, sampling maximizes "
              "diversity, t=2.0 collapses fidelity ... %s\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  return shape_ok ? 0 : 2;
}
