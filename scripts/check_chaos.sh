#!/usr/bin/env bash
# Chaos smoke check over the supervised replica fleet.
#
# Usage: check_chaos.sh [path/to/ratatouille_cli]
#        (default: build/tools/ratatouille_cli)
#
# Boots `serve --replicas 3 --chaos-seed <fixed>` (three supervised
# backend processes behind the retrying router, with the seeded chaos
# driver arming process-level faults on a deterministic schedule), then
# drives it with plain curl while killing a replica mid-load:
#
#   1. the router must report all 3 replicas healthy before load starts;
#   2. a mixed buffered + streamed load must see ZERO unexpected client
#      errors: every buffered response is 200 or a structured 503, and
#      every accepted stream ends in a terminal `done` or a structured
#      `error` frame (backend_lost / generation_failed /
#      deadline_exceeded) — never silent truncation;
#   3. mid-load, one replica is SIGKILLed by hand (on top of whatever
#      the chaos schedule is doing); the supervisor must restart it and
#      the fleet must return to 3 healthy replicas with
#      replica_restarts_total >= 1;
#   4. the dead replica's flight-recorder postmortem file must be
#      collected by the supervisor and served at the router's
#      GET /v1/debug/postmortem (saved to /tmp/chaos_postmortem.json as
#      the CI artifact).
#
# Exit 0 = all checks pass. Any failure prints the offending response.
set -euo pipefail

CLI="${1:-build/tools/ratatouille_cli}"
ROUTER_PORT=18651
FRONTEND_PORT=18652
ROUTER="http://127.0.0.1:${ROUTER_PORT}"
CHAOS_SEED=20260808
REQUESTS=24
KILL_AT=8

if [[ ! -x "$CLI" ]]; then
  echo "FAIL  ratatouille_cli binary not found at $CLI" >&2
  exit 1
fi

POSTMORTEM_DIR="/tmp/chaos-postmortems-$$"
mkdir -p "$POSTMORTEM_DIR"

"$CLI" serve --model=word-lstm --recipes=120 --epochs=1 \
  --replicas=3 --chaos-seed="$CHAOS_SEED" \
  --postmortem-dir="$POSTMORTEM_DIR" \
  --backend-port="$ROUTER_PORT" --frontend-port="$FRONTEND_PORT" \
  >/tmp/chaos_fleet.log 2>&1 &
FLEET_PID=$!
trap 'kill "$FLEET_PID" 2>/dev/null || true; wait "$FLEET_PID" 2>/dev/null || true' EXIT

metrics_field() {
  # metrics_field <python-expr over parsed metrics dict `m`>
  curl -sf --max-time 5 "$ROUTER/v1/metrics" \
    | python3 -c "import json,sys; m=json.load(sys.stdin); print($1)"
}

# The parent trains the small model once before spawning replicas; poll
# until the router reports every replica healthy (or 180s pass).
for _ in $(seq 1 180); do
  if ! kill -0 "$FLEET_PID" 2>/dev/null; then
    echo "FAIL  fleet exited during startup:" >&2
    cat /tmp/chaos_fleet.log >&2
    exit 1
  fi
  HEALTHY=$(metrics_field "int(m['replicas']['healthy'])" 2>/dev/null || echo 0)
  if [[ "$HEALTHY" == "3" ]]; then
    break
  fi
  sleep 1
done
if [[ "${HEALTHY:-0}" != "3" ]]; then
  echo "FAIL  fleet never reached 3 healthy replicas" >&2
  cat /tmp/chaos_fleet.log >&2
  exit 1
fi
echo "PASS  fleet up: 3/3 replicas healthy behind the router"

BUFFERED_BODY='{"ingredients":["tomato","basil"],"max_tokens":16}'
STREAM_BODY='{"ingredients":["tomato","basil"],"max_tokens":16,"stream":true}'

VIOLATIONS=0
OK_COUNT=0
ALLOWED_503=0

check_buffered() {
  local out code
  out=$(curl -s --max-time 45 -w '\n%{http_code}' \
        "$ROUTER/v1/generate" -d "$BUFFERED_BODY" || echo $'\ncurlfail')
  code=${out##*$'\n'}
  case "$code" in
    200) OK_COUNT=$((OK_COUNT + 1)) ;;
    503) ALLOWED_503=$((ALLOWED_503 + 1)) ;;
    *)
      echo "FAIL  buffered request: unexpected outcome ($code):" >&2
      echo "$out" >&2
      VIOLATIONS=$((VIOLATIONS + 1))
      ;;
  esac
}

check_stream() {
  local out code body
  out=$(curl -sN --max-time 45 -w '\n%{http_code}' \
        "$ROUTER/v1/generate" -d "$STREAM_BODY" || echo $'\ncurlfail')
  code=${out##*$'\n'}
  body=${out%$'\n'*}
  if [[ "$code" == "503" ]]; then
    ALLOWED_503=$((ALLOWED_503 + 1))
    return
  fi
  if [[ "$code" != "200" ]]; then
    echo "FAIL  streamed request: unexpected outcome ($code):" >&2
    echo "$body" >&2
    VIOLATIONS=$((VIOLATIONS + 1))
    return
  fi
  # A 200 stream must end in a terminal frame: done, or a structured
  # error with an allowed code. Silent truncation is the failure mode
  # the router + relay exist to kill.
  local last_event
  last_event=$(grep '^event: ' <<<"$body" | tail -1)
  if [[ "$last_event" == "event: done" ]]; then
    OK_COUNT=$((OK_COUNT + 1))
  elif [[ "$last_event" == "event: error" ]] && \
       grep -qE '"code": ?"(backend_lost|generation_failed|deadline_exceeded)"' \
         <<<"$body"; then
    OK_COUNT=$((OK_COUNT + 1))
  else
    echo "FAIL  stream truncated without a terminal frame:" >&2
    echo "$body" | tail -5 >&2
    VIOLATIONS=$((VIOLATIONS + 1))
  fi
}

for i in $(seq 1 "$REQUESTS"); do
  if (( i == KILL_AT )); then
    # Mid-load, SIGKILL replica 1 by hand on top of the chaos schedule.
    VICTIM=$(metrics_field "int(m['replica_detail'][1]['pid'])" || echo 0)
    if (( VICTIM > 0 )); then
      kill -9 "$VICTIM" 2>/dev/null || true
      echo "INFO  SIGKILLed replica 1 (pid $VICTIM) mid-load"
    fi
  fi
  if (( i % 3 == 0 )); then
    check_stream
  else
    check_buffered
  fi
done

if (( VIOLATIONS > 0 )); then
  echo "FAIL  $VIOLATIONS unexpected client-visible error(s) under chaos" >&2
  exit 1
fi
if (( OK_COUNT == 0 )); then
  echo "FAIL  no request succeeded during the soak" >&2
  exit 1
fi
echo "PASS  $REQUESTS requests under chaos: $OK_COUNT ok," \
     "$ALLOWED_503 structured 503(s), 0 unexpected errors"

# The fleet heals: the kill shows up in the restart counter and all 3
# replicas come back healthy.
HEALED=0
for _ in $(seq 1 90); do
  STATE=$(metrics_field \
    "str(int(m['replicas']['healthy'])) + ' ' + str(int(m['replica_restarts_total']))" \
    2>/dev/null || echo "0 0")
  if [[ "$STATE" == "3 "* ]] && (( ${STATE#3 } >= 1 )); then
    HEALED=1
    break
  fi
  sleep 1
done
if (( HEALED != 1 )); then
  echo "FAIL  fleet did not heal (healthy/restarts: ${STATE:-unknown})" >&2
  cat /tmp/chaos_fleet.log >&2
  exit 1
fi
echo "PASS  fleet healed: 3/3 healthy, replica_restarts_total >= 1"

# The dead replica left a flight-recorder file behind (heartbeats at
# minimum — SIGKILL gives no handler a chance to run); the supervisor
# collects it on reap and the router serves the fleet-wide archive.
PM_JSON=/tmp/chaos_postmortem.json
COLLECTED=0
for _ in $(seq 1 30); do
  if curl -sf --max-time 5 "$ROUTER/v1/debug/postmortem" -o "$PM_JSON"; then
    COLLECTED=$(python3 -c \
      "import json; print(int(json.load(open('$PM_JSON'))['collected']))" \
      2>/dev/null || echo 0)
    if (( COLLECTED >= 1 )); then
      break
    fi
  fi
  sleep 1
done
if (( COLLECTED < 1 )); then
  echo "FAIL  router served no collected postmortem after the SIGKILL" >&2
  cat "$PM_JSON" >&2 2>/dev/null || true
  cat /tmp/chaos_fleet.log >&2
  exit 1
fi
# Every collected record must be a parseable flight-recorder dump with
# the supervisor's annotations attached.
if ! python3 - "$PM_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
records = doc["postmortems"]
assert records, "collected counter positive but postmortems array empty"
for r in records:
    assert r["postmortem_version"] == 1, r
    assert "replica_port" in r and "replica_pid" in r, r
    assert "gauges" in r, r
print(f"INFO  {len(records)} postmortem record(s), "
      f"signals={[int(r.get('killed_by_signal', 0)) for r in records]}")
EOF
then
  echo "FAIL  collected postmortem records failed validation" >&2
  exit 1
fi
echo "PASS  postmortem collected and served by the router" \
     "(artifact: $PM_JSON)"

rm -rf "$POSTMORTEM_DIR"

echo
echo "all chaos smoke checks passed"
