#!/usr/bin/env bash
# Check-only formatting gate (CI `format` job). Exits nonzero when any
# seeded file deviates from the checked-in .clang-format; never edits
# files. Fix a finding with:  clang-format-14 -i <file>
#
# The list is seeded with the files the batched-decode work introduced
# or rebuilt; append files here as they are brought into compliance so
# the gate only ever ratchets forward.
set -euo pipefail
cd "$(dirname "$0")/.."

# Pin clang-format-14 (the version CI installs) so local runs and CI
# agree on the formatting; fall back to a bare clang-format when the
# pinned one is absent.
CLANG_FORMAT="${CLANG_FORMAT:-}"
if [[ -z "${CLANG_FORMAT}" ]]; then
  for candidate in clang-format-14 clang-format; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CLANG_FORMAT="${candidate}"
      break
    fi
  done
fi
if [[ -z "${CLANG_FORMAT}" ]]; then
  echo "error: clang-format-14 (or clang-format) not found" >&2
  exit 2
fi

FILES=(
  src/models/batch_decode.h
  src/serve/batch_scheduler.h
  src/serve/batch_scheduler.cc
  tests/tensor/cache_arena_test.cc
  tests/serve/batch_scheduler_test.cc
)

status=0
for file in "${FILES[@]}"; do
  if ! "${CLANG_FORMAT}" --dry-run --Werror "${file}"; then
    status=1
  fi
done

if [[ "${status}" -ne 0 ]]; then
  echo "" >&2
  echo "formatting violations found; fix with:" >&2
  echo "  ${CLANG_FORMAT} -i <file>" >&2
fi
exit "${status}"
