#!/usr/bin/env bash
# SSE smoke check over the real two-tier web app.
#
# Usage: check_sse.sh [path/to/web_app]   (default: build/examples/web_app)
#
# Boots the demo stack (backend + frontend reverse proxy, shared-prefix
# KV cache on), then drives it with plain curl:
#
#   1. a streamed generation through the FRONTEND proxy must arrive as
#      well-formed SSE: >= 1 `event: token` frame and a terminal
#      `event: done` frame carrying a finish_reason;
#   2. repeating the identical request must warm the prefix cache —
#      /v1/metrics prefix_cache_hits has to move;
#   3. a streamed request with an unknown field must come back as a
#      buffered JSON 400, not an SSE stream.
#
# Exit 0 = all checks pass. Any failure prints the offending response.
set -euo pipefail

WEB_APP="${1:-build/examples/web_app}"
BACKEND_PORT=18641
FRONTEND_PORT=18642
BASE="http://127.0.0.1:${FRONTEND_PORT}"
METRICS="http://127.0.0.1:${BACKEND_PORT}/v1/metrics"

if [[ ! -x "$WEB_APP" ]]; then
  echo "FAIL  web_app binary not found at $WEB_APP" >&2
  exit 1
fi

"$WEB_APP" "$BACKEND_PORT" "$FRONTEND_PORT" >/tmp/web_app.log 2>&1 &
APP_PID=$!
trap 'kill "$APP_PID" 2>/dev/null || true; wait "$APP_PID" 2>/dev/null || true' EXIT

# The app trains a small word-LSTM before listening; poll until the
# frontend answers (or the process dies / 180s pass).
for _ in $(seq 1 180); do
  if ! kill -0 "$APP_PID" 2>/dev/null; then
    echo "FAIL  web_app exited during startup:" >&2
    cat /tmp/web_app.log >&2
    exit 1
  fi
  if curl -sf --max-time 2 "$BASE/v1/healthz" >/dev/null 2>&1; then
    break
  fi
  sleep 1
done
curl -sf --max-time 2 "$BASE/v1/healthz" >/dev/null || {
  echo "FAIL  frontend never became healthy" >&2
  cat /tmp/web_app.log >&2
  exit 1
}

BODY='{"ingredients":["tomato","basil","onion"],"max_tokens":24,"stream":true}'

check_stream() {
  local label="$1" out="$2"
  if ! grep -q "^event: token" <<<"$out"; then
    echo "FAIL  $label: no 'event: token' frame in stream:" >&2
    echo "$out" >&2
    exit 1
  fi
  if ! grep -q "^event: done" <<<"$out"; then
    echo "FAIL  $label: no terminal 'event: done' frame:" >&2
    echo "$out" >&2
    exit 1
  fi
  if ! grep -q '"finish_reason"' <<<"$out"; then
    echo "FAIL  $label: done frame carries no finish_reason:" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "PASS  $label: token frames + done(finish_reason) via frontend proxy"
}

hits_gauge() {
  curl -sf --max-time 5 "$METRICS" \
    | python3 -c 'import json,sys; print(int(json.load(sys.stdin).get("prefix_cache_hits", 0)))'
}

# 1. Cold streamed request through the proxy.
COLD=$(curl -sN --max-time 60 "$BASE/v1/generate" -d "$BODY")
check_stream "cold stream" "$COLD"
HITS_BEFORE=$(hits_gauge)

# 2. Identical repeat: the shared-prefix KV cache must serve the prefill.
WARM=$(curl -sN --max-time 60 "$BASE/v1/generate" -d "$BODY")
check_stream "warm stream" "$WARM"
HITS_AFTER=$(hits_gauge)
if (( HITS_AFTER <= HITS_BEFORE )); then
  echo "FAIL  prefix_cache_hits did not move on the warm request" \
       "($HITS_BEFORE -> $HITS_AFTER)" >&2
  exit 1
fi
echo "PASS  warm request hit the prefix cache" \
     "(prefix_cache_hits $HITS_BEFORE -> $HITS_AFTER)"

# 3. Pre-stream validation failures stay buffered JSON errors.
ERR=$(curl -s --max-time 10 -w '\n%{http_code}' "$BASE/v1/generate" \
  -d '{"ingredients":["tomato"],"stream":true,"bogus":1}')
CODE=${ERR##*$'\n'}
if [[ "$CODE" != "400" ]] || ! grep -q '"unknown_field"' <<<"$ERR"; then
  echo "FAIL  unknown field on a streamed request: want buffered 400" \
       "unknown_field, got:" >&2
  echo "$ERR" >&2
  exit 1
fi
echo "PASS  streamed request with unknown field -> buffered 400 unknown_field"

echo
echo "all SSE smoke checks passed"
