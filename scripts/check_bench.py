#!/usr/bin/env python3
"""Perf-regression gate over bench_kernels output.

Usage:
    check_bench.py CURRENT.json [BASELINE.json] [--sched=SCHED.json]
                   [--quant=QUANT.json]

Families of checks:

1. Machine-independent ratio gates, computed entirely within
   CURRENT.json (these never flake across runner classes):
     * blocked GEMM >= 3x the reference GEMM (single thread);
     * int8 packed GEMV >= 2x the packed fp32 GEMV at m=1 (the
       gemv_mlp_int8 / gemv_mlp_fp32 rows, GPT-2 medium MLP
       up-projection shape) — the bandwidth claim that justifies the
       int8 decode path;
     * batch-8 batched decode >= 2x the aggregate throughput of
       sequential m=1 decodes (the gpt2_decode_batched_b1 row);
     * tracing overhead <= 3%: decode with the span ring enabled
       (gpt2_decode_traced) must hold >= 97% of decode with the
       observability hooks compiled in but disabled (gpt2_decode_step);
     * full observability overhead <= 3%: decode with tracing + per-
       token SLO recording + background metrics-history sampling all on
       (gpt2_decode_sampled) must also hold >= 97% of the disabled row;
     * warm shared-prefix TTFT >= 2x better than cold: restoring a
       published prefix snapshot (gpt2_ttft_warm_prefix) must reach the
       first token at least twice as fast as prefilling the same
       64-token prompt from scratch (gpt2_ttft_cold_prefill).

2. Baseline-relative gates, only when BASELINE.json is given: each
   gated metric must stay within TOLERANCE (25%) of the checked-in
   baseline. When a legitimate hardware or kernel change moves the
   numbers, regenerate the baseline:

       ./build/bench/bench_kernels bench/BENCH_baseline.json --smoke

3. Scheduling-policy gates, only when --sched=SCHED.json is given
   (the bench_sched overload run: 2x capacity, 50/50 interactive vs
   batch, FIFO then EDF on the same workload). In-run ratio, so it
   never flakes across runner classes:
     * EDF interactive p99 latency <= SCHED_P99_RATIO (0.7x) of the
       FIFO in-run baseline — the headline claim of the deadline-aware
       scheduler;
     * batch token throughput under EDF is printed informationally
       (expected to stay within ~10% of FIFO).

4. Int8 quantization parity gates, only when --quant=QUANT.json is
   given (the bench_quant run; CI's quant-parity job). In-run ratios:
     * Table-I BLEU with int8 weights within QUANT_BLEU_TOLERANCE (2%
       relative) of the fp32 BLEU measured in the same run on the same
       trained weights and prompts, for both quant_bleu_gpt2 and
       quant_bleu_lstm (only regressions count — int8 scoring above
       fp32 passes);
     * the quant_gemv_m1 row's int8 time beats fp32 by
       >= INT8_GEMV_MIN_SPEEDUP.

Exit status 0 = all gates pass, 1 = at least one failed (CI fails the
bench-smoke / quant-parity job on it).
"""

import json
import sys

# (op, threads, field, human label) of each baseline-gated metric.
GATED = [
    ("gemm_blocked", 1, "gflops", "single-thread blocked GEMM GFLOP/s"),
    ("gpt2_decode_step", 1, "tokens_per_sec",
     "single-thread decode tokens/sec"),
    ("gpt2_decode_batched_b8", 1, "tokens_per_sec",
     "batch-8 aggregate decode tokens/sec"),
]
TOLERANCE = 0.25  # fail when current < (1 - TOLERANCE) * baseline

BLOCKED_MIN_SPEEDUP = 3.0  # blocked GEMM vs reference, single thread
BATCH8_MIN_SPEEDUP = 2.0   # batch-8 aggregate vs sequential m=1
TTFT_MIN_SPEEDUP = 2.0     # warm shared-prefix TTFT vs cold prefill

# Tracing-overhead gate: the observability hooks (span recording, kernel
# profiler) are compiled into every decode path but default to disabled;
# their cost must stay a single relaxed-atomic branch per hook. Gated as
# a within-run ratio (it never flakes across runner classes, unlike a
# 3% absolute comparison on machines whose clocks drift +-10%): the
# gpt2_decode_traced row — hooks enabled AND two spans recorded per
# token, a strict superset of the disabled-mode cost — must hold >= 97%
# of gpt2_decode_step (hooks compiled in but disabled) from the same
# run. The baseline-relative decode gate above (25%) separately bounds
# drift of the disabled row against the checked-in baseline.
TRACING_OVERHEAD = 0.03

# EDF must cut interactive p99 latency to at most this fraction of the
# FIFO baseline measured in the same bench_sched run (>= 30% better).
SCHED_P99_RATIO = 0.7

# Int8 weight quantization: m=1 decode GEMV speedup over packed fp32,
# and how much corpus BLEU the int8 path may lose relative to fp32 on
# the same trained weights (bench_quant run).
INT8_GEMV_MIN_SPEEDUP = 2.0
QUANT_BLEU_TOLERANCE = 0.02


def load(path):
    """Maps (op, threads) -> result row (first occurrence wins)."""
    with open(path) as f:
        doc = json.load(f)
    table = {}
    for row in doc["results"]:
        table.setdefault((row["op"], row["threads"]), row)
    return table


def get(table, op, threads, field, path):
    key = (op, threads)
    if key not in table:
        print(f"FAIL  {path}: missing row op={op} threads={threads}")
        return None
    if field not in table[key]:
        # A schema mismatch (stale baseline, renamed field) must read as
        # a gate failure with a pointer to the offender, not a KeyError
        # traceback.
        print(f"FAIL  missing gate key {field} in {path} "
              f"(row op={op} threads={threads})")
        return None
    return table[key][field]


def main():
    sched_path = None
    quant_path = None
    positional = []
    for arg in sys.argv[1:]:
        if arg.startswith("--sched="):
            sched_path = arg.split("=", 1)[1]
        elif arg.startswith("--quant="):
            quant_path = arg.split("=", 1)[1]
        else:
            positional.append(arg)
    if not positional and quant_path is None and sched_path is None:
        print(__doc__)
        return 2
    failures = 0
    if positional:
        failures += check_kernels(positional)
    if sched_path is not None:
        failures += check_sched(sched_path)
    if quant_path is not None:
        failures += check_quant(quant_path)

    if failures:
        print(f"\n{failures} bench gate(s) failed. If the regression is "
              "intentional (new hardware, algorithm change), regenerate "
              "bench/BENCH_baseline.json — see scripts/check_bench.py "
              "docstring.")
        return 1
    print("\nall bench gates passed")
    return 0


def check_kernels(positional):
    current_path = positional[0]
    current = load(current_path)
    failures = 0

    # Ratio gates within the current run.
    ref = get(current, "gemm_ref", 1, "gflops", current_path)
    blocked = get(current, "gemm_blocked", 1, "gflops", current_path)
    if ref is None or blocked is None:
        failures += 1
    else:
        speedup = blocked / ref
        ok = speedup >= BLOCKED_MIN_SPEEDUP
        print(f"{'PASS' if ok else 'FAIL'}  blocked GEMM speedup "
              f"{speedup:.2f}x (gate: >= {BLOCKED_MIN_SPEEDUP:.1f}x)")
        failures += 0 if ok else 1

    gemv_f32 = get(current, "gemv_mlp_fp32", 1, "ns_per_iter", current_path)
    gemv_i8 = get(current, "gemv_mlp_int8", 1, "ns_per_iter", current_path)
    if gemv_f32 is None or gemv_i8 is None or gemv_i8 <= 0:
        failures += 1
    else:
        speedup = gemv_f32 / gemv_i8
        ok = speedup >= INT8_GEMV_MIN_SPEEDUP
        print(f"{'PASS' if ok else 'FAIL'}  int8 m=1 GEMV speedup "
              f"{speedup:.2f}x over packed fp32 "
              f"(gate: >= {INT8_GEMV_MIN_SPEEDUP:.1f}x)")
        failures += 0 if ok else 1

    b1 = get(current, "gpt2_decode_batched_b1", 1, "tokens_per_sec",
             current_path)
    b8 = get(current, "gpt2_decode_batched_b8", 1, "tokens_per_sec",
             current_path)
    if b1 is None or b8 is None:
        failures += 1
    else:
        speedup = b8 / b1
        ok = speedup >= BATCH8_MIN_SPEEDUP
        print(f"{'PASS' if ok else 'FAIL'}  batch-8 aggregate speedup "
              f"{speedup:.2f}x (gate: >= {BATCH8_MIN_SPEEDUP:.1f}x)")
        failures += 0 if ok else 1

    cold = get(current, "gpt2_ttft_cold_prefill", 1, "ns_per_iter",
               current_path)
    warm = get(current, "gpt2_ttft_warm_prefix", 1, "ns_per_iter",
               current_path)
    if cold is None or warm is None:
        failures += 1
    else:
        speedup = cold / warm
        ok = speedup >= TTFT_MIN_SPEEDUP
        print(f"{'PASS' if ok else 'FAIL'}  warm shared-prefix TTFT speedup "
              f"{speedup:.2f}x ({warm / 1e6:.2f} ms warm vs "
              f"{cold / 1e6:.2f} ms cold, gate: >= {TTFT_MIN_SPEEDUP:.1f}x)")
        failures += 0 if ok else 1

    # Tracing-overhead ratio gate + informational profiling overhead,
    # both measured within the current run.
    plain = get(current, "gpt2_decode_step", 1, "tokens_per_sec",
                current_path)
    traced = get(current, "gpt2_decode_traced", 1, "tokens_per_sec",
                 current_path)
    if plain is None or traced is None:
        failures += 1
    else:
        pct = 100.0 * (plain - traced) / plain
        ok = traced >= (1.0 - TRACING_OVERHEAD) * plain
        print(f"{'PASS' if ok else 'FAIL'}  tracing overhead {pct:.1f}% "
              f"({traced:.1f} traced vs {plain:.1f} disabled tokens/sec, "
              f"gate: <= {TRACING_OVERHEAD:.0%})")
        failures += 0 if ok else 1
    profiled = current.get(("gpt2_decode_profiled", 1), {}) \
        .get("tokens_per_sec")
    if plain and profiled:
        pct = 100.0 * (plain - profiled) / plain
        print(f"INFO  enabled kernel profiling overhead: {pct:.1f}% "
              f"({profiled:.1f} vs {plain:.1f} tokens/sec)")

    # Full-stack observability gate: tracing + per-token SLO recording
    # + background metrics-history sampling together must also stay
    # within the same in-run overhead budget.
    sampled = get(current, "gpt2_decode_sampled", 1, "tokens_per_sec",
                  current_path)
    if plain is None or sampled is None:
        failures += 1
    else:
        pct = 100.0 * (plain - sampled) / plain
        ok = sampled >= (1.0 - TRACING_OVERHEAD) * plain
        print(f"{'PASS' if ok else 'FAIL'}  tracing+SLO+history overhead "
              f"{pct:.1f}% ({sampled:.1f} sampled vs {plain:.1f} disabled "
              f"tokens/sec, gate: <= {TRACING_OVERHEAD:.0%})")
        failures += 0 if ok else 1

    # Baseline-relative gates.
    if len(positional) > 1:
        baseline_path = positional[1]
        baseline = load(baseline_path)
        for op, threads, field, label in GATED:
            base = get(baseline, op, threads, field, baseline_path)
            cur = get(current, op, threads, field, current_path)
            if base is None or cur is None:
                failures += 1
                continue
            floor = (1.0 - TOLERANCE) * base
            ok = cur >= floor
            print(f"{'PASS' if ok else 'FAIL'}  {label}: "
                  f"{cur:.1f} vs baseline {base:.1f} "
                  f"(floor {floor:.1f})")
            failures += 0 if ok else 1

    return failures


def check_sched(sched_path):
    """Scheduling-policy gates (bench_sched overload run)."""
    failures = 0
    sched = load(sched_path)
    fifo_p99 = get(sched, "sched_fifo_interactive", 1, "p99_ms",
                   sched_path)
    edf_p99 = get(sched, "sched_edf_interactive", 1, "p99_ms",
                  sched_path)
    if fifo_p99 is None or edf_p99 is None or fifo_p99 <= 0:
        failures += 1
    else:
        ratio = edf_p99 / fifo_p99
        ok = ratio <= SCHED_P99_RATIO
        print(f"{'PASS' if ok else 'FAIL'}  EDF interactive p99 "
              f"{ratio:.2f}x of FIFO ({edf_p99:.2f} ms vs "
              f"{fifo_p99:.2f} ms, gate: <= {SCHED_P99_RATIO:.1f}x)")
        failures += 0 if ok else 1
    fifo_tps = get(sched, "sched_fifo_batch", 1, "tokens_per_sec",
                   sched_path)
    edf_tps = get(sched, "sched_edf_batch", 1, "tokens_per_sec",
                  sched_path)
    if fifo_tps and edf_tps:
        print(f"INFO  batch throughput under EDF: "
              f"{edf_tps / fifo_tps:.2f}x of FIFO "
              f"({edf_tps:.1f} vs {fifo_tps:.1f} tokens/sec)")
    return failures


def check_quant(quant_path):
    """Int8 quantization parity gates (bench_quant run)."""
    failures = 0
    quant = load(quant_path)
    for op, label in (("quant_bleu_gpt2", "GPT-2"),
                      ("quant_bleu_lstm", "word-LSTM")):
        fp32 = get(quant, op, 1, "bleu_fp32", quant_path)
        int8 = get(quant, op, 1, "bleu_int8", quant_path)
        if fp32 is None or int8 is None or fp32 <= 0:
            failures += 1
            continue
        # Only a regression counts against the gate; int8 scoring above
        # fp32 (possible — greedy decode can tie-break differently) is
        # a pass with a 0% reported loss.
        loss = max(0.0, (fp32 - int8) / fp32)
        ok = loss <= QUANT_BLEU_TOLERANCE
        print(f"{'PASS' if ok else 'FAIL'}  int8 {label} BLEU parity: "
              f"{int8:.4f} int8 vs {fp32:.4f} fp32 "
              f"({loss:.2%} loss, gate: <= {QUANT_BLEU_TOLERANCE:.0%})")
        failures += 0 if ok else 1
    ns_fp32 = get(quant, "quant_gemv_m1", 1, "ns_fp32", quant_path)
    ns_int8 = get(quant, "quant_gemv_m1", 1, "ns_int8", quant_path)
    if ns_fp32 is None or ns_int8 is None or ns_int8 <= 0:
        failures += 1
    else:
        speedup = ns_fp32 / ns_int8
        ok = speedup >= INT8_GEMV_MIN_SPEEDUP
        print(f"{'PASS' if ok else 'FAIL'}  int8 m=1 GEMV speedup "
              f"{speedup:.2f}x over packed fp32 "
              f"(gate: >= {INT8_GEMV_MIN_SPEEDUP:.1f}x)")
        failures += 0 if ok else 1
    return failures


if __name__ == "__main__":
    sys.exit(main())
