#!/usr/bin/env bash
# Regenerates every paper table/figure and the ablations.
# Usage: scripts/run_all_experiments.sh [quick|default|full]
set -u
scale="${1:-default}"
export RT_BENCH_SCALE="$scale"
cd "$(dirname "$0")/.."
fail=0
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "=============================================================="
  echo ">>> $b  (RT_BENCH_SCALE=$scale)"
  echo "=============================================================="
  "$b" || fail=1
  echo
done
exit $fail
