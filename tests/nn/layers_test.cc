#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/optimizer.h"

namespace rt {
namespace {

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  Linear lin(3, 2, &rng);
  lin.weight()->value.Fill(0.0f);
  lin.bias()->value = Tensor({2}, {10.0f, -10.0f});
  Tape tape;
  VarId x = tape.Leaf(Tensor({4, 3}));
  VarId y = lin.Forward(&tape, x);
  EXPECT_EQ(tape.value(y).shape(), (std::vector<int>{4, 2}));
  EXPECT_FLOAT_EQ(tape.value(y).at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(tape.value(y).at(3, 1), -10.0f);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(2);
  Linear lin(3, 2, &rng, /*bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
  Tape tape;
  VarId y = lin.Forward(&tape, tape.Leaf(Tensor::Zeros({1, 3})));
  EXPECT_FLOAT_EQ(tape.value(y).at(0, 0), 0.0f);
}

TEST(LinearTest, GradientReachesParameters) {
  Rng rng(3);
  Linear lin(2, 2, &rng);
  Tape tape;
  VarId x = tape.Leaf(Tensor({1, 2}, {1.0f, 2.0f}));
  VarId loss = tape.SumAll(lin.Forward(&tape, x));
  tape.Backward(loss);
  // d(sum(xW + b))/dW[i][j] = x[i]; /db = 1.
  EXPECT_FLOAT_EQ(lin.weight()->grad.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(lin.weight()->grad.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(lin.bias()->grad[0], 1.0f);
}

TEST(EmbeddingTest, LookupReturnsRows) {
  Rng rng(4);
  Embedding emb(5, 3, &rng);
  Tape tape;
  VarId e = emb.Forward(&tape, {2, 2, 4});
  const Tensor& v = tape.value(e);
  EXPECT_EQ(v.shape(), (std::vector<int>{3, 3}));
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(v.at(0, j), v.at(1, j));  // same id, same row
    EXPECT_EQ(v.at(0, j), emb.table()->value.at(2, j));
  }
}

TEST(LayerNormTest, OutputNormalizedPerRow) {
  LayerNorm ln(8);
  Rng rng(5);
  Tape tape;
  VarId x = tape.Leaf(Tensor::Normal({4, 8}, 3.0f, &rng));
  VarId y = ln.Forward(&tape, x);
  const Tensor& out = tape.value(y);
  for (int i = 0; i < 4; ++i) {
    double mean = 0.0;
    for (int j = 0; j < 8; ++j) mean += out.at(i, j);
    EXPECT_NEAR(mean / 8.0, 0.0, 1e-4);
  }
}

TEST(LstmLayerTest, StepShapesAndStateEvolution) {
  Rng rng(6);
  LstmLayer cell(4, 6, &rng);
  Tape tape;
  LstmState s = cell.InitialState(&tape, 3);
  EXPECT_EQ(tape.value(s.h).shape(), (std::vector<int>{3, 6}));
  VarId x = tape.Leaf(Tensor::Normal({3, 4}, 1.0f, &rng));
  LstmState s1 = cell.Step(&tape, x, s);
  EXPECT_EQ(tape.value(s1.h).shape(), (std::vector<int>{3, 6}));
  // State moved away from zero.
  EXPECT_GT(std::abs(tape.value(s1.h).Sum()), 0.0f);
  // Hidden values bounded by tanh.
  EXPECT_LE(tape.value(s1.h).Max(), 1.0f);
  EXPECT_GE(tape.value(s1.h).Min(), -1.0f);
}

TEST(LstmLayerTest, ForgetBiasInitializedToOne) {
  Rng rng(7);
  LstmLayer cell(2, 3, &rng);
  auto named = cell.NamedParameters();
  const Tensor* bias = nullptr;
  for (auto& [name, p] : named) {
    if (name == "b") bias = &p->value;
  }
  ASSERT_NE(bias, nullptr);
  // Gate order i|f|g|o, each width 3: forget block is [3, 6).
  EXPECT_EQ((*bias)[2], 0.0f);
  EXPECT_EQ((*bias)[3], 1.0f);
  EXPECT_EQ((*bias)[5], 1.0f);
  EXPECT_EQ((*bias)[6], 0.0f);
}

TEST(LstmTest, ForwardProducesPerTimestepOutputs) {
  Rng rng(8);
  Lstm lstm(4, 5, /*num_layers=*/2, &rng);
  EXPECT_EQ(lstm.num_layers(), 2);
  Tape tape;
  std::vector<VarId> xs;
  for (int t = 0; t < 3; ++t) {
    xs.push_back(tape.Leaf(Tensor::Normal({2, 4}, 1.0f, &rng)));
  }
  std::vector<LstmState> states;
  auto ys = lstm.Forward(&tape, xs, &states);
  ASSERT_EQ(ys.size(), 3u);
  EXPECT_EQ(states.size(), 2u);
  for (VarId y : ys) {
    EXPECT_EQ(tape.value(y).shape(), (std::vector<int>{2, 5}));
  }
}

TEST(LstmTest, StatePersistsAcrossForwardCalls) {
  Rng rng(9);
  Lstm lstm(2, 3, 1, &rng);
  Tape tape;
  std::vector<LstmState> states;
  VarId x = tape.Leaf(Tensor::Full({1, 2}, 1.0f));
  auto y1 = lstm.Forward(&tape, {x}, &states);
  auto y2 = lstm.Forward(&tape, {x}, &states);  // reuses carried state
  // Same input, different state => different output.
  bool differs = false;
  for (int j = 0; j < 3; ++j) {
    differs |= std::abs(tape.value(y1[0]).at(0, j) -
                        tape.value(y2[0]).at(0, j)) > 1e-6f;
  }
  EXPECT_TRUE(differs);
}

TEST(TransformerBlockTest, ForwardPreservesShape) {
  Rng rng(10);
  TransformerBlock block(8, 2, 0.0f, &rng);
  Tape tape;
  VarId x = tape.Leaf(Tensor::Normal({6, 8}, 1.0f, &rng));
  VarId y = block.Forward(&tape, x, /*batch=*/2, /*seq=*/3, &rng,
                          /*training=*/false);
  EXPECT_EQ(tape.value(y).shape(), (std::vector<int>{6, 8}));
}

TEST(TransformerBlockTest, GradientsFlowToAllParameters) {
  Rng rng(11);
  TransformerBlock block(8, 2, 0.0f, &rng);
  Tape tape;
  VarId x = tape.Leaf(Tensor::Normal({4, 8}, 1.0f, &rng));
  VarId y = block.Forward(&tape, x, 1, 4, &rng, /*training=*/true);
  tape.Backward(tape.SumAll(tape.Mul(y, y)));
  for (auto& [name, p] : block.NamedParameters()) {
    double norm = 0.0;
    for (size_t i = 0; i < p->grad.numel(); ++i) {
      norm += std::abs(p->grad[i]);
    }
    EXPECT_GT(norm, 0.0) << "no gradient reached " << name;
  }
}

// End-to-end learning sanity: a 1-layer LSTM + linear head learns to
// predict a fixed repeating token sequence (loss drops well below the
// uniform baseline).
TEST(LayersIntegrationTest, LstmLearnsRepeatingSequence) {
  Rng rng(12);
  const int vocab = 4, dim = 8, hidden = 16, steps = 8;
  Embedding emb(vocab, dim, &rng, 0.1f);
  Lstm lstm(dim, hidden, 1, &rng);
  Linear head(hidden, vocab, &rng);
  std::vector<Parameter*> params;
  for (Module* m : std::vector<Module*>{&emb, &lstm, &head}) {
    for (Parameter* p : m->Parameters()) params.push_back(p);
  }
  Adam opt(params, {.lr = 0.01f});
  // Sequence 0,1,2,3,0,1,2,3,... inputs are current, targets next.
  std::vector<int> inputs(steps), targets(steps);
  for (int t = 0; t < steps; ++t) {
    inputs[t] = t % vocab;
    targets[t] = (t + 1) % vocab;
  }
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int iter = 0; iter < 60; ++iter) {
    Tape tape;
    std::vector<VarId> xs;
    for (int t = 0; t < steps; ++t) {
      xs.push_back(emb.Forward(&tape, {inputs[t]}));
    }
    std::vector<LstmState> states;
    auto hs = lstm.Forward(&tape, xs, &states);
    VarId stacked = tape.ConcatRows(hs);
    VarId logits = head.Forward(&tape, stacked);
    VarId loss = tape.CrossEntropy(logits, targets);
    if (iter == 0) first_loss = tape.value(loss).item();
    last_loss = tape.value(loss).item();
    opt.ZeroGrad();
    tape.Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(first_loss, std::log(4.0f), 0.7f);
  EXPECT_LT(last_loss, 0.2f);
}

// Same sanity for a transformer block: learn a constant-next-token rule.
TEST(LayersIntegrationTest, TransformerLearnsCopyPattern) {
  Rng rng(13);
  const int vocab = 4, dim = 8, seq = 4;
  Embedding tok(vocab, dim, &rng, 0.1f);
  Embedding pos(seq, dim, &rng, 0.1f);
  TransformerBlock block(dim, 2, 0.0f, &rng);
  LayerNorm lnf(dim);
  Linear head(dim, vocab, &rng);
  std::vector<Parameter*> params;
  for (Module* m :
       std::vector<Module*>{&tok, &pos, &block, &lnf, &head}) {
    for (Parameter* p : m->Parameters()) params.push_back(p);
  }
  Adam opt(params, {.lr = 0.01f});
  std::vector<int> inputs{0, 1, 2, 3};
  std::vector<int> targets{1, 2, 3, 0};
  std::vector<int> positions{0, 1, 2, 3};
  float last_loss = 1e9f;
  for (int iter = 0; iter < 80; ++iter) {
    Tape tape;
    VarId x = tape.Add(tok.Forward(&tape, inputs),
                       pos.Forward(&tape, positions));
    x = block.Forward(&tape, x, 1, seq, &rng, true);
    x = lnf.Forward(&tape, x);
    VarId loss = tape.CrossEntropy(head.Forward(&tape, x), targets);
    last_loss = tape.value(loss).item();
    opt.ZeroGrad();
    tape.Backward(loss);
    opt.Step();
  }
  EXPECT_LT(last_loss, 0.3f);
}

}  // namespace
}  // namespace rt
