// The training path (autograd tape) and the inference path (raw kernels,
// KV cache) implement the same math twice; these tests pin them to each
// other so they cannot drift apart.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/layers.h"

namespace rt {
namespace {

void ExpectTensorsNear(const Tensor& a, const Tensor& b, float tol) {
  ASSERT_TRUE(a.SameShape(b)) << a.ShapeString() << " vs "
                              << b.ShapeString();
  for (size_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "elem " << i;
  }
}

TEST(RawConsistencyTest, LinearForwardRawMatchesTape) {
  Rng rng(1);
  Linear lin(6, 4, &rng);
  Tensor x = Tensor::Normal({3, 6}, 1.0f, &rng);
  Tape tape;
  VarId y = lin.Forward(&tape, tape.Leaf(x));
  ExpectTensorsNear(lin.ForwardRaw(x), tape.value(y), 1e-5f);
}

TEST(RawConsistencyTest, LayerNormForwardRawMatchesTape) {
  Rng rng(2);
  LayerNorm ln(8);
  // Non-trivial affine params.
  ln.gain()->value = Tensor::Normal({8}, 1.0f, &rng);
  ln.bias()->value = Tensor::Normal({8}, 1.0f, &rng);
  Tensor x = Tensor::Normal({5, 8}, 2.0f, &rng);
  Tape tape;
  VarId y = ln.Forward(&tape, tape.Leaf(x));
  ExpectTensorsNear(ln.ForwardRaw(x), tape.value(y), 1e-4f);
}

TEST(RawConsistencyTest, TransformerBlockForwardRawMatchesTape) {
  Rng rng(3);
  TransformerBlock block(16, 4, 0.0f, &rng);
  const int seq = 7;
  Tensor x = Tensor::Normal({seq, 16}, 1.0f, &rng);
  Tape tape;
  VarId y = block.Forward(&tape, tape.Leaf(x), /*batch=*/1, seq, &rng,
                          /*training=*/false);
  ExpectTensorsNear(block.ForwardRaw(x, seq), tape.value(y), 1e-4f);
}

TEST(RawConsistencyTest, StepRawSequenceMatchesForwardRaw) {
  // Feeding a sequence one position at a time through the KV cache must
  // reproduce the full-sequence forward exactly.
  Rng rng(4);
  TransformerBlock block(12, 3, 0.0f, &rng);
  const int seq = 9;
  Tensor x = Tensor::Normal({seq, 12}, 1.0f, &rng);
  Tensor full = block.ForwardRaw(x, seq);

  Tensor k_cache({seq, 12});
  Tensor v_cache({seq, 12});
  for (int t = 0; t < seq; ++t) {
    Tensor row({1, 12});
    for (int j = 0; j < 12; ++j) row[j] = x.at(t, j);
    Tensor out = block.StepRaw(row, &k_cache, &v_cache, t);
    for (int j = 0; j < 12; ++j) {
      ASSERT_NEAR(out[j], full.at(t, j), 1e-4f)
          << "pos " << t << " dim " << j;
    }
  }
}

TEST(RawConsistencyTest, BatchedTapeAttentionMatchesPerSequenceRaw) {
  // A batch of B sequences through the tape must equal B independent raw
  // forwards (attention must not leak across batch rows).
  Rng rng(5);
  TransformerBlock block(8, 2, 0.0f, &rng);
  const int batch = 3, seq = 5;
  Tensor x = Tensor::Normal({batch * seq, 8}, 1.0f, &rng);
  Tape tape;
  VarId y = block.Forward(&tape, tape.Leaf(x), batch, seq, &rng, false);
  for (int b = 0; b < batch; ++b) {
    Tensor xb({seq, 8});
    for (int t = 0; t < seq; ++t) {
      for (int j = 0; j < 8; ++j) xb.at(t, j) = x.at(b * seq + t, j);
    }
    Tensor yb = block.ForwardRaw(xb, seq);
    for (int t = 0; t < seq; ++t) {
      for (int j = 0; j < 8; ++j) {
        ASSERT_NEAR(tape.value(y).at(b * seq + t, j), yb.at(t, j), 1e-4f)
            << "batch " << b << " pos " << t;
      }
    }
  }
}

}  // namespace
}  // namespace rt
