#include "nn/module.h"

#include <gtest/gtest.h>

#include "nn/layers.h"

namespace rt {
namespace {

class ToyModule : public Module {
 public:
  ToyModule() {
    a_ = RegisterParameter("a", Tensor({2, 3}));
    b_ = RegisterParameter("b", Tensor({3}));
  }
  Parameter* a_;
  Parameter* b_;
};

class NestedModule : public Module {
 public:
  NestedModule() {
    w_ = RegisterParameter("w", Tensor({4}));
    RegisterModule("inner", &inner_);
  }
  Parameter* w_;
  ToyModule inner_;
};

TEST(ModuleTest, ParametersInRegistrationOrder) {
  ToyModule m;
  auto params = m.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0], m.a_);
  EXPECT_EQ(params[1], m.b_);
}

TEST(ModuleTest, NamedParametersQualifyNestedNames) {
  NestedModule m;
  auto named = m.NamedParameters();
  ASSERT_EQ(named.size(), 3u);
  EXPECT_EQ(named[0].first, "w");
  EXPECT_EQ(named[1].first, "inner.a");
  EXPECT_EQ(named[2].first, "inner.b");
}

TEST(ModuleTest, NumParamsCountsScalars) {
  NestedModule m;
  EXPECT_EQ(m.NumParams(), 4u + 6u + 3u);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  ToyModule m;
  m.a_->grad.Fill(5.0f);
  m.b_->grad.Fill(-1.0f);
  m.ZeroGrad();
  for (Parameter* p : m.Parameters()) {
    for (size_t i = 0; i < p->grad.numel(); ++i) {
      EXPECT_EQ(p->grad[i], 0.0f);
    }
  }
}

TEST(ModuleTest, GradAllocatedWithValueShape) {
  ToyModule m;
  EXPECT_TRUE(m.a_->grad.SameShape(m.a_->value));
  EXPECT_TRUE(m.b_->grad.SameShape(m.b_->value));
}

TEST(ModuleTest, LayerParameterNamesAreStable) {
  Rng rng(1);
  TransformerBlock block(8, 2, 0.0f, &rng);
  auto named = block.NamedParameters();
  ASSERT_FALSE(named.empty());
  EXPECT_EQ(named[0].first, "ln1.gain");
  bool has_qkv = false;
  for (auto& [name, p] : named) has_qkv |= name == "qkv.weight";
  EXPECT_TRUE(has_qkv);
}

}  // namespace
}  // namespace rt
