#include "nn/checkpoint.h"

#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "util/fault_injection.h"

namespace rt {
namespace {

class TinyModel : public Module {
 public:
  explicit TinyModel(uint64_t seed) {
    Rng rng(seed);
    w_ = RegisterParameter("w", Tensor::Normal({3, 2}, 1.0f, &rng));
    b_ = RegisterParameter("b", Tensor::Normal({2}, 1.0f, &rng));
  }
  Parameter* w_;
  Parameter* b_;
};

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  TinyModel a(1);
  const std::string path = TempPath("ckpt_roundtrip.bin");
  CheckpointMetadata meta{{"epoch", 3.0}, {"loss", 0.25}};
  ASSERT_TRUE(SaveCheckpoint(&a, meta, path).ok());

  TinyModel b(2);  // different init
  CheckpointMetadata loaded_meta;
  ASSERT_TRUE(LoadCheckpoint(&b, path, &loaded_meta).ok());
  for (size_t i = 0; i < a.w_->value.numel(); ++i) {
    EXPECT_EQ(b.w_->value[i], a.w_->value[i]);
  }
  for (size_t i = 0; i < a.b_->value.numel(); ++i) {
    EXPECT_EQ(b.b_->value[i], a.b_->value[i]);
  }
  EXPECT_DOUBLE_EQ(loaded_meta.at("epoch"), 3.0);
  EXPECT_DOUBLE_EQ(loaded_meta.at("loss"), 0.25);
}

TEST(CheckpointTest, EmptyMetadataOk) {
  TinyModel a(3);
  const std::string path = TempPath("ckpt_nometa.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {}, path).ok());
  TinyModel b(4);
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  EXPECT_EQ(b.w_->value[0], a.w_->value[0]);
}

TEST(CheckpointTest, LoadMissingFileFails) {
  TinyModel m(5);
  Status s = LoadCheckpoint(&m, "/nonexistent/ckpt.bin");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(CheckpointTest, BadMagicRejected) {
  const std::string path = TempPath("ckpt_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACKPTxxxxxxxxxxxxxxx";
  }
  TinyModel m(6);
  Status s = LoadCheckpoint(&m, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

class OtherModel : public Module {
 public:
  OtherModel() {
    RegisterParameter("w", Tensor({3, 2}));
    RegisterParameter("b", Tensor({2}));
    RegisterParameter("extra", Tensor({1}));
  }
};

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  TinyModel a(7);
  const std::string path = TempPath("ckpt_mismatch.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {}, path).ok());
  OtherModel other;
  Status s = LoadCheckpoint(&other, path);
  EXPECT_FALSE(s.ok());
}

class WrongShapeModel : public Module {
 public:
  WrongShapeModel() {
    RegisterParameter("w", Tensor({2, 3}));  // transposed shape
    RegisterParameter("b", Tensor({2}));
  }
};

TEST(CheckpointTest, ShapeMismatchRejected) {
  TinyModel a(8);
  const std::string path = TempPath("ckpt_shape.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {}, path).ok());
  WrongShapeModel wrong;
  Status s = LoadCheckpoint(&wrong, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, TruncatedFileRejected) {
  TinyModel a(9);
  const std::string path = TempPath("ckpt_trunc.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {{"step", 1.0}}, path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size() / 2));
  }
  TinyModel b(10);
  Status s = LoadCheckpoint(&b, path);
  EXPECT_FALSE(s.ok());
}

TEST(CheckpointTest, BitFlipCaughtByChecksum) {
  TinyModel a(20);
  const std::string path = TempPath("ckpt_bitflip.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {{"step", 7.0}}, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Flip one bit in the middle of the tensor payload. The format still
  // parses (sizes and names are intact) — only the CRC can catch this.
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x01);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  TinyModel b(21);
  Status s = LoadCheckpoint(&b, path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s.ToString();
}

TEST(CheckpointTest, InjectedTruncationOnSaveFailsLoadCleanly) {
  TinyModel a(22);
  const std::string path = TempPath("ckpt_fault_trunc.bin");
  FaultInjector::FaultSpec spec;
  spec.count = 1;
  spec.amount = 16;
  FaultInjector::Instance().Arm("ckpt.truncate", spec);
  ASSERT_TRUE(SaveCheckpoint(&a, {{"step", 1.0}}, path).ok());
  FaultInjector::Instance().Reset();
  EXPECT_EQ(FaultInjector::Instance().fires("ckpt.truncate"), 0);

  TinyModel b(23);
  Status s = LoadCheckpoint(&b, path);
  EXPECT_FALSE(s.ok());

  // With the fault disarmed the same path saves and loads fine again.
  ASSERT_TRUE(SaveCheckpoint(&a, {{"step", 2.0}}, path).ok());
  TinyModel c(24);
  CheckpointMetadata meta;
  ASSERT_TRUE(LoadCheckpoint(&c, path, &meta).ok());
  EXPECT_DOUBLE_EQ(meta.at("step"), 2.0);
  EXPECT_EQ(c.w_->value[0], a.w_->value[0]);
}

TEST(CheckpointTest, OverwriteIsAtomicViaRename) {
  TinyModel a(11);
  const std::string path = TempPath("ckpt_atomic.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {{"v", 1.0}}, path).ok());
  TinyModel c(12);
  ASSERT_TRUE(SaveCheckpoint(&c, {{"v", 2.0}}, path).ok());
  // No stale tmp file remains.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  TinyModel d(13);
  CheckpointMetadata meta;
  ASSERT_TRUE(LoadCheckpoint(&d, path, &meta).ok());
  EXPECT_DOUBLE_EQ(meta.at("v"), 2.0);
  EXPECT_EQ(d.w_->value[0], c.w_->value[0]);
}

}  // namespace
}  // namespace rt
