#include "nn/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "util/fault_injection.h"

namespace rt {
namespace {

class TinyModel : public Module {
 public:
  explicit TinyModel(uint64_t seed) {
    Rng rng(seed);
    w_ = RegisterParameter("w", Tensor::Normal({3, 2}, 1.0f, &rng));
    b_ = RegisterParameter("b", Tensor::Normal({2}, 1.0f, &rng));
  }
  Parameter* w_;
  Parameter* b_;
};

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  TinyModel a(1);
  const std::string path = TempPath("ckpt_roundtrip.bin");
  CheckpointMetadata meta{{"epoch", 3.0}, {"loss", 0.25}};
  ASSERT_TRUE(SaveCheckpoint(&a, meta, path).ok());

  TinyModel b(2);  // different init
  CheckpointMetadata loaded_meta;
  ASSERT_TRUE(LoadCheckpoint(&b, path, &loaded_meta).ok());
  for (size_t i = 0; i < a.w_->value.numel(); ++i) {
    EXPECT_EQ(b.w_->value[i], a.w_->value[i]);
  }
  for (size_t i = 0; i < a.b_->value.numel(); ++i) {
    EXPECT_EQ(b.b_->value[i], a.b_->value[i]);
  }
  EXPECT_DOUBLE_EQ(loaded_meta.at("epoch"), 3.0);
  EXPECT_DOUBLE_EQ(loaded_meta.at("loss"), 0.25);
}

TEST(CheckpointTest, EmptyMetadataOk) {
  TinyModel a(3);
  const std::string path = TempPath("ckpt_nometa.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {}, path).ok());
  TinyModel b(4);
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  EXPECT_EQ(b.w_->value[0], a.w_->value[0]);
}

TEST(CheckpointTest, LoadMissingFileFails) {
  TinyModel m(5);
  Status s = LoadCheckpoint(&m, "/nonexistent/ckpt.bin");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(CheckpointTest, BadMagicRejected) {
  const std::string path = TempPath("ckpt_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACKPTxxxxxxxxxxxxxxx";
  }
  TinyModel m(6);
  Status s = LoadCheckpoint(&m, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

class OtherModel : public Module {
 public:
  OtherModel() {
    RegisterParameter("w", Tensor({3, 2}));
    RegisterParameter("b", Tensor({2}));
    RegisterParameter("extra", Tensor({1}));
  }
};

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  TinyModel a(7);
  const std::string path = TempPath("ckpt_mismatch.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {}, path).ok());
  OtherModel other;
  Status s = LoadCheckpoint(&other, path);
  EXPECT_FALSE(s.ok());
}

class WrongShapeModel : public Module {
 public:
  WrongShapeModel() {
    RegisterParameter("w", Tensor({2, 3}));  // transposed shape
    RegisterParameter("b", Tensor({2}));
  }
};

TEST(CheckpointTest, ShapeMismatchRejected) {
  TinyModel a(8);
  const std::string path = TempPath("ckpt_shape.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {}, path).ok());
  WrongShapeModel wrong;
  Status s = LoadCheckpoint(&wrong, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, TruncatedFileRejected) {
  TinyModel a(9);
  const std::string path = TempPath("ckpt_trunc.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {{"step", 1.0}}, path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size() / 2));
  }
  TinyModel b(10);
  Status s = LoadCheckpoint(&b, path);
  EXPECT_FALSE(s.ok());
}

TEST(CheckpointTest, BitFlipCaughtByChecksum) {
  TinyModel a(20);
  const std::string path = TempPath("ckpt_bitflip.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {{"step", 7.0}}, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Flip one bit in the middle of the tensor payload. The format still
  // parses (sizes and names are intact) — only the CRC can catch this.
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x01);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  TinyModel b(21);
  Status s = LoadCheckpoint(&b, path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s.ToString();
}

TEST(CheckpointTest, InjectedTruncationOnSaveFailsLoadCleanly) {
  TinyModel a(22);
  const std::string path = TempPath("ckpt_fault_trunc.bin");
  FaultInjector::FaultSpec spec;
  spec.count = 1;
  spec.amount = 16;
  FaultInjector::Instance().Arm("ckpt.truncate", spec);
  ASSERT_TRUE(SaveCheckpoint(&a, {{"step", 1.0}}, path).ok());
  FaultInjector::Instance().Reset();
  EXPECT_EQ(FaultInjector::Instance().fires("ckpt.truncate"), 0);

  TinyModel b(23);
  Status s = LoadCheckpoint(&b, path);
  EXPECT_FALSE(s.ok());

  // With the fault disarmed the same path saves and loads fine again.
  ASSERT_TRUE(SaveCheckpoint(&a, {{"step", 2.0}}, path).ok());
  TinyModel c(24);
  CheckpointMetadata meta;
  ASSERT_TRUE(LoadCheckpoint(&c, path, &meta).ok());
  EXPECT_DOUBLE_EQ(meta.at("step"), 2.0);
  EXPECT_EQ(c.w_->value[0], a.w_->value[0]);
}

TEST(CheckpointTest, QuantizedSaveLoadRoundTrip) {
  TinyModel a(30);
  const std::string path = TempPath("ckpt_quant.bin");
  SaveOptions options;
  options.quantize_int8 = true;
  ASSERT_TRUE(SaveCheckpoint(&a, {{"epoch", 5.0}}, path, options).ok());

  // The file leads with the v3 magic.
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, 8);
  EXPECT_EQ(std::string(magic, 8), "RTCKPT03");
  in.close();

  TinyModel b(31);
  CheckpointMetadata meta;
  ASSERT_TRUE(LoadCheckpoint(&b, path, &meta).ok());
  EXPECT_DOUBLE_EQ(meta.at("epoch"), 5.0);
  // 2D weight: dequantized values within half a quantization step per
  // column. Columns of w ({3, 2}) are the output channels.
  float absmax[2] = {0.0f, 0.0f};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) {
      absmax[c] = std::max(absmax[c], std::fabs(a.w_->value[r * 2 + c]));
    }
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) {
      const float step = absmax[c] / 127.0f;
      EXPECT_NEAR(b.w_->value[r * 2 + c], a.w_->value[r * 2 + c],
                  0.5f * step * 1.001f);
    }
  }
  // 1D bias stays fp32: exact.
  for (size_t i = 0; i < a.b_->value.numel(); ++i) {
    EXPECT_EQ(b.b_->value[i], a.b_->value[i]);
  }
}

TEST(CheckpointTest, QuantizedResaveIsIdempotent) {
  // Save quantized, load, save quantized again: the second file must be
  // byte-identical to the first (re-quantization of dequantized weights
  // is exact), so repeated checkpoint/restore cycles never drift.
  TinyModel a(32);
  const std::string p1 = TempPath("ckpt_quant_idem1.bin");
  const std::string p2 = TempPath("ckpt_quant_idem2.bin");
  SaveOptions options;
  options.quantize_int8 = true;
  ASSERT_TRUE(SaveCheckpoint(&a, {{"s", 1.0}}, p1, options).ok());
  TinyModel b(33);
  ASSERT_TRUE(LoadCheckpoint(&b, p1).ok());
  ASSERT_TRUE(SaveCheckpoint(&b, {{"s", 1.0}}, p2, options).ok());
  auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(p1), slurp(p2));
}

TEST(CheckpointTest, QuantizedSaveRejectsNonFiniteWeights) {
  TinyModel a(34);
  a.w_->value[2] = std::numeric_limits<float>::quiet_NaN();
  const std::string path = TempPath("ckpt_quant_nan.bin");
  std::remove(path.c_str());  // TempDir persists across runs
  SaveOptions options;
  options.quantize_int8 = true;
  Status s = SaveCheckpoint(&a, {}, path, options);
  ASSERT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("non-finite"), std::string::npos)
      << s.ToString();
  // The failed save must not leave a file (or a stale tmp) behind.
  std::ifstream f(path);
  EXPECT_FALSE(f.good());
  // fp32 save of the same module still works — NaN rejection is
  // specific to quantization.
  EXPECT_TRUE(SaveCheckpoint(&a, {}, path).ok());
}

TEST(CheckpointTest, QuantizedFileChecksummedLikeV2) {
  TinyModel a(35);
  const std::string path = TempPath("ckpt_quant_crc.bin");
  SaveOptions options;
  options.quantize_int8 = true;
  ASSERT_TRUE(SaveCheckpoint(&a, {}, path, options).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x01);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  TinyModel b(36);
  Status s = LoadCheckpoint(&b, path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos) << s.ToString();
}

TEST(CheckpointTest, Fp32FilesStillLoadAfterV3) {
  // Back-compat: a default (v2) save loads exactly as before the v3
  // format existed.
  TinyModel a(37);
  const std::string path = TempPath("ckpt_v2_compat.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {{"v", 9.0}}, path).ok());
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, 8);
  EXPECT_EQ(std::string(magic, 8), "RTCKPT02");
  in.close();
  TinyModel b(38);
  CheckpointMetadata meta;
  ASSERT_TRUE(LoadCheckpoint(&b, path, &meta).ok());
  EXPECT_DOUBLE_EQ(meta.at("v"), 9.0);
  for (size_t i = 0; i < a.w_->value.numel(); ++i) {
    EXPECT_EQ(b.w_->value[i], a.w_->value[i]);
  }
}

TEST(CheckpointTest, OverwriteIsAtomicViaRename) {
  TinyModel a(11);
  const std::string path = TempPath("ckpt_atomic.bin");
  ASSERT_TRUE(SaveCheckpoint(&a, {{"v", 1.0}}, path).ok());
  TinyModel c(12);
  ASSERT_TRUE(SaveCheckpoint(&c, {{"v", 2.0}}, path).ok());
  // No stale tmp file remains.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  TinyModel d(13);
  CheckpointMetadata meta;
  ASSERT_TRUE(LoadCheckpoint(&d, path, &meta).ok());
  EXPECT_DOUBLE_EQ(meta.at("v"), 2.0);
  EXPECT_EQ(d.w_->value[0], c.w_->value[0]);
}

}  // namespace
}  // namespace rt
