#include "nn/optimizer.h"

#include <cmath>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

namespace rt {
namespace {

/// Minimizes f(w) = sum((w - target)^2) with the given optimizer; the
/// gradient is computed analytically each step.
template <typename MakeOpt>
float MinimizeQuadratic(MakeOpt make_opt, int iters) {
  Parameter p;
  p.value = Tensor({3}, {5.0f, -4.0f, 2.0f});
  p.grad = Tensor::Zeros({3});
  const float target[3] = {1.0f, 2.0f, -1.0f};
  auto opt = make_opt(std::vector<Parameter*>{&p});
  for (int i = 0; i < iters; ++i) {
    opt->ZeroGrad();
    for (int j = 0; j < 3; ++j) {
      p.grad[j] = 2.0f * (p.value[j] - target[j]);
    }
    opt->Step();
  }
  float err = 0.0f;
  for (int j = 0; j < 3; ++j) {
    err += std::abs(p.value[j] - target[j]);
  }
  return err;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  float err = MinimizeQuadratic(
      [](std::vector<Parameter*> ps) {
        return std::make_unique<Sgd>(std::move(ps), 0.1f);
      },
      100);
  EXPECT_LT(err, 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  float plain = MinimizeQuadratic(
      [](std::vector<Parameter*> ps) {
        return std::make_unique<Sgd>(std::move(ps), 0.02f);
      },
      40);
  float momentum = MinimizeQuadratic(
      [](std::vector<Parameter*> ps) {
        return std::make_unique<Sgd>(std::move(ps), 0.02f, 0.9f);
      },
      40);
  EXPECT_LT(momentum, plain);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  float err = MinimizeQuadratic(
      [](std::vector<Parameter*> ps) {
        return std::make_unique<Adam>(std::move(ps),
                                      Adam::Options{.lr = 0.3f});
      },
      200);
  EXPECT_LT(err, 1e-2f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Parameter p;
  p.value = Tensor({1}, {10.0f});
  p.grad = Tensor::Zeros({1});
  Adam opt({&p}, {.lr = 0.1f, .weight_decay = 0.1f});
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();  // gradient stays zero: pure decay
    opt.Step();
  }
  EXPECT_LT(std::abs(p.value[0]), 10.0f * std::pow(1.0f - 0.01f, 49));
}

TEST(AdamTest, StepCountAdvances) {
  Parameter p;
  p.value = Tensor({1}, {1.0f});
  p.grad = Tensor::Zeros({1});
  Adam opt({&p}, {});
  EXPECT_EQ(opt.step_count(), 0);
  opt.Step();
  opt.Step();
  EXPECT_EQ(opt.step_count(), 2);
}

TEST(OptimizerTest, SetLrOverridesSchedule) {
  Parameter p;
  p.value = Tensor({1}, {1.0f});
  p.grad = Tensor({1}, {1.0f});
  Sgd opt({&p}, 1.0f);
  opt.set_lr(0.0f);
  opt.Step();
  EXPECT_EQ(p.value[0], 1.0f);  // zero lr => no movement
}

TEST(ClipGradNormTest, NormAboveThresholdIsRescaled) {
  Parameter a, b;
  a.value = Tensor({2});
  a.grad = Tensor({2}, {3.0f, 0.0f});
  b.value = Tensor({1});
  b.grad = Tensor({1}, {4.0f});
  // Global norm sqrt(9+16) = 5.
  float pre = ClipGradNorm({&a, &b}, 1.0f);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(a.grad[0], 3.0f / 5.0f, 1e-6f);
  EXPECT_NEAR(b.grad[0], 4.0f / 5.0f, 1e-6f);
  double sumsq = a.grad[0] * a.grad[0] + b.grad[0] * b.grad[0];
  EXPECT_NEAR(std::sqrt(sumsq), 1.0, 1e-5);
}

TEST(ClipGradNormTest, NormBelowThresholdUntouched) {
  Parameter a;
  a.value = Tensor({1});
  a.grad = Tensor({1}, {0.5f});
  float pre = ClipGradNorm({&a}, 1.0f);
  EXPECT_FLOAT_EQ(pre, 0.5f);
  EXPECT_FLOAT_EQ(a.grad[0], 0.5f);
}

TEST(ClipGradNormTest, ZeroGradSafe) {
  Parameter a;
  a.value = Tensor({2});
  a.grad = Tensor::Zeros({2});
  EXPECT_FLOAT_EQ(ClipGradNorm({&a}, 1.0f), 0.0f);
}

}  // namespace
}  // namespace rt
