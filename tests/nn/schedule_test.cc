#include "nn/schedule.h"

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(ScheduleTest, ConstantIgnoresStep) {
  LrSchedule s{.kind = ScheduleKind::kConstant, .base_lr = 0.5f};
  EXPECT_FLOAT_EQ(s.At(0), 0.5f);
  EXPECT_FLOAT_EQ(s.At(1000000), 0.5f);
}

TEST(ScheduleTest, WarmupRampsLinearly) {
  LrSchedule s{.kind = ScheduleKind::kWarmupLinear,
               .base_lr = 1.0f,
               .min_lr = 0.0f,
               .warmup_steps = 10,
               .total_steps = 110};
  EXPECT_FLOAT_EQ(s.At(0), 0.1f);
  EXPECT_FLOAT_EQ(s.At(4), 0.5f);
  EXPECT_FLOAT_EQ(s.At(9), 1.0f);
}

TEST(ScheduleTest, LinearDecayReachesMinLr) {
  LrSchedule s{.kind = ScheduleKind::kWarmupLinear,
               .base_lr = 1.0f,
               .min_lr = 0.1f,
               .warmup_steps = 0,
               .total_steps = 100};
  EXPECT_FLOAT_EQ(s.At(0), 1.0f);
  EXPECT_NEAR(s.At(50), 0.55f, 1e-5f);
  EXPECT_FLOAT_EQ(s.At(100), 0.1f);
  EXPECT_FLOAT_EQ(s.At(500), 0.1f);  // clamps past the end
}

TEST(ScheduleTest, CosineDecayMonotoneAndBounded) {
  LrSchedule s{.kind = ScheduleKind::kWarmupCosine,
               .base_lr = 1.0f,
               .min_lr = 0.0f,
               .warmup_steps = 5,
               .total_steps = 105};
  float prev = s.At(5);
  EXPECT_NEAR(prev, 1.0f, 1e-4f);
  for (long long t = 6; t <= 105; ++t) {
    float cur = s.At(t);
    EXPECT_LE(cur, prev + 1e-6f);
    EXPECT_GE(cur, 0.0f);
    prev = cur;
  }
  EXPECT_NEAR(s.At(105), 0.0f, 1e-4f);
}

TEST(ScheduleTest, CosineHalfwayIsHalf) {
  LrSchedule s{.kind = ScheduleKind::kWarmupCosine,
               .base_lr = 2.0f,
               .min_lr = 0.0f,
               .warmup_steps = 0,
               .total_steps = 100};
  EXPECT_NEAR(s.At(50), 1.0f, 1e-3f);
}

}  // namespace
}  // namespace rt
