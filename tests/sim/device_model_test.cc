#include "sim/device_model.h"

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(DeviceSpecTest, AchievedIsPeakTimesEfficiency) {
  DeviceSpec d{"toy", 100.0, 0.25};
  EXPECT_DOUBLE_EQ(d.achieved_flops(), 25.0);
}

TEST(WorkloadTest, TotalFlopsIsSixNdTokens) {
  TrainingWorkload w{1000, 500, 2};
  EXPECT_DOUBLE_EQ(w.TotalFlops(), 6.0 * 1000 * 500 * 2);
}

TEST(ProjectionTest, GpuBeatsCpuOnPaperWorkload) {
  TrainingWorkload w = PaperGpt2MediumWorkload();
  const double cpu_s = ProjectSeconds(w, DeviceSpec::CpuServer());
  const double gpu_s = ProjectSeconds(w, DeviceSpec::A100());
  EXPECT_LT(gpu_s, cpu_s);
}

TEST(ProjectionTest, RatioMatchesPaperBand) {
  // Paper Sec. V: 2-3 days on CPU vs ~16 h on the A100 (ratio ~3-4.5x).
  TrainingWorkload w = PaperGpt2MediumWorkload();
  const double cpu_h = ProjectSeconds(w, DeviceSpec::CpuServer()) / 3600.0;
  const double gpu_h = ProjectSeconds(w, DeviceSpec::A100()) / 3600.0;
  EXPECT_GT(cpu_h, 40.0);   // at least ~1.7 days
  EXPECT_LT(cpu_h, 90.0);   // at most ~3.7 days
  EXPECT_GT(gpu_h, 8.0);
  EXPECT_LT(gpu_h, 24.0);
  const double ratio = cpu_h / gpu_h;
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
}

TEST(ProjectionTest, ScalesLinearlyInEpochs) {
  TrainingWorkload w1 = PaperGpt2MediumWorkload();
  TrainingWorkload w2 = w1;
  w2.epochs = 2 * w1.epochs;
  const DeviceSpec d = DeviceSpec::A100();
  EXPECT_NEAR(ProjectSeconds(w2, d), 2.0 * ProjectSeconds(w1, d), 1e-6);
}

TEST(CalibrationTest, RoundTripsMeasurement) {
  // A device calibrated at X tokens/s projects exactly tokens/X seconds.
  const size_t params = 2'000'000;
  DeviceSpec d = CalibrateFromMeasurement("local", params, 150.0);
  TrainingWorkload w{params, 1500, 1};
  EXPECT_NEAR(ProjectSeconds(w, d), 1500.0 / 150.0, 1e-9);
}

TEST(CalibrationTest, FasterMeasurementShorterProjection) {
  const size_t params = 1'000'000;
  DeviceSpec slow = CalibrateFromMeasurement("slow", params, 10.0);
  DeviceSpec fast = CalibrateFromMeasurement("fast", params, 100.0);
  TrainingWorkload w{params, 10000, 1};
  EXPECT_GT(ProjectSeconds(w, slow), ProjectSeconds(w, fast));
}

}  // namespace
}  // namespace rt
