#include <cstdio>
#include <gtest/gtest.h>

#include "text/bpe_tokenizer.h"

namespace rt {
namespace {

std::vector<std::string> Corpus() {
  return {
      "<RECIPE_START> <INGR_START> <FRAC_1_2> cup tomato sauce "
      "<INGR_NEXT> 2 tsp salt <INGR_END> <INSTR_START> simmer the tomato "
      "sauce gently <INSTR_END> <TITLE_START> tomato sauce <TITLE_END> "
      "<RECIPE_END>",
      "<RECIPE_START> <INGR_START> 1 cup rice <INGR_END> <INSTR_START> "
      "boil the rice and serve <INSTR_END> <TITLE_START> plain rice "
      "<TITLE_END> <RECIPE_END>",
  };
}

TEST(BpeSerializationTest, RoundTripPreservesEncoding) {
  auto original = BpeTokenizer::Train(Corpus(), 300);
  auto restored = BpeTokenizer::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->vocab().tokens(), original.vocab().tokens());
  EXPECT_EQ(restored->num_merges(), original.num_merges());
  for (const auto& doc : Corpus()) {
    EXPECT_EQ(restored->Encode(doc), original.Encode(doc));
  }
  // Segmentation identical on an unseen word too.
  EXPECT_EQ(restored->SegmentWord("tomatoes"),
            original.SegmentWord("tomatoes"));
}

TEST(BpeSerializationTest, FileRoundTrip) {
  auto original = BpeTokenizer::Train(Corpus(), 250);
  const std::string path = testing::TempDir() + "/bpe_test.txt";
  ASSERT_TRUE(original.SaveToFile(path).ok());
  auto loaded = BpeTokenizer::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Encode(Corpus()[0]), original.Encode(Corpus()[0]));
  std::remove(path.c_str());
}

TEST(BpeSerializationTest, RejectsBadHeader) {
  EXPECT_FALSE(BpeTokenizer::Deserialize("NOTBPE\n2\na\nb\n0\n").ok());
}

TEST(BpeSerializationTest, RejectsTruncated) {
  auto original = BpeTokenizer::Train(Corpus(), 200);
  std::string blob = original.Serialize();
  EXPECT_FALSE(
      BpeTokenizer::Deserialize(blob.substr(0, blob.size() / 2)).ok());
}

TEST(BpeSerializationTest, LoadMissingFileIsIoError) {
  auto r = BpeTokenizer::LoadFromFile("/nonexistent/bpe.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace rt
