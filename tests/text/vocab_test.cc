#include "text/vocab.h"

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(VocabTest, AddAssignsDenseIds) {
  Vocab v;
  EXPECT_EQ(v.AddToken("a"), 0);
  EXPECT_EQ(v.AddToken("b"), 1);
  EXPECT_EQ(v.AddToken("a"), 0);  // idempotent
  EXPECT_EQ(v.size(), 2);
}

TEST(VocabTest, LookupBothDirections) {
  Vocab v;
  v.AddToken("tomato");
  v.AddToken("onion");
  EXPECT_EQ(v.GetId("onion"), 1);
  EXPECT_EQ(v.GetToken(0), "tomato");
  EXPECT_EQ(v.GetId("garlic"), -1);
  EXPECT_TRUE(v.Contains("tomato"));
  EXPECT_FALSE(v.Contains("garlic"));
}

TEST(VocabTest, SerializeRoundTrip) {
  Vocab v;
  v.AddToken("<PAD>");
  v.AddToken("hello");
  v.AddToken("world");
  auto restored = Vocab::Deserialize(v.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 3);
  EXPECT_EQ(restored->GetId("world"), 2);
}

TEST(VocabTest, SerializeEscapesNewlineTokens) {
  Vocab v;
  v.AddToken("\n");       // char-level vocabularies contain newline
  v.AddToken("\\");       // and backslash
  v.AddToken("a\nb");
  auto restored = Vocab::Deserialize(v.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 3);
  EXPECT_EQ(restored->GetId("\n"), 0);
  EXPECT_EQ(restored->GetId("\\"), 1);
  EXPECT_EQ(restored->GetId("a\nb"), 2);
}

TEST(VocabTest, DeserializeRejectsDuplicates) {
  auto v = Vocab::Deserialize("a\nb\na\n");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(VocabTest, FileRoundTrip) {
  Vocab v;
  v.AddToken("x");
  v.AddToken("y");
  const std::string path = testing::TempDir() + "/vocab_test.txt";
  ASSERT_TRUE(v.SaveToFile(path).ok());
  auto loaded = Vocab::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2);
  EXPECT_EQ(loaded->GetId("y"), 1);
}

TEST(VocabTest, LoadMissingFileFails) {
  auto v = Vocab::LoadFromFile("/nonexistent/path/vocab.txt");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace rt
