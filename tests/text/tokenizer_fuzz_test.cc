// Fuzz-style robustness: tokenizers must never crash, emit out-of-range
// ids or lose decode/encode stability on arbitrary byte strings.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/bpe_tokenizer.h"
#include "text/char_tokenizer.h"
#include "text/word_tokenizer.h"
#include "util/rng.h"

namespace rt {
namespace {

std::vector<std::string> TrainingDocs() {
  return {
      "<RECIPE_START> <INGR_START> 1 cup rice <INGR_END> <INSTR_START> "
      "boil the rice well <INSTR_END> <TITLE_START> rice <TITLE_END> "
      "<RECIPE_END>",
      "mixed CASE text, punctuation!? and (parens) plus 123 456",
  };
}

std::string RandomBytes(Rng* rng, int len) {
  std::string s;
  for (int i = 0; i < len; ++i) {
    // Printable-ish ASCII plus some controls and high bytes.
    s += static_cast<char>(rng->NextBelow(256));
  }
  return s;
}

std::string RandomAsciiSoup(Rng* rng, int len) {
  static const char* pool =
      "abc <>RECIPE_START_END/0123456789\t\n<<>>__<FRAC_1_2>";
  std::string s;
  const size_t n = std::string(pool).size();
  for (int i = 0; i < len; ++i) s += pool[rng->NextBelow(n)];
  return s;
}

template <typename Tok>
void FuzzOne(const Tok& tok, const std::string& input) {
  std::vector<int> ids = tok.Encode(input);
  for (int id : ids) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, tok.vocab_size());
  }
  // decode(encode(.)) must be a fixed point after one application.
  std::string once = tok.Decode(ids);
  std::string twice = tok.Decode(tok.Encode(once));
  ASSERT_EQ(once, twice);
}

TEST(TokenizerFuzzTest, RandomBytesNeverCrash) {
  auto docs = TrainingDocs();
  auto char_tok = CharTokenizer::Build(docs);
  auto word_tok = WordTokenizer::Build(docs);
  auto bpe_tok = BpeTokenizer::Train(docs, 200);
  Rng rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    std::string input = RandomBytes(&rng, 1 + trial * 3);
    FuzzOne(char_tok, input);
    FuzzOne(word_tok, input);
    FuzzOne(bpe_tok, input);
  }
}

TEST(TokenizerFuzzTest, TagLikeSoupNeverCrashes) {
  auto docs = TrainingDocs();
  auto char_tok = CharTokenizer::Build(docs);
  auto word_tok = WordTokenizer::Build(docs);
  auto bpe_tok = BpeTokenizer::Train(docs, 200);
  Rng rng(321);
  for (int trial = 0; trial < 60; ++trial) {
    std::string input = RandomAsciiSoup(&rng, 1 + trial * 5);
    FuzzOne(char_tok, input);
    FuzzOne(word_tok, input);
    FuzzOne(bpe_tok, input);
  }
}

TEST(TokenizerFuzzTest, EmptyAndWhitespaceInputs) {
  auto docs = TrainingDocs();
  auto char_tok = CharTokenizer::Build(docs);
  auto word_tok = WordTokenizer::Build(docs);
  auto bpe_tok = BpeTokenizer::Train(docs, 200);
  for (const std::string& input :
       {std::string(), std::string("   "), std::string("\n\t\r"),
        std::string("<"), std::string("<unclosed tag never ends")}) {
    FuzzOne(char_tok, input);
    FuzzOne(word_tok, input);
    FuzzOne(bpe_tok, input);
  }
}

}  // namespace
}  // namespace rt
