#include "text/special_tokens.h"

#include <set>

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(SpecialTokensTest, ReservedTokensStartWithPadUnk) {
  const auto& reserved = ReservedTokens();
  ASSERT_GE(reserved.size(), 2u);
  EXPECT_EQ(reserved[0], kPadToken);
  EXPECT_EQ(reserved[1], kUnkToken);
}

TEST(SpecialTokensTest, ReservedTokensAreUnique) {
  const auto& reserved = ReservedTokens();
  std::set<std::string> unique(reserved.begin(), reserved.end());
  EXPECT_EQ(unique.size(), reserved.size());
}

TEST(SpecialTokensTest, StructuralTagsIncluded) {
  EXPECT_TRUE(IsStructuralTag(kRecipeStart));
  EXPECT_TRUE(IsStructuralTag(kTitleEnd));
  EXPECT_TRUE(IsStructuralTag(kInputNext));
  EXPECT_FALSE(IsStructuralTag("<FRAC_1_2>"));
  EXPECT_FALSE(IsStructuralTag("tomato"));
}

TEST(FractionTest, NormalizeCommonFractions) {
  EXPECT_EQ(NormalizeFractions("1/2 cup sugar"), "<FRAC_1_2> cup sugar");
  EXPECT_EQ(NormalizeFractions("add 3/4 tsp and 1/8 tsp"),
            "add <FRAC_3_4> tsp and <FRAC_1_8> tsp");
}

TEST(FractionTest, SixteenthBeforeHalf) {
  // "1/16" must not be corrupted into "<FRAC_1_1>6"-style artifacts.
  EXPECT_EQ(NormalizeFractions("1/16 tsp saffron"),
            "<FRAC_1_16> tsp saffron");
}

TEST(FractionTest, RoundTrip) {
  const std::string original =
      "1/2 cup flour , 1/3 cup milk , 2/3 tsp salt , 1/16 tsp nutmeg";
  EXPECT_EQ(DenormalizeFractions(NormalizeFractions(original)), original);
}

TEST(FractionTest, MixedNumberPreserved) {
  // "1 1/2" keeps its whole part.
  EXPECT_EQ(NormalizeFractions("1 1/2 cups"), "1 <FRAC_1_2> cups");
  EXPECT_EQ(DenormalizeFractions("1 <FRAC_1_2> cups"), "1 1/2 cups");
}

TEST(FractionTest, IsFractionToken) {
  EXPECT_TRUE(IsFractionToken("<FRAC_1_2>"));
  EXPECT_TRUE(IsFractionToken("<FRAC_1_16>"));
  EXPECT_FALSE(IsFractionToken("<RECIPE_START>"));
  EXPECT_FALSE(IsFractionToken("1/2"));
}

TEST(FractionTest, NoFractionsUntouched) {
  EXPECT_EQ(NormalizeFractions("2 cups rice"), "2 cups rice");
  EXPECT_EQ(DenormalizeFractions("plain text"), "plain text");
}

}  // namespace
}  // namespace rt
