#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/bpe_tokenizer.h"
#include "text/char_tokenizer.h"
#include "text/special_tokens.h"
#include "text/word_tokenizer.h"

namespace rt {
namespace {

std::vector<std::string> SmallCorpus() {
  return {
      "<RECIPE_START> <INGR_START> <FRAC_1_2> cup tomato <INGR_NEXT> 2 "
      "tsp salt <INGR_END> <INSTR_START> chop the tomato <INSTR_NEXT> "
      "season with salt <INSTR_END> <TITLE_START> simple tomato salad "
      "<TITLE_END> <RECIPE_END>",
      "<RECIPE_START> <INGR_START> 1 cup rice <INGR_END> <INSTR_START> "
      "boil the rice <INSTR_END> <TITLE_START> plain rice <TITLE_END> "
      "<RECIPE_END>",
  };
}

// ---- CharTokenizer ------------------------------------------------------

TEST(CharTokenizerTest, RoundTripPlainText) {
  auto tok = CharTokenizer::Build(SmallCorpus());
  const std::string text = "chop the tomato";
  EXPECT_EQ(tok.Decode(tok.Encode(text)), text);
}

TEST(CharTokenizerTest, TagsAreSingleTokens) {
  auto tok = CharTokenizer::Build(SmallCorpus());
  auto ids = tok.Encode("<RECIPE_START>");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(tok.vocab().GetToken(ids[0]), kRecipeStart);
}

TEST(CharTokenizerTest, TaggedRoundTrip) {
  auto tok = CharTokenizer::Build(SmallCorpus());
  const std::string text = SmallCorpus()[0];
  EXPECT_EQ(tok.Decode(tok.Encode(text)), text);
}

TEST(CharTokenizerTest, UnknownCharMapsToUnk) {
  auto tok = CharTokenizer::Build({"abc"});
  auto ids = tok.Encode("a~z");  // '~' and 'z' unseen
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[1], tok.unk_id());
  EXPECT_EQ(ids[2], tok.unk_id());
}

TEST(CharTokenizerTest, VocabSmallAndDeterministic) {
  auto a = CharTokenizer::Build(SmallCorpus());
  auto b = CharTokenizer::Build(SmallCorpus());
  EXPECT_EQ(a.vocab().tokens(), b.vocab().tokens());
  // Reserved + handful of characters.
  EXPECT_LT(a.vocab_size(), 100);
}

TEST(CharTokenizerTest, PadSkippedInDecode) {
  auto tok = CharTokenizer::Build({"ab"});
  std::vector<int> ids = tok.Encode("ab");
  ids.push_back(tok.pad_id());
  EXPECT_EQ(tok.Decode(ids), "ab");
}

// ---- WordTokenizer ------------------------------------------------------

TEST(WordTokenizerTest, PreTokenizeSeparatesPunctuationAndTags) {
  auto toks = WordTokenizer::PreTokenize(
      "<INGR_START> 1/2 cup tomato , chopped <INGR_END>");
  EXPECT_EQ(toks, (std::vector<std::string>{"<INGR_START>", "1", "/", "2",
                                            "cup", "tomato", ",", "chopped",
                                            "<INGR_END>"}));
}

TEST(WordTokenizerTest, FractionTokensSurviveAsSingleUnits) {
  auto toks = WordTokenizer::PreTokenize("<FRAC_1_2> cup sugar");
  EXPECT_EQ(toks[0], "<FRAC_1_2>");
  EXPECT_EQ(toks.size(), 3u);
}

TEST(WordTokenizerTest, RoundTripNormalizedText) {
  auto tok = WordTokenizer::Build(SmallCorpus());
  const std::string text = "chop the tomato";
  EXPECT_EQ(tok.Decode(tok.Encode(text)), text);
}

TEST(WordTokenizerTest, OovMapsToUnk) {
  auto tok = WordTokenizer::Build(SmallCorpus());
  auto ids = tok.Encode("quinoa");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], tok.unk_id());
}

TEST(WordTokenizerTest, MinCountFiltersRareWords) {
  auto tok = WordTokenizer::Build({"common common common rare"},
                                  /*min_count=*/2);
  EXPECT_TRUE(tok.vocab().Contains("common"));
  EXPECT_FALSE(tok.vocab().Contains("rare"));
}

TEST(WordTokenizerTest, FrequencyOrderedIdsAreDeterministic) {
  auto a = WordTokenizer::Build(SmallCorpus());
  auto b = WordTokenizer::Build(SmallCorpus());
  EXPECT_EQ(a.vocab().tokens(), b.vocab().tokens());
}

TEST(WordTokenizerTest, ReservedTokensAlwaysPresent) {
  auto tok = WordTokenizer::Build({"just words"});
  EXPECT_TRUE(tok.vocab().Contains(kRecipeStart));
  EXPECT_TRUE(tok.vocab().Contains("<FRAC_1_2>"));
  EXPECT_EQ(tok.vocab().GetId(kPadToken), 0);
  EXPECT_EQ(tok.vocab().GetId(kUnkToken), 1);
}

// ---- BpeTokenizer -------------------------------------------------------

TEST(BpeTokenizerTest, LearnsMergesAndRoundTrips) {
  std::vector<std::string> corpus(
      20, "the tomato and the potato in the pot");
  auto tok = BpeTokenizer::Train(corpus, /*vocab_budget=*/120);
  EXPECT_GT(tok.num_merges(), 0);
  const std::string text = "the tomato and the potato";
  EXPECT_EQ(tok.Decode(tok.Encode(text)), text);
}

TEST(BpeTokenizerTest, FrequentWordBecomesSingleToken) {
  std::vector<std::string> corpus(50, "tomato tomato tomato");
  auto tok = BpeTokenizer::Train(corpus, /*vocab_budget=*/200);
  auto segments = tok.SegmentWord("tomato");
  EXPECT_EQ(segments.size(), 1u);  // fully merged incl. </w>
}

TEST(BpeTokenizerTest, TagsNeverSplit) {
  auto tok = BpeTokenizer::Train(SmallCorpus(), 150);
  auto ids = tok.Encode("<RECIPE_START> <FRAC_1_2>");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(tok.vocab().GetToken(ids[0]), kRecipeStart);
  EXPECT_EQ(tok.vocab().GetToken(ids[1]), "<FRAC_1_2>");
}

TEST(BpeTokenizerTest, TaggedRoundTrip) {
  auto tok = BpeTokenizer::Train(SmallCorpus(), 300);
  const std::string text = SmallCorpus()[1];
  EXPECT_EQ(tok.Decode(tok.Encode(text)), text);
}

TEST(BpeTokenizerTest, BudgetCapsVocab) {
  std::vector<std::string> corpus(
      30, "many different words appear here repeatedly tonight");
  auto big = BpeTokenizer::Train(corpus, 500);
  auto small = BpeTokenizer::Train(corpus, 60);
  EXPECT_LE(small.vocab_size(), 60);
  EXPECT_LE(small.vocab_size(), big.vocab_size());
}

TEST(BpeTokenizerTest, DeterministicTraining) {
  auto a = BpeTokenizer::Train(SmallCorpus(), 200);
  auto b = BpeTokenizer::Train(SmallCorpus(), 200);
  EXPECT_EQ(a.vocab().tokens(), b.vocab().tokens());
  EXPECT_EQ(a.Encode(SmallCorpus()[0]), b.Encode(SmallCorpus()[0]));
}

TEST(BpeTokenizerTest, UnseenCharactersMapToUnk) {
  auto tok = BpeTokenizer::Train({"abc abc"}, 50);
  auto ids = tok.Encode("xyz");
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    EXPECT_EQ(ids[i], tok.unk_id());
  }
}

// Cross-tokenizer property: encoding is deterministic and decode(encode)
// is stable under double application.
TEST(AllTokenizersTest, DecodeEncodeIdempotent) {
  auto corpus = SmallCorpus();
  auto char_tok = CharTokenizer::Build(corpus);
  auto word_tok = WordTokenizer::Build(corpus);
  auto bpe_tok = BpeTokenizer::Train(corpus, 300);
  const Tokenizer* toks[] = {&char_tok, &word_tok, &bpe_tok};
  for (const Tokenizer* t : toks) {
    for (const std::string& doc : corpus) {
      std::string once = t->Decode(t->Encode(doc));
      std::string twice = t->Decode(t->Encode(once));
      EXPECT_EQ(once, twice) << t->name();
    }
  }
}

}  // namespace
}  // namespace rt
