// Property-style sweeps over all tokenizers against generated recipe
// corpora: round-trip stability, vocabulary closure on the training set,
// determinism across seeds and stream consistency with EncodeCorpus.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/generator.h"
#include "text/bpe_tokenizer.h"
#include "text/char_tokenizer.h"
#include "text/special_tokens.h"
#include "text/word_tokenizer.h"

namespace rt {
namespace {

struct TokCase {
  std::string name;
  uint64_t corpus_seed;
};

std::vector<Recipe> CorpusFor(uint64_t seed, int n = 40) {
  GeneratorOptions opts;
  opts.num_recipes = n;
  opts.seed = seed;
  opts.incomplete_fraction = 0.0;
  opts.duplicate_fraction = 0.0;
  opts.overlong_fraction = 0.0;
  opts.short_fraction = 0.0;
  return RecipeDbGenerator(opts).Generate();
}

std::vector<std::string> Docs(const std::vector<Recipe>& corpus) {
  std::vector<std::string> docs;
  for (const auto& r : corpus) docs.push_back(r.ToTaggedString());
  return docs;
}

std::unique_ptr<Tokenizer> Make(const std::string& name,
                                const std::vector<std::string>& docs) {
  if (name == "char") {
    return std::make_unique<CharTokenizer>(CharTokenizer::Build(docs));
  }
  if (name == "word") {
    return std::make_unique<WordTokenizer>(WordTokenizer::Build(docs));
  }
  return std::make_unique<BpeTokenizer>(BpeTokenizer::Train(docs, 500));
}

class TokenizerPropertyTest
    : public testing::TestWithParam<TokCase> {};

TEST_P(TokenizerPropertyTest, NoUnkOnTrainingDocuments) {
  auto corpus = CorpusFor(GetParam().corpus_seed);
  auto docs = Docs(corpus);
  auto tok = Make(GetParam().name, docs);
  for (const auto& doc : docs) {
    for (int id : tok->Encode(doc)) {
      ASSERT_NE(id, tok->unk_id()) << GetParam().name;
    }
  }
}

TEST_P(TokenizerPropertyTest, DecodeEncodeStableOnTrainingDocs) {
  auto corpus = CorpusFor(GetParam().corpus_seed, 20);
  auto docs = Docs(corpus);
  auto tok = Make(GetParam().name, docs);
  for (const auto& doc : docs) {
    std::string once = tok->Decode(tok->Encode(doc));
    std::string twice = tok->Decode(tok->Encode(once));
    ASSERT_EQ(once, twice) << GetParam().name;
  }
}

TEST_P(TokenizerPropertyTest, TagsAlwaysAtomic) {
  auto corpus = CorpusFor(GetParam().corpus_seed, 10);
  auto docs = Docs(corpus);
  auto tok = Make(GetParam().name, docs);
  for (const auto& tag : StructuralTags()) {
    auto ids = tok->Encode(tag);
    ASSERT_EQ(ids.size(), 1u) << GetParam().name << " split " << tag;
    EXPECT_EQ(tok->vocab().GetToken(ids[0]), tag);
  }
}

TEST_P(TokenizerPropertyTest, EncodeCorpusMatchesPerDocEncoding) {
  auto corpus = CorpusFor(GetParam().corpus_seed, 8);
  auto docs = Docs(corpus);
  auto tok = Make(GetParam().name, docs);
  auto stream = EncodeCorpus(*tok, corpus);
  std::vector<int> manual;
  for (const auto& r : corpus) {
    auto ids = tok->Encode(r.ToTaggedString() + " ");
    manual.insert(manual.end(), ids.begin(), ids.end());
  }
  EXPECT_EQ(stream, manual) << GetParam().name;
}

TEST_P(TokenizerPropertyTest, StopTokenPresentInVocab) {
  auto corpus = CorpusFor(GetParam().corpus_seed, 6);
  auto tok = Make(GetParam().name, Docs(corpus));
  EXPECT_GE(tok->vocab().GetId(kRecipeEnd), 0) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTokenizers, TokenizerPropertyTest,
    testing::Values(TokCase{"char", 101}, TokCase{"char", 202},
                    TokCase{"word", 101}, TokCase{"word", 202},
                    TokCase{"bpe", 101}, TokCase{"bpe", 202}),
    [](const testing::TestParamInfo<TokCase>& info) {
      return info.param.name + "_seed" +
             std::to_string(info.param.corpus_seed);
    });

}  // namespace
}  // namespace rt
