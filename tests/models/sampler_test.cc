#include "models/sampler.h"

#include <map>

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(SamplerTest, GreedyPicksArgmax) {
  Rng rng(1);
  Tensor logits({4}, {0.1f, 5.0f, -2.0f, 4.9f});
  SamplingOptions opts{.greedy = true};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SampleFromLogits(logits, opts, &rng), 1);
  }
}

TEST(SamplerTest, DeterministicGivenSeed) {
  Tensor logits({5}, {1, 2, 3, 2, 1});
  SamplingOptions opts;
  Rng a(42), b(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(SampleFromLogits(logits, opts, &a),
              SampleFromLogits(logits, opts, &b));
  }
}

TEST(SamplerTest, SamplesFollowDistribution) {
  Rng rng(7);
  // p ~ [0.09, 0.24, 0.67] approx (logits 0, 1, 2).
  Tensor logits({3}, {0.0f, 1.0f, 2.0f});
  SamplingOptions opts;
  std::map<int, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    counts[SampleFromLogits(logits, opts, &rng)]++;
  }
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.665, 0.03);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.245, 0.03);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.090, 0.02);
}

TEST(SamplerTest, LowTemperatureApproachesGreedy) {
  Rng rng(11);
  Tensor logits({3}, {1.0f, 1.5f, 1.4f});
  SamplingOptions opts{.temperature = 0.01f};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(SampleFromLogits(logits, opts, &rng), 1);
  }
}

TEST(SamplerTest, HighTemperatureFlattens) {
  Rng rng(13);
  Tensor logits({2}, {0.0f, 3.0f});
  SamplingOptions hot{.temperature = 100.0f};
  int zeros = 0;
  for (int i = 0; i < 4000; ++i) {
    zeros += SampleFromLogits(logits, hot, &rng) == 0;
  }
  // Near-uniform at very high temperature.
  EXPECT_NEAR(zeros / 4000.0, 0.5, 0.05);
}

TEST(SamplerTest, TopKExcludesTail) {
  Rng rng(17);
  Tensor logits({4}, {10.0f, 9.0f, 1.0f, 0.0f});
  SamplingOptions opts{.top_k = 2};
  for (int i = 0; i < 200; ++i) {
    int s = SampleFromLogits(logits, opts, &rng);
    EXPECT_TRUE(s == 0 || s == 1) << s;
  }
}

TEST(SamplerTest, TopKOneIsGreedy) {
  Rng rng(19);
  Tensor logits({5}, {1, 7, 3, 2, 0});
  SamplingOptions opts{.top_k = 1};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(SampleFromLogits(logits, opts, &rng), 1);
  }
}

TEST(SamplerTest, TopPKeepsNucleusOnly) {
  Rng rng(23);
  // probs ~ [0.88, 0.12, ~0] -> top_p 0.8 keeps only id 0.
  Tensor logits({3}, {4.0f, 2.0f, -10.0f});
  SamplingOptions opts{.top_p = 0.8f};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(SampleFromLogits(logits, opts, &rng), 0);
  }
}

TEST(SamplerTest, TopPWideKeepsDiversity) {
  Rng rng(29);
  Tensor logits({3}, {1.0f, 1.0f, 1.0f});
  SamplingOptions opts{.top_p = 0.99f};
  std::map<int, int> counts;
  for (int i = 0; i < 3000; ++i) {
    counts[SampleFromLogits(logits, opts, &rng)]++;
  }
  EXPECT_EQ(counts.size(), 3u);
}

TEST(SamplerTest, TopKAndTopPCompose) {
  Rng rng(31);
  Tensor logits({4}, {3.0f, 2.9f, 2.8f, -10.0f});
  // top_k=3 keeps {0,1,2}; top_p small then tightens to {0}.
  SamplingOptions opts{.top_k = 3, .top_p = 0.3f};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleFromLogits(logits, opts, &rng), 0);
  }
}

TEST(SamplerTest, SingleTokenVocab) {
  Rng rng(37);
  Tensor logits({1}, {0.5f});
  EXPECT_EQ(SampleFromLogits(logits, {}, &rng), 0);
}

}  // namespace
}  // namespace rt
