#include "models/batch_decode.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "models/gpt2_model.h"
#include "models/lstm_model.h"
#include "models/sampler.h"

namespace rt {
namespace {

Gpt2Config SmallGpt2() {
  Gpt2Config config;
  config.vocab_size = 61;
  config.dim = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.max_seq_len = 48;
  config.init_seed = 7;
  return config;
}

LstmConfig SmallLstm() {
  LstmConfig config;
  config.vocab_size = 61;
  config.embed_dim = 16;
  config.hidden_dim = 24;
  config.num_layers = 2;
  config.init_seed = 7;
  return config;
}

/// Greedy-decodes `steps` tokens per sequence through the batched
/// decoder, feeding each row its own prompt stream first; returns the
/// full per-row logits trace (one [V] row per fed token).
std::vector<std::vector<std::vector<float>>> BatchedTrace(
    BatchDecoder* decoder, const std::vector<std::vector<int>>& prompts,
    int steps) {
  const int m = static_cast<int>(prompts.size());
  const int vocab = decoder->vocab_size();
  std::vector<std::unique_ptr<BatchSequence>> seqs;
  for (int i = 0; i < m; ++i) seqs.push_back(decoder->NewSequence());

  std::vector<std::vector<std::vector<float>>> traces(m);
  std::vector<int> feed(m);  // next token to feed per row
  std::vector<size_t> fed(m, 0);
  for (int i = 0; i < m; ++i) feed[i] = prompts[i][0];

  std::vector<float> logits(static_cast<size_t>(m) * vocab);
  const int total = static_cast<int>(prompts[0].size()) + steps;
  for (int it = 0; it < total - 1; ++it) {
    std::vector<int> tokens(m);
    std::vector<BatchSequence*> rows(m);
    for (int i = 0; i < m; ++i) {
      tokens[i] = feed[i];
      rows[i] = seqs[i].get();
    }
    decoder->StepBatch(m, tokens.data(), rows.data(), logits.data());
    for (int i = 0; i < m; ++i) {
      ++fed[i];
      const float* row = logits.data() + static_cast<size_t>(i) * vocab;
      traces[i].emplace_back(row, row + vocab);
      if (fed[i] < prompts[i].size()) {
        feed[i] = prompts[i][fed[i]];
      } else {
        // Greedy continuation from this row's logits, via the shared
        // sampler so tie-breaking matches Generate.
        SamplingOptions greedy;
        greedy.greedy = true;
        Rng rng(0);
        feed[i] = SampleFromLogits(row, vocab, greedy, &rng);
      }
    }
  }
  return traces;
}

/// Sequential reference: one KV-cache decode per prompt, recording the
/// logits after every fed token.
std::vector<std::vector<float>> SequentialGpt2Trace(
    const Gpt2Lm& model, const std::vector<int>& prompt, int steps) {
  Gpt2Lm::KvCache cache;
  model.InitCache(&cache);
  std::vector<std::vector<float>> trace;
  int next = prompt[0];
  size_t fed = 0;
  const int total = static_cast<int>(prompt.size()) + steps;
  for (int it = 0; it < total - 1; ++it) {
    const Tensor& logits = model.StepWithCache(next, &cache);
    trace.emplace_back(logits.data(), logits.data() + logits.numel());
    ++fed;
    if (fed < prompt.size()) {
      next = prompt[fed];
    } else {
      SamplingOptions greedy;
      greedy.greedy = true;
      Rng rng(0);
      next = SampleFromLogits(logits.data(),
                              static_cast<int>(logits.numel()), greedy,
                              &rng);
    }
  }
  return trace;
}

TEST(BatchDecodeTest, Gpt2BatchedRowsBitwiseMatchSequential) {
  Gpt2Lm model(SmallGpt2());
  auto decoder = model.MakeBatchDecoder();
  ASSERT_NE(decoder, nullptr);
  EXPECT_EQ(decoder->vocab_size(), model.vocab_size());
  EXPECT_EQ(decoder->max_context(), model.max_seq_len());

  // Distinct prompts so the rows diverge immediately.
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < 8; ++i) {
    prompts.push_back({1 + i, 9 + i, 3});
  }
  const int steps = 6;
  auto traces = BatchedTrace(decoder.get(), prompts, steps);
  for (size_t i = 0; i < prompts.size(); ++i) {
    auto reference = SequentialGpt2Trace(model, prompts[i], steps);
    ASSERT_EQ(traces[i].size(), reference.size());
    for (size_t t = 0; t < reference.size(); ++t) {
      ASSERT_EQ(traces[i][t], reference[t])
          << "row " << i << " step " << t;
    }
  }
}

TEST(BatchDecodeTest, Gpt2BatchSizeDoesNotChangeRows) {
  Gpt2Lm model(SmallGpt2());
  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < 4; ++i) prompts.push_back({2 + i, 5, 7 + i});
  const int steps = 5;

  // Same row decoded alone vs inside a batch of four.
  auto alone = model.MakeBatchDecoder();
  auto solo = BatchedTrace(alone.get(), {prompts[2]}, steps);
  auto four = model.MakeBatchDecoder();
  auto batched = BatchedTrace(four.get(), prompts, steps);
  ASSERT_EQ(solo[0].size(), batched[2].size());
  for (size_t t = 0; t < solo[0].size(); ++t) {
    ASSERT_EQ(solo[0][t], batched[2][t]) << "step " << t;
  }
}

TEST(BatchDecodeTest, LstmBatchedRowsBitwiseMatchSequential) {
  LstmLm model(SmallLstm());
  auto decoder = model.MakeBatchDecoder();
  ASSERT_NE(decoder, nullptr);
  EXPECT_EQ(decoder->max_context(), 0);

  std::vector<std::vector<int>> prompts;
  for (int i = 0; i < 8; ++i) prompts.push_back({4 + i, 2, 11 + i});
  const int steps = 6;
  auto traces = BatchedTrace(decoder.get(), prompts, steps);

  // Sequential reference via the public Generate path: greedy sampling
  // replays exactly the batched trace's argmax continuations.
  for (size_t i = 0; i < prompts.size(); ++i) {
    GenerationOptions options;
    options.sampling.greedy = true;
    options.max_new_tokens = steps;
    GenerationResult reference = model.Generate(prompts[i], options);
    ASSERT_EQ(reference.ids.size(), static_cast<size_t>(steps));
    // The batched trace's greedy picks start at the logits row produced
    // by the last prompt token.
    const size_t first_decode = prompts[i].size() - 1;
    for (int s = 0; s < steps; ++s) {
      const std::vector<float>& row = traces[i][first_decode + s];
      SamplingOptions greedy;
      greedy.greedy = true;
      Rng rng(0);
      const int best = SampleFromLogits(
          row.data(), static_cast<int>(row.size()), greedy, &rng);
      EXPECT_EQ(best, reference.ids[s]) << "row " << i << " step " << s;
    }
  }
}

TEST(BatchDecodeTest, ArenaStopsAllocatingOnceWarm) {
  Gpt2Lm model(SmallGpt2());
  auto decoder = model.MakeBatchDecoder();
  std::vector<std::vector<int>> prompts = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  BatchedTrace(decoder.get(), prompts, 4);
  const int64_t warm = decoder->arena_heap_allocs();
  // Admit/evict churn at the same peak concurrency stays on the pool.
  for (int round = 0; round < 5; ++round) {
    BatchedTrace(decoder.get(), prompts, 4);
  }
  EXPECT_EQ(decoder->arena_heap_allocs(), warm);
}

TEST(BatchDecodeTest, SamplingFromBatchedLogitsMatchesGenerate) {
  // Full-fidelity check of the serving contract: per-row Rng + sampler
  // over batched logits reproduces Generate token-for-token.
  Gpt2Lm model(SmallGpt2());
  GenerationOptions options;
  options.sampling.temperature = 0.9f;
  options.sampling.top_p = 0.95f;
  options.max_new_tokens = 8;
  options.seed = 1234;
  const std::vector<int> prompt = {3, 1, 4};
  GenerationResult reference = model.Generate(prompt, options);

  auto decoder = model.MakeBatchDecoder();
  auto seq = decoder->NewSequence();
  std::vector<float> logits(decoder->vocab_size());
  Rng rng(options.seed);
  BatchSequence* rows[1] = {seq.get()};
  for (int id : prompt) {
    decoder->StepBatch(1, &id, rows, logits.data());
  }
  std::vector<int> ids;
  for (int step = 0; step < options.max_new_tokens; ++step) {
    int next = SampleFromLogits(logits.data(), decoder->vocab_size(),
                                options.sampling, &rng);
    ids.push_back(next);
    if (next == options.stop_token) break;
    decoder->StepBatch(1, &next, rows, logits.data());
  }
  EXPECT_EQ(ids, reference.ids);
}

}  // namespace
}  // namespace rt
