// Kernel-layer properties surfaced at the model level: the KV-cache
// decode path performs zero heap allocations per token once its
// workspace arena is warm, and generation is bitwise identical for any
// --compute-threads setting (the pool only partitions work whose result
// does not depend on the partition).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "models/gpt2_model.h"
#include "models/lstm_model.h"
#include "tensor/thread_pool.h"

namespace rt {
namespace {

Gpt2Config TinyGpt2Config() {
  Gpt2Config cfg;
  cfg.vocab_size = 24;
  cfg.dim = 16;
  cfg.num_layers = 2;
  cfg.num_heads = 2;
  cfg.max_seq_len = 64;
  cfg.dropout = 0.0f;
  cfg.name = "gpt2-threads-test";
  return cfg;
}

TEST(KvCacheWorkspaceTest, DecodeIsAllocationFreeOnceWarm) {
  Gpt2Lm model(TinyGpt2Config());
  Gpt2Lm::KvCache cache;
  model.InitCache(&cache);
  // Warmup: the first steps size the arena (Reset coalesces after the
  // first full cycle, so give it two tokens).
  model.StepWithCache(1, &cache);
  model.StepWithCache(2, &cache);
  const int64_t warm = cache.ws.heap_allocs();
  for (int t = 3; t < 40; ++t) {
    model.StepWithCache(t % model.vocab_size(), &cache);
    EXPECT_EQ(cache.ws.heap_allocs(), warm)
        << "token " << t << " heap-allocated decode scratch";
  }
}

TEST(KvCacheWorkspaceTest, InitCacheReusesArenaAcrossSequences) {
  Gpt2Lm model(TinyGpt2Config());
  Gpt2Lm::KvCache cache;
  model.InitCache(&cache);
  for (int t = 0; t < 8; ++t) model.StepWithCache(t, &cache);
  const int64_t warm = cache.ws.heap_allocs();
  // A fresh sequence on the same cache keeps the warmed arena.
  model.InitCache(&cache);
  for (int t = 0; t < 8; ++t) model.StepWithCache(t, &cache);
  EXPECT_EQ(cache.ws.heap_allocs(), warm);
}

class ComputeThreadsTest : public testing::Test {
 protected:
  void SetUp() override { original_ = ThreadPool::GlobalThreads(); }
  void TearDown() override { ThreadPool::SetGlobalThreads(original_); }
  int original_ = 1;
};

TEST_F(ComputeThreadsTest, Gpt2GreedyGenerationIsThreadCountInvariant) {
  Gpt2Lm model(TinyGpt2Config());
  GenerationOptions options;
  options.sampling.greedy = true;
  options.max_new_tokens = 24;
  const std::vector<int> prompt = {1, 2, 3};

  ThreadPool::SetGlobalThreads(1);
  const auto serial = model.GenerateIds(prompt, options);
  ThreadPool::SetGlobalThreads(4);
  const auto parallel = model.GenerateIds(prompt, options);
  EXPECT_EQ(serial, parallel);
}

TEST_F(ComputeThreadsTest, Gpt2BeamSearchIsThreadCountInvariant) {
  Gpt2Lm model(TinyGpt2Config());
  Gpt2Lm::BeamOptions options;
  options.beam_width = 3;
  options.max_new_tokens = 16;
  const std::vector<int> prompt = {4, 5};

  ThreadPool::SetGlobalThreads(1);
  const auto serial = model.BeamSearchIds(prompt, options);
  ThreadPool::SetGlobalThreads(4);
  const auto parallel = model.BeamSearchIds(prompt, options);
  EXPECT_EQ(serial, parallel);
}

TEST_F(ComputeThreadsTest, Gpt2SampledGenerationIsThreadCountInvariant) {
  Gpt2Lm model(TinyGpt2Config());
  GenerationOptions options;
  options.sampling.temperature = 0.9f;
  options.sampling.top_k = 8;
  options.max_new_tokens = 24;
  options.seed = 1234;
  const std::vector<int> prompt = {1};

  ThreadPool::SetGlobalThreads(1);
  const auto serial = model.GenerateIds(prompt, options);
  ThreadPool::SetGlobalThreads(4);
  const auto parallel = model.GenerateIds(prompt, options);
  EXPECT_EQ(serial, parallel);
}

TEST_F(ComputeThreadsTest, LstmGenerationIsThreadCountInvariant) {
  LstmConfig cfg;
  cfg.vocab_size = 24;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.dropout = 0.0f;
  cfg.name = "lstm-threads-test";
  LstmLm model(cfg);
  GenerationOptions options;
  options.sampling.greedy = true;
  options.max_new_tokens = 24;
  const std::vector<int> prompt = {2, 3};

  ThreadPool::SetGlobalThreads(1);
  const auto serial = model.GenerateIds(prompt, options);
  ThreadPool::SetGlobalThreads(4);
  const auto parallel = model.GenerateIds(prompt, options);
  EXPECT_EQ(serial, parallel);
}

TEST_F(ComputeThreadsTest, TrainingLossIsThreadCountInvariant) {
  // The tape attention forward/backward also run through ParallelFor;
  // a train step's loss must not depend on the pool size.
  Batch batch;
  batch.batch_size = 2;
  batch.seq_len = 12;
  for (int i = 0; i < batch.batch_size * batch.seq_len; ++i) {
    batch.inputs.push_back(i % 24);
    batch.targets.push_back((i + 1) % 24);
  }
  ThreadPool::SetGlobalThreads(1);
  Gpt2Lm serial_model(TinyGpt2Config());
  Rng rng1(7);
  const float serial_loss = serial_model.TrainStep(batch, &rng1);
  ThreadPool::SetGlobalThreads(4);
  Gpt2Lm parallel_model(TinyGpt2Config());
  Rng rng2(7);
  const float parallel_loss = parallel_model.TrainStep(batch, &rng2);
  EXPECT_EQ(serial_loss, parallel_loss);
}

}  // namespace
}  // namespace rt
