#include "models/trainer.h"

#include <memory>
#include <cstdio>
#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "models/lstm_model.h"

namespace rt {
namespace {

constexpr int kVocab = 8;

std::unique_ptr<LstmLm> MakeModel(uint64_t seed = 1) {
  LstmConfig cfg;
  cfg.vocab_size = kVocab;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.dropout = 0.0f;
  cfg.init_seed = seed;
  cfg.name = "trainer-test-lstm";
  return std::make_unique<LstmLm>(cfg);
}

std::vector<int> PeriodicStream(int n) {
  std::vector<int> s(n);
  for (int i = 0; i < n; ++i) s[i] = i % kVocab;
  return s;
}

TrainerOptions SmallOptions() {
  TrainerOptions opts;
  opts.epochs = 3;
  opts.batch_size = 4;
  opts.seq_len = 8;
  opts.lr = 0.01f;
  return opts;
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  auto model = MakeModel();
  Trainer trainer(model.get(), SmallOptions());
  auto stream = PeriodicStream(600);
  auto result = trainer.Train(stream);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->epoch_train_loss.size(), 3u);
  EXPECT_LT(result->epoch_train_loss.back(),
            result->epoch_train_loss.front() * 0.7f);
  EXPECT_EQ(result->epochs_completed, 3);
  EXPECT_GT(result->steps, 0);
  EXPECT_GT(result->tokens_processed, 0);
  EXPECT_FALSE(result->resumed);
}

TEST(TrainerTest, ValidationLossTracked) {
  auto model = MakeModel();
  Trainer trainer(model.get(), SmallOptions());
  auto train = PeriodicStream(400);
  auto val = PeriodicStream(120);
  auto result = trainer.Train(train, &val);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->epoch_val_loss.size(), 3u);
  // Same distribution => val loss also falls.
  EXPECT_LT(result->epoch_val_loss.back(),
            result->epoch_val_loss.front());
}

TEST(TrainerTest, RejectsEmptyStream) {
  auto model = MakeModel();
  Trainer trainer(model.get(), SmallOptions());
  std::vector<int> tiny{1, 2, 3};
  auto result = trainer.Train(tiny);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TrainerTest, RejectsNonPositiveEpochs) {
  auto model = MakeModel();
  TrainerOptions opts = SmallOptions();
  opts.epochs = 0;
  Trainer trainer(model.get(), opts);
  auto stream = PeriodicStream(200);
  EXPECT_FALSE(trainer.Train(stream).ok());
}

TEST(TrainerTest, StepCallbackCanAbort) {
  auto model = MakeModel();
  TrainerOptions opts = SmallOptions();
  opts.step_callback = [](long long step, float) { return step < 5; };
  Trainer trainer(model.get(), opts);
  auto stream = PeriodicStream(600);
  auto result = trainer.Train(stream);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->aborted);
  EXPECT_EQ(result->steps, 5);
}

TEST(TrainerTest, CrashAndResumeMatchesUninterruptedRun) {
  // The paper's Colab sessions died every 5-7 epochs; training must be
  // resumable from checkpoints with the final model still learning.
  const std::string ckpt = testing::TempDir() + "/trainer_resume.ckpt";
  std::remove(ckpt.c_str());
  auto stream = PeriodicStream(600);

  // Interrupted run: crash after epoch 1 (abort mid-epoch-2), then resume.
  auto crashy = MakeModel(3);
  TrainerOptions opts = SmallOptions();
  opts.checkpoint_path = ckpt;
  long long steps_per_epoch = 0;
  {
    Trainer t(crashy.get(), SmallOptions());
    auto probe = t.Train(stream);
    ASSERT_TRUE(probe.ok());
    steps_per_epoch = probe->steps / 3;
  }
  auto interrupted = MakeModel(3);
  {
    TrainerOptions crash_opts = opts;
    long long crash_at = steps_per_epoch + 2;  // inside epoch 2
    crash_opts.step_callback = [crash_at](long long step, float) {
      return step < crash_at;
    };
    Trainer t(interrupted.get(), crash_opts);
    auto result = t.Train(stream);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->aborted);
  }
  // Resume: a FRESH model object picks up from the epoch-1 checkpoint.
  auto resumed = MakeModel(99);  // different init, overwritten by load
  {
    Trainer t(resumed.get(), opts);
    auto result = t.Train(stream);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->resumed);
    EXPECT_EQ(result->epochs_completed, 3);
    // Final loss comparable to a never-crashed run.
    EXPECT_LT(result->epoch_train_loss.back(), 1.0f);
  }
  std::remove(ckpt.c_str());
}

TEST(TrainerTest, CheckpointEveryStepsWritesFile) {
  const std::string ckpt = testing::TempDir() + "/trainer_steps.ckpt";
  std::remove(ckpt.c_str());
  auto model = MakeModel();
  TrainerOptions opts = SmallOptions();
  opts.epochs = 1;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every_steps = 3;
  Trainer trainer(model.get(), opts);
  auto stream = PeriodicStream(400);
  ASSERT_TRUE(trainer.Train(stream).ok());
  std::ifstream probe(ckpt);
  EXPECT_TRUE(probe.good());
  std::remove(ckpt.c_str());
}

TEST(TrainerTest, EvaluateMatchesEvalLossScale) {
  auto model = MakeModel();
  Trainer trainer(model.get(), SmallOptions());
  auto stream = PeriodicStream(300);
  float loss = trainer.Evaluate(stream);
  EXPECT_NEAR(loss, std::log(static_cast<float>(kVocab)), 0.5f);
}

TEST(TrainerTest, ScheduleAndClipOptionsRun) {
  auto model = MakeModel();
  TrainerOptions opts = SmallOptions();
  opts.schedule = ScheduleKind::kWarmupCosine;
  opts.warmup_steps = 5;
  opts.grad_clip = 0.5f;
  opts.weight_decay = 0.01f;
  Trainer trainer(model.get(), opts);
  auto stream = PeriodicStream(500);
  auto result = trainer.Train(stream);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->epoch_train_loss.back(),
            result->epoch_train_loss.front());
}

}  // namespace
}  // namespace rt
