#include <memory>

#include <gtest/gtest.h>

#include "models/lstm_model.h"
#include "models/trainer.h"

namespace rt {
namespace {

std::unique_ptr<LstmLm> MakeModel() {
  LstmConfig cfg;
  cfg.vocab_size = 6;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 12;
  cfg.dropout = 0.0f;
  cfg.name = "early-stop-lstm";
  return std::make_unique<LstmLm>(cfg);
}

std::vector<int> PeriodicStream(int n) {
  std::vector<int> s(n);
  for (int i = 0; i < n; ++i) s[i] = i % 6;
  return s;
}

TEST(EarlyStopTest, StopsOnPlateau) {
  auto model = MakeModel();
  TrainerOptions opts;
  // The validation stream is random noise from a different distribution:
  // val loss stops improving almost immediately, triggering the stop.
  opts.epochs = 40;
  opts.batch_size = 4;
  opts.seq_len = 12;
  opts.lr = 0.02f;
  opts.early_stop_patience = 3;
  Trainer trainer(model.get(), opts);
  auto train = PeriodicStream(400);
  std::vector<int> val(200);
  Rng rng(99);
  for (int& v : val) v = static_cast<int>(rng.NextBelow(6));
  auto result = trainer.Train(train, &val);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->early_stopped);
  EXPECT_LT(result->epochs_completed, 40);
  EXPECT_GE(result->epochs_completed, 3);
}

TEST(EarlyStopTest, DisabledByDefault) {
  auto model = MakeModel();
  TrainerOptions opts;
  opts.epochs = 6;
  opts.batch_size = 4;
  opts.seq_len = 12;
  opts.lr = 0.02f;
  Trainer trainer(model.get(), opts);
  auto train = PeriodicStream(400);
  auto val = PeriodicStream(120);
  auto result = trainer.Train(train, &val);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->early_stopped);
  EXPECT_EQ(result->epochs_completed, 6);
}

TEST(EarlyStopTest, NoValSourceMeansNoEarlyStop) {
  auto model = MakeModel();
  TrainerOptions opts;
  opts.epochs = 5;
  opts.batch_size = 4;
  opts.seq_len = 12;
  opts.early_stop_patience = 1;
  Trainer trainer(model.get(), opts);
  auto train = PeriodicStream(300);
  auto result = trainer.Train(train);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->early_stopped);
  EXPECT_EQ(result->epochs_completed, 5);
}

}  // namespace
}  // namespace rt
