// Deadline and cancellation behavior of the decode loops: an expired
// deadline returns immediately with zero tokens, an abort mid-decode
// returns a usable partial result, and the model stays reusable.

#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "models/gpt2_model.h"
#include "models/lstm_model.h"

namespace rt {
namespace {

constexpr int kVocab = 12;

std::unique_ptr<LanguageModel> MakeLstm() {
  LstmConfig cfg;
  cfg.vocab_size = kVocab;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.num_layers = 1;
  cfg.dropout = 0.0f;
  cfg.name = "lstm-test";
  return std::make_unique<LstmLm>(cfg);
}

std::unique_ptr<Gpt2Lm> MakeGpt2() {
  Gpt2Config cfg;
  cfg.vocab_size = kVocab;
  cfg.dim = 16;
  cfg.num_layers = 2;
  cfg.num_heads = 2;
  cfg.max_seq_len = 96;
  cfg.dropout = 0.0f;
  cfg.name = "gpt2-test";
  return std::make_unique<Gpt2Lm>(cfg);
}

GenerationOptions GreedyOptions(int max_new_tokens) {
  GenerationOptions options;
  options.max_new_tokens = max_new_tokens;
  options.sampling.greedy = true;
  return options;
}

TEST(ExpiredDeadlineLstmTest, ReturnsImmediatelyWithZeroTokens) {
  auto model = MakeLstm();
  GenerationOptions options = GreedyOptions(50);
  options.deadline = Deadline::AfterMillis(0);
  GenerationResult result = model->Generate({1, 2, 3}, options);
  EXPECT_TRUE(result.ids.empty());
  EXPECT_EQ(result.finish, FinishReason::kDeadlineExceeded);
  EXPECT_TRUE(result.truncated());
}

TEST(ExpiredDeadlineGpt2Test, ReturnsImmediatelyOnBothDecodePaths) {
  auto model = MakeGpt2();
  GenerationOptions options = GreedyOptions(50);
  options.deadline = Deadline::AfterMillis(-1);
  for (bool kv : {true, false}) {
    model->set_use_kv_cache(kv);
    GenerationResult result = model->Generate({1, 2, 3}, options);
    EXPECT_TRUE(result.ids.empty()) << "kv=" << kv;
    EXPECT_EQ(result.finish, FinishReason::kDeadlineExceeded)
        << "kv=" << kv;
  }
}

TEST(ExpiredDeadlineGpt2Test, BeamSearchReturnsImmediately) {
  auto model = MakeGpt2();
  GenerationOptions options = GreedyOptions(50);
  options.beam_width = 3;
  options.deadline = Deadline::AfterMillis(0);
  GenerationResult result = model->Generate({1, 2, 3}, options);
  EXPECT_TRUE(result.ids.empty());
  EXPECT_EQ(result.finish, FinishReason::kDeadlineExceeded);
}

TEST(CancellationTest, PreCancelledTokenStopsBothModels) {
  auto token = std::make_shared<CancelToken>();
  token->RequestCancel();
  for (auto* model_factory : {+[]() -> std::unique_ptr<LanguageModel> {
                                return MakeLstm();
                              },
                              +[]() -> std::unique_ptr<LanguageModel> {
                                return MakeGpt2();
                              }}) {
    auto model = model_factory();
    GenerationOptions options = GreedyOptions(50);
    options.cancel = token;
    GenerationResult result = model->Generate({1, 2, 3}, options);
    EXPECT_TRUE(result.ids.empty()) << model->name();
    EXPECT_EQ(result.finish, FinishReason::kCancelled) << model->name();
  }
}

TEST(CancellationTest, CancelWinsOverExpiredDeadline) {
  auto token = std::make_shared<CancelToken>();
  token->RequestCancel();
  auto model = MakeLstm();
  GenerationOptions options = GreedyOptions(10);
  options.cancel = token;
  options.deadline = Deadline::AfterMillis(0);
  EXPECT_EQ(model->Generate({1}, options).finish,
            FinishReason::kCancelled);
}

TEST(CancellationTest, MidBeamSearchCancelLeavesModelReusable) {
  // Big enough that the full search takes far longer than the 20 ms
  // cancel delay, so the token always fires mid-search.
  Gpt2Config cfg;
  cfg.vocab_size = kVocab;
  cfg.dim = 64;
  cfg.num_layers = 3;
  cfg.num_heads = 4;
  cfg.max_seq_len = 1024;
  cfg.dropout = 0.0f;
  Gpt2Lm model(cfg);
  auto token = std::make_shared<CancelToken>();

  // Fire the token from another thread while beam search decodes a long
  // budget; the search must come back early with a clean partial result.
  Gpt2Lm::BeamOptions beam;
  beam.beam_width = 4;
  beam.max_new_tokens = 900;
  beam.cancel = token;
  std::thread firer([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token->RequestCancel();
  });
  GenerationResult cancelled = model.BeamSearch({1, 2, 3}, beam);
  firer.join();
  EXPECT_EQ(cancelled.finish, FinishReason::kCancelled);
  EXPECT_LT(static_cast<int>(cancelled.ids.size()), 900);

  // The same instance must generate normally afterwards: cancellation
  // does not poison model state.
  GenerationOptions options = GreedyOptions(8);
  GenerationResult after = model.Generate({1, 2, 3}, options);
  EXPECT_EQ(after.ids.size(), 8u);
  EXPECT_EQ(after.finish, FinishReason::kMaxTokens);

  // And with the token reset, beam search runs to completion again.
  token->Reset();
  beam.max_new_tokens = 6;
  GenerationResult clean = model.BeamSearch({1, 2, 3}, beam);
  EXPECT_FALSE(clean.truncated());
  EXPECT_LE(clean.ids.size(), 6u);
}

TEST(DeadlineMidDecodeTest, PartialResultWithinOneTokenStep) {
  // The naive (re-encode everything per token) path over a long context
  // is slow enough that a 30 ms budget always expires mid-decode, on
  // fast machines and under sanitizers alike.
  Gpt2Config cfg;
  cfg.vocab_size = kVocab;
  cfg.dim = 32;
  cfg.num_layers = 2;
  cfg.num_heads = 2;
  cfg.max_seq_len = 512;
  cfg.dropout = 0.0f;
  Gpt2Lm model(cfg);
  model.set_use_kv_cache(false);
  GenerationOptions options = GreedyOptions(400);
  options.deadline = Deadline::AfterMillis(30);
  GenerationResult result = model.Generate({1, 2, 3}, options);
  EXPECT_EQ(result.finish, FinishReason::kDeadlineExceeded);
  // It stopped before the token budget, leaving a partial result.
  EXPECT_LT(static_cast<int>(result.ids.size()), 400);

  // Reusable afterwards.
  GenerationResult after = model.Generate({1, 2, 3}, GreedyOptions(4));
  EXPECT_EQ(after.finish, FinishReason::kMaxTokens);
  EXPECT_EQ(after.ids.size(), 4u);
}

}  // namespace
}  // namespace rt
