#include <memory>

#include <gtest/gtest.h>

#include "models/gpt2_model.h"
#include "nn/optimizer.h"

namespace rt {
namespace {

constexpr int kVocab = 10;

std::unique_ptr<Gpt2Lm> MakeModel() {
  Gpt2Config cfg;
  cfg.vocab_size = kVocab;
  cfg.dim = 16;
  cfg.num_layers = 2;
  cfg.num_heads = 2;
  cfg.max_seq_len = 48;
  cfg.dropout = 0.0f;
  return std::make_unique<Gpt2Lm>(cfg);
}

/// Trains the model to continue the periodic sequence i -> i+1 mod V.
void TrainPeriodic(Gpt2Lm* model, int iters = 120) {
  Batch b;
  b.batch_size = 4;
  b.seq_len = 16;
  for (int i = 0; i < b.batch_size; ++i) {
    for (int t = 0; t < b.seq_len; ++t) {
      int v = (i + t) % kVocab;
      b.inputs.push_back(v);
      b.targets.push_back((v + 1) % kVocab);
    }
  }
  Adam opt(model->module()->Parameters(), {.lr = 0.01f});
  Rng rng(3);
  for (int i = 0; i < iters; ++i) {
    opt.ZeroGrad();
    model->TrainStep(b, &rng);
    opt.Step();
  }
}

TEST(BeamSearchTest, WidthOneEqualsGreedy) {
  auto model = MakeModel();
  TrainPeriodic(model.get());
  GenerationOptions greedy;
  greedy.max_new_tokens = 10;
  greedy.sampling.greedy = true;
  auto greedy_out = model->GenerateIds({0, 1, 2}, greedy);

  Gpt2Lm::BeamOptions beam;
  beam.beam_width = 1;
  beam.max_new_tokens = 10;
  beam.length_penalty = 0.0f;
  auto beam_out = model->BeamSearchIds({0, 1, 2}, beam);
  EXPECT_EQ(beam_out, greedy_out);
}

TEST(BeamSearchTest, FollowsLearnedPattern) {
  auto model = MakeModel();
  TrainPeriodic(model.get());
  Gpt2Lm::BeamOptions beam;
  beam.beam_width = 4;
  beam.max_new_tokens = 5;
  auto out = model->BeamSearchIds({0, 1, 2, 3}, beam);
  ASSERT_GE(out.size(), 3u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(out[2], 6);
}

TEST(BeamSearchTest, StopsAtStopToken) {
  auto model = MakeModel();
  TrainPeriodic(model.get());
  Gpt2Lm::BeamOptions beam;
  beam.beam_width = 3;
  beam.max_new_tokens = 30;
  beam.stop_token = 7;  // pattern will hit 7 soon after the prompt
  auto out = model->BeamSearchIds({3, 4, 5}, beam);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), 7);
  EXPECT_LE(out.size(), 3u);
}

TEST(BeamSearchTest, DeterministicAcrossCalls) {
  auto model = MakeModel();
  TrainPeriodic(model.get(), 40);
  Gpt2Lm::BeamOptions beam;
  beam.beam_width = 4;
  beam.max_new_tokens = 12;
  auto a = model->BeamSearchIds({1, 2}, beam);
  auto b = model->BeamSearchIds({1, 2}, beam);
  EXPECT_EQ(a, b);
}

TEST(BeamSearchTest, RespectsMaxTokensAndWindow) {
  auto model = MakeModel();
  Gpt2Lm::BeamOptions beam;
  beam.beam_width = 2;
  beam.max_new_tokens = 100;  // > window capacity
  auto out = model->BeamSearchIds({0, 1}, beam);
  // Window is 48; prompt used 2 slots.
  EXPECT_LE(out.size(), 46u + 1u);
  EXPECT_FALSE(out.empty());
}

TEST(BeamSearchTest, GenerationOptionsDispatch) {
  auto model = MakeModel();
  TrainPeriodic(model.get());
  GenerationOptions opts;
  opts.beam_width = 3;
  opts.max_new_tokens = 4;
  auto via_options = model->GenerateIds({0, 1, 2, 3}, opts);
  Gpt2Lm::BeamOptions beam;
  beam.beam_width = 3;
  beam.max_new_tokens = 4;
  auto direct = model->BeamSearchIds({0, 1, 2, 3}, beam);
  EXPECT_EQ(via_options, direct);
}

TEST(BeamSearchTest, HigherBeamNeverWorseLogProbOnPattern) {
  // On a learned deterministic pattern the beam-1 and beam-4 outputs
  // agree (the pattern is the mode); this guards against beam search
  // mangling scores.
  auto model = MakeModel();
  TrainPeriodic(model.get());
  Gpt2Lm::BeamOptions narrow;
  narrow.beam_width = 1;
  narrow.max_new_tokens = 8;
  narrow.length_penalty = 0.0f;
  Gpt2Lm::BeamOptions wide = narrow;
  wide.beam_width = 4;
  EXPECT_EQ(model->BeamSearchIds({0, 1, 2, 3}, narrow),
            model->BeamSearchIds({0, 1, 2, 3}, wide));
}

}  // namespace
}  // namespace rt
