// Behavioral tests shared by both model families (parameterized over a
// factory), plus GPT-2-specific KV-cache consistency checks.

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "models/gpt2_model.h"
#include "models/lstm_model.h"
#include "tensor/ops.h"

namespace rt {
namespace {

constexpr int kVocab = 12;

std::unique_ptr<LanguageModel> MakeLstm() {
  LstmConfig cfg;
  cfg.vocab_size = kVocab;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.num_layers = 1;
  cfg.dropout = 0.0f;
  cfg.name = "lstm-test";
  return std::make_unique<LstmLm>(cfg);
}

std::unique_ptr<LanguageModel> MakeGpt2() {
  Gpt2Config cfg;
  cfg.vocab_size = kVocab;
  cfg.dim = 16;
  cfg.num_layers = 2;
  cfg.num_heads = 2;
  cfg.max_seq_len = 64;
  cfg.dropout = 0.0f;
  cfg.name = "gpt2-test";
  return std::make_unique<Gpt2Lm>(cfg);
}

/// Deterministic periodic batch: token stream i -> (i+1) mod kVocab.
Batch PeriodicBatch(int batch_size, int seq_len) {
  Batch b;
  b.batch_size = batch_size;
  b.seq_len = seq_len;
  for (int i = 0; i < batch_size; ++i) {
    for (int t = 0; t < seq_len; ++t) {
      int v = (i + t) % kVocab;
      b.inputs.push_back(v);
      b.targets.push_back((v + 1) % kVocab);
    }
  }
  return b;
}

struct ModelCase {
  std::string name;
  std::function<std::unique_ptr<LanguageModel>()> make;
};

class ModelBehaviorTest : public testing::TestWithParam<ModelCase> {};

TEST_P(ModelBehaviorTest, InitialLossNearUniform) {
  auto model = GetParam().make();
  Batch b = PeriodicBatch(2, 16);
  float loss = model->EvalLoss(b);
  EXPECT_NEAR(loss, std::log(static_cast<float>(kVocab)), 0.5f);
}

TEST_P(ModelBehaviorTest, TrainingReducesLoss) {
  auto model = GetParam().make();
  Batch b = PeriodicBatch(4, 16);
  Adam opt(model->module()->Parameters(), {.lr = 0.01f});
  Rng rng(3);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();
    float loss = model->TrainStep(b, &rng);
    opt.Step();
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.5f);
  EXPECT_LT(last, 0.8f);
}

TEST_P(ModelBehaviorTest, EvalLossDoesNotTouchGradients) {
  auto model = GetParam().make();
  model->module()->ZeroGrad();
  Batch b = PeriodicBatch(2, 8);
  model->EvalLoss(b);
  for (Parameter* p : model->module()->Parameters()) {
    for (size_t i = 0; i < p->grad.numel(); ++i) {
      ASSERT_EQ(p->grad[i], 0.0f);
    }
  }
}

TEST_P(ModelBehaviorTest, GenerateRespectsMaxTokensAndStop) {
  auto model = GetParam().make();
  GenerationOptions opts;
  opts.max_new_tokens = 12;
  opts.seed = 5;
  auto out = model->GenerateIds({1, 2, 3}, opts);
  EXPECT_LE(out.size(), 12u);
  EXPECT_FALSE(out.empty());
  for (int id : out) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, kVocab);
  }
}

TEST_P(ModelBehaviorTest, GenerationDeterministicGivenSeed) {
  auto model = GetParam().make();
  GenerationOptions opts;
  opts.max_new_tokens = 10;
  opts.seed = 11;
  auto a = model->GenerateIds({0, 1}, opts);
  auto b = model->GenerateIds({0, 1}, opts);
  EXPECT_EQ(a, b);
}

TEST_P(ModelBehaviorTest, CloneGeneratesIdenticallyAndIndependently) {
  auto model = GetParam().make();
  Batch b = PeriodicBatch(4, 16);
  Adam opt(model->module()->Parameters(), {.lr = 0.01f});
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    opt.ZeroGrad();
    model->TrainStep(b, &rng);
    opt.Step();
  }
  auto clone = model->Clone();
  ASSERT_NE(clone, nullptr);

  GenerationOptions opts;
  opts.max_new_tokens = 10;
  opts.sampling.greedy = true;
  EXPECT_EQ(model->GenerateIds({0, 1, 2}, opts),
            clone->GenerateIds({0, 1, 2}, opts));

  // Deep copy: perturbing the clone must not change the original.
  auto original = model->GenerateIds({0, 1, 2}, opts);
  for (Parameter* p : clone->module()->Parameters()) {
    for (size_t i = 0; i < p->value.numel(); ++i) p->value[i] += 1.0f;
  }
  EXPECT_EQ(model->GenerateIds({0, 1, 2}, opts), original);
}

TEST_P(ModelBehaviorTest, TrainedModelContinuesPattern) {
  auto model = GetParam().make();
  Batch b = PeriodicBatch(4, 16);
  Adam opt(model->module()->Parameters(), {.lr = 0.01f});
  Rng rng(7);
  for (int i = 0; i < 120; ++i) {
    opt.ZeroGrad();
    model->TrainStep(b, &rng);
    opt.Step();
  }
  GenerationOptions opts;
  opts.max_new_tokens = 6;
  opts.sampling.greedy = true;
  auto out = model->GenerateIds({0, 1, 2, 3}, opts);
  // Next tokens should continue 4, 5, 6, ...
  ASSERT_GE(out.size(), 3u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(out[2], 6);
}

TEST_P(ModelBehaviorTest, InitIsSeedDeterministic) {
  auto a = GetParam().make();
  auto b = GetParam().make();
  auto pa = a->module()->Parameters();
  auto pb = b->module()->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_TRUE(pa[i]->value.SameShape(pb[i]->value));
    for (size_t j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelBehaviorTest,
    testing::Values(ModelCase{"lstm", MakeLstm},
                    ModelCase{"gpt2", MakeGpt2}),
    [](const testing::TestParamInfo<ModelCase>& info) {
      return info.param.name;
    });

// ---- GPT-2 specifics ----------------------------------------------------

TEST(Gpt2Test, ConfigPointsOrderedByCapacity) {
  Gpt2Lm distil(Gpt2Config::Distil(100));
  Gpt2Lm medium(Gpt2Config::Medium(100));
  Gpt2Lm deep(Gpt2Config::Deep(100));
  EXPECT_LT(distil.NumParams(), medium.NumParams());
  EXPECT_LT(medium.NumParams(), deep.NumParams());
}

TEST(Gpt2Test, RawForwardMatchesTapeForward) {
  auto model = std::make_unique<Gpt2Lm>([] {
    Gpt2Config cfg;
    cfg.vocab_size = kVocab;
    cfg.dim = 16;
    cfg.num_layers = 2;
    cfg.num_heads = 2;
    cfg.max_seq_len = 32;
    cfg.dropout = 0.0f;
    return cfg;
  }());
  // EvalLoss goes through the tape; recompute the same loss from the raw
  // logits and compare.
  Batch b;
  b.batch_size = 1;
  b.seq_len = 8;
  for (int t = 0; t < 8; ++t) {
    b.inputs.push_back(t % kVocab);
    b.targets.push_back((t + 1) % kVocab);
  }
  float tape_loss = model->EvalLoss(b);
  Tensor logits = model->ForwardLogitsRaw(b.inputs);
  float raw_loss =
      ops::CrossEntropyFromLogits(logits, b.targets, -1, nullptr);
  EXPECT_NEAR(tape_loss, raw_loss, 1e-4f);
}

TEST(Gpt2Test, KvCacheMatchesNaiveDecoding) {
  auto make = [] {
    Gpt2Config cfg;
    cfg.vocab_size = kVocab;
    cfg.dim = 16;
    cfg.num_layers = 2;
    cfg.num_heads = 2;
    cfg.max_seq_len = 48;
    cfg.dropout = 0.0f;
    return std::make_unique<Gpt2Lm>(cfg);
  };
  auto cached = make();
  auto naive = make();
  cached->set_use_kv_cache(true);
  naive->set_use_kv_cache(false);
  GenerationOptions opts;
  opts.max_new_tokens = 16;
  opts.sampling.greedy = true;  // removes sampling-order sensitivity
  auto a = cached->GenerateIds({1, 2, 3, 4}, opts);
  auto b = naive->GenerateIds({1, 2, 3, 4}, opts);
  EXPECT_EQ(a, b);
}

TEST(Gpt2Test, GenerationStopsAtContextWindow) {
  Gpt2Config cfg;
  cfg.vocab_size = kVocab;
  cfg.dim = 16;
  cfg.num_layers = 1;
  cfg.num_heads = 2;
  cfg.max_seq_len = 8;
  cfg.dropout = 0.0f;
  Gpt2Lm model(cfg);
  GenerationOptions opts;
  opts.max_new_tokens = 100;
  auto out = model.GenerateIds({0, 1, 2}, opts);
  // 3 prompt tokens leave at most 5 cache slots + the first sampled token.
  EXPECT_LE(out.size(), 6u);
}

TEST(Gpt2Test, StopTokenEndsGeneration) {
  auto model = MakeGpt2();
  GenerationOptions opts;
  opts.max_new_tokens = 200;
  opts.seed = 9;
  // Use every token as stop: generation must stop after exactly one.
  for (int stop = 0; stop < 3; ++stop) {
    opts.stop_token = stop;
    auto out = model->GenerateIds({1}, opts);
    if (!out.empty() && out.back() == stop) {
      EXPECT_TRUE(std::find(out.begin(), out.end() - 1, stop) ==
                  out.end() - 1);
    }
  }
}

}  // namespace
}  // namespace rt
