#include "data/dataset.h"

#include <set>
#include <algorithm>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "text/word_tokenizer.h"

namespace rt {
namespace {

std::vector<Recipe> SmallCorpus(int n = 100) {
  GeneratorOptions opts;
  opts.num_recipes = n;
  opts.seed = 3;
  opts.incomplete_fraction = 0.0;
  opts.duplicate_fraction = 0.0;
  opts.overlong_fraction = 0.0;
  opts.short_fraction = 0.0;
  return RecipeDbGenerator(opts).Generate();
}

TEST(SplitDatasetTest, FractionsRespected) {
  auto splits = SplitDataset(SmallCorpus(100), 0.1, 0.2, 5);
  EXPECT_EQ(splits.train.size(), 70u);
  EXPECT_EQ(splits.val.size(), 10u);
  EXPECT_EQ(splits.test.size(), 20u);
}

TEST(SplitDatasetTest, PartitionIsDisjointAndComplete) {
  auto corpus = SmallCorpus(80);
  auto splits = SplitDataset(corpus, 0.15, 0.15, 7);
  std::set<long long> ids;
  for (const auto* part : {&splits.train, &splits.val, &splits.test}) {
    for (const Recipe& r : *part) {
      EXPECT_TRUE(ids.insert(r.id).second) << "duplicated id " << r.id;
    }
  }
  EXPECT_EQ(ids.size(), corpus.size());
}

TEST(SplitDatasetTest, DeterministicBySeed) {
  auto corpus = SmallCorpus(50);
  auto a = SplitDataset(corpus, 0.2, 0.2, 11);
  auto b = SplitDataset(corpus, 0.2, 0.2, 11);
  EXPECT_EQ(a.train, b.train);
  auto c = SplitDataset(corpus, 0.2, 0.2, 12);
  EXPECT_NE(a.train, c.train);
}

TEST(EncodeCorpusTest, ConcatenatesAllRecipes) {
  auto corpus = SmallCorpus(5);
  std::vector<std::string> docs;
  for (const auto& r : corpus) docs.push_back(r.ToTaggedString());
  auto tok = WordTokenizer::Build(docs);
  auto stream = EncodeCorpus(tok, corpus);
  size_t expected = 0;
  for (const auto& doc : docs) expected += tok.Encode(doc + " ").size();
  EXPECT_EQ(stream.size(), expected);
  // No <UNK> in a stream built with its own tokenizer's vocab.
  for (int id : stream) EXPECT_NE(id, tok.unk_id());
}

TEST(BatchIteratorTest, YieldsShiftedTargets) {
  std::vector<int> stream;
  for (int i = 0; i < 100; ++i) stream.push_back(i);
  BatchIterator it(&stream, /*batch_size=*/2, /*seq_len=*/9, 13);
  Batch b;
  ASSERT_TRUE(it.Next(&b));
  EXPECT_EQ(b.seq_len, 9);
  for (int i = 0; i < b.batch_size; ++i) {
    for (int t = 0; t < b.seq_len; ++t) {
      EXPECT_EQ(b.targets[i * b.seq_len + t],
                b.inputs[i * b.seq_len + t] + 1);
    }
  }
}

TEST(BatchIteratorTest, CoversAllWindowsOncePerEpoch) {
  std::vector<int> stream(101);
  for (size_t i = 0; i < stream.size(); ++i) stream[i] = static_cast<int>(i);
  BatchIterator it(&stream, 3, 9, 17);  // windows of 10 tokens => 10 windows
  EXPECT_EQ(it.NumWindows(), 10);
  EXPECT_EQ(it.BatchesPerEpoch(), 4);  // 3+3+3+1
  std::set<int> starts;
  Batch b;
  int batches = 0;
  while (it.Next(&b)) {
    ++batches;
    for (int i = 0; i < b.batch_size; ++i) {
      starts.insert(b.inputs[i * b.seq_len]);  // stream[i] == position
    }
  }
  EXPECT_EQ(batches, 4);
  EXPECT_EQ(starts.size(), 10u);
}

TEST(BatchIteratorTest, NextEpochReshuffles) {
  std::vector<int> stream(1000);
  for (size_t i = 0; i < stream.size(); ++i) stream[i] = static_cast<int>(i);
  BatchIterator it(&stream, 4, 9, 19);
  std::vector<int> first_epoch, second_epoch;
  Batch b;
  while (it.Next(&b)) {
    for (int i = 0; i < b.batch_size; ++i) {
      first_epoch.push_back(b.inputs[i * b.seq_len]);
    }
  }
  it.NextEpoch();
  while (it.Next(&b)) {
    for (int i = 0; i < b.batch_size; ++i) {
      second_epoch.push_back(b.inputs[i * b.seq_len]);
    }
  }
  EXPECT_EQ(first_epoch.size(), second_epoch.size());
  EXPECT_NE(first_epoch, second_epoch);  // different order
  std::sort(first_epoch.begin(), first_epoch.end());
  std::sort(second_epoch.begin(), second_epoch.end());
  EXPECT_EQ(first_epoch, second_epoch);  // same windows
}

TEST(BatchIteratorTest, StreamShorterThanWindowYieldsNothing) {
  std::vector<int> stream{1, 2, 3};
  BatchIterator it(&stream, 2, 8, 23);
  Batch b;
  EXPECT_EQ(it.NumWindows(), 0);
  EXPECT_FALSE(it.Next(&b));
}

}  // namespace
}  // namespace rt
