#include "data/recipe_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/generator.h"

namespace rt {
namespace {

std::vector<Recipe> Corpus(int n = 25) {
  GeneratorOptions opts;
  opts.num_recipes = n;
  opts.seed = 55;
  return RecipeDbGenerator(opts).Generate();
}

TEST(RecipeJsonTest, RecordRoundTrip) {
  for (const Recipe& r : Corpus(10)) {
    auto back = RecipeFromJsonRecord(RecipeToJsonRecord(r));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, r);
  }
}

TEST(RecipeJsonTest, RejectsNonObject) {
  EXPECT_FALSE(RecipeFromJsonRecord(Json(Json::Array{})).ok());
  EXPECT_FALSE(RecipeFromJsonRecord(Json("text")).ok());
}

TEST(RecipeJsonTest, MissingFieldsYieldEmptyValues) {
  auto r = RecipeFromJsonRecord(*Json::Parse(R"({"title":"x"})"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->title, "x");
  EXPECT_TRUE(r->ingredients.empty());
  EXPECT_TRUE(r->instructions.empty());
  EXPECT_EQ(r->id, 0);
}

TEST(RecipeJsonlTest, FileRoundTripPreservesCorpus) {
  auto corpus = Corpus();
  const std::string path = testing::TempDir() + "/corpus.jsonl";
  ASSERT_TRUE(SaveRecipesJsonl(corpus, path).ok());
  auto loaded = LoadRecipesJsonl(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, corpus);
  std::remove(path.c_str());
}

TEST(RecipeJsonlTest, SkipsBlankLines) {
  const std::string path = testing::TempDir() + "/blank.jsonl";
  {
    std::ofstream out(path);
    out << RecipeToJsonRecord(Corpus(1)[0]).Dump() << "\n\n";
  }
  auto loaded = LoadRecipesJsonl(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(path.c_str());
}

TEST(RecipeJsonlTest, MalformedLineReportsLineNumber) {
  const std::string path = testing::TempDir() + "/bad.jsonl";
  {
    std::ofstream out(path);
    out << RecipeToJsonRecord(Corpus(1)[0]).Dump() << "\n";
    out << "{not json}\n";
  }
  auto loaded = LoadRecipesJsonl(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RecipeJsonlTest, MissingFileIsIoError) {
  auto loaded = LoadRecipesJsonl("/nonexistent/corpus.jsonl");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace rt
