#include "data/preprocess.h"

#include <cmath>
#include <set>
#include <gtest/gtest.h>

#include "data/generator.h"

namespace rt {
namespace {

std::vector<Recipe> NoisyCorpus(int n = 600) {
  GeneratorOptions opts;
  opts.num_recipes = n;
  opts.seed = 21;
  opts.incomplete_fraction = 0.05;
  opts.duplicate_fraction = 0.06;
  opts.overlong_fraction = 0.03;
  opts.short_fraction = 0.05;
  return RecipeDbGenerator(opts).Generate();
}

TEST(LengthStatsTest, MeanAndStddev) {
  LengthStats s = ComputeLengthStats({10, 20, 30});
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_NEAR(s.stddev, std::sqrt(200.0 / 3.0), 1e-9);
  EXPECT_EQ(s.min_len, 10u);
  EXPECT_EQ(s.max_len, 30u);
}

TEST(LengthStatsTest, EmptyIsZero) {
  LengthStats s = ComputeLengthStats({});
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(LengthStatsTest, CoverageWithinBand) {
  std::vector<size_t> lengths{10, 20, 30, 1000};
  LengthStats s = ComputeLengthStats(lengths);
  EXPECT_GT(s.CoverageWithin(2.0, lengths), 0.5);
  EXPECT_EQ(s.CoverageWithin(100.0, lengths), 1.0);
}

TEST(LengthHistogramTest, BinsCoverAllLengths) {
  LengthHistogram h = BuildLengthHistogram({5, 15, 15, 25}, 10);
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
}

TEST(PreprocessorTest, RemovesIncompleteRecords) {
  auto corpus = NoisyCorpus();
  PreprocessStats stats;
  auto clean = Preprocessor().Run(corpus, &stats);
  EXPECT_GT(stats.removed_incomplete, 0);
  for (const Recipe& r : clean) EXPECT_TRUE(r.IsComplete());
}

TEST(PreprocessorTest, RemovesDuplicates) {
  auto corpus = NoisyCorpus();
  PreprocessStats stats;
  auto clean = Preprocessor().Run(corpus, &stats);
  EXPECT_GT(stats.removed_duplicates, 0);
  std::set<std::string> seen;
  for (const Recipe& r : clean) {
    EXPECT_TRUE(seen.insert(r.ToTaggedString()).second);
  }
}

TEST(PreprocessorTest, ClampsTo2000Chars) {
  auto corpus = NoisyCorpus();
  PreprocessStats stats;
  auto clean = Preprocessor().Run(corpus, &stats);
  EXPECT_GT(stats.clamped, 0);
  for (const Recipe& r : clean) {
    EXPECT_LE(r.TaggedLength(), 2000u) << r.id;
  }
}

TEST(PreprocessorTest, MergesShortTail) {
  auto corpus = NoisyCorpus();
  PreprocessStats stats;
  auto clean = Preprocessor().Run(corpus, &stats);
  EXPECT_GT(stats.merged_short, 0);
}

TEST(PreprocessorTest, StatsAreConsistent) {
  auto corpus = NoisyCorpus();
  PreprocessStats stats;
  auto clean = Preprocessor().Run(corpus, &stats);
  EXPECT_EQ(stats.input_count, static_cast<int>(corpus.size()));
  EXPECT_EQ(stats.output_count, static_cast<int>(clean.size()));
  EXPECT_EQ(stats.input_count - stats.removed_incomplete -
                stats.removed_duplicates - stats.merged_short -
                stats.removed_band,
            stats.output_count);
  EXPECT_GT(stats.before.mean, 0.0);
  EXPECT_GT(stats.after.mean, 0.0);
}

TEST(PreprocessorTest, TwoSigmaCoverageNearNormalFigure) {
  // The paper keeps ~2 sigma (95.46 %) of the size-distribution curve; the
  // synthetic corpus should show comparable coverage before filtering.
  auto corpus = NoisyCorpus(2000);
  PreprocessStats stats;
  Preprocessor().Run(corpus, &stats);
  EXPECT_GT(stats.coverage_2sigma_before, 0.90);
  EXPECT_LE(stats.coverage_2sigma_before, 1.0);
}

TEST(PreprocessorTest, AfterStatsTighterThanBefore) {
  auto corpus = NoisyCorpus();
  PreprocessStats stats;
  Preprocessor().Run(corpus, &stats);
  EXPECT_LT(stats.after.stddev, stats.before.stddev);
  EXPECT_LE(stats.after.max_len, 2000u);
}

TEST(PreprocessorTest, RulesCanBeDisabled) {
  auto corpus = NoisyCorpus();
  PreprocessOptions opts;
  opts.drop_incomplete = false;
  opts.drop_duplicates = false;
  opts.merge_short = false;
  opts.band_sigma = 0.0;
  opts.max_chars = 1u << 30;
  PreprocessStats stats;
  auto out = Preprocessor(opts).Run(corpus, &stats);
  EXPECT_EQ(out.size(), corpus.size());
  EXPECT_EQ(stats.removed_incomplete, 0);
  EXPECT_EQ(stats.removed_duplicates, 0);
  EXPECT_EQ(stats.clamped, 0);
  EXPECT_EQ(stats.removed_band, 0);
}

TEST(PreprocessorTest, DeterministicOutput) {
  auto corpus = NoisyCorpus();
  PreprocessStats s1, s2;
  auto a = Preprocessor().Run(corpus, &s1);
  auto b = Preprocessor().Run(corpus, &s2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(s1.output_count, s2.output_count);
}

TEST(PreprocessorTest, EmptyCorpus) {
  PreprocessStats stats;
  auto out = Preprocessor().Run({}, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.input_count, 0);
  EXPECT_EQ(stats.output_count, 0);
}

}  // namespace
}  // namespace rt
