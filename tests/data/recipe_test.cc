#include "data/recipe.h"

#include <gtest/gtest.h>

#include "text/special_tokens.h"

namespace rt {
namespace {

Recipe MakeRecipe() {
  Recipe r;
  r.id = 7;
  r.title = "rustic italian tomato stew";
  r.continent = "europe";
  r.region = "southern europe";
  r.country = "italy";
  r.ingredients = {
      {"1/2", "cup", "tomato", "chopped"},
      {"2", "tbsp", "olive oil", ""},
      {"1", "", "onion", "diced"},
  };
  r.instructions = {
      "heat the olive oil in a large pot over medium heat",
      "add the onion and saute until softened",
      "add the tomato and simmer for 20 minutes",
  };
  return r;
}

TEST(IngredientLineTest, RenderFormats) {
  EXPECT_EQ((IngredientLine{"1/2", "cup", "tomato", "chopped"}).Render(),
            "1/2 cup tomato , chopped");
  EXPECT_EQ((IngredientLine{"2", "", "onion", ""}).Render(), "2 onion");
  EXPECT_EQ((IngredientLine{"", "", "salt", ""}).Render(), "salt");
}

TEST(RecipeTest, IsComplete) {
  Recipe r = MakeRecipe();
  EXPECT_TRUE(r.IsComplete());
  Recipe no_title = r;
  no_title.title.clear();
  EXPECT_FALSE(no_title.IsComplete());
  Recipe no_instr = r;
  no_instr.instructions.clear();
  EXPECT_FALSE(no_instr.IsComplete());
  Recipe no_ingr = r;
  no_ingr.ingredients.clear();
  EXPECT_FALSE(no_ingr.IsComplete());
}

TEST(RecipeTest, TaggedStringHasAllSections) {
  const std::string s = MakeRecipe().ToTaggedString();
  EXPECT_NE(s.find(kRecipeStart), std::string::npos);
  EXPECT_NE(s.find(kInputStart), std::string::npos);
  EXPECT_NE(s.find(kIngrStart), std::string::npos);
  EXPECT_NE(s.find(kInstrStart), std::string::npos);
  EXPECT_NE(s.find(kTitleStart), std::string::npos);
  EXPECT_NE(s.find(kRecipeEnd), std::string::npos);
  // Fractions are normalized in the tagged form.
  EXPECT_EQ(s.find("1/2"), std::string::npos);
  EXPECT_NE(s.find("<FRAC_1_2>"), std::string::npos);
}

TEST(RecipeTest, TaggedStringWithoutInputSection) {
  const std::string s = MakeRecipe().ToTaggedString(/*with_input=*/false);
  EXPECT_EQ(s.find(kInputStart), std::string::npos);
  EXPECT_NE(s.find(kIngrStart), std::string::npos);
}

TEST(RecipeTest, PromptPrefixEndsAtIngrStart) {
  const std::string p = MakeRecipe().PromptPrefix();
  EXPECT_NE(p.find(kInputStart), std::string::npos);
  EXPECT_NE(p.find("tomato"), std::string::npos);
  EXPECT_TRUE(p.ends_with(kIngrStart));
  // No quantities in the prompt.
  EXPECT_EQ(p.find("cup"), std::string::npos);
}

TEST(RecipeTest, RawStringResemblesScrapedText) {
  const std::string raw = MakeRecipe().ToRawString();
  EXPECT_NE(raw.find("Ingredients:"), std::string::npos);
  EXPECT_NE(raw.find("- 1/2 cup tomato , chopped"), std::string::npos);
  EXPECT_EQ(raw.find(kRecipeStart), std::string::npos);
}

TEST(RecipeTest, ParseTaggedRoundTrip) {
  Recipe original = MakeRecipe();
  auto parsed = ParseTaggedRecipe(original.ToTaggedString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->title, original.title);
  ASSERT_EQ(parsed->ingredients.size(), original.ingredients.size());
  for (size_t i = 0; i < original.ingredients.size(); ++i) {
    EXPECT_EQ(parsed->ingredients[i].quantity,
              original.ingredients[i].quantity);
    EXPECT_EQ(parsed->ingredients[i].unit, original.ingredients[i].unit);
    EXPECT_EQ(parsed->ingredients[i].name, original.ingredients[i].name);
    EXPECT_EQ(parsed->ingredients[i].prep, original.ingredients[i].prep);
  }
  EXPECT_EQ(parsed->instructions, original.instructions);
}

TEST(RecipeTest, ParseRejectsTaglessText) {
  auto parsed = ParseTaggedRecipe("just some words");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecipeTest, ParseToleratesTruncatedOutput) {
  // A sampler may stop mid-recipe; sections after the cut are empty.
  Recipe r = MakeRecipe();
  std::string s = r.ToTaggedString();
  s = s.substr(0, s.find(kInstrStart));
  auto parsed = ParseTaggedRecipe(s);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ingredients.size(), 3u);
  EXPECT_TRUE(parsed->instructions.empty());
  EXPECT_TRUE(parsed->title.empty());
}

TEST(RecipeTest, ParseIngredientWithoutQuantity) {
  std::string s = std::string(kRecipeStart) + " " + kIngrStart +
                  " salt <INGR_NEXT> 2 cups rice " + kIngrEnd + " " +
                  kRecipeEnd;
  auto parsed = ParseTaggedRecipe(s);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->ingredients.size(), 2u);
  EXPECT_EQ(parsed->ingredients[0].name, "salt");
  EXPECT_EQ(parsed->ingredients[0].quantity, "");
  EXPECT_EQ(parsed->ingredients[1].quantity, "2");
  EXPECT_EQ(parsed->ingredients[1].unit, "cups");
  EXPECT_EQ(parsed->ingredients[1].name, "rice");
}

TEST(RecipeTest, TaggedLengthMatchesStringSize) {
  Recipe r = MakeRecipe();
  EXPECT_EQ(r.TaggedLength(), r.ToTaggedString().size());
}

TEST(RecipeTest, IngredientNamesInOrder) {
  auto names = MakeRecipe().IngredientNames();
  EXPECT_EQ(names,
            (std::vector<std::string>{"tomato", "olive oil", "onion"}));
}

}  // namespace
}  // namespace rt
