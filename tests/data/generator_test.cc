#include "data/generator.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/catalog.h"

namespace rt {
namespace {

GeneratorOptions CleanOptions(int n, uint64_t seed = 9) {
  GeneratorOptions opts;
  opts.num_recipes = n;
  opts.seed = seed;
  opts.incomplete_fraction = 0.0;
  opts.duplicate_fraction = 0.0;
  opts.overlong_fraction = 0.0;
  opts.short_fraction = 0.0;
  return opts;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  RecipeDbGenerator g1(CleanOptions(50));
  RecipeDbGenerator g2(CleanOptions(50));
  EXPECT_EQ(g1.Generate(), g2.Generate());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = RecipeDbGenerator(CleanOptions(20, 1)).Generate();
  auto b = RecipeDbGenerator(CleanOptions(20, 2)).Generate();
  EXPECT_NE(a, b);
}

TEST(GeneratorTest, CleanRecipesAreComplete) {
  auto corpus = RecipeDbGenerator(CleanOptions(200)).Generate();
  ASSERT_EQ(corpus.size(), 200u);
  for (const Recipe& r : corpus) {
    EXPECT_TRUE(r.IsComplete()) << r.id;
    EXPECT_FALSE(r.country.empty());
    EXPECT_FALSE(r.region.empty());
    EXPECT_FALSE(r.continent.empty());
    EXPECT_GE(r.ingredients.size(), 2u);
    EXPECT_GE(r.instructions.size(), 3u);
  }
}

TEST(GeneratorTest, InstructionsMentionChosenIngredients) {
  // The corpus must have learnable ingredient -> instruction structure:
  // most ingredient names should literally appear in the instruction text.
  auto corpus = RecipeDbGenerator(CleanOptions(100)).Generate();
  int mentioned = 0, total = 0;
  for (const Recipe& r : corpus) {
    std::string all_instr;
    for (const auto& step : r.instructions) all_instr += step + " ";
    for (const auto& name : r.IngredientNames()) {
      ++total;
      if (all_instr.find(name) != std::string::npos) ++mentioned;
    }
  }
  EXPECT_GT(static_cast<double>(mentioned) / total, 0.7);
}

TEST(GeneratorTest, CuisineMetadataComesFromCatalog) {
  auto corpus = RecipeDbGenerator(CleanOptions(100)).Generate();
  std::set<std::string> valid_countries;
  for (const auto& c : Catalog::Cuisines()) {
    valid_countries.insert(c.country);
  }
  for (const Recipe& r : corpus) {
    EXPECT_TRUE(valid_countries.count(r.country)) << r.country;
  }
}

TEST(GeneratorTest, QuantitiesPresentOnIngredients) {
  // Future-work feature the paper claims: quantities are first-class.
  auto corpus = RecipeDbGenerator(CleanOptions(100)).Generate();
  int with_qty = 0, total = 0;
  for (const Recipe& r : corpus) {
    for (const auto& line : r.ingredients) {
      ++total;
      if (!line.quantity.empty()) ++with_qty;
    }
  }
  EXPECT_EQ(with_qty, total);  // every line carries a quantity
}

TEST(GeneratorTest, IncompleteFractionProducesIncompleteRecords) {
  GeneratorOptions opts = CleanOptions(500);
  opts.incomplete_fraction = 0.10;
  auto corpus = RecipeDbGenerator(opts).Generate();
  int incomplete = 0;
  for (const Recipe& r : corpus) incomplete += !r.IsComplete();
  EXPECT_GT(incomplete, 20);
  EXPECT_LT(incomplete, 90);
}

TEST(GeneratorTest, DuplicateFractionProducesExactCopies) {
  GeneratorOptions opts = CleanOptions(500);
  opts.duplicate_fraction = 0.10;
  auto corpus = RecipeDbGenerator(opts).Generate();
  std::unordered_set<std::string> seen;
  int dups = 0;
  for (const Recipe& r : corpus) {
    if (!seen.insert(r.ToTaggedString()).second) ++dups;
  }
  EXPECT_GT(dups, 20);
}

TEST(GeneratorTest, OverlongFractionExceedsClampLength) {
  GeneratorOptions opts = CleanOptions(300);
  opts.overlong_fraction = 0.10;
  auto corpus = RecipeDbGenerator(opts).Generate();
  int overlong = 0;
  for (const Recipe& r : corpus) overlong += r.TaggedLength() > 2000;
  EXPECT_GT(overlong, 10);
}

TEST(GeneratorTest, ShortFractionCreatesShortTail) {
  GeneratorOptions opts = CleanOptions(300);
  opts.short_fraction = 0.10;
  auto corpus = RecipeDbGenerator(opts).Generate();
  int shorts = 0;
  for (const Recipe& r : corpus) {
    shorts += r.ingredients.size() <= 2 && r.instructions.size() <= 1;
  }
  EXPECT_GT(shorts, 10);
}

TEST(GeneratorTest, TitlesFollowTemplate) {
  auto corpus = RecipeDbGenerator(CleanOptions(50)).Generate();
  for (const Recipe& r : corpus) {
    // "adjective cuisine main dish" => at least 4 words.
    int words = 1;
    for (char c : r.title) words += c == ' ';
    EXPECT_GE(words, 4) << r.title;
  }
}

TEST(GeneratorTest, CorpusCoversManyCuisinesAndDishes) {
  auto corpus = RecipeDbGenerator(CleanOptions(400)).Generate();
  std::set<std::string> countries;
  for (const Recipe& r : corpus) countries.insert(r.country);
  EXPECT_GE(countries.size(), 20u);
}

}  // namespace
}  // namespace rt
