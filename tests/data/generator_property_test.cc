// Seed-swept properties of the synthetic RecipeDB generator: every clean
// recipe must parse back from its tagged form, carry catalog-consistent
// metadata and keep the learnable ingredient->instruction structure.

#include <set>

#include <gtest/gtest.h>

#include "data/catalog.h"
#include "data/flavor.h"
#include "data/generator.h"
#include "eval/metrics.h"

namespace rt {
namespace {

class GeneratorPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  std::vector<Recipe> Corpus(int n = 60) {
    GeneratorOptions opts;
    opts.num_recipes = n;
    opts.seed = GetParam();
    opts.incomplete_fraction = 0.0;
    opts.duplicate_fraction = 0.0;
    opts.overlong_fraction = 0.0;
    opts.short_fraction = 0.0;
    return RecipeDbGenerator(opts).Generate();
  }
};

TEST_P(GeneratorPropertyTest, EveryRecipeParsesBackFromTaggedForm) {
  for (const Recipe& r : Corpus()) {
    auto parsed = ParseTaggedRecipe(r.ToTaggedString());
    ASSERT_TRUE(parsed.ok()) << r.id;
    EXPECT_EQ(parsed->title, r.title);
    EXPECT_EQ(parsed->instructions, r.instructions);
    ASSERT_EQ(parsed->ingredients.size(), r.ingredients.size());
    for (size_t i = 0; i < r.ingredients.size(); ++i) {
      EXPECT_EQ(parsed->ingredients[i], r.ingredients[i]) << r.id;
    }
  }
}

TEST_P(GeneratorPropertyTest, EveryRecipeIsStructurallyValid) {
  for (const Recipe& r : Corpus()) {
    EXPECT_DOUBLE_EQ(StructuralValidity(r.ToTaggedString()), 1.0) << r.id;
  }
}

TEST_P(GeneratorPropertyTest, QuantitiesAlwaysWellFormed) {
  for (const Recipe& r : Corpus()) {
    EXPECT_DOUBLE_EQ(QuantityWellFormedness(r), 1.0) << r.id;
  }
}

TEST_P(GeneratorPropertyTest, MetadataAlwaysFromCatalog) {
  std::set<std::string> countries, ingredients;
  for (const auto& c : Catalog::Cuisines()) countries.insert(c.country);
  for (const auto& i : Catalog::Ingredients()) ingredients.insert(i.name);
  for (const Recipe& r : Corpus()) {
    EXPECT_TRUE(countries.count(r.country)) << r.country;
    for (const auto& line : r.ingredients) {
      EXPECT_TRUE(ingredients.count(line.name)) << line.name;
      // RecipeDB linkage: every generated ingredient is flavor-linked.
      EXPECT_TRUE(InFlavorCatalog(line.name)) << line.name;
    }
  }
}

TEST_P(GeneratorPropertyTest, NoDuplicateIngredientPerRecipe) {
  for (const Recipe& r : Corpus()) {
    std::set<std::string> names;
    for (const auto& line : r.ingredients) {
      EXPECT_TRUE(names.insert(line.name).second)
          << "duplicate " << line.name << " in recipe " << r.id;
    }
  }
}

TEST_P(GeneratorPropertyTest, InstructionsReferenceIngredients) {
  int mentioned = 0, total = 0;
  for (const Recipe& r : Corpus()) {
    std::string all;
    for (const auto& s : r.instructions) all += s + " ";
    for (const auto& name : r.IngredientNames()) {
      ++total;
      mentioned += all.find(name) != std::string::npos;
    }
  }
  EXPECT_GT(static_cast<double>(mentioned) / total, 0.7);
}

TEST_P(GeneratorPropertyTest, TaggedLengthWithinExpectedBand) {
  for (const Recipe& r : Corpus()) {
    EXPECT_GT(r.TaggedLength(), 300u) << r.id;
    EXPECT_LT(r.TaggedLength(), 2200u) << r.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorPropertyTest,
                         testing::Values(1u, 1234u, 987654321u),
                         [](const testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rt
