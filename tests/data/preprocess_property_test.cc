// Seed-swept invariants of the preprocessing pipeline.

#include <set>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/preprocess.h"

namespace rt {
namespace {

class PreprocessPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  std::vector<Recipe> Noisy(int n = 500) {
    GeneratorOptions opts;
    opts.num_recipes = n;
    opts.seed = GetParam();
    opts.incomplete_fraction = 0.05;
    opts.duplicate_fraction = 0.06;
    opts.overlong_fraction = 0.03;
    opts.short_fraction = 0.05;
    return RecipeDbGenerator(opts).Generate();
  }
};

TEST_P(PreprocessPropertyTest, OutputAlwaysCleanAndBounded) {
  PreprocessStats stats;
  auto clean = Preprocessor().Run(Noisy(), &stats);
  std::set<std::string> seen;
  for (const Recipe& r : clean) {
    EXPECT_TRUE(r.IsComplete());
    EXPECT_LE(r.TaggedLength(), 2000u);
    EXPECT_TRUE(seen.insert(r.ToTaggedString()).second);
  }
}

TEST_P(PreprocessPropertyTest, AccountingAlwaysBalances) {
  PreprocessStats stats;
  auto clean = Preprocessor().Run(Noisy(), &stats);
  EXPECT_EQ(stats.input_count - stats.removed_incomplete -
                stats.removed_duplicates - stats.merged_short -
                stats.removed_band,
            static_cast<int>(clean.size()));
}

TEST_P(PreprocessPropertyTest, SecondPassIsStable) {
  // Re-preprocessing an already-clean corpus must find nothing
  // incomplete or duplicated (the rules are idempotent on their targets).
  auto clean = Preprocessor().Run(Noisy(), nullptr);
  PreprocessStats second;
  Preprocessor().Run(clean, &second);
  EXPECT_EQ(second.removed_incomplete, 0);
  EXPECT_EQ(second.removed_duplicates, 0);
  EXPECT_EQ(second.clamped, 0);
}

TEST_P(PreprocessPropertyTest, SurvivorsKeepInputOrder) {
  auto corpus = Noisy();
  auto clean = Preprocessor().Run(corpus, nullptr);
  // Ids of unmerged survivors must appear in nondecreasing input order.
  long long prev = -1;
  int ordered = 0, total = 0;
  for (const Recipe& r : clean) {
    ++total;
    if (r.id >= prev) ++ordered;
    prev = r.id;
  }
  // Merged records can swallow later ids, so allow a small tolerance.
  EXPECT_GT(static_cast<double>(ordered) / total, 0.95);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreprocessPropertyTest,
                         testing::Values(7u, 77u, 777u),
                         [](const testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rt
