#include "data/catalog.h"

#include <set>

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(CatalogTest, IngredientNamesUnique) {
  std::set<std::string> names;
  for (const auto& ing : Catalog::Ingredients()) {
    EXPECT_TRUE(names.insert(ing.name).second)
        << "duplicate ingredient: " << ing.name;
  }
  EXPECT_GE(names.size(), 100u);
}

TEST(CatalogTest, EveryRolePopulated) {
  using R = IngredientRole;
  for (R role : {R::kProtein, R::kVegetable, R::kGrain, R::kDairy,
                 R::kSpice, R::kHerb, R::kFat, R::kLiquid, R::kSweet,
                 R::kFruit}) {
    EXPECT_FALSE(Catalog::ByRole(role).empty())
        << IngredientRoleName(role);
  }
}

TEST(CatalogTest, ByRoleReturnsOnlyThatRole) {
  for (const auto* ing : Catalog::ByRole(IngredientRole::kSpice)) {
    EXPECT_EQ(ing->role, IngredientRole::kSpice);
  }
}

TEST(CatalogTest, EveryIngredientHasAUnitSlot) {
  for (const auto& ing : Catalog::Ingredients()) {
    EXPECT_FALSE(ing.units.empty()) << ing.name;
  }
}

TEST(CatalogTest, CuisineHierarchyCounts) {
  // RecipeDB: 6 continents / 26 regions / 74 countries. The synthetic
  // catalog keeps the same 3-level hierarchy at reduced width.
  EXPECT_EQ(Catalog::NumContinents(), 6);
  EXPECT_GE(Catalog::NumRegions(), 12);
  EXPECT_GE(Catalog::NumCountries(), 25);
  EXPECT_GT(Catalog::NumCountries(), Catalog::NumRegions());
  EXPECT_GT(Catalog::NumRegions(), Catalog::NumContinents());
}

TEST(CatalogTest, ProcessesNonEmptyAndLowercase) {
  EXPECT_GE(Catalog::Processes().size(), 25u);
  for (const auto& p : Catalog::Processes()) {
    for (char c : p) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ') << p;
    }
  }
}

TEST(CatalogTest, RoleNamesAreDistinct) {
  using R = IngredientRole;
  std::set<std::string> names;
  for (R role : {R::kProtein, R::kVegetable, R::kGrain, R::kDairy,
                 R::kSpice, R::kHerb, R::kFat, R::kLiquid, R::kSweet,
                 R::kFruit}) {
    names.insert(IngredientRoleName(role));
  }
  EXPECT_EQ(names.size(), 10u);
}

}  // namespace
}  // namespace rt
