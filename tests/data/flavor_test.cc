#include "data/flavor.h"

#include <gtest/gtest.h>

#include "data/catalog.h"

namespace rt {
namespace {

TEST(FlavorCatalogTest, EveryGeneratorIngredientIsLinked) {
  // RecipeDB links every ingredient to flavor/nutrition data; the
  // synthetic catalogs must stay in sync.
  for (const auto& ing : Catalog::Ingredients()) {
    EXPECT_TRUE(InFlavorCatalog(ing.name)) << ing.name;
    EXPECT_FALSE(FlavorCompoundsFor(ing.name).empty() &&
                 ing.name != "water")
        << ing.name;
  }
}

TEST(FlavorCatalogTest, UnknownIngredientIsGracefulZero) {
  EXPECT_FALSE(InFlavorCatalog("unobtainium"));
  EXPECT_TRUE(FlavorCompoundsFor("unobtainium").empty());
  EXPECT_EQ(NutritionFor("unobtainium").calories_kcal, 0.0);
  EXPECT_EQ(PairingScore("unobtainium", "tomato"), 0.0);
}

TEST(FlavorCatalogTest, LookupIsCaseAndSpaceInsensitive) {
  EXPECT_TRUE(InFlavorCatalog("Tomato"));
  EXPECT_TRUE(InFlavorCatalog("  olive oil "));
}

TEST(PairingScoreTest, SharedCompoundsScoreHigher) {
  // tomato & basil share linalool; tomato & salt share nothing.
  EXPECT_GT(PairingScore("tomato", "basil"),
            PairingScore("tomato", "salt"));
  // Dairy pairs are classic compound-sharers (diacetyl).
  EXPECT_GT(PairingScore("butter", "cream"), 0.2);
}

TEST(PairingScoreTest, SymmetricAndSelfMaximal) {
  EXPECT_DOUBLE_EQ(PairingScore("onion", "garlic"),
                   PairingScore("garlic", "onion"));
  EXPECT_DOUBLE_EQ(PairingScore("basil", "basil"), 1.0);
}

TEST(MeanPairingTest, RequiresTwoKnownIngredients) {
  Recipe r;
  r.ingredients = {{"1", "cup", "tomato", ""}};
  EXPECT_EQ(MeanPairingScore(r), 0.0);
  r.ingredients.push_back({"1", "", "basil", ""});
  EXPECT_GT(MeanPairingScore(r), 0.0);
}

TEST(ApproximateGramsTest, UnitConversions) {
  EXPECT_DOUBLE_EQ(ApproximateGrams({"2", "cup", "rice", ""}), 480.0);
  EXPECT_DOUBLE_EQ(ApproximateGrams({"1/2", "cup", "milk", ""}), 120.0);
  EXPECT_DOUBLE_EQ(ApproximateGrams({"1 1/2", "tsp", "salt", ""}), 7.5);
  EXPECT_DOUBLE_EQ(ApproximateGrams({"1", "pound", "beef", ""}), 454.0);
  // Countable fallback: 2 onions ~ 100 g.
  EXPECT_DOUBLE_EQ(ApproximateGrams({"2", "", "onion", ""}), 100.0);
  // Missing quantity behaves as 1.
  EXPECT_DOUBLE_EQ(ApproximateGrams({"", "tbsp", "honey", ""}), 15.0);
}

TEST(RecipeNutritionTest, SumsScaledProfiles) {
  Recipe r;
  r.ingredients = {{"1", "cup", "milk", ""},     // 240 g * 61/100
                   {"1", "tbsp", "butter", ""}};  // 15 g * 717/100
  NutritionProfile n = RecipeNutrition(r);
  EXPECT_NEAR(n.calories_kcal, 2.4 * 61 + 0.15 * 717, 1e-6);
  EXPECT_GT(n.fat_g, 10.0);
  EXPECT_GT(n.protein_g, 5.0);
}

TEST(RecipeNutritionTest, EmptyRecipeIsZero) {
  Recipe r;
  NutritionProfile n = RecipeNutrition(r);
  EXPECT_EQ(n.calories_kcal, 0.0);
  EXPECT_EQ(n.protein_g, 0.0);
}

TEST(RecipeNutritionTest, DessertVsSaladMacros) {
  Recipe dessert;
  dessert.ingredients = {{"1", "cup", "sugar", ""},
                         {"1/2", "cup", "butter", ""},
                         {"2", "cup", "flour", ""}};
  Recipe salad;
  salad.ingredients = {{"2", "cup", "spinach", ""},
                       {"1", "cup", "cucumber", ""},
                       {"1", "tbsp", "olive oil", ""}};
  EXPECT_GT(RecipeNutrition(dessert).carbs_g,
            RecipeNutrition(salad).carbs_g * 5);
  EXPECT_GT(RecipeNutrition(dessert).calories_kcal,
            RecipeNutrition(salad).calories_kcal);
}

}  // namespace
}  // namespace rt
