// Tests for recipe-aligned training windows (the GPT-2 training layout).

#include <set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/generator.h"
#include "text/word_tokenizer.h"

namespace rt {
namespace {

std::vector<Recipe> SmallCorpus(int n = 12) {
  GeneratorOptions opts;
  opts.num_recipes = n;
  opts.seed = 77;
  opts.incomplete_fraction = 0.0;
  opts.duplicate_fraction = 0.0;
  opts.overlong_fraction = 0.0;
  opts.short_fraction = 0.0;
  return RecipeDbGenerator(opts).Generate();
}

WordTokenizer BuildTok(const std::vector<Recipe>& corpus) {
  std::vector<std::string> docs;
  for (const auto& r : corpus) docs.push_back(r.ToTaggedString());
  return WordTokenizer::Build(docs);
}

TEST(BuildRecipeWindowsTest, OneWindowPerRecipePaddedToLength) {
  auto corpus = SmallCorpus();
  auto tok = BuildTok(corpus);
  const int seq = 64;
  auto windows = BuildRecipeWindows(tok, corpus, seq, tok.pad_id());
  ASSERT_EQ(windows.size(), corpus.size());
  for (const auto& w : windows) {
    EXPECT_EQ(w.size(), static_cast<size_t>(seq + 1));
  }
}

TEST(BuildRecipeWindowsTest, WindowStartsAtRecipeStart) {
  auto corpus = SmallCorpus();
  auto tok = BuildTok(corpus);
  auto windows = BuildRecipeWindows(tok, corpus, 64, tok.pad_id());
  const int start_id = tok.vocab().GetId("<RECIPE_START>");
  for (const auto& w : windows) {
    EXPECT_EQ(w[0], start_id);
  }
}

TEST(BuildRecipeWindowsTest, LongRecipesTruncated) {
  auto corpus = SmallCorpus();
  auto tok = BuildTok(corpus);
  auto windows = BuildRecipeWindows(tok, corpus, 8, tok.pad_id());
  for (const auto& w : windows) {
    EXPECT_EQ(w.size(), 9u);
    // Truncated windows contain no padding.
    for (int id : w) EXPECT_NE(id, tok.pad_id());
  }
}

TEST(WindowBatchIteratorTest, PaddingExcludedViaIgnoreIndex) {
  std::vector<std::vector<int>> windows{{5, 6, 7}, {8, 9, 10, 11}};
  BatchIterator it(windows, /*batch_size=*/2, /*seq_len=*/5, 3,
                   /*pad_id=*/0);
  Batch b;
  ASSERT_TRUE(it.Next(&b));
  EXPECT_EQ(b.ignore_index, 0);
  EXPECT_EQ(b.batch_size, 2);
  // Every row: inputs beyond the window are pad; targets shifted by one.
  for (int i = 0; i < 2; ++i) {
    int first = b.inputs[i * 5];
    EXPECT_TRUE(first == 5 || first == 8);
    EXPECT_EQ(b.targets[i * 5], first + 1);
    EXPECT_EQ(b.inputs[i * 5 + 4], 0);   // padded
    EXPECT_EQ(b.targets[i * 5 + 4], 0);  // ignored
  }
}

TEST(WindowBatchIteratorTest, StreamModeHasNoIgnoreIndex) {
  std::vector<int> stream(50);
  for (size_t i = 0; i < stream.size(); ++i) stream[i] = static_cast<int>(i);
  BatchIterator it(&stream, 2, 9, 5);
  Batch b;
  ASSERT_TRUE(it.Next(&b));
  EXPECT_EQ(b.ignore_index, -1);
}

TEST(WindowBatchIteratorTest, EpochCoversEveryWindowOnce) {
  std::vector<std::vector<int>> windows;
  for (int i = 0; i < 10; ++i) {
    windows.push_back({100 + i, 200 + i, 300 + i});
  }
  BatchIterator it(windows, 3, 4, 7, 0);
  EXPECT_EQ(it.NumWindows(), 10);
  std::set<int> firsts;
  Batch b;
  while (it.Next(&b)) {
    for (int i = 0; i < b.batch_size; ++i) {
      firsts.insert(b.inputs[i * b.seq_len]);
    }
  }
  EXPECT_EQ(firsts.size(), 10u);
}

TEST(WindowBatchIteratorTest, OverlongWindowsTruncatedAtConstruction) {
  std::vector<std::vector<int>> windows{{1, 2, 3, 4, 5, 6, 7, 8, 9}};
  BatchIterator it(windows, 1, 3, 11, 0);  // window cap = 4 tokens
  Batch b;
  ASSERT_TRUE(it.Next(&b));
  EXPECT_EQ(b.inputs[2], 3);
  EXPECT_EQ(b.targets[2], 4);
}

}  // namespace
}  // namespace rt
