// Acceptance-level test for API v2 streaming over the shared-prefix KV
// cache: a real (tiny) trained pipeline served in batched mode behind
// the frontend proxy. A cold streamed request publishes the prompt
// prefix; an identical warm request must restore it (prefix_cache_hits
// moves, a prefill_cached span appears) while producing the exact same
// token text — the cache changes cost, never tokens.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ratatouille.h"
#include "util/obs.h"

namespace rt {
namespace {

PipelineOptions TinyOptions() {
  PipelineOptions options;
  options.corpus.num_recipes = 80;
  options.corpus.seed = 31;
  options.model = ModelKind::kWordLstm;
  options.trainer.epochs = 2;
  options.trainer.batch_size = 4;
  options.trainer.seq_len = 32;
  return options;
}

/// 16 ingredients -> a prompt prefix comfortably past 32 tokens.
std::string StreamBody() {
  std::string body = R"({"ingredients":[)";
  const std::vector<std::string> names = {
      "tomato", "onion",  "garlic", "basil",  "rice",   "beans",
      "pepper", "salt",   "butter", "flour",  "sugar",  "milk",
      "egg",    "cheese", "oil",    "water"};
  for (size_t i = 0; i < names.size(); ++i) {
    if (i) body += ",";
    body += "\"" + names[i] + "\"";
  }
  body += R"(],"max_tokens":24,"greedy":true,"seed":9,"stream":true})";
  return body;
}

/// Concatenates the `text` of every SSE token event in `body` and
/// returns {joined_text, finish_reason}.
std::pair<std::string, std::string> DigestStream(const std::string& body) {
  std::string text;
  std::string finish;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t end = body.find("\n\n", pos);
    if (end == std::string::npos) end = body.size();
    const std::string block = body.substr(pos, end - pos);
    pos = end + 2;
    const size_t data_at = block.find("data: ");
    if (data_at == std::string::npos) continue;
    auto doc = Json::Parse(block.substr(data_at + 6));
    if (!doc.ok()) continue;
    if (block.rfind("event: token", 0) == 0) {
      text += doc->Get("text").AsString();
    } else if (block.rfind("event: done", 0) == 0) {
      finish = doc->Get("finish_reason").AsString();
    }
  }
  return {text, finish};
}

TEST(StreamingPrefixCacheStackTest, WarmStreamHitsCacheWithSameTokens) {
  auto pipeline = Pipeline::Create(TinyOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Train().ok());
  Pipeline& p = **pipeline;

  BackendOptions options;
  options.max_batch = 4;
  serve::BatchSchedulerOptions sched_options;
  sched_options.max_batch = options.max_batch;
  ASSERT_TRUE(sched_options.enable_prefix_cache);  // the v2 default
  serve::BatchScheduler scheduler(p.model(), sched_options);
  InstallBatchMetrics(&scheduler, &options);
  BackendService backend(
      MakeBatchedPipelineSessionFactory(&p, &scheduler), options);
  ASSERT_TRUE(backend.Start(0).ok());
  FrontendService frontend(backend.port());
  ASSERT_TRUE(frontend.Start(0).ok());

  const auto metric = [&](const std::string& key) {
    auto resp = HttpGet(backend.port(), "/v1/metrics");
    if (!resp.ok()) return -1.0;
    auto doc = Json::Parse(resp->body);
    return doc.ok() ? doc->Get(key).AsNumber() : -1.0;
  };

  // Cold request through the full stack: browser -> frontend relay ->
  // backend SSE -> batch scheduler. Publishes the prompt prefix.
  auto cold = HttpPost(frontend.port(), "/v1/generate", StreamBody());
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(cold->status, 200);
  auto [cold_text, cold_finish] = DigestStream(cold->body);
  EXPECT_FALSE(cold_text.empty());
  EXPECT_FALSE(cold_finish.empty());
  EXPECT_GE(metric("prefix_cache_misses"), 1.0);
  const double hits_before = metric("prefix_cache_hits");

  obs::TraceRecorder::Instance().Clear();

  // Warm request: identical prompt, so the scheduler restores the
  // cached KV snapshot instead of re-prefilling token by token.
  auto warm = HttpPost(frontend.port(), "/v1/generate", StreamBody());
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->status, 200);
  auto [warm_text, warm_finish] = DigestStream(warm->body);
  EXPECT_EQ(warm_text, cold_text);
  EXPECT_EQ(warm_finish, cold_finish);
  EXPECT_GE(metric("prefix_cache_hits"), hits_before + 1.0);
  EXPECT_GE(metric("streams_completed"), 2.0);
  EXPECT_GT(metric("stream_tokens"), 0.0);

  // The warm trace shows restore work (prefill_cached) in place of the
  // per-token prefill grind, plus the streaming write spans.
  auto trace = HttpGet(backend.port(), "/v1/trace");
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace->body.find("prefill_cached"), std::string::npos);
  EXPECT_NE(trace->body.find("response_stream_write"), std::string::npos);

  frontend.Stop();
  backend.Stop();
}

}  // namespace
}  // namespace rt
