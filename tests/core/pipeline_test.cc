#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "text/special_tokens.h"

namespace rt {
namespace {

/// Small-but-real pipeline options that train in a couple of seconds.
PipelineOptions TinyOptions(ModelKind kind) {
  PipelineOptions options;
  options.corpus.num_recipes = 60;
  options.corpus.seed = 5;
  options.model = kind;
  options.bpe_vocab_budget = 260;
  options.trainer.epochs = 1;
  options.trainer.batch_size = 4;
  options.trainer.seq_len = 32;
  options.trainer.lr = 3e-3f;
  return options;
}

TEST(ModelKindTest, NamesMatchTable1Rows) {
  EXPECT_STREQ(ModelKindName(ModelKind::kCharLstm), "Char-level LSTM");
  EXPECT_STREQ(ModelKindName(ModelKind::kWordLstm), "Word-level LSTM");
  EXPECT_STREQ(ModelKindName(ModelKind::kDistilGpt2), "DistilGPT2");
  EXPECT_STREQ(ModelKindName(ModelKind::kGpt2Medium), "GPT-2 medium");
}

TEST(ModelKindTest, ParseRoundTrip) {
  EXPECT_EQ(*ParseModelKind("char-lstm"), ModelKind::kCharLstm);
  EXPECT_EQ(*ParseModelKind("gpt2-medium"), ModelKind::kGpt2Medium);
  EXPECT_EQ(*ParseModelKind("gpt-deep"), ModelKind::kGptDeep);
  EXPECT_FALSE(ParseModelKind("gpt5").ok());
}

TEST(CreateModelTest, AllKindsConstruct) {
  for (ModelKind kind :
       {ModelKind::kCharLstm, ModelKind::kWordLstm, ModelKind::kDistilGpt2,
        ModelKind::kGpt2Medium, ModelKind::kGptDeep}) {
    auto model = CreateModel(kind, 50);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->vocab_size(), 50);
    EXPECT_GT(model->NumParams(), 0u);
  }
}

TEST(PipelineTest, CreateRejectsBadOptions) {
  PipelineOptions bad = TinyOptions(ModelKind::kWordLstm);
  bad.val_frac = 0.6;
  bad.test_frac = 0.6;
  EXPECT_FALSE(Pipeline::Create(bad).ok());
  PipelineOptions none = TinyOptions(ModelKind::kWordLstm);
  none.corpus.num_recipes = 0;
  EXPECT_FALSE(Pipeline::Create(none).ok());
}

TEST(PipelineTest, CreateBuildsCorpusTokenizerModel) {
  auto pipeline = Pipeline::Create(TinyOptions(ModelKind::kWordLstm));
  ASSERT_TRUE(pipeline.ok());
  Pipeline& p = **pipeline;
  EXPECT_GT(p.splits().train.size(), 0u);
  EXPECT_GT(p.splits().test.size(), 0u);
  EXPECT_GT(p.tokenizer().vocab_size(), 20);
  EXPECT_GE(p.stop_token(), 0);
  EXPECT_EQ(p.tokenizer().vocab().GetToken(p.stop_token()), kRecipeEnd);
  EXPECT_GT(p.train_stream().size(), 100u);
  EXPECT_EQ(p.model()->name(), "word-lstm");
}

TEST(PipelineTest, TokenizerMatchesModelKind) {
  auto char_p = Pipeline::Create(TinyOptions(ModelKind::kCharLstm));
  ASSERT_TRUE(char_p.ok());
  EXPECT_EQ((*char_p)->tokenizer().name(), "char");
  auto gpt_p = Pipeline::Create(TinyOptions(ModelKind::kDistilGpt2));
  ASSERT_TRUE(gpt_p.ok());
  EXPECT_EQ((*gpt_p)->tokenizer().name(), "bpe");
}

TEST(PipelineTest, TrainReducesValidationLoss) {
  auto pipeline = Pipeline::Create(TinyOptions(ModelKind::kWordLstm));
  ASSERT_TRUE(pipeline.ok());
  Pipeline& p = **pipeline;
  const float before = p.ValidationLoss();
  auto result = p.Train();
  ASSERT_TRUE(result.ok());
  const float after = p.ValidationLoss();
  EXPECT_LT(after, before);
}

TEST(PipelineTest, GenerateFromIngredientsReturnsTaggedText) {
  auto pipeline = Pipeline::Create(TinyOptions(ModelKind::kWordLstm));
  ASSERT_TRUE(pipeline.ok());
  Pipeline& p = **pipeline;
  ASSERT_TRUE(p.Train().ok());
  GenerationOptions opts;
  opts.max_new_tokens = 60;
  opts.seed = 3;
  auto gen = p.GenerateFromIngredients({"tomato", "onion"}, opts);
  ASSERT_TRUE(gen.ok());
  EXPECT_NE(gen->raw_tagged.find("tomato"), std::string::npos);
  EXPECT_NE(gen->raw_tagged.find(kIngrStart), std::string::npos);
  EXPECT_GT(gen->tokens_generated, 0);
  EXPECT_GT(gen->seconds, 0.0);
}

TEST(PipelineTest, GenerateRejectsEmptyIngredients) {
  auto pipeline = Pipeline::Create(TinyOptions(ModelKind::kWordLstm));
  ASSERT_TRUE(pipeline.ok());
  EXPECT_FALSE((*pipeline)->GenerateFromIngredients({}, {}).ok());
}

TEST(PipelineTest, EvaluateOnTestSetProducesReport) {
  auto pipeline = Pipeline::Create(TinyOptions(ModelKind::kWordLstm));
  ASSERT_TRUE(pipeline.ok());
  Pipeline& p = **pipeline;
  ASSERT_TRUE(p.Train().ok());
  GenerationOptions opts;
  opts.max_new_tokens = 80;
  opts.sampling.greedy = true;
  auto report = p.EvaluateOnTestSet(3, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_samples, 3);
  EXPECT_GE(report->corpus_bleu, 0.0);
  EXPECT_LE(report->corpus_bleu, 1.0);
  EXPECT_GT(report->mean_generation_seconds, 0.0);
  EXPECT_GE(report->novelty_rate, 0.0);
  EXPECT_LE(report->novelty_rate, 1.0);
}

TEST(PipelineTest, DeterministicAcrossRuns) {
  auto a = Pipeline::Create(TinyOptions(ModelKind::kWordLstm));
  auto b = Pipeline::Create(TinyOptions(ModelKind::kWordLstm));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->train_stream(), (*b)->train_stream());
  ASSERT_TRUE((*a)->Train().ok());
  ASSERT_TRUE((*b)->Train().ok());
  GenerationOptions opts;
  opts.max_new_tokens = 30;
  opts.seed = 9;
  auto ga = (*a)->GenerateFromIngredients({"rice"}, opts);
  auto gb = (*b)->GenerateFromIngredients({"rice"}, opts);
  ASSERT_TRUE(ga.ok() && gb.ok());
  EXPECT_EQ(ga->raw_tagged, gb->raw_tagged);
}

TEST(PipelineTest, FractionTokenAblationChangesStream) {
  PipelineOptions with = TinyOptions(ModelKind::kWordLstm);
  PipelineOptions without = TinyOptions(ModelKind::kWordLstm);
  without.disable_fraction_tokens = true;
  auto a = Pipeline::Create(with);
  auto b = Pipeline::Create(without);
  ASSERT_TRUE(a.ok() && b.ok());
  // With fractions disabled, "1/2" tokenizes as "1 / 2" => longer stream.
  EXPECT_GT((*b)->train_stream().size(), (*a)->train_stream().size());
}

TEST(PipelineTest, SkipPreprocessingKeepsNoise) {
  PipelineOptions noisy = TinyOptions(ModelKind::kWordLstm);
  noisy.corpus.num_recipes = 200;
  noisy.corpus.incomplete_fraction = 0.1;
  PipelineOptions skipped = noisy;
  skipped.skip_preprocessing = true;
  auto a = Pipeline::Create(noisy);
  auto b = Pipeline::Create(skipped);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT((*a)->preprocess_stats().output_count,
            (*b)->preprocess_stats().output_count);
}

}  // namespace
}  // namespace rt
