// Beam search through the full pipeline (GPT-2 + BPE + tagged parsing).

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "text/special_tokens.h"

namespace rt {
namespace {

PipelineOptions TinyGptOptions() {
  PipelineOptions options;
  options.corpus.num_recipes = 60;
  options.corpus.seed = 8;
  options.model = ModelKind::kDistilGpt2;
  options.bpe_vocab_budget = 300;
  options.trainer.epochs = 2;
  options.trainer.batch_size = 4;
  options.trainer.seq_len = 96;
  return options;
}

TEST(BeamPipelineTest, BeamGenerationProducesTaggedOutput) {
  auto pipeline = Pipeline::Create(TinyGptOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Train().ok());
  GenerationOptions gen;
  gen.beam_width = 3;
  gen.max_new_tokens = 60;
  auto out = (*pipeline)->GenerateFromIngredients({"tomato", "rice"}, gen);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->tokens_generated, 0);
  EXPECT_NE(out->raw_tagged.find(kIngrStart), std::string::npos);
}

TEST(BeamPipelineTest, BeamIsDeterministicWithoutSeed) {
  auto pipeline = Pipeline::Create(TinyGptOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Train().ok());
  GenerationOptions gen;
  gen.beam_width = 2;
  gen.max_new_tokens = 40;
  gen.seed = 1;
  auto a = (*pipeline)->GenerateFromIngredients({"chicken"}, gen);
  gen.seed = 999;  // beam search ignores the sampling seed entirely
  auto b = (*pipeline)->GenerateFromIngredients({"chicken"}, gen);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->raw_tagged, b->raw_tagged);
}

TEST(BeamPipelineTest, EvaluateOnTestSetWithBeam) {
  auto pipeline = Pipeline::Create(TinyGptOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Train().ok());
  GenerationOptions gen;
  gen.beam_width = 2;
  gen.max_new_tokens = 60;
  auto report = (*pipeline)->EvaluateOnTestSet(2, gen);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_samples, 2);
  EXPECT_GE(report->corpus_bleu, 0.0);
}

}  // namespace
}  // namespace rt
