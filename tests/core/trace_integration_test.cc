// End-to-end trace test: one POST /v1/generate against the full web
// stack in batched serving mode (max_batch=4) must produce a /v1/trace
// export whose spans share the request's trace id, nest inside the root
// request span by time containment, and appear in pipeline order.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ratatouille.h"
#include "util/obs.h"

namespace rt {
namespace {

PipelineOptions SmallOptions() {
  PipelineOptions options;
  options.corpus.num_recipes = 80;
  options.corpus.seed = 31;
  options.model = ModelKind::kWordLstm;
  options.trainer.epochs = 2;
  options.trainer.batch_size = 4;
  options.trainer.seq_len = 32;
  return options;
}

struct Span {
  std::string name;
  double ts = 0.0;   // micros
  double dur = 0.0;  // micros
  double end() const { return ts + dur; }
  double batch = 0.0;  // "batch" arg, 0 when absent
};

TEST(TraceIntegrationTest, GenerateProducesNestedSpanTreeOnOneTraceId) {
  auto pipeline = Pipeline::Create(SmallOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Train().ok());
  Pipeline& p = **pipeline;

  BackendOptions options;
  options.max_batch = 4;
  serve::BatchSchedulerOptions sched_options;
  sched_options.max_batch = options.max_batch;
  serve::BatchScheduler scheduler(p.model(), sched_options);
  InstallBatchMetrics(&scheduler, &options);
  BackendService backend(
      MakeBatchedPipelineSessionFactory(&p, &scheduler), options);
  ASSERT_TRUE(backend.Start(0).ok());  // options.tracing enables the ring

  auto& recorder = obs::TraceRecorder::Instance();
  recorder.Clear();  // only this test's requests from here on

  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["tomato","onion"],)"
                       R"("max_tokens":40,"seed":4})");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);

  auto trace = HttpGet(backend.port(), "/v1/trace");
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->status, 200);
  auto doc = Json::Parse(trace->body);
  ASSERT_TRUE(doc.ok());

  // Group complete events by trace id.
  std::map<double, std::vector<Span>> by_trace;
  for (const Json& ev : doc->Get("traceEvents").AsArray()) {
    if (ev.Get("ph").AsString() != "X") continue;
    Span span;
    span.name = ev.Get("name").AsString();
    span.ts = ev.Get("ts").AsNumber();
    span.dur = ev.Get("dur").AsNumber();
    const Json& batch = ev.Get("args").Get("batch");
    if (batch.is_number()) span.batch = batch.AsNumber();
    by_trace[ev.Get("args").Get("trace_id").AsNumber()].push_back(span);
  }

  // The generate is the only finished exchange with a root request span
  // (the in-flight /v1/trace GET has not recorded its own root yet).
  const std::vector<Span>* request_spans = nullptr;
  double request_tid = 0.0;
  for (const auto& [tid, spans] : by_trace) {
    for (const Span& span : spans) {
      if (span.name == "request") {
        ASSERT_EQ(request_spans, nullptr)
            << "two completed request spans after Clear()";
        request_spans = &spans;
        request_tid = tid;
      }
    }
  }
  ASSERT_NE(request_spans, nullptr);
  EXPECT_GT(request_tid, 0.0);

  // >= 5 distinct span types on the one trace id — with the word-lstm
  // decode loop behind the batch scheduler, all seven stages appear.
  std::set<std::string> names;
  for (const Span& span : *request_spans) names.insert(span.name);
  EXPECT_GE(names.size(), 5u);
  for (const char* expected :
       {"request", "queue_wait", "session_acquire", "prefill",
        "batch_step", "sample", "response_write"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;
  }

  // Parenting: the root request span contains every other span of its
  // trace (0.5us slack for ns -> us rounding).
  const Span* root = nullptr;
  for (const Span& span : *request_spans) {
    if (span.name == "request") root = &span;
  }
  ASSERT_NE(root, nullptr);
  constexpr double kSlackUs = 0.5;
  double queue_wait_end = 0.0;
  double prefill_start = 0.0;
  double first_sample_start = 0.0;
  for (const Span& span : *request_spans) {
    if (span.name == "request") continue;
    EXPECT_GE(span.ts, root->ts - kSlackUs) << span.name;
    EXPECT_LE(span.end(), root->end() + kSlackUs) << span.name;
    if (span.name == "queue_wait") queue_wait_end = span.end();
    if (span.name == "prefill") prefill_start = span.ts;
    if (span.name == "sample" &&
        (first_sample_start == 0.0 || span.ts < first_sample_start)) {
      first_sample_start = span.ts;
    }
    if (span.name == "batch_step") {
      // Batched steps are annotated with the coalesced row count.
      EXPECT_GE(span.batch, 1.0);
      EXPECT_LE(span.batch, 4.0);
    }
  }

  // Ordering along the pipeline: the queue wait finishes before prompt
  // prefill begins, and prefill begins before the first sampled token.
  EXPECT_GT(queue_wait_end, 0.0);
  EXPECT_GT(prefill_start, 0.0);
  EXPECT_GT(first_sample_start, 0.0);
  EXPECT_LE(queue_wait_end, prefill_start + kSlackUs);
  EXPECT_LT(prefill_start, first_sample_start + kSlackUs);

  backend.Stop();
  scheduler.Stop();
  recorder.SetEnabled(false);
  recorder.Clear();
}

}  // namespace
}  // namespace rt
