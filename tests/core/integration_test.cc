// Cross-module integration tests: pipeline + checkpointing + serving,
// exercising the same paths the examples and benches use.

#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "core/ratatouille.h"
#include "nn/checkpoint.h"

namespace rt {
namespace {

PipelineOptions SmallOptions() {
  PipelineOptions options;
  options.corpus.num_recipes = 80;
  options.corpus.seed = 31;
  options.model = ModelKind::kWordLstm;
  options.trainer.epochs = 2;
  options.trainer.batch_size = 4;
  options.trainer.seq_len = 32;
  return options;
}

TEST(IntegrationTest, TrainedWeightsSurviveCheckpointRoundTrip) {
  auto a = Pipeline::Create(SmallOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->Train().ok());
  const std::string path = testing::TempDir() + "/integration.ckpt";
  ASSERT_TRUE(SaveCheckpoint((*a)->model()->module(), {}, path).ok());

  auto b = Pipeline::Create(SmallOptions());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(LoadCheckpoint((*b)->model()->module(), path).ok());

  // Identical weights => identical greedy generations.
  GenerationOptions gen;
  gen.max_new_tokens = 40;
  gen.sampling.greedy = true;
  auto ga = (*a)->GenerateFromIngredients({"tomato", "rice"}, gen);
  auto gb = (*b)->GenerateFromIngredients({"tomato", "rice"}, gen);
  ASSERT_TRUE(ga.ok() && gb.ok());
  EXPECT_EQ(ga->raw_tagged, gb->raw_tagged);
  std::remove(path.c_str());
}

TEST(IntegrationTest, PipelineBehindWebStack) {
  auto pipeline = Pipeline::Create(SmallOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Train().ok());
  Pipeline& p = **pipeline;

  std::vector<std::unique_ptr<LanguageModel>> session_models;
  BackendService backend(MakePipelineSessionFactory(&p, &session_models),
                         BackendOptions{});
  ASSERT_TRUE(backend.Start(0).ok());
  FrontendService frontend(backend.port());
  ASSERT_TRUE(frontend.Start(0).ok());

  auto resp = HttpPost(frontend.port(), "/v1/generate",
                       R"({"ingredients":["tomato","onion"],)"
                       R"("max_tokens":60,"seed":4})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->Get("recipe").Get("instructions").is_array());
  EXPECT_TRUE(doc->Get("request_id").is_string());

  // Same seed => same recipe via the HTTP path (determinism end to end).
  // The server-assigned request_id differs, so compare the recipes.
  auto resp2 = HttpPost(frontend.port(), "/v1/generate",
                        R"({"ingredients":["tomato","onion"],)"
                        R"("max_tokens":60,"seed":4})");
  ASSERT_TRUE(resp2.ok());
  auto doc2 = Json::Parse(resp2->body);
  ASSERT_TRUE(doc2.ok());
  EXPECT_TRUE(doc->Get("recipe") == doc2->Get("recipe"));

  frontend.Stop();
  backend.Stop();
}

TEST(IntegrationTest, BatchedSchedulerBehindWebStackMatchesSequential) {
  auto pipeline = Pipeline::Create(SmallOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Train().ok());
  Pipeline& p = **pipeline;

  // Sessions share one batch scheduler over the pipeline's model
  // (--max-batch serving mode) instead of per-session clones.
  BackendOptions options;
  options.max_batch = 2;
  serve::BatchSchedulerOptions sched_options;
  sched_options.max_batch = options.max_batch;
  serve::BatchScheduler scheduler(p.model(), sched_options);
  InstallBatchMetrics(&scheduler, &options);
  BackendService backend(
      MakeBatchedPipelineSessionFactory(&p, &scheduler), options);
  ASSERT_TRUE(backend.Start(0).ok());

  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["tomato","onion"],)"
                       R"("max_tokens":60,"seed":4})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());

  // Batched serving is bitwise-faithful to the sequential pipeline path.
  GenerationOptions gen;
  gen.max_new_tokens = 60;
  gen.seed = 4;
  auto direct = p.GenerateFromIngredients({"tomato", "onion"}, gen);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(doc->Get("recipe") == RecipeToJson(direct->recipe));

  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto mdoc = Json::Parse(metrics->body);
  ASSERT_TRUE(mdoc.ok());
  EXPECT_EQ(mdoc->Get("max_batch").AsNumber(), 2.0);
  EXPECT_GE(mdoc->Get("batch_completed").AsNumber(), 1.0);
  EXPECT_GE(mdoc->Get("batch_steps").AsNumber(), 1.0);

  backend.Stop();
  scheduler.Stop();
}

TEST(IntegrationTest, GeneratedRecipesRoundTripThroughParser) {
  // Model output (tagged text) -> Recipe -> tagged text must be stable
  // for well-formed generations: parse(serialize(parse(x))) == parse(x).
  auto pipeline = Pipeline::Create(SmallOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Train().ok());
  GenerationOptions gen;
  gen.max_new_tokens = 80;
  gen.seed = 12;
  auto out = (*pipeline)->GenerateFromIngredients({"chicken"}, gen);
  ASSERT_TRUE(out.ok());
  auto first = ParseTaggedRecipe(out->raw_tagged);
  ASSERT_TRUE(first.ok());
  auto second = ParseTaggedRecipe(first->ToTaggedString());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->instructions, second->instructions);
  EXPECT_EQ(first->title, second->title);
}

TEST(IntegrationTest, AllModelKindsSurviveMiniPipeline) {
  for (ModelKind kind :
       {ModelKind::kCharLstm, ModelKind::kWordLstm,
        ModelKind::kDistilGpt2}) {
    PipelineOptions options = SmallOptions();
    options.model = kind;
    options.trainer.epochs = 1;
    auto pipeline = Pipeline::Create(options);
    ASSERT_TRUE(pipeline.ok()) << ModelKindName(kind);
    ASSERT_TRUE((*pipeline)->Train().ok()) << ModelKindName(kind);
    GenerationOptions gen;
    gen.max_new_tokens = kind == ModelKind::kCharLstm ? 200 : 50;
    auto out = (*pipeline)->GenerateFromIngredients({"rice"}, gen);
    ASSERT_TRUE(out.ok()) << ModelKindName(kind);
    EXPECT_GT(out->tokens_generated, 0) << ModelKindName(kind);
  }
}

}  // namespace
}  // namespace rt
