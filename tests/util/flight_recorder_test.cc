// Tests for the crash flight recorder (src/util/flight_recorder.h):
// the postmortem round-trip through a real signal death in a forked
// child, heartbeat dumps, gauge registration, snapshot publication,
// and the parse-side error handling the supervisor relies on.

#include "util/flight_recorder.h"

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "util/json.h"
#include "util/obs.h"

namespace rt {
namespace obs {
namespace {

std::string TempPostmortemPath(const char* tag) {
  return "/tmp/rt_flight_recorder_test_" + std::to_string(::getpid()) +
         "_" + tag + ".json";
}

TEST(FlightRecorderTest, ParseErrorsOnMissingAndEmptyFiles) {
  EXPECT_FALSE(ParsePostmortemFile("/tmp/rt_no_such_postmortem.json").ok());
  const std::string path = TempPostmortemPath("empty");
  { std::ofstream(path).close(); }
  EXPECT_FALSE(ParsePostmortemFile(path).ok());
  ::unlink(path.c_str());
}

TEST(FlightRecorderTest, GaugeRegistrationIsIdempotent) {
  auto& recorder = FlightRecorder::Instance();
  const int a = recorder.RegisterGauge("fr_test_gauge_a");
  const int b = recorder.RegisterGauge("fr_test_gauge_b");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(recorder.RegisterGauge("fr_test_gauge_a"), a);
  recorder.SetGauge(a, 42);
  EXPECT_EQ(recorder.gauge(a), 42);
  recorder.SetGauge(-1, 99);  // out of range: ignored
  recorder.SetGauge(FlightRecorder::kMaxGauges, 99);
  EXPECT_EQ(recorder.gauge(-1), 0);
}

TEST(FlightRecorderTest, InstallWritesImmediateHeartbeat) {
  // The file must be collectible from the first instant: a replica
  // SIGKILLed before its first sampler tick still leaves a dump.
  const std::string path = TempPostmortemPath("install");
  auto& recorder = FlightRecorder::Instance();
  ASSERT_TRUE(recorder.Install(path).ok());
  EXPECT_TRUE(recorder.installed());
  EXPECT_EQ(recorder.path(), path);
  auto parsed = ParsePostmortemFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& dump = parsed.value();
  EXPECT_EQ(dump.Get("postmortem_version").AsNumber(), 1.0);
  EXPECT_EQ(dump.Get("signal").AsNumber(), 0.0);  // heartbeat, no crash
  EXPECT_EQ(dump.Get("pid").AsNumber(),
            static_cast<double>(::getpid()));
  EXPECT_TRUE(dump.Get("gauges").is_object());
  EXPECT_TRUE(dump.Get("spans").is_array());
  ::unlink(path.c_str());
}

TEST(FlightRecorderTest, HeartbeatCarriesGaugesSnapshotAndSpans) {
  const std::string path = TempPostmortemPath("heartbeat");
  auto& recorder = FlightRecorder::Instance();
  ASSERT_TRUE(recorder.Install(path).ok());
  const int gauge = recorder.RegisterGauge("fr_test_active");
  ASSERT_GE(gauge, 0);
  recorder.SetGauge(gauge, 7);
  recorder.StoreSnapshot("{\"requests_total\":12}");

  auto& traces = TraceRecorder::Instance();
  traces.Clear();
  traces.SetEnabled(true);
  const uint64_t trace_id = traces.NextTraceId();
  RecordSpanSince(Stage::kPrefill, trace_id, Now());
  const long long before = recorder.dumps_written();
  recorder.WriteHeartbeat();
  traces.SetEnabled(false);
  EXPECT_EQ(recorder.dumps_written(), before + 1);

  auto parsed = ParsePostmortemFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& dump = parsed.value();
  EXPECT_EQ(dump.Get("gauges").Get("fr_test_active").AsNumber(), 7.0);
  EXPECT_EQ(dump.Get("metrics").Get("requests_total").AsNumber(), 12.0);
  bool saw_prefill = false;
  for (const Json& span : dump.Get("spans").AsArray()) {
    if (span.Get("name").AsString() == "prefill") saw_prefill = true;
  }
  EXPECT_TRUE(saw_prefill);
  ::unlink(path.c_str());
}

TEST(FlightRecorderTest, SmallerLaterDumpTruncatesStaleTail) {
  // A dump shorter than its predecessor must ftruncate the leftovers,
  // or the supervisor would read "…}<stale garbage>" and fail to parse.
  const std::string path = TempPostmortemPath("shrink");
  auto& recorder = FlightRecorder::Instance();
  ASSERT_TRUE(recorder.Install(path).ok());
  std::string fat = "{\"padding\":\"";
  fat.append(8192, 'x');
  fat += "\"}";
  recorder.StoreSnapshot(fat);
  recorder.WriteHeartbeat();
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  const off_t fat_size = st.st_size;
  recorder.StoreSnapshot("{\"thin\":1}");
  recorder.WriteHeartbeat();
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_LT(st.st_size, fat_size);
  auto parsed = ParsePostmortemFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Get("metrics").Get("thin").AsNumber(), 1.0);
  ::unlink(path.c_str());
}

TEST(FlightRecorderTest, OversizedSnapshotIsDroppedNotTorn) {
  const std::string path = TempPostmortemPath("oversize");
  auto& recorder = FlightRecorder::Instance();
  ASSERT_TRUE(recorder.Install(path).ok());
  recorder.StoreSnapshot("{\"kept\":1}");
  std::string huge = "{\"too_big\":\"";
  huge.append(FlightRecorder::kMaxSnapshotBytes, 'y');
  huge += "\"}";
  recorder.StoreSnapshot(huge);  // over the cap: must not publish
  recorder.WriteHeartbeat();
  auto parsed = ParsePostmortemFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Get("metrics").Get("kept").AsNumber(), 1.0);
  ::unlink(path.c_str());
}

TEST(FlightRecorderTest, CrashedChildLeavesParseablePostmortem) {
  // The end-to-end contract: a process that dies on SIGSEGV leaves a
  // black box behind, written by the handler with only signal-safe
  // primitives, then re-raises so the wait status stays honest.
  const std::string path = TempPostmortemPath("crash");
  ::unlink(path.c_str());
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto& recorder = FlightRecorder::Instance();
    if (!recorder.Install(path).ok()) ::_exit(2);
    const int gauge = recorder.RegisterGauge("fr_child_active");
    recorder.SetGauge(gauge, 3);
    recorder.StoreSnapshot("{\"child_requests\":5}");
    ::raise(SIGSEGV);
    ::_exit(3);  // unreachable: the handler re-raises with SIG_DFL
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGSEGV);

  auto parsed = ParsePostmortemFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& dump = parsed.value();
  EXPECT_EQ(dump.Get("postmortem_version").AsNumber(), 1.0);
  EXPECT_EQ(dump.Get("signal").AsNumber(),
            static_cast<double>(SIGSEGV));
  EXPECT_EQ(dump.Get("pid").AsNumber(), static_cast<double>(child));
  EXPECT_EQ(dump.Get("gauges").Get("fr_child_active").AsNumber(), 3.0);
  EXPECT_EQ(dump.Get("metrics").Get("child_requests").AsNumber(), 5.0);
  ::unlink(path.c_str());
}

TEST(FlightRecorderTest, AbortingChildReportsSigabrt) {
  const std::string path = TempPostmortemPath("abort");
  ::unlink(path.c_str());
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    if (!FlightRecorder::Instance().Install(path).ok()) ::_exit(2);
    ::abort();
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGABRT);
  auto parsed = ParsePostmortemFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Get("signal").AsNumber(),
            static_cast<double>(SIGABRT));
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace rt
