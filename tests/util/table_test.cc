#include "util/table.h"

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"Model", "BLEU Score"});
  t.AddRow({"Char-level LSTM", "0.347"});
  t.AddRow({"GPT-2 medium", "0.806"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| Model           |"), std::string::npos);
  EXPECT_NE(out.find("| Char-level LSTM |"), std::string::npos);
  EXPECT_NE(out.find("0.806"), std::string::npos);
  // Top rule, header rule, bottom rule.
  size_t rules = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] == '+' && (i == 0 || out[i - 1] == '\n')) ++rules;
  }
  EXPECT_EQ(rules, 3u);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable t({"a", "b"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"has\"quote", "multi\nline"});
  std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 4), "a,b\n");
}

TEST(TextTableTest, EmptyTableStillRendersHeader) {
  TextTable t({"only"});
  std::string out = t.Render();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0u);
}

}  // namespace
}  // namespace rt
