// Deadline / CancelToken semantics, the deterministic fault-injection
// registry, and the CRC-32 used by checkpoint integrity checks.

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32.h"
#include "util/deadline.h"
#include "util/fault_injection.h"

namespace rt {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 1'000'000'000LL);
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).expired());
  EXPECT_LE(Deadline::AfterMillis(0).remaining_millis(), 0);
}

TEST(DeadlineTest, FutureDeadlineExpiresOnSchedule) {
  Deadline d = Deadline::AfterMillis(30);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(45));
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, EarlierOfPicksTheStricterDeadline) {
  const Deadline infinite;
  const Deadline near = Deadline::AfterMillis(10);
  const Deadline far = Deadline::AfterMillis(100000);
  EXPECT_EQ(Deadline::EarlierOf(infinite, near).when(), near.when());
  EXPECT_EQ(Deadline::EarlierOf(near, infinite).when(), near.when());
  EXPECT_EQ(Deadline::EarlierOf(near, far).when(), near.when());
  EXPECT_TRUE(Deadline::EarlierOf(infinite, infinite).is_infinite());
}

TEST(DeadlineTest, AtAnchorsToAnAbsoluteInstant) {
  const auto now = Deadline::Clock::now();
  Deadline d = Deadline::At(now - std::chrono::milliseconds(1));
  EXPECT_TRUE(d.expired());
  EXPECT_FALSE(Deadline::At(now + std::chrono::hours(1)).expired());
}

TEST(CancelTokenTest, FiresStickyUntilReset) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  token.RequestCancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

class FaultInjectorTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(FaultInjectorTest, UnarmedPointNeverFires) {
  auto& faults = FaultInjector::Instance();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(faults.Hit("test.unarmed").has_value());
  }
  EXPECT_EQ(faults.hits("test.unarmed"), 0);
  EXPECT_EQ(faults.fires("test.unarmed"), 0);
}

TEST_F(FaultInjectorTest, SkipCountWindowIsExact) {
  auto& faults = FaultInjector::Instance();
  FaultInjector::FaultSpec spec;
  spec.skip = 2;
  spec.count = 3;
  spec.amount = 7;
  faults.Arm("test.window", spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (auto f = faults.Hit("test.window")) {
      ++fired;
      EXPECT_EQ(f->amount, 7);
      // Fires exactly on hits 3..5 (after skipping 2).
      EXPECT_GE(i, 2);
      EXPECT_LT(i, 5);
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(faults.hits("test.window"), 10);
  EXPECT_EQ(faults.fires("test.window"), 3);
}

TEST_F(FaultInjectorTest, ProbabilityDrawsAreSeedDeterministic) {
  auto& faults = FaultInjector::Instance();
  FaultInjector::FaultSpec spec;
  spec.probability = 0.5;
  spec.seed = 42;
  const auto run = [&] {
    faults.Arm("test.prob", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(faults.Hit("test.prob").has_value());
    }
    return fired;
  };
  const auto first = run();
  const auto second = run();  // re-arming resets the per-point Rng
  EXPECT_EQ(first, second);
  // With p=0.5 over 64 draws, both all-fire and no-fire are ~2^-64.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FaultInjectorTest, DisarmStopsFiringAndResetClearsAll) {
  auto& faults = FaultInjector::Instance();
  faults.Arm("test.a", {});
  faults.Arm("test.b", {});
  EXPECT_TRUE(faults.Hit("test.a").has_value());
  faults.Disarm("test.a");
  EXPECT_FALSE(faults.Hit("test.a").has_value());
  EXPECT_TRUE(faults.Hit("test.b").has_value());
  faults.Reset();
  EXPECT_FALSE(faults.Hit("test.b").has_value());
}

TEST(Crc32Test, MatchesKnownVectors) {
  // The standard IEEE 802.3 check value.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string("")), 0x00000000u);
}

TEST(Crc32Test, StreamingUpdateMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = 0;
  for (char c : data) crc = Crc32Update(crc, &c, 1);
  EXPECT_EQ(crc, Crc32(data));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i);
  }
  const uint32_t clean = Crc32(data);
  data[100] = static_cast<char>(data[100] ^ 0x10);
  EXPECT_NE(Crc32(data), clean);
}

}  // namespace
}  // namespace rt
