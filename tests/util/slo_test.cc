// Unit tests for the rt::obs v2 "over time" layer (src/util/slo.h):
// burn-rate math, the multi-window SLO engine over synthetic second
// rings, fleet aggregation from per-replica metrics JSON, histogram
// family merging, the metrics-history ring, the slow-trace archive's
// retention policy, and the Prometheus HELP/TYPE headers.

#include "util/slo.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/obs.h"

namespace rt {
namespace obs {
namespace {

constexpr long long kMs = 1'000'000;  // ns per millisecond

// ---------------------------------------------------------------------------
// Burn-rate math

TEST(SloBurnRateTest, ExactBudgetConsumptionIsOne) {
  // 1% allowed, 1% observed -> burning exactly at budget.
  EXPECT_DOUBLE_EQ(SloBurnRate(100, 1, 0.01), 1.0);
}

TEST(SloBurnRateTest, ScalesLinearlyWithBadRatio) {
  EXPECT_DOUBLE_EQ(SloBurnRate(100, 2, 0.01), 2.0);
  EXPECT_DOUBLE_EQ(SloBurnRate(200, 1, 0.01), 0.5);
}

TEST(SloBurnRateTest, EmptyWindowAndZeroAllowanceAreZero) {
  EXPECT_DOUBLE_EQ(SloBurnRate(0, 0, 0.01), 0.0);
  EXPECT_DOUBLE_EQ(SloBurnRate(10, 5, 0.0), 0.0);
}

TEST(SloClassNameTest, StableNames) {
  EXPECT_STREQ(SloClassName(0), "interactive");
  EXPECT_STREQ(SloClassName(1), "batch");
}

// ---------------------------------------------------------------------------
// SLO engine over pinned epochs

SloObjective TightObjective() {
  SloObjective o;
  o.traffic_class = 0;
  o.latency_target_ms = 100.0;
  o.latency_quantile = 0.99;  // 1% of requests may be slower
  o.max_error_ratio = 0.01;
  o.fast_burn_threshold = 14.0;
  o.min_samples = 12;
  return o;
}

TEST(SloEngineTest, AllFastRequestsBurnNothing) {
  SloEngine engine;
  engine.Configure({TightObjective()});
  for (int i = 0; i < 100; ++i) {
    engine.RecordRequestAt(0, /*epoch_s=*/1000, 10 * kMs, /*error=*/false);
  }
  const auto status = engine.EvaluateAt(0, 1000);
  EXPECT_EQ(status.windows[0].total, 100);
  EXPECT_EQ(status.windows[0].slow, 0);
  EXPECT_DOUBLE_EQ(status.latency_burn[0], 0.0);
  EXPECT_DOUBLE_EQ(status.error_burn[0], 0.0);
  EXPECT_FALSE(status.fast_burn);
}

TEST(SloEngineTest, SlowRequestsRaiseLatencyBurn) {
  SloEngine engine;
  engine.Configure({TightObjective()});
  // 100 requests, 2 above the 100ms target: 2% slow vs 1% allowed.
  for (int i = 0; i < 98; ++i) {
    engine.RecordRequestAt(0, 1000, 10 * kMs, false);
  }
  engine.RecordRequestAt(0, 1000, 500 * kMs, false);
  engine.RecordRequestAt(0, 1000, 500 * kMs, false);
  const auto status = engine.EvaluateAt(0, 1000);
  EXPECT_EQ(status.windows[0].slow, 2);
  // 1 - 0.99 is not exact in binary; compare with a tolerance.
  EXPECT_NEAR(status.latency_burn[0], 2.0, 1e-9);
}

TEST(SloEngineTest, FastBurnTripsAboveThresholdWithEnoughSamples) {
  SloEngine engine;
  engine.Configure({TightObjective()});
  // 20 requests, 10 slow: burn = (10/20)/0.01 = 50 >= 14.
  for (int i = 0; i < 10; ++i) engine.RecordRequestAt(0, 50, 10 * kMs, false);
  for (int i = 0; i < 10; ++i) {
    engine.RecordRequestAt(0, 50, 500 * kMs, false);
  }
  EXPECT_TRUE(engine.EvaluateAt(0, 50).fast_burn);
}

TEST(SloEngineTest, FastBurnNeedsMinSamples) {
  SloEngine engine;
  engine.Configure({TightObjective()});
  // 100% failure but only 4 samples (< min_samples 12): not a page.
  for (int i = 0; i < 4; ++i) engine.RecordRequestAt(0, 50, 10 * kMs, true);
  EXPECT_FALSE(engine.EvaluateAt(0, 50).fast_burn);
}

TEST(SloEngineTest, WindowsSeparateByAge) {
  SloEngine engine;
  engine.Configure({TightObjective()});
  // One error 70s ago: outside the 1m window, inside 10m and 1h.
  engine.RecordRequestAt(0, /*epoch_s=*/100, 10 * kMs, /*error=*/true);
  const auto status = engine.EvaluateAt(0, /*now_epoch_s=*/170);
  EXPECT_EQ(status.windows[0].total, 0);  // 1m
  EXPECT_EQ(status.windows[1].total, 1);  // 10m
  EXPECT_EQ(status.windows[1].errors, 1);
  EXPECT_EQ(status.windows[2].total, 1);  // 1h
}

TEST(SloEngineTest, RingLapResetsStaleBuckets) {
  SloEngine engine;
  engine.Configure({TightObjective()});
  engine.RecordRequestAt(0, /*epoch_s=*/10, 10 * kMs, true);
  // Same ring slot one full lap (3600s) later must not double-count.
  engine.RecordRequestAt(0, /*epoch_s=*/10 + 3600, 10 * kMs, false);
  const auto status = engine.EvaluateAt(0, 10 + 3600);
  EXPECT_EQ(status.windows[2].total, 1);
  EXPECT_EQ(status.windows[2].errors, 0);
}

TEST(SloEngineTest, P99EstimateIsConservativeUpperBound) {
  SloEngine engine;
  engine.Configure({TightObjective()});
  for (int i = 0; i < 200; ++i) {
    engine.RecordRequestAt(0, 1000, 20 * kMs, false);
  }
  const double p99 = engine.P99EstimateMs(0);
  EXPECT_GE(p99, 20.0);   // never below the observed latency
  EXPECT_LE(p99, 100.0);  // but a nearby bucket bound, not overflow
}

TEST(SloEngineTest, FillMetricsExportsRawCountsAndBurns) {
  SloEngine engine;
  engine.Configure({TightObjective()});
  for (int i = 0; i < 20; ++i) {
    engine.RecordRequest(0, 10 * kMs, /*error=*/i < 2);
  }
  Json out{Json::Object{}};
  engine.FillMetrics(&out);
  EXPECT_EQ(out.Get("slo_interactive_1m_total").AsNumber(), 20.0);
  EXPECT_EQ(out.Get("slo_interactive_1m_errors").AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(out.Get("slo_interactive_1m_error_burn").AsNumber(),
                   10.0);
  EXPECT_TRUE(out.Get("slo_interactive_latency_target_ms").is_number());
  EXPECT_TRUE(out.Get("slo_batch_1m_total").is_number());
  EXPECT_TRUE(out.Get("slo_fast_burn").is_number());
}

// ---------------------------------------------------------------------------
// StageHistogram quantile upper bound (the p99 promotion threshold)

TEST(StageHistogramQuantileTest, UpperBoundCoversObservations) {
  StageHistogram histogram;
  EXPECT_DOUBLE_EQ(histogram.QuantileUpperBoundSeconds(0.99), 0.0);
  for (int i = 0; i < 99; ++i) histogram.Record(1 * kMs);  // 1ms
  histogram.Record(400 * kMs);  // one 400ms outlier
  const double p99 = histogram.QuantileUpperBoundSeconds(0.99);
  EXPECT_GE(p99, 0.001);
  const double p999 = histogram.QuantileUpperBoundSeconds(0.999);
  EXPECT_GE(p999, 0.4);  // must cover the outlier
}

TEST(StageHistogramQuantileTest, OverflowBucketReportsMaxObserved) {
  StageHistogram histogram;
  histogram.Record(60ll * 1000 * kMs);  // 60s, beyond the last bound
  EXPECT_DOUBLE_EQ(histogram.QuantileUpperBoundSeconds(0.5), 60.0);
}

// ---------------------------------------------------------------------------
// Fleet aggregation

Json ReplicaMetricsWith(int total, int slow, int errors) {
  SloEngine engine;
  SloObjective o = TightObjective();
  engine.Configure({o});
  for (int i = 0; i < total; ++i) {
    const bool error = i < errors;
    const long long latency = i < slow ? 500 * kMs : 10 * kMs;
    engine.RecordRequest(0, latency, error);
  }
  Json out{Json::Object{}};
  engine.FillMetrics(&out);
  return out;
}

TEST(AggregateSloMetricsTest, SumsCountsAndRecomputesBurns) {
  const std::vector<Json> replicas = {ReplicaMetricsWith(100, 1, 0),
                                      ReplicaMetricsWith(100, 3, 2)};
  Json out{Json::Object{}};
  AggregateSloMetrics(replicas, &out);
  EXPECT_EQ(out.Get("fleet_slo_replicas_reporting").AsNumber(), 2.0);
  EXPECT_EQ(out.Get("fleet_slo_interactive_1m_total").AsNumber(), 200.0);
  EXPECT_EQ(out.Get("fleet_slo_interactive_1m_slow").AsNumber(), 4.0);
  // (4/200)/0.01 = 2.0 — recomputed from the summed counts, not
  // averaged from the replica burns.
  EXPECT_NEAR(out.Get("fleet_slo_interactive_1m_latency_burn").AsNumber(),
              2.0, 1e-9);
  EXPECT_FALSE(FleetFastBurn(out));
}

TEST(AggregateSloMetricsTest, FleetFastBurnFromCombinedCounts) {
  // Each replica alone is under min_samples; together they page.
  const std::vector<Json> replicas = {ReplicaMetricsWith(8, 8, 8),
                                      ReplicaMetricsWith(8, 8, 8)};
  Json out{Json::Object{}};
  AggregateSloMetrics(replicas, &out);
  EXPECT_EQ(out.Get("fleet_slo_interactive_1m_total").AsNumber(), 16.0);
  EXPECT_TRUE(FleetFastBurn(out));
}

TEST(AggregateSloMetricsTest, EmptyFleetReportsZeroReplicas) {
  Json out{Json::Object{}};
  AggregateSloMetrics({}, &out);
  EXPECT_EQ(out.Get("fleet_slo_replicas_reporting").AsNumber(), 0.0);
  EXPECT_FALSE(FleetFastBurn(out));
}

// ---------------------------------------------------------------------------
// Histogram family merging

TEST(MergeHistogramFamiliesTest, SumsCountsMaxesMaxRecomputesMean) {
  StageHistogram a, b;
  a.Record(1 * kMs);
  a.Record(2 * kMs);
  b.Record(10 * kMs);
  Json dst{Json::Object{}};
  Json src{Json::Object{}};
  a.FillMetrics("stage_prefill_", &dst);
  b.FillMetrics("stage_prefill_", &src);
  MergeHistogramFamilies(&dst, src, "stage_");
  long long total = 0;
  for (const Json& c :
       dst.Get("stage_prefill_latency_bucket_count").AsArray()) {
    total += static_cast<long long>(c.AsNumber());
  }
  EXPECT_EQ(total, 3);
  EXPECT_NEAR(dst.Get("stage_prefill_seconds_total").AsNumber(), 0.013,
              1e-9);
  EXPECT_NEAR(dst.Get("stage_prefill_seconds_max").AsNumber(), 0.010,
              1e-9);
  EXPECT_NEAR(dst.Get("stage_prefill_seconds_mean").AsNumber(),
              0.013 / 3.0, 1e-9);
}

TEST(MergeHistogramFamiliesTest, CopiesUnknownFamiliesAndHonorsPrefix) {
  StageHistogram h;
  h.Record(5 * kMs);
  Json dst{Json::Object{}};
  Json src{Json::Object{}};
  h.FillMetrics("stage_sample_", &src);
  h.FillMetrics("generate_", &src);  // outside the stage_ prefix
  MergeHistogramFamilies(&dst, src, "stage_");
  EXPECT_TRUE(dst.Get("stage_sample_latency_bucket_count").is_array());
  EXPECT_TRUE(dst.Get("generate_latency_bucket_count").is_null());
}

// ---------------------------------------------------------------------------
// Metrics history ring

TEST(MetricsHistoryTest, RollupReportsFirstLastMinMaxDelta) {
  MetricsHistory history;
  MetricsHistory::Options options;
  options.capacity = 16;
  double counter = 0.0;
  history.Configure(options, [&counter] {
    Json out{Json::Object{}};
    out.Set("requests_total", counter);
    counter += 5.0;
    return out;
  });
  for (int i = 0; i < 4; ++i) history.SampleNow();
  EXPECT_EQ(history.samples(), 4);
  const Json rollup = history.Rollup(/*window_s=*/0.0, "requests_total");
  const Json& series = rollup.Get("series").Get("requests_total");
  EXPECT_DOUBLE_EQ(series.Get("first").AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(series.Get("last").AsNumber(), 15.0);
  EXPECT_DOUBLE_EQ(series.Get("min").AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(series.Get("max").AsNumber(), 15.0);
  EXPECT_DOUBLE_EQ(series.Get("delta").AsNumber(), 15.0);
  EXPECT_EQ(rollup.Get("points").AsArray().size(), 4u);
}

TEST(MetricsHistoryTest, RingEvictsOldestBeyondCapacity) {
  MetricsHistory history;
  MetricsHistory::Options options;
  options.capacity = 4;
  double counter = 0.0;
  history.Configure(options, [&counter] {
    Json out{Json::Object{}};
    out.Set("n", counter);
    counter += 1.0;
    return out;
  });
  for (int i = 0; i < 10; ++i) history.SampleNow();
  EXPECT_EQ(history.samples(), 4);
  const Json rollup = history.Rollup(0.0, "");
  // Oldest retained sample is #6 (counter 6..9 kept).
  EXPECT_DOUBLE_EQ(
      rollup.Get("series").Get("n").Get("first").AsNumber(), 6.0);
  EXPECT_DOUBLE_EQ(
      rollup.Get("series").Get("n").Get("last").AsNumber(), 9.0);
}

TEST(MetricsHistoryTest, SchemaFrozenAtFirstSampleSurvivesDrift) {
  MetricsHistory history;
  MetricsHistory::Options options;
  options.capacity = 8;
  int tick = 0;
  history.Configure(options, [&tick] {
    Json out{Json::Object{}};
    out.Set("stable", static_cast<double>(tick));
    if (tick > 0) out.Set("late_key", 123.0);  // appears after freeze
    if (tick != 1) out.Set("flaky", 7.0);      // missing on tick 1
    ++tick;
    return out;
  });
  for (int i = 0; i < 3; ++i) history.SampleNow();
  const Json rollup = history.Rollup(0.0, "");
  // Keys are frozen at the first sample: late_key never enters, the
  // stable key tracks every tick, the flaky key's gap becomes NaN
  // (dropped from min/max which stay finite).
  EXPECT_TRUE(rollup.Get("series").Get("late_key").is_null());
  EXPECT_DOUBLE_EQ(
      rollup.Get("series").Get("stable").Get("last").AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(
      rollup.Get("series").Get("flaky").Get("max").AsNumber(), 7.0);
}

TEST(MetricsHistoryTest, NestedKeysFlattenWithUnderscores) {
  MetricsHistory history;
  MetricsHistory::Options options;
  options.capacity = 2;
  history.Configure(options, [] {
    Json out{Json::Object{}};
    Json inner{Json::Object{}};
    inner.Set("healthy", 3.0);
    out.Set("replicas", std::move(inner));
    return out;
  });
  history.SampleNow();
  const Json rollup = history.Rollup(0.0, "");
  EXPECT_DOUBLE_EQ(
      rollup.Get("series").Get("replicas_healthy").Get("last").AsNumber(),
      3.0);
}

TEST(MetricsHistoryTest, RollupForQueryParsesWindowAndKey) {
  MetricsHistory history;
  MetricsHistory::Options options;
  options.capacity = 4;
  history.Configure(options, [] {
    Json out{Json::Object{}};
    out.Set("a", 1.0);
    out.Set("b", 2.0);
    return out;
  });
  history.SampleNow();
  const Json rollup = history.RollupForQuery("window=600&key=b");
  EXPECT_DOUBLE_EQ(rollup.Get("window_s").AsNumber(), 600.0);
  EXPECT_TRUE(rollup.Get("series").Get("a").is_null());
  EXPECT_TRUE(rollup.Get("series").Get("b").is_object());
  EXPECT_TRUE(rollup.Get("points").is_array());
}

// ---------------------------------------------------------------------------
// Slow-trace archive retention policy

class SlowTraceArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SlowTraceArchive::Instance().SetCapacity(8);
    SlowTraceArchive::Instance().Clear();
  }
  void TearDown() override {
    SlowTraceArchive::Instance().SetCapacity(
        SlowTraceArchive::kDefaultCapacity);
    SlowTraceArchive::Instance().Clear();
  }
};

TEST_F(SlowTraceArchiveTest, PromotedTracesAppearInExport) {
  auto& archive = SlowTraceArchive::Instance();
  archive.Promote(0x1234, "req-1", PromoteReason::kDeadlineExceeded, 0,
                  504, 150 * kMs);
  EXPECT_EQ(archive.size(), 1);
  const Json out = archive.ExportChromeJson();
  const auto& traces = out.Get("slow_traces").AsArray();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].Get("request_id").AsString(), "req-1");
  EXPECT_EQ(traces[0].Get("reason").AsString(), "deadline_exceeded");
  EXPECT_EQ(traces[0].Get("status").AsNumber(), 504.0);
  EXPECT_NEAR(traces[0].Get("duration_ms").AsNumber(), 150.0, 1e-6);
}

TEST_F(SlowTraceArchiveTest, BoundedEvictionOldestFirst) {
  auto& archive = SlowTraceArchive::Instance();
  for (int i = 0; i < 12; ++i) {
    archive.Promote(static_cast<uint64_t>(i + 1),
                    "req-" + std::to_string(i), PromoteReason::kError5xx,
                    0, 500, 10 * kMs);
  }
  EXPECT_EQ(archive.size(), 8);
  EXPECT_EQ(archive.promoted_total(), 12);
  EXPECT_EQ(archive.evicted_total(), 4);
  const Json out = archive.ExportChromeJson();
  const auto& traces = out.Get("slow_traces").AsArray();
  EXPECT_EQ(traces.front().Get("request_id").AsString(), "req-4");
}

TEST_F(SlowTraceArchiveTest, PromotionCopiesSpansFromLiveRing) {
  auto& recorder = TraceRecorder::Instance();
  recorder.Clear();
  recorder.SetEnabled(true);
  const uint64_t trace_id = recorder.NextTraceId();
  const auto start = Now();
  RecordSpanSince(Stage::kPrefill, trace_id, start);
  RecordSpanSince(Stage::kBatchStep, trace_id, start, "batch", 2);
  auto& archive = SlowTraceArchive::Instance();
  archive.Promote(trace_id, "req-spans", PromoteReason::kSlow, 0, 200,
                  80 * kMs);
  recorder.SetEnabled(false);
  const Json out = archive.ExportChromeJson();
  const auto& events = out.Get("traceEvents").AsArray();
  ASSERT_GE(events.size(), 2u);
  bool saw_batch_step = false;
  for (const Json& event : events) {
    if (event.Get("name").AsString() == "batch_step") {
      saw_batch_step = true;
      EXPECT_EQ(event.Get("cat").AsString(), "rt_slow");
    }
  }
  EXPECT_TRUE(saw_batch_step);
  const auto& traces = out.Get("slow_traces").AsArray();
  ASSERT_EQ(traces.size(), 1u);
  // Per-stage budget attribution: both stages appear with a fraction
  // of the total duration.
  EXPECT_TRUE(traces[0].Get("stages_ms").Get("batch_step").is_number());
  EXPECT_TRUE(
      traces[0].Get("budget_fraction").Get("batch_step").is_number());
}

// ---------------------------------------------------------------------------
// Request-outcome hook policy

class RequestOutcomeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SloEngine::Instance().Configure({TightObjective()});
    SlowTraceArchive::Instance().Clear();
  }
  void TearDown() override {
    SloEngine::Instance().Configure({});
    SloEngine::Instance().Reset();
    SlowTraceArchive::Instance().Clear();
  }
};

TEST_F(RequestOutcomeTest, UnannotatedSuccessDoesNotFeedSlo) {
  // A /v1/metrics scrape (no annotation) must not burn budget.
  OnRequestComplete(0, "scrape", 200, 1 * kMs);
  EXPECT_EQ(SloEngine::Instance().Evaluate(0).windows[0].total, 0);
}

TEST_F(RequestOutcomeTest, AnnotatedRequestFeedsSloAndErrorPromotes) {
  AnnotateRequestClass(0);
  OnRequestComplete(0x42, "ok-req", 200, 1 * kMs);
  EXPECT_EQ(SloEngine::Instance().Evaluate(0).windows[0].total, 1);
  EXPECT_EQ(SlowTraceArchive::Instance().size(), 0);  // fast + ok

  AnnotateRequestClass(0);
  OnRequestComplete(0x43, "err-req", 500, 1 * kMs);
  const auto status = SloEngine::Instance().Evaluate(0);
  EXPECT_EQ(status.windows[0].total, 2);
  EXPECT_EQ(status.windows[0].errors, 1);
  ASSERT_EQ(SlowTraceArchive::Instance().size(), 1);
  const Json out = SlowTraceArchive::Instance().ExportChromeJson();
  const auto& traces = out.Get("slow_traces").AsArray();
  EXPECT_EQ(traces[0].Get("reason").AsString(), "error_5xx");
}

TEST_F(RequestOutcomeTest, ExplicitReasonWinsOverStatus) {
  AnnotateRequestClass(0);
  AnnotateRequestReason(PromoteReason::kShed);
  OnRequestComplete(0x44, "shed-req", 504, 1 * kMs);
  const Json out = SlowTraceArchive::Instance().ExportChromeJson();
  const auto& traces = out.Get("slow_traces").AsArray();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].Get("reason").AsString(), "shed");
  // Sheds and 5xx both count as SLO errors.
  EXPECT_EQ(SloEngine::Instance().Evaluate(0).windows[0].errors, 1);
}

TEST_F(RequestOutcomeTest, AnnotationsClearAfterCompletion) {
  AnnotateRequestClass(0);
  AnnotateRequestReason(PromoteReason::kPreempted);
  OnRequestComplete(0x45, "first", 200, 1 * kMs);
  // Next completion on this thread carries no stale annotation.
  OnRequestComplete(0x46, "second", 200, 1 * kMs);
  EXPECT_EQ(SloEngine::Instance().Evaluate(0).windows[0].total, 1);
  EXPECT_EQ(SlowTraceArchive::Instance().size(), 1);
}

TEST_F(RequestOutcomeTest, ShedHookCountsInteractiveError) {
  OnRequestShed(5 * kMs);
  const auto status = SloEngine::Instance().Evaluate(0);
  EXPECT_EQ(status.windows[0].total, 1);
  EXPECT_EQ(status.windows[0].errors, 1);
}

// ---------------------------------------------------------------------------
// Prometheus HELP/TYPE headers

TEST(PrometheusHeadersTest, EveryFamilyGetsHelpAndType) {
  Json metrics{Json::Object{}};
  metrics.Set("requests_total", 41.0);
  metrics.Set("build_type", "Release");
  StageHistogram histogram;
  histogram.Record(3 * kMs);
  histogram.FillMetrics("stage_prefill_", &metrics);
  const std::string text = RenderPrometheus(metrics);
  EXPECT_NE(text.find("# HELP rt_requests_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rt_requests_total gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP rt_build_type"), std::string::npos);
  EXPECT_NE(text.find("# HELP rt_stage_prefill_latency_seconds"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rt_stage_prefill_latency_seconds histogram"),
            std::string::npos);
  // Every # TYPE line is preceded by a # HELP line for the same family.
  size_t pos = 0;
  int type_lines = 0;
  while ((pos = text.find("# TYPE ", pos)) != std::string::npos) {
    ++type_lines;
    const size_t name_start = pos + 7;
    const size_t name_end = text.find(' ', name_start);
    const std::string name = text.substr(name_start,
                                         name_end - name_start);
    EXPECT_NE(text.find("# HELP " + name + " "), std::string::npos)
        << "missing HELP for " << name;
    pos = name_end;
  }
  EXPECT_GE(type_lines, 3);
}

}  // namespace
}  // namespace obs
}  // namespace rt
