#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo = hit_lo || v == -3;
    hit_hi = hit_hi || v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(23);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, WeightedChoiceFollowsWeights) {
  Rng rng(29);
  std::vector<double> w{0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.WeightedChoice(w)]++;
  EXPECT_EQ(counts[0], 0);  // zero weight never chosen
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // Child should not replay the parent's stream.
  Rng b(31);
  b.Fork();
  uint64_t child_first = child.NextU64();
  uint64_t parent_next = a.NextU64();
  EXPECT_NE(child_first, parent_next);
}

TEST(RngTest, BoolProbabilityExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

}  // namespace
}  // namespace rt
