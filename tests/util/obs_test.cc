// Unit tests for the observability core (src/util/obs.h): the span
// ring's seqlock publication and Chrome export shape, the lock-free
// stage histograms, the kernel profiler aggregates, the Prometheus
// renderer, and the build-info surface.

#include "util/obs.h"

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rt {
namespace obs {
namespace {

/// Every test runs against the process-wide singletons, so each one
/// starts from a clean slate and leaves recording disabled.
class ObsTest : public testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Instance().SetEnabled(false);
    TraceRecorder::Instance().Clear();
    KernelProfiler::Instance().SetEnabled(false);
    KernelProfiler::Instance().Reset();
    ResetStageMetrics();
  }
  void TearDown() override { SetUp(); }
};

TEST_F(ObsTest, StageNamesAreStable) {
  EXPECT_STREQ(StageName(Stage::kRequest), "request");
  EXPECT_STREQ(StageName(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(StageName(Stage::kSessionAcquire), "session_acquire");
  EXPECT_STREQ(StageName(Stage::kPrefill), "prefill");
  EXPECT_STREQ(StageName(Stage::kBatchStep), "batch_step");
  EXPECT_STREQ(StageName(Stage::kSample), "sample");
  EXPECT_STREQ(StageName(Stage::kResponseWrite), "response_write");
}

TEST_F(ObsTest, TraceIdsAreUniqueAndNonZero) {
  auto& recorder = TraceRecorder::Instance();
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = recorder.NextTraceId();
    EXPECT_GT(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

TEST_F(ObsTest, DisabledRecorderDropsSpans) {
  auto& recorder = TraceRecorder::Instance();
  recorder.Record("x", 1, 10, 20);
  EXPECT_EQ(recorder.recorded(), 0);
  const Json out = recorder.ExportChromeJson();
  // Only metadata events (process_name) — no "X" spans.
  for (const Json& ev : out.Get("traceEvents").AsArray()) {
    EXPECT_NE(ev.Get("ph").AsString(), "X");
  }
}

TEST_F(ObsTest, ExportEmitsChromeCompleteEvents) {
  auto& recorder = TraceRecorder::Instance();
  recorder.SetEnabled(true);
  recorder.Record("prefill", 7, 1000, 500, "prompt_tokens", 3);
  recorder.Record("sample", 7, 1600, 100);
  const Json out = recorder.ExportChromeJson();
  EXPECT_EQ(out.Get("displayTimeUnit").AsString(), "ms");
  EXPECT_EQ(out.Get("spans_recorded").AsNumber(), 2.0);
  EXPECT_EQ(out.Get("spans_dropped").AsNumber(), 0.0);

  std::vector<Json> spans;
  bool saw_thread_name = false;
  for (const Json& ev : out.Get("traceEvents").AsArray()) {
    if (ev.Get("ph").AsString() == "X") spans.push_back(ev);
    if (ev.Get("ph").AsString() == "M" &&
        ev.Get("name").AsString() == "thread_name") {
      saw_thread_name = true;
      EXPECT_EQ(ev.Get("args").Get("name").AsString(), "trace 7");
    }
  }
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time; timestamps/durations are microseconds.
  EXPECT_EQ(spans[0].Get("name").AsString(), "prefill");
  EXPECT_NEAR(spans[0].Get("ts").AsNumber(), 1.0, 1e-9);
  EXPECT_NEAR(spans[0].Get("dur").AsNumber(), 0.5, 1e-9);
  EXPECT_EQ(spans[0].Get("args").Get("trace_id").AsNumber(), 7.0);
  EXPECT_EQ(spans[0].Get("args").Get("prompt_tokens").AsNumber(), 3.0);
  EXPECT_EQ(spans[1].Get("name").AsString(), "sample");
  EXPECT_TRUE(saw_thread_name);
}

TEST_F(ObsTest, RingWrapCountsDroppedSpans) {
  auto& recorder = TraceRecorder::Instance();
  recorder.SetEnabled(true);
  const int extra = 10;
  for (int i = 0; i < TraceRecorder::kCapacity + extra; ++i) {
    recorder.Record("s", 1, i, 1);
  }
  EXPECT_EQ(recorder.recorded(), TraceRecorder::kCapacity + extra);
  EXPECT_EQ(recorder.dropped(), extra);
}

TEST_F(ObsTest, ConcurrentRecordAndExportStayConsistent) {
  auto& recorder = TraceRecorder::Instance();
  recorder.SetEnabled(true);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < 2000; ++i) {
        recorder.Record("batch_step", static_cast<uint64_t>(t + 1),
                        i * 10, 5, "batch", 2);
      }
    });
  }
  // Export concurrently with the writers: every validated span must be
  // fully-formed (name/args never torn).
  for (int i = 0; i < 20; ++i) {
    const Json out = recorder.ExportChromeJson();
    for (const Json& ev : out.Get("traceEvents").AsArray()) {
      if (ev.Get("ph").AsString() != "X") continue;
      EXPECT_EQ(ev.Get("name").AsString(), "batch_step");
      EXPECT_EQ(ev.Get("args").Get("batch").AsNumber(), 2.0);
      const double tid = ev.Get("tid").AsNumber();
      EXPECT_GE(tid, 1.0);
      EXPECT_LE(tid, 4.0);
    }
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(recorder.recorded(), 4 * 2000);
}

TEST_F(ObsTest, StageHistogramBucketsAndSummary) {
  StageHistogram h;
  h.Record(1500);             // 1.5us -> le=2e-6 bucket
  h.Record(1'000'000);        // 1ms
  h.Record(50'000'000'000);   // 50s -> overflow bucket
  EXPECT_EQ(h.count(), 3);

  Json out{Json::Object{}};
  h.FillMetrics("x_", &out);
  const auto& bounds = out.Get("x_latency_bucket_le").AsArray();
  const auto& counts = out.Get("x_latency_bucket_count").AsArray();
  ASSERT_EQ(bounds.size(), static_cast<size_t>(
                               StageHistogram::kNumBounds + 1));
  ASSERT_EQ(counts.size(), bounds.size());
  EXPECT_EQ(bounds.back().AsString(), "inf");
  double total = 0.0;
  for (const Json& c : counts) total += c.AsNumber();
  EXPECT_EQ(total, 3.0);
  EXPECT_EQ(counts.back().AsNumber(), 1.0);  // the 50s outlier
  EXPECT_NEAR(out.Get("x_seconds_total").AsNumber(), 50.0010015, 1e-6);
  EXPECT_NEAR(out.Get("x_seconds_max").AsNumber(), 50.0, 1e-9);
  // Each recorded value lands in the first bucket whose bound >= it.
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    if (counts[i].AsNumber() > 0.0) {
      EXPECT_GE(bounds[i].AsNumber(), 1.5e-6);
      break;
    }
  }
}

TEST_F(ObsTest, RecordSpanFeedsHistogramEvenWhenTracingDisabled) {
  const TimePoint start = Now();
  RecordSpanSince(Stage::kSample, 0, start);
  EXPECT_EQ(HistogramFor(Stage::kSample).count(), 1);
  EXPECT_EQ(TraceRecorder::Instance().recorded(), 0);
}

TEST_F(ObsTest, FillStageMetricsEmitsEveryStageAndTokenGauges) {
  CountSampledTokens(5);
  Json out{Json::Object{}};
  FillStageMetrics(&out);
  for (const char* stage :
       {"request", "queue_wait", "session_acquire", "prefill",
        "batch_step", "sample", "response_write"}) {
    const std::string prefix = std::string("stage_") + stage + "_";
    EXPECT_TRUE(out.Get(prefix + "seconds_total").is_number()) << stage;
    EXPECT_TRUE(out.Get(prefix + "latency_bucket_le").is_array()) << stage;
  }
  EXPECT_EQ(out.Get("stage_tokens_sampled").AsNumber(), 5.0);
  EXPECT_TRUE(out.Get("stage_tokens_per_sec").is_number());
}

TEST_F(ObsTest, KernelProfilerAggregatesPerToken) {
  auto& profiler = KernelProfiler::Instance();
  profiler.SetEnabled(true);
  profiler.RecordOp(KernelProfiler::Op::kGemmPacked, 1'000'000, 500'000);
  profiler.RecordOp(KernelProfiler::Op::kGemmPacked, 1'000'000, 500'000);
  profiler.RecordOp(KernelProfiler::Op::kParallelFor, 0, 100'000);
  profiler.CountTokens(2);
  const Json out = profiler.ToJson();
  EXPECT_TRUE(out.Get("enabled").AsBool());
  EXPECT_EQ(out.Get("tokens").AsNumber(), 2.0);
  const Json& packed = out.Get("ops").Get("gemm_packed");
  EXPECT_EQ(packed.Get("calls").AsNumber(), 2.0);
  EXPECT_EQ(packed.Get("flops").AsNumber(), 2'000'000.0);
  EXPECT_NEAR(packed.Get("seconds").AsNumber(), 1e-3, 1e-12);
  // Per-token aggregates cover GEMM ops only (not parallel_for).
  const Json& per_token = out.Get("per_token");
  EXPECT_EQ(per_token.Get("gemm_calls").AsNumber(), 1.0);
  EXPECT_EQ(per_token.Get("mflops").AsNumber(), 1.0);
}

TEST_F(ObsTest, PrometheusRendererCoversEveryJsonShape) {
  Json metrics{Json::Object{}};
  metrics.Set("requests_total", 42.0);
  metrics.Set("breaker_state", std::string("closed"));
  Json nested{Json::Object{}};
  Json inner{Json::Object{}};
  inner.Set("rejected", 3.0);
  nested.Set("word-lstm", std::move(inner));
  metrics.Set("breakers", std::move(nested));
  StageHistogram h;
  h.Record(1'000'000);  // 1ms
  h.Record(3'000'000);  // 3ms
  h.FillMetrics("gen_", &metrics);

  const std::string text = RenderPrometheus(metrics);
  EXPECT_NE(text.find("rt_requests_total 42\n"), std::string::npos);
  // Strings render as info-style gauges with a value label.
  EXPECT_NE(text.find("rt_breaker_state{value=\"closed\"} 1"),
            std::string::npos);
  // Nested objects flatten with '_' separators ('-' sanitized).
  EXPECT_NE(text.find("rt_breakers_word_lstm_rejected 3"),
            std::string::npos);
  // Histogram family: TYPE line, cumulative buckets, +Inf, sum, count.
  EXPECT_NE(text.find("# TYPE rt_gen_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("rt_gen_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rt_gen_latency_seconds_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("rt_gen_latency_seconds_sum"), std::string::npos);
  // The raw bucket arrays must not leak as their own metrics.
  EXPECT_EQ(text.find("latency_bucket_le"), std::string::npos);

  // Buckets are cumulative: each le line's value >= the previous one.
  double prev = -1.0;
  size_t pos = 0;
  while ((pos = text.find("rt_gen_latency_seconds_bucket{le=",
                          pos)) != std::string::npos) {
    const size_t brace = text.find("} ", pos);
    ASSERT_NE(brace, std::string::npos);
    const double v = std::stod(text.substr(brace + 2));
    EXPECT_GE(v, prev);
    prev = v;
    pos = brace;
  }
  EXPECT_EQ(prev, 2.0);  // +Inf bucket holds every observation
}

TEST_F(ObsTest, BuildInfoAndUptimeArePopulated) {
  const BuildInfo info = GetBuildInfo();
  EXPECT_NE(info.git_sha, nullptr);
  EXPECT_NE(info.build_type, nullptr);
  EXPECT_NE(info.sanitizer, nullptr);
  EXPECT_GT(std::string(info.git_sha).size(), 0u);
  EXPECT_GT(UptimeSeconds(), 0.0);
}

TEST_F(ObsTest, ExportToFileWritesParseableJson) {
  auto& recorder = TraceRecorder::Instance();
  recorder.SetEnabled(true);
  recorder.Record("request", 3, 0, 1000);
  const std::string path = testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(recorder.ExportToFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  auto doc = Json::Parse(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->Get("traceEvents").is_array());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace rt
