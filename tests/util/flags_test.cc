#include "util/flags.h"

#include <gtest/gtest.h>

namespace rt {
namespace {

ArgParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return ArgParser(static_cast<int>(args.size()), args.data());
}

TEST(ArgParserTest, EqualsForm) {
  auto p = Parse({"--model=gpt2-medium", "--epochs=5"});
  EXPECT_EQ(p.GetString("model"), "gpt2-medium");
  EXPECT_EQ(p.GetInt("epochs", 0).value(), 5);
}

TEST(ArgParserTest, SpaceForm) {
  auto p = Parse({"--model", "word-lstm", "--lr", "0.003"});
  EXPECT_EQ(p.GetString("model"), "word-lstm");
  EXPECT_DOUBLE_EQ(p.GetDouble("lr", 0).value(), 0.003);
}

TEST(ArgParserTest, BareSwitch) {
  auto p = Parse({"--verbose", "--quick"});
  EXPECT_TRUE(p.GetBool("verbose"));
  EXPECT_TRUE(p.GetBool("quick"));
  EXPECT_FALSE(p.GetBool("absent"));
  EXPECT_TRUE(p.GetBool("absent", true));
}

TEST(ArgParserTest, BoolWithExplicitValue) {
  auto p = Parse({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(p.GetBool("a"));
  EXPECT_FALSE(p.GetBool("b"));
  EXPECT_TRUE(p.GetBool("c"));
  EXPECT_FALSE(p.GetBool("d"));
}

TEST(ArgParserTest, PositionalArguments) {
  auto p = Parse({"train", "--epochs=2", "corpus.jsonl"});
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"train", "corpus.jsonl"}));
}

TEST(ArgParserTest, DoubleDashEndsFlags) {
  auto p = Parse({"--a=1", "--", "--not-a-flag"});
  EXPECT_TRUE(p.Has("a"));
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"--not-a-flag"}));
}

TEST(ArgParserTest, FallbacksWhenAbsent) {
  auto p = Parse({});
  EXPECT_EQ(p.GetString("x", "def"), "def");
  EXPECT_EQ(p.GetInt("n", 42).value(), 42);
  EXPECT_DOUBLE_EQ(p.GetDouble("d", 2.5).value(), 2.5);
}

TEST(ArgParserTest, BadNumbersAreErrors) {
  auto p = Parse({"--n=abc", "--d=xyz"});
  EXPECT_FALSE(p.GetInt("n", 0).ok());
  EXPECT_FALSE(p.GetDouble("d", 0).ok());
}

TEST(ArgParserTest, LastOccurrenceWins) {
  auto p = Parse({"--n=1", "--n=2"});
  EXPECT_EQ(p.GetInt("n", 0).value(), 2);
}

TEST(ArgParserTest, SwitchBeforeAnotherFlagHasNoValue) {
  auto p = Parse({"--verbose", "--model=x"});
  EXPECT_TRUE(p.GetBool("verbose"));
  EXPECT_EQ(p.GetString("model"), "x");
}

}  // namespace
}  // namespace rt
