#include "util/status.h"

#include <memory>
#include <utility>

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(0), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  RT_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  RT_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace rt
