#include "util/strings.h"

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, DropsEmptyByDefault) {
  EXPECT_EQ(Split("a,,b,", ','), (std::vector<std::string>{"a", "b"}));
}

TEST(SplitTest, KeepEmptyPreservesStructure) {
  EXPECT_EQ(Split("a,,b,", ',', /*keep_empty=*/true),
            (std::vector<std::string>{"a", "", "b", ""}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_TRUE(Split("", ',').empty());
  EXPECT_EQ(Split("", ',', true), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\n\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(TrimTest, RemovesEdgesOnly) {
  EXPECT_EQ(Trim("  hi there \n"), "hi there");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 123 Case!"), "mixed 123 case!");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("<RECIPE_START> x", "<RECIPE_START>"));
  EXPECT_FALSE(StartsWith("x", "xx"));
  EXPECT_TRUE(EndsWith("foo.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "foo.csv"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(ReplaceAllTest, NonOverlapping) {
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("1/2 cup 1/2 tsp", "1/2", "<FRAC_1_2>"),
            "<FRAC_1_2> cup <FRAC_1_2> tsp");
  EXPECT_EQ(ReplaceAll("none here", "xyz", "q"), "none here");
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(0.347, 3), "0.347");
  EXPECT_EQ(FormatDouble(0.8062, 3), "0.806");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(118171), "118,171");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace rt
