#include <unistd.h>

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/timer.h"

namespace rt {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  // Suppress output for the test run; the point is that streaming
  // arbitrary types through the macro compiles and does not crash.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  RT_LOG(Info) << "value " << 42 << " pi " << 3.14 << " str "
               << std::string("x");
  RT_LOG(Debug) << "also suppressed";
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ RT_CHECK(1 == 2) << "context " << 99; },
               "CHECK FAILED");
}

TEST(LoggingTest, CheckPassesSilently) {
  RT_CHECK(2 + 2 == 4) << "never shown";
}

TEST(TimerTest, ElapsedGrowsMonotonically) {
  Timer t;
  const double a = t.ElapsedSeconds();
  ::usleep(2000);
  const double b = t.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0.0);
  EXPECT_NEAR(t.ElapsedMillis(), t.ElapsedSeconds() * 1e3,
              t.ElapsedMillis() * 0.5);
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  ::usleep(2000);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 0.002);
}

}  // namespace
}  // namespace rt
