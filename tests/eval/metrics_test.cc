#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(PerplexityTest, ExpOfLoss) {
  EXPECT_NEAR(PerplexityFromLoss(0.0), 1.0, 1e-12);
  EXPECT_NEAR(PerplexityFromLoss(std::log(50.0)), 50.0, 1e-9);
}

TEST(DistinctNTest, AllUniqueIsOne) {
  EXPECT_NEAR(DistinctN({"a b c d"}, 1), 1.0, 1e-12);
  EXPECT_NEAR(DistinctN({"a b c d"}, 2), 1.0, 1e-12);
}

TEST(DistinctNTest, RepetitionLowersScore) {
  // "a a a a": 4 unigrams, 1 unique.
  EXPECT_NEAR(DistinctN({"a a a a"}, 1), 0.25, 1e-12);
  double repetitive = DistinctN({"the cat the cat the cat"}, 2);
  double diverse = DistinctN({"the cat ate a small fish"}, 2);
  EXPECT_LT(repetitive, diverse);
}

TEST(DistinctNTest, PoolsAcrossTexts) {
  // Same text twice halves distinct-1.
  EXPECT_NEAR(DistinctN({"a b", "a b"}, 1), 0.5, 1e-12);
}

TEST(DistinctNTest, EmptyAndTooShort) {
  EXPECT_EQ(DistinctN({}, 2), 0.0);
  EXPECT_EQ(DistinctN({"one"}, 2), 0.0);
}

TEST(NoveltyRateTest, VerbatimCopiesAreNotNovel) {
  std::vector<std::string> train{"recipe one text", "recipe two text"};
  EXPECT_EQ(NoveltyRate({"recipe one text"}, train), 0.0);
  EXPECT_EQ(NoveltyRate({"a brand new recipe"}, train), 1.0);
  EXPECT_NEAR(NoveltyRate({"recipe one text", "something new"}, train),
              0.5, 1e-12);
}

TEST(NoveltyRateTest, WhitespaceInsensitive) {
  std::vector<std::string> train{"a  b   c"};
  EXPECT_EQ(NoveltyRate({"a b c"}, train), 0.0);
}

TEST(IngredientCoverageTest, CountsPromptMentions) {
  Recipe r;
  r.ingredients = {{"2", "cup", "tomato", ""}};
  r.instructions = {"add the onion and simmer"};
  EXPECT_NEAR(IngredientCoverage(r, {"tomato", "onion"}), 1.0, 1e-12);
  EXPECT_NEAR(IngredientCoverage(r, {"tomato", "garlic"}), 0.5, 1e-12);
  EXPECT_EQ(IngredientCoverage(r, {}), 1.0);
}

TEST(QuantityTest, WellFormedQuantities) {
  EXPECT_TRUE(IsWellFormedQuantity("2"));
  EXPECT_TRUE(IsWellFormedQuantity("12"));
  EXPECT_TRUE(IsWellFormedQuantity("1/2"));
  EXPECT_TRUE(IsWellFormedQuantity("1 1/2"));
  EXPECT_TRUE(IsWellFormedQuantity("3/4"));
}

TEST(QuantityTest, MalformedQuantities) {
  EXPECT_FALSE(IsWellFormedQuantity(""));
  EXPECT_FALSE(IsWellFormedQuantity("abc"));
  EXPECT_FALSE(IsWellFormedQuantity("1/"));
  EXPECT_FALSE(IsWellFormedQuantity("/2"));
  EXPECT_FALSE(IsWellFormedQuantity("1/0"));
  EXPECT_FALSE(IsWellFormedQuantity("1 2 3"));
  EXPECT_FALSE(IsWellFormedQuantity("1/2 1"));  // frac then int invalid
  EXPECT_FALSE(IsWellFormedQuantity("one half"));
}

TEST(QuantityTest, RecipeWellFormedness) {
  Recipe r;
  r.ingredients = {{"2", "cup", "rice", ""},
                   {"1/2", "tsp", "salt", ""},
                   {"some", "", "pepper", ""},
                   {"", "", "water", ""}};
  EXPECT_NEAR(QuantityWellFormedness(r), 0.5, 1e-12);
  Recipe empty;
  EXPECT_EQ(QuantityWellFormedness(empty), 0.0);
}

}  // namespace
}  // namespace rt
