// Property-based BLEU tests over generated recipe text: identity,
// bounds, monotonicity in reference count, and degradation under
// perturbation — swept across corpus seeds with TEST_P.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "eval/bleu.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rt {
namespace {

class BleuPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  std::vector<std::string> Docs(int n) {
    GeneratorOptions opts;
    opts.num_recipes = n;
    opts.seed = GetParam();
    opts.incomplete_fraction = 0.0;
    opts.duplicate_fraction = 0.0;
    opts.overlong_fraction = 0.0;
    opts.short_fraction = 0.0;
    std::vector<std::string> docs;
    for (const auto& r : RecipeDbGenerator(opts).Generate()) {
      docs.push_back(r.ToTaggedString());
    }
    return docs;
  }
};

TEST_P(BleuPropertyTest, IdentityScoresOne) {
  for (const auto& doc : Docs(5)) {
    EXPECT_NEAR(SentenceBleu(doc, doc), 1.0, 1e-9);
  }
}

TEST_P(BleuPropertyTest, AlwaysInUnitInterval) {
  auto docs = Docs(6);
  for (size_t i = 0; i < docs.size(); ++i) {
    for (size_t j = 0; j < docs.size(); ++j) {
      const double b = SentenceBleu(docs[i], docs[j]);
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, 1.0 + 1e-12);
    }
  }
}

TEST_P(BleuPropertyTest, ExtraReferenceNeverHurts) {
  auto docs = Docs(4);
  auto cand = SplitWhitespace(docs[0]);
  auto ref1 = SplitWhitespace(docs[1]);
  auto ref2 = SplitWhitespace(docs[2]);
  const double one_ref = SentenceBleu(cand, {ref1});
  const double two_refs = SentenceBleu(cand, {ref1, ref2});
  EXPECT_GE(two_refs + 1e-12, one_ref);
}

TEST_P(BleuPropertyTest, TokenCorruptionDegradesScore) {
  auto docs = Docs(3);
  Rng rng(GetParam() + 1);
  for (const auto& doc : Docs(3)) {
    auto tokens = SplitWhitespace(doc);
    auto corrupted = tokens;
    // Corrupt every 4th token.
    for (size_t i = 0; i < corrupted.size(); i += 4) {
      corrupted[i] = "zzz" + std::to_string(rng.NextBelow(100));
    }
    const double clean = SentenceBleu(tokens, {tokens});
    const double noisy = SentenceBleu(corrupted, {tokens});
    EXPECT_LT(noisy, clean);
    EXPECT_GT(noisy, 0.0);  // smoothing keeps it finite
  }
}

TEST_P(BleuPropertyTest, CorpusBleuBoundedByBestAndWorstSentence) {
  auto docs = Docs(5);
  std::vector<std::string> cands(docs.begin(), docs.begin() + 2);
  std::vector<std::string> refs(docs.begin() + 2, docs.begin() + 4);
  const double corpus = CorpusBleu(cands, refs);
  EXPECT_GE(corpus, 0.0);
  EXPECT_LE(corpus, 1.0 + 1e-12);
}

TEST_P(BleuPropertyTest, TruncationTriggersBrevityPenalty) {
  for (const auto& doc : Docs(3)) {
    auto tokens = SplitWhitespace(doc);
    auto half = std::vector<std::string>(tokens.begin(),
                                         tokens.begin() + tokens.size() / 2);
    const double full = SentenceBleu(tokens, {tokens});
    const double truncated = SentenceBleu(half, {tokens});
    EXPECT_LT(truncated, full);
    // Precisions are perfect for a prefix, so the entire loss comes from
    // the brevity penalty: score <= exp(1 - 2) roughly.
    EXPECT_LT(truncated, 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BleuPropertyTest,
                         testing::Values(11u, 22u, 33u),
                         [](const testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rt
