#include "eval/bleu.h"

#include <cmath>
#include <gtest/gtest.h>

namespace rt {
namespace {

std::vector<std::string> Tok(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ' ') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

TEST(SentenceBleuTest, PerfectMatchIsOne) {
  auto t = Tok("the cat sat on the mat with the hat");
  EXPECT_NEAR(SentenceBleu(t, {t}), 1.0, 1e-9);
}

TEST(SentenceBleuTest, CompletelyDifferentNearZero) {
  double b = SentenceBleu(Tok("aa bb cc dd ee ff gg hh"),
                          {Tok("xx yy zz ww vv uu tt ss")});
  EXPECT_LT(b, 0.05);
}

TEST(SentenceBleuTest, PartialOverlapBetween) {
  double b = SentenceBleu(
      Tok("the cat sat on the mat today ok"),
      {Tok("the cat sat on the red mat yesterday maybe")});
  EXPECT_GT(b, 0.2);
  EXPECT_LT(b, 0.95);
}

TEST(SentenceBleuTest, BrevityPenaltyPunishesShortCandidates) {
  auto ref = Tok("a b c d e f g h i j");
  double full = SentenceBleu(ref, {ref});
  double half = SentenceBleu(Tok("a b c d e"), {ref});
  EXPECT_LT(half, full);
  // Precisions are perfect, so the gap is exactly the brevity penalty.
  EXPECT_NEAR(half, std::exp(1.0 - 10.0 / 5.0), 1e-6);
}

TEST(SentenceBleuTest, NoLengthPenaltyForLongerCandidates) {
  auto ref = Tok("a b c d e");
  // Candidate repeats the reference exactly once, doubling length;
  // precision halves... actually clipping halves unigram precision.
  double b = SentenceBleu(Tok("a b c d e a b c d e"), {ref});
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 1.0);
}

TEST(SentenceBleuTest, ClippingPreventsGaming) {
  // "the the the..." must not get high precision against one "the".
  auto cand = Tok("the the the the the the the");
  auto ref = Tok("the cat is on the mat again");
  double b = SentenceBleu(cand, {ref});
  EXPECT_LT(b, 0.1);
}

TEST(SentenceBleuTest, MultiReferenceTakesBest) {
  auto cand = Tok("simmer the stew for twenty minutes now");
  auto ref_far = Tok("bake the cake until golden and done");
  auto ref_near = Tok("simmer the stew for twenty minutes please");
  double multi = SentenceBleu(cand, {ref_far, ref_near});
  double only_far = SentenceBleu(cand, {ref_far});
  EXPECT_GT(multi, only_far);
}

TEST(SentenceBleuTest, EmptyCandidateIsZero) {
  EXPECT_EQ(SentenceBleu(std::vector<std::string>{},
                         {Tok("a b c")}),
            0.0);
}

TEST(SentenceBleuTest, ShortCandidateUsesAvailableOrders) {
  // 2-token candidate has no 3- or 4-grams; BLEU still finite.
  double b = SentenceBleu(Tok("hello world"),
                          {Tok("hello world how are you")});
  EXPECT_GT(b, 0.0);
}

TEST(CorpusBleuTest, PoolsStatistics) {
  std::vector<std::string> cands{"the cat sat down", "a dog ran fast"};
  std::vector<std::string> refs{"the cat sat down", "a dog ran fast"};
  EXPECT_NEAR(CorpusBleu(cands, refs), 1.0, 1e-9);
}

TEST(CorpusBleuTest, MixedQualityBetweenExtremes) {
  std::vector<std::string> cands{"the cat sat on the mat ok",
                                 "zz yy xx ww vv uu tt"};
  std::vector<std::string> refs{"the cat sat on the mat ok",
                                "a b c d e f g"};
  double b = CorpusBleu(cands, refs);
  EXPECT_GT(b, 0.2);
  EXPECT_LT(b, 0.9);
}

TEST(CorpusBleuTest, CorpusIsNotMeanOfSentences) {
  // Standard corpus BLEU pools counts; verify it differs from averaging.
  std::vector<std::string> cands{"a b", "x y z w q r t u"};
  std::vector<std::string> refs{"a b", "x y z w q r t u"};
  double corpus = CorpusBleu(cands, refs);
  EXPECT_NEAR(corpus, 1.0, 1e-9);
}

TEST(CorpusBleuTest, MonotoneInQuality) {
  std::vector<std::string> refs{
      "heat the oil in a large pot over medium heat",
      "add the onion and cook until softened today"};
  std::vector<std::string> good{
      "heat the oil in a large pot over medium heat",
      "add the onion and cook until browned today"};
  std::vector<std::string> bad{
      "heat something in somewhere over low flame now",
      "mix every item and wait until done maybe"};
  EXPECT_GT(CorpusBleu(good, refs), CorpusBleu(bad, refs));
}

TEST(BleuOptionsTest, MaxNOneIsUnigramPrecision) {
  BleuOptions opts;
  opts.max_n = 1;
  // 3 of 4 unigrams match, lengths equal.
  double b = SentenceBleu(Tok("a b c z"), {Tok("a b c d")}, opts);
  EXPECT_NEAR(b, 0.75, 1e-9);
}

}  // namespace
}  // namespace rt
