#include "eval/rouge.h"

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(LcsTest, KnownValues) {
  EXPECT_EQ(LcsLength({"a", "b", "c"}, {"a", "b", "c"}), 3u);
  EXPECT_EQ(LcsLength({"a", "b", "c"}, {"a", "x", "c"}), 2u);
  EXPECT_EQ(LcsLength({"a", "b"}, {"c", "d"}), 0u);
  EXPECT_EQ(LcsLength({}, {"a"}), 0u);
  // Order matters: subsequence, not bag-of-words.
  EXPECT_EQ(LcsLength({"a", "b", "c"}, {"c", "b", "a"}), 1u);
}

TEST(LcsTest, SymmetricInArguments) {
  std::vector<std::string> a{"x", "y", "z", "w", "q"};
  std::vector<std::string> b{"y", "w"};
  EXPECT_EQ(LcsLength(a, b), LcsLength(b, a));
}

TEST(RougeLTest, PerfectMatchIsOne) {
  auto s = RougeL("heat the oil in a pan", "heat the oil in a pan");
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(RougeLTest, DisjointIsZero) {
  auto s = RougeL("aa bb cc", "xx yy zz");
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(RougeLTest, RecallPrecisionAsymmetry) {
  // Candidate is a strict prefix of the reference: precision 1, recall<1.
  auto s = RougeL("heat the oil", "heat the oil in a pan");
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_NEAR(s.f1, 2.0 * 0.5 / 1.5, 1e-12);
}

TEST(RougeLTest, EmptyInputsSafe) {
  EXPECT_DOUBLE_EQ(RougeL("", "a b").f1, 0.0);
  EXPECT_DOUBLE_EQ(RougeL("a b", "").f1, 0.0);
}

TEST(RougeLTest, OrderSensitive) {
  double in_order = RougeL("add salt then pepper", "add salt then pepper").f1;
  double shuffled = RougeL("pepper then salt add", "add salt then pepper").f1;
  EXPECT_GT(in_order, shuffled);
}

TEST(RougeLTest, MonotoneInOverlap) {
  const std::string ref = "simmer the stew for twenty minutes then serve";
  double close = RougeL("simmer the stew for thirty minutes then serve",
                        ref).f1;
  double far = RougeL("bake a cake and cool it completely first", ref).f1;
  EXPECT_GT(close, far);
}

}  // namespace
}  // namespace rt
