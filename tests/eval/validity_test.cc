#include <gtest/gtest.h>

#include "data/generator.h"
#include "eval/metrics.h"

namespace rt {
namespace {

TEST(StructuralValidityTest, WellFormedRecipeScoresOne) {
  GeneratorOptions opts;
  opts.num_recipes = 5;
  opts.seed = 9;
  opts.incomplete_fraction = 0.0;  // noise-free corpus
  opts.duplicate_fraction = 0.0;
  opts.overlong_fraction = 0.0;
  opts.short_fraction = 0.0;
  for (const Recipe& r : RecipeDbGenerator(opts).Generate()) {
    EXPECT_DOUBLE_EQ(StructuralValidity(r.ToTaggedString()), 1.0);
  }
}

TEST(StructuralValidityTest, FreeTextScoresZero) {
  EXPECT_DOUBLE_EQ(
      StructuralValidity("just a plain sentence about cooking"), 0.0);
}

TEST(StructuralValidityTest, TruncatedGenerationScoresBetween) {
  GeneratorOptions opts;
  opts.num_recipes = 1;
  opts.seed = 10;
  Recipe r = RecipeDbGenerator(opts).Generate()[0];
  std::string s = r.ToTaggedString();
  s = s.substr(0, s.find("<INSTR_END>"));  // lost instr end, title, end
  const double v = StructuralValidity(s);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(StructuralValidityTest, WrongSectionOrderPenalized) {
  const std::string reordered =
      "<RECIPE_START> <TITLE_START> soup <TITLE_END> <INGR_START> water "
      "<INGR_END> <INSTR_START> boil <INSTR_END> <RECIPE_END>";
  const std::string canonical =
      "<RECIPE_START> <INGR_START> water <INGR_END> <INSTR_START> boil "
      "<INSTR_END> <TITLE_START> soup <TITLE_END> <RECIPE_END>";
  EXPECT_LT(StructuralValidity(reordered),
            StructuralValidity(canonical));
  EXPECT_DOUBLE_EQ(StructuralValidity(canonical), 1.0);
}

TEST(StructuralValidityTest, EmptySectionNotCounted) {
  const std::string empty_ingr =
      "<RECIPE_START> <INGR_START> <INGR_END> <INSTR_START> boil "
      "<INSTR_END> <TITLE_START> soup <TITLE_END> <RECIPE_END>";
  EXPECT_LT(StructuralValidity(empty_ingr), 1.0);
}

}  // namespace
}  // namespace rt
