// Observability surface tests against a stub backend: the /v1/metrics
// JSON <-> Prometheus schema-sync contract, the /v1/trace export, and
// graceful degradation under the trace.export.fail /
// metrics.render.slow fault points.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/backend_service.h"
#include "util/fault_injection.h"
#include "util/obs.h"

namespace rt {
namespace {

StatusOr<Recipe> FakeGenerate(const GenerateRequest& req) {
  Recipe r;
  r.title = "dish";
  for (const auto& ing : req.ingredients) {
    r.ingredients.push_back({"1", "", ing, ""});
  }
  r.instructions = {"cook"};
  return r;
}

class ObservabilityTest : public testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRecorder::Instance().Clear();
    BackendOptions options;
    options.models = {"word-lstm"};
    backend_ = std::make_unique<BackendService>(
        [](int) -> BackendService::GenerateFn {
          return BackendService::WrapRecipeFn(FakeGenerate);
        },
        options);  // options.tracing defaults true -> recorder enabled
    ASSERT_TRUE(backend_->Start(0).ok());
  }
  void TearDown() override {
    if (backend_) backend_->Stop();
    FaultInjector::Instance().Reset();
    obs::TraceRecorder::Instance().SetEnabled(false);
    obs::TraceRecorder::Instance().Clear();
  }

  std::unique_ptr<BackendService> backend_;
};

/// Mirrors obs's metric-name sanitizer so the test can predict the
/// Prometheus name of any JSON key.
std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(),
                      suffix) == 0;
}

/// Walks the metrics JSON and asserts every field has its Prometheus
/// counterpart: numbers/bools/strings as rt_<flat> lines, histogram
/// bucket-array pairs as rt_<prefix>latency_seconds families, nested
/// objects recursively. Any other array is a schema violation.
void AssertSchemaSync(const Json& object, const std::string& prefix,
                      const std::string& text) {
  ASSERT_TRUE(object.is_object());
  for (const auto& [key, value] : object.AsObject()) {
    const std::string flat = prefix + key;
    if (value.is_array()) {
      if (EndsWith(key, "latency_bucket_le")) {
        const std::string family =
            flat.substr(0, flat.size() -
                               std::string("latency_bucket_le").size());
        const std::string name =
            Sanitize("rt_" + family + "latency_seconds");
        EXPECT_NE(text.find(name + "_bucket{le=\"+Inf\"} "),
                  std::string::npos)
            << "histogram family missing: " << name;
        EXPECT_NE(text.find(name + "_count "), std::string::npos)
            << "histogram count missing: " << name;
        EXPECT_NE(text.find(name + "_sum "), std::string::npos)
            << "histogram sum missing: " << name;
      } else {
        EXPECT_TRUE(EndsWith(key, "latency_bucket_count"))
            << "array key '" << flat
            << "' has no Prometheus mapping — extend RenderPrometheus "
               "or change the metric's shape";
      }
      continue;
    }
    if (value.is_object()) {
      AssertSchemaSync(value, flat + "_", text);
      continue;
    }
    const std::string name = Sanitize("rt_" + flat);
    if (value.is_number() || value.is_bool()) {
      EXPECT_NE(text.find(name + " "), std::string::npos)
          << "gauge missing: " << name;
    } else if (value.is_string()) {
      EXPECT_NE(text.find(name + "{value=\""), std::string::npos)
          << "info gauge missing: " << name;
    }
  }
}

TEST_F(ObservabilityTest, MetricsJsonAndPrometheusStayInSync) {
  // Generate once so latency histograms and stage metrics have data.
  auto gen = HttpPost(backend_->port(), "/v1/generate",
                      R"({"ingredients":["rice"]})");
  ASSERT_TRUE(gen.ok());
  ASSERT_EQ(gen->status, 200);

  auto json_resp = HttpGet(backend_->port(), "/v1/metrics");
  ASSERT_TRUE(json_resp.ok());
  ASSERT_EQ(json_resp->status, 200);
  auto doc = Json::Parse(json_resp->body);
  ASSERT_TRUE(doc.ok());

  auto prom_resp =
      HttpGet(backend_->port(), "/v1/metrics?format=prometheus");
  ASSERT_TRUE(prom_resp.ok());
  ASSERT_EQ(prom_resp->status, 200);
  EXPECT_EQ(prom_resp->headers.at("content-type"),
            "text/plain; version=0.0.4");

  AssertSchemaSync(*doc, "", prom_resp->body);

  // Spot-check the families this PR added.
  EXPECT_TRUE(doc->Get("uptime_s").is_number());
  EXPECT_TRUE(doc->Get("stage_tokens_sampled").is_number());
  for (const char* stage :
       {"request", "queue_wait", "session_acquire", "prefill",
        "batch_step", "sample", "response_write"}) {
    const std::string key =
        std::string("stage_") + stage + "_seconds_total";
    EXPECT_TRUE(doc->Get(key).is_number()) << key;
  }
  EXPECT_NE(prom_resp->body.find(
                "rt_stage_request_latency_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  // The request was actually observed by the request-stage histogram.
  EXPECT_GE(doc->Get("stage_request_latency_bucket_count")
                .AsArray()
                .back()
                .AsNumber() +
                doc->Get("stage_request_seconds_total").AsNumber(),
            0.0);
}

TEST_F(ObservabilityTest, TraceEndpointExportsSpansForAGenerate) {
  auto gen = HttpPost(backend_->port(), "/v1/generate",
                      R"({"ingredients":["rice"]})");
  ASSERT_TRUE(gen.ok());
  ASSERT_EQ(gen->status, 200);

  auto trace = HttpGet(backend_->port(), "/v1/trace");
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->status, 200);
  auto doc = Json::Parse(trace->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("displayTimeUnit").AsString(), "ms");
  EXPECT_GT(doc->Get("spans_recorded").AsNumber(), 0.0);

  std::set<std::string> names;
  bool saw_traced_span = false;
  for (const Json& ev : doc->Get("traceEvents").AsArray()) {
    if (ev.Get("ph").AsString() != "X") continue;
    names.insert(ev.Get("name").AsString());
    if (ev.Get("args").Get("trace_id").AsNumber() > 0.0) {
      saw_traced_span = true;
    }
  }
  // The stub backend skips the decode loop, but the serve-layer spans
  // must all be there for the generate we just issued.
  EXPECT_TRUE(names.count("request")) << "have: " << names.size();
  EXPECT_TRUE(names.count("session_acquire"));
  EXPECT_TRUE(names.count("response_write"));
  EXPECT_TRUE(saw_traced_span);
}

TEST_F(ObservabilityTest, TraceExportFaultNever500sGenerate) {
  FaultInjector::Instance().Arm("trace.export.fail", {});

  auto trace = HttpGet(backend_->port(), "/v1/trace");
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->status, 503);
  auto doc = Json::Parse(trace->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("error").Get("code").AsString(),
            "trace_export_failed");
  EXPECT_TRUE(doc->Get("error").Get("request_id").is_string());

  // The generate path is untouched by the armed trace fault.
  auto gen = HttpPost(backend_->port(), "/v1/generate",
                      R"({"ingredients":["rice"]})");
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->status, 200);

  FaultInjector::Instance().Disarm("trace.export.fail");
  auto recovered = HttpGet(backend_->port(), "/v1/trace");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->status, 200);
}

TEST_F(ObservabilityTest, SlowMetricsRenderStillAnswers200) {
  FaultInjector::FaultSpec spec;
  spec.amount = 50;  // ms of injected render latency
  FaultInjector::Instance().Arm("metrics.render.slow", spec);

  const auto start = obs::Now();
  auto resp = HttpGet(backend_->port(), "/v1/metrics");
  const auto elapsed = obs::Now() - start;
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_TRUE(Json::Parse(resp->body).ok());
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            50);
  EXPECT_GT(FaultInjector::Instance().fires("metrics.render.slow"), 0);
}

}  // namespace
}  // namespace rt
