#include <atomic>

#include <gtest/gtest.h>

#include "serve/backend_service.h"

namespace rt {
namespace {

StatusOr<Recipe> OkGenerate(const GenerateRequest& req) {
  Recipe r;
  r.title = "dish";
  for (const auto& ing : req.ingredients) {
    r.ingredients.push_back({"1", "", ing, ""});
  }
  r.instructions = {"cook"};
  return r;
}

TEST(MetricsEndpointTest, CountsSuccessAndErrors) {
  // Atomic: written by the test thread, read by an HTTP worker thread.
  std::atomic<int> fail_next{0};
  BackendService backend(BackendService::WrapRecipeFn(
      [&fail_next](const GenerateRequest& req) -> StatusOr<Recipe> {
        if (fail_next.fetch_sub(1) > 0) {
          return Status::Internal("boom");
        }
        fail_next.fetch_add(1);
        return OkGenerate(req);
      }));
  ASSERT_TRUE(backend.Start(0).ok());

  // 2 ok, 1 server error, 1 client error.
  auto ok1 = HttpPost(backend.port(), "/v1/generate",
                      R"({"ingredients":["a"]})");
  auto ok2 = HttpPost(backend.port(), "/v1/generate",
                      R"({"ingredients":["b"]})");
  fail_next = 1;
  auto err5 = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["c"]})");
  auto err4 = HttpPost(backend.port(), "/v1/generate", "{}");
  ASSERT_TRUE(ok1.ok() && ok2.ok() && err5.ok() && err4.ok());
  EXPECT_EQ(ok1->status, 200);
  EXPECT_EQ(err5->status, 500);
  EXPECT_EQ(err4->status, 400);

  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("generate_ok").AsNumber(), 2.0);
  EXPECT_EQ(doc->Get("generate_server_errors").AsNumber(), 1.0);
  EXPECT_EQ(doc->Get("generate_client_errors").AsNumber(), 1.0);
  EXPECT_GE(doc->Get("generate_seconds_total").AsNumber(), 0.0);
  EXPECT_GE(doc->Get("generate_seconds_max").AsNumber(),
            doc->Get("generate_seconds_mean").AsNumber());
  EXPECT_GE(doc->Get("requests_total").AsNumber(), 4.0);
  backend.Stop();
}

TEST(MetricsEndpointTest, FreshServiceReportsZeros) {
  BackendService backend(BackendService::WrapRecipeFn(OkGenerate));
  ASSERT_TRUE(backend.Start(0).ok());
  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("generate_ok").AsNumber(), 0.0);
  EXPECT_EQ(doc->Get("generate_seconds_mean").AsNumber(), 0.0);
  backend.Stop();
}

}  // namespace
}  // namespace rt
