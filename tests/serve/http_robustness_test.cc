// Adversarial/robustness tests for the HTTP layer: malformed requests,
// raw-socket abuse, lifecycle churn. The server must never crash and
// must answer every parseable request.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "serve/http.h"

namespace rt {
namespace {

/// Sends raw bytes to the server and returns whatever comes back.
std::string RawExchange(int port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  ::shutdown(fd, SHUT_WR);
  std::string out;
  char buf[2048];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

class HttpRobustnessTest : public testing::Test {
 protected:
  void SetUp() override {
    server_.Route("GET", "/ok", [](const HttpRequest&) {
      return HttpResponse::Text("fine");
    });
    server_.Route("POST", "/echo", [](const HttpRequest& req) {
      return HttpResponse::Text(req.body);
    });
    ASSERT_TRUE(server_.Start(0).ok());
  }
  void TearDown() override { server_.Stop(); }
  HttpServer server_;
};

TEST_F(HttpRobustnessTest, GarbageRequestLineGets400) {
  std::string resp = RawExchange(server_.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(resp.find("400"), std::string::npos);
}

TEST_F(HttpRobustnessTest, EmptyConnectionHandledQuietly) {
  // Client connects and immediately closes; the server must survive and
  // keep serving.
  RawExchange(server_.port(), "");
  auto resp = HttpGet(server_.port(), "/ok");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "fine");
}

TEST_F(HttpRobustnessTest, TruncatedHeadersThenServeNext) {
  RawExchange(server_.port(), "GET /ok HTTP/1.1\r\nHost: x");  // no CRLFCRLF
  auto resp = HttpGet(server_.port(), "/ok");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
}

TEST_F(HttpRobustnessTest, BodyShorterThanContentLengthStillAnswered) {
  // Client claims 100 bytes but sends 4 then closes the write side; the
  // read loop must terminate (recv returns 0) and still answer.
  std::string req =
      "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\nabcd";
  std::string resp = RawExchange(server_.port(), req);
  EXPECT_NE(resp.find("HTTP/1.1"), std::string::npos);
}

TEST_F(HttpRobustnessTest, LargeBodyRoundTrips) {
  std::string body(512 * 1024, 'x');
  auto resp = HttpPost(server_.port(), "/echo", body);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body.size(), body.size());
}

TEST_F(HttpRobustnessTest, UnsupportedMethodIs404) {
  std::string resp = RawExchange(
      server_.port(), "DELETE /ok HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(resp.find("404"), std::string::npos);
}

TEST_F(HttpRobustnessTest, ManyStartStopCyclesDoNotLeakPorts) {
  for (int i = 0; i < 5; ++i) {
    HttpServer s;
    s.Route("GET", "/x", [](const HttpRequest&) {
      return HttpResponse::Text("y");
    });
    ASSERT_TRUE(s.Start(0).ok());
    auto resp = HttpGet(s.port(), "/x");
    ASSERT_TRUE(resp.ok());
    s.Stop();
  }
}

TEST_F(HttpRobustnessTest, HeaderCaseInsensitivity) {
  std::string req =
      "POST /echo HTTP/1.1\r\nhOsT: x\r\ncOntent-LENGTH: 3\r\n\r\nabc";
  std::string resp = RawExchange(server_.port(), req);
  EXPECT_NE(resp.find("abc"), std::string::npos);
}

/// A raw listener that accepts one connection, drains the request, and
/// runs `respond(fd)` — for abusing the *client* side of the stack.
class OneShotRawServer {
 public:
  explicit OneShotRawServer(std::function<void(int fd)> respond)
      : respond_(std::move(respond)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    (void)::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr));
    socklen_t len = sizeof(addr);
    (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        &len);
    port_ = ntohs(addr.sin_port);
    (void)::listen(listen_fd_, 1);
    thread_ = std::thread([this] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      char buf[4096];
      (void)::recv(fd, buf, sizeof(buf), 0);
      respond_(fd);
      ::close(fd);
    });
  }

  ~OneShotRawServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  int port() const { return port_; }

 private:
  std::function<void(int)> respond_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

TEST(HttpClientRobustnessTest, OversizedResponseHeadIsRejected) {
  // A server that streams headers forever must trip the client's
  // 64 KiB head cap — bounded memory, structured error, no hang.
  OneShotRawServer server([](int fd) {
    const std::string status = "HTTP/1.1 200 OK\r\n";
    (void)::send(fd, status.data(), status.size(), MSG_NOSIGNAL);
    const std::string line = "x-padding: " + std::string(1000, 'a') + "\r\n";
    for (int i = 0; i < 80; ++i) {  // ~80 KB of headers, no terminator
      if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) <= 0) return;
    }
  });
  auto resp = HttpGet(server.port(), "/anything");
  ASSERT_FALSE(resp.ok());
  EXPECT_NE(resp.status().message().find("64 KiB cap"), std::string::npos)
      << resp.status().ToString();
}

TEST(HttpClientRobustnessTest, ClientTimeoutAgainstSilentServer) {
  // The server accepts and never answers. With a timeout_ms budget the
  // client must give up promptly instead of blocking in recv forever.
  OneShotRawServer server([](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2000));
  });
  HttpCallOptions call;
  call.timeout_ms = 150;
  const auto start = std::chrono::steady_clock::now();
  auto resp = HttpGet(server.port(), "/silent", call);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ASSERT_FALSE(resp.ok());
  EXPECT_NE(resp.status().message().find("timed out"), std::string::npos)
      << resp.status().ToString();
  EXPECT_LT(elapsed, 1500);
}

}  // namespace
}  // namespace rt
