// Adversarial/robustness tests for the HTTP layer: malformed requests,
// raw-socket abuse, lifecycle churn. The server must never crash and
// must answer every parseable request.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "serve/http.h"

namespace rt {
namespace {

/// Sends raw bytes to the server and returns whatever comes back.
std::string RawExchange(int port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  ::shutdown(fd, SHUT_WR);
  std::string out;
  char buf[2048];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

class HttpRobustnessTest : public testing::Test {
 protected:
  void SetUp() override {
    server_.Route("GET", "/ok", [](const HttpRequest&) {
      return HttpResponse::Text("fine");
    });
    server_.Route("POST", "/echo", [](const HttpRequest& req) {
      return HttpResponse::Text(req.body);
    });
    ASSERT_TRUE(server_.Start(0).ok());
  }
  void TearDown() override { server_.Stop(); }
  HttpServer server_;
};

TEST_F(HttpRobustnessTest, GarbageRequestLineGets400) {
  std::string resp = RawExchange(server_.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(resp.find("400"), std::string::npos);
}

TEST_F(HttpRobustnessTest, EmptyConnectionHandledQuietly) {
  // Client connects and immediately closes; the server must survive and
  // keep serving.
  RawExchange(server_.port(), "");
  auto resp = HttpGet(server_.port(), "/ok");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "fine");
}

TEST_F(HttpRobustnessTest, TruncatedHeadersThenServeNext) {
  RawExchange(server_.port(), "GET /ok HTTP/1.1\r\nHost: x");  // no CRLFCRLF
  auto resp = HttpGet(server_.port(), "/ok");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
}

TEST_F(HttpRobustnessTest, BodyShorterThanContentLengthStillAnswered) {
  // Client claims 100 bytes but sends 4 then closes the write side; the
  // read loop must terminate (recv returns 0) and still answer.
  std::string req =
      "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\nabcd";
  std::string resp = RawExchange(server_.port(), req);
  EXPECT_NE(resp.find("HTTP/1.1"), std::string::npos);
}

TEST_F(HttpRobustnessTest, LargeBodyRoundTrips) {
  std::string body(512 * 1024, 'x');
  auto resp = HttpPost(server_.port(), "/echo", body);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body.size(), body.size());
}

TEST_F(HttpRobustnessTest, UnsupportedMethodIs404) {
  std::string resp = RawExchange(
      server_.port(), "DELETE /ok HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(resp.find("404"), std::string::npos);
}

TEST_F(HttpRobustnessTest, ManyStartStopCyclesDoNotLeakPorts) {
  for (int i = 0; i < 5; ++i) {
    HttpServer s;
    s.Route("GET", "/x", [](const HttpRequest&) {
      return HttpResponse::Text("y");
    });
    ASSERT_TRUE(s.Start(0).ok());
    auto resp = HttpGet(s.port(), "/x");
    ASSERT_TRUE(resp.ok());
    s.Stop();
  }
}

TEST_F(HttpRobustnessTest, HeaderCaseInsensitivity) {
  std::string req =
      "POST /echo HTTP/1.1\r\nhOsT: x\r\ncOntent-LENGTH: 3\r\n\r\nabc";
  std::string resp = RawExchange(server_.port(), req);
  EXPECT_NE(resp.find("abc"), std::string::npos);
}

}  // namespace
}  // namespace rt
