// Batched-decode parity under int8 quantized weights: with
// kernels::Config().use_int8 set (the --quant int8 serving mode), the
// batch scheduler must still reproduce the sequential Generate path
// token-for-token at every batch size — the int8 kernels carry the same
// bitwise row/thread invariance as fp32, so co-scheduling cannot leak
// into results. Runs in the tsan-serve CI leg alongside serve_test's
// fp32 twins.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "models/gpt2_model.h"
#include "models/lstm_model.h"
#include "serve/batch_scheduler.h"
#include "tensor/kernels.h"

namespace rt {
namespace {

/// Flips the process-wide int8 dispatch for the test's scope and always
/// restores it, so a failing assertion can't poison later tests.
class ScopedInt8 {
 public:
  ScopedInt8() : saved_(kernels::Config().use_int8) {
    kernels::Config().use_int8 = true;
  }
  ~ScopedInt8() { kernels::Config().use_int8 = saved_; }

 private:
  bool saved_;
};

Gpt2Config QuantGpt2() {
  Gpt2Config config;
  config.vocab_size = 53;
  config.dim = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.max_seq_len = 64;
  config.init_seed = 11;
  return config;
}

GenerationOptions RequestOptions(int i) {
  GenerationOptions options;
  switch (i % 3) {
    case 0:
      options.sampling.greedy = true;
      break;
    case 1:
      options.sampling.temperature = 0.8f;
      options.sampling.top_p = 0.9f;
      break;
    default:
      options.sampling.temperature = 1.1f;
      options.sampling.top_k = 12;
      break;
  }
  options.max_new_tokens = 10 + (i % 4);
  options.seed = 1000 + static_cast<uint64_t>(i) * 77;
  return options;
}

std::vector<int> RequestPrompt(int i) {
  return {1 + (i % 5), 7, 2 + (i % 11)};
}

void ExpectParity(LanguageModel* model, serve::BatchScheduler* scheduler,
                  int n) {
  std::vector<std::future<GenerationResult>> results;
  for (int i = 0; i < n; ++i) {
    results.push_back(std::async(std::launch::async, [=] {
      return scheduler->Generate(RequestPrompt(i), RequestOptions(i));
    }));
  }
  for (int i = 0; i < n; ++i) {
    GenerationResult batched = results[i].get();
    GenerationResult reference =
        model->Generate(RequestPrompt(i), RequestOptions(i));
    EXPECT_EQ(batched.ids, reference.ids) << "request " << i;
    EXPECT_EQ(batched.finish, reference.finish) << "request " << i;
  }
}

TEST(QuantDecodeTest, Gpt2ParityAcrossBatchSizesInt8) {
  ScopedInt8 quant;
  Gpt2Lm model(QuantGpt2());
  for (int max_batch : {1, 2, 4, 8}) {
    serve::BatchSchedulerOptions options;
    options.max_batch = max_batch;
    serve::BatchScheduler scheduler(&model, options);
    ExpectParity(&model, &scheduler, 8);
    scheduler.Stop();
  }
}

TEST(QuantDecodeTest, LstmParityAcrossBatchSizesInt8) {
  ScopedInt8 quant;
  LstmConfig config;
  config.vocab_size = 53;
  config.embed_dim = 16;
  config.hidden_dim = 24;
  config.num_layers = 2;
  config.init_seed = 11;
  LstmLm model(config);
  for (int max_batch : {2, 4}) {
    serve::BatchSchedulerOptions options;
    options.max_batch = max_batch;
    serve::BatchScheduler scheduler(&model, options);
    ExpectParity(&model, &scheduler, 6);
    scheduler.Stop();
  }
}

TEST(QuantDecodeTest, Int8ChangesLogitsButStaysDeterministic) {
  // Sanity that the toggle is live: int8 and fp32 sequential runs of
  // the same seeded request may (and for this init generally do)
  // diverge, while two int8 runs are identical. Guards against a
  // dispatch regression that silently routes int8 back to fp32 and
  // turns every parity test above vacuous.
  Gpt2Lm model(QuantGpt2());
  GenerationOptions options;
  options.sampling.greedy = true;
  options.max_new_tokens = 24;
  const std::vector<int> prompt = {3, 1, 4};
  GenerationResult fp32 = model.Generate(prompt, options);
  GenerationResult int8_a, int8_b;
  {
    ScopedInt8 quant;
    int8_a = model.Generate(prompt, options);
    int8_b = model.Generate(prompt, options);
  }
  EXPECT_EQ(int8_a.ids, int8_b.ids);
  // fp32 vs int8 equality is possible in principle, so don't assert
  // inequality — assert instead that fp32 results are unaffected after
  // the toggle is restored.
  GenerationResult fp32_again = model.Generate(prompt, options);
  EXPECT_EQ(fp32.ids, fp32_again.ids);
}

}  // namespace
}  // namespace rt
