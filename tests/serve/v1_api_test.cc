// Wire-contract tests for the versioned /v1 API: every stable error
// code, the structured error envelope, parameter echoing, request ids,
// /v1/models, and the Deprecation header on the legacy aliases.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/backend_service.h"

namespace rt {
namespace {

StatusOr<Recipe> FakeGenerate(const GenerateRequest& req) {
  Recipe r;
  r.title = "dish";
  for (const auto& ing : req.ingredients) {
    r.ingredients.push_back({"1", "", ing, ""});
  }
  r.instructions = {"cook"};
  return r;
}

class V1ApiTest : public testing::Test {
 protected:
  void SetUp() override {
    BackendOptions options;
    options.models = {"word-lstm", "gpt2-medium"};
    backend_ = std::make_unique<BackendService>(
        [](int) -> BackendService::GenerateFn {
          return BackendService::WrapRecipeFn(FakeGenerate);
        },
        options);
    ASSERT_TRUE(backend_->Start(0).ok());
  }
  void TearDown() override {
    if (backend_) backend_->Stop();
  }

  /// POSTs to /v1/generate and returns the envelope's error code.
  std::string ErrorCodeFor(const std::string& body, int expect_status) {
    auto resp = HttpPost(backend_->port(), "/v1/generate", body);
    if (!resp.ok()) return "<transport error>";
    if (resp->status != expect_status) {
      return "<status " + std::to_string(resp->status) + ">";
    }
    auto doc = Json::Parse(resp->body);
    if (!doc.ok()) return "<unparseable body>";
    const Json& error = doc->Get("error");
    if (!error.Get("message").is_string() ||
        !error.Get("request_id").is_string()) {
      return "<incomplete envelope>";
    }
    return error.Get("code").AsString();
  }

  std::unique_ptr<BackendService> backend_;
};

TEST_F(V1ApiTest, EveryValidationErrorHasAStableCode) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"not json at all", "invalid_json"},
      {"[1,2,3]", "invalid_request"},
      {"{}", "missing_ingredients"},
      {R"({"ingredients":[]})", "missing_ingredients"},
      {R"({"ingredients":[42]})", "bad_ingredients"},
      {R"({"ingredients":["a"],"max_tokens":0})", "bad_max_tokens"},
      {R"({"ingredients":["a"],"max_tokens":9999})", "bad_max_tokens"},
      {R"({"ingredients":["a"],"max_tokens":"many"})", "bad_max_tokens"},
      {R"({"ingredients":["a"],"temperature":0})", "bad_temperature"},
      {R"({"ingredients":["a"],"temperature":11})", "bad_temperature"},
      {R"({"ingredients":["a"],"top_k":-1})", "bad_top_k"},
      {R"({"ingredients":["a"],"top_p":1.5})", "bad_top_p"},
      {R"({"ingredients":["a"],"top_p":-0.1})", "bad_top_p"},
      {R"({"ingredients":["a"],"greedy":"yes"})", "bad_greedy"},
      {R"({"ingredients":["a"],"beam_width":65})", "bad_beam_width"},
      {R"({"ingredients":["a"],"seed":"x"})", "bad_seed"},
      {R"({"ingredients":["a"],"model":3})", "bad_model"},
      {R"({"ingredients":["a"],"model":"no-such-model"})", "bad_model"},
      {R"({"ingredients":["a"],"temparature":1})", "unknown_field"},
  };
  for (const auto& [body, code] : cases) {
    EXPECT_EQ(ErrorCodeFor(body, 400), code) << "body: " << body;
  }
}

TEST_F(V1ApiTest, GenerateEchoesResolvedParamsAndRequestId) {
  auto resp = HttpPost(
      backend_->port(), "/v1/generate",
      R"({"ingredients":["rice"],"max_tokens":32,"temperature":0.5,)"
      R"("top_p":0.9,"greedy":true,"beam_width":4,"seed":11})");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("model").AsString(), "word-lstm");  // default model
  const Json& params = doc->Get("params");
  EXPECT_EQ(params.Get("max_tokens").AsNumber(), 32.0);
  EXPECT_NEAR(params.Get("temperature").AsNumber(), 0.5, 1e-9);
  EXPECT_NEAR(params.Get("top_p").AsNumber(), 0.9, 1e-9);
  EXPECT_TRUE(params.Get("greedy").AsBool());
  EXPECT_EQ(params.Get("beam_width").AsNumber(), 4.0);
  EXPECT_EQ(params.Get("seed").AsNumber(), 11.0);
  const std::string id = doc->Get("request_id").AsString();
  EXPECT_EQ(id.rfind("req-", 0), 0u);

  // Ids are unique per request.
  auto resp2 = HttpPost(backend_->port(), "/v1/generate",
                        R"({"ingredients":["rice"]})");
  ASSERT_TRUE(resp2.ok());
  auto doc2 = Json::Parse(resp2->body);
  ASSERT_TRUE(doc2.ok());
  EXPECT_NE(doc2->Get("request_id").AsString(), id);
}

TEST_F(V1ApiTest, NamedModelIsAcceptedAndEchoed) {
  auto resp =
      HttpPost(backend_->port(), "/v1/generate",
               R"({"ingredients":["rice"],"model":"gpt2-medium"})");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("model").AsString(), "gpt2-medium");
}

TEST_F(V1ApiTest, ModelsEndpointListsConfiguredModels) {
  auto resp = HttpGet(backend_->port(), "/v1/models");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  const auto& models = doc->Get("models").AsArray();
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0].Get("name").AsString(), "word-lstm");
  EXPECT_TRUE(models[0].Get("default").AsBool());
  EXPECT_EQ(models[1].Get("name").AsString(), "gpt2-medium");
  EXPECT_FALSE(models[1].Get("default").AsBool());
}

TEST_F(V1ApiTest, VersionedRoutesCarryNoDeprecationHeader) {
  for (const std::string path : {"/v1/healthz", "/v1/metrics",
                                 "/v1/models"}) {
    auto resp = HttpGet(backend_->port(), path);
    ASSERT_TRUE(resp.ok()) << path;
    EXPECT_EQ(resp->status, 200) << path;
    EXPECT_EQ(resp->headers.count("deprecation"), 0u) << path;
  }
}

TEST_F(V1ApiTest, LegacyAliasesAre404ByDefault) {
  // API v2 retires the pre-/v1 aliases; without
  // --enable-deprecated-routes the paths do not exist.
  for (const std::string path : {"/healthz", "/metrics"}) {
    auto resp = HttpGet(backend_->port(), path);
    ASSERT_TRUE(resp.ok()) << path;
    EXPECT_EQ(resp->status, 404) << path;
  }
  auto post = HttpPost(backend_->port(), "/api/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 404);
}

TEST(DeprecatedRoutesTest, AliasesAnswerWithDeprecationHeaderWhenEnabled) {
  BackendOptions options;
  options.enable_deprecated_routes = true;
  BackendService backend(
      [](int) -> BackendService::GenerateFn {
        return BackendService::WrapRecipeFn(FakeGenerate);
      },
      options);
  ASSERT_TRUE(backend.Start(0).ok());
  for (const std::string path : {"/healthz", "/metrics"}) {
    auto resp = HttpGet(backend.port(), path);
    ASSERT_TRUE(resp.ok()) << path;
    EXPECT_EQ(resp->status, 200) << path;
    auto it = resp->headers.find("deprecation");
    ASSERT_NE(it, resp->headers.end()) << path;
    EXPECT_EQ(it->second, "true") << path;
  }
  auto post = HttpPost(backend.port(), "/api/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 200);
  EXPECT_EQ(post->headers.count("deprecation"), 1u);
  backend.Stop();
}

TEST_F(V1ApiTest, HealthzReportsStatusAndBuildIdentity) {
  auto resp = HttpGet(backend_->port(), "/v1/healthz");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("status").AsString(), "ok");
  EXPECT_GE(doc->Get("uptime_s").AsNumber(), 0.0);
  EXPECT_FALSE(doc->Get("build_type").AsString().empty());
  EXPECT_FALSE(doc->Get("sanitizer").AsString().empty());
  EXPECT_FALSE(doc->Get("git_sha").AsString().empty());
}

TEST_F(V1ApiTest, UnknownPathGets404Envelope) {
  auto resp = HttpGet(backend_->port(), "/v2/everything");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 404);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("error").Get("code").AsString(), "not_found");
  EXPECT_TRUE(doc->Get("error").Get("request_id").is_string());
}

TEST(BackendLifecycleTest, StartAfterStopServesAgain) {
  BackendService backend(BackendService::WrapRecipeFn(FakeGenerate));
  ASSERT_TRUE(backend.Start(0).ok());
  backend.Stop();
  ASSERT_TRUE(backend.Start(0).ok());
  auto resp = HttpGet(backend.port(), "/v1/healthz");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  backend.Stop();
}

}  // namespace
}  // namespace rt
