// Line-atomicity test for the logger: many threads log concurrently
// into a redirected stderr and every captured line must come out whole
// — prefix, un-interleaved payload, trailing newline. Runs under the
// tsan-serve CI leg, which additionally proves the emit path is free of
// data races.

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.h"

namespace rt {
namespace {

/// Redirects STDERR_FILENO into a temp file for the object's lifetime.
class StderrCapture {
 public:
  StderrCapture() {
    path_ = testing::TempDir() + "/stderr_capture_XXXXXX";
    std::vector<char> tmpl(path_.begin(), path_.end());
    tmpl.push_back('\0');
    fd_ = mkstemp(tmpl.data());
    path_.assign(tmpl.data());
    saved_ = dup(STDERR_FILENO);
    fflush(stderr);
    dup2(fd_, STDERR_FILENO);
  }
  ~StderrCapture() {
    fflush(stderr);
    dup2(saved_, STDERR_FILENO);
    close(saved_);
    close(fd_);
    std::remove(path_.c_str());
  }

  std::string Contents() const {
    std::string text;
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr) return text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    return text;
  }

  std::string path_;
  int fd_ = -1;
  int saved_ = -1;
};

TEST(StructuredLoggingTest, ConcurrentLogLinesNeverTear) {
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  // Long, distinctive payload: torn writes would interleave fragments
  // of different threads' markers within one captured line.
  const std::string filler(120, 'x');

  const LogLevel saved_level = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::string captured;
  {
    StderrCapture capture;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &filler] {
        for (int i = 0; i < kLinesPerThread; ++i) {
          RT_LOG(Info) << "thread=" << t << " seq=" << i
                       << " payload=BEGIN" << filler << "END";
        }
      });
    }
    for (auto& th : threads) th.join();
    captured = capture.Contents();
  }
  SetLogLevel(saved_level);

  // Split on newlines and validate every line independently.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < captured.size()) {
    const size_t nl = captured.find('\n', start);
    ASSERT_NE(nl, std::string::npos)
        << "capture must end in a complete line";
    lines.push_back(captured.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(),
            static_cast<size_t>(kThreads * kLinesPerThread));

  const std::string expected_payload = "payload=BEGIN" + filler + "END";
  for (const std::string& line : lines) {
    // "[INFO structured_logging_test.cc:NN] thread=T seq=I payload=..."
    ASSERT_EQ(line.rfind("[INFO ", 0), 0u) << "torn line: " << line;
    EXPECT_NE(line.find("] thread="), std::string::npos)
        << "torn line: " << line;
    const size_t payload = line.find("payload=");
    ASSERT_NE(payload, std::string::npos) << "torn line: " << line;
    // The payload must run uninterrupted to the end of the line.
    EXPECT_EQ(line.substr(payload), expected_payload)
        << "torn line: " << line;
  }
}

}  // namespace
}  // namespace rt
