#include "serve/batch_scheduler.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "models/gpt2_model.h"
#include "models/lstm_model.h"

namespace rt {
namespace {

Gpt2Config SchedulerGpt2() {
  Gpt2Config config;
  config.vocab_size = 53;
  config.dim = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.max_seq_len = 64;
  config.init_seed = 11;
  return config;
}

/// Distinct per-request decoding options so co-scheduled rows exercise
/// different sampling setups inside one batch.
GenerationOptions RequestOptions(int i) {
  GenerationOptions options;
  switch (i % 3) {
    case 0:
      options.sampling.greedy = true;
      break;
    case 1:
      options.sampling.temperature = 0.8f;
      options.sampling.top_p = 0.9f;
      break;
    default:
      options.sampling.temperature = 1.1f;
      options.sampling.top_k = 12;
      break;
  }
  options.max_new_tokens = 10 + (i % 4);
  options.seed = 1000 + static_cast<uint64_t>(i) * 77;
  return options;
}

std::vector<int> RequestPrompt(int i) {
  return {1 + (i % 5), 7, 2 + (i % 11)};
}

/// Runs `n` concurrent Generate calls through the scheduler and checks
/// every result token-for-token and reason-for-reason against the
/// sequential LanguageModel::Generate path.
void ExpectParity(LanguageModel* model, serve::BatchScheduler* scheduler,
                  int n) {
  std::vector<std::future<GenerationResult>> results;
  for (int i = 0; i < n; ++i) {
    results.push_back(std::async(std::launch::async, [=] {
      return scheduler->Generate(RequestPrompt(i), RequestOptions(i));
    }));
  }
  for (int i = 0; i < n; ++i) {
    GenerationResult batched = results[i].get();
    GenerationResult reference =
        model->Generate(RequestPrompt(i), RequestOptions(i));
    EXPECT_EQ(batched.ids, reference.ids) << "request " << i;
    EXPECT_EQ(batched.finish, reference.finish) << "request " << i;
  }
}

TEST(BatchSchedulerTest, Gpt2ParityAcrossBatchSizes) {
  Gpt2Lm model(SchedulerGpt2());
  for (int max_batch : {1, 2, 4, 8}) {
    serve::BatchSchedulerOptions options;
    options.max_batch = max_batch;
    serve::BatchScheduler scheduler(&model, options);
    ExpectParity(&model, &scheduler, 8);
    scheduler.Stop();
  }
}

TEST(BatchSchedulerTest, LstmParityAcrossBatchSizes) {
  LstmConfig config;
  config.vocab_size = 53;
  config.embed_dim = 16;
  config.hidden_dim = 24;
  config.num_layers = 2;
  config.init_seed = 11;
  LstmLm model(config);
  for (int max_batch : {2, 4}) {
    serve::BatchSchedulerOptions options;
    options.max_batch = max_batch;
    serve::BatchScheduler scheduler(&model, options);
    ExpectParity(&model, &scheduler, 6);
    scheduler.Stop();
  }
}

TEST(BatchSchedulerTest, BeamRequestsRunInlineWithParity) {
  Gpt2Lm model(SchedulerGpt2());
  serve::BatchSchedulerOptions sched_options;
  sched_options.max_batch = 4;
  serve::BatchScheduler scheduler(&model, sched_options);

  GenerationOptions beam;
  beam.beam_width = 2;
  beam.max_new_tokens = 8;
  std::vector<int> prompt = {3, 1, 4};
  // A beam request co-scheduled with sampled ones: everyone keeps the
  // sequential path's exact output.
  auto beam_future = std::async(std::launch::async, [&] {
    return scheduler.Generate(prompt, beam);
  });
  ExpectParity(&model, &scheduler, 3);
  GenerationResult batched = beam_future.get();
  GenerationResult reference = model.Generate(prompt, beam);
  EXPECT_EQ(batched.ids, reference.ids);
  EXPECT_EQ(batched.finish, reference.finish);
}

TEST(BatchSchedulerTest, ExpiredRowEvictsMidBatchWithoutDisturbingOthers) {
  Gpt2Lm model(SchedulerGpt2());
  serve::BatchSchedulerOptions options;
  options.max_batch = 4;
  serve::BatchScheduler scheduler(&model, options);

  // One row joins with an already-expired deadline; it must finish as
  // deadline_exceeded with no tokens while its batchmates decode to
  // completion bitwise-unchanged.
  GenerationOptions doomed = RequestOptions(0);
  doomed.deadline = Deadline::AfterMillis(-1);
  auto doomed_future = std::async(std::launch::async, [&] {
    return scheduler.Generate(RequestPrompt(0), doomed);
  });
  ExpectParity(&model, &scheduler, 4);
  GenerationResult expired = doomed_future.get();
  EXPECT_EQ(expired.finish, FinishReason::kDeadlineExceeded);
  EXPECT_TRUE(expired.ids.empty());
  scheduler.Stop();
}

LstmConfig UnboundedLstm() {
  LstmConfig config;
  config.vocab_size = 31;
  config.embed_dim = 8;
  config.hidden_dim = 16;
  config.num_layers = 1;
  config.init_seed = 3;
  return config;
}

TEST(BatchSchedulerTest, CancelTokenEvictsWithPartialResult) {
  // The LSTM has no context bound, so this request genuinely runs
  // until cancelled.
  LstmLm model(UnboundedLstm());
  serve::BatchScheduler scheduler(&model);

  auto cancel = std::make_shared<CancelToken>();
  GenerationOptions options;
  options.sampling.greedy = true;
  options.max_new_tokens = 1000000;  // would outlive the test
  options.cancel = cancel;
  auto future = std::async(std::launch::async, [&] {
    return scheduler.Generate({2, 4, 6}, options);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cancel->RequestCancel();
  GenerationResult result = future.get();
  EXPECT_EQ(result.finish, FinishReason::kCancelled);
}

TEST(BatchSchedulerTest, StopDrainsInFlightAndRejectsNewWork) {
  LstmLm model(UnboundedLstm());
  auto scheduler = std::make_unique<serve::BatchScheduler>(&model);

  GenerationOptions options;
  options.sampling.greedy = true;
  options.max_new_tokens = 1000000;
  auto future = std::async(std::launch::async, [&] {
    return scheduler->Generate({5, 3}, options);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler->Stop();
  EXPECT_EQ(future.get().finish, FinishReason::kCancelled);

  GenerationResult after = scheduler->Generate({1, 2}, options);
  EXPECT_EQ(after.finish, FinishReason::kCancelled);
  EXPECT_TRUE(after.ids.empty());
}

TEST(BatchSchedulerTest, StatsReportOccupancyAndArenaReuse) {
  Gpt2Lm model(SchedulerGpt2());
  serve::BatchSchedulerOptions options;
  options.max_batch = 4;
  serve::BatchScheduler scheduler(&model, options);

  ExpectParity(&model, &scheduler, 8);
  serve::BatchSchedulerStats stats = scheduler.stats();
  EXPECT_GT(stats.steps, 0);
  EXPECT_GE(stats.row_steps, stats.steps);
  EXPECT_EQ(stats.admitted, 8);
  EXPECT_EQ(stats.completed, 8);
  EXPECT_EQ(stats.active, 0);
  EXPECT_EQ(stats.pending, 0);
  EXPECT_LE(stats.peak_occupancy, 4);
  EXPECT_GE(stats.mean_occupancy(), 1.0);
  const long long warm = stats.arena_heap_allocs;
  EXPECT_GT(warm, 0);

  // Another full wave reuses the pooled cache slots.
  ExpectParity(&model, &scheduler, 8);
  EXPECT_EQ(scheduler.stats().arena_heap_allocs, warm);
  scheduler.Stop();
}

}  // namespace
}  // namespace rt
