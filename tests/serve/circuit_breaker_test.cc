#include "serve/circuit_breaker.h"

#include <gtest/gtest.h>

namespace rt {
namespace {

// window=4 / min_samples=2 / ratio 1.0: two timeouts trip the breaker.
// cooldown_ms=0 so Allow() right after a trip already admits the probe.
CircuitBreakerOptions FastOptions() {
  CircuitBreakerOptions options;
  options.window = 4;
  options.min_samples = 2;
  options.trip_ratio = 1.0;
  options.cooldown_ms = 0;
  return options;
}

// Trips the breaker with two timed-out admissions.
void Trip(CircuitBreaker* breaker) {
  const CircuitBreaker::Ticket t1 = breaker->Allow();
  const CircuitBreaker::Ticket t2 = breaker->Allow();
  ASSERT_NE(t1, 0u);
  ASSERT_NE(t2, 0u);
  breaker->RecordTimeout(t1);
  breaker->RecordTimeout(t2);
  ASSERT_EQ(breaker->state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, AbandonedProbeDoesNotWedgeHalfOpen) {
  CircuitBreaker breaker(FastOptions());
  Trip(&breaker);
  const CircuitBreaker::Ticket probe = breaker.Allow();
  ASSERT_NE(probe, 0u);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.Allow(), 0u);  // only one probe at a time
  // The probe exits through a non-timeout path (500, cancel, shed):
  // the slot must free up for the next request to probe.
  breaker.RecordAbandoned(probe);
  const CircuitBreaker::Ticket probe2 = breaker.Allow();
  ASSERT_NE(probe2, 0u);
  breaker.RecordSuccess(probe2);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, OutcomeGuardAbandonsOnEarlyExit) {
  CircuitBreaker breaker(FastOptions());
  Trip(&breaker);
  {
    // An early return that never calls Success()/Timeout().
    CircuitBreaker::Outcome probe(breaker, breaker.Allow());
  }
  EXPECT_NE(breaker.Allow(), 0u);
}

TEST(CircuitBreakerTest, ProbeTimeoutReopens) {
  CircuitBreaker breaker(FastOptions());
  Trip(&breaker);
  const CircuitBreaker::Ticket probe = breaker.Allow();
  ASSERT_NE(probe, 0u);
  breaker.RecordTimeout(probe);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, StragglerOutcomesCannotDriveHalfOpen) {
  CircuitBreaker breaker(FastOptions());
  const CircuitBreaker::Ticket straggler_ok = breaker.Allow();
  const CircuitBreaker::Ticket straggler_slow = breaker.Allow();
  Trip(&breaker);
  const CircuitBreaker::Ticket probe = breaker.Allow();
  ASSERT_NE(probe, 0u);
  // A success from before the trip must not close the breaker on the
  // probe's behalf.
  breaker.RecordSuccess(straggler_ok);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // A timeout from before the trip must neither re-open nor free the
  // probe slot while the probe is still running.
  breaker.RecordTimeout(straggler_slow);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.Allow(), 0u);
  // Only the probe's own outcome decides.
  breaker.RecordSuccess(probe);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, StragglersCannotRetripRecoveredBreaker) {
  CircuitBreaker breaker(FastOptions());
  const CircuitBreaker::Ticket s1 = breaker.Allow();
  const CircuitBreaker::Ticket s2 = breaker.Allow();
  Trip(&breaker);
  const CircuitBreaker::Ticket probe = breaker.Allow();
  ASSERT_NE(probe, 0u);
  breaker.RecordSuccess(probe);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A burst of pre-trip timeouts lands after recovery: ignored.
  breaker.RecordTimeout(s1);
  breaker.RecordTimeout(s2);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ClosedWindowStillTripsOnFreshTimeouts) {
  CircuitBreaker breaker(FastOptions());
  Trip(&breaker);
  const CircuitBreaker::Ticket probe = breaker.Allow();
  ASSERT_NE(probe, 0u);
  breaker.RecordSuccess(probe);
  // Post-recovery tickets count as usual, so real regressions re-trip.
  Trip(&breaker);
}

}  // namespace
}  // namespace rt
