#include "serve/circuit_breaker.h"

#include <string>

#include <gtest/gtest.h>

#include "serve/backend_service.h"
#include "serve/http.h"
#include "util/json.h"

namespace rt {
namespace {

// window=4 / min_samples=2 / ratio 1.0: two timeouts trip the breaker.
// cooldown_ms=0 so Allow() right after a trip already admits the probe.
CircuitBreakerOptions FastOptions() {
  CircuitBreakerOptions options;
  options.window = 4;
  options.min_samples = 2;
  options.trip_ratio = 1.0;
  options.cooldown_ms = 0;
  return options;
}

// Trips the breaker with two timed-out admissions.
void Trip(CircuitBreaker* breaker) {
  const CircuitBreaker::Ticket t1 = breaker->Allow();
  const CircuitBreaker::Ticket t2 = breaker->Allow();
  ASSERT_NE(t1, 0u);
  ASSERT_NE(t2, 0u);
  breaker->RecordTimeout(t1);
  breaker->RecordTimeout(t2);
  ASSERT_EQ(breaker->state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, AbandonedProbeDoesNotWedgeHalfOpen) {
  CircuitBreaker breaker(FastOptions());
  Trip(&breaker);
  const CircuitBreaker::Ticket probe = breaker.Allow();
  ASSERT_NE(probe, 0u);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.Allow(), 0u);  // only one probe at a time
  // The probe exits through a non-timeout path (500, cancel, shed):
  // the slot must free up for the next request to probe.
  breaker.RecordAbandoned(probe);
  const CircuitBreaker::Ticket probe2 = breaker.Allow();
  ASSERT_NE(probe2, 0u);
  breaker.RecordSuccess(probe2);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, OutcomeGuardAbandonsOnEarlyExit) {
  CircuitBreaker breaker(FastOptions());
  Trip(&breaker);
  {
    // An early return that never calls Success()/Timeout().
    CircuitBreaker::Outcome probe(breaker, breaker.Allow());
  }
  EXPECT_NE(breaker.Allow(), 0u);
}

TEST(CircuitBreakerTest, ProbeTimeoutReopens) {
  CircuitBreaker breaker(FastOptions());
  Trip(&breaker);
  const CircuitBreaker::Ticket probe = breaker.Allow();
  ASSERT_NE(probe, 0u);
  breaker.RecordTimeout(probe);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, StragglerOutcomesCannotDriveHalfOpen) {
  CircuitBreaker breaker(FastOptions());
  const CircuitBreaker::Ticket straggler_ok = breaker.Allow();
  const CircuitBreaker::Ticket straggler_slow = breaker.Allow();
  Trip(&breaker);
  const CircuitBreaker::Ticket probe = breaker.Allow();
  ASSERT_NE(probe, 0u);
  // A success from before the trip must not close the breaker on the
  // probe's behalf.
  breaker.RecordSuccess(straggler_ok);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  // A timeout from before the trip must neither re-open nor free the
  // probe slot while the probe is still running.
  breaker.RecordTimeout(straggler_slow);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.Allow(), 0u);
  // Only the probe's own outcome decides.
  breaker.RecordSuccess(probe);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, StragglersCannotRetripRecoveredBreaker) {
  CircuitBreaker breaker(FastOptions());
  const CircuitBreaker::Ticket s1 = breaker.Allow();
  const CircuitBreaker::Ticket s2 = breaker.Allow();
  Trip(&breaker);
  const CircuitBreaker::Ticket probe = breaker.Allow();
  ASSERT_NE(probe, 0u);
  breaker.RecordSuccess(probe);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A burst of pre-trip timeouts lands after recovery: ignored.
  breaker.RecordTimeout(s1);
  breaker.RecordTimeout(s2);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ClosedWindowStillTripsOnFreshTimeouts) {
  CircuitBreaker breaker(FastOptions());
  Trip(&breaker);
  const CircuitBreaker::Ticket probe = breaker.Allow();
  ASSERT_NE(probe, 0u);
  breaker.RecordSuccess(probe);
  // Post-recovery tickets count as usual, so real regressions re-trip.
  Trip(&breaker);
}

/// A session callback that times out for model "slow" and succeeds for
/// everything else, so one model's breaker trips while the other stays
/// healthy.
BackendService::GenerateFn SlowModelDecode() {
  return [](const GenerateRequest& req) -> StatusOr<GenerateOutcome> {
    GenerateOutcome out;
    if (req.model == "slow") {
      out.finish = FinishReason::kDeadlineExceeded;
      return out;
    }
    out.recipe.title = "ok";
    out.recipe.ingredients.push_back({"1", "", "rice", ""});
    out.recipe.instructions = {"cook"};
    return out;
  };
}

TEST(PerModelBreakerTest, OneModelsTimeoutsDoNotFastFailAnother) {
  BackendOptions options;
  options.model_sessions = 1;
  options.models = {"fast", "slow"};
  options.breaker.window = 4;
  options.breaker.min_samples = 2;
  options.breaker.trip_ratio = 1.0;
  options.breaker.cooldown_ms = 60000;  // stays open for the whole test
  BackendService backend([](int) { return SlowModelDecode(); }, options);
  ASSERT_TRUE(backend.Start(0).ok());
  const std::string slow_body =
      R"({"ingredients":["rice"],"model":"slow"})";
  const std::string fast_body =
      R"({"ingredients":["rice"],"model":"fast"})";

  // Two timeouts open the "slow" breaker (min_samples=2, ratio 1.0).
  for (int i = 0; i < 2; ++i) {
    auto resp = HttpPost(backend.port(), "/v1/generate", slow_body);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 504);
  }
  auto rejected = HttpPost(backend.port(), "/v1/generate", slow_body);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 503);

  // The healthy model keeps flowing while its neighbor fast-fails.
  auto ok = HttpPost(backend.port(), "/v1/generate", fast_body);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);

  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  // Top-level breaker_state still tracks the default model ("fast").
  EXPECT_EQ(doc->Get("breaker_state").AsString(), "closed");
  const Json& breakers = doc->Get("breakers");
  EXPECT_EQ(breakers.Get("slow").Get("state").AsString(), "open");
  EXPECT_EQ(breakers.Get("fast").Get("state").AsString(), "closed");
  EXPECT_GE(breakers.Get("slow").Get("rejected").AsNumber(), 1.0);
  EXPECT_EQ(breakers.Get("fast").Get("rejected").AsNumber(), 0.0);
  EXPECT_GE(doc->Get("breaker_rejected").AsNumber(), 1.0);
  backend.Stop();
}

TEST(CircuitBreakerTest, RouterRetrySettlesTicketsOnBothReplicas) {
  // The router's retry path in miniature: a try on a failing replica
  // settles that replica's ticket as Timeout, and the retry on the
  // healthy replica settles its own ticket as Success. Neither breaker
  // is left with a dangling admission, and only the failing one
  // accumulates blame.
  CircuitBreakerOptions options = FastOptions();
  CircuitBreaker failing(options);
  CircuitBreaker healthy(options);

  for (int attempt = 0; attempt < 2; ++attempt) {
    {
      CircuitBreaker::Outcome outcome(failing, failing.Allow());
      outcome.Timeout();  // transport error / 500 from this replica
    }
    {
      CircuitBreaker::Outcome outcome(healthy, healthy.Allow());
      outcome.Success();  // the retry lands and completes
    }
  }
  EXPECT_EQ(failing.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(healthy.state(), CircuitBreaker::State::kClosed);

  // A 503 from a replica is no verdict on its generation health: the
  // router abandons the ticket (Outcome guard, no explicit settle) and
  // the breaker must neither trip nor count a sample.
  CircuitBreaker shedding(options);
  for (int i = 0; i < 8; ++i) {
    CircuitBreaker::Outcome outcome(shedding, shedding.Allow());
  }
  EXPECT_EQ(shedding.state(), CircuitBreaker::State::kClosed);
  const CircuitBreaker::Ticket after = shedding.Allow();
  EXPECT_NE(after, 0u);
  shedding.RecordSuccess(after);
}

TEST(PerModelBreakerTest, MaxBatchRaisesSessionsAndShowsInMetrics) {
  BackendOptions options;
  options.model_sessions = 2;
  options.max_batch = 4;
  BackendService backend([](int) { return SlowModelDecode(); }, options);
  // A batch can only fill if that many requests can hold sessions.
  EXPECT_EQ(backend.model_sessions(), 4);
  EXPECT_EQ(backend.max_batch(), 4);
  ASSERT_TRUE(backend.Start(0).ok());
  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("max_batch").AsNumber(), 4.0);
  backend.Stop();
}

}  // namespace
}  // namespace rt
