// Deadline propagation, cancellation, circuit breaking and fault
// injection across the serving stack. Every fault here is driven by the
// deterministic FaultInjector registry or by explicit deadlines — no
// reliance on racing real work, so the suite behaves the same under
// sanitizers and in CI.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "data/recipe_io.h"
#include "serve/backend_service.h"
#include "serve/http.h"
#include "text/bpe_tokenizer.h"
#include "text/vocab.h"
#include "util/fault_injection.h"
#include "util/json.h"

namespace rt {
namespace {

using std::chrono::milliseconds;

/// A session callback that decodes fake "tokens" at `token_ms` apiece,
/// honoring the request deadline and cancel token the way the real
/// pipeline does.
BackendService::GenerateFn SimulatedDecode(int token_ms, int max_tokens) {
  return [token_ms, max_tokens](
             const GenerateRequest& req) -> StatusOr<GenerateOutcome> {
    GenerateOutcome out;
    for (int i = 0; i < max_tokens; ++i) {
      if (req.cancel != nullptr && req.cancel->cancelled()) {
        out.finish = FinishReason::kCancelled;
        return out;
      }
      if (req.deadline.expired()) {
        out.finish = FinishReason::kDeadlineExceeded;
        return out;
      }
      std::this_thread::sleep_for(milliseconds(token_ms));
      ++out.tokens_generated;
    }
    out.finish = FinishReason::kMaxTokens;
    out.recipe.title = "done";
    out.recipe.ingredients.push_back({"1", "", "rice", ""});
    out.recipe.instructions = {"cook"};
    return out;
  };
}

Json ErrorOf(const HttpClientResponse& resp) {
  auto doc = Json::Parse(resp.body);
  EXPECT_TRUE(doc.ok()) << resp.body;
  return doc.ok() ? doc->Get("error") : Json{};
}

class FaultInjectionServeTest : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }
};

TEST_F(FaultInjectionServeTest, TimeoutAnswers504EnvelopeWithProgress) {
  BackendOptions options;
  options.model_sessions = 1;
  options.default_timeout_ms = 100;
  BackendService backend(
      [](int) { return SimulatedDecode(/*token_ms=*/5, /*max_tokens=*/1000); },
      options);
  ASSERT_TRUE(backend.Start(0).ok());
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 504);
  Json error = ErrorOf(*resp);
  EXPECT_EQ(error.Get("code").AsString(), "deadline_exceeded");
  EXPECT_TRUE(error.Get("request_id").is_string());
  const Json& details = error.Get("details");
  EXPECT_EQ(details.Get("timeout_ms").AsNumber(), 100.0);
  // It made partial progress before the budget ran out.
  EXPECT_GT(details.Get("tokens_generated").AsNumber(), 0.0);
  EXPECT_LT(details.Get("tokens_generated").AsNumber(), 1000.0);

  // The session slot is immediately reusable: a request that fits its
  // budget succeeds right after the timeout.
  auto quick = HttpPost(backend.port(), "/v1/generate",
                        R"({"ingredients":["rice"],"max_tokens":5})");
  // (SimulatedDecode ignores max_tokens from the request; give it time.)
  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_GE(doc->Get("generate_deadline_exceeded").AsNumber(), 1.0);
  backend.Stop();
}

TEST_F(FaultInjectionServeTest, ClientTimeoutOverridesAndIsCapped) {
  BackendOptions options;
  options.model_sessions = 1;
  options.default_timeout_ms = 100;
  options.max_timeout_ms = 150;
  BackendService backend(
      [](int) { return SimulatedDecode(/*token_ms=*/1, /*max_tokens=*/20); },
      options);
  ASSERT_TRUE(backend.Start(0).ok());

  // Fast generation + huge client ask: succeeds, params echo the cap.
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice"],"timeout_ms":99999})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("params").Get("timeout_ms").AsNumber(), 150.0);
  EXPECT_EQ(doc->Get("finish_reason").AsString(), "max_tokens");
  EXPECT_EQ(doc->Get("tokens_generated").AsNumber(), 20.0);

  // A tiny client budget forces the timeout path with its own number.
  auto timed_out = HttpPost(
      backend.port(), "/v1/generate",
      R"({"ingredients":["rice"],"timeout_ms":5})");
  ASSERT_TRUE(timed_out.ok());
  EXPECT_EQ(timed_out->status, 504);
  EXPECT_EQ(ErrorOf(*timed_out).Get("details").Get("timeout_ms").AsNumber(),
            5.0);

  // Validation: non-numeric / negative timeout_ms is a stable 400.
  auto bad = HttpPost(backend.port(), "/v1/generate",
                      R"({"ingredients":["rice"],"timeout_ms":-3})");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  EXPECT_EQ(ErrorOf(*bad).Get("code").AsString(), "bad_timeout_ms");
  backend.Stop();
}

TEST_F(FaultInjectionServeTest, BreakerTripsFastFailsAndRecovers) {
  // should_timeout is flipped by the test thread and read by workers.
  std::atomic<bool> should_timeout{true};
  BackendOptions options;
  options.model_sessions = 1;
  options.breaker.window = 4;
  options.breaker.min_samples = 2;
  options.breaker.trip_ratio = 1.0;
  options.breaker.cooldown_ms = 100;
  BackendService backend(
      [&should_timeout](int) -> BackendService::GenerateFn {
        return [&should_timeout](const GenerateRequest&)
                   -> StatusOr<GenerateOutcome> {
          GenerateOutcome out;
          if (should_timeout.load()) {
            out.finish = FinishReason::kDeadlineExceeded;
            return out;
          }
          out.recipe.title = "ok";
          out.recipe.instructions = {"cook"};
          return out;
        };
      },
      options);
  ASSERT_TRUE(backend.Start(0).ok());
  const std::string body = R"({"ingredients":["rice"]})";

  // Two timeouts trip the breaker (min_samples=2, ratio 1.0).
  for (int i = 0; i < 2; ++i) {
    auto resp = HttpPost(backend.port(), "/v1/generate", body);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 504);
  }

  // Open: fast-fail 503 with Retry-After, the generator never runs.
  auto rejected = HttpPost(backend.port(), "/v1/generate", body);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 503);
  EXPECT_EQ(ErrorOf(*rejected).Get("code").AsString(), "circuit_open");
  EXPECT_FALSE(rejected->headers.find("retry-after") ==
               rejected->headers.end());

  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("breaker_state").AsString(), "open");
  EXPECT_GE(doc->Get("breaker_rejected").AsNumber(), 1.0);

  // After the cooldown a healthy probe closes the breaker again.
  should_timeout.store(false);
  std::this_thread::sleep_for(milliseconds(300));
  auto probe = HttpPost(backend.port(), "/v1/generate", body);
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->status, 200);
  auto after = HttpPost(backend.port(), "/v1/generate", body);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->status, 200);

  metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("breaker_state").AsString(), "closed");
  backend.Stop();
}

TEST_F(FaultInjectionServeTest, SlowRequestReadShedsBeforeGeneration) {
  // http.read.slow stalls the server's first socket read for 150 ms;
  // with a 30 ms budget anchored at admission, the handler sheds the
  // request before the generator ever runs.
  std::atomic<int> generator_runs{0};
  BackendOptions options;
  options.model_sessions = 1;
  options.default_timeout_ms = 30;
  BackendService backend(
      [&generator_runs](int) -> BackendService::GenerateFn {
        return [&generator_runs](const GenerateRequest&)
                   -> StatusOr<GenerateOutcome> {
          generator_runs.fetch_add(1);
          GenerateOutcome out;
          out.recipe.title = "ok";
          return out;
        };
      },
      options);
  ASSERT_TRUE(backend.Start(0).ok());

  FaultInjector::FaultSpec spec;
  spec.count = 1;
  spec.amount = 150;
  FaultInjector::Instance().Arm("http.read.slow", spec);
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 504);
  Json error = ErrorOf(*resp);
  EXPECT_EQ(error.Get("code").AsString(), "deadline_exceeded");
  EXPECT_EQ(error.Get("details").Get("tokens_generated").AsNumber(), 0.0);
  EXPECT_EQ(generator_runs.load(), 0);
  EXPECT_EQ(FaultInjector::Instance().fires("http.read.slow"), 1);
  backend.Stop();
}

TEST_F(FaultInjectionServeTest, TrickledReadsStillServeRequests) {
  // http.read.short forces the server to consume the request a few
  // bytes per recv; parsing must still assemble it correctly.
  BackendService backend(BackendService::WrapRecipeFn(
      [](const GenerateRequest& req) -> StatusOr<Recipe> {
        Recipe r;
        r.title = "dish";
        for (const auto& ing : req.ingredients) {
          r.ingredients.push_back({"1", "", ing, ""});
        }
        r.instructions = {"cook"};
        return r;
      }));
  ASSERT_TRUE(backend.Start(0).ok());
  FaultInjector::FaultSpec spec;
  spec.amount = 3;
  FaultInjector::Instance().Arm("http.read.short", spec);
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice","beans"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  // The request definitely arrived in many small reads.
  EXPECT_GT(FaultInjector::Instance().fires("http.read.short"), 5);
  backend.Stop();
}

TEST_F(FaultInjectionServeTest, OversizedShortReadAmountIsClamped) {
  // An `amount` far beyond the server's 4 KiB read buffer must be
  // clamped, not handed to recv() verbatim (that was a stack overflow,
  // caught by ASan).
  BackendService backend(BackendService::WrapRecipeFn(
      [](const GenerateRequest&) -> StatusOr<Recipe> {
        Recipe r;
        r.title = "dish";
        r.ingredients.push_back({"1", "", "rice", ""});
        r.instructions = {"cook"};
        return r;
      }));
  ASSERT_TRUE(backend.Start(0).ok());
  FaultInjector::FaultSpec spec;
  spec.amount = 1 << 20;  // 1 MiB "cap" vs. a 4 KiB buffer
  FaultInjector::Instance().Arm("http.read.short", spec);
  // A body well past 4 KiB keeps the socket buffer full enough that an
  // unclamped recv() really would write past the stack buffer.
  std::string body = R"({"ingredients":["rice")";
  for (int i = 0; i < 4000; ++i) body += R"(,"rice")";
  body += "]}";
  auto resp = HttpPost(backend.port(), "/v1/generate", body);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  backend.Stop();
}

TEST_F(FaultInjectionServeTest, ShortWritesStillDeliverResponses) {
  HttpServer server;
  ASSERT_TRUE(server
                  .Route("GET", "/ok",
                         [](const HttpRequest&) {
                           return HttpResponse::Text(
                               std::string(2000, 'x'));
                         })
                  .ok());
  ASSERT_TRUE(server.Start(0).ok());
  // skip=1: the client's own send (also instrumented) passes whole,
  // then every server-side chunk is capped at 7 bytes.
  FaultInjector::FaultSpec spec;
  spec.skip = 1;
  spec.amount = 7;
  FaultInjector::Instance().Arm("http.write.short", spec);
  auto resp = HttpGet(server.port(), "/ok");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body.size(), 2000u);
  EXPECT_GT(FaultInjector::Instance().fires("http.write.short"), 100);
  server.Stop();
}

TEST_F(FaultInjectionServeTest, FailedWriteClosesConnectionCleanly) {
  HttpServer server;
  ASSERT_TRUE(server
                  .Route("GET", "/ok",
                         [](const HttpRequest&) {
                           return HttpResponse::Text("fine");
                         })
                  .ok());
  ASSERT_TRUE(server.Start(0).ok());
  // skip=1 lets the client's request out; the server's response write
  // then fails, so the client sees a dead connection, not a hang.
  FaultInjector::FaultSpec spec;
  spec.skip = 1;
  spec.count = 1;
  FaultInjector::Instance().Arm("http.write.fail", spec);
  auto resp = HttpGet(server.port(), "/ok");
  EXPECT_FALSE(resp.ok());
  FaultInjector::Instance().Reset();
  // The server survives and serves the next request normally.
  auto again = HttpGet(server.port(), "/ok");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 200);
  server.Stop();
}

TEST_F(FaultInjectionServeTest, InjectedBackendFailureIs500) {
  BackendOptions options;
  BackendService backend(
      [](int) { return SimulatedDecode(/*token_ms=*/0, /*max_tokens=*/1); },
      options);
  ASSERT_TRUE(backend.Start(0).ok());
  FaultInjector::FaultSpec spec;
  spec.count = 1;
  FaultInjector::Instance().Arm("backend.generate.fail", spec);
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 500);
  EXPECT_EQ(ErrorOf(*resp).Get("code").AsString(), "generation_failed");
  // Disarmed after one fire: the next request is healthy.
  auto again = HttpPost(backend.port(), "/v1/generate",
                        R"({"ingredients":["rice"]})");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 200);
  backend.Stop();
}

TEST_F(FaultInjectionServeTest, InjectedSessionLatencyBlowsTheBudget) {
  BackendOptions options;
  options.default_timeout_ms = 40;
  BackendService backend(
      [](int) { return SimulatedDecode(/*token_ms=*/0, /*max_tokens=*/1); },
      options);
  ASSERT_TRUE(backend.Start(0).ok());
  FaultInjector::FaultSpec spec;
  spec.count = 1;
  spec.amount = 120;
  FaultInjector::Instance().Arm("backend.generate.latency", spec);
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 504);
  EXPECT_EQ(ErrorOf(*resp).Get("code").AsString(), "deadline_exceeded");
  backend.Stop();
}

TEST_F(FaultInjectionServeTest, SlowlorisHeaderTrickleGets408) {
  HttpServerOptions http;
  http.read_timeout_ms = 150;
  http.idle_timeout_ms = 2000;
  HttpServer server(http);
  ASSERT_TRUE(server
                  .Route("GET", "/ok",
                         [](const HttpRequest&) {
                           return HttpResponse::Text("fine");
                         })
                  .ok());
  ASSERT_TRUE(server.Start(0).ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  // Half a request line, then silence: the classic slowloris hold.
  const std::string partial = "GET /ok HTTP/1.1\r\nHost: 1";
  ASSERT_GT(::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL), 0);
  std::string out;
  char buf[2048];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(out.find("408"), std::string::npos) << out;
  EXPECT_NE(out.find("request_timeout"), std::string::npos) << out;
  server.Stop();
}

TEST_F(FaultInjectionServeTest, DataLoadTruncateSurfacesStructuredError) {
  // A torn read of the recipes file must surface as a structured
  // InvalidArgument naming the bad line — never a crash or a silently
  // smaller dataset.
  std::vector<Recipe> recipes(3);
  for (int i = 0; i < 3; ++i) {
    recipes[i].id = i;
    recipes[i].title = "dish " + std::to_string(i);
    recipes[i].ingredients.push_back({"1", "", "rice", ""});
    recipes[i].instructions = {"cook"};
  }
  const std::string path = testing::TempDir() + "/fault_recipes.jsonl";
  ASSERT_TRUE(SaveRecipesJsonl(recipes, path).ok());

  FaultInjector::FaultSpec spec;
  spec.count = 1;
  spec.amount = 10;  // chop mid-record: last line no longer parses
  FaultInjector::Instance().Arm("data.load.truncate", spec);
  auto truncated = LoadRecipesJsonl(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("line"), std::string::npos)
      << truncated.status().ToString();
  EXPECT_EQ(FaultInjector::Instance().fires("data.load.truncate"), 1);

  // The fault fired once and the file on disk is untouched: the next
  // load round-trips all three records.
  auto clean = LoadRecipesJsonl(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->size(), 3u);
  EXPECT_EQ((*clean)[2].title, "dish 2");
}

TEST_F(FaultInjectionServeTest, VocabCorruptionSurfacesDuplicateToken) {
  Vocab vocab;
  vocab.AddToken("<pad>");
  vocab.AddToken("stir");
  vocab.AddToken("pot");
  const std::string path = testing::TempDir() + "/fault_vocab.txt";
  ASSERT_TRUE(vocab.SaveToFile(path).ok());

  FaultInjector::FaultSpec spec;
  spec.count = 1;
  FaultInjector::Instance().Arm("tokenizer.vocab.corrupt", spec);
  auto corrupt = Vocab::LoadFromFile(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("duplicate token"),
            std::string::npos)
      << corrupt.status().ToString();

  auto clean = Vocab::LoadFromFile(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->size(), 3);
  EXPECT_EQ(clean->GetId("pot"), 2);
}

TEST_F(FaultInjectionServeTest, BpeCorruptionSurfacesBadHeader) {
  BpeTokenizer bpe = BpeTokenizer::Train(
      {"stir the pot", "stir the broth", "the pot simmers"}, 64);
  const std::string path = testing::TempDir() + "/fault_bpe.txt";
  ASSERT_TRUE(bpe.SaveToFile(path).ok());

  FaultInjector::FaultSpec spec;
  spec.count = 1;
  FaultInjector::Instance().Arm("tokenizer.vocab.corrupt", spec);
  auto corrupt = BpeTokenizer::LoadFromFile(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("bad BPE header"),
            std::string::npos)
      << corrupt.status().ToString();

  auto clean = BpeTokenizer::LoadFromFile(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->vocab().size(), bpe.vocab().size());
}

TEST_F(FaultInjectionServeTest, StopCancelsInFlightGeneration) {
  BackendOptions options;
  options.model_sessions = 1;
  options.default_timeout_ms = 10000;  // the drain, not the deadline, ends it
  BackendService backend(
      [](int) {
        return SimulatedDecode(/*token_ms=*/5, /*max_tokens=*/2000);
      },
      options);
  ASSERT_TRUE(backend.Start(0).ok());
  const int port = backend.port();

  StatusOr<HttpClientResponse> resp = Status::Internal("not run");
  std::thread client([&resp, port] {
    resp = HttpPost(port, "/v1/generate", R"({"ingredients":["rice"]})");
  });
  // Give the request time to reach the generation loop, then drain.
  std::this_thread::sleep_for(milliseconds(100));
  backend.Stop();
  client.join();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 503);
  EXPECT_EQ(ErrorOf(*resp).Get("code").AsString(), "shutting_down");

  // A stopped-and-restarted service generates again (token was re-armed).
  ASSERT_TRUE(backend.Start(0).ok());
  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_GE(doc->Get("generate_cancelled").AsNumber(), 1.0);
  backend.Stop();
}

}  // namespace
}  // namespace rt
