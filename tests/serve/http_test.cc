#include "serve/http.h"

#include <gtest/gtest.h>

namespace rt {
namespace {

class HttpServerTest : public testing::Test {
 protected:
  void TearDown() override { server_.Stop(); }
  HttpServer server_;
};

TEST_F(HttpServerTest, ServesRegisteredRoute) {
  server_.Route("GET", "/hello", [](const HttpRequest&) {
    return HttpResponse::Text("world");
  });
  ASSERT_TRUE(server_.Start(0).ok());
  ASSERT_GT(server_.port(), 0);
  auto resp = HttpGet(server_.port(), "/hello");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "world");
}

TEST_F(HttpServerTest, UnknownPathIs404) {
  ASSERT_TRUE(server_.Start(0).ok());
  auto resp = HttpGet(server_.port(), "/nope");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 404);
}

TEST_F(HttpServerTest, PostBodyDelivered) {
  server_.Route("POST", "/echo", [](const HttpRequest& req) {
    return HttpResponse::Text(req.body);
  });
  ASSERT_TRUE(server_.Start(0).ok());
  auto resp = HttpPost(server_.port(), "/echo", "payload 123");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "payload 123");
}

TEST_F(HttpServerTest, MethodMismatchedRouteNotUsed) {
  server_.Route("POST", "/only-post", [](const HttpRequest&) {
    return HttpResponse::Text("posted");
  });
  ASSERT_TRUE(server_.Start(0).ok());
  auto resp = HttpGet(server_.port(), "/only-post");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 404);
}

TEST_F(HttpServerTest, PrefixRouteMatches) {
  server_.RoutePrefix("GET", "/api/", [](const HttpRequest& req) {
    return HttpResponse::Text("api:" + req.path);
  });
  ASSERT_TRUE(server_.Start(0).ok());
  auto resp = HttpGet(server_.port(), "/api/anything/here");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "api:/api/anything/here");
}

TEST_F(HttpServerTest, QueryStringSeparated) {
  server_.Route("GET", "/q", [](const HttpRequest& req) {
    return HttpResponse::Text(req.query);
  });
  ASSERT_TRUE(server_.Start(0).ok());
  auto resp = HttpGet(server_.port(), "/q?a=1&b=2");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "a=1&b=2");
}

TEST_F(HttpServerTest, HeadersLowercasedAndTrimmed) {
  server_.Route("POST", "/h", [](const HttpRequest& req) {
    auto it = req.headers.find("content-type");
    return HttpResponse::Text(
        it == req.headers.end() ? "missing" : it->second);
  });
  ASSERT_TRUE(server_.Start(0).ok());
  auto resp = HttpPost(server_.port(), "/h", "x", "application/json");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "application/json");
}

TEST_F(HttpServerTest, ServesManySequentialRequests) {
  server_.Route("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse::Text("pong");
  });
  ASSERT_TRUE(server_.Start(0).ok());
  for (int i = 0; i < 25; ++i) {
    auto resp = HttpGet(server_.port(), "/ping");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->body, "pong");
  }
  EXPECT_EQ(server_.requests_served(), 25);
}

TEST_F(HttpServerTest, StopIsIdempotentAndRestartable) {
  ASSERT_TRUE(server_.Start(0).ok());
  const int port = server_.port();
  server_.Stop();
  server_.Stop();
  EXPECT_FALSE(HttpGet(port, "/").ok());  // no longer listening
  ASSERT_TRUE(server_.Start(0).ok());     // can start again
  auto resp = HttpGet(server_.port(), "/missing");
  ASSERT_TRUE(resp.ok());
}

TEST_F(HttpServerTest, DoubleStartRejected) {
  ASSERT_TRUE(server_.Start(0).ok());
  EXPECT_EQ(server_.Start(0).code(), StatusCode::kFailedPrecondition);
}

TEST(HttpClientTest, ConnectFailureIsIoError) {
  // Port 1 is essentially never listening.
  auto resp = HttpGet(1, "/");
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace rt
