#include "util/json.h"

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->AsBool(), true);
  EXPECT_EQ(Json::Parse("false")->AsBool(), false);
  EXPECT_DOUBLE_EQ(Json::Parse("42")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(Json::Parse("-3.5e2")->AsNumber(), -350.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParseNestedStructures) {
  auto doc = Json::Parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->is_object());
  const Json& a = doc->Get("a");
  ASSERT_TRUE(a.is_array());
  EXPECT_EQ(a.AsArray().size(), 3u);
  EXPECT_TRUE(a.AsArray()[2].Get("b").AsBool());
  EXPECT_TRUE(doc->Get("c").is_null());
  EXPECT_TRUE(doc->Get("missing").is_null());
}

TEST(JsonTest, StringEscapes) {
  auto doc = Json::Parse(R"("line\nbreak \"quoted\" tab\t back\\slash")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "line\nbreak \"quoted\" tab\t back\\slash");
}

TEST(JsonTest, UnicodeEscape) {
  auto doc = Json::Parse("\"caf\\u00e9\"");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "caf\xc3\xa9");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());  // trailing garbage
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

TEST(JsonTest, RejectsDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, DumpRoundTrip) {
  const std::string src =
      R"({"arr":[1,2.5,"x"],"obj":{"k":null},"s":"a\"b","t":true})";
  auto doc = Json::Parse(src);
  ASSERT_TRUE(doc.ok());
  auto re = Json::Parse(doc->Dump());
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*doc, *re);
}

TEST(JsonTest, DumpDeterministicSortedKeys) {
  Json a{Json::Object{}};
  a.Set("zeta", 1).Set("alpha", 2);
  EXPECT_EQ(a.Dump(), R"({"alpha":2,"zeta":1})");
}

TEST(JsonTest, IntegersDumpWithoutDecimal) {
  EXPECT_EQ(Json(5).Dump(), "5");
  EXPECT_EQ(Json(5.5).Dump(), "5.5");
}

TEST(JsonTest, BuildersCreateContainers) {
  Json obj;
  obj.Set("list", Json(Json::Array{}));
  Json arr;
  arr.Append(1).Append("two");
  obj.Set("arr", arr);
  EXPECT_TRUE(obj.is_object());
  EXPECT_EQ(obj.Get("arr").AsArray().size(), 2u);
}

TEST(JsonTest, ControlCharsEscapedOnDump) {
  Json s(std::string("a\x01""b"));
  EXPECT_EQ(s.Dump(), "\"a\\u0001b\"");
  auto back = Json::Parse(s.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsString(), "a\x01""b");
}

}  // namespace
}  // namespace rt
