// The SchedPolicy tentpole: one slack-ordered (EDF) policy behind every
// queue in the request path. Covers the SchedKey/EdfQueue/SlotWaitQueue
// primitives, the slack-ordering property at the batch scheduler, the
// FIFO-degenerate case (uniform deadlines => exact arrival order with
// bitwise-identical tokens), mid-batch preemption with a valid partial
// result, the --batch-share occupancy cap, shed-at-admission of
// provably-unmeetable rows, and the backend's `priority` param /
// x-rt-priority header plumbing under concurrent session contention.

#include "serve/sched_policy.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "models/lstm_model.h"
#include "serve/backend_service.h"
#include "serve/batch_scheduler.h"
#include "serve/http.h"
#include "util/json.h"

namespace rt {
namespace {

using serve::EdfQueue;
using serve::SchedKey;
using serve::SchedPolicy;
using serve::SlotWaitQueue;
using serve::TrafficClass;
using std::chrono::milliseconds;

SchedKey KeyAt(SchedKey::Clock::time_point deadline, TrafficClass cls,
               uint64_t seq) {
  SchedKey key;
  key.deadline = deadline;
  key.cls = cls;
  key.seq = seq;
  return key;
}

TEST(SchedKeyTest, OrdersByDeadlineThenClassThenArrival) {
  const auto now = SchedKey::Clock::now();
  const SchedKey tight = KeyAt(now + milliseconds(10),
                               TrafficClass::kBatch, 9);
  const SchedKey loose = KeyAt(now + milliseconds(500),
                               TrafficClass::kInteractive, 1);
  // Tighter deadline wins even against an earlier-arrived interactive.
  EXPECT_TRUE(tight.Before(loose));
  EXPECT_FALSE(loose.Before(tight));

  // Equal deadlines: interactive beats batch regardless of arrival.
  const SchedKey inter = KeyAt(now + milliseconds(50),
                               TrafficClass::kInteractive, 7);
  const SchedKey batch = KeyAt(now + milliseconds(50),
                               TrafficClass::kBatch, 2);
  EXPECT_TRUE(inter.Before(batch));
  EXPECT_FALSE(batch.Before(inter));

  // Same deadline and class: arrival order.
  const SchedKey first = KeyAt(now + milliseconds(50),
                               TrafficClass::kInteractive, 1);
  const SchedKey second = KeyAt(now + milliseconds(50),
                                TrafficClass::kInteractive, 2);
  EXPECT_TRUE(first.Before(second));
  EXPECT_FALSE(second.Before(first));

  // No deadline means infinite slack: always after any finite deadline.
  SchedKey infinite;
  infinite.seq = 0;
  EXPECT_TRUE(tight.Before(infinite));
  EXPECT_FALSE(infinite.Before(tight));
}

TEST(SchedPolicyTest, UnmeetableOnlyOnceTheDeadlinePassed) {
  const auto now = SchedKey::Clock::now();
  EXPECT_FALSE(SchedPolicy::Unmeetable(
      KeyAt(now + milliseconds(50), TrafficClass::kInteractive, 0), now));
  EXPECT_TRUE(SchedPolicy::Unmeetable(
      KeyAt(now - milliseconds(1), TrafficClass::kInteractive, 0), now));
  // No deadline is never unmeetable.
  EXPECT_FALSE(SchedPolicy::Unmeetable(SchedKey{}, now));
}

TEST(SchedPolicyTest, RetryAfterIsMedianPositiveSlackCeiledToSeconds) {
  // Median of {1500, 2500, 9000} -> 2500 ms -> ceil 3 s.
  EXPECT_EQ(SchedPolicy::RetryAfterSeconds({2500, 9000, 1500}), 3);
  // Negative (already-unmeetable) entries are dropped before the
  // median; {-5, 800} -> 800 ms -> 1 s.
  EXPECT_EQ(SchedPolicy::RetryAfterSeconds({-5, 800}), 1);
  // Empty / all-expired queues fall back to the 1 s floor.
  EXPECT_EQ(SchedPolicy::RetryAfterSeconds({}), 1);
  EXPECT_EQ(SchedPolicy::RetryAfterSeconds({-100, -2}), 1);
}

TEST(SchedPolicyTest, ParseTrafficClassAcceptsOnlyKnownNames) {
  TrafficClass cls = TrafficClass::kInteractive;
  EXPECT_TRUE(serve::ParseTrafficClass("batch", &cls));
  EXPECT_EQ(cls, TrafficClass::kBatch);
  EXPECT_TRUE(serve::ParseTrafficClass("interactive", &cls));
  EXPECT_EQ(cls, TrafficClass::kInteractive);
  EXPECT_FALSE(serve::ParseTrafficClass("urgent", &cls));
  EXPECT_FALSE(serve::ParseTrafficClass("", &cls));
}

TEST(EdfQueueTest, PopsTightestDeadlineFirst) {
  const auto now = SchedKey::Clock::now();
  EdfQueue<int> queue;
  queue.Push(KeyAt(now + milliseconds(300), TrafficClass::kInteractive, 0),
             300);
  queue.Push(KeyAt(now + milliseconds(100), TrafficClass::kInteractive, 1),
             100);
  queue.Push(KeyAt(now + milliseconds(200), TrafficClass::kInteractive, 2),
             200);
  EXPECT_EQ(queue.PopBest().value, 100);
  EXPECT_EQ(queue.PopBest().value, 200);
  EXPECT_EQ(queue.PopBest().value, 300);
  EXPECT_TRUE(queue.empty());
}

TEST(EdfQueueTest, UniformDeadlinesDegradeToArrivalOrder) {
  // The FIFO-degenerate property at the queue level: identical
  // deadlines leave seq as the only discriminator.
  const auto deadline = SchedKey::Clock::now() + milliseconds(100);
  EdfQueue<int> queue;
  for (int i = 0; i < 8; ++i) {
    queue.Push(KeyAt(deadline, TrafficClass::kInteractive,
                     static_cast<uint64_t>(i)),
               i);
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(queue.PopBest().value, i);
}

TEST(SlotWaitQueueTest, GrantsSlotToTightestWaiter) {
  const auto now = SchedKey::Clock::now();
  SlotWaitQueue queue;
  SlotWaitQueue::Waiter loose;
  loose.key = KeyAt(now + milliseconds(900), TrafficClass::kInteractive, 0);
  SlotWaitQueue::Waiter tight;
  tight.key = KeyAt(now + milliseconds(50), TrafficClass::kInteractive, 1);
  queue.Enqueue(&loose);
  queue.Enqueue(&tight);

  SlotWaitQueue::Waiter* granted = queue.GrantBest(3);
  ASSERT_EQ(granted, &tight);
  EXPECT_TRUE(tight.granted);
  EXPECT_EQ(tight.slot, 3);

  // Remove reports whether the waiter was still parked: the loose
  // waiter is, the granted one is not (its slot must be returned by
  // the caller instead).
  EXPECT_FALSE(queue.Remove(&tight));
  EXPECT_TRUE(queue.Remove(&loose));
  EXPECT_EQ(queue.GrantBest(0), nullptr);
}

LstmConfig TinyLstm() {
  LstmConfig config;
  config.vocab_size = 31;
  config.embed_dim = 8;
  config.hidden_dim = 16;
  config.num_layers = 1;
  config.init_seed = 3;
  return config;
}

/// A request that runs until cancelled, pinning the scheduler's only
/// slot(s) while the test lines up the pending queue it wants. The
/// tiny LSTM steps in well under a microsecond on an idle machine, so
/// a blocker bounded only by max_new_tokens can burn through its whole
/// token budget (finishing kMaxTokens and freeing the slot) before the
/// test has queued anything behind it — throttle it at the token
/// boundary; it exists to hold the slot, not to decode.
GenerationOptions BlockerOptions(std::shared_ptr<CancelToken> cancel,
                                 int sched_class = 0) {
  GenerationOptions options;
  options.sampling.greedy = true;
  options.max_new_tokens = 1000000;
  options.on_token = [](int) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  options.cancel = std::move(cancel);
  options.sched_class = sched_class;
  return options;
}

void WaitForPending(const serve::BatchScheduler& scheduler, int pending) {
  for (int i = 0; i < 2000; ++i) {
    if (scheduler.stats().pending >= pending) return;
    std::this_thread::sleep_for(milliseconds(1));
  }
  FAIL() << "queue never reached " << pending << " pending rows";
}

/// Spins until `active` rows occupy decode slots. Submitting a blocker
/// via std::async does not order it against later submissions — the
/// test must see it admitted before queueing rows behind it.
void WaitForActive(const serve::BatchScheduler& scheduler, int active) {
  for (int i = 0; i < 2000; ++i) {
    if (scheduler.stats().active >= active) return;
    std::this_thread::sleep_for(milliseconds(1));
  }
  FAIL() << "scheduler never reached " << active << " active rows";
}

TEST(SchedPolicyBatchTest, AdmissionFollowsSlackNotArrival) {
  LstmLm model(TinyLstm());
  serve::BatchSchedulerOptions options;
  options.max_batch = 1;
  serve::BatchScheduler scheduler(&model, options);

  auto cancel = std::make_shared<CancelToken>();
  auto blocker = std::async(std::launch::async, [&] {
    return scheduler.Generate({2, 4}, BlockerOptions(cancel));
  });
  WaitForActive(scheduler, 1);

  // Three rows queued in reverse-deadline order; each records when its
  // first token decodes. With one slot, first-token order == admission
  // order, which EDF must flip to deadline order.
  std::mutex order_mutex;
  std::vector<int> order;
  std::vector<std::future<GenerationResult>> rows;
  const int deadlines_ms[] = {30000, 20000, 10000};
  for (int i = 0; i < 3; ++i) {
    GenerationOptions row;
    row.sampling.greedy = true;
    row.max_new_tokens = 4;
    row.deadline = Deadline::AfterMillis(deadlines_ms[i]);
    bool first = true;
    row.on_token = [&order_mutex, &order, i,
                    first](int) mutable {
      if (!first) return;
      first = false;
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(i);
    };
    rows.push_back(std::async(std::launch::async, [&scheduler, row, i] {
      return scheduler.Generate({1 + i, 5}, row);
    }));
    WaitForPending(scheduler, i + 1);
  }
  cancel->RequestCancel();
  for (auto& row : rows) EXPECT_FALSE(row.get().ids.empty());
  EXPECT_EQ(blocker.get().finish, FinishReason::kCancelled);
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
  scheduler.Stop();
}

TEST(SchedPolicyBatchTest, UniformDeadlinesReduceToFifoBitwise) {
  LstmLm model(TinyLstm());
  serve::BatchSchedulerOptions options;
  options.max_batch = 1;
  serve::BatchScheduler scheduler(&model, options);

  auto cancel = std::make_shared<CancelToken>();
  auto blocker = std::async(std::launch::async, [&] {
    return scheduler.Generate({2, 4}, BlockerOptions(cancel));
  });
  WaitForActive(scheduler, 1);

  // Identical (absent) deadlines: EDF has nothing to reorder, so the
  // rows must run in exact arrival order and every result must match
  // the sequential path token-for-token — the pre-EDF contract as a
  // degenerate case, not an approximation.
  std::mutex order_mutex;
  std::vector<int> order;
  std::vector<std::future<GenerationResult>> rows;
  std::vector<GenerationOptions> row_options;
  for (int i = 0; i < 4; ++i) {
    GenerationOptions row;
    row.sampling.greedy = true;
    row.max_new_tokens = 5 + i;
    row.seed = 100 + static_cast<uint64_t>(i);
    row_options.push_back(row);
    bool first = true;
    row.on_token = [&order_mutex, &order, i, first](int) mutable {
      if (!first) return;
      first = false;
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(i);
    };
    rows.push_back(std::async(std::launch::async, [&scheduler, row, i] {
      return scheduler.Generate({1 + i, 3}, row);
    }));
    WaitForPending(scheduler, i + 1);
  }
  cancel->RequestCancel();
  for (int i = 0; i < 4; ++i) {
    GenerationResult batched = rows[static_cast<size_t>(i)].get();
    GenerationResult reference =
        model.Generate({1 + i, 3}, row_options[static_cast<size_t>(i)]);
    EXPECT_EQ(batched.ids, reference.ids) << "row " << i;
    EXPECT_EQ(batched.finish, reference.finish) << "row " << i;
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  (void)blocker.get();
  scheduler.Stop();
}

TEST(SchedPolicyBatchTest, InteractiveRowPreemptsSurplusSlackBatchRow) {
  LstmLm model(TinyLstm());
  serve::BatchSchedulerOptions options;
  options.max_batch = 1;
  serve::BatchScheduler scheduler(&model, options);

  // A batch-class row with no deadline and a huge remaining budget
  // owns the only slot.
  std::atomic<int> blocker_tokens{0};
  GenerationOptions hog;
  hog.sampling.greedy = true;
  hog.max_new_tokens = 1000000;
  hog.sched_class = 1;
  hog.on_token = [&blocker_tokens](int) {
    blocker_tokens.fetch_add(1);
    // Same throttle as BlockerOptions: keep the hog from exhausting
    // its budget before the urgent row arrives to preempt it.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };
  auto hog_future = std::async(std::launch::async, [&] {
    return scheduler.Generate({2, 4}, hog);
  });
  // Let it decode a few tokens so the per-step cost EMA exists and the
  // partial result is non-empty.
  for (int i = 0; i < 2000 && blocker_tokens.load() < 5; ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_GE(blocker_tokens.load(), 5);

  // An interactive row whose deadline cannot survive waiting for the
  // hog's ~10^6 remaining steps: the hog is evicted with everything it
  // decoded so far, and the interactive row makes its deadline.
  GenerationOptions urgent;
  urgent.sampling.greedy = true;
  urgent.max_new_tokens = 4;
  urgent.deadline = Deadline::AfterMillis(2000);
  GenerationResult fast = scheduler.Generate({7, 1}, urgent);
  EXPECT_NE(fast.finish, FinishReason::kDeadlineExceeded);
  EXPECT_FALSE(fast.ids.empty());

  GenerationResult evicted = hog_future.get();
  EXPECT_EQ(evicted.finish, FinishReason::kPreempted);
  EXPECT_TRUE(evicted.truncated());
  EXPECT_FALSE(evicted.ids.empty());
  EXPECT_EQ(scheduler.stats().preemptions, 1);
  scheduler.Stop();
}

TEST(SchedPolicyBatchTest, BatchShareCapsBatchClassOccupancy) {
  LstmLm model(TinyLstm());
  serve::BatchSchedulerOptions options;
  options.max_batch = 2;
  options.batch_share = 0.5;  // cap: 1 of 2 slots for batch-class rows
  serve::BatchScheduler scheduler(&model, options);

  auto cancel = std::make_shared<CancelToken>();
  auto hog = std::async(std::launch::async, [&] {
    return scheduler.Generate({2, 4},
                              BlockerOptions(cancel, /*sched_class=*/1));
  });
  for (int i = 0; i < 2000 && scheduler.stats().active < 1; ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(scheduler.stats().active, 1);

  // A second batch-class row must wait even though a slot is free...
  GenerationOptions second_batch;
  second_batch.sampling.greedy = true;
  second_batch.max_new_tokens = 4;
  second_batch.sched_class = 1;
  auto parked = std::async(std::launch::async, [&] {
    return scheduler.Generate({3, 5}, second_batch);
  });
  WaitForPending(scheduler, 1);

  // ...while an interactive row sails into that slot and completes.
  GenerationOptions inter;
  inter.sampling.greedy = true;
  inter.max_new_tokens = 4;
  GenerationResult fast = scheduler.Generate({7, 1}, inter);
  EXPECT_FALSE(fast.ids.empty());
  EXPECT_EQ(parked.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  EXPECT_GE(scheduler.stats().pending, 1);

  cancel->RequestCancel();
  EXPECT_EQ(hog.get().finish, FinishReason::kCancelled);
  EXPECT_FALSE(parked.get().ids.empty());
  scheduler.Stop();
}

TEST(SchedPolicyBatchTest, ExpiredPendingRowIsShedAtAdmission) {
  LstmLm model(TinyLstm());
  serve::BatchSchedulerOptions options;
  options.max_batch = 1;
  serve::BatchScheduler scheduler(&model, options);

  GenerationOptions doomed;
  doomed.sampling.greedy = true;
  doomed.max_new_tokens = 8;
  doomed.deadline = Deadline::AfterMillis(-1);
  GenerationResult result = scheduler.Generate({2, 4}, doomed);
  EXPECT_EQ(result.finish, FinishReason::kDeadlineExceeded);
  EXPECT_TRUE(result.ids.empty());

  serve::BatchSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.shed_unmeetable, 1);
  EXPECT_EQ(stats.admitted, 0);
  scheduler.Stop();
}

/// Decodes a couple of fake tokens with a small delay, so concurrent
/// requests genuinely contend for the session slots (the SlotWaitQueue
/// path inside BackendService::AcquireSession).
BackendService::GenerateFn SlowOk(int token_ms) {
  return [token_ms](const GenerateRequest& req)
             -> StatusOr<GenerateOutcome> {
    GenerateOutcome out;
    for (int i = 0; i < 3; ++i) {
      if (req.deadline.expired()) {
        out.finish = FinishReason::kDeadlineExceeded;
        return out;
      }
      std::this_thread::sleep_for(milliseconds(token_ms));
      ++out.tokens_generated;
    }
    out.finish = FinishReason::kMaxTokens;
    out.recipe.title = "done";
    out.recipe.ingredients.push_back({"1", "", "rice", ""});
    out.recipe.instructions = {"cook"};
    return out;
  };
}

Json BodyOf(const HttpClientResponse& resp) {
  auto doc = Json::Parse(resp.body);
  EXPECT_TRUE(doc.ok()) << resp.body;
  return doc.ok() ? *doc : Json{};
}

TEST(SchedPolicyBackendTest, PriorityParamEchoAndValidation) {
  BackendOptions options;
  options.model_sessions = 1;
  BackendService backend([](int) { return SlowOk(1); }, options);
  ASSERT_TRUE(backend.Start(0).ok());

  // Default: interactive, echoed in params.
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(BodyOf(*resp).Get("params").Get("priority").AsString(),
            "interactive");

  // Explicit batch class in the body.
  resp = HttpPost(backend.port(), "/v1/generate",
                  R"({"ingredients":["rice"],"priority":"batch"})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(BodyOf(*resp).Get("params").Get("priority").AsString(),
            "batch");

  // Header fallback (router hop) when the body is silent...
  HttpCallOptions call;
  call.headers["x-rt-priority"] = "batch";
  resp = HttpPost(backend.port(), "/v1/generate",
                  R"({"ingredients":["rice"]})", "application/json", call);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(BodyOf(*resp).Get("params").Get("priority").AsString(),
            "batch");

  // ...but the body wins when both are present.
  resp = HttpPost(backend.port(), "/v1/generate",
                  R"({"ingredients":["rice"],"priority":"interactive"})",
                  "application/json", call);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(BodyOf(*resp).Get("params").Get("priority").AsString(),
            "interactive");

  // Unknown names and non-string values answer 400 bad_priority.
  for (const char* body :
       {R"({"ingredients":["rice"],"priority":"urgent"})",
        R"({"ingredients":["rice"],"priority":3})"}) {
    resp = HttpPost(backend.port(), "/v1/generate", body);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 400);
    EXPECT_EQ(BodyOf(*resp).Get("error").Get("code").AsString(),
              "bad_priority");
  }
  backend.Stop();
}

TEST(SchedPolicyBackendTest, MixedPrioritySessionContention) {
  // Hammers the slack-ordered waiter list from many threads with mixed
  // classes and deadlines: every request must settle (no lost wakeups,
  // no leaked slots) and the follow-up probe still finds a free slot.
  // serve_test runs under TSan in CI, which checks the handoff
  // protocol's synchronization as a side effect.
  BackendOptions options;
  options.model_sessions = 2;
  options.default_timeout_ms = 10000;
  BackendService backend([](int) { return SlowOk(2); }, options);
  ASSERT_TRUE(backend.Start(0).ok());

  std::vector<std::future<int>> statuses;
  for (int i = 0; i < 12; ++i) {
    statuses.push_back(std::async(std::launch::async, [&backend, i] {
      const char* priority = i % 3 == 0 ? "batch" : "interactive";
      const std::string body =
          std::string(R"({"ingredients":["rice"],"priority":")") +
          priority + R"(","timeout_ms":)" +
          std::to_string(2000 + 500 * (i % 4)) + "}";
      auto resp = HttpPost(backend.port(), "/v1/generate", body);
      return resp.ok() ? resp->status : -1;
    }));
  }
  for (auto& status : statuses) {
    const int code = status.get();
    // 200 or, under extreme scheduling delay, a clean 504 — never a
    // transport error or a hung request.
    EXPECT_TRUE(code == 200 || code == 504) << code;
  }
  auto probe = HttpPost(backend.port(), "/v1/generate",
                        R"({"ingredients":["rice"]})");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->status, 200);
  backend.Stop();
}

}  // namespace
}  // namespace rt
