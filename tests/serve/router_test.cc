// The routing tier end to end: least-loaded dispatch over a StaticFleet,
// retry/failover with circuit-breaker ticket settlement on both the
// failed and the succeeding replica, SSE failover before the first byte
// vs terminal backend_lost after it, process supervision (spawn,
// SIGKILL restart, wedged drain), and the seeded chaos soak that
// asserts clients never see an unexpected error while the fleet is
// being broken on purpose.
//
// This binary doubles as its own replica: `router_test
// --rt-replica-stub --port=N` runs a cheap BackendService (fault admin
// enabled, no model) that the ReplicaSupervisor tests fork/exec.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/backend_service.h"
#include "serve/chaos.h"
#include "serve/replica_supervisor.h"
#include "serve/router.h"
#include "util/obs.h"

namespace rt {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers

/// One parsed SSE frame.
struct SseFrame {
  std::string type;
  Json data;
};

std::vector<SseFrame> ParseSse(const std::string& body) {
  std::vector<SseFrame> frames;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t end = body.find("\n\n", pos);
    if (end == std::string::npos) end = body.size();
    const std::string block = body.substr(pos, end - pos);
    pos = end + 2;
    SseFrame frame;
    size_t line_start = 0;
    while (line_start < block.size()) {
      size_t line_end = block.find('\n', line_start);
      if (line_end == std::string::npos) line_end = block.size();
      const std::string line =
          block.substr(line_start, line_end - line_start);
      line_start = line_end + 1;
      if (line.rfind("event: ", 0) == 0) {
        frame.type = line.substr(7);
      } else if (line.rfind("data: ", 0) == 0) {
        if (auto doc = Json::Parse(line.substr(6)); doc.ok()) {
          frame.data = *std::move(doc);
        }
      }
    }
    if (!frame.type.empty()) frames.push_back(std::move(frame));
  }
  return frames;
}

/// A session callback that streams three tokens then finishes cleanly.
StatusOr<GenerateOutcome> StubGenerate(const GenerateRequest& req) {
  const std::vector<std::pair<int, std::string>> tokens = {
      {11, "stir"}, {12, " the"}, {13, " pot"}};
  for (const auto& [id, text] : tokens) {
    if (req.on_token) req.on_token(id, text);
  }
  GenerateOutcome out;
  out.recipe.title = "stub dish";
  out.recipe.ingredients.push_back({"1", "cup", "broth", ""});
  out.recipe.instructions = {"stir the pot"};
  out.finish = FinishReason::kStopToken;
  out.tokens_generated = static_cast<long long>(tokens.size());
  out.prompt_tokens = static_cast<long long>(req.ingredients.size()) + 2;
  return out;
}

BackendService::SessionFactory StubFactory() {
  return [](int) -> BackendService::GenerateFn { return StubGenerate; };
}

std::unique_ptr<BackendService> StartStubBackend(
    bool fault_admin = false) {
  BackendOptions options;
  options.model_sessions = 4;
  options.models = {"stub"};
  options.enable_fault_admin = fault_admin;
  // One-core CI boxes resolve hardware_concurrency to 1; a supervisor
  // probe pins a worker via keep-alive, so a single-worker replica
  // would starve every real request.
  options.http.num_workers = 8;
  auto backend =
      std::make_unique<BackendService>(StubFactory(), options);
  EXPECT_TRUE(backend->Start(0).ok());
  return backend;
}

/// Binds and immediately releases an ephemeral port: connecting to it
/// afterwards is refused, which is exactly what a dead replica looks
/// like to the router.
int DeadPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  (void)::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  (void)::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// A raw one-connection "backend" that commits an SSE head, delivers
/// one token frame, then drops the connection without the terminal
/// chunk — the shape of a replica dying mid-stream.
class FlakyStreamBackend {
 public:
  FlakyStreamBackend() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    (void)::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr));
    socklen_t len = sizeof(addr);
    (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        &len);
    port_ = ntohs(addr.sin_port);
    (void)::listen(listen_fd_, 4);
    thread_ = std::thread([this] { Serve(); });
  }

  ~FlakyStreamBackend() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  int port() const { return port_; }

 private:
  void Serve() {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    // Drain the request head (best effort; one read is enough for the
    // loopback-sized requests the router sends).
    char buf[4096];
    (void)::recv(fd, buf, sizeof(buf), 0);
    const std::string payload =
        "event: token\ndata: {\"index\":0,\"text\":\"stir\"}\n\n";
    char head[256];
    std::snprintf(head, sizeof(head),
                  "HTTP/1.1 200 OK\r\n"
                  "Content-Type: text/event-stream\r\n"
                  "Transfer-Encoding: chunked\r\n\r\n"
                  "%zx\r\n",
                  payload.size());
    (void)::send(fd, head, std::strlen(head), MSG_NOSIGNAL);
    (void)::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL);
    (void)::send(fd, "\r\n", 2, MSG_NOSIGNAL);
    // Let the relay forward the first frame before the line goes dead.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::close(fd);
  }

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

RouterOptions FastRouterOptions() {
  RouterOptions options;
  options.default_timeout_ms = 10000;
  options.min_try_timeout_ms = 200;
  options.retry_backoff_ms = 5;
  options.retry_backoff_max_ms = 20;
  return options;
}

Json RouterMetrics(const Router& router) { return router.MetricsJson(); }

const Json& ReplicaDetail(const Json& metrics, int index) {
  const Json& detail = metrics.Get("replica_detail");
  return detail.AsArray()[static_cast<size_t>(index)];
}

// ---------------------------------------------------------------------------
// StaticFleet routing

TEST(RouterTest, DispatchesBufferedRequestAcrossFleet) {
  auto backend_a = StartStubBackend();
  auto backend_b = StartStubBackend();
  StaticFleet fleet({backend_a->port(), backend_b->port()});
  Router router(&fleet, FastRouterOptions());
  ASSERT_TRUE(router.Start(0).ok());

  for (int i = 0; i < 6; ++i) {
    auto resp = HttpPost(router.port(), "/v1/generate",
                         R"({"ingredients":["broth"]})");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
    auto doc = Json::Parse(resp->body);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->Get("recipe").Get("title").AsString(), "stub dish");
  }
  EXPECT_EQ(router.route_ok(), 6);
  EXPECT_EQ(router.route_retries(), 0);

  const Json metrics = RouterMetrics(router);
  EXPECT_EQ(metrics.Get("replicas").Get("healthy").AsNumber(), 2);
  const double dispatched_a =
      ReplicaDetail(metrics, 0).Get("dispatched").AsNumber();
  const double dispatched_b =
      ReplicaDetail(metrics, 1).Get("dispatched").AsNumber();
  EXPECT_EQ(dispatched_a + dispatched_b, 6);
  router.Stop();
}

TEST(RouterTest, AggregatedHealthzReportsFleet) {
  auto backend = StartStubBackend();
  StaticFleet fleet({backend->port()});
  Router router(&fleet, FastRouterOptions());
  ASSERT_TRUE(router.Start(0).ok());

  auto resp = HttpGet(router.port(), "/v1/healthz");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("status").AsString(), "ok");
  EXPECT_EQ(doc->Get("replicas").Get("healthy").AsNumber(), 1);
  router.Stop();
}

TEST(RouterTest, RetriesOntoHealthyReplicaAndSettlesBothTickets) {
  // Replica 0 is a dead port, replica 1 answers. Every request must
  // succeed via failover, the dead slot's breaker must absorb the
  // timeouts (and trip), and the live slot's breaker must stay closed
  // — which proves the retry path settles the ticket on BOTH sides
  // instead of leaking tickets on the failed attempt.
  auto backend = StartStubBackend();
  RouterOptions options = FastRouterOptions();
  options.breaker.window = 8;
  options.breaker.min_samples = 3;
  options.breaker.trip_ratio = 0.5;
  options.breaker.cooldown_ms = 60000;  // stays open for the test
  StaticFleet fleet({DeadPort(), backend->port()});
  Router router(&fleet, options);
  ASSERT_TRUE(router.Start(0).ok());

  for (int i = 0; i < 8; ++i) {
    auto resp = HttpPost(router.port(), "/v1/generate",
                         R"({"ingredients":["broth"]})");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200) << "request " << i;
  }
  EXPECT_EQ(router.route_ok(), 8);
  EXPECT_GE(router.route_retries(), 3);

  const Json metrics = RouterMetrics(router);
  const Json& dead = ReplicaDetail(metrics, 0);
  const Json& live = ReplicaDetail(metrics, 1);
  EXPECT_GE(dead.Get("failures").AsNumber(), 3);
  // Recorded timeouts tripped the dead replica's breaker; once open,
  // later requests skip it entirely (no new failures pile up forever).
  EXPECT_EQ(dead.Get("breaker_state").AsString(), "open");
  EXPECT_EQ(live.Get("breaker_state").AsString(), "closed");
  EXPECT_EQ(live.Get("failures").AsNumber(), 0);
  EXPECT_EQ(live.Get("dispatched").AsNumber(), 8);
  router.Stop();
}

TEST(RouterTest, AnswersNoReplica503WhenFleetIsEmpty) {
  StaticFleet fleet({});
  Router router(&fleet, FastRouterOptions());
  ASSERT_TRUE(router.Start(0).ok());

  auto resp = HttpPost(router.port(), "/v1/generate",
                       R"({"ingredients":["broth"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 503);
  EXPECT_EQ(resp->headers.count("retry-after"), 1u);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("error").Get("code").AsString(),
            "no_healthy_replica");
  EXPECT_EQ(router.route_no_replica(), 1);

  auto health = HttpGet(router.port(), "/v1/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 503);
  router.Stop();
}

TEST(RouterTest, ClientValidationErrorsAreNotRetried) {
  auto backend = StartStubBackend();
  StaticFleet fleet({backend->port()});
  Router router(&fleet, FastRouterOptions());
  ASSERT_TRUE(router.Start(0).ok());

  auto resp = HttpPost(router.port(), "/v1/generate",
                       R"({"ingredients":[]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 400);
  EXPECT_EQ(router.route_retries(), 0);
  EXPECT_EQ(router.route_ok(), 1);  // a settled answer, relayed as-is
  router.Stop();
}

TEST(RouterTest, StreamFailsOverBeforeFirstByte) {
  // First pick is a dead port; the stream must open on the healthy
  // replica instead, invisibly to the client.
  auto backend = StartStubBackend();
  StaticFleet fleet({DeadPort(), backend->port()});
  Router router(&fleet, FastRouterOptions());
  ASSERT_TRUE(router.Start(0).ok());

  auto resp = HttpPost(router.port(), "/v1/generate",
                       R"({"ingredients":["broth"],"stream":true})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  std::vector<SseFrame> frames = ParseSse(resp->body);
  ASSERT_GE(frames.size(), 2u);
  EXPECT_EQ(frames.front().type, "token");
  EXPECT_EQ(frames.back().type, "done");
  EXPECT_GE(router.streams_failed_over(), 1);
  EXPECT_EQ(router.streams_relayed(), 1);
  EXPECT_EQ(router.streams_aborted(), 0);
  router.Stop();
}

TEST(RouterTest, MidStreamLossEmitsTerminalBackendLostFrame) {
  // The fake backend delivers one token then drops the connection.
  // Bytes already reached the client, so failover is off the table:
  // the relay must end the stream with a structured error frame, not
  // silence.
  FlakyStreamBackend flaky;
  StaticFleet fleet({flaky.port()});
  RouterOptions options = FastRouterOptions();
  options.stream_stall_timeout_ms = 2000;
  Router router(&fleet, options);
  ASSERT_TRUE(router.Start(0).ok());

  auto resp = HttpPost(router.port(), "/v1/generate",
                       R"({"ingredients":["broth"],"stream":true})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  std::vector<SseFrame> frames = ParseSse(resp->body);
  ASSERT_GE(frames.size(), 2u);
  EXPECT_EQ(frames.front().type, "token");
  EXPECT_EQ(frames.back().type, "error");
  EXPECT_EQ(frames.back().data.Get("code").AsString(), "backend_lost");
  EXPECT_EQ(frames.back().data.Get("finish_reason").AsString(),
            "backend_lost");
  EXPECT_TRUE(frames.back().data.Get("request_id").is_string());
  EXPECT_EQ(router.streams_aborted(), 1);
  EXPECT_EQ(router.streams_relayed(), 0);
  router.Stop();
}

TEST(RouterTest, ForwardsTraceAndRequestIdsToReplica) {
  auto backend = StartStubBackend();
  StaticFleet fleet({backend->port()});
  Router router(&fleet, FastRouterOptions());
  ASSERT_TRUE(router.Start(0).ok());

  auto resp = HttpPost(router.port(), "/v1/generate",
                       R"({"ingredients":["broth"]})");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  // The replica echoes the request id it served; with header
  // propagation it is the router's id, not a replica-minted one. The
  // router's ids are "req-<router_port>-<n>".
  const std::string served_id = doc->Get("request_id").AsString();
  EXPECT_NE(served_id.find("req-" + std::to_string(router.port())),
            std::string::npos)
      << served_id;

  // The merged trace surfaces the router's route_try span.
  auto trace = HttpGet(router.port(), "/v1/trace");
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace->body.find("route_try"), std::string::npos);
  router.Stop();
}

// ---------------------------------------------------------------------------
// Process supervision

/// Command template for spawning this binary as a replica stub.
std::vector<std::string> StubCommand() {
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  EXPECT_GT(n, 0);
  exe[n > 0 ? n : 0] = '\0';
  return {exe, "--rt-replica-stub", "--port={port}"};
}

ReplicaSupervisorOptions FastSupervisorOptions(int replicas) {
  ReplicaSupervisorOptions options;
  options.command = StubCommand();
  options.replicas = replicas;
  options.probe_interval_ms = 100;
  options.probe_timeout_ms = 500;
  options.probe_failures_to_restart = 3;
  options.startup_grace_ms = 30000;
  options.drain_grace_ms = 1000;
  options.backoff_initial_ms = 50;
  options.backoff_max_ms = 500;
  return options;
}

long long PidOfReplica(const ReplicaSupervisor& supervisor, int index) {
  for (const ReplicaStatus& status : supervisor.Snapshot()) {
    if (status.index == index) return status.pid;
  }
  return -1;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return pred();
}

TEST(ReplicaSupervisorTest, SpawnsFleetAndReportsHealthy) {
  ReplicaSupervisor supervisor(FastSupervisorOptions(2));
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_TRUE(supervisor.WaitHealthy(2, 30000).ok());

  const auto snapshot = supervisor.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_NE(snapshot[0].port, snapshot[1].port);
  for (const ReplicaStatus& status : snapshot) {
    EXPECT_EQ(status.state, ReplicaState::kHealthy);
    EXPECT_GT(status.pid, 0);
    // Each replica really answers HTTP on its own port.
    auto resp = HttpGet(status.port, "/v1/healthz");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
  }
  EXPECT_EQ(supervisor.total_restarts(), 0);
  supervisor.Stop();
  // Stop reaps: the processes are gone.
  for (const ReplicaStatus& status : snapshot) {
    EXPECT_EQ(::kill(static_cast<pid_t>(status.pid), 0), -1);
  }
}

TEST(ReplicaSupervisorTest, RestartsSigkilledReplica) {
  ReplicaSupervisor supervisor(FastSupervisorOptions(2));
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_TRUE(supervisor.WaitHealthy(2, 30000).ok());

  const long long victim = PidOfReplica(supervisor, 0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(victim), SIGKILL), 0);

  // The monitor reaps the corpse, backs off, respawns, and the new
  // process comes back healthy on the SAME port.
  EXPECT_TRUE(WaitFor(
      [&] {
        const auto snapshot = supervisor.Snapshot();
        return snapshot[0].state == ReplicaState::kHealthy &&
               snapshot[0].pid > 0 && snapshot[0].pid != victim;
      },
      30000));
  EXPECT_GE(supervisor.total_restarts(), 1);
  const auto snapshot = supervisor.Snapshot();
  EXPECT_EQ(snapshot[0].restarts, 1);
  EXPECT_EQ(snapshot[1].restarts, 0);
  supervisor.Stop();
}

TEST(ReplicaSupervisorTest, DrainsWedgedReplicaAndRestartsIt) {
  ReplicaSupervisor supervisor(FastSupervisorOptions(1));
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_TRUE(supervisor.WaitHealthy(1, 30000).ok());
  const auto before = supervisor.Snapshot();
  const long long victim = before[0].pid;

  // Wedge the replica's healthz for far longer than the probe budget:
  // probes time out, the supervisor drains (SIGTERM, then SIGKILL) and
  // respawns.
  auto armed = HttpPost(before[0].port, "/v1/admin/fault",
                        R"({"point":"replica.hang","amount":10000,)"
                        R"("count":100})");
  ASSERT_TRUE(armed.ok());
  ASSERT_EQ(armed->status, 200);

  EXPECT_TRUE(WaitFor(
      [&] {
        const auto snapshot = supervisor.Snapshot();
        return snapshot[0].state == ReplicaState::kHealthy &&
               snapshot[0].pid != victim;
      },
      60000));
  EXPECT_GE(supervisor.total_restarts(), 1);
  supervisor.Stop();
}

// ---------------------------------------------------------------------------
// Chaos soak

TEST(ChaosSoakTest, SeededChaosNeverSurfacesUnexpectedClientErrors) {
  // Sanitized builds run everything 5-20x slower; shrink the load so
  // the soak stays inside CI budgets while still crossing many chaos
  // ticks.
  const bool sanitized =
      std::string(obs::GetBuildInfo().sanitizer) != "none";
  const int kRequests = sanitized ? 60 : 200;
  const int kClients = 4;

  ReplicaSupervisor supervisor(FastSupervisorOptions(3));
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_TRUE(supervisor.WaitHealthy(3, 60000).ok());

  RouterOptions router_options = FastRouterOptions();
  router_options.default_timeout_ms = 15000;
  Router router(&supervisor, router_options);
  ASSERT_TRUE(router.Start(0).ok());

  ChaosOptions chaos_options;
  chaos_options.seed = 20260808;
  chaos_options.interval_ms = sanitized ? 600 : 250;
  ChaosDriver chaos(&supervisor, chaos_options);
  chaos.Start();

  std::atomic<int> issued{0};
  std::atomic<int> ok_buffered{0};
  std::atomic<int> ok_streamed{0};
  std::atomic<int> allowed_503{0};
  std::atomic<int> stream_error_frames{0};
  std::vector<std::string> violations;
  std::mutex violations_mutex;
  auto record_violation = [&](const std::string& what) {
    std::lock_guard<std::mutex> lock(violations_mutex);
    violations.push_back(what);
  };

  auto client = [&](int client_index) {
    for (;;) {
      const int i = issued.fetch_add(1);
      if (i >= kRequests) return;
      const bool stream = (i % 3) == 0;
      const std::string body =
          stream ? R"({"ingredients":["broth"],"stream":true})"
                 : R"({"ingredients":["broth"]})";
      HttpCallOptions call;
      call.timeout_ms = 20000;
      call.stall_timeout_ms = 20000;
      auto resp = HttpPost(router.port(), "/v1/generate", body,
                           "application/json", call);
      if (!resp.ok()) {
        record_violation("transport error from router: " +
                         resp.status().ToString());
        continue;
      }
      if (resp->status == 503) {
        // The one allowed refusal: whole fleet momentarily down or
        // overloaded, structured and retryable.
        allowed_503.fetch_add(1);
        continue;
      }
      if (resp->status != 200) {
        record_violation("unexpected status " +
                         std::to_string(resp->status) + ": " +
                         resp->body.substr(0, 200));
        continue;
      }
      if (!stream) {
        ok_buffered.fetch_add(1);
        continue;
      }
      // A 200 stream must end in a terminal frame — done, or a
      // structured error frame. Silent truncation is the bug class
      // this whole PR exists to kill.
      std::vector<SseFrame> frames = ParseSse(resp->body);
      if (frames.empty()) {
        record_violation("stream with no frames");
        continue;
      }
      const SseFrame& last = frames.back();
      if (last.type == "done") {
        ok_streamed.fetch_add(1);
      } else if (last.type == "error") {
        const std::string code = last.data.Get("code").is_string()
                                     ? last.data.Get("code").AsString()
                                     : "";
        if (code == "backend_lost" || code == "generation_failed" ||
            code == "deadline_exceeded") {
          stream_error_frames.fetch_add(1);
        } else {
          record_violation("unexpected stream error code: " + code);
        }
      } else {
        record_violation("stream truncated without terminal frame, "
                         "last=" +
                         last.type);
      }
    }
    (void)client_index;
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) clients.emplace_back(client, c);

  // Mid-load, on top of the chaos schedule, SIGKILL one replica by
  // hand and verify the supervisor brings it back. Kill early — the
  // stub answers in microseconds, so a late kill would land after the
  // load already drained.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const long long victim = PidOfReplica(supervisor, 1);
  if (victim > 0) (void)::kill(static_cast<pid_t>(victim), SIGKILL);

  for (auto& t : clients) t.join();
  chaos.Stop();

  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: " << violations[0];
  EXPECT_GT(ok_buffered.load() + ok_streamed.load(), 0);

  // The fleet heals: the kill shows up as a restart in the aggregated
  // metrics AND every replica comes back healthy. Both conditions in
  // one wait — healthy==3 alone is satisfied before the supervisor
  // even notices the corpse.
  EXPECT_TRUE(WaitFor(
      [&] {
        const Json metrics = router.MetricsJson();
        return metrics.Get("replica_restarts_total").AsNumber() >= 1 &&
               metrics.Get("replicas").Get("healthy").AsNumber() == 3;
      },
      60000));
  const Json metrics = router.MetricsJson();
  EXPECT_GE(metrics.Get("replica_restarts_total").AsNumber(), 1);
  EXPECT_EQ(metrics.Get("replicas").Get("total").AsNumber(), 3);

  router.Stop();
  supervisor.Stop();
}

}  // namespace

// ---------------------------------------------------------------------------
// Replica-stub mode

/// `router_test --rt-replica-stub --port=N`: a minimal backend replica
/// (stub generation, fault admin on) for the supervisor tests to
/// fork/exec. Runs until killed.
int RunReplicaStub(int argc, char** argv) {
  int port = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = std::atoi(argv[i] + 7);
    }
  }
  BackendOptions options;
  options.model_sessions = 4;
  options.models = {"stub"};
  options.enable_fault_admin = true;
  options.http.num_workers = 8;  // see StartStubBackend
  BackendService backend(StubFactory(), options);
  if (!backend.Start(port).ok()) return 1;
  for (;;) ::pause();
}

}  // namespace rt

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--rt-replica-stub") == 0) {
    return rt::RunReplicaStub(argc, argv);
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
