#include <gtest/gtest.h>

#include "serve/backend_service.h"
#include "serve/frontend_service.h"

namespace rt {
namespace {

/// Canned generator: returns a recipe echoing the requested ingredients.
StatusOr<Recipe> FakeGenerate(const GenerateRequest& req) {
  Recipe r;
  r.title = "test dish";
  for (const std::string& ing : req.ingredients) {
    r.ingredients.push_back({"1", "cup", ing, ""});
  }
  r.instructions = {"combine everything", "serve"};
  return r;
}

TEST(ParseGenerateRequestTest, FullRequest) {
  auto req = ParseGenerateRequest(
      R"({"ingredients":["tomato","rice"],"max_tokens":99,)"
      R"("temperature":0.7,"top_k":5,"seed":42})");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->ingredients,
            (std::vector<std::string>{"tomato", "rice"}));
  EXPECT_EQ(req->max_tokens, 99);
  EXPECT_NEAR(req->temperature, 0.7, 1e-9);
  EXPECT_EQ(req->top_k, 5);
  EXPECT_EQ(req->seed, 42u);
}

TEST(ParseGenerateRequestTest, DefaultsApplied) {
  auto req = ParseGenerateRequest(R"({"ingredients":["salt"]})");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->max_tokens, 256);
  EXPECT_EQ(req->top_k, 0);
}

TEST(ParseGenerateRequestTest, RejectsBadInput) {
  EXPECT_FALSE(ParseGenerateRequest("not json").ok());
  EXPECT_FALSE(ParseGenerateRequest("[]").ok());
  EXPECT_FALSE(ParseGenerateRequest(R"({"ingredients":[]})").ok());
  EXPECT_FALSE(ParseGenerateRequest(R"({"ingredients":[1]})").ok());
  EXPECT_FALSE(
      ParseGenerateRequest(R"({"ingredients":["a"],"max_tokens":-1})")
          .ok());
  EXPECT_FALSE(
      ParseGenerateRequest(R"({"ingredients":["a"],"temperature":0})")
          .ok());
}

TEST(RecipeToJsonTest, StructuredFields) {
  Recipe r;
  r.title = "soup";
  r.ingredients = {{"1/2", "cup", "peas", "crushed"}};
  r.instructions = {"boil", "serve"};
  Json j = RecipeToJson(r);
  EXPECT_EQ(j.Get("title").AsString(), "soup");
  const auto& ing = j.Get("ingredients").AsArray();
  ASSERT_EQ(ing.size(), 1u);
  EXPECT_EQ(ing[0].Get("name").AsString(), "peas");
  EXPECT_EQ(ing[0].Get("text").AsString(), "1/2 cup peas , crushed");
  EXPECT_EQ(j.Get("instructions").AsArray().size(), 2u);
}

class ServiceStackTest : public testing::Test {
 protected:
  void SetUp() override {
    backend_ = std::make_unique<BackendService>(
        BackendService::WrapRecipeFn(FakeGenerate));
    ASSERT_TRUE(backend_->Start(0).ok());
    frontend_ = std::make_unique<FrontendService>(backend_->port());
    ASSERT_TRUE(frontend_->Start(0).ok());
  }
  void TearDown() override {
    if (frontend_) frontend_->Stop();
    if (backend_) backend_->Stop();
  }
  std::unique_ptr<BackendService> backend_;
  std::unique_ptr<FrontendService> frontend_;
};

TEST_F(ServiceStackTest, BackendHealthz) {
  auto resp = HttpGet(backend_->port(), "/v1/healthz");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("status").AsString(), "ok");
  EXPECT_GE(doc->Get("uptime_s").AsNumber(), 0.0);
}

TEST_F(ServiceStackTest, BackendGeneratesRecipe) {
  auto resp = HttpPost(backend_->port(), "/v1/generate",
                       R"({"ingredients":["tomato","basil"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("recipe").Get("title").AsString(), "test dish");
  EXPECT_EQ(doc->Get("recipe").Get("ingredients").AsArray().size(), 2u);
  EXPECT_TRUE(doc->Get("request_id").is_string());
}

TEST_F(ServiceStackTest, DeprecatedAliasRetiredByDefault) {
  // Since API v2 the pre-/v1 aliases are gone unless the deployment
  // opts back in with BackendOptions::enable_deprecated_routes.
  auto resp = HttpPost(backend_->port(), "/api/generate",
                       R"({"ingredients":["tomato","basil"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 404);
}

TEST(DeprecatedAliasTest, ServesWithDeprecationHeaderWhenEnabled) {
  BackendOptions options;
  options.enable_deprecated_routes = true;
  BackendService backend(
      [](int) -> BackendService::GenerateFn {
        return BackendService::WrapRecipeFn(FakeGenerate);
      },
      options);
  ASSERT_TRUE(backend.Start(0).ok());
  auto resp = HttpPost(backend.port(), "/api/generate",
                       R"({"ingredients":["tomato","basil"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("recipe").Get("title").AsString(), "test dish");
  auto dep = resp->headers.find("deprecation");
  ASSERT_NE(dep, resp->headers.end());
  EXPECT_EQ(dep->second, "true");
  backend.Stop();
}

TEST_F(ServiceStackTest, BackendRejectsBadRequestWith400) {
  auto resp = HttpPost(backend_->port(), "/v1/generate", "{}");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 400);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  const Json& error = doc->Get("error");
  EXPECT_EQ(error.Get("code").AsString(), "missing_ingredients");
  EXPECT_TRUE(error.Get("message").is_string());
  EXPECT_TRUE(error.Get("request_id").is_string());
}

TEST_F(ServiceStackTest, FrontendServesIndexPage) {
  auto resp = HttpGet(frontend_->port(), "/");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("Ratatouille"), std::string::npos);
  EXPECT_NE(resp->body.find("/v1/generate"), std::string::npos);
}

TEST_F(ServiceStackTest, FrontendProxiesApiToBackend) {
  // The paper's decoupled two-tier architecture: the browser only ever
  // talks to the frontend; generation flows through the proxy.
  auto resp = HttpPost(frontend_->port(), "/v1/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("recipe")
                .Get("ingredients")
                .AsArray()[0]
                .Get("name")
                .AsString(),
            "rice");
  EXPECT_GE(backend_->requests_served(), 1);
}

TEST_F(ServiceStackTest, FrontendReports502WhenBackendDown) {
  backend_->Stop();
  auto resp = HttpPost(frontend_->port(), "/v1/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 502);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("error").Get("code").AsString(),
            "backend_unreachable");
}

TEST(BackendErrorTest, GeneratorFailureIs500) {
  BackendService backend(BackendService::WrapRecipeFn(
      [](const GenerateRequest&) -> StatusOr<Recipe> {
        return Status::Internal("model exploded");
      }));
  ASSERT_TRUE(backend.Start(0).ok());
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["x"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 500);
  auto doc = Json::Parse(resp->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("error").Get("code").AsString(), "generation_failed");
  backend.Stop();
}

}  // namespace
}  // namespace rt
