// Per-model timeout budgets and the 504 Retry-After hint: requests that
// omit timeout_ms resolve their budget from BackendOptions::
// model_timeout_ms before default_timeout_ms, and both deadline-
// exceeded paths answer with a Retry-After header plus a machine-
// readable retry_after_s detail (mirroring the 503 circuit_open shape).

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "serve/backend_service.h"
#include "serve/http.h"
#include "util/json.h"

namespace rt {
namespace {

using std::chrono::milliseconds;

/// Decodes fake tokens at `token_ms` apiece until max_tokens or the
/// request deadline, like the real pipeline.
BackendService::GenerateFn SlowDecode(int token_ms, int max_tokens) {
  return [token_ms, max_tokens](
             const GenerateRequest& req) -> StatusOr<GenerateOutcome> {
    GenerateOutcome out;
    for (int i = 0; i < max_tokens; ++i) {
      if (req.deadline.expired()) {
        out.finish = FinishReason::kDeadlineExceeded;
        return out;
      }
      std::this_thread::sleep_for(milliseconds(token_ms));
      ++out.tokens_generated;
    }
    out.finish = FinishReason::kMaxTokens;
    out.recipe.title = "done";
    out.recipe.ingredients.push_back({"1", "", "rice", ""});
    out.recipe.instructions = {"cook"};
    return out;
  };
}

Json ErrorOf(const HttpClientResponse& resp) {
  auto doc = Json::Parse(resp.body);
  EXPECT_TRUE(doc.ok()) << resp.body;
  return doc.ok() ? doc->Get("error") : Json{};
}

TEST(TimeoutPolicyTest, PerModelBudgetUsedWhenRequestOmitsTimeout) {
  BackendOptions options;
  options.model_sessions = 1;
  options.models = {"fast-model", "slow-model"};
  options.default_timeout_ms = 5000;
  options.model_timeout_ms = {{"fast-model", 40}};
  BackendService backend(
      [](int) { return SlowDecode(/*token_ms=*/5, /*max_tokens=*/1000); },
      options);
  ASSERT_TRUE(backend.Start(0).ok());

  // No timeout_ms + listed model: the per-model budget applies, so the
  // slow decode blows the 40 ms budget and 504s with that number.
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice"],"model":"fast-model"})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 504);
  Json error = ErrorOf(*resp);
  EXPECT_EQ(error.Get("code").AsString(), "deadline_exceeded");
  EXPECT_EQ(error.Get("details").Get("timeout_ms").AsNumber(), 40.0);

  // Explicit client timeout_ms still beats the per-model default.
  auto explicit_resp = HttpPost(
      backend.port(), "/v1/generate",
      R"({"ingredients":["rice"],"model":"fast-model","timeout_ms":60})");
  ASSERT_TRUE(explicit_resp.ok());
  EXPECT_EQ(explicit_resp->status, 504);
  EXPECT_EQ(
      ErrorOf(*explicit_resp).Get("details").Get("timeout_ms").AsNumber(),
      60.0);
  backend.Stop();
}

TEST(TimeoutPolicyTest, UnlistedModelFallsBackToDefaultBudget) {
  BackendOptions options;
  options.model_sessions = 1;
  options.models = {"fast-model", "slow-model"};
  options.default_timeout_ms = 45;
  options.model_timeout_ms = {{"fast-model", 5000}};
  BackendService backend(
      [](int) { return SlowDecode(/*token_ms=*/5, /*max_tokens=*/1000); },
      options);
  ASSERT_TRUE(backend.Start(0).ok());
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice"],"model":"slow-model"})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 504);
  EXPECT_EQ(ErrorOf(*resp).Get("details").Get("timeout_ms").AsNumber(),
            45.0);
  backend.Stop();
}

TEST(TimeoutPolicyTest, PerModelBudgetsClampedIntoValidRange) {
  BackendOptions options;
  options.model_sessions = 1;
  options.models = {"too-big", "too-small"};
  options.max_timeout_ms = 50;
  options.default_timeout_ms = 40;
  options.model_timeout_ms = {{"too-big", 99999}, {"too-small", -7}};
  BackendService backend(
      [](int) { return SlowDecode(/*token_ms=*/5, /*max_tokens=*/1000); },
      options);
  ASSERT_TRUE(backend.Start(0).ok());

  // too-big clamps to max_timeout_ms.
  auto big = HttpPost(backend.port(), "/v1/generate",
                      R"({"ingredients":["rice"],"model":"too-big"})");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->status, 504);
  EXPECT_EQ(ErrorOf(*big).Get("details").Get("timeout_ms").AsNumber(), 50.0);

  // too-small clamps to 1 ms: expires immediately, still a well-formed
  // 504 rather than a crash or a hung request.
  auto small = HttpPost(backend.port(), "/v1/generate",
                        R"({"ingredients":["rice"],"model":"too-small"})");
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->status, 504);
  EXPECT_EQ(ErrorOf(*small).Get("details").Get("timeout_ms").AsNumber(),
            1.0);
  backend.Stop();
}

TEST(TimeoutPolicyTest, DeadlineExceededCarriesRetryAfterHint) {
  BackendOptions options;
  options.model_sessions = 1;
  options.default_timeout_ms = 40;
  BackendService backend(
      [](int) { return SlowDecode(/*token_ms=*/5, /*max_tokens=*/1000); },
      options);
  ASSERT_TRUE(backend.Start(0).ok());
  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 504);

  // Machine-readable hint in the envelope...
  Json error = ErrorOf(*resp);
  EXPECT_EQ(error.Get("code").AsString(), "deadline_exceeded");
  EXPECT_GE(error.Get("details").Get("retry_after_s").AsNumber(), 1.0);

  // ...and the standard header (client keys are lower-cased).
  auto it = resp->headers.find("retry-after");
  ASSERT_NE(it, resp->headers.end());
  EXPECT_GE(std::stoi(it->second), 1);
  backend.Stop();
}

}  // namespace
}  // namespace rt
