// Concurrency tests for the threaded HTTP server: keep-alive hammering
// from many client threads, queue backpressure (503 + Retry-After),
// graceful drain, and lifecycle edges (Route after Start, restart).

#include "serve/http.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/backend_service.h"

namespace rt {
namespace {

TEST(HttpConcurrencyTest, KeepAliveHammerLosesNothing) {
  HttpServerOptions options;
  options.num_workers = 4;
  HttpServer server(options);
  std::atomic<int> handled{0};
  ASSERT_TRUE(server
                  .Route("POST", "/echo",
                         [&handled](const HttpRequest& req) {
                           handled.fetch_add(1);
                           return HttpResponse::Text(req.body);
                         })
                  .ok());
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client(server.port());
      for (int i = 0; i < kPerThread; ++i) {
        const std::string body =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        auto resp = client.Post("/echo", body);
        if (resp.ok() && resp->status == 200 && resp->body == body) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  // No request dropped, mangled, or cross-wired between connections.
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(handled.load(), kThreads * kPerThread);
  EXPECT_EQ(server.requests_served(), kThreads * kPerThread);
  server.Stop();
}

TEST(HttpConcurrencyTest, RequestsServedIsMonotonicUnderLoad) {
  HttpServer server;
  ASSERT_TRUE(server
                  .Route("GET", "/ping",
                         [](const HttpRequest&) {
                           return HttpResponse::Text("pong");
                         })
                  .ok());
  ASSERT_TRUE(server.Start(0).ok());

  std::atomic<bool> done{false};
  std::atomic<bool> monotonic{true};
  std::thread watcher([&] {
    long long last = 0;
    while (!done.load()) {
      const long long now = server.requests_served();
      if (now < last) monotonic.store(false);
      last = now;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      HttpClient client(server.port());
      for (int i = 0; i < 25; ++i) (void)client.Get("/ping");
    });
  }
  for (auto& c : clients) c.join();
  done.store(true);
  watcher.join();
  EXPECT_TRUE(monotonic.load());
  EXPECT_EQ(server.requests_served(), 100);
  server.Stop();
}

TEST(HttpConcurrencyTest, FullQueueRejectsWith503RetryAfter) {
  HttpServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.retry_after_seconds = 7;
  HttpServer server(options);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> entered{0};
  ASSERT_TRUE(server
                  .Route("GET", "/slow",
                         [&](const HttpRequest&) {
                           entered.fetch_add(1);
                           std::unique_lock<std::mutex> lock(gate_mutex);
                           gate_cv.wait(lock, [&] { return gate_open; });
                           return HttpResponse::Text("done");
                         })
                  .ok());
  ASSERT_TRUE(server.Start(0).ok());

  // Occupy the only worker...
  std::thread busy([&] {
    auto resp = HttpGet(server.port(), "/slow");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
  });
  while (entered.load() < 1) std::this_thread::yield();

  // ...and the only queue slot.
  std::thread queued([&] {
    auto resp = HttpGet(server.port(), "/slow");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
  });
  while (server.queue_depth() < 1) std::this_thread::yield();

  // The next connection must be turned away immediately.
  auto rejected = HttpGet(server.port(), "/slow");
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->status, 503);
  auto retry = rejected->headers.find("retry-after");
  ASSERT_NE(retry, rejected->headers.end());
  EXPECT_EQ(retry->second, "7");
  auto doc = Json::Parse(rejected->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("error").Get("code").AsString(), "overloaded");
  EXPECT_GE(server.requests_rejected(), 1);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  busy.join();
  queued.join();
  server.Stop();
}

TEST(HttpConcurrencyTest, StopDrainsInFlightRequest) {
  HttpServer server;
  std::atomic<int> entered{0};
  ASSERT_TRUE(server
                  .Route("GET", "/slow",
                         [&entered](const HttpRequest&) {
                           entered.fetch_add(1);
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(200));
                           return HttpResponse::Text("finished");
                         })
                  .ok());
  ASSERT_TRUE(server.Start(0).ok());

  std::thread client([&] {
    auto resp = HttpGet(server.port(), "/slow");
    // Graceful drain: the in-flight response is delivered, not RST.
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(resp->body, "finished");
  });
  while (entered.load() < 1) std::this_thread::yield();
  server.Stop();
  client.join();
  EXPECT_EQ(server.requests_served(), 1);
}

TEST(HttpLifecycleTest, RouteAfterStartIsRejected) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  Status s = server.Route("GET", "/late", [](const HttpRequest&) {
    return HttpResponse::Text("x");
  });
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  Status sp = server.RoutePrefix("GET", "/late/", [](const HttpRequest&) {
    return HttpResponse::Text("x");
  });
  EXPECT_EQ(sp.code(), StatusCode::kFailedPrecondition);
  server.Stop();
}

TEST(HttpLifecycleTest, StartAfterStopServesAgain) {
  HttpServer server;
  ASSERT_TRUE(server
                  .Route("GET", "/ping",
                         [](const HttpRequest&) {
                           return HttpResponse::Text("pong");
                         })
                  .ok());
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(HttpGet(server.port(), "/ping").ok());
  server.Stop();
  ASSERT_TRUE(server.Start(0).ok());
  auto resp = HttpGet(server.port(), "/ping");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "pong");
  server.Stop();
}

TEST(BackendConcurrencyTest, SessionPoolServesParallelClients) {
  // A generate function slow enough that requests overlap. Each session
  // slot must never run two requests at once.
  constexpr int kSessions = 2;
  std::vector<std::atomic<int>> in_use(kSessions);
  std::atomic<bool> overlap{false};
  BackendOptions options;
  options.model_sessions = kSessions;
  options.http.num_workers = 4;
  BackendService backend(
      [&](int slot) -> BackendService::GenerateFn {
        return BackendService::WrapRecipeFn(
            [&, slot](const GenerateRequest& req) -> StatusOr<Recipe> {
          if (in_use[static_cast<size_t>(slot)].fetch_add(1) != 0) {
            overlap.store(true);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          in_use[static_cast<size_t>(slot)].fetch_sub(1);
          Recipe r;
          r.title = "dish-" + std::to_string(slot);
          for (const auto& ing : req.ingredients) {
            r.ingredients.push_back({"1", "", ing, ""});
          }
          r.instructions = {"cook"};
          return r;
        });
      },
      options);
  ASSERT_TRUE(backend.Start(0).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      HttpClient client(backend.port());
      for (int i = 0; i < kPerThread; ++i) {
        auto resp =
            client.Post("/v1/generate", R"({"ingredients":["rice"]})");
        if (resp.ok() && resp->status == 200) ok.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_FALSE(overlap.load());

  // /v1/metrics agrees with what the clients saw.
  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("generate_ok").AsNumber(),
            static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(doc->Get("generate_server_errors").AsNumber(), 0.0);
  EXPECT_EQ(doc->Get("model_sessions").AsNumber(), 2.0);
  EXPECT_EQ(doc->Get("model_sessions_in_use").AsNumber(), 0.0);
  backend.Stop();
}

}  // namespace
}  // namespace rt
