// Wire-contract tests for `"stream": true`: per-token SSE events with
// a terminal `done`, stream_options shaping, validation codes, client
// disconnect and deadline teardown mid-stream, and the relay through
// the frontend proxy (the full web stack) at max_batch=4.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/backend_service.h"
#include "serve/frontend_service.h"

namespace rt {
namespace {

/// One parsed SSE frame.
struct SseFrame {
  std::string type;
  Json data;
};

/// Splits an SSE body ("event: t\ndata: {...}\n\n" frames) into frames.
std::vector<SseFrame> ParseSse(const std::string& body) {
  std::vector<SseFrame> frames;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t end = body.find("\n\n", pos);
    if (end == std::string::npos) end = body.size();
    const std::string block = body.substr(pos, end - pos);
    pos = end + 2;
    SseFrame frame;
    size_t line_start = 0;
    while (line_start < block.size()) {
      size_t line_end = block.find('\n', line_start);
      if (line_end == std::string::npos) line_end = block.size();
      const std::string line =
          block.substr(line_start, line_end - line_start);
      line_start = line_end + 1;
      if (line.rfind("event: ", 0) == 0) {
        frame.type = line.substr(7);
      } else if (line.rfind("data: ", 0) == 0) {
        if (auto doc = Json::Parse(line.substr(6)); doc.ok()) {
          frame.data = *std::move(doc);
        }
      }
    }
    if (!frame.type.empty()) frames.push_back(std::move(frame));
  }
  return frames;
}

/// A session callback that streams three fixed tokens then finishes
/// cleanly with a recipe.
StatusOr<GenerateOutcome> StreamThreeTokens(const GenerateRequest& req) {
  const std::vector<std::pair<int, std::string>> tokens = {
      {11, "stir"}, {12, " the"}, {13, " pot"}};
  for (const auto& [id, text] : tokens) {
    if (req.on_token) req.on_token(id, text);
  }
  GenerateOutcome out;
  out.recipe.title = "streamed dish";
  out.recipe.ingredients.push_back({"1", "cup", "broth", ""});
  out.recipe.instructions = {"stir the pot"};
  out.finish = FinishReason::kStopToken;
  out.tokens_generated = static_cast<long long>(tokens.size());
  out.prompt_tokens = static_cast<long long>(req.ingredients.size()) + 2;
  return out;
}

BackendService::SessionFactory FixedStreamFactory() {
  return [](int) -> BackendService::GenerateFn { return StreamThreeTokens; };
}

class StreamingTest : public testing::Test {
 protected:
  void SetUp() override {
    BackendOptions options;
    options.max_batch = 4;
    backend_ = std::make_unique<BackendService>(FixedStreamFactory(),
                                                options);
    ASSERT_TRUE(backend_->Start(0).ok());
  }
  void TearDown() override {
    if (backend_) backend_->Stop();
  }

  double Metric(const std::string& key) {
    auto resp = HttpGet(backend_->port(), "/v1/metrics");
    if (!resp.ok()) return -1.0;
    auto doc = Json::Parse(resp->body);
    if (!doc.ok()) return -1.0;
    return doc->Get(key).AsNumber();
  }

  std::unique_ptr<BackendService> backend_;
};

TEST_F(StreamingTest, DeliversTokenEventsAndTerminalDone) {
  auto resp = HttpPost(backend_->port(), "/v1/generate",
                       R"({"ingredients":["broth"],"stream":true})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);

  std::vector<SseFrame> frames = ParseSse(resp->body);
  ASSERT_EQ(frames.size(), 4u);
  const std::vector<std::string> texts = {"stir", " the", " pot"};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(frames[i].type, "token");
    EXPECT_EQ(frames[i].data.Get("index").AsNumber(), i);
    EXPECT_EQ(frames[i].data.Get("token_id").AsNumber(), 11.0 + i);
    EXPECT_EQ(frames[i].data.Get("text").AsString(), texts[i]);
    EXPECT_TRUE(frames[i].data.Get("request_id").is_string());
    EXPECT_TRUE(frames[i].data.Get("trace_id").is_string());
  }
  const Json& done = frames[3].data;
  EXPECT_EQ(frames[3].type, "done");
  EXPECT_EQ(done.Get("finish_reason").AsString(), "stop_token");
  EXPECT_EQ(done.Get("tokens_generated").AsNumber(), 3.0);
  EXPECT_EQ(done.Get("usage").Get("completion_tokens").AsNumber(), 3.0);
  EXPECT_EQ(done.Get("usage").Get("prompt_tokens").AsNumber(), 3.0);
  EXPECT_EQ(done.Get("usage").Get("total_tokens").AsNumber(), 6.0);
  EXPECT_EQ(done.Get("recipe").Get("title").AsString(), "streamed dish");
  EXPECT_TRUE(done.Get("params").Get("max_tokens").is_number());
  EXPECT_EQ(done.Get("request_id").AsString(),
            frames[0].data.Get("request_id").AsString());

  EXPECT_GE(Metric("streams_started"), 1.0);
  EXPECT_GE(Metric("streams_completed"), 1.0);
  EXPECT_GE(Metric("stream_tokens"), 3.0);
}

TEST_F(StreamingTest, StreamOptionsTrimTheDoneEvent) {
  auto resp = HttpPost(
      backend_->port(), "/v1/generate",
      R"({"ingredients":["broth"],"stream":true,)"
      R"("stream_options":{"include_usage":false,"include_recipe":false}})");
  ASSERT_TRUE(resp.ok());
  std::vector<SseFrame> frames = ParseSse(resp->body);
  ASSERT_GE(frames.size(), 1u);
  const SseFrame& done = frames.back();
  ASSERT_EQ(done.type, "done");
  EXPECT_EQ(done.data.Get("finish_reason").AsString(), "stop_token");
  EXPECT_TRUE(done.data.Get("usage").is_null());
  EXPECT_TRUE(done.data.Get("recipe").is_null());
}

TEST_F(StreamingTest, StreamValidationHasStableCodes) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {R"({"ingredients":["a"],"stream":"yes"})", "bad_stream"},
      {R"({"ingredients":["a"],"stream_options":7})", "bad_stream_options"},
      {R"({"ingredients":["a"],)"
       R"("stream_options":{"include_usage":"x"}})",
       "bad_stream_options"},
      {R"({"ingredients":["a"],"stream_options":{"verbose":true}})",
       "unknown_field"},
  };
  for (const auto& [body, code] : cases) {
    auto resp = HttpPost(backend_->port(), "/v1/generate", body);
    ASSERT_TRUE(resp.ok()) << body;
    EXPECT_EQ(resp->status, 400) << body;
    auto doc = Json::Parse(resp->body);
    ASSERT_TRUE(doc.ok()) << body;
    EXPECT_EQ(doc->Get("error").Get("code").AsString(), code) << body;
  }
}

TEST(StreamingTeardownTest, ClientDisconnectCancelsTheDecode) {
  // The session callback streams forever until its cancel token fires;
  // the client walks away after the first event. Teardown must reach
  // the decode loop (cancel observed) and the stream must count as
  // aborted — this is the wire-level version of "disconnect releases
  // cache pins": the abort path is what returns slots and nodes.
  std::atomic<bool> saw_cancel{false};
  std::atomic<bool> done{false};
  BackendOptions options;
  BackendService backend(
      [&](int) -> BackendService::GenerateFn {
        return [&](const GenerateRequest& req)
                   -> StatusOr<GenerateOutcome> {
          long long emitted = 0;
          while (!(req.cancel && req.cancel->cancelled())) {
            if (req.deadline.expired()) break;
            if (req.on_token) {
              req.on_token(static_cast<int>(emitted), "x");
            }
            ++emitted;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
          saw_cancel = req.cancel && req.cancel->cancelled();
          done = true;
          GenerateOutcome out;
          out.finish = FinishReason::kCancelled;
          out.tokens_generated = emitted;
          return out;
        };
      },
      options);
  ASSERT_TRUE(backend.Start(0).ok());

  {
    StreamingHttpCall call;
    ASSERT_TRUE(call.Open(backend.port(), "/v1/generate",
                          R"({"ingredients":["x"],"stream":true})")
                    .ok());
    EXPECT_EQ(call.status(), 200);
    EXPECT_TRUE(call.chunked());
    // Read one delivery, then hang up (the destructor closes the fd).
    ASSERT_TRUE(call.Pump([](const std::string&) { return false; }).ok());
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(saw_cancel.load());

  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_GE(doc->Get("streams_aborted").AsNumber(), 1.0);
  backend.Stop();
}

TEST(StreamingTeardownTest, DeadlineMidStreamFinishesWithReason) {
  BackendService backend(
      [](int) -> BackendService::GenerateFn {
        return [](const GenerateRequest& req) -> StatusOr<GenerateOutcome> {
          long long emitted = 0;
          while (!req.deadline.expired() &&
                 !(req.cancel && req.cancel->cancelled())) {
            if (req.on_token) {
              req.on_token(static_cast<int>(emitted), "y");
            }
            ++emitted;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
          GenerateOutcome out;
          out.finish = FinishReason::kDeadlineExceeded;
          out.tokens_generated = emitted;
          return out;
        };
      },
      BackendOptions{});
  ASSERT_TRUE(backend.Start(0).ok());

  auto resp = HttpPost(
      backend.port(), "/v1/generate",
      R"({"ingredients":["x"],"stream":true,"timeout_ms":120})");
  ASSERT_TRUE(resp.ok());
  std::vector<SseFrame> frames = ParseSse(resp->body);
  ASSERT_GE(frames.size(), 2u);  // at least one token + done
  EXPECT_EQ(frames.back().type, "done");
  EXPECT_EQ(frames.back().data.Get("finish_reason").AsString(),
            "deadline_exceeded");

  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  auto doc = Json::Parse(metrics->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_GE(doc->Get("generate_deadline_exceeded").AsNumber(), 1.0);
  backend.Stop();
}

TEST(StreamingStackTest, SseRelaysThroughTheFrontendAtMaxBatch4) {
  BackendOptions options;
  options.max_batch = 4;
  BackendService backend(FixedStreamFactory(), options);
  ASSERT_TRUE(backend.Start(0).ok());
  FrontendService frontend(backend.port());
  ASSERT_TRUE(frontend.Start(0).ok());

  // Concurrent streamed requests through the proxy, plus a buffered one
  // to prove the relay did not disturb the unary path.
  std::vector<std::thread> clients;
  std::atomic<int> ok_streams{0};
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&] {
      auto resp = HttpPost(frontend.port(), "/v1/generate",
                           R"({"ingredients":["broth"],"stream":true})");
      if (!resp.ok() || resp->status != 200) return;
      std::vector<SseFrame> frames = ParseSse(resp->body);
      if (frames.size() == 4 && frames[0].type == "token" &&
          frames.back().type == "done" &&
          frames.back().data.Get("finish_reason").AsString() ==
              "stop_token") {
        ok_streams.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok_streams.load(), 3);

  auto unary = HttpPost(frontend.port(), "/v1/generate",
                        R"({"ingredients":["broth"]})");
  ASSERT_TRUE(unary.ok());
  EXPECT_EQ(unary->status, 200);
  auto doc = Json::Parse(unary->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("recipe").Get("title").AsString(), "streamed dish");

  // Streamed validation errors come back buffered with real status.
  auto bad = HttpPost(frontend.port(), "/v1/generate",
                      R"({"ingredients":[],"stream":true})");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);

  frontend.Stop();
  backend.Stop();
}

/// A raw-socket "backend" that sends a chunked SSE head plus one token
/// frame, then closes the connection without the terminal chunk — the
/// wire signature of a backend process dying mid-stream.
class DyingStreamBackend {
 public:
  DyingStreamBackend() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    (void)::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr));
    socklen_t len = sizeof(addr);
    (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        &len);
    port_ = ntohs(addr.sin_port);
    (void)::listen(listen_fd_, 4);
    thread_ = std::thread([this] { Serve(); });
  }

  ~DyingStreamBackend() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  int port() const { return port_; }

 private:
  void Serve() {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    char buf[4096];
    (void)::recv(fd, buf, sizeof(buf), 0);
    const std::string payload =
        "event: token\ndata: {\"index\":0,\"text\":\"stir\"}\n\n";
    char head[256];
    std::snprintf(head, sizeof(head),
                  "HTTP/1.1 200 OK\r\n"
                  "Content-Type: text/event-stream\r\n"
                  "Transfer-Encoding: chunked\r\n\r\n"
                  "%zx\r\n",
                  payload.size());
    (void)::send(fd, head, std::strlen(head), MSG_NOSIGNAL);
    (void)::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL);
    (void)::send(fd, "\r\n", 2, MSG_NOSIGNAL);
    // Let the relay forward the first frame before the line goes dead.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ::close(fd);
  }

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

TEST(StreamingStackTest, MidStreamBackendLossEmitsTerminalErrorFrame) {
  // The client accepted a 200 and frames are flowing; then the backend
  // connection dies. The proxy must close the stream with a structured
  // terminal error frame — silent truncation would leave the client
  // waiting on a recipe that never finishes.
  DyingStreamBackend dying;
  FrontendService frontend(dying.port());
  ASSERT_TRUE(frontend.Start(0).ok());

  auto resp = HttpPost(frontend.port(), "/v1/generate",
                       R"({"ingredients":["broth"],"stream":true})");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);

  std::vector<SseFrame> frames = ParseSse(resp->body);
  ASSERT_GE(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, "token");
  const SseFrame& last = frames.back();
  EXPECT_EQ(last.type, "error");
  EXPECT_EQ(last.data.Get("code").AsString(), "backend_lost");
  EXPECT_EQ(last.data.Get("finish_reason").AsString(), "backend_lost");
  EXPECT_TRUE(last.data.Get("request_id").is_string());

  EXPECT_EQ(frontend.streams_aborted(), 1);
  EXPECT_EQ(frontend.streams_relayed(), 0);
  frontend.Stop();
}

TEST(StreamingClientTest, StreamingHttpCallDeliversIncrementally) {
  BackendOptions options;
  BackendService backend(FixedStreamFactory(), options);
  ASSERT_TRUE(backend.Start(0).ok());

  StreamingHttpCall call;
  ASSERT_TRUE(call.Open(backend.port(), "/v1/generate",
                        R"({"ingredients":["broth"],"stream":true})")
                  .ok());
  EXPECT_EQ(call.status(), 200);
  EXPECT_TRUE(call.chunked());
  auto ct = call.headers().find("content-type");
  ASSERT_NE(ct, call.headers().end());
  EXPECT_EQ(ct->second, "text/event-stream");

  std::string body;
  int deliveries = 0;
  ASSERT_TRUE(call.Pump([&](const std::string& data) {
                    body += data;
                    ++deliveries;
                    return true;
                  })
                  .ok());
  EXPECT_GE(deliveries, 2);  // tokens arrive as separate chunks
  std::vector<SseFrame> frames = ParseSse(body);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames.back().type, "done");
  backend.Stop();
}

}  // namespace
}  // namespace rt
