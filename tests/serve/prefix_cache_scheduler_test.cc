// Shared-prefix KV cache through the batch scheduler: warm restores
// must keep tokens bitwise identical to both the cache-off scheduler
// and the sequential model path, the hit/miss/eviction counters must
// move, and concurrent sessions hammering overlapping prefixes under a
// tight entry budget must stay race-free (TSan).

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "models/gpt2_model.h"
#include "models/lstm_model.h"
#include "serve/batch_scheduler.h"

namespace rt {
namespace {

Gpt2Config CacheGpt2() {
  Gpt2Config config;
  config.vocab_size = 53;
  config.dim = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.max_seq_len = 96;
  config.init_seed = 11;
  return config;
}

LstmConfig CacheLstm() {
  LstmConfig config;
  config.vocab_size = 53;
  config.embed_dim = 16;
  config.hidden_dim = 24;
  config.num_layers = 2;
  config.init_seed = 11;
  return config;
}

/// A prompt of `shared` common tokens plus a per-request tail.
std::vector<int> SharedPrefixPrompt(int shared, int i) {
  std::vector<int> prompt;
  prompt.reserve(shared + 2);
  for (int t = 0; t < shared; ++t) prompt.push_back(1 + (t % 40));
  prompt.push_back(5 + i);
  prompt.push_back(3 + 2 * i);
  return prompt;
}

GenerationOptions CacheOptions(int i) {
  GenerationOptions options;
  options.max_new_tokens = 8;
  options.sampling.temperature = 0.9f;
  options.sampling.top_k = 10;
  options.seed = 500 + static_cast<uint64_t>(i) * 31;
  return options;
}

/// Runs `n` concurrent requests sharing a `shared`-token prefix through
/// `scheduler` and returns the per-request results.
std::vector<GenerationResult> RunWave(serve::BatchScheduler* scheduler,
                                      int shared, int n) {
  std::vector<std::future<GenerationResult>> futures;
  for (int i = 0; i < n; ++i) {
    futures.push_back(std::async(std::launch::async, [=] {
      return scheduler->Generate(SharedPrefixPrompt(shared, i),
                                 CacheOptions(i));
    }));
  }
  std::vector<GenerationResult> results;
  results.reserve(n);
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

TEST(PrefixCacheSchedulerTest, WarmRestoresAreBitwiseIdenticalGpt2) {
  Gpt2Lm model(CacheGpt2());
  constexpr int kShared = 32;
  constexpr int kRequests = 4;

  serve::BatchSchedulerOptions cached;
  cached.max_batch = 4;
  serve::BatchScheduler warm(&model, cached);
  // First wave seeds the trie, second wave decodes from restores.
  RunWave(&warm, kShared, kRequests);
  std::vector<GenerationResult> cached_results =
      RunWave(&warm, kShared, kRequests);

  serve::BatchSchedulerStats stats = warm.stats();
  EXPECT_GT(stats.prefix_cache_hits, 0);
  EXPECT_GT(stats.prefix_cache_misses, 0);
  EXPECT_GT(stats.prefix_cache_entries, 0);
  warm.Stop();

  serve::BatchSchedulerOptions uncached = cached;
  uncached.enable_prefix_cache = false;
  serve::BatchScheduler cold(&model, uncached);
  std::vector<GenerationResult> cold_results =
      RunWave(&cold, kShared, kRequests);
  EXPECT_EQ(cold.stats().prefix_cache_hits, 0);
  EXPECT_EQ(cold.stats().prefix_cache_misses, 0);
  cold.Stop();

  for (int i = 0; i < kRequests; ++i) {
    GenerationResult reference = model.Generate(
        SharedPrefixPrompt(kShared, i), CacheOptions(i));
    EXPECT_EQ(cached_results[i].ids, reference.ids) << "request " << i;
    EXPECT_EQ(cold_results[i].ids, reference.ids) << "request " << i;
    EXPECT_EQ(cached_results[i].finish, reference.finish);
  }
}

TEST(PrefixCacheSchedulerTest, WarmRestoresAreBitwiseIdenticalLstm) {
  LstmLm model(CacheLstm());
  constexpr int kShared = 32;

  serve::BatchSchedulerOptions options;
  options.max_batch = 2;
  serve::BatchScheduler scheduler(&model, options);
  RunWave(&scheduler, kShared, 2);
  std::vector<GenerationResult> warmed = RunWave(&scheduler, kShared, 2);
  EXPECT_GT(scheduler.stats().prefix_cache_hits, 0);
  scheduler.Stop();

  for (int i = 0; i < 2; ++i) {
    GenerationResult reference =
        model.Generate(SharedPrefixPrompt(kShared, i), CacheOptions(i));
    EXPECT_EQ(warmed[i].ids, reference.ids) << "request " << i;
  }
}

TEST(PrefixCacheSchedulerTest, EvictionUnderTightBudgetKeepsParity) {
  Gpt2Lm model(CacheGpt2());
  serve::BatchSchedulerOptions options;
  options.max_batch = 4;
  options.prefix_cache.max_entries = 2;
  serve::BatchScheduler scheduler(&model, options);

  // Waves over distinct prefixes churn the two-entry cache.
  for (int wave = 0; wave < 3; ++wave) {
    for (int shared = 8; shared <= 24; shared += 8) {
      std::vector<GenerationResult> results = RunWave(&scheduler, shared, 2);
      for (int i = 0; i < 2; ++i) {
        GenerationResult reference = model.Generate(
            SharedPrefixPrompt(shared, i), CacheOptions(i));
        EXPECT_EQ(results[i].ids, reference.ids)
            << "wave " << wave << " shared " << shared << " req " << i;
      }
    }
  }
  serve::BatchSchedulerStats stats = scheduler.stats();
  EXPECT_GT(stats.prefix_cache_evictions, 0);
  EXPECT_LE(stats.prefix_cache_entries, 2);
  scheduler.Stop();
}

TEST(PrefixCacheSchedulerTest, ConcurrentSessionsStressRefcounts) {
  // The serve-side TSan companion to the tensor-layer stress test:
  // many client threads, overlapping prefixes, and constant eviction
  // pressure while the scheduler thread publishes and restores.
  Gpt2Lm model(CacheGpt2());
  serve::BatchSchedulerOptions options;
  options.max_batch = 4;
  options.prefix_cache.max_entries = 3;
  serve::BatchScheduler scheduler(&model, options);

  // References computed sequentially up front: the model itself is
  // single-threaded; only the scheduler may drive it concurrently.
  std::vector<std::vector<GenerationResult>> reference(3);
  for (int shared_idx = 0; shared_idx < 3; ++shared_idx) {
    for (int req = 0; req < 3; ++req) {
      reference[shared_idx].push_back(model.Generate(
          SharedPrefixPrompt(8 + 8 * shared_idx, req), CacheOptions(req)));
    }
  }

  constexpr int kThreads = 6;
  constexpr int kIters = 3;
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int shared_idx = (t + i) % 3;
        const int req = t % 3;
        GenerationResult got = scheduler.Generate(
            SharedPrefixPrompt(8 + 8 * shared_idx, req), CacheOptions(req));
        if (got.ids != reference[shared_idx][req].ids) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(scheduler.stats().prefix_cache_entries, 3);
  scheduler.Stop();
}

}  // namespace
}  // namespace rt
