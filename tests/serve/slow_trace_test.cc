// End-to-end coverage for the rt::obs v2 serve integration: generate
// outcomes feeding the SLO engine through the HTTP completion hook,
// tail-sampled promotion into /v1/debug/slow, the /v1/metrics/history
// ring endpoint, healthz degrading (but staying 200) on fast burn, and
// the supervisor-side postmortem collection helper.

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "serve/backend_service.h"
#include "serve/http.h"
#include "serve/replica_supervisor.h"
#include "util/flight_recorder.h"
#include "util/json.h"
#include "util/slo.h"

namespace rt {
namespace {

using std::chrono::milliseconds;

StatusOr<Recipe> OkGenerate(const GenerateRequest& req) {
  Recipe r;
  r.title = "dish";
  for (const auto& ing : req.ingredients) {
    r.ingredients.push_back({"1", "", ing, ""});
  }
  r.instructions = {"cook"};
  return r;
}

Json ParseBody(const HttpClientResponse& resp) {
  auto doc = Json::Parse(resp.body);
  EXPECT_TRUE(doc.ok()) << resp.body;
  return doc.ok() ? *doc : Json{};
}

/// Constructing a BackendService reconfigures the process-wide SLO
/// engine and archive; tests clear them AFTER construction so earlier
/// tests in this binary cannot leak promoted traces or samples in.
void ResetObsState() {
  obs::SloEngine::Instance().Reset();
  obs::SlowTraceArchive::Instance().Clear();
}

TEST(SlowTraceE2ETest, GenerateOutcomesFeedSloAndPromoteErrors) {
  std::atomic<int> fail_next{0};
  BackendService backend(BackendService::WrapRecipeFn(
      [&fail_next](const GenerateRequest& req) -> StatusOr<Recipe> {
        if (fail_next.fetch_sub(1) > 0) {
          return Status::Internal("boom");
        }
        fail_next.fetch_add(1);
        return OkGenerate(req);
      }));
  ResetObsState();
  ASSERT_TRUE(backend.Start(0).ok());

  auto ok = HttpPost(backend.port(), "/v1/generate",
                     R"({"ingredients":["rice"]})");
  fail_next = 1;
  auto err = HttpPost(backend.port(), "/v1/generate",
                      R"({"ingredients":["rice"]})");
  ASSERT_TRUE(ok.ok() && err.ok());
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(err->status, 500);

  // Both generates were annotated interactive; the metrics scrapes
  // below are not annotated and must not move the counters.
  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  const Json doc = ParseBody(*metrics);
  EXPECT_EQ(doc.Get("slo_interactive_1m_total").AsNumber(), 2.0);
  EXPECT_EQ(doc.Get("slo_interactive_1m_errors").AsNumber(), 1.0);
  EXPECT_EQ(doc.Get("slow_traces_archived").AsNumber(), 1.0);

  // The 500 was promoted into the slow-trace archive with its spans.
  auto slow = HttpGet(backend.port(), "/v1/debug/slow");
  ASSERT_TRUE(slow.ok());
  const Json archive = ParseBody(*slow);
  ASSERT_TRUE(archive.Get("slow_traces").is_array());
  const auto& traces = archive.Get("slow_traces").AsArray();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].Get("reason").AsString(), "error_5xx");
  EXPECT_EQ(traces[0].Get("status").AsNumber(), 500.0);
  EXPECT_EQ(traces[0].Get("traffic_class").AsString(), "interactive");
  backend.Stop();
  ResetObsState();
}

TEST(SlowTraceE2ETest, DeadlineExceededPromotesWithReason) {
  BackendOptions options;
  options.model_sessions = 1;
  options.default_timeout_ms = 30;
  BackendService backend(
      [](int) {
        return [](const GenerateRequest& req)
                   -> StatusOr<GenerateOutcome> {
          GenerateOutcome out;
          while (!req.deadline.expired()) {
            std::this_thread::sleep_for(milliseconds(5));
          }
          out.finish = FinishReason::kDeadlineExceeded;
          return out;
        };
      },
      options);
  ResetObsState();
  ASSERT_TRUE(backend.Start(0).ok());

  auto resp = HttpPost(backend.port(), "/v1/generate",
                       R"({"ingredients":["rice"]})");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 504);

  const auto& archive = obs::SlowTraceArchive::Instance();
  ASSERT_GE(archive.size(), 1);
  const Json exported = archive.ExportChromeJson();
  const auto& traces = exported.Get("slow_traces").AsArray();
  EXPECT_EQ(traces.back().Get("reason").AsString(), "deadline_exceeded");
  EXPECT_GE(traces.back().Get("duration_ms").AsNumber(), 25.0);
  // Deadline misses are SLO errors (a 504 is a broken promise).
  EXPECT_GE(
      obs::SloEngine::Instance().Evaluate(0).windows[0].errors, 1);
  backend.Stop();
  ResetObsState();
}

TEST(SlowTraceE2ETest, HealthzDegradesOnFastBurnButStays200) {
  BackendService backend(BackendService::WrapRecipeFn(OkGenerate));
  ResetObsState();
  ASSERT_TRUE(backend.Start(0).ok());

  auto healthy = HttpGet(backend.port(), "/v1/healthz");
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->status, 200);
  EXPECT_EQ(ParseBody(*healthy).Get("status").AsString(), "ok");

  // 20 interactive errors in the current second: error burn 100x with
  // enough samples to page.
  for (int i = 0; i < 20; ++i) {
    obs::SloEngine::Instance().RecordRequest(0, 1'000'000, true);
  }
  auto degraded = HttpGet(backend.port(), "/v1/healthz");
  ASSERT_TRUE(degraded.ok());
  // Still HTTP 200: the process serves, the SLO suffers — the
  // supervisor must not restart a replica for missing an objective.
  EXPECT_EQ(degraded->status, 200);
  const Json body = ParseBody(*degraded);
  EXPECT_EQ(body.Get("status").AsString(), "degraded");
  EXPECT_TRUE(body.Get("slo_fast_burn").AsBool());

  obs::SloEngine::Instance().Reset();
  auto recovered = HttpGet(backend.port(), "/v1/healthz");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(ParseBody(*recovered).Get("status").AsString(), "ok");
  backend.Stop();
  ResetObsState();
}

TEST(SlowTraceE2ETest, MetricsHistoryEndpointServesRollups) {
  BackendService backend(BackendService::WrapRecipeFn(OkGenerate));
  ResetObsState();
  ASSERT_TRUE(backend.Start(0).ok());
  auto ok = HttpPost(backend.port(), "/v1/generate",
                     R"({"ingredients":["rice"]})");
  ASSERT_TRUE(ok.ok());
  // The background sampler runs on a 10s cadence; force deterministic
  // samples instead of waiting.
  backend.history().SampleNow();
  backend.history().SampleNow();

  auto history = HttpGet(backend.port(),
                         "/v1/metrics/history?window=60&key=requests_total");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->status, 200);
  const Json rollup = ParseBody(*history);
  EXPECT_EQ(rollup.Get("window_s").AsNumber(), 60.0);
  EXPECT_GE(rollup.Get("samples").AsNumber(), 2.0);
  EXPECT_TRUE(rollup.Get("points").is_array());
  EXPECT_GE(rollup.Get("series")
                .Get("requests_total")
                .Get("last")
                .AsNumber(),
            1.0);
  backend.Stop();
  ResetObsState();
}

TEST(SlowTraceE2ETest, MetricsExposeObsV2Gauges) {
  BackendService backend(BackendService::WrapRecipeFn(OkGenerate));
  ResetObsState();
  ASSERT_TRUE(backend.Start(0).ok());
  auto metrics = HttpGet(backend.port(), "/v1/metrics");
  ASSERT_TRUE(metrics.ok());
  const Json doc = ParseBody(*metrics);
  // Trace-ring health gauges.
  EXPECT_TRUE(doc.Get("trace_enabled").is_bool());
  EXPECT_TRUE(doc.Get("trace_spans_recorded").is_number());
  EXPECT_TRUE(doc.Get("trace_spans_dropped").is_number());
  EXPECT_EQ(doc.Get("trace_ring_capacity").AsNumber(),
            static_cast<double>(obs::TraceRecorder::kCapacity));
  EXPECT_TRUE(doc.Get("trace_export_torn_skipped").is_number());
  // Archive + history + recorder gauges.
  EXPECT_TRUE(doc.Get("slow_traces_promoted_total").is_number());
  EXPECT_TRUE(doc.Get("history_samples").is_number());
  EXPECT_TRUE(doc.Get("history_interval_ms").is_number());
  EXPECT_TRUE(doc.Get("postmortem_dumps").is_number());
  // SLO objectives echoed for both classes.
  EXPECT_TRUE(doc.Get("slo_interactive_latency_target_ms").is_number());
  EXPECT_TRUE(doc.Get("slo_batch_latency_target_ms").is_number());
  backend.Stop();
  ResetObsState();
}

TEST(PostmortemCollectTest, CollectParsesAnnotatesAndRemoves) {
  const std::string path = "/tmp/rt_slow_trace_collect_" +
                           std::to_string(::getpid()) + ".json";
  auto& recorder = obs::FlightRecorder::Instance();
  ASSERT_TRUE(recorder.Install(path).ok());  // writes first heartbeat

  auto collected = CollectPostmortemFile(path, /*remove_after=*/true);
  ASSERT_TRUE(collected.ok()) << collected.status().ToString();
  EXPECT_EQ(collected->Get("postmortem_version").AsNumber(), 1.0);
  EXPECT_EQ(collected->Get("signal").AsNumber(), 0.0);
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0);  // consumed on collection

  // A replica that never started leaves nothing: collection errors
  // instead of fabricating a record.
  EXPECT_FALSE(CollectPostmortemFile(path, true).ok());
}

}  // namespace
}  // namespace rt
