// Property tests for per-channel symmetric int8 quantization: round-trip
// error bounds, the all-zero-channel and extreme-outlier edge cases,
// non-finite rejection, and the re-quantization idempotency the
// checkpoint-v3 load path relies on.

#include "tensor/quant.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace rt {
namespace {

std::vector<float> RandomVec(int n, uint64_t seed, float spread = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian()) * spread;
  return v;
}

TEST(QuantTest, ChannelScaleIsAbsmaxOver127) {
  std::vector<float> x = {0.5f, -2.0f, 1.25f, 0.0f};
  float scale = -1.0f;
  ASSERT_TRUE(quant::ChannelScale(x.data(), 4, 1, &scale));
  EXPECT_FLOAT_EQ(scale, 2.0f / quant::kQMax);
}

TEST(QuantTest, ChannelScaleHonorsStride) {
  // Column access pattern of a row-major [rows, cols] matrix.
  std::vector<float> w = {1.0f, 9.0f,  //
                          -4.0f, 2.0f};
  float scale = -1.0f;
  ASSERT_TRUE(quant::ChannelScale(w.data(), 2, 2, &scale));  // column 0
  EXPECT_FLOAT_EQ(scale, 4.0f / quant::kQMax);
  ASSERT_TRUE(quant::ChannelScale(w.data() + 1, 2, 2, &scale));  // column 1
  EXPECT_FLOAT_EQ(scale, 9.0f / quant::kQMax);
}

TEST(QuantTest, RoundTripErrorBoundedByHalfScale) {
  const int rows = 37, cols = 19;
  const auto w = RandomVec(rows * cols, 42);
  std::vector<std::int8_t> q(w.size());
  std::vector<float> scales(cols), back(w.size());
  ASSERT_TRUE(
      quant::QuantizePerColumn(w.data(), rows, cols, q.data(),
                               scales.data()));
  quant::DequantizePerColumn(q.data(), rows, cols, scales.data(),
                             back.data());
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Nearest-int rounding means the dequantized value sits within
      // half a quantization step of the original (plus a hair of fp
      // slack for the scale division itself).
      const float err = std::fabs(back[r * cols + c] - w[r * cols + c]);
      EXPECT_LE(err, 0.5f * scales[c] * 1.001f)
          << "element (" << r << ", " << c << ")";
    }
  }
}

TEST(QuantTest, AbsmaxElementQuantizesToFullRange) {
  const int rows = 8, cols = 3;
  auto w = RandomVec(rows * cols, 7, 0.1f);
  w[4 * cols + 1] = -3.0f;  // column 1's absmax
  std::vector<std::int8_t> q(w.size());
  std::vector<float> scales(cols);
  ASSERT_TRUE(
      quant::QuantizePerColumn(w.data(), rows, cols, q.data(),
                               scales.data()));
  EXPECT_EQ(q[4 * cols + 1], -quant::kQMax);
}

TEST(QuantTest, AllZeroChannelRoundTripsToExactZeros) {
  const int rows = 11, cols = 4;
  auto w = RandomVec(rows * cols, 9);
  for (int r = 0; r < rows; ++r) w[r * cols + 2] = 0.0f;
  std::vector<std::int8_t> q(w.size());
  std::vector<float> scales(cols), back(w.size());
  ASSERT_TRUE(
      quant::QuantizePerColumn(w.data(), rows, cols, q.data(),
                               scales.data()));
  EXPECT_EQ(scales[2], 0.0f);
  quant::DequantizePerColumn(q.data(), rows, cols, scales.data(),
                             back.data());
  for (int r = 0; r < rows; ++r) {
    EXPECT_EQ(q[r * cols + 2], 0);
    EXPECT_EQ(back[r * cols + 2], 0.0f);
  }
}

TEST(QuantTest, ExtremeOutlierCrushesSmallValuesToZeroButStaysBounded) {
  // One 1e6 outlier in a column of ~1.0 values: the small values all
  // quantize to 0 (the documented per-channel failure mode) but nothing
  // overflows and the outlier itself round-trips exactly.
  const int rows = 6, cols = 2;
  std::vector<float> w(rows * cols, 1.0f);
  w[3 * cols] = 1e6f;
  std::vector<std::int8_t> q(w.size());
  std::vector<float> scales(cols), back(w.size());
  ASSERT_TRUE(
      quant::QuantizePerColumn(w.data(), rows, cols, q.data(),
                               scales.data()));
  quant::DequantizePerColumn(q.data(), rows, cols, scales.data(),
                             back.data());
  EXPECT_FLOAT_EQ(back[3 * cols], 1e6f);
  for (int r = 0; r < rows; ++r) {
    if (r == 3) continue;
    EXPECT_EQ(q[r * cols], 0) << "row " << r;
  }
  // Column 1 is untouched by the outlier: per-channel scales isolate it.
  for (int r = 0; r < rows; ++r) {
    EXPECT_NEAR(back[r * cols + 1], 1.0f, 0.5f * scales[1] * 1.001f);
  }
}

TEST(QuantTest, NonFiniteRejected) {
  const int rows = 4, cols = 4;
  for (float bad : {std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::infinity(),
                    -std::numeric_limits<float>::infinity()}) {
    auto w = RandomVec(rows * cols, 11);
    w[7] = bad;
    std::vector<std::int8_t> q(w.size());
    std::vector<float> scales(cols);
    EXPECT_FALSE(quant::QuantizePerColumn(w.data(), rows, cols, q.data(),
                                          scales.data()));
    float scale = 0.0f;
    EXPECT_FALSE(quant::ChannelScale(w.data(), rows * cols, 1, &scale));
  }
}

TEST(QuantTest, RequantizationIsIdempotent) {
  // quantize(dequantize(q, s)) == (q, s): the absmax element maps to
  // +-127 exactly, so the recomputed scale equals the stored scale and
  // every value re-rounds to the same integer. Checkpoint v3 relies on
  // this — load dequantizes into fp32 params, serve re-quantizes at
  // pack time, and the weights the kernels see are bit-identical to
  // what was saved.
  const int rows = 29, cols = 13;
  const auto w = RandomVec(rows * cols, 23);
  std::vector<std::int8_t> q1(w.size()), q2(w.size());
  std::vector<float> s1(cols), s2(cols), back(w.size());
  ASSERT_TRUE(
      quant::QuantizePerColumn(w.data(), rows, cols, q1.data(), s1.data()));
  quant::DequantizePerColumn(q1.data(), rows, cols, s1.data(), back.data());
  ASSERT_TRUE(quant::QuantizePerColumn(back.data(), rows, cols, q2.data(),
                                       s2.data()));
  EXPECT_EQ(0, std::memcmp(q1.data(), q2.data(), q1.size()));
  EXPECT_EQ(0, std::memcmp(s1.data(), s2.data(), cols * sizeof(float)));
}

TEST(QuantTest, PerRowMatchesPerColumnOnTranspose) {
  const int rows = 12, cols = 7;
  const auto w = RandomVec(rows * cols, 31);
  // Transpose w, quantize per column, and compare against per-row
  // quantization of the original: the two orientations must agree.
  std::vector<float> wt(w.size());
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) wt[c * rows + r] = w[r * cols + c];
  }
  std::vector<std::int8_t> q_row(w.size()), q_col(w.size());
  std::vector<float> s_row(rows), s_col(rows);
  ASSERT_TRUE(
      quant::QuantizePerRow(w.data(), rows, cols, q_row.data(),
                            s_row.data()));
  ASSERT_TRUE(quant::QuantizePerColumn(wt.data(), cols, rows, q_col.data(),
                                       s_col.data()));
  EXPECT_EQ(0, std::memcmp(s_row.data(), s_col.data(),
                           rows * sizeof(float)));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      EXPECT_EQ(q_row[r * cols + c], q_col[c * rows + r]);
    }
  }
}

}  // namespace
}  // namespace rt
