// Parity and determinism tests for the int8 packed GEMM/GEMV kernels:
// packed vs the naive GemmInt8Ref oracle on ragged shapes, bitwise
// batch-size and thread-count invariance (the int8 kernels inherit the
// fp32 determinism contract verbatim), accumulate mode, the transposed
// pack orientation, and PackQuantized/Pack consistency.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"
#include "tensor/thread_pool.h"
#include "util/rng.h"

namespace rt {
namespace {

std::vector<float> RandomVec(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian()) * 0.5f;
  return v;
}

double MaxRelError(const std::vector<float>& want,
                   const std::vector<float>& got) {
  EXPECT_EQ(want.size(), got.size());
  double worst = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    const double denom = std::max(1.0, std::fabs(double{want[i]}));
    worst = std::max(worst, std::fabs(double{got[i]} - want[i]) / denom);
  }
  return worst;
}

struct Shape {
  int m, n, k;
};

// Same boundary-straddling sweep as the fp32 kernel tests: 1x1,
// tall-skinny, wide-flat, K off the slab size, N around kPanelWidth.
const Shape kShapes[] = {
    {1, 1, 1},    {1, 1, 7},    {3, 5, 2},     {4, 16, 16},  {5, 17, 9},
    {7, 33, 31},  {8, 15, 64},  {13, 64, 19},  {16, 16, 1},  {17, 3, 100},
    {64, 1, 37},  {1, 64, 129}, {200, 7, 5},   {31, 96, 48}, {48, 48, 48},
    {6, 130, 70},
};

/// Quantizes B per column and returns (q, scales) for the oracle.
void QuantizeB(const std::vector<float>& b, int k, int n,
               std::vector<std::int8_t>* q, std::vector<float>* scales) {
  q->resize(b.size());
  scales->resize(n);
  ASSERT_TRUE(
      quant::QuantizePerColumn(b.data(), k, n, q->data(), scales->data()));
}

TEST(KernelsInt8Test, PackedMatchesReferenceOnRaggedShapes) {
  for (const auto& s : kShapes) {
    const auto a = RandomVec(s.m * s.k, 7000 + s.m);
    const auto b = RandomVec(s.k * s.n, 8000 + s.n);
    std::vector<std::int8_t> bq;
    std::vector<float> scales;
    QuantizeB(b, s.k, s.n, &bq, &scales);
    std::vector<float> want(s.m * s.n), got(s.m * s.n);
    kernels::GemmInt8Ref(s.m, s.n, s.k, a.data(), bq.data(), scales.data(),
                         want.data());
    kernels::PackedBInt8 packed;
    packed.Pack(s.k, s.n, b.data());
    EXPECT_EQ(packed.k(), s.k);
    EXPECT_EQ(packed.n(), s.n);
    kernels::GemmPackedInt8(s.m, a.data(), packed, got.data(), false);
    EXPECT_LE(MaxRelError(want, got), 1e-4)
        << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

// The int8 decode-parity guarantee, same as fp32: row r of a batched
// call is bitwise equal to the m=1 GEMV of that row. The batch
// scheduler's EXPECT_EQ parity tests lean on this under --quant int8.
TEST(KernelsInt8Test, BatchedRowBitwiseEqualsSingleRowGemv) {
  const int m = 5, n = 33, k = 29;  // ragged: exercises all MR tails
  const auto a = RandomVec(m * k, 177);
  const auto b = RandomVec(k * n, 178);
  kernels::PackedBInt8 packed;
  packed.Pack(k, n, b.data());
  std::vector<float> batched(m * n), row(n);
  kernels::GemmPackedInt8(m, a.data(), packed, batched.data(), false);
  for (int r = 0; r < m; ++r) {
    kernels::GemmPackedInt8(1, a.data() + r * k, packed, row.data(), false);
    EXPECT_EQ(0, std::memcmp(batched.data() + r * n, row.data(),
                             n * sizeof(float)))
        << "row " << r;
  }
}

TEST(KernelsInt8Test, ThreadCountDoesNotChangeBits) {
  // Large enough to clear kMinParallelFlops so the 4-thread run really
  // partitions across the pool.
  const int m = 37, n = 130, k = 65;
  const auto a = RandomVec(m * k, 188);
  const auto b = RandomVec(k * n, 189);
  kernels::PackedBInt8 packed;
  packed.Pack(k, n, b.data());
  std::vector<float> serial(m * n), parallel(m * n);
  ThreadPool::SetGlobalThreads(1);
  kernels::GemmPackedInt8(m, a.data(), packed, serial.data(), false);
  ThreadPool::SetGlobalThreads(4);
  kernels::GemmPackedInt8(m, a.data(), packed, parallel.data(), false);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                           serial.size() * sizeof(float)));
}

TEST(KernelsInt8Test, AccumulateAddsIntoC) {
  const int m = 3, n = 20, k = 17;
  const auto a = RandomVec(m * k, 194);
  const auto b = RandomVec(k * n, 195);
  const auto base = RandomVec(m * n, 196);
  kernels::PackedBInt8 packed;
  packed.Pack(k, n, b.data());
  std::vector<float> overwrite(m * n);
  kernels::GemmPackedInt8(m, a.data(), packed, overwrite.data(), false);
  std::vector<float> accum = base;
  kernels::GemmPackedInt8(m, a.data(), packed, accum.data(), true);
  for (int i = 0; i < m * n; ++i) {
    EXPECT_NEAR(accum[i], base[i] + overwrite[i], 1e-4f) << "i=" << i;
  }
}

TEST(KernelsInt8Test, PackTransposedMatchesRowQuantOracle) {
  // PackTransposed consumes B [n, k] row-major (the tied-head logits
  // orientation) with one scale per source row. The oracle is
  // GemmInt8Ref over the explicitly transposed per-row quantization.
  const int m = 6, n = 41, k = 23;
  const auto a = RandomVec(m * k, 192);
  const auto b = RandomVec(n * k, 193);  // row-major [n, k]
  std::vector<std::int8_t> q_row(b.size());
  std::vector<float> scales(n);
  ASSERT_TRUE(
      quant::QuantizePerRow(b.data(), n, k, q_row.data(), scales.data()));
  std::vector<std::int8_t> q_t(b.size());  // [k, n], column j = row j of b
  for (int j = 0; j < n; ++j) {
    for (int kk = 0; kk < k; ++kk) q_t[kk * n + j] = q_row[j * k + kk];
  }
  std::vector<float> want(m * n), got(m * n);
  kernels::GemmInt8Ref(m, n, k, a.data(), q_t.data(), scales.data(),
                       want.data());
  kernels::PackedBInt8 packed;
  packed.PackTransposed(n, k, b.data());
  kernels::GemmPackedInt8(m, a.data(), packed, got.data(), false);
  // Numeric (not bitwise) parity: the naive oracle uses separate
  // mul+add while the kernel fuses — same contract as the fp32
  // PackTransposedMatchesTransBReference test.
  EXPECT_LE(MaxRelError(want, got), 1e-4);
}

TEST(KernelsInt8Test, PackQuantizedBitwiseEqualsPack) {
  // The quantized-checkpoint load path packs pre-quantized bytes; it
  // must produce panels identical to quantize-then-pack of the same
  // weights, so serve results can't depend on which path loaded them.
  const int m = 4, n = 37, k = 26;
  const auto a = RandomVec(m * k, 197);
  const auto b = RandomVec(k * n, 198);
  std::vector<std::int8_t> bq;
  std::vector<float> scales;
  QuantizeB(b, k, n, &bq, &scales);
  kernels::PackedBInt8 from_f32, from_q;
  from_f32.Pack(k, n, b.data());
  from_q.PackQuantized(k, n, bq.data(), scales.data());
  std::vector<float> out_f32(m * n), out_q(m * n);
  kernels::GemmPackedInt8(m, a.data(), from_f32, out_f32.data(), false);
  kernels::GemmPackedInt8(m, a.data(), from_q, out_q.data(), false);
  EXPECT_EQ(0, std::memcmp(out_f32.data(), out_q.data(),
                           out_f32.size() * sizeof(float)));
}

TEST(KernelsInt8Test, QuantizationErrorBoundedOnGemv) {
  // End-to-end error sanity: for unit-scale Gaussian A and B at a real
  // decode shape, int8 output stays close to fp32 — the per-element
  // error is a sum of k independent ~U(-s/2, s/2) weight perturbations
  // times |a|, far below the BLEU-visible threshold.
  const int n = 256, k = 128;
  const auto a = RandomVec(k, 210);
  const auto b = RandomVec(k * n, 211);
  std::vector<float> fp32(n), int8(n);
  kernels::GemmRef(1, n, k, a.data(), b.data(), fp32.data());
  kernels::PackedBInt8 packed;
  packed.Pack(k, n, b.data());
  kernels::GemmPackedInt8(1, a.data(), packed, int8.data(), false);
  // Weights span ~[-2, 2] after the 0.5 spread, so scale ~ 2/127; the
  // accumulated error over k=128 stays well under 0.05 in practice.
  for (int j = 0; j < n; ++j) {
    EXPECT_NEAR(int8[j], fp32[j], 0.2f) << "col " << j;
  }
}

}  // namespace
}  // namespace rt
