// Parity and determinism tests for the blocked GEMM kernel layer:
// blocked vs reference on ragged shapes, bitwise row-invariance (the
// KV-cache decode guarantee), thread-count invariance, packed-B parity
// and accumulate mode.

#include "tensor/kernels.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/thread_pool.h"
#include "util/rng.h"

namespace rt {
namespace {

std::vector<float> RandomVec(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian()) * 0.5f;
  return v;
}

/// Largest relative error of `got` against `want`.
double MaxRelError(const std::vector<float>& want,
                   const std::vector<float>& got) {
  EXPECT_EQ(want.size(), got.size());
  double worst = 0.0;
  for (size_t i = 0; i < want.size(); ++i) {
    const double denom = std::max(1.0, std::fabs(double{want[i]}));
    worst = std::max(worst, std::fabs(double{got[i]} - want[i]) / denom);
  }
  return worst;
}

struct Shape {
  int m, n, k;
};

// Ragged shapes straddling every tile boundary: 1x1, tall-skinny,
// wide-flat, K not a multiple of the panel/block sizes, and sizes just
// around kRowTile (4) and kPanelWidth (16).
const Shape kShapes[] = {
    {1, 1, 1},    {1, 1, 7},    {3, 5, 2},     {4, 16, 16},  {5, 17, 9},
    {7, 33, 31},  {8, 15, 64},  {13, 64, 19},  {16, 16, 1},  {17, 3, 100},
    {64, 1, 37},  {1, 64, 129}, {200, 7, 5},   {31, 96, 48}, {48, 48, 48},
    {6, 130, 70},
};

TEST(KernelsTest, BlockedMatchesReferenceOnRaggedShapes) {
  for (const auto& s : kShapes) {
    const auto a = RandomVec(s.m * s.k, 1000 + s.m);
    const auto b = RandomVec(s.k * s.n, 2000 + s.n);
    std::vector<float> want(s.m * s.n), got(s.m * s.n);
    kernels::GemmRef(s.m, s.n, s.k, a.data(), b.data(), want.data());
    kernels::GemmBlocked(s.m, s.n, s.k, a.data(), b.data(), got.data());
    EXPECT_LE(MaxRelError(want, got), 1e-4)
        << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsTest, TransBBlockedMatchesReference) {
  for (const auto& s : kShapes) {
    const auto a = RandomVec(s.m * s.k, 3000 + s.m);
    const auto b = RandomVec(s.n * s.k, 4000 + s.n);  // B is [n, k]
    std::vector<float> want(s.m * s.n), got(s.m * s.n);
    kernels::GemmTransBRef(s.m, s.n, s.k, a.data(), b.data(), want.data());
    kernels::GemmTransBBlocked(s.m, s.n, s.k, a.data(), b.data(),
                               got.data());
    EXPECT_LE(MaxRelError(want, got), 1e-4)
        << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(KernelsTest, TransABlockedMatchesReference) {
  for (const auto& s : kShapes) {
    const auto a = RandomVec(s.k * s.m, 5000 + s.m);  // A is [k, m]
    const auto b = RandomVec(s.k * s.n, 6000 + s.n);
    std::vector<float> want(s.m * s.n), got(s.m * s.n);
    kernels::GemmTransARef(s.m, s.n, s.k, a.data(), b.data(), want.data());
    kernels::GemmTransABlocked(s.m, s.n, s.k, a.data(), b.data(),
                               got.data());
    EXPECT_LE(MaxRelError(want, got), 1e-4)
        << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

// The decode-parity guarantee: row r of a batched Gemm is bitwise equal
// to the m=1 GEMV of that row, because both run the same strictly
// k-ordered accumulation chain regardless of the micro-tile height.
TEST(KernelsTest, BatchedRowBitwiseEqualsSingleRowGemv) {
  const int m = 5, n = 33, k = 29;  // ragged: exercises all MR tails
  const auto a = RandomVec(m * k, 77);
  const auto b = RandomVec(k * n, 78);
  std::vector<float> batched(m * n), row(n);
  kernels::GemmBlocked(m, n, k, a.data(), b.data(), batched.data());
  for (int r = 0; r < m; ++r) {
    kernels::GemmBlocked(1, n, k, a.data() + r * k, b.data(), row.data());
    EXPECT_EQ(0, std::memcmp(batched.data() + r * n, row.data(),
                             n * sizeof(float)))
        << "row " << r;
  }
}

TEST(KernelsTest, ThreadCountDoesNotChangeBits) {
  const int m = 37, n = 130, k = 65;
  const auto a = RandomVec(m * k, 88);
  const auto b = RandomVec(k * n, 89);
  std::vector<float> serial(m * n), parallel(m * n);
  ThreadPool::SetGlobalThreads(1);
  kernels::GemmBlocked(m, n, k, a.data(), b.data(), serial.data());
  ThreadPool::SetGlobalThreads(4);
  kernels::GemmBlocked(m, n, k, a.data(), b.data(), parallel.data());
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                           serial.size() * sizeof(float)));
}

// Packing once and calling GemmPacked must be bitwise identical to the
// pack-per-call blocked path: decode reuses cached panels and the tests
// upstream assert EXPECT_EQ against the batched forward.
TEST(KernelsTest, PackedGemmBitwiseEqualsBlocked) {
  const int m = 9, n = 70, k = 45;
  const auto a = RandomVec(m * k, 90);
  const auto b = RandomVec(k * n, 91);
  std::vector<float> blocked(m * n), packed_out(m * n);
  kernels::GemmBlocked(m, n, k, a.data(), b.data(), blocked.data());
  kernels::PackedB packed;
  packed.Pack(k, n, b.data());
  EXPECT_EQ(packed.k(), k);
  EXPECT_EQ(packed.n(), n);
  kernels::GemmPacked(m, a.data(), packed, packed_out.data(), false);
  EXPECT_EQ(0, std::memcmp(blocked.data(), packed_out.data(),
                           blocked.size() * sizeof(float)));
}

TEST(KernelsTest, PackTransposedMatchesTransBReference) {
  const int m = 6, n = 41, k = 23;
  const auto a = RandomVec(m * k, 92);
  const auto b = RandomVec(n * k, 93);  // row-major [n, k]
  std::vector<float> want(m * n), got(m * n);
  kernels::GemmTransBRef(m, n, k, a.data(), b.data(), want.data());
  kernels::PackedB packed;
  packed.PackTransposed(n, k, b.data());
  kernels::GemmPacked(m, a.data(), packed, got.data(), false);
  EXPECT_LE(MaxRelError(want, got), 1e-4);
}

TEST(KernelsTest, PackedAccumulateAddsIntoC) {
  const int m = 3, n = 20, k = 17;
  const auto a = RandomVec(m * k, 94);
  const auto b = RandomVec(k * n, 95);
  const auto base = RandomVec(m * n, 96);
  kernels::PackedB packed;
  packed.Pack(k, n, b.data());
  std::vector<float> overwrite(m * n);
  kernels::GemmPacked(m, a.data(), packed, overwrite.data(), false);
  std::vector<float> accum = base;
  kernels::GemmPacked(m, a.data(), packed, accum.data(), true);
  for (int i = 0; i < m * n; ++i) {
    EXPECT_NEAR(accum[i], base[i] + overwrite[i], 1e-4f) << "i=" << i;
  }
}

TEST(KernelsTest, DispatchHonorsConfig) {
  const int m = 4, n = 18, k = 10;
  const auto a = RandomVec(m * k, 97);
  const auto b = RandomVec(k * n, 98);
  std::vector<float> ref(m * n), dispatched(m * n);
  kernels::GemmRef(m, n, k, a.data(), b.data(), ref.data());
  const bool saved = kernels::Config().use_blocked;
  kernels::Config().use_blocked = false;
  kernels::Gemm(m, n, k, a.data(), b.data(), dispatched.data());
  kernels::Config().use_blocked = saved;
  // With blocking disabled, dispatch must be the reference bit-for-bit.
  EXPECT_EQ(0, std::memcmp(ref.data(), dispatched.data(),
                           ref.size() * sizeof(float)));
}

}  // namespace
}  // namespace rt
