#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rt::ops {
namespace {

TEST(MatMulTest, KnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, IdentityIsNoop) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor eye({2, 2}, {1, 0, 0, 1});
  Tensor c = MatMul(a, eye);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) EXPECT_FLOAT_EQ(c.at(i, j), a.at(i, j));
  }
}

TEST(MatMulTest, TransBMatchesExplicitTranspose) {
  Rng rng(1);
  Tensor a = Tensor::Normal({3, 4}, 1.0f, &rng);
  Tensor b = Tensor::Normal({5, 4}, 1.0f, &rng);
  Tensor via_trans = MatMul(a, Transpose(b));
  Tensor direct = MatMulTransB(a, b);
  ASSERT_TRUE(direct.SameShape(via_trans));
  for (size_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(direct[i], via_trans[i], 1e-5f);
  }
}

TEST(MatMulTest, TransAMatchesExplicitTranspose) {
  Rng rng(2);
  Tensor a = Tensor::Normal({4, 3}, 1.0f, &rng);
  Tensor b = Tensor::Normal({4, 5}, 1.0f, &rng);
  Tensor via_trans = MatMul(Transpose(a), b);
  Tensor direct = MatMulTransA(a, b);
  ASSERT_TRUE(direct.SameShape(via_trans));
  for (size_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(direct[i], via_trans[i], 1e-5f);
  }
}

TEST(ElementwiseTest, AddSubMulScale) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 5});
  EXPECT_FLOAT_EQ(Add(a, b)[1], 7.0f);
  EXPECT_FLOAT_EQ(Sub(a, b)[1], -3.0f);
  EXPECT_FLOAT_EQ(Mul(a, b)[1], 10.0f);
  EXPECT_FLOAT_EQ(Scale(a, -2.0f)[0], -2.0f);
}

TEST(BroadcastTest, AddRowBroadcastAndSumRows) {
  Tensor x({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias({3}, {10, 20, 30});
  Tensor y = AddRowBroadcast(x, bias);
  EXPECT_FLOAT_EQ(y.at(0, 2), 30.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0), 11.0f);
  Tensor s = SumRows(x);
  EXPECT_FLOAT_EQ(s[0], 1.0f);
  EXPECT_FLOAT_EQ(s[2], 1.0f);
}

TEST(ActivationTest, TanhSigmoidReluGeluValues) {
  Tensor x({4}, {-2.0f, -0.5f, 0.0f, 2.0f});
  Tensor t = Tanh(x);
  EXPECT_NEAR(t[3], std::tanh(2.0f), 1e-6f);
  Tensor s = Sigmoid(x);
  EXPECT_NEAR(s[2], 0.5f, 1e-6f);
  EXPECT_NEAR(s[0], 1.0f / (1.0f + std::exp(2.0f)), 1e-6f);
  Tensor r = Relu(x);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[3], 2.0f);
  Tensor g = Gelu(x);
  EXPECT_NEAR(g[2], 0.0f, 1e-6f);
  EXPECT_NEAR(g[3], 1.954f, 1e-2f);  // gelu(2) ~ 1.954
  EXPECT_LT(g[0], 0.0f);             // small negative tail
}

TEST(SoftmaxTest, RowsSumToOneAndOrderPreserved) {
  Tensor x({2, 3}, {1, 2, 3, -1, 0, 1000});
  Tensor y = SoftmaxRows(x);
  for (int i = 0; i < 2; ++i) {
    float sum = 0;
    for (int j = 0; j < 3; ++j) sum += y.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_LT(y.at(0, 0), y.at(0, 2));
  // Large logits must not overflow.
  EXPECT_NEAR(y.at(1, 2), 1.0f, 1e-5f);
}

TEST(SoftmaxTest, InvariantToRowShift) {
  Tensor x({1, 3}, {1, 2, 3});
  Tensor shifted({1, 3}, {101, 102, 103});
  Tensor a = SoftmaxRows(x), b = SoftmaxRows(shifted);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(a[j], b[j], 1e-6f);
}

TEST(LogSoftmaxTest, MatchesLogOfSoftmax) {
  Tensor x({2, 4}, {0.1f, -0.2f, 0.3f, 2.0f, 5.0f, 4.0f, 3.0f, 2.0f});
  Tensor ls = LogSoftmaxRows(x);
  Tensor sm = SoftmaxRows(x);
  for (size_t i = 0; i < ls.numel(); ++i) {
    EXPECT_NEAR(ls[i], std::log(sm[i]), 1e-5f);
  }
}

TEST(LayerNormTest, NormalizesRows) {
  Tensor x({2, 4}, {1, 2, 3, 4, -10, 0, 10, 20});
  Tensor gain = Tensor::Full({4}, 1.0f);
  Tensor bias = Tensor::Zeros({4});
  LayerNormCache cache;
  Tensor y = LayerNormRows(x, gain, bias, 1e-5f, &cache);
  for (int i = 0; i < 2; ++i) {
    double mean = 0, var = 0;
    for (int j = 0; j < 4; ++j) mean += y.at(i, j);
    mean /= 4;
    for (int j = 0; j < 4; ++j) {
      var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
  EXPECT_EQ(cache.mean.size(), 2u);
  EXPECT_NEAR(cache.mean[0], 2.5f, 1e-5f);
}

TEST(LayerNormTest, AffineParamsApplied) {
  Tensor x({1, 2}, {0, 2});
  Tensor gain({2}, {3, 3});
  Tensor bias({2}, {1, 1});
  Tensor y = LayerNormRows(x, gain, bias, 1e-8f, nullptr);
  // Normalized row is {-1, +1}; y = 3*xhat + 1.
  EXPECT_NEAR(y[0], -2.0f, 1e-3f);
  EXPECT_NEAR(y[1], 4.0f, 1e-3f);
}

TEST(EmbeddingTest, GatherAndScatter) {
  Tensor table({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor out = EmbeddingGather(table, {2, 0, 2});
  EXPECT_FLOAT_EQ(out.at(0, 1), 21.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.0f);
  Tensor dtable = Tensor::Zeros({3, 2});
  Tensor dy({3, 2}, {1, 1, 2, 2, 3, 3});
  EmbeddingScatterAdd({2, 0, 2}, dy, &dtable);
  EXPECT_FLOAT_EQ(dtable.at(2, 0), 4.0f);  // rows 0 and 2 of dy
  EXPECT_FLOAT_EQ(dtable.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(dtable.at(1, 0), 0.0f);
}

TEST(SliceTest, SliceAndScatterRoundTrip) {
  Tensor x({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor mid = SliceCols(x, 1, 3);
  EXPECT_EQ(mid.cols(), 2);
  EXPECT_FLOAT_EQ(mid.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(mid.at(1, 1), 7.0f);
  Tensor dx = Tensor::Zeros({2, 4});
  SliceColsScatterAdd(mid, 1, &dx);
  EXPECT_FLOAT_EQ(dx.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
}

TEST(ConcatTest, ConcatCols) {
  Tensor a({2, 1}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  Tensor c = ConcatCols({&a, &b});
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 6.0f);
}

TEST(TransposeTest, Involution) {
  Rng rng(3);
  Tensor x = Tensor::Normal({3, 5}, 1.0f, &rng);
  Tensor tt = Transpose(Transpose(x));
  for (size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(tt[i], x[i]);
}

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  Tensor logits({2, 3}, {100, 0, 0, 0, 100, 0});
  float loss = CrossEntropyFromLogits(logits, {0, 1}, -1, nullptr);
  EXPECT_NEAR(loss, 0.0f, 1e-4f);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogV) {
  Tensor logits = Tensor::Zeros({4, 8});
  float loss = CrossEntropyFromLogits(logits, {0, 1, 2, 3}, -1, nullptr);
  EXPECT_NEAR(loss, std::log(8.0f), 1e-5f);
}

TEST(CrossEntropyTest, IgnoreIndexExcludesRows) {
  Tensor logits({2, 2}, {100, 0, 0, 100});
  // Second row is wrong but ignored.
  float loss = CrossEntropyFromLogits(logits, {0, -1}, -1, nullptr);
  EXPECT_NEAR(loss, 0.0f, 1e-4f);
  // All ignored: defined as zero.
  EXPECT_EQ(CrossEntropyFromLogits(logits, {-1, -1}, -1, nullptr), 0.0f);
}

TEST(CrossEntropyTest, BackwardIsProbsMinusOneHot) {
  Tensor logits = Tensor::Zeros({1, 4});
  Tensor probs;
  CrossEntropyFromLogits(logits, {2}, -1, &probs);
  Tensor d = CrossEntropyBackward(probs, {2}, -1, 1.0f);
  EXPECT_NEAR(d.at(0, 0), 0.25f, 1e-5f);
  EXPECT_NEAR(d.at(0, 2), 0.25f - 1.0f, 1e-5f);
}

}  // namespace
}  // namespace rt::ops
