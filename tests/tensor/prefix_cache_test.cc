// PrefixKvCache unit + concurrency tests: trie matching, refcounted
// pins, LRU eviction under arena pressure, and a multi-threaded
// publish/restore/clear stress run for the TSan job.

#include "tensor/prefix_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tensor/cache_arena.h"

namespace rt {
namespace {

constexpr size_t kSlotFloats = 8;

/// A recognizable slot payload derived from `tag`.
std::vector<float> StateFor(float tag) {
  std::vector<float> state(kSlotFloats);
  for (size_t i = 0; i < state.size(); ++i) {
    state[i] = tag + static_cast<float>(i) * 0.5f;
  }
  return state;
}

TEST(PrefixKvCacheTest, PublishThenRestoreRoundtrips) {
  CacheArena arena(kSlotFloats);
  PrefixKvCache cache(&arena);

  const std::vector<int> tokens = {4, 8, 15, 16};
  const std::vector<float> state = StateFor(1.0f);
  EXPECT_TRUE(cache.Publish(tokens.data(), 4, state.data()));

  std::vector<float> dst(kSlotFloats, -1.0f);
  EXPECT_EQ(cache.Restore(tokens.data(), 4, dst.data()), 4);
  EXPECT_EQ(dst, state);

  PrefixCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.entries, 1);
}

TEST(PrefixKvCacheTest, RestorePicksTheLongestPublishedPrefix) {
  CacheArena arena(kSlotFloats);
  PrefixKvCache cache(&arena);

  const std::vector<int> tokens = {1, 2, 3, 4, 5, 6};
  const std::vector<float> short_state = StateFor(10.0f);
  const std::vector<float> long_state = StateFor(20.0f);
  ASSERT_TRUE(cache.Publish(tokens.data(), 2, short_state.data()));
  ASSERT_TRUE(cache.Publish(tokens.data(), 4, long_state.data()));

  // A query extending past both entries restores the deeper one.
  std::vector<float> dst(kSlotFloats, 0.0f);
  EXPECT_EQ(cache.Restore(tokens.data(), 6, dst.data()), 4);
  EXPECT_EQ(dst, long_state);

  // A query that diverges after token 2 falls back to the short entry.
  const std::vector<int> diverged = {1, 2, 99};
  EXPECT_EQ(cache.Restore(diverged.data(), 3, dst.data()), 2);
  EXPECT_EQ(dst, short_state);
}

TEST(PrefixKvCacheTest, MissLeavesDestinationUntouched) {
  CacheArena arena(kSlotFloats);
  PrefixKvCache cache(&arena);

  const std::vector<int> tokens = {7, 7, 7};
  std::vector<float> dst(kSlotFloats, 42.0f);
  EXPECT_EQ(cache.Restore(tokens.data(), 3, dst.data()), 0);
  EXPECT_EQ(dst, std::vector<float>(kSlotFloats, 42.0f));
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(PrefixKvCacheTest, RejectsShortAndDuplicatePublishes) {
  CacheArena arena(kSlotFloats);
  PrefixCacheOptions options;
  options.min_tokens = 2;
  PrefixKvCache cache(&arena, options);

  const std::vector<int> tokens = {3, 9};
  const std::vector<float> state = StateFor(5.0f);
  EXPECT_FALSE(cache.Publish(tokens.data(), 1, state.data()));
  EXPECT_TRUE(cache.Publish(tokens.data(), 2, state.data()));
  EXPECT_FALSE(cache.Publish(tokens.data(), 2, state.data()));
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(PrefixKvCacheTest, EvictsLeastRecentlyUsedUnderBudget) {
  CacheArena arena(kSlotFloats);
  PrefixCacheOptions options;
  options.max_entries = 2;
  PrefixKvCache cache(&arena, options);

  const std::vector<int> a = {1, 1, 1};
  const std::vector<int> b = {2, 2, 2};
  const std::vector<int> c = {3, 3, 3};
  ASSERT_TRUE(cache.Publish(a.data(), 3, StateFor(1.0f).data()));
  ASSERT_TRUE(cache.Publish(b.data(), 3, StateFor(2.0f).data()));

  // Touch `a` so `b` becomes the LRU victim when `c` arrives.
  std::vector<float> dst(kSlotFloats);
  ASSERT_EQ(cache.Restore(a.data(), 3, dst.data()), 3);
  ASSERT_TRUE(cache.Publish(c.data(), 3, StateFor(3.0f).data()));

  PrefixCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(cache.Restore(b.data(), 3, dst.data()), 0);  // evicted
  EXPECT_EQ(cache.Restore(a.data(), 3, dst.data()), 3);  // survived
  EXPECT_EQ(cache.Restore(c.data(), 3, dst.data()), 3);  // newest
}

TEST(PrefixKvCacheTest, EntriesPinArenaSlotsAndClearReleasesThem) {
  CacheArena arena(kSlotFloats);
  PrefixKvCache cache(&arena);

  const std::vector<int> a = {5, 6, 7};
  const std::vector<int> b = {8, 9, 10};
  ASSERT_TRUE(cache.Publish(a.data(), 3, StateFor(1.0f).data()));
  ASSERT_TRUE(cache.Publish(b.data(), 3, StateFor(2.0f).data()));
  EXPECT_EQ(arena.slots_in_use(), 2);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(arena.slots_in_use(), 0);

  std::vector<float> dst(kSlotFloats);
  EXPECT_EQ(cache.Restore(a.data(), 3, dst.data()), 0);
}

TEST(PrefixKvCacheTest, ConcurrentPublishRestoreClearIsRaceFree) {
  // The TSan target: writers publish overlapping prefixes, readers
  // restore them, and one thread periodically clears — all against a
  // tight max_entries so eviction runs constantly. Restores must only
  // ever see fully-copied states (each published state is constant per
  // prefix, so a torn copy would mix tags).
  CacheArena arena(kSlotFloats);
  PrefixCacheOptions options;
  options.max_entries = 4;
  PrefixKvCache cache(&arena, options);

  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> dst(kSlotFloats);
      for (int i = 0; i < kIters; ++i) {
        const int key = (t + i) % 6;
        std::vector<int> tokens = {key, key + 1, key + 2};
        const std::vector<float> state =
            StateFor(static_cast<float>(key) * 100.0f);
        if (t == 0 && i % 50 == 49) cache.Clear();
        (void)cache.Publish(tokens.data(), 3, state.data());
        const int matched =
            cache.Restore(tokens.data(), 3, dst.data());
        if (matched == 3 && dst != state) torn = true;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(torn.load());

  PrefixCacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 4);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<int64_t>(kThreads) * kIters);
  cache.Clear();
  EXPECT_EQ(arena.slots_in_use(), 0);
}

}  // namespace
}  // namespace rt
