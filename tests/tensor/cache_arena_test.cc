#include "tensor/cache_arena.h"

#include <gtest/gtest.h>

#include <vector>

#include "tensor/kernels.h"

namespace rt {
namespace {

TEST(CacheArenaTest, AcquireReturnsZeroedSlot) {
  CacheArena arena(/*slot_floats=*/17, /*slots_per_block=*/2);
  float* slot = arena.Acquire();
  ASSERT_NE(slot, nullptr);
  for (int j = 0; j < 17; ++j) EXPECT_EQ(slot[j], 0.0f);
  arena.Release(slot);
}

TEST(CacheArenaTest, RecycledSlotIsZeroedAgain) {
  CacheArena arena(/*slot_floats=*/8, /*slots_per_block=*/1);
  float* slot = arena.Acquire();
  for (int j = 0; j < 8; ++j) slot[j] = 42.0f;
  arena.Release(slot);
  float* again = arena.Acquire();
  EXPECT_EQ(again, slot);  // freelist recycles, no new block
  for (int j = 0; j < 8; ++j) EXPECT_EQ(again[j], 0.0f);
  arena.Release(again);
}

TEST(CacheArenaTest, HeapAllocsFlatOncePoolCoversPeak) {
  CacheArena arena(/*slot_floats=*/4, /*slots_per_block=*/4);
  std::vector<float*> slots;
  for (int i = 0; i < 8; ++i) slots.push_back(arena.Acquire());
  const int64_t peak_allocs = arena.heap_allocs();
  EXPECT_EQ(peak_allocs, 2);  // two blocks of four
  EXPECT_EQ(arena.slots_in_use(), 8);
  EXPECT_EQ(arena.capacity(), 8);
  for (float* s : slots) arena.Release(s);
  EXPECT_EQ(arena.slots_in_use(), 0);
  // Steady-state churn at or below the peak never touches the heap.
  for (int round = 0; round < 10; ++round) {
    std::vector<float*> again;
    for (int i = 0; i < 8; ++i) again.push_back(arena.Acquire());
    for (float* s : again) arena.Release(s);
  }
  EXPECT_EQ(arena.heap_allocs(), peak_allocs);
  EXPECT_EQ(arena.capacity(), 8);
}

TEST(CacheArenaTest, SlotsAreDisjoint) {
  CacheArena arena(/*slot_floats=*/16, /*slots_per_block=*/3);
  std::vector<float*> slots;
  for (int i = 0; i < 7; ++i) slots.push_back(arena.Acquire());
  for (size_t i = 0; i < slots.size(); ++i) {
    for (int j = 0; j < 16; ++j) slots[i][j] = static_cast<float>(i);
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    for (int j = 0; j < 16; ++j) {
      ASSERT_EQ(slots[i][j], static_cast<float>(i));
    }
  }
  for (float* s : slots) arena.Release(s);
}

TEST(GatherScatterTest, GatherRowsCopiesTableRows) {
  const int d = 5;
  std::vector<float> table(4 * d);
  for (size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<float>(i);
  }
  const int ids[3] = {2, 0, 3};
  std::vector<float> out(3 * d, -1.0f);
  kernels::GatherRows(3, d, table.data(), ids, out.data());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < d; ++j) {
      EXPECT_EQ(out[i * d + j], table[ids[i] * d + j]);
    }
  }
}

TEST(GatherScatterTest, GatherAddRowsAccumulates) {
  const int d = 4;
  std::vector<float> table(3 * d, 2.0f);
  const int ids[2] = {1, 2};
  std::vector<float> out(2 * d, 10.0f);
  kernels::GatherAddRows(2, d, table.data(), ids, out.data());
  for (float v : out) EXPECT_EQ(v, 12.0f);
}

TEST(GatherScatterTest, RowPtrRoundTrip) {
  const int d = 6;
  std::vector<float> a(d), b(d), c(d);
  for (int j = 0; j < d; ++j) {
    a[j] = 1.0f + j;
    b[j] = 100.0f + j;
    c[j] = 200.0f + j;
  }
  const float* src[3] = {a.data(), b.data(), c.data()};
  std::vector<float> block(3 * d);
  kernels::GatherRowPtrs(3, d, src, block.data());
  for (int j = 0; j < d; ++j) {
    EXPECT_EQ(block[0 * d + j], a[j]);
    EXPECT_EQ(block[1 * d + j], b[j]);
    EXPECT_EQ(block[2 * d + j], c[j]);
  }
  std::vector<float> a2(d), b2(d), c2(d);
  float* dst[3] = {a2.data(), b2.data(), c2.data()};
  kernels::ScatterRowPtrs(3, d, block.data(), dst);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(b2, b);
  EXPECT_EQ(c2, c);
}

}  // namespace
}  // namespace rt
