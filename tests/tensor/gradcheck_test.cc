// Property-based gradient verification: for every differentiable tape op,
// the analytic gradient must match a central-difference numerical gradient.

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tape.h"

namespace rt {
namespace {

/// Builds a scalar loss from leaf vars; re-invoked for every perturbation.
using LossFn =
    std::function<VarId(Tape&, const std::vector<VarId>&)>;

struct GradCheckCase {
  std::string name;
  std::vector<std::vector<int>> shapes;  // one per input
  LossFn fn;
  uint64_t seed = 42;
};

// Pretty test-name printer.
std::string CaseName(const testing::TestParamInfo<GradCheckCase>& info) {
  return info.param.name;
}

float EvalLoss(const GradCheckCase& c, const std::vector<Tensor>& inputs) {
  Tape tape;
  std::vector<VarId> vars;
  vars.reserve(inputs.size());
  for (const Tensor& t : inputs) vars.push_back(tape.Leaf(t));
  VarId loss = c.fn(tape, vars);
  return tape.value(loss).item();
}

class GradCheckTest : public testing::TestWithParam<GradCheckCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const GradCheckCase& c = GetParam();
  Rng rng(c.seed);
  std::vector<Tensor> inputs;
  for (const auto& shape : c.shapes) {
    inputs.push_back(Tensor::Normal(shape, 0.5f, &rng));
  }

  // Analytic gradients.
  Tape tape;
  std::vector<VarId> vars;
  for (const Tensor& t : inputs) vars.push_back(tape.Leaf(t));
  VarId loss = c.fn(tape, vars);
  tape.Backward(loss);

  const float eps = 5e-3f;
  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    const Tensor& analytic = tape.grad(vars[vi]);
    ASSERT_FALSE(analytic.empty()) << "no grad flowed to input " << vi;
    for (size_t e = 0; e < inputs[vi].numel(); ++e) {
      std::vector<Tensor> plus = inputs;
      std::vector<Tensor> minus = inputs;
      plus[vi][e] += eps;
      minus[vi][e] -= eps;
      const float numeric =
          (EvalLoss(c, plus) - EvalLoss(c, minus)) / (2.0f * eps);
      const float a = analytic[e];
      const float tol = 2e-3f + 2e-2f * std::abs(numeric);
      EXPECT_NEAR(a, numeric, tol)
          << c.name << " input " << vi << " elem " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest,
    testing::Values(
        GradCheckCase{"MatMul",
                      {{3, 4}, {4, 2}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        return t.SumAll(t.Tanh(t.MatMul(v[0], v[1])));
                      }},
        GradCheckCase{"MatMulTransB",
                      {{3, 4}, {2, 4}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        return t.SumAll(t.Tanh(t.MatMulTransB(v[0], v[1])));
                      }},
        GradCheckCase{"AddSubMul",
                      {{2, 3}, {2, 3}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        VarId s = t.Add(v[0], v[1]);
                        VarId d = t.Sub(v[0], v[1]);
                        return t.SumAll(t.Mul(s, d));
                      }},
        GradCheckCase{"ScaleMean",
                      {{5}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        return t.MeanAll(t.Scale(v[0], 3.0f));
                      }},
        GradCheckCase{"AddRowBroadcast",
                      {{3, 4}, {4}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        return t.SumAll(
                            t.Tanh(t.AddRowBroadcast(v[0], v[1])));
                      }},
        GradCheckCase{"Tanh",
                      {{2, 3}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        VarId y = t.Tanh(v[0]);
                        return t.SumAll(t.Mul(y, y));
                      }},
        GradCheckCase{"Sigmoid",
                      {{2, 3}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        VarId y = t.Sigmoid(v[0]);
                        return t.SumAll(t.Mul(y, y));
                      }},
        GradCheckCase{"Gelu",
                      {{2, 4}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        return t.SumAll(t.Gelu(v[0]));
                      }},
        GradCheckCase{"Relu",
                      {{2, 4}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        return t.SumAll(t.Mul(t.Relu(v[0]), t.Relu(v[0])));
                      },
                      /*seed=*/7},
        GradCheckCase{"Softmax",
                      {{3, 5}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        VarId y = t.SoftmaxRows(v[0]);
                        return t.SumAll(t.Mul(y, y));
                      }},
        GradCheckCase{"LayerNorm",
                      {{3, 6}, {6}, {6}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        VarId y = t.LayerNorm(v[0], v[1], v[2]);
                        return t.SumAll(t.Mul(y, y));
                      }},
        GradCheckCase{"Embedding",
                      {{4, 3}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        VarId e = t.Embedding(v[0], {0, 2, 2, 3});
                        return t.SumAll(t.Tanh(e));
                      }},
        GradCheckCase{"SliceConcat",
                      {{2, 6}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        VarId a = t.SliceCols(v[0], 0, 3);
                        VarId b = t.SliceCols(v[0], 3, 6);
                        VarId stacked = t.ConcatRows({a, b});
                        return t.SumAll(t.Mul(stacked, stacked));
                      }},
        GradCheckCase{"CrossEntropy",
                      {{4, 5}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        return t.CrossEntropy(v[0], {1, 4, 0, 2});
                      }},
        GradCheckCase{"CrossEntropyIgnore",
                      {{4, 5}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        return t.CrossEntropy(v[0], {1, -1, 0, -1}, -1);
                      }},
        GradCheckCase{"Attention1Head",
                      {{4, 3}, {4, 3}, {4, 3}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        VarId o = t.CausalSelfAttention(v[0], v[1], v[2],
                                                        /*batch=*/1,
                                                        /*seq=*/4,
                                                        /*heads=*/1);
                        return t.SumAll(t.Mul(o, o));
                      }},
        GradCheckCase{"Attention2Batch2Head",
                      {{6, 4}, {6, 4}, {6, 4}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        VarId o = t.CausalSelfAttention(v[0], v[1], v[2],
                                                        /*batch=*/2,
                                                        /*seq=*/3,
                                                        /*heads=*/2);
                        return t.SumAll(t.Tanh(o));
                      }},
        GradCheckCase{"LstmCellComposite",
                      {{2, 8}, {2, 8}},
                      [](Tape& t, const std::vector<VarId>& v) {
                        // i,f,g,o gates from slices; c' = f*c + i*g.
                        VarId i = t.Sigmoid(t.SliceCols(v[0], 0, 2));
                        VarId f = t.Sigmoid(t.SliceCols(v[0], 2, 4));
                        VarId g = t.Tanh(t.SliceCols(v[0], 4, 6));
                        VarId o = t.Sigmoid(t.SliceCols(v[0], 6, 8));
                        VarId c = t.Add(t.Mul(f, t.SliceCols(v[1], 0, 2)),
                                        t.Mul(i, g));
                        VarId h = t.Mul(o, t.Tanh(c));
                        return t.SumAll(t.Mul(h, h));
                      }}),
    CaseName);

}  // namespace
}  // namespace rt
