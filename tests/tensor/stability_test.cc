// Numerical-stability and depth stress tests for the autodiff engine.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tape.h"

namespace rt {
namespace {

bool AllFinite(const Tensor& t) {
  for (size_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(t[i])) return false;
  }
  return true;
}

TEST(StabilityTest, SoftmaxSurvivesExtremeLogits) {
  Tensor x({2, 3}, {1e30f, -1e30f, 0.0f, 88.0f, -88.0f, 0.0f});
  Tensor y = ops::SoftmaxRows(x);
  EXPECT_TRUE(AllFinite(y));
  EXPECT_NEAR(y.at(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(y.at(0, 1), 0.0f, 1e-5f);
}

TEST(StabilityTest, CrossEntropySurvivesConfidentWrongPrediction) {
  // Model is certain of the wrong class: loss is large but finite and
  // the gradient well-defined.
  Tape tape;
  Tensor logits({1, 3}, {50.0f, -50.0f, 0.0f});
  VarId l = tape.Leaf(logits);
  VarId loss = tape.CrossEntropy(l, {1});
  EXPECT_TRUE(std::isfinite(tape.value(loss).item()));
  EXPECT_GT(tape.value(loss).item(), 10.0f);
  tape.Backward(loss);
  EXPECT_TRUE(AllFinite(tape.grad(l)));
}

TEST(StabilityTest, DeepChainBackpropStaysFinite) {
  // 120 tanh layers: gradients shrink but must remain finite and the
  // tape must handle the long dependency chain.
  Rng rng(5);
  Tape tape;
  VarId x = tape.Leaf(Tensor::Normal({4, 8}, 0.5f, &rng));
  VarId h = x;
  for (int i = 0; i < 120; ++i) h = tape.Tanh(h);
  tape.Backward(tape.SumAll(h));
  EXPECT_TRUE(AllFinite(tape.grad(x)));
  EXPECT_GT(tape.size(), 120u);
}

TEST(StabilityTest, LayerNormSurvivesConstantRows) {
  // Zero-variance rows: eps keeps rstd finite.
  Tensor x = Tensor::Full({3, 6}, 4.0f);
  Tensor gain = Tensor::Full({6}, 1.0f);
  Tensor bias = Tensor::Zeros({6});
  Tensor y = ops::LayerNormRows(x, gain, bias, 1e-5f, nullptr);
  EXPECT_TRUE(AllFinite(y));
  for (size_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 0.0f, 1e-4f);
}

TEST(StabilityTest, AttentionLongSequenceFinite) {
  Rng rng(6);
  const int seq = 160;
  Tape tape;
  VarId q = tape.Leaf(Tensor::Normal({seq, 8}, 2.0f, &rng));
  VarId k = tape.Leaf(Tensor::Normal({seq, 8}, 2.0f, &rng));
  VarId v = tape.Leaf(Tensor::Normal({seq, 8}, 2.0f, &rng));
  VarId out = tape.CausalSelfAttention(q, k, v, 1, seq, 2);
  EXPECT_TRUE(AllFinite(tape.value(out)));
  tape.Backward(tape.MeanAll(out));
  EXPECT_TRUE(AllFinite(tape.grad(q)));
  EXPECT_TRUE(AllFinite(tape.grad(k)));
  EXPECT_TRUE(AllFinite(tape.grad(v)));
}

TEST(StabilityTest, GeluExtremeInputsFinite) {
  Tensor x({4}, {-1000.0f, -10.0f, 10.0f, 1000.0f});
  Tensor y = ops::Gelu(x);
  EXPECT_TRUE(AllFinite(y));
  Tensor dy = Tensor::Full({4}, 1.0f);
  EXPECT_TRUE(AllFinite(ops::GeluBackward(x, dy)));
}

TEST(StabilityTest, RepeatedTapeReuseDoesNotLeakState) {
  Rng rng(7);
  Tensor sink = Tensor::Zeros({8});
  for (int step = 0; step < 50; ++step) {
    Tape tape;
    VarId x = tape.Leaf(Tensor::Normal({8}, 1.0f, &rng), &sink);
    tape.Backward(tape.SumAll(tape.Tanh(x)));
  }
  EXPECT_TRUE(AllFinite(sink));
  EXPECT_NE(sink.Sum(), 0.0f);
}

}  // namespace
}  // namespace rt
