#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rt {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.ndim(), 0);
}

TEST(TensorTest, ZerosShapeAndContents) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.numel(), 6u);
  for (size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ExplicitDataRowMajorAccess) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
}

TEST(TensorTest, ScalarItem) {
  Tensor s = Tensor::Scalar(3.5f);
  EXPECT_EQ(s.numel(), 1u);
  EXPECT_EQ(s.item(), 3.5f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full({4}, 2.0f);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.0f);
  t.Fill(-1.0f);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], -1.0f);
}

TEST(TensorTest, UniformWithinBounds) {
  Rng rng(5);
  Tensor t = Tensor::Uniform({100}, 0.5f, &rng);
  for (size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -0.5f);
    EXPECT_LE(t[i], 0.5f);
  }
  EXPECT_NE(t[0], t[1]);  // not constant
}

TEST(TensorTest, NormalHasRequestedSpread) {
  Rng rng(5);
  Tensor t = Tensor::Normal({10000}, 0.1f, &rng);
  double sumsq = 0.0;
  for (size_t i = 0; i < t.numel(); ++i) sumsq += t[i] * t[i];
  EXPECT_NEAR(std::sqrt(sumsq / t.numel()), 0.1, 0.01);
}

TEST(TensorTest, ReshapedPreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.at(0, 0), 1.0f);
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_EQ(r.numel(), 6u);
}

TEST(TensorTest, Reductions) {
  Tensor t({2, 2}, {1, -2, 3, 4});
  EXPECT_EQ(t.Sum(), 6.0f);
  EXPECT_EQ(t.Mean(), 1.5f);
  EXPECT_EQ(t.Min(), -2.0f);
  EXPECT_EQ(t.Max(), 4.0f);
}

TEST(TensorTest, AddAndScaleInPlace) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.Add(b);
  EXPECT_EQ(a[2], 33.0f);
  a.Scale(0.5f);
  EXPECT_EQ(a[0], 5.5f);
}

TEST(TensorTest, DeepCopySemantics) {
  Tensor a({2}, {1, 2});
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).ShapeString(), "[2, 3]");
  EXPECT_EQ(Tensor({7}).ShapeString(), "[7]");
}

TEST(ShapeVolumeTest, Products) {
  EXPECT_EQ(ShapeVolume({}), 1u);
  EXPECT_EQ(ShapeVolume({0}), 0u);
  EXPECT_EQ(ShapeVolume({2, 3, 4}), 24u);
}

}  // namespace
}  // namespace rt
