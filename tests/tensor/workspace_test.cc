// Workspace arena tests: span stability within a cycle, reuse after
// Reset, high-water coalescing, the zero-allocs-once-warm guarantee,
// and the copy-gives-fresh-arena contract beam search relies on.

#include "tensor/workspace.h"

#include <cstring>
#include <vector>

#include "gtest/gtest.h"

namespace rt {
namespace {

TEST(WorkspaceTest, AllocReturnsUsableDistinctSpans) {
  Workspace ws;
  float* a = ws.Alloc(16);
  float* b = ws.Alloc(32);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < 16; ++i) a[i] = 1.0f;
  for (int i = 0; i < 32; ++i) b[i] = 2.0f;
  // Writing b must not clobber a (disjoint spans).
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a[i], 1.0f);
  EXPECT_EQ(ws.in_use(), 48u);
}

TEST(WorkspaceTest, GrowthDoesNotMovePriorSpans) {
  Workspace ws;
  float* first = ws.Alloc(8);
  first[0] = 42.0f;
  // Force growth well past any initial block.
  for (int i = 0; i < 64; ++i) ws.Alloc(1024);
  EXPECT_EQ(first[0], 42.0f);  // still valid and untouched
}

TEST(WorkspaceTest, ResetMakesCapacityReusableWithoutNewAllocs) {
  Workspace ws;
  ws.Alloc(100);
  ws.Alloc(200);
  ws.Reset();
  EXPECT_EQ(ws.in_use(), 0u);
  const int64_t after_reset = ws.heap_allocs();
  // Same demand as the first cycle: must be served from capacity.
  ws.Alloc(100);
  ws.Alloc(200);
  EXPECT_EQ(ws.heap_allocs(), after_reset);
  EXPECT_GE(ws.high_water(), 300u);
}

TEST(WorkspaceTest, HeapAllocsStabilizeAcrossSteadyStateCycles) {
  Workspace ws;
  // Fragmented warmup cycle: many blocks may be created.
  for (int i = 0; i < 10; ++i) ws.Alloc(777);
  ws.Reset();
  // One more cycle lets the coalesced block absorb the high water.
  for (int i = 0; i < 10; ++i) ws.Alloc(777);
  ws.Reset();
  const int64_t warm = ws.heap_allocs();
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 10; ++i) ws.Alloc(777);
    ws.Reset();
  }
  EXPECT_EQ(ws.heap_allocs(), warm) << "arena still allocating when warm";
}

TEST(WorkspaceTest, CopyYieldsFreshEmptyArena) {
  Workspace ws;
  ws.Alloc(512);
  Workspace copy(ws);
  EXPECT_EQ(copy.in_use(), 0u);
  EXPECT_EQ(copy.capacity(), 0u);
  EXPECT_EQ(copy.heap_allocs(), 0);
  // And the copy works independently.
  float* p = copy.Alloc(4);
  p[0] = 1.0f;
  EXPECT_EQ(p[0], 1.0f);

  Workspace assigned;
  assigned.Alloc(64);
  assigned = ws;
  EXPECT_EQ(assigned.in_use(), 0u);
  EXPECT_EQ(assigned.capacity(), 0u);
}

}  // namespace
}  // namespace rt
