// ThreadPool behavior tests: full index coverage, exception
// propagation, nested-call serialization, global pool swapping, reuse
// across jobs, and degenerate inputs.

#include "tensor/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace rt {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  const int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.ParallelFor(8, [&](int i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long long> sum{0};
    pool.ParallelFor(round + 1, [&](int i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), static_cast<long long>(round) * (round + 1) / 2);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](int i) {
                                  if (i == 13) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must stay usable after an exception unwound a job.
  std::atomic<int> count{0};
  pool.ParallelFor(32, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, NestedCallsRunSerially) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](int) {
    // A nested region must not deadlock; it runs inline on the worker.
    pool.ParallelFor(8, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&](int) { count.fetch_add(1); });
  pool.ParallelFor(-5, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPoolTest, SetGlobalThreadsSwapsThePool) {
  const int original = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3);
  std::atomic<int> count{0};
  ParallelFor(100, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
  ThreadPool::SetGlobalThreads(original);
  EXPECT_EQ(ThreadPool::GlobalThreads(), original);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool2(-4);
  EXPECT_EQ(pool2.num_threads(), 1);
}

}  // namespace
}  // namespace rt
