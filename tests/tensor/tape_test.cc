#include "tensor/tape.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace rt {
namespace {

TEST(TapeTest, LeafValueRoundTrip) {
  Tape tape;
  VarId x = tape.Leaf(Tensor({2}, {1, 2}));
  EXPECT_EQ(tape.value(x)[1], 2.0f);
  EXPECT_EQ(tape.size(), 1u);
}

TEST(TapeTest, SimpleChainGradient) {
  // loss = sum(2 * x) => dloss/dx = 2.
  Tape tape;
  VarId x = tape.Leaf(Tensor({3}, {1, 2, 3}));
  VarId y = tape.Scale(x, 2.0f);
  VarId loss = tape.SumAll(y);
  tape.Backward(loss);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(tape.grad(x)[i], 2.0f);
}

TEST(TapeTest, GradSinkAccumulates) {
  Tensor sink = Tensor::Zeros({2});
  {
    Tape tape;
    VarId x = tape.Leaf(Tensor({2}, {1, 1}), &sink);
    tape.Backward(tape.SumAll(x));
  }
  {
    Tape tape;
    VarId x = tape.Leaf(Tensor({2}, {1, 1}), &sink);
    tape.Backward(tape.SumAll(tape.Scale(x, 3.0f)));
  }
  // 1 from first step + 3 from second.
  EXPECT_FLOAT_EQ(sink[0], 4.0f);
  EXPECT_FLOAT_EQ(sink[1], 4.0f);
}

TEST(TapeTest, FanOutAccumulatesGradients) {
  // loss = sum(x*x + x) -> d/dx = 2x + 1.
  Tape tape;
  VarId x = tape.Leaf(Tensor({2}, {3, -1}));
  VarId sq = tape.Mul(x, x);
  VarId s = tape.Add(sq, x);
  tape.Backward(tape.SumAll(s));
  EXPECT_FLOAT_EQ(tape.grad(x)[0], 7.0f);
  EXPECT_FLOAT_EQ(tape.grad(x)[1], -1.0f);
}

TEST(TapeTest, ConstantsReceiveNoGradient) {
  Tape tape;
  VarId c = tape.Constant(Tensor({2}, {5, 5}));
  VarId x = tape.Leaf(Tensor({2}, {1, 2}));
  VarId y = tape.Mul(c, x);
  tape.Backward(tape.SumAll(y));
  EXPECT_TRUE(tape.grad(c).empty());
  EXPECT_FLOAT_EQ(tape.grad(x)[0], 5.0f);
}

TEST(TapeTest, MatMulGradShapes) {
  Rng rng(1);
  Tape tape;
  VarId a = tape.Leaf(Tensor::Normal({2, 3}, 1.0f, &rng));
  VarId b = tape.Leaf(Tensor::Normal({3, 4}, 1.0f, &rng));
  VarId y = tape.MatMul(a, b);
  tape.Backward(tape.SumAll(y));
  EXPECT_EQ(tape.grad(a).shape(), (std::vector<int>{2, 3}));
  EXPECT_EQ(tape.grad(b).shape(), (std::vector<int>{3, 4}));
}

TEST(TapeTest, DropoutEvalIsIdentity) {
  Rng rng(2);
  Tape tape;
  Tensor x({4}, {1, 2, 3, 4});
  VarId in = tape.Leaf(x);
  VarId out = tape.Dropout(in, 0.5f, &rng, /*training=*/false);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tape.value(out)[i], x[i]);
}

TEST(TapeTest, DropoutTrainingPreservesExpectation) {
  Rng rng(3);
  const int n = 20000;
  Tape tape;
  VarId in = tape.Leaf(Tensor::Full({n}, 1.0f));
  VarId out = tape.Dropout(in, 0.25f, &rng, /*training=*/true);
  // Inverted dropout: E[out] == 1. Kept entries are 1/0.75.
  float mean = tape.value(out).Mean();
  EXPECT_NEAR(mean, 1.0f, 0.02f);
  int zeros = 0;
  for (int i = 0; i < n; ++i) {
    float v = tape.value(out)[i];
    EXPECT_TRUE(v == 0.0f || std::abs(v - 1.0f / 0.75f) < 1e-5f);
    zeros += v == 0.0f;
  }
  EXPECT_NEAR(static_cast<float>(zeros) / n, 0.25f, 0.02f);
}

TEST(TapeTest, DropoutGradientMatchesMask) {
  Rng rng(4);
  Tape tape;
  VarId in = tape.Leaf(Tensor::Full({1000}, 2.0f));
  VarId out = tape.Dropout(in, 0.5f, &rng, /*training=*/true);
  tape.Backward(tape.SumAll(out));
  for (int i = 0; i < 1000; ++i) {
    float v = tape.value(out)[i];
    float g = tape.grad(in)[i];
    if (v == 0.0f) {
      EXPECT_EQ(g, 0.0f);
    } else {
      EXPECT_NEAR(g, 2.0f, 1e-5f);  // 1/keep = 2
    }
  }
}

TEST(TapeTest, CrossEntropyLossValue) {
  Tape tape;
  VarId logits = tape.Leaf(Tensor::Zeros({2, 4}));
  VarId loss = tape.CrossEntropy(logits, {1, 3});
  EXPECT_NEAR(tape.value(loss).item(), std::log(4.0f), 1e-5f);
  tape.Backward(loss);
  // Gradient: (p - onehot)/2 with p = 0.25.
  EXPECT_NEAR(tape.grad(logits).at(0, 1), (0.25f - 1.0f) / 2.0f, 1e-5f);
  EXPECT_NEAR(tape.grad(logits).at(0, 0), 0.25f / 2.0f, 1e-5f);
}

TEST(TapeTest, ConcatRowsStacksAndSplitsGrad) {
  Tape tape;
  VarId a = tape.Leaf(Tensor({1, 2}, {1, 2}));
  VarId b = tape.Leaf(Tensor({2, 2}, {3, 4, 5, 6}));
  VarId c = tape.ConcatRows({a, b});
  EXPECT_EQ(tape.value(c).rows(), 3);
  EXPECT_FLOAT_EQ(tape.value(c).at(2, 1), 6.0f);
  VarId scaled = tape.Scale(c, 2.0f);
  tape.Backward(tape.SumAll(scaled));
  EXPECT_FLOAT_EQ(tape.grad(a).at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(tape.grad(b).at(1, 1), 2.0f);
}

TEST(TapeTest, EmbeddingGradAccumulatesRepeatedIds) {
  Tape tape;
  VarId table = tape.Leaf(Tensor({3, 2}, {0, 0, 0, 0, 0, 0}));
  VarId emb = tape.Embedding(table, {1, 1, 2});
  tape.Backward(tape.SumAll(emb));
  EXPECT_FLOAT_EQ(tape.grad(table).at(1, 0), 2.0f);  // id 1 used twice
  EXPECT_FLOAT_EQ(tape.grad(table).at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(tape.grad(table).at(0, 0), 0.0f);
}

TEST(TapeTest, AttentionFirstTokenAttendsOnlyToItself) {
  // With T=2: output row 0 must equal V row 0 (causal mask).
  Rng rng(5);
  Tape tape;
  Tensor q = Tensor::Normal({2, 4}, 1.0f, &rng);
  Tensor k = Tensor::Normal({2, 4}, 1.0f, &rng);
  Tensor v = Tensor::Normal({2, 4}, 1.0f, &rng);
  VarId qv = tape.Leaf(q), kv = tape.Leaf(k), vv = tape.Leaf(v);
  VarId out = tape.CausalSelfAttention(qv, kv, vv, /*batch=*/1, /*seq=*/2,
                                       /*heads=*/2);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(tape.value(out).at(0, j), v.at(0, j), 1e-5f);
  }
}

TEST(TapeTest, AttentionUniformKeysAverageValues) {
  // If all keys equal, attention over t+1 positions is uniform.
  Tape tape;
  Tensor q = Tensor::Full({3, 2}, 1.0f);
  Tensor k = Tensor::Full({3, 2}, 1.0f);
  Tensor v({3, 2}, {0, 0, 3, 3, 6, 6});
  VarId out = tape.CausalSelfAttention(tape.Leaf(q), tape.Leaf(k),
                                       tape.Leaf(v), 1, 3, 1);
  EXPECT_NEAR(tape.value(out).at(0, 0), 0.0f, 1e-5f);
  EXPECT_NEAR(tape.value(out).at(1, 0), 1.5f, 1e-5f);
  EXPECT_NEAR(tape.value(out).at(2, 0), 3.0f, 1e-5f);
}

TEST(TapeTest, ClearAllowsReuse) {
  Tape tape;
  tape.Leaf(Tensor({1}, {1}));
  EXPECT_EQ(tape.size(), 1u);
  tape.Clear();
  EXPECT_EQ(tape.size(), 0u);
  VarId x = tape.Leaf(Tensor({1}, {5}));
  EXPECT_EQ(x, 0);
}

TEST(TapeTest, SliceColsForwardBackward) {
  Tape tape;
  VarId x = tape.Leaf(Tensor({1, 4}, {1, 2, 3, 4}));
  VarId mid = tape.SliceCols(x, 1, 3);
  tape.Backward(tape.SumAll(mid));
  EXPECT_FLOAT_EQ(tape.grad(x).at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(tape.grad(x).at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(tape.grad(x).at(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(tape.grad(x).at(0, 3), 0.0f);
}

}  // namespace
}  // namespace rt
