#include "serve/chaos.h"

#include <chrono>

#include "serve/http.h"
#include "util/logging.h"

namespace rt {
namespace {

/// One entry in the deterministic fault menu. `amount` and `count`
/// mirror FaultSpec; probability stays 1.0 — determinism comes from the
/// driver's seeded choices, not per-hit coin flips.
struct ChaosFault {
  const char* point;
  int amount;
  int count;
};

/// Weighted toward transient request-level faults; the process-level
/// ones (exit/hang) are rare enough that the fleet usually has spare
/// healthy replicas to absorb them.
constexpr ChaosFault kFaultMenu[] = {
    {"backend.generate.latency", /*amount=*/40, /*count=*/2},
    {"backend.generate.latency", /*amount=*/40, /*count=*/2},
    {"backend.generate.fail", /*amount=*/0, /*count=*/1},
    {"backend.generate.fail", /*amount=*/0, /*count=*/1},
    {"http.write.slow", /*amount=*/20, /*count=*/3},
    {"http.read.slow", /*amount=*/10, /*count=*/3},
    {"replica.slow-accept", /*amount=*/50, /*count=*/3},
    {"replica.hang", /*amount=*/2000, /*count=*/1},
    {"replica.exit", /*amount=*/0, /*count=*/1},
};
constexpr size_t kFaultMenuSize =
    sizeof(kFaultMenu) / sizeof(kFaultMenu[0]);

}  // namespace

ChaosDriver::ChaosDriver(ReplicaFleet* fleet, ChaosOptions options)
    : fleet_(fleet), options_(options), rng_(options.seed) {
  if (options_.interval_ms < 50) options_.interval_ms = 50;
}

ChaosDriver::~ChaosDriver() { Stop(); }

void ChaosDriver::Start() {
  if (options_.seed == 0 || running_.load()) return;
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
  RT_LOG(Info) << "chaos mode armed, seed=" << options_.seed
               << " interval_ms=" << options_.interval_ms;
}

void ChaosDriver::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void ChaosDriver::Loop() {
  while (running_.load()) {
    ArmOne();
    // Interruptible sleep so Stop() does not wait out a whole tick.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.interval_ms);
    while (running_.load() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

void ChaosDriver::ArmOne() {
  std::vector<ReplicaStatus> healthy;
  for (const ReplicaStatus& status : fleet_->Snapshot()) {
    if (status.state == ReplicaState::kHealthy) healthy.push_back(status);
  }
  if (healthy.empty()) return;
  // Both draws come from the seeded stream, so the whole schedule —
  // which replica, which fault, in which order — replays byte-for-byte
  // under the same seed.
  const ReplicaStatus target =
      healthy[rng_.NextBelow(healthy.size())];
  const ChaosFault& fault = kFaultMenu[rng_.NextBelow(kFaultMenuSize)];

  Json body{Json::Object{}};
  body.Set("action", "arm");
  body.Set("point", fault.point);
  body.Set("count", fault.count);
  if (fault.amount > 0) body.Set("amount", fault.amount);
  HttpCallOptions call;
  call.timeout_ms = options_.admin_timeout_ms;
  auto resp = HttpPost(target.port, "/v1/admin/fault", body.Dump(),
                       "application/json", call);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (!resp.ok() || resp->status != 200) {
    // A replica can die between the snapshot and the arm; that is the
    // game we are playing. Count it and move on.
    ++arm_failures_;
    return;
  }
  ++armed_total_;
  for (auto& [point, count] : armed_by_point_) {
    if (point == fault.point) {
      ++count;
      return;
    }
  }
  armed_by_point_.emplace_back(fault.point, 1);
}

Json ChaosDriver::StatsJson() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  Json out{Json::Object{}};
  out.Set("enabled", options_.seed != 0);
  out.Set("seed", static_cast<double>(options_.seed));
  out.Set("interval_ms", options_.interval_ms);
  out.Set("armed_total", static_cast<double>(armed_total_));
  out.Set("arm_failures", static_cast<double>(arm_failures_));
  Json armed{Json::Object{}};
  for (const auto& [point, count] : armed_by_point_) {
    armed.Set(point, static_cast<double>(count));
  }
  out.Set("armed", std::move(armed));
  return out;
}

}  // namespace rt
