#ifndef RATATOUILLE_SERVE_BATCH_SCHEDULER_H_
#define RATATOUILLE_SERVE_BATCH_SCHEDULER_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "models/language_model.h"
#include "serve/sched_policy.h"
#include "util/rng.h"

namespace rt::serve {

/// How the scheduler orders its pending queue. kEdf is the production
/// policy (SchedKey order: tighter deadline first, interactive before
/// batch, then arrival); kFifo exists so benchmarks can A/B the
/// pre-EDF behavior in one run. With uniform deadlines the two are
/// identical — FIFO is EDF's degenerate case, which the determinism
/// test locks down bitwise.
enum class BatchSchedPolicy {
  kEdf,
  kFifo,
};

/// Tuning knobs for the cross-session batched decode engine.
struct BatchSchedulerOptions {
  /// Rows coalesced into one batched model step. Clamped into
  /// [1, kMaxDecodeBatch]; also bounds resident sequences, so the
  /// pooled cache arena tops out at this many slots.
  int max_batch = 4;
  /// Prompt tokens bulk-fed per scheduler iteration per row (chunked
  /// prefill). Admitted rows prefill inside the loop, so a long prompt
  /// never blocks co-resident decoding rows for more than one chunk.
  int prefill_chunk = 16;
  /// Shares prefill KV state between requests with a common prompt
  /// prefix. Tokens are bitwise identical either way (the restore is a
  /// memcpy of deterministically-computed state); the cache only
  /// changes prefill cost.
  bool enable_prefix_cache = true;
  PrefixCacheOptions prefix_cache;
  /// Pending-queue ordering; see BatchSchedPolicy.
  BatchSchedPolicy policy = BatchSchedPolicy::kEdf;
  /// Cap on the fraction of batch slots batch-class rows may occupy
  /// at once (`--batch-share`). Clamped to [0, 1]; the cap is
  /// max(1, floor(batch_share * max_batch)) so batch traffic is
  /// throttled, never starved. 1.0 = no cap (default).
  double batch_share = 1.0;
};

/// Aggregate scheduler counters, surfaced at /v1/metrics.
struct BatchSchedulerStats {
  /// Batched model steps executed.
  long long steps = 0;
  /// Total row-steps (the sum of batch sizes over all steps); one
  /// row-step feeds one token of one sequence.
  long long row_steps = 0;
  /// Sequences admitted into / retired from the decode batch.
  long long admitted = 0;
  long long completed = 0;
  /// Largest batch coalesced so far.
  int peak_occupancy = 0;
  /// Sequences currently resident / queued for admission.
  int active = 0;
  int pending = 0;
  /// Batch-class rows evicted mid-decode (with a valid partial result,
  /// finish_reason=preempted) so a tighter-deadline interactive row
  /// could take the slot.
  long long preemptions = 0;
  /// Pending rows shed at admission because their deadline had already
  /// passed — running them would only burn a batch slot into a
  /// guaranteed deadline_exceeded.
  long long shed_unmeetable = 0;
  /// Heap allocations charged to the decoder's pooled cache arena.
  long long arena_heap_allocs = 0;
  /// Shared-prefix KV cache counters (all zero when disabled).
  long long prefix_cache_hits = 0;
  long long prefix_cache_misses = 0;
  long long prefix_cache_evictions = 0;
  int prefix_cache_entries = 0;

  /// Mean rows per step — the batch-occupancy gauge.
  double mean_occupancy() const {
    return steps > 0 ? static_cast<double>(row_steps) / steps : 0.0;
  }
};

/// Cross-session continuous-batching decode engine: a single scheduler
/// thread coalesces the runnable sequences of concurrent Generate()
/// calls into one batched forward per iteration (one token per row),
/// admitting queued requests the moment a slot frees and evicting each
/// row individually on stop-token / max-tokens / context-full /
/// deadline / cancellation — the same per-request FinishReason
/// semantics as LanguageModel::Generate, with bitwise-identical tokens
/// at every batch size (sampling stays per-row on a per-request Rng).
///
/// Beam-search requests (options.beam_width > 0) and models without a
/// BatchDecoder run inline on the scheduler thread via the sequential
/// Generate path, so callers never need to special-case them.
///
/// Thread-safe: any number of threads may call Generate concurrently.
/// The scheduler borrows `model`; the caller keeps it alive.
class BatchScheduler {
 public:
  explicit BatchScheduler(LanguageModel* model,
                          BatchSchedulerOptions options = {});
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Decodes `prompt` with per-request options, blocking until the
  /// sequence finishes or aborts. Mirrors LanguageModel::Generate
  /// exactly, including partial results on deadline/cancellation.
  /// After Stop(), returns immediately with FinishReason::kCancelled.
  GenerationResult Generate(const std::vector<int>& prompt,
                            const GenerationOptions& options);

  /// Evicts every resident and queued sequence with kCancelled and
  /// joins the scheduler thread. Idempotent; the destructor calls it.
  void Stop();

  BatchSchedulerStats stats() const;
  int max_batch() const { return max_batch_; }

 private:
  struct Request;

  void SchedulerLoop();
  /// Moves queued requests into the resident set while slots remain,
  /// in SchedKey order under kEdf (arrival order under kFifo) and
  /// subject to the batch-class occupancy cap. Already-expired pending
  /// rows are shed into `shed` instead of admitted; the caller
  /// fulfills their promises outside the lock.
  void AdmitLocked(std::vector<std::unique_ptr<Request>>* shed);
  /// Number of resident batch-class rows (scheduler thread only).
  int ActiveBatchRows() const;
  /// Evicts the surplus-slack batch-class row whose slot the tightest
  /// pending interactive row provably needs, if any. Returns the
  /// evicted request (promise not yet fulfilled) or null.
  std::unique_ptr<Request> MaybePreempt();
  /// Runs one batched iteration over the resident set. Returns false
  /// when there was nothing to do.
  bool StepOnce();

  LanguageModel* model_;
  std::unique_ptr<BatchDecoder> decoder_;  // null: inline fallback only
  int max_batch_;
  int prefill_chunk_;
  BatchSchedPolicy policy_;
  /// Max resident batch-class rows: max(1, floor(batch_share *
  /// max_batch)). Equal to max_batch_ when batch_share = 1.
  int batch_cap_;
  /// EMA of one batched step's wall time in ns (scheduler thread
  /// only). Feeds the preemption check's time-to-free estimate; 0
  /// until the first step, so nothing preempts before the scheduler
  /// has a cost model.
  double step_ema_ns_ = 0.0;
  /// Step scratch: [max_batch, vocab] logits block.
  std::vector<float> logits_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<std::unique_ptr<Request>> pending_;
  /// Owned by the scheduler thread outside admission (which runs under
  /// mutex_ on the scheduler thread only).
  std::vector<std::unique_ptr<Request>> active_;

  // Counters; guarded by mutex_. active_count_ shadows active_.size()
  // so stats() never touches the scheduler-thread-confined vector.
  long long steps_ = 0;
  long long row_steps_ = 0;
  long long admitted_ = 0;
  long long completed_ = 0;
  long long preemptions_ = 0;
  long long shed_unmeetable_ = 0;
  int peak_occupancy_ = 0;
  int active_count_ = 0;
  /// Monotone arrival stamp for SchedKey.seq; guarded by mutex_.
  uint64_t arrival_seq_ = 0;

  std::thread thread_;
};

}  // namespace rt::serve

#endif  // RATATOUILLE_SERVE_BATCH_SCHEDULER_H_
