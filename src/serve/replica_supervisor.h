#ifndef RATATOUILLE_SERVE_REPLICA_SUPERVISOR_H_
#define RATATOUILLE_SERVE_REPLICA_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/rng.h"
#include "util/status.h"

namespace rt {

/// Lifecycle of one supervised backend process.
///
///   starting   -> spawned, not yet answering /v1/healthz; covered by
///                 the startup grace (model load / training).
///   healthy    -> probes answer; the router may dispatch to it.
///   draining   -> wedged (probe timeouts) and sent SIGTERM; killed
///                 with SIGKILL if it out-lives the drain grace.
///   restarting -> dead and waiting out the exponential backoff before
///                 the next spawn.
enum class ReplicaState { kStarting, kHealthy, kDraining, kRestarting };

/// Stable lowercase name, e.g. "healthy" (for /v1/metrics).
const char* ReplicaStateName(ReplicaState state);

/// One replica as the router sees it.
struct ReplicaStatus {
  int index = 0;
  int port = 0;
  long long pid = -1;  ///< -1 while no process is running
  ReplicaState state = ReplicaState::kStarting;
  /// Times this slot was respawned after its initial spawn.
  long long restarts = 0;
  /// Consecutive failed liveness probes (resets on success).
  long long probe_failures = 0;
};

/// What the router needs from a set of backends: how many there are,
/// where they listen, which are dispatchable, and a channel to report
/// transport-level failures so supervision can react faster than the
/// next probe tick.
class ReplicaFleet {
 public:
  virtual ~ReplicaFleet() = default;

  virtual int size() const = 0;

  virtual std::vector<ReplicaStatus> Snapshot() const = 0;

  /// The router could not complete an exchange with replica `index`
  /// (connect refused, mid-response hangup, per-try timeout). Default:
  /// ignored.
  virtual void ReportFailure(int index) { (void)index; }

  /// Flight-recorder postmortems collected from dead replicas, newest
  /// last (JSON array, bounded). Default: none.
  virtual Json PostmortemsJson() const { return Json{Json::Array{}}; }

  /// Total postmortem files collected over the fleet's lifetime.
  virtual long long postmortems_collected() const { return 0; }
};

/// A fleet over caller-managed, always-healthy backends — no processes,
/// no probes. Lets the router (and its tests and bench) run against
/// in-process BackendServices.
class StaticFleet : public ReplicaFleet {
 public:
  explicit StaticFleet(std::vector<int> ports) : ports_(std::move(ports)) {}

  int size() const override { return static_cast<int>(ports_.size()); }

  std::vector<ReplicaStatus> Snapshot() const override {
    std::vector<ReplicaStatus> out;
    out.reserve(ports_.size());
    for (size_t i = 0; i < ports_.size(); ++i) {
      ReplicaStatus status;
      status.index = static_cast<int>(i);
      status.port = ports_[i];
      status.state = ReplicaState::kHealthy;
      out.push_back(status);
    }
    return out;
  }

 private:
  std::vector<int> ports_;
};

/// Tuning for the process supervisor.
struct ReplicaSupervisorOptions {
  /// argv template for one replica; every occurrence of "{port}" in an
  /// element is replaced with the replica's port. command[0] is the
  /// executable path.
  std::vector<std::string> command;
  int replicas = 1;
  /// First replica's port; replica i listens on base_port + i. 0 picks
  /// free ports at Start(). Ports stay stable across restarts.
  int base_port = 0;
  /// Liveness probe cadence and per-probe budget. A probe is one GET
  /// /v1/healthz over a per-replica keep-alive connection.
  int probe_interval_ms = 200;
  int probe_timeout_ms = 500;
  /// Consecutive failed probes before a live process counts as wedged
  /// and is drained. Router-reported failures count toward this too.
  int probe_failures_to_restart = 3;
  /// How long a fresh spawn may stay unresponsive before it is treated
  /// as wedged (model load / training happens in this window).
  int startup_grace_ms = 180000;
  /// SIGTERM-to-SIGKILL grace when draining a wedged replica (and when
  /// stopping the fleet).
  int drain_grace_ms = 2000;
  /// Exponential restart backoff: initial delay, doubling per
  /// consecutive restart, capped, with deterministic jitter.
  int backoff_initial_ms = 100;
  int backoff_max_ms = 5000;
  uint64_t jitter_seed = 1;
  /// When non-empty, where each replica writes its flight-recorder
  /// postmortem file; "{port}" is replaced with the replica's port.
  /// The monitor collects (parses, annotates, removes) the file when
  /// that replica's process dies.
  std::string postmortem_path_template;
};

/// Reads and parses a flight-recorder postmortem file left behind by a
/// dead replica, removing it afterwards when `remove_after` is set (so
/// a stale dump is never collected twice). Split out from the
/// supervisor so tests can exercise collection without fork/exec.
StatusOr<Json> CollectPostmortemFile(const std::string& path,
                                     bool remove_after);

/// Supervised fleet of fork/exec'd backend processes (the elastic-agent
/// idiom: spawn, monitor, restart on failure). A monitor thread reaps
/// exits, probes /v1/healthz, drains wedged replicas (SIGTERM, then
/// SIGKILL after the grace), and respawns dead ones with exponential
/// backoff. Probe I/O happens off the state mutex, so Snapshot() never
/// blocks on a slow replica.
class ReplicaSupervisor : public ReplicaFleet {
 public:
  explicit ReplicaSupervisor(ReplicaSupervisorOptions options);
  ~ReplicaSupervisor() override;

  ReplicaSupervisor(const ReplicaSupervisor&) = delete;
  ReplicaSupervisor& operator=(const ReplicaSupervisor&) = delete;

  /// Resolves ports, spawns every replica, starts the monitor.
  Status Start();

  /// SIGTERMs the fleet, escalates to SIGKILL after the drain grace,
  /// reaps everything, joins the monitor. Idempotent.
  void Stop();

  /// Blocks until at least `min_healthy` replicas answer probes, or
  /// fails after `timeout_ms`.
  Status WaitHealthy(int min_healthy, int timeout_ms);

  int size() const override;
  std::vector<ReplicaStatus> Snapshot() const override;
  void ReportFailure(int index) override;

  /// Fleet-wide respawn count (for /v1/metrics and the chaos gate).
  long long total_restarts() const;

  Json PostmortemsJson() const override;
  long long postmortems_collected() const override;

 private:
  struct Replica {
    int index = 0;
    int port = 0;
    long long pid = -1;
    ReplicaState state = ReplicaState::kStarting;
    long long restarts = 0;
    int probe_failures = 0;   // consecutive, resets on a good probe
    int pending_reports = 0;  // router-reported failures since last tick
    bool ever_spawned = false;
    int backoff_ms = 0;
    std::chrono::steady_clock::time_point state_since{};
    /// kDraining: when to escalate to SIGKILL. kRestarting: when to
    /// respawn.
    std::chrono::steady_clock::time_point next_action{};
  };

  void MonitorLoop();
  /// Forks and execs replica `index`'s process. Caller holds mutex_.
  void SpawnLocked(Replica& replica);
  /// Moves a dead replica into kRestarting with backoff. Caller holds
  /// mutex_.
  void ScheduleRestartLocked(Replica& replica);

  /// Bound on retained postmortems: old crashes age out, and a
  /// crash-looping replica cannot grow the router's memory.
  static constexpr size_t kMaxPostmortems = 8;

  ReplicaSupervisorOptions options_;
  mutable std::mutex mutex_;
  std::vector<Replica> replicas_;
  std::deque<Json> postmortems_;  // newest last, bounded
  long long postmortems_collected_ = 0;
  Rng jitter_;
  long long total_restarts_ = 0;
  std::atomic<bool> running_{false};
  std::thread monitor_;
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_REPLICA_SUPERVISOR_H_
