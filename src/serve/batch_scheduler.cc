#include "serve/batch_scheduler.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <limits>
#include <utility>

#include "models/sampler.h"
#include "util/flight_recorder.h"
#include "util/obs.h"

namespace rt::serve {

/// One in-flight Generate() call. Crosses the mutex exactly once on the
/// way in (pending_) and is thread-confined to the scheduler thread
/// afterwards; the promise carries the result back to the caller.
struct BatchScheduler::Request {
  std::vector<int> prompt;
  GenerationOptions options;
  /// EDF ordering key: deadline from options.deadline, class from
  /// options.sched_class, seq stamped at arrival under mutex_.
  SchedKey key;
  Rng rng{0};
  /// Pooled model state; null until first scheduled (lazy so an
  /// aborted-before-start request never touches the cache arena).
  std::unique_ptr<BatchSequence> seq;
  GenerationResult result;
  /// Next prompt index to feed; decode phase begins when the prompt is
  /// exhausted (or the context fills mid-prompt, like the sequential
  /// path's prompt-loop break).
  size_t feed_idx = 0;
  int next_token = 0;
  bool prompt_done = false;
  /// When this request's first row-step ran; closes the prefill span
  /// once the prompt is exhausted.
  obs::TimePoint prefill_start{};
  /// Beam search / unsupported models run model_->Generate inline.
  bool inline_generate = false;
  bool done = false;
  std::promise<GenerationResult> promise;
};

BatchScheduler::BatchScheduler(LanguageModel* model,
                               BatchSchedulerOptions options)
    : model_(model),
      decoder_(model->MakeBatchDecoder()),
      max_batch_(std::clamp(options.max_batch, 1, kMaxDecodeBatch)),
      prefill_chunk_(std::max(options.prefill_chunk, 1)),
      policy_(options.policy),
      batch_cap_(std::max(
          1, static_cast<int>(std::clamp(options.batch_share, 0.0, 1.0) *
                              std::clamp(options.max_batch, 1,
                                         kMaxDecodeBatch)))) {
  if (decoder_ != nullptr) {
    logits_.resize(static_cast<size_t>(max_batch_) *
                   decoder_->vocab_size());
    if (options.enable_prefix_cache) {
      decoder_->EnablePrefixCache(options.prefix_cache);
    }
  }
  thread_ = std::thread([this] { SchedulerLoop(); });
}

BatchScheduler::~BatchScheduler() { Stop(); }

GenerationResult BatchScheduler::Generate(
    const std::vector<int>& prompt, const GenerationOptions& options) {
  assert(!prompt.empty());
  auto request = std::make_unique<Request>();
  request->prompt = prompt;
  request->options = options;
  request->rng = Rng(options.seed);
  request->inline_generate =
      options.beam_width > 0 || decoder_ == nullptr;
  request->key.deadline = SchedKey::DeadlinePoint(options.deadline);
  request->key.cls = options.sched_class == 1 ? TrafficClass::kBatch
                                              : TrafficClass::kInteractive;
  std::future<GenerationResult> future = request->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      GenerationResult cancelled;
      cancelled.finish = FinishReason::kCancelled;
      return cancelled;
    }
    request->key.seq = arrival_seq_++;
    pending_.push_back(std::move(request));
  }
  cv_.notify_all();
  return future.get();
}

void BatchScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

BatchSchedulerStats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BatchSchedulerStats stats;
  stats.steps = steps_;
  stats.row_steps = row_steps_;
  stats.admitted = admitted_;
  stats.completed = completed_;
  stats.peak_occupancy = peak_occupancy_;
  stats.active = active_count_;
  stats.pending = static_cast<int>(pending_.size());
  stats.preemptions = preemptions_;
  stats.shed_unmeetable = shed_unmeetable_;
  stats.arena_heap_allocs =
      decoder_ != nullptr ? decoder_->arena_heap_allocs() : 0;
  if (decoder_ != nullptr) {
    const PrefixCacheStats cache = decoder_->prefix_cache_stats();
    stats.prefix_cache_hits = cache.hits;
    stats.prefix_cache_misses = cache.misses;
    stats.prefix_cache_evictions = cache.evictions;
    stats.prefix_cache_entries = cache.entries;
  }
  return stats;
}

void BatchScheduler::SchedulerLoop() {
  // Flight-recorder gauges: the crash handler can only read
  // pre-registered atomics, so occupancy is mirrored out here every
  // pass instead of being computed from the locked queues at dump time.
  auto& recorder = obs::FlightRecorder::Instance();
  static const int kGaugeActive = recorder.RegisterGauge("sched_active");
  static const int kGaugePending =
      recorder.RegisterGauge("sched_pending");
  static const int kGaugeSteps = recorder.RegisterGauge("sched_steps");
  static const int kGaugePreemptions =
      recorder.RegisterGauge("sched_preemptions");
  for (;;) {
    std::vector<std::unique_ptr<Request>> shed;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return stop_ || !pending_.empty() || !active_.empty();
      });
      if (stop_) break;
      AdmitLocked(&shed);
      recorder.SetGauge(kGaugeActive,
                        static_cast<long long>(active_.size()));
      recorder.SetGauge(kGaugePending,
                        static_cast<long long>(pending_.size()));
      recorder.SetGauge(kGaugeSteps, steps_);
      recorder.SetGauge(kGaugePreemptions, preemptions_);
    }
    // Unmeetable rows shed at admission finish here, outside the lock:
    // empty partial result, the same kDeadlineExceeded a zero-token
    // expired row would get once admitted — minus the wasted slot.
    for (auto& request : shed) {
      request->result.finish = FinishReason::kDeadlineExceeded;
      request->promise.set_value(std::move(request->result));
    }
    if (std::unique_ptr<Request> victim = MaybePreempt()) {
      // The evicted row keeps everything it decoded; its caller gets a
      // valid partial result with finish_reason=preempted while the
      // freed slot admits the tighter-deadline row on the next pass.
      obs::RecordSpanSince(obs::Stage::kPreempt, victim->options.trace_id,
                           obs::Now(), "tokens_kept",
                           static_cast<long long>(victim->result.ids.size()));
      victim->seq.reset();  // return the pooled cache slot
      victim->result.finish = FinishReason::kPreempted;
      victim->promise.set_value(std::move(victim->result));
      continue;  // re-admit before stepping
    }
    StepOnce();
  }
  // Drain: every resident and queued sequence aborts with kCancelled,
  // keeping whatever partial ids it had (the PR-2 shutdown contract).
  std::vector<std::unique_ptr<Request>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& request : active_) orphans.push_back(std::move(request));
    active_.clear();
    active_count_ = 0;
    while (!pending_.empty()) {
      orphans.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }
  for (auto& request : orphans) {
    request->seq.reset();
    request->result.finish = FinishReason::kCancelled;
    request->promise.set_value(std::move(request->result));
  }
}

void BatchScheduler::AdmitLocked(
    std::vector<std::unique_ptr<Request>>* shed) {
  if (policy_ == BatchSchedPolicy::kFifo) {
    // Faithful pre-EDF baseline for A/B benchmarks: arrival order, no
    // shedding, no batch-class cap.
    while (!pending_.empty() &&
           static_cast<int>(active_.size()) < max_batch_) {
      active_.push_back(std::move(pending_.front()));
      pending_.pop_front();
      ++admitted_;
      ++active_count_;
    }
    return;
  }
  const auto now = SchedKey::Clock::now();
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (SchedPolicy::Unmeetable((*it)->key, now)) {
      shed->push_back(std::move(*it));
      it = pending_.erase(it);
      ++shed_unmeetable_;
    } else {
      ++it;
    }
  }
  int batch_rows = ActiveBatchRows();
  while (!pending_.empty() &&
         static_cast<int>(active_.size()) < max_batch_) {
    // EDF selection, skipping batch-class rows once the --batch-share
    // cap is reached (interactive rows still admit past it).
    size_t best = pending_.size();
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i]->key.cls == TrafficClass::kBatch &&
          batch_rows >= batch_cap_) {
        continue;
      }
      if (best == pending_.size() ||
          pending_[i]->key.Before(pending_[best]->key)) {
        best = i;
      }
    }
    if (best == pending_.size()) break;  // only capped batch rows left
    if (pending_[best]->key.cls == TrafficClass::kBatch) ++batch_rows;
    active_.push_back(std::move(pending_[best]));
    pending_.erase(pending_.begin() +
                   static_cast<std::ptrdiff_t>(best));
    ++admitted_;
    ++active_count_;
  }
}

int BatchScheduler::ActiveBatchRows() const {
  int n = 0;
  for (const auto& request : active_) {
    if (request->key.cls == TrafficClass::kBatch) ++n;
  }
  return n;
}

std::unique_ptr<BatchScheduler::Request> BatchScheduler::MaybePreempt() {
  // Preemption needs a cost model (one step's EMA) before it can
  // *prove* a pending deadline unmeetable; until the first batched
  // step runs, nothing is evicted.
  if (policy_ != BatchSchedPolicy::kEdf || step_ema_ns_ <= 0.0) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (static_cast<int>(active_.size()) < max_batch_ || pending_.empty()) {
    return nullptr;  // a free slot (or empty queue) needs no eviction
  }
  // Tightest pending interactive row with a finite deadline — batch
  // rows never preempt, and a row without a deadline can always wait.
  const Request* urgent = nullptr;
  for (const auto& request : pending_) {
    if (request->key.cls != TrafficClass::kInteractive) continue;
    if (request->key.deadline == SchedKey::Clock::time_point::max()) {
      continue;
    }
    if (urgent == nullptr || request->key.Before(urgent->key)) {
      urgent = request.get();
    }
  }
  if (urgent == nullptr) return nullptr;
  const auto now = SchedKey::Clock::now();
  const auto slack = urgent->key.SlackAt(now);
  // Soonest any slot frees naturally: the smallest remaining token
  // budget across resident rows, at one batched step per token.
  long long min_remaining = std::numeric_limits<long long>::max();
  for (const auto& request : active_) {
    const long long remaining =
        std::max<long long>(0, request->options.max_new_tokens -
                                   static_cast<long long>(
                                       request->result.ids.size()));
    min_remaining = std::min(min_remaining, remaining);
  }
  const double wait_ns = step_ema_ns_ * static_cast<double>(min_remaining);
  if (static_cast<double>(slack.count()) >= wait_ns) {
    return nullptr;  // the deadline survives waiting for a natural exit
  }
  // Victim: the batch-class row with the most slack, and strictly more
  // of it than the row it yields to (surplus — never evict a row into
  // the same miss it prevents).
  size_t victim = active_.size();
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]->key.cls != TrafficClass::kBatch) continue;
    if (active_[i]->key.SlackAt(now) <= slack) continue;
    if (victim == active_.size() ||
        active_[victim]->key.Before(active_[i]->key)) {
      victim = i;
    }
  }
  if (victim == active_.size()) return nullptr;
  std::unique_ptr<Request> out = std::move(active_[victim]);
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(victim));
  ++preemptions_;
  ++completed_;
  --active_count_;
  return out;
}

bool BatchScheduler::StepOnce() {
  // Inline requests (beam search, or a model without a BatchDecoder)
  // run the sequential path to completion on this thread; Generate
  // itself honors deadline/cancellation.
  for (size_t i = 0; i < active_.size();) {
    if (!active_[i]->inline_generate) {
      ++i;
      continue;
    }
    std::unique_ptr<Request> request = std::move(active_[i]);
    active_.erase(active_.begin() +
                  static_cast<std::ptrdiff_t>(i));
    GenerationResult result =
        model_->Generate(request->prompt, request->options);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
      --active_count_;
    }
    request->promise.set_value(std::move(result));
  }
  if (active_.empty() || decoder_ == nullptr) return false;

  const int vocab = decoder_->vocab_size();
  const int max_ctx = decoder_->max_context();
  std::array<int, kMaxDecodeBatch> tokens;
  std::array<BatchSequence*, kMaxDecodeBatch> rows;
  std::array<Request*, kMaxDecodeBatch> members;
  int m = 0;
  for (auto& slot : active_) {
    Request* request = slot.get();
    // Token-granularity abort check, before any model work — an
    // already-expired request finishes with zero tokens.
    if (auto abort = CheckAbort(request->options)) {
      request->done = true;
      request->result.finish = *abort;
      continue;
    }
    if (request->options.max_new_tokens <= 0) {
      request->done = true;
      request->result.finish = FinishReason::kMaxTokens;
      continue;
    }
    if (request->seq == nullptr) {
      // First scheduling: restore the longest cached prompt prefix, if
      // any, and resume feeding right after it. The restore is a
      // memcpy, so the first token's cost no longer scales with the
      // shared prefix length.
      int restored = 0;
      request->prefill_start = obs::Now();
      request->seq = decoder_->NewSequenceWithPrefix(
          request->prompt.data(),
          static_cast<int>(request->prompt.size()), &restored);
      if (restored > 0) {
        obs::RecordSpanSince(obs::Stage::kPrefillCached,
                             request->options.trace_id,
                             request->prefill_start, "restored_tokens",
                             restored);
      }
      request->feed_idx = static_cast<size_t>(restored);
      request->result.ids.reserve(request->options.max_new_tokens);
    }
    if (!request->prompt_done) {
      // Chunked prefill inside the loop: bulk-feed up to one chunk of
      // prompt tokens, always leaving the final prompt token for
      // StepBatch so the row ends up with sampling logits. Rows with
      // prompt left after their chunk skip this iteration's batched
      // step instead of blocking co-resident decoding rows.
      size_t remaining = request->prompt.size() - request->feed_idx;
      if (remaining > 1) {
        size_t chunk =
            std::min<size_t>(static_cast<size_t>(prefill_chunk_),
                             remaining - 1);
        if (max_ctx > 0) {
          const int room = max_ctx - 1 - request->seq->len();
          chunk = std::min<size_t>(
              chunk, room > 0 ? static_cast<size_t>(room) : 0);
        }
        if (chunk > 0) {
          decoder_->PrefillSeq(request->seq.get(),
                               request->prompt.data() + request->feed_idx,
                               static_cast<int>(chunk));
          request->feed_idx += chunk;
          remaining -= chunk;
        }
        const bool context_edge =
            max_ctx > 0 && request->seq->len() >= max_ctx - 1;
        if (remaining > 1 && !context_edge) continue;
      }
      if (request->feed_idx + 1 == request->prompt.size()) {
        // The slot now holds the prefill of every prompt token but the
        // last (which always goes through StepBatch for sampling
        // logits). Publish that snapshot so a follower sharing the
        // prefix — including an identical repeat prompt — restores it
        // instead of re-encoding. (No-op on duplicates, when the
        // context filled mid-prompt, or without a cache.)
        decoder_->PublishPrefix(request->seq.get(),
                                request->prompt.data(),
                                static_cast<int>(request->feed_idx));
      }
      request->next_token = request->prompt[request->feed_idx];
    }
    tokens[m] = request->next_token;
    rows[m] = request->seq.get();
    members[m] = request;
    ++m;
  }

  if (m > 0) {
    // One span per batched step, annotated with the coalesced batch
    // size. The step is shared work, so the span lands on the first
    // member's track; its own "batch" arg says how many rows rode along.
    const auto step_start = obs::Now();
    decoder_->StepBatch(m, tokens.data(), rows.data(), logits_.data());
    obs::RecordSpanSince(obs::Stage::kBatchStep,
                         members[0]->options.trace_id, step_start, "batch",
                         m);
    // Per-step cost EMA — the preemption check's estimate of how long
    // a pending row waits for a slot to free naturally.
    const double step_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(obs::Now() -
                                                             step_start)
            .count());
    step_ema_ns_ =
        step_ema_ns_ <= 0.0 ? step_ns : 0.8 * step_ema_ns_ + 0.2 * step_ns;
    if (obs::ProfileEnabled()) {
      obs::KernelProfiler::Instance().CountTokens(m);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++steps_;
      row_steps_ += m;
      peak_occupancy_ = std::max(peak_occupancy_, m);
    }
    for (int i = 0; i < m; ++i) {
      Request* request = members[i];
      const float* row = logits_.data() + static_cast<size_t>(i) * vocab;
      bool sample_now = request->prompt_done;
      if (!request->prompt_done) {
        ++request->feed_idx;
        if (request->feed_idx >= request->prompt.size() ||
            (max_ctx > 0 && request->seq->len() >= max_ctx)) {
          // Prompt exhausted — or the context filled mid-prompt, which
          // the sequential path handles by breaking out of the prompt
          // loop and decoding from the last fed token's logits.
          request->prompt_done = true;
          sample_now = true;
          obs::RecordSpanSince(
              obs::Stage::kPrefill, request->options.trace_id,
              request->prefill_start, "prompt_tokens",
              static_cast<long long>(request->prompt.size()));
        } else {
          request->next_token = request->prompt[request->feed_idx];
        }
      }
      if (!sample_now) continue;
      const auto sample_start = obs::Now();
      const int next = SampleFromLogits(
          row, vocab, request->options.sampling, &request->rng);
      obs::RecordSpanSince(obs::Stage::kSample, request->options.trace_id,
                           sample_start);
      obs::CountSampledTokens(1);
      request->result.ids.push_back(next);
      if (request->options.on_token) request->options.on_token(next);
      // Same precedence as the sequential decode loop: stop token,
      // then context exhaustion, then the token budget.
      if (next == request->options.stop_token) {
        request->done = true;
        request->result.finish = FinishReason::kStopToken;
      } else if (max_ctx > 0 && request->seq->len() >= max_ctx) {
        request->done = true;
        request->result.finish = FinishReason::kContextFull;
      } else if (static_cast<int>(request->result.ids.size()) >=
                 request->options.max_new_tokens) {
        request->done = true;
        request->result.finish = FinishReason::kMaxTokens;
      } else {
        request->next_token = next;
      }
    }
  }

  // Evict finished rows individually; their slots admit queued
  // requests on the next iteration.
  for (size_t i = 0; i < active_.size();) {
    if (!active_[i]->done) {
      ++i;
      continue;
    }
    std::unique_ptr<Request> request = std::move(active_[i]);
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    request->seq.reset();  // return the pooled cache slot
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
      --active_count_;
    }
    request->promise.set_value(std::move(request->result));
  }
  return m > 0;
}

}  // namespace rt::serve
