#include "serve/backend_service.h"

#include <algorithm>

#include "util/timer.h"

namespace rt {

StatusOr<GenerateRequest> ParseGenerateRequest(const std::string& body) {
  RT_ASSIGN_OR_RETURN(Json doc, Json::Parse(body));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  GenerateRequest req;
  const Json& ingredients = doc.Get("ingredients");
  if (!ingredients.is_array() || ingredients.AsArray().empty()) {
    return Status::InvalidArgument(
        "'ingredients' must be a non-empty array");
  }
  for (const Json& item : ingredients.AsArray()) {
    if (!item.is_string()) {
      return Status::InvalidArgument("ingredients must be strings");
    }
    req.ingredients.push_back(item.AsString());
  }
  if (doc.Get("max_tokens").is_number()) {
    req.max_tokens = static_cast<int>(doc.Get("max_tokens").AsNumber());
    if (req.max_tokens <= 0 || req.max_tokens > 4096) {
      return Status::InvalidArgument("max_tokens out of range");
    }
  }
  if (doc.Get("temperature").is_number()) {
    req.temperature = doc.Get("temperature").AsNumber();
    if (req.temperature <= 0.0 || req.temperature > 10.0) {
      return Status::InvalidArgument("temperature out of range");
    }
  }
  if (doc.Get("top_k").is_number()) {
    req.top_k = static_cast<int>(doc.Get("top_k").AsNumber());
    if (req.top_k < 0) return Status::InvalidArgument("top_k negative");
  }
  if (doc.Get("seed").is_number()) {
    req.seed = static_cast<uint64_t>(doc.Get("seed").AsNumber());
  }
  return req;
}

Json RecipeToJson(const Recipe& recipe) {
  Json out{Json::Object{}};
  out.Set("title", recipe.title);
  Json ingredients{Json::Array{}};
  for (const auto& line : recipe.ingredients) {
    Json item{Json::Object{}};
    item.Set("quantity", line.quantity);
    item.Set("unit", line.unit);
    item.Set("name", line.name);
    item.Set("prep", line.prep);
    item.Set("text", line.Render());
    ingredients.Append(std::move(item));
  }
  out.Set("ingredients", std::move(ingredients));
  Json instructions{Json::Array{}};
  for (const auto& step : recipe.instructions) {
    instructions.Append(step);
  }
  out.Set("instructions", std::move(instructions));
  return out;
}

BackendService::BackendService(GenerateFn generate)
    : generate_(std::move(generate)) {
  server_.Route("GET", "/healthz", [](const HttpRequest&) {
    return HttpResponse::JsonBody("{\"status\":\"ok\"}");
  });
  server_.Route("GET", "/metrics", [this](const HttpRequest&) {
    return HandleMetrics();
  });
  server_.Route("POST", "/api/generate", [this](const HttpRequest& req) {
    return HandleGenerate(req);
  });
}

HttpResponse BackendService::HandleGenerate(const HttpRequest& request) {
  auto parsed = ParseGenerateRequest(request.body);
  if (!parsed.ok()) {
    ++generate_client_error_;
    Json err{Json::Object{}};
    err.Set("error", parsed.status().ToString());
    return HttpResponse::JsonBody(err.Dump(), 400);
  }
  Timer timer;
  auto recipe = generate_(*parsed);
  const double seconds = timer.ElapsedSeconds();
  total_generate_seconds_ += seconds;
  max_generate_seconds_ = std::max(max_generate_seconds_, seconds);
  if (!recipe.ok()) {
    ++generate_server_error_;
    Json err{Json::Object{}};
    err.Set("error", recipe.status().ToString());
    return HttpResponse::JsonBody(err.Dump(), 500);
  }
  ++generate_ok_;
  return HttpResponse::JsonBody(RecipeToJson(*recipe).Dump());
}

HttpResponse BackendService::HandleMetrics() const {
  const long long model_calls = generate_ok_ + generate_server_error_;
  Json out{Json::Object{}};
  out.Set("requests_total",
          static_cast<double>(server_.requests_served()));
  out.Set("generate_ok", static_cast<double>(generate_ok_));
  out.Set("generate_client_errors",
          static_cast<double>(generate_client_error_));
  out.Set("generate_server_errors",
          static_cast<double>(generate_server_error_));
  out.Set("generate_seconds_total", total_generate_seconds_);
  out.Set("generate_seconds_max", max_generate_seconds_);
  out.Set("generate_seconds_mean",
          model_calls > 0 ? total_generate_seconds_ / model_calls : 0.0);
  return HttpResponse::JsonBody(out.Dump());
}

Status BackendService::Start(int port) { return server_.Start(port); }

void BackendService::Stop() { server_.Stop(); }

}  // namespace rt
