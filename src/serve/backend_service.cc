#include "serve/backend_service.h"

#include <algorithm>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <thread>

#include "models/batch_decode.h"
#include "tensor/thread_pool.h"
#include "util/fault_injection.h"
#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/obs.h"
#include "util/timer.h"

namespace rt {
namespace {

/// Fails with (code, message) by writing the code through and returning
/// InvalidArgument, so both the envelope and the Status carry context.
Status ValidationError(std::string* error_code, const std::string& code,
                       const std::string& message) {
  if (error_code != nullptr) *error_code = code;
  return Status::InvalidArgument(message);
}

/// Truncates a JSON number into [lo, hi]. Casting a NaN or out-of-int-
/// range double is undefined behavior, so the range check happens on
/// the double before any cast.
bool IntInRange(const Json& value, int lo, int hi, int* out) {
  const double raw = value.AsNumber();
  if (!std::isfinite(raw) || raw < static_cast<double>(lo) ||
      raw > static_cast<double>(hi)) {
    return false;
  }
  *out = static_cast<int>(raw);
  return true;
}

const std::array<double, LatencyHistogram::kNumBuckets - 1> kLatencyBounds =
    {0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
     0.1,   0.2,   0.5,   1.0,  2.0,  5.0};

/// One SSE frame: `event: <type>` plus a single `data:` JSON line.
std::string SseEvent(const char* type, const Json& data) {
  return std::string("event: ") + type + "\ndata: " + data.Dump() +
         "\n\n";
}

/// The token-accounting object shared by unary responses and the SSE
/// `done` event.
Json UsageJson(const GenerateOutcome& outcome) {
  Json usage{Json::Object{}};
  usage.Set("prompt_tokens",
            static_cast<double>(outcome.prompt_tokens));
  usage.Set("completion_tokens",
            static_cast<double>(outcome.tokens_generated));
  usage.Set("total_tokens",
            static_cast<double>(outcome.prompt_tokens +
                                outcome.tokens_generated));
  return usage;
}

/// The resolved decoding params echoed on responses (unary body and
/// SSE `done` event alike).
Json ParamsJson(const GenerateRequest& req) {
  Json params{Json::Object{}};
  params.Set("max_tokens", req.max_tokens);
  params.Set("temperature", req.temperature);
  params.Set("top_k", req.top_k);
  params.Set("top_p", req.top_p);
  params.Set("greedy", req.greedy);
  params.Set("beam_width", req.beam_width);
  params.Set("seed", static_cast<double>(req.seed));
  params.Set("timeout_ms", req.timeout_ms);
  params.Set("priority",
             std::string(serve::TrafficClassName(req.priority)));
  return params;
}

}  // namespace

StatusOr<GenerateRequest> ParseGenerateRequest(const std::string& body,
                                               std::string* error_code) {
  auto doc_or = Json::Parse(body);
  if (!doc_or.ok()) {
    return ValidationError(error_code, "invalid_json",
                           "body is not valid JSON: " +
                               doc_or.status().message());
  }
  const Json& doc = *doc_or;
  if (!doc.is_object()) {
    return ValidationError(error_code, "invalid_request",
                           "request must be a JSON object");
  }
  static const std::vector<std::string> kKnownFields = {
      "ingredients", "max_tokens", "temperature", "top_k",
      "top_p",       "greedy",     "beam_width",  "seed",
      "model",       "timeout_ms", "stream",      "stream_options",
      "priority"};
  for (const auto& [key, value] : doc.AsObject()) {
    if (std::find(kKnownFields.begin(), kKnownFields.end(), key) ==
        kKnownFields.end()) {
      return ValidationError(error_code, "unknown_field",
                             "unknown field '" + key + "'");
    }
  }
  GenerateRequest req;
  const Json& ingredients = doc.Get("ingredients");
  if (!ingredients.is_array() || ingredients.AsArray().empty()) {
    return ValidationError(error_code, "missing_ingredients",
                           "'ingredients' must be a non-empty array");
  }
  for (const Json& item : ingredients.AsArray()) {
    if (!item.is_string()) {
      return ValidationError(error_code, "bad_ingredients",
                             "ingredients must be strings");
    }
    req.ingredients.push_back(item.AsString());
  }
  if (!doc.Get("max_tokens").is_null()) {
    if (!doc.Get("max_tokens").is_number()) {
      return ValidationError(error_code, "bad_max_tokens",
                             "'max_tokens' must be a number");
    }
    if (!IntInRange(doc.Get("max_tokens"), 1, 4096, &req.max_tokens)) {
      return ValidationError(error_code, "bad_max_tokens",
                             "max_tokens out of range (1..4096)");
    }
  }
  if (!doc.Get("temperature").is_null()) {
    if (!doc.Get("temperature").is_number()) {
      return ValidationError(error_code, "bad_temperature",
                             "'temperature' must be a number");
    }
    req.temperature = doc.Get("temperature").AsNumber();
    if (req.temperature <= 0.0 || req.temperature > 10.0) {
      return ValidationError(error_code, "bad_temperature",
                             "temperature out of range (0..10]");
    }
  }
  if (!doc.Get("top_k").is_null()) {
    if (!doc.Get("top_k").is_number()) {
      return ValidationError(error_code, "bad_top_k",
                             "'top_k' must be a number");
    }
    if (!IntInRange(doc.Get("top_k"), 0, INT_MAX, &req.top_k)) {
      return ValidationError(error_code, "bad_top_k",
                             "top_k out of range");
    }
  }
  if (!doc.Get("top_p").is_null()) {
    if (!doc.Get("top_p").is_number()) {
      return ValidationError(error_code, "bad_top_p",
                             "'top_p' must be a number");
    }
    req.top_p = doc.Get("top_p").AsNumber();
    if (req.top_p < 0.0 || req.top_p > 1.0) {
      return ValidationError(error_code, "bad_top_p",
                             "top_p out of range [0..1]");
    }
  }
  if (!doc.Get("greedy").is_null()) {
    if (!doc.Get("greedy").is_bool()) {
      return ValidationError(error_code, "bad_greedy",
                             "'greedy' must be a boolean");
    }
    req.greedy = doc.Get("greedy").AsBool();
  }
  if (!doc.Get("beam_width").is_null()) {
    if (!doc.Get("beam_width").is_number()) {
      return ValidationError(error_code, "bad_beam_width",
                             "'beam_width' must be a number");
    }
    if (!IntInRange(doc.Get("beam_width"), 0, 64, &req.beam_width)) {
      return ValidationError(error_code, "bad_beam_width",
                             "beam_width out of range [0..64]");
    }
  }
  if (!doc.Get("seed").is_null()) {
    if (!doc.Get("seed").is_number()) {
      return ValidationError(error_code, "bad_seed",
                             "'seed' must be a number");
    }
    const double raw_seed = doc.Get("seed").AsNumber();
    if (!std::isfinite(raw_seed) || raw_seed < 0.0 ||
        raw_seed >= 18446744073709551616.0 /* 2^64 */) {
      return ValidationError(error_code, "bad_seed",
                             "seed out of range [0..2^64)");
    }
    req.seed = static_cast<uint64_t>(raw_seed);
  }
  if (!doc.Get("model").is_null()) {
    if (!doc.Get("model").is_string()) {
      return ValidationError(error_code, "bad_model",
                             "'model' must be a string");
    }
    req.model = doc.Get("model").AsString();
  }
  if (!doc.Get("timeout_ms").is_null()) {
    if (!doc.Get("timeout_ms").is_number()) {
      return ValidationError(error_code, "bad_timeout_ms",
                             "'timeout_ms' must be a number");
    }
    if (!IntInRange(doc.Get("timeout_ms"), 0, INT_MAX, &req.timeout_ms)) {
      return ValidationError(error_code, "bad_timeout_ms",
                             "timeout_ms out of range");
    }
  }
  if (!doc.Get("priority").is_null()) {
    if (!doc.Get("priority").is_string()) {
      return ValidationError(error_code, "bad_priority",
                             "'priority' must be a string");
    }
    if (!serve::ParseTrafficClass(doc.Get("priority").AsString(),
                                  &req.priority)) {
      return ValidationError(
          error_code, "bad_priority",
          "priority must be 'interactive' or 'batch'");
    }
    req.priority_explicit = true;
  }
  if (!doc.Get("stream").is_null()) {
    if (!doc.Get("stream").is_bool()) {
      return ValidationError(error_code, "bad_stream",
                             "'stream' must be a boolean");
    }
    req.stream = doc.Get("stream").AsBool();
  }
  if (!doc.Get("stream_options").is_null()) {
    const Json& opts = doc.Get("stream_options");
    if (!opts.is_object()) {
      return ValidationError(error_code, "bad_stream_options",
                             "'stream_options' must be an object");
    }
    for (const auto& [key, value] : opts.AsObject()) {
      if (key != "include_usage" && key != "include_recipe") {
        return ValidationError(
            error_code, "unknown_field",
            "unknown field 'stream_options." + key + "'");
      }
      if (!value.is_bool()) {
        return ValidationError(
            error_code, "bad_stream_options",
            "'stream_options." + key + "' must be a boolean");
      }
    }
    if (!opts.Get("include_usage").is_null()) {
      req.stream_options.include_usage =
          opts.Get("include_usage").AsBool();
    }
    if (!opts.Get("include_recipe").is_null()) {
      req.stream_options.include_recipe =
          opts.Get("include_recipe").AsBool();
    }
  }
  return req;
}

StatusOr<GenerateRequest> ParseGenerateRequest(const std::string& body) {
  return ParseGenerateRequest(body, nullptr);
}

Json RecipeToJson(const Recipe& recipe) {
  Json out{Json::Object{}};
  out.Set("title", recipe.title);
  Json ingredients{Json::Array{}};
  for (const auto& line : recipe.ingredients) {
    Json item{Json::Object{}};
    item.Set("quantity", line.quantity);
    item.Set("unit", line.unit);
    item.Set("name", line.name);
    item.Set("prep", line.prep);
    item.Set("text", line.Render());
    ingredients.Append(std::move(item));
  }
  out.Set("ingredients", std::move(ingredients));
  Json instructions{Json::Array{}};
  for (const auto& step : recipe.instructions) {
    instructions.Append(step);
  }
  out.Set("instructions", std::move(instructions));
  return out;
}

const std::array<double, LatencyHistogram::kNumBuckets - 1>&
LatencyHistogram::Bounds() {
  return kLatencyBounds;
}

void LatencyHistogram::Record(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  int bucket = kNumBuckets - 1;  // +Inf
  for (int i = 0; i < kNumBuckets - 1; ++i) {
    if (seconds <= kLatencyBounds[static_cast<size_t>(i)]) {
      bucket = i;
      break;
    }
  }
  ++counts_[static_cast<size_t>(bucket)];
  ++observations_;
  total_seconds_ += seconds;
  max_seconds_ = std::max(max_seconds_, seconds);
}

void LatencyHistogram::FillMetrics(const std::string& prefix,
                                   Json* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out->Set(prefix + "seconds_total", total_seconds_);
  out->Set(prefix + "seconds_max", max_seconds_);
  out->Set(prefix + "seconds_mean",
           observations_ > 0 ? total_seconds_ / observations_ : 0.0);
  Json bounds{Json::Array{}};
  Json counts{Json::Array{}};
  for (int i = 0; i < kNumBuckets; ++i) {
    if (i < kNumBuckets - 1) {
      bounds.Append(kLatencyBounds[static_cast<size_t>(i)]);
    } else {
      bounds.Append("inf");
    }
    counts.Append(static_cast<double>(counts_[static_cast<size_t>(i)]));
  }
  out->Set(prefix + "latency_bucket_le", std::move(bounds));
  out->Set(prefix + "latency_bucket_count", std::move(counts));
}

double LatencyHistogram::MeanSeconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observations_ > 0 ? total_seconds_ / observations_ : 0.0;
}

namespace {

/// Fills in the derived defaults before any subobject is built from the
/// options (the HttpServer snapshot in particular must already carry the
/// queue deadline).
BackendOptions NormalizeOptions(BackendOptions options) {
  if (options.model_sessions < 1) options.model_sessions = 1;
  if (options.models.empty()) options.models = {"default"};
  if (options.default_timeout_ms < 1) options.default_timeout_ms = 1;
  if (options.max_timeout_ms < options.default_timeout_ms) {
    options.max_timeout_ms = options.default_timeout_ms;
  }
  for (auto& [model, budget_ms] : options.model_timeout_ms) {
    budget_ms = std::clamp(budget_ms, 1, options.max_timeout_ms);
  }
  options.max_batch = std::clamp(options.max_batch, 1, kMaxDecodeBatch);
  if (options.max_batch > 1 &&
      options.model_sessions < options.max_batch) {
    // A batch can only fill if at least that many requests can hold a
    // session concurrently.
    options.model_sessions = options.max_batch;
  }
  if (options.http.queue_deadline_ms <= 0) {
    // Connections that out-waited the maximum possible budget in the
    // accept queue are dead on arrival; let the HTTP layer shed them.
    options.http.queue_deadline_ms = options.max_timeout_ms;
  }
  return options;
}

}  // namespace

BackendService::GenerateFn BackendService::WrapRecipeFn(RecipeFn fn) {
  return [fn = std::move(fn)](
             const GenerateRequest& req) -> StatusOr<GenerateOutcome> {
    auto recipe = fn(req);
    if (!recipe.ok()) return recipe.status();
    GenerateOutcome outcome;
    outcome.recipe = *std::move(recipe);
    return outcome;
  };
}

BackendService::BackendService(GenerateFn generate)
    : BackendService(
          [&generate](int) { return generate; },
          [] {
            BackendOptions options;
            options.model_sessions = 1;
            return options;
          }()) {}

BackendService::BackendService(const SessionFactory& factory,
                               BackendOptions options)
    : options_(NormalizeOptions(std::move(options))),
      server_(options_.http),
      drain_cancel_(std::make_shared<CancelToken>()) {
  if (options_.compute_threads > 0) {
    ThreadPool::SetGlobalThreads(options_.compute_threads);
  }
  if (options_.tracing) obs::TraceRecorder::Instance().SetEnabled(true);
  // rt::obs v2: objectives into the process-wide SLO engine, the
  // slow-trace archive bound, and the metrics-history sampler source.
  {
    std::vector<obs::SloObjective> objectives(2);
    objectives[0].traffic_class = 0;
    objectives[0].latency_target_ms = options_.slo_interactive_p99_ms;
    objectives[0].max_error_ratio = options_.slo_error_ratio;
    objectives[0].fast_burn_threshold = options_.slo_fast_burn_threshold;
    objectives[1] = objectives[0];
    objectives[1].traffic_class = 1;
    objectives[1].latency_target_ms = options_.slo_batch_p99_ms;
    obs::SloEngine::Instance().Configure(objectives);
    obs::SlowTraceArchive::Instance().SetCapacity(
        options_.slow_trace_capacity);
    obs::MetricsHistory::Options history;
    history.capacity = options_.history_capacity;
    history.interval_ms = options_.history_interval_ms;
    history_.Configure(history, [this] {
      Json snapshot = MetricsJson();
      // Each sample doubles as the flight recorder's "last known
      // state": the next heartbeat persists it to the postmortem file.
      obs::FlightRecorder::Instance().StoreSnapshot(snapshot.Dump());
      return snapshot;
    });
  }
  for (const std::string& model : options_.models) {
    breakers_.emplace(model,
                      std::make_unique<ModelBreaker>(options_.breaker));
  }
  sessions_.reserve(static_cast<size_t>(options_.model_sessions));
  for (int i = 0; i < options_.model_sessions; ++i) {
    sessions_.push_back(factory(i));
    free_sessions_.push_back(i);
  }
  RegisterRoutes();
}

void BackendService::RegisterRoutes() {
  const auto healthz = [](const HttpRequest&) {
    auto& faults = FaultInjector::Instance();
    if (faults.Hit("replica.exit")) {
      RT_LOG(Warning) << "replica.exit fired; exiting hard";
      std::_Exit(23);
    }
    if (auto hang = faults.Hit("replica.hang")) {
      // Wedge the probe (capped) so the supervisor's probe timeout —
      // not this sleep — decides when the replica counts as dead.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min(std::max(hang->amount, 0), 10000)));
    }
    Json body = HealthzJson();
    if (obs::SloEngine::Instance().AnyFastBurn()) {
      // Fast burn degrades the health body but stays HTTP 200: the
      // process is alive and serving (the supervisor must not restart
      // it for missing an objective), the SLO is what suffers.
      body.Set("status", "degraded");
      body.Set("slo_fast_burn", true);
    }
    return HttpResponse::JsonBody(body.Dump());
  };
  const auto deprecate = [](HttpResponse resp) {
    resp.headers["Deprecation"] = "true";
    return resp;
  };
  // Versioned surface.
  (void)server_.Route("GET", "/v1/healthz", healthz);
  (void)server_.Route("GET", "/v1/metrics", [this](const HttpRequest& req) {
    return HandleMetrics(req);
  });
  (void)server_.Route("GET", "/v1/metrics/history",
                      [this](const HttpRequest& req) {
                        return HandleMetricsHistory(req);
                      });
  (void)server_.Route("GET", "/v1/debug/slow",
                      [this](const HttpRequest& req) {
                        return HandleDebugSlow(req);
                      });
  (void)server_.Route("GET", "/v1/trace", [this](const HttpRequest& req) {
    return HandleTrace(req);
  });
  (void)server_.Route("GET", "/v1/models", [this](const HttpRequest&) {
    return HandleModels();
  });
  (void)server_.Route("POST", "/v1/generate",
                      [this](const HttpRequest& req) {
                        return HandleGenerate(req);
                      });
  if (options_.enable_fault_admin) {
    (void)server_.Route("POST", "/v1/admin/fault",
                        [this](const HttpRequest& req) {
                          return HandleFaultAdmin(req);
                        });
  }
  // Pre-/v1 aliases, retired by default since API v2: registered (with
  // their Deprecation header) only when the deployment opts back in via
  // --enable-deprecated-routes; otherwise the paths 404.
  if (!options_.enable_deprecated_routes) return;
  (void)server_.Route("GET", "/healthz",
                      [healthz, deprecate](const HttpRequest& req) {
                        return deprecate(healthz(req));
                      });
  (void)server_.Route("GET", "/metrics",
                      [this, deprecate](const HttpRequest& req) {
                        return deprecate(HandleMetrics(req));
                      });
  (void)server_.Route("POST", "/api/generate",
                      [this, deprecate](const HttpRequest& req) {
                        return deprecate(HandleGenerate(req));
                      });
}

BackendService::ModelBreaker& BackendService::BreakerFor(
    const std::string& model) const {
  // The map is immutable after construction and `model` has already
  // been validated against options_.models, so at() cannot throw.
  return *breakers_.at(model);
}

int BackendService::AcquireSession(const Deadline& deadline,
                                   serve::TrafficClass cls) {
  std::unique_lock<std::mutex> lock(session_mutex_);
  if (!free_sessions_.empty()) {
    // Nobody is parked (class invariant), so the slot is ours.
    const int index = free_sessions_.back();
    free_sessions_.pop_back();
    sessions_in_use_.fetch_add(1);
    return index;
  }
  // Park on the slack-ordered waiter list; ReleaseSession hands a freed
  // slot to the earliest-deadline waiter (interactive first on ties,
  // then arrival order — uniform deadlines degrade to exact FIFO).
  serve::SlotWaitQueue::Waiter self;
  self.key.deadline = serve::SchedKey::DeadlinePoint(deadline);
  self.key.cls = cls;
  self.key.seq = session_seq_++;
  waiters_.Enqueue(&self);
  const auto granted = [&self] { return self.granted; };
  if (deadline.is_infinite()) {
    session_cv_.wait(lock, granted);
  } else if (!session_cv_.wait_until(lock, deadline.when(), granted)) {
    // Timed out. The predicate was last evaluated under the lock, so
    // !granted here means the node is still queued and safe to unlink.
    waiters_.Remove(&self);
    return -1;  // the budget ran out while queued for a model session
  }
  sessions_in_use_.fetch_add(1);
  return self.slot;
}

void BackendService::ReleaseSession(int index) {
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    // Direct handoff: the freed slot goes to the tightest-deadline
    // waiter if any, and only sits in the free pool when nobody waits.
    if (waiters_.GrantBest(index) == nullptr) {
      free_sessions_.push_back(index);
    }
  }
  sessions_in_use_.fetch_sub(1);
  // notify_all: the grant targets one specific waiter, and notify_one
  // could wake a different (still-ungranted) one that just goes back
  // to sleep while the granted thread keeps waiting.
  session_cv_.notify_all();
}

HttpResponse BackendService::HandleGenerate(const HttpRequest& request) {
  if (FaultInjector::Instance().Hit("replica.exit")) {
    // Chaos: the replica dies mid-admission, exactly as a crashed
    // process would — the router's retry and the supervisor's restart
    // are what keep this invisible to the client.
    RT_LOG(Warning) << "replica.exit fired; exiting hard";
    std::_Exit(23);
  }
  std::string code;
  auto parsed = ParseGenerateRequest(request.body, &code);
  if (!parsed.ok()) {
    generate_client_error_.fetch_add(1);
    return JsonError(400, code, parsed.status().message(),
                     request.request_id);
  }
  GenerateRequest req = *parsed;
  if (req.model.empty()) {
    req.model = options_.models.front();
  } else if (std::find(options_.models.begin(), options_.models.end(),
                       req.model) == options_.models.end()) {
    generate_client_error_.fetch_add(1);
    return JsonError(400, "bad_model",
                     "unknown model '" + req.model + "'",
                     request.request_id);
  }

  // Resolve the budget: client ask capped at the server maximum, else
  // the per-model default when one is configured, else the server
  // default. The deadline is anchored at queue admission, so time
  // already spent waiting for a worker counts against it.
  int budget_ms;
  if (req.timeout_ms > 0) {
    budget_ms = std::min(req.timeout_ms, options_.max_timeout_ms);
  } else {
    const auto per_model = options_.model_timeout_ms.find(req.model);
    budget_ms = per_model != options_.model_timeout_ms.end()
                    ? per_model->second
                    : options_.default_timeout_ms;
  }
  req.timeout_ms = budget_ms;
  // Router/frontend hops forward the class in x-rt-priority so a
  // replica knows it even when the body omits `priority`; an explicit
  // body field always wins.
  if (!req.priority_explicit) {
    const auto forwarded = request.headers.find("x-rt-priority");
    if (forwarded != request.headers.end()) {
      (void)serve::ParseTrafficClass(forwarded->second, &req.priority);
    }
  }
  const auto admitted =
      request.admitted_at == std::chrono::steady_clock::time_point{}
          ? std::chrono::steady_clock::now()
          : request.admitted_at;
  req.deadline =
      Deadline::At(admitted + std::chrono::milliseconds(budget_ms));
  req.cancel = drain_cancel_;
  req.trace_id = request.trace_id;
  // Queue wait split by class (admission to here): the per-class view
  // of the same wait the stage_queue_wait histogram aggregates.
  obs::RecordClassQueueWait(
      static_cast<int>(req.priority),
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - admitted)
          .count());
  // Mark the request for the SLO engine: class selects the objective,
  // and the completion hook in http.cc consumes the annotation.
  obs::AnnotateRequestClass(static_cast<int>(req.priority));

  // Breaker scope is the resolved model: a timeout storm on one model
  // opens only that model's breaker, and requests for healthy models
  // keep flowing.
  ModelBreaker& model_breaker = BreakerFor(req.model);

  const auto deadline_response = [&](long long tokens_generated) {
    return DeadlineResponse(request.request_id, model_breaker, budget_ms,
                            tokens_generated,
                            req.deadline.remaining_millis());
  };

  // Fast-fail while the breaker is open: answering 503 in microseconds
  // beats burning a model session on a request that will time out.
  const CircuitBreaker::Ticket ticket = model_breaker.breaker.Allow();
  if (ticket == 0) {
    breaker_rejected_.fetch_add(1);
    model_breaker.rejected.fetch_add(1);
    HttpResponse resp = JsonError(
        503, "circuit_open",
        "circuit breaker for model '" + req.model +
            "' is open (recent requests timed out)",
        request.request_id);
    const int retry_s =
        std::max(1, (options_.breaker.cooldown_ms + 999) / 1000);
    resp.headers["Retry-After"] = std::to_string(retry_s);
    return resp;
  }
  // Streamed responses settle the ticket inside the SSE callback — the
  // RAII guard below cannot follow the request there — so branch before
  // arming it.
  if (req.stream) {
    return HandleGenerateStream(request, std::move(req), model_breaker,
                                ticket, budget_ms);
  }

  // Every exit below must settle the ticket; paths that learn nothing
  // about generation health (pre-session shed, internal error,
  // cancellation) fall through to the guard's abandoned report, so a
  // half-open probe can never wedge the breaker.
  CircuitBreaker::Outcome breaker_outcome(model_breaker.breaker, ticket);

  // A request whose budget is already spent (queue wait, slow read) is
  // shed before it touches a session. Not a breaker outcome: the model
  // never ran, so this says nothing about generation health.
  if (req.deadline.expired()) {
    RT_LOG(Warning) << "generate shed request_id=" << request.request_id
                    << " trace_id=" << request.trace_id
                    << " model=" << req.model
                    << " reason=budget_spent timeout_ms=" << budget_ms;
    HttpResponse shed = deadline_response(0);
    // The later annotation wins: this was a shed, not a decode that ran
    // out of budget, and the slow-trace archive distinguishes the two.
    obs::AnnotateRequestReason(obs::PromoteReason::kShed);
    return shed;
  }

  const auto acquire_start = obs::Now();
  const int slot = AcquireSession(req.deadline, req.priority);
  obs::RecordSpanSince(obs::Stage::kSessionAcquire, req.trace_id,
                       acquire_start);
  if (slot < 0) {
    breaker_outcome.Timeout();
    RT_LOG(Warning) << "generate timeout request_id=" << request.request_id
                    << " trace_id=" << request.trace_id
                    << " model=" << req.model
                    << " reason=session_wait timeout_ms=" << budget_ms;
    return deadline_response(0);
  }
  Timer timer;
  auto& faults = FaultInjector::Instance();
  if (auto slow = faults.Hit("backend.generate.latency")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(slow->amount));
  }
  StatusOr<GenerateOutcome> outcome =
      faults.Hit("backend.generate.fail")
          ? StatusOr<GenerateOutcome>(Status::Internal(
                "generation failed (injected backend.generate.fail)"))
          : sessions_[static_cast<size_t>(slot)](req);
  const double seconds = timer.ElapsedSeconds();
  ReleaseSession(slot);
  latency_.Record(seconds);

  if (!outcome.ok()) {
    generate_server_error_.fetch_add(1);
    return JsonError(500, "generation_failed",
                     outcome.status().ToString(), request.request_id);
  }
  if (outcome->cancelled()) {
    generate_cancelled_.fetch_add(1);
    return JsonError(503, "shutting_down",
                     "generation was cancelled because the server is "
                     "shutting down",
                     request.request_id);
  }
  if (outcome->deadline_exceeded() || req.deadline.expired()) {
    breaker_outcome.Timeout();
    return deadline_response(outcome->tokens_generated);
  }
  if (outcome->finish == FinishReason::kPreempted) {
    // A preempted row is a scheduling decision, not a model-health
    // verdict: the guard reports the ticket abandoned, and the client
    // gets a 200 with the valid partial result and
    // finish_reason=preempted.
    obs::AnnotateRequestReason(obs::PromoteReason::kPreempted);
  } else {
    breaker_outcome.Success();
  }
  generate_ok_.fetch_add(1);
  RT_LOG(Debug) << "generate ok request_id=" << request.request_id
                << " trace_id=" << request.trace_id
                << " model=" << req.model
                << " finish=" << FinishReasonName(outcome->finish)
                << " tokens=" << outcome->tokens_generated
                << " seconds=" << seconds;
  Json out{Json::Object{}};
  out.Set("request_id", request.request_id);
  out.Set("model", req.model);
  out.Set("finish_reason",
          std::string(FinishReasonName(outcome->finish)));
  out.Set("tokens_generated",
          static_cast<double>(outcome->tokens_generated));
  out.Set("usage", UsageJson(*outcome));
  out.Set("params", ParamsJson(req));
  out.Set("recipe", RecipeToJson(outcome->recipe));
  return HttpResponse::JsonBody(out.Dump());
}

HttpResponse BackendService::DeadlineResponse(
    const std::string& request_id, ModelBreaker& model_breaker,
    int budget_ms, long long tokens_generated, long long slack_ms) {
  generate_deadline_exceeded_.fetch_add(1);
  obs::AnnotateRequestReason(obs::PromoteReason::kDeadlineExceeded);
  // Retry-After mirrors the 503 circuit_open hint: the breaker's
  // remaining cooldown when it has already tripped, else an estimate
  // of when capacity returns from the observed mean latency.
  const int breaker_wait_ms =
      model_breaker.breaker.cooldown_remaining_ms();
  const int retry_s =
      breaker_wait_ms > 0
          ? std::max(1, (breaker_wait_ms + 999) / 1000)
          : std::max(1, static_cast<int>(
                            std::ceil(latency_.MeanSeconds())));
  Json details{Json::Object{}};
  details.Set("tokens_generated",
              static_cast<double>(tokens_generated));
  details.Set("timeout_ms", budget_ms);
  details.Set("retry_after_s", retry_s);
  // Backoff inputs for the client: how deep the accept queue currently
  // is and how far past its deadline this request was (negative slack).
  details.Set("queue_depth",
              static_cast<double>(server_.queue_depth()));
  details.Set("slack_ms", static_cast<double>(slack_ms));
  HttpResponse resp =
      JsonError(504, "deadline_exceeded",
                "generation exceeded its " + std::to_string(budget_ms) +
                    " ms budget",
                request_id, std::move(details));
  resp.headers["Retry-After"] = std::to_string(retry_s);
  return resp;
}

HttpResponse BackendService::HandleGenerateStream(
    const HttpRequest& request, GenerateRequest req,
    ModelBreaker& model_breaker, CircuitBreaker::Ticket ticket,
    int budget_ms) {
  // Pre-stream failures still answer plain HTTP errors, settling the
  // ticket explicitly (the Outcome guard cannot ride into the stream
  // callback).
  if (req.deadline.expired()) {
    model_breaker.breaker.RecordAbandoned(ticket);
    RT_LOG(Warning) << "generate shed request_id=" << request.request_id
                    << " trace_id=" << request.trace_id
                    << " model=" << req.model
                    << " reason=budget_spent timeout_ms=" << budget_ms;
    HttpResponse shed = DeadlineResponse(
        request.request_id, model_breaker, budget_ms, 0,
        req.deadline.remaining_millis());
    // The later annotation wins: this was a shed, not a decode that ran
    // out of budget, and the slow-trace archive distinguishes the two.
    obs::AnnotateRequestReason(obs::PromoteReason::kShed);
    return shed;
  }
  const auto acquire_start = obs::Now();
  const int slot = AcquireSession(req.deadline, req.priority);
  obs::RecordSpanSince(obs::Stage::kSessionAcquire, req.trace_id,
                       acquire_start);
  if (slot < 0) {
    model_breaker.breaker.RecordTimeout(ticket);
    RT_LOG(Warning) << "generate timeout request_id="
                    << request.request_id
                    << " trace_id=" << request.trace_id
                    << " model=" << req.model
                    << " reason=session_wait timeout_ms=" << budget_ms;
    return DeadlineResponse(request.request_id, model_breaker, budget_ms,
                            0, req.deadline.remaining_millis());
  }
  streams_started_.fetch_add(1);
  HttpResponse resp;
  resp.content_type = "text/event-stream";
  ModelBreaker* breaker = &model_breaker;
  const std::string request_id = request.request_id;
  const uint64_t trace_id = request.trace_id;
  resp.stream = [this, req = std::move(req), breaker, ticket, slot,
                 request_id, trace_id](ResponseWriter& writer) {
    RunStream(writer, req, *breaker, ticket, slot, request_id, trace_id);
  };
  return resp;
}

void BackendService::RunStream(ResponseWriter& writer,
                               GenerateRequest req,
                               ModelBreaker& model_breaker,
                               CircuitBreaker::Ticket ticket, int slot,
                               const std::string& request_id,
                               uint64_t trace_id) {
  // From here every exit settles the ticket exactly once: Timeout /
  // Success below, or the guard's abandoned report.
  CircuitBreaker::Outcome breaker_outcome(model_breaker.breaker, ticket);

  // Decoded tokens cross from the decoding thread to this connection
  // thread through a queue, so a slow client throttles only its own
  // chunked writes — never the decode loop or a shared batch scheduler.
  struct TokenEvent {
    int id;
    std::string text;
  };
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<TokenEvent> queue;
  bool generation_done = false;

  // Per-stream cancel token: fired when the client disconnects (or a
  // write out-waits the send timeout) and when the server drain token
  // fires, so a dead stream releases its decode — and its prefix-cache
  // pins — within about one token step.
  auto stream_cancel = std::make_shared<CancelToken>();
  req.cancel = stream_cancel;
  req.on_token = [&](int id, const std::string& text) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push_back({id, text});
    }
    cv.notify_one();
  };

  Timer timer;
  StatusOr<GenerateOutcome> outcome(
      Status::Internal("generation never ran"));
  std::thread generator([&] {
    auto& faults = FaultInjector::Instance();
    if (auto slow = faults.Hit("backend.generate.latency")) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(slow->amount));
    }
    StatusOr<GenerateOutcome> result =
        faults.Hit("backend.generate.fail")
            ? StatusOr<GenerateOutcome>(Status::Internal(
                  "generation failed (injected backend.generate.fail)"))
            : sessions_[static_cast<size_t>(slot)](req);
    {
      std::lock_guard<std::mutex> lock(mutex);
      outcome = std::move(result);
      generation_done = true;
    }
    cv.notify_one();
  });

  long long index = 0;
  for (;;) {
    std::deque<TokenEvent> batch;
    bool finished = false;
    {
      std::unique_lock<std::mutex> lock(mutex);
      // The periodic wakeup bounds how long a token-less stream takes
      // to notice the server draining underneath it.
      cv.wait_for(lock, std::chrono::milliseconds(50), [&] {
        return generation_done || !queue.empty();
      });
      batch.swap(queue);
      finished = generation_done && batch.empty();
    }
    if (drain_cancel_->cancelled() || writer.dead()) {
      stream_cancel->RequestCancel();
    }
    for (const TokenEvent& event : batch) {
      if (!writer.dead()) {
        Json data{Json::Object{}};
        data.Set("index", static_cast<double>(index));
        data.Set("token_id", event.id);
        data.Set("text", event.text);
        data.Set("request_id", request_id);
        data.Set("trace_id", std::to_string(trace_id));
        if (writer.Write(SseEvent("token", data))) {
          stream_tokens_.fetch_add(1);
        } else {
          // Disconnect or backpressure death: abort the decode but
          // keep draining the queue so the generator never blocks.
          stream_cancel->RequestCancel();
        }
      }
      ++index;
    }
    if (finished) break;
  }
  generator.join();
  const double seconds = timer.ElapsedSeconds();
  ReleaseSession(slot);
  latency_.Record(seconds);

  if (!outcome.ok()) {
    generate_server_error_.fetch_add(1);
    streams_aborted_.fetch_add(1);
    Json error{Json::Object{}};
    error.Set("code", "generation_failed");
    error.Set("message", outcome.status().ToString());
    error.Set("request_id", request_id);
    writer.Write(SseEvent("error", error));
    return;  // the guard reports the ticket abandoned
  }

  // Same settle precedence as the unary path: cancellation (not a
  // breaker signal), then deadline, then success.
  if (outcome->cancelled()) {
    generate_cancelled_.fetch_add(1);
  } else if (outcome->deadline_exceeded() || req.deadline.expired()) {
    breaker_outcome.Timeout();
    generate_deadline_exceeded_.fetch_add(1);
  } else if (outcome->finish == FinishReason::kPreempted) {
    // Scheduling decision, not a health verdict — ticket abandoned.
    generate_ok_.fetch_add(1);
  } else {
    breaker_outcome.Success();
    generate_ok_.fetch_add(1);
  }
  // A budget that lapsed between the last token and now still reports
  // deadline_exceeded, mirroring the unary 504.
  FinishReason finish = outcome->finish;
  if (finish != FinishReason::kCancelled &&
      finish != FinishReason::kDeadlineExceeded &&
      req.deadline.expired()) {
    finish = FinishReason::kDeadlineExceeded;
  }
  // SSE streams answer 200 before the outcome is known, so the status
  // code can't carry the verdict — annotate the reason for the SLO /
  // slow-trace completion hook instead.
  if (finish == FinishReason::kDeadlineExceeded) {
    obs::AnnotateRequestReason(obs::PromoteReason::kDeadlineExceeded);
  } else if (finish == FinishReason::kPreempted) {
    obs::AnnotateRequestReason(obs::PromoteReason::kPreempted);
  }

  Json done{Json::Object{}};
  done.Set("request_id", request_id);
  done.Set("trace_id", std::to_string(trace_id));
  done.Set("model", req.model);
  done.Set("finish_reason", std::string(FinishReasonName(finish)));
  done.Set("tokens_generated",
           static_cast<double>(outcome->tokens_generated));
  if (req.stream_options.include_usage) {
    done.Set("usage", UsageJson(*outcome));
  }
  done.Set("params", ParamsJson(req));
  if (req.stream_options.include_recipe) {
    done.Set("recipe", RecipeToJson(outcome->recipe));
  }
  const bool done_sent = writer.Write(SseEvent("done", done));
  const bool clean = finish != FinishReason::kCancelled &&
                     finish != FinishReason::kDeadlineExceeded &&
                     finish != FinishReason::kPreempted;
  if (clean && done_sent) {
    streams_completed_.fetch_add(1);
  } else {
    streams_aborted_.fetch_add(1);
  }
  RT_LOG(Debug) << "generate stream request_id=" << request_id
                << " trace_id=" << trace_id << " model=" << req.model
                << " finish=" << FinishReasonName(finish)
                << " tokens=" << outcome->tokens_generated
                << " seconds=" << seconds;
}

HttpResponse BackendService::HandleMetrics(
    const HttpRequest& request) const {
  auto& faults = FaultInjector::Instance();
  if (auto slow = faults.Hit("metrics.render.slow")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(slow->amount));
  }
  Json out = MetricsJson();
  if (request.query.find("format=prometheus") != std::string::npos) {
    HttpResponse resp;
    resp.status = 200;
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = obs::RenderPrometheus(out);
    return resp;
  }
  return HttpResponse::JsonBody(out.Dump());
}

HttpResponse BackendService::HandleMetricsHistory(
    const HttpRequest& request) const {
  return HttpResponse::JsonBody(
      history_.RollupForQuery(request.query).Dump());
}

HttpResponse BackendService::HandleDebugSlow(const HttpRequest&) const {
  return HttpResponse::JsonBody(
      obs::SlowTraceArchive::Instance().ExportChromeJson().Dump());
}

HttpResponse BackendService::HandleFaultAdmin(
    const HttpRequest& request) const {
  auto doc = Json::Parse(request.body);
  if (!doc.ok() || !doc->is_object()) {
    return JsonError(400, "bad_json", "body must be a JSON object",
                     request.request_id);
  }
  std::string action = "arm";
  if (const Json& a = doc->Get("action"); a.is_string()) {
    action = a.AsString();
  }
  auto& faults = FaultInjector::Instance();
  std::string point;
  if (const Json& p = doc->Get("point"); p.is_string()) {
    point = p.AsString();
  }
  if (action == "reset") {
    faults.Reset();
  } else if (point.empty()) {
    return JsonError(400, "bad_fault_point",
                     "'point' must name a fault point",
                     request.request_id);
  } else if (action == "arm") {
    FaultInjector::FaultSpec spec;
    if (const Json& v = doc->Get("skip"); v.is_number()) {
      spec.skip = static_cast<int>(v.AsNumber());
    }
    if (const Json& v = doc->Get("count"); v.is_number()) {
      spec.count = static_cast<int>(v.AsNumber());
    }
    if (const Json& v = doc->Get("probability"); v.is_number()) {
      spec.probability = v.AsNumber();
    }
    if (const Json& v = doc->Get("seed"); v.is_number()) {
      spec.seed = static_cast<uint64_t>(v.AsNumber());
    }
    if (const Json& v = doc->Get("amount"); v.is_number()) {
      spec.amount = static_cast<int>(v.AsNumber());
    }
    faults.Arm(point, spec);
    RT_LOG(Warning) << "fault admin armed point=" << point
                    << " count=" << spec.count
                    << " amount=" << spec.amount
                    << " request_id=" << request.request_id;
  } else if (action == "disarm") {
    faults.Disarm(point);
  } else {
    return JsonError(400, "bad_action",
                     "action must be arm, disarm, or reset",
                     request.request_id);
  }
  Json out{Json::Object{}};
  out.Set("point", point);
  out.Set("action", action);
  out.Set("hits", static_cast<double>(faults.hits(point)));
  out.Set("fires", static_cast<double>(faults.fires(point)));
  return HttpResponse::JsonBody(out.Dump());
}

HttpResponse BackendService::HandleTrace(
    const HttpRequest& request) const {
  // Injected export failure degrades only this endpoint: generate
  // requests keep recording spans and answering 200.
  if (FaultInjector::Instance().Hit("trace.export.fail")) {
    RT_LOG(Warning) << "trace export failed request_id="
                    << request.request_id
                    << " trace_id=" << request.trace_id
                    << " reason=injected_fault";
    return JsonError(503, "trace_export_failed",
                     "trace export failed (injected trace.export.fail)",
                     request.request_id);
  }
  return HttpResponse::JsonBody(
      obs::TraceRecorder::Instance().ExportChromeJson().Dump());
}

Json BackendService::MetricsJson() const {
  Json out{Json::Object{}};
  out.Set("uptime_s", obs::UptimeSeconds());
  out.Set("requests_total",
          static_cast<double>(server_.requests_served()));
  out.Set("requests_rejected",
          static_cast<double>(server_.requests_rejected()));
  out.Set("generate_ok", static_cast<double>(generate_ok_.load()));
  out.Set("generate_client_errors",
          static_cast<double>(generate_client_error_.load()));
  out.Set("generate_server_errors",
          static_cast<double>(generate_server_error_.load()));
  out.Set("generate_deadline_exceeded",
          static_cast<double>(generate_deadline_exceeded_.load()));
  out.Set("generate_cancelled",
          static_cast<double>(generate_cancelled_.load()));
  out.Set("requests_shed",
          static_cast<double>(server_.requests_shed()));
  out.Set("streams_started",
          static_cast<double>(streams_started_.load()));
  out.Set("streams_completed",
          static_cast<double>(streams_completed_.load()));
  out.Set("streams_aborted",
          static_cast<double>(streams_aborted_.load()));
  out.Set("stream_tokens", static_cast<double>(stream_tokens_.load()));
  out.Set("breaker_rejected",
          static_cast<double>(breaker_rejected_.load()));
  // EDF scheduling counters. The HTTP layer's unmeetable sheds are the
  // base; when the batch scheduler is active its extender (installed
  // via batch_metrics) adds its own shed count into this key and
  // overwrites sched_preemptions with the real preemption count.
  out.Set("sched_shed_unmeetable",
          static_cast<double>(server_.requests_shed()));
  out.Set("sched_preemptions", 0.0);
  // Top-level breaker_state tracks the default model (back-compat for
  // single-model deployments); per-model detail lives under `breakers`.
  out.Set("breaker_state",
          std::string(BreakerFor(options_.models.front())
                          .breaker.state_name()));
  Json breakers{Json::Object{}};
  for (const auto& [model, state] : breakers_) {
    Json entry{Json::Object{}};
    entry.Set("state", std::string(state->breaker.state_name()));
    entry.Set("rejected", static_cast<double>(state->rejected.load()));
    breakers.Set(model, std::move(entry));
  }
  out.Set("breakers", std::move(breakers));
  out.Set("max_batch", static_cast<double>(options_.max_batch));
  if (options_.batch_metrics) options_.batch_metrics(&out);
  out.Set("model_sessions", static_cast<double>(sessions_.size()));
  out.Set("model_sessions_in_use",
          static_cast<double>(sessions_in_use_.load()));
  out.Set("workers", static_cast<double>(server_.num_workers()));
  out.Set("queue_depth", static_cast<double>(server_.queue_depth()));
  latency_.FillMetrics("generate_", &out);
  obs::FillStageMetrics(&out);
  // rt::obs v2 gauges: SLO burn rates, span-ring health, slow-trace
  // archive occupancy, and the history sampler's own state.
  obs::SloEngine::Instance().FillMetrics(&out);
  obs::FillTraceRingMetrics(&out);
  obs::SlowTraceArchive::Instance().FillMetrics(&out);
  out.Set("history_samples", static_cast<double>(history_.samples()));
  out.Set("history_interval_ms",
          static_cast<double>(history_.interval_ms()));
  out.Set("postmortem_dumps",
          static_cast<double>(
              obs::FlightRecorder::Instance().dumps_written()));
  return out;
}

HttpResponse BackendService::HandleModels() const {
  Json models{Json::Array{}};
  for (size_t i = 0; i < options_.models.size(); ++i) {
    Json entry{Json::Object{}};
    entry.Set("name", options_.models[i]);
    entry.Set("default", i == 0);
    entry.Set("sessions", static_cast<double>(sessions_.size()));
    entry.Set("quantization",
              std::string(options_.quantized_int8 ? "int8" : "fp32"));
    models.Append(std::move(entry));
  }
  Json out{Json::Object{}};
  out.Set("models", std::move(models));
  return HttpResponse::JsonBody(out.Dump());
}

Status BackendService::Start(int port) {
  // Safe: no worker polls the token while the server is stopped.
  drain_cancel_->Reset();
  Status status = server_.Start(port);
  if (!status.ok()) return status;
  if (!options_.postmortem_file.empty()) {
    if (Status installed =
            obs::FlightRecorder::Instance().Install(
                options_.postmortem_file);
        !installed.ok()) {
      // Degraded observability, not a startup failure.
      RT_LOG(Warning) << "flight recorder install failed: "
                      << installed.ToString();
    }
  }
  history_.Start();
  return status;
}

void BackendService::Stop() {
  history_.Stop();
  // Fire the drain token first so in-flight generations abort at their
  // next token check; the HTTP drain below then finishes quickly with
  // 503 "shutting_down" responses instead of waiting out full decodes.
  drain_cancel_->RequestCancel();
  server_.Stop();
}

}  // namespace rt
