#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "util/strings.h"

namespace rt {
namespace {

/// Reads until the full request (headers + Content-Length body) arrives.
bool ReadRequest(int fd, std::string* raw) {
  char buf[4096];
  size_t body_needed = std::string::npos;
  size_t header_end = std::string::npos;
  for (;;) {
    if (header_end == std::string::npos) {
      header_end = raw->find("\r\n\r\n");
      if (header_end != std::string::npos) {
        // Parse Content-Length if present.
        body_needed = 0;
        std::string head = ToLower(raw->substr(0, header_end));
        size_t cl = head.find("content-length:");
        if (cl != std::string::npos) {
          body_needed = std::strtoull(head.c_str() + cl + 15, nullptr, 10);
        }
      }
    }
    if (header_end != std::string::npos) {
      const size_t have = raw->size() - (header_end + 4);
      if (have >= body_needed) return true;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return header_end != std::string::npos;
    raw->append(buf, static_cast<size_t>(n));
    if (raw->size() > (16u << 20)) return false;  // 16 MiB cap
  }
}

bool ParseRequest(const std::string& raw, HttpRequest* out) {
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  std::istringstream head(raw.substr(0, header_end));
  std::string line;
  if (!std::getline(head, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> parts = SplitWhitespace(line);
  if (parts.size() < 2) return false;
  out->method = parts[0];
  std::string target = parts[1];
  const size_t q = target.find('?');
  if (q != std::string::npos) {
    out->path = target.substr(0, q);
    out->query = target.substr(q + 1);
  } else {
    out->path = target;
  }
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    out->headers[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }
  out->body = raw.substr(header_end + 4);
  return true;
}

std::string StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

/// Connects to 127.0.0.1:port; returns fd or -1.
int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

StatusOr<HttpClientResponse> RoundTrip(int port,
                                       const std::string& request) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) {
    return Status::IoError("connect failed to port " +
                           std::to_string(port));
  }
  SendAll(fd, request);
  ::shutdown(fd, SHUT_WR);
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos || raw.size() < 12) {
    return Status::IoError("malformed HTTP response");
  }
  HttpClientResponse resp;
  resp.status = std::atoi(raw.c_str() + 9);
  resp.body = raw.substr(header_end + 4);
  return resp;
}

}  // namespace

HttpResponse HttpResponse::Text(std::string body, int status) {
  return {status, "text/plain", std::move(body)};
}

HttpResponse HttpResponse::Html(std::string body, int status) {
  return {status, "text/html", std::move(body)};
}

HttpResponse HttpResponse::JsonBody(std::string body, int status) {
  return {status, "application/json", std::move(body)};
}

HttpResponse HttpResponse::NotFound() {
  return {404, "text/plain", "not found"};
}

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& method, const std::string& path,
                       Handler handler) {
  routes_.push_back({method, path, /*is_prefix=*/false, std::move(handler)});
}

void HttpServer::RoutePrefix(const std::string& method,
                             const std::string& prefix, Handler handler) {
  routes_.push_back({method, prefix, /*is_prefix=*/true, std::move(handler)});
}

Status HttpServer::Start(int port) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind failed on port " + std::to_string(port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listen socket unblocks accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  std::string raw;
  if (!ReadRequest(fd, &raw)) return;
  HttpRequest request;
  HttpResponse response;
  if (!ParseRequest(raw, &request)) {
    response = HttpResponse::Text("bad request", 400);
  } else {
    response = Dispatch(request);
  }
  requests_served_.fetch_add(1);
  SendAll(fd, RenderResponse(response));
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) {
  for (const Route_& route : routes_) {
    if (route.method != request.method) continue;
    const bool match = route.is_prefix
                           ? StartsWith(request.path, route.path)
                           : request.path == route.path;
    if (match) return route.handler(request);
  }
  return HttpResponse::NotFound();
}

StatusOr<HttpClientResponse> HttpGet(int port, const std::string& path) {
  return RoundTrip(port, "GET " + path +
                             " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                             "Connection: close\r\n\r\n");
}

StatusOr<HttpClientResponse> HttpPost(int port, const std::string& path,
                                      const std::string& body,
                                      const std::string& content_type) {
  return RoundTrip(port, "POST " + path +
                             " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                             "Content-Type: " + content_type + "\r\n"
                             "Content-Length: " +
                             std::to_string(body.size()) +
                             "\r\nConnection: close\r\n\r\n" + body);
}

}  // namespace rt
