#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>

#include "util/fault_injection.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/obs.h"
#include "util/slo.h"
#include "util/strings.h"

namespace rt {
namespace {

constexpr size_t kMaxRequestBytes = 16u << 20;  // 16 MiB
/// Blocking reads happen in short poll slices so Stop() stays responsive
/// without per-connection wakeup plumbing.
constexpr int kPollSliceMs = 50;
/// Client-side cap on a response head (status line + headers). A replica
/// that streams garbage without ever finishing its headers is rejected
/// as malformed instead of buffered without bound.
constexpr size_t kMaxClientHeaderBytes = 64u << 10;  // 64 KiB

/// recv() bounded by `timeout_ms` (-1 = no limit): polls until readable,
/// retrying EINTR on both the poll and the recv so a signal-interrupted
/// probe read resumes instead of masquerading as connection close.
/// Returns >0 bytes read, 0 on EOF, -1 on socket error (errno set), -2
/// when the timeout expired first.
ssize_t RecvWithDeadline(int fd, char* buf, size_t cap, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int wait = -1;
    if (timeout_ms >= 0) {
      const long long left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (left <= 0) return -2;
      wait = static_cast<int>(std::min<long long>(left, 1 << 20));
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (ready == 0) continue;  // deadline re-checked at the loop top
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return n;
  }
}

/// Remaining budget of a whole-call deadline in ms: -1 when unlimited,
/// else clamped at 0 so an expired deadline times out on the next read.
int RemainingMs(bool limited,
                std::chrono::steady_clock::time_point deadline) {
  if (!limited) return -1;
  const long long left =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now())
          .count();
  return left > 0 ? static_cast<int>(std::min<long long>(left, 1 << 20))
                  : 0;
}

bool ParseRequest(const std::string& raw, HttpRequest* out) {
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  std::istringstream head(raw.substr(0, header_end));
  std::string line;
  if (!std::getline(head, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> parts = SplitWhitespace(line);
  if (parts.size() < 2) return false;
  out->method = parts[0];
  std::string target = parts[1];
  out->version = parts.size() > 2 ? parts[2] : "";
  const size_t q = target.find('?');
  if (q != std::string::npos) {
    out->path = target.substr(0, q);
    out->query = target.substr(q + 1);
  } else {
    out->path = target;
  }
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    out->headers[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }
  out->body = raw.substr(header_end + 4);
  return true;
}

std::string StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 502:
      return "Bad Gateway";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

/// Sends the whole buffer: EINTR is retried, short writes continue from
/// where they left off, and real socket errors (EPIPE from a vanished
/// peer, EAGAIN from an SO_SNDTIMEO expiry) surface as a Status so
/// callers can stop writing into a dead connection. MSG_NOSIGNAL keeps a
/// broken pipe an errno instead of a process-killing SIGPIPE.
Status SendAll(int fd, const std::string& data) {
  auto& faults = FaultInjector::Instance();
  if (auto slow = faults.Hit("http.write.slow")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(slow->amount));
  }
  size_t sent = 0;
  while (sent < data.size()) {
    size_t chunk = data.size() - sent;
    if (auto fired = faults.Hit("http.write.short")) {
      chunk = std::min<size_t>(
          chunk, static_cast<size_t>(std::max(fired->amount, 1)));
    }
    if (faults.Hit("http.write.fail")) {
      return Status::IoError("send failed (injected http.write.fail)");
    }
    const ssize_t n = ::send(fd, data.data() + sent, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("send timed out");
      }
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("send made no progress");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Status line + headers for a streaming response: chunked framing
/// instead of Content-Length, and the connection always closes when the
/// stream ends.
std::string RenderStreamHeaders(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "Transfer-Encoding: chunked\r\n";
  out += "Cache-Control: no-cache\r\n";
  out += "Connection: close\r\n\r\n";
  return out;
}

/// ResponseWriter over one connection: each Write is one chunk through
/// SendAll, so backpressure (SO_SNDTIMEO expiry) and disconnects
/// surface as a dead writer within one Write call.
class ChunkedWriter : public ResponseWriter {
 public:
  ChunkedWriter(int fd, uint64_t trace_id)
      : fd_(fd), trace_id_(trace_id) {}

  bool Write(const std::string& data) override {
    if (dead_) return false;
    if (data.empty()) return true;
    const auto start = obs::Now();
    char size_hex[32];
    std::snprintf(size_hex, sizeof(size_hex), "%zx\r\n", data.size());
    std::string chunk = size_hex;
    chunk += data;
    chunk += "\r\n";
    if (!SendAll(fd_, chunk).ok()) dead_ = true;
    obs::RecordSpanSince(obs::Stage::kResponseStreamWrite, trace_id_,
                         start, "bytes",
                         static_cast<long long>(data.size()));
    return !dead_;
  }

  bool dead() const override { return dead_; }

  /// Marks the writer dead without touching the socket (used when the
  /// header send already failed, so the handler still runs its stream
  /// callback — and its teardown — against a dead writer).
  void Kill() { dead_ = true; }

 private:
  int fd_;
  uint64_t trace_id_;
  bool dead_ = false;
};

std::string RenderResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

void SetSendTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Half-closes the write side, briefly drains unread input, then closes.
/// Closing with unread bytes pending would RST the connection and could
/// destroy a response (e.g. the 503 reject) before the client reads it.
void LingeringClose(int fd) {
  ::shutdown(fd, SHUT_WR);
  timeval tv{};
  tv.tv_usec = 100 * 1000;  // 100 ms drain cap
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char sink[4096];
  for (int i = 0; i < 4 && ::recv(fd, sink, sizeof(sink), 0) > 0; ++i) {
  }
  ::close(fd);
}

/// Returns the Content-Length parsed from a lower-cased header block, or
/// 0 when absent.
size_t ContentLengthOf(const std::string& head_lower) {
  const size_t cl = head_lower.find("content-length:");
  if (cl == std::string::npos) return 0;
  return std::strtoull(head_lower.c_str() + cl + 15, nullptr, 10);
}

/// Connects to 127.0.0.1:port; returns fd or -1.
int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Decodes a Transfer-Encoding: chunked body starting at `start`.
/// Returns false when the terminal chunk has not arrived yet; on
/// success `*body` holds the concatenated chunk payloads and
/// `*consumed` is one past the final CRLF.
bool DecodeChunkedBody(const std::string& data, size_t start,
                       std::string* body, size_t* consumed) {
  std::string out;
  size_t pos = start;
  for (;;) {
    const size_t line_end = data.find("\r\n", pos);
    if (line_end == std::string::npos) return false;
    const size_t size =
        std::strtoull(data.c_str() + pos, nullptr, 16);
    pos = line_end + 2;
    if (size == 0) {
      // Terminal chunk; tolerate (and skip) an empty trailer line.
      if (data.size() < pos + 2) return false;
      *body = std::move(out);
      *consumed = pos + 2;
      return true;
    }
    if (data.size() < pos + size + 2) return false;
    out.append(data, pos, size);
    pos += size + 2;
  }
}

/// Parses a complete response (status line + headers + body, framed by
/// Content-Length or chunked transfer coding) from the front of
/// `buffer`. Returns false when more bytes are needed; `*consumed` is
/// set on success.
bool TryParseClientResponse(const std::string& buffer,
                            HttpClientResponse* resp, size_t* consumed) {
  const size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  if (buffer.size() < 12 || buffer.compare(0, 5, "HTTP/") != 0) {
    return false;
  }
  const std::string head_lower = ToLower(buffer.substr(0, header_end));
  std::string body;
  size_t total = 0;
  if (head_lower.find("transfer-encoding: chunked") != std::string::npos) {
    if (!DecodeChunkedBody(buffer, header_end + 4, &body, &total)) {
      return false;
    }
  } else {
    const size_t body_len = ContentLengthOf(head_lower);
    total = header_end + 4 + body_len;
    if (buffer.size() < total) return false;
    body = buffer.substr(header_end + 4, body_len);
  }
  resp->status = std::atoi(buffer.c_str() + 9);
  resp->headers.clear();
  std::istringstream head(buffer.substr(0, header_end));
  std::string line;
  std::getline(head, line);  // status line
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    resp->headers[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }
  resp->body = std::move(body);
  *consumed = total;
  return true;
}

/// One-shot exchange: send, half-close, read to EOF, parse. The
/// options' timeout_ms bounds the whole exchange; EINTR mid-read
/// resumes instead of truncating the response.
StatusOr<HttpClientResponse> OneShotRoundTrip(
    int port, const std::string& request, const HttpCallOptions& options) {
  const bool limited = options.timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options.timeout_ms);
  const int fd = ConnectLoopback(port);
  if (fd < 0) {
    return Status::IoError("connect failed to port " +
                           std::to_string(port));
  }
  if (Status sent = SendAll(fd, request); !sent.ok()) {
    ::close(fd);
    return sent;
  }
  ::shutdown(fd, SHUT_WR);
  std::string raw;
  char buf[4096];
  bool have_head = false;
  for (;;) {
    const ssize_t n = RecvWithDeadline(fd, buf, sizeof(buf),
                                       RemainingMs(limited, deadline));
    if (n == 0) break;
    if (n == -2) {
      ::close(fd);
      return Status::IoError("response timed out after " +
                             std::to_string(options.timeout_ms) + "ms");
    }
    if (n < 0) {
      ::close(fd);
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    raw.append(buf, static_cast<size_t>(n));
    if (!have_head) {
      have_head = raw.find("\r\n\r\n") != std::string::npos;
      if (!have_head && raw.size() > kMaxClientHeaderBytes) {
        ::close(fd);
        return Status::IoError("response headers exceed the 64 KiB cap");
      }
    }
  }
  ::close(fd);
  HttpClientResponse resp;
  size_t consumed = 0;
  if (!TryParseClientResponse(raw, &resp, &consumed)) {
    // Fall back for responses without Content-Length framing.
    const size_t header_end = raw.find("\r\n\r\n");
    if (header_end == std::string::npos || raw.size() < 12) {
      return Status::IoError("malformed HTTP response");
    }
    resp.status = std::atoi(raw.c_str() + 9);
    resp.body = raw.substr(header_end + 4);
  }
  return resp;
}

std::string FormatGetRequest(
    const std::string& path, bool keep_alive,
    const std::map<std::string, std::string>& extra_headers = {}) {
  std::string out = "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  for (const auto& [key, value] : extra_headers) {
    out += key + ": " + value + "\r\n";
  }
  out += std::string("Connection: ") +
         (keep_alive ? "keep-alive" : "close") + "\r\n\r\n";
  return out;
}

std::string FormatPostRequest(
    const std::string& path, const std::string& body,
    const std::string& content_type, bool keep_alive,
    const std::map<std::string, std::string>& extra_headers = {}) {
  std::string out = "POST " + path +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Type: " +
                    content_type + "\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\n";
  for (const auto& [key, value] : extra_headers) {
    out += key + ": " + value + "\r\n";
  }
  out += std::string("Connection: ") +
         (keep_alive ? "keep-alive" : "close") + "\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpResponse HttpResponse::Text(std::string body, int status) {
  return {status, "text/plain", std::move(body), {}};
}

HttpResponse HttpResponse::Html(std::string body, int status) {
  return {status, "text/html", std::move(body), {}};
}

HttpResponse HttpResponse::JsonBody(std::string body, int status) {
  return {status, "application/json", std::move(body), {}};
}

HttpResponse HttpResponse::NotFound() {
  return JsonError(404, "not_found", "no route for this path", "");
}

HttpResponse JsonError(int status, const std::string& code,
                       const std::string& message,
                       const std::string& request_id) {
  Json detail{Json::Object{}};
  detail.Set("code", code);
  detail.Set("message", message);
  detail.Set("request_id", request_id);
  Json out{Json::Object{}};
  out.Set("error", std::move(detail));
  return HttpResponse::JsonBody(out.Dump(), status);
}

HttpResponse JsonError(int status, const std::string& code,
                       const std::string& message,
                       const std::string& request_id, Json details) {
  Json detail{Json::Object{}};
  detail.Set("code", code);
  detail.Set("message", message);
  detail.Set("request_id", request_id);
  detail.Set("details", std::move(details));
  Json out{Json::Object{}};
  out.Set("error", std::move(detail));
  return HttpResponse::JsonBody(out.Dump(), status);
}

Json HealthzJson() {
  const obs::BuildInfo info = obs::GetBuildInfo();
  Json out{Json::Object{}};
  out.Set("status", "ok");
  out.Set("uptime_s", obs::UptimeSeconds());
  out.Set("build_type", info.build_type);
  out.Set("sanitizer", info.sanitizer);
  out.Set("git_sha", info.git_sha);
  return out;
}

HttpServer::HttpServer() : HttpServer(HttpServerOptions{}) {}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(options) {
  if (options_.num_workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.num_workers = hw > 0 ? static_cast<int>(hw) : 4;
  }
  if (options_.max_queue < 1) options_.max_queue = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Route(const std::string& method, const std::string& path,
                         Handler handler) {
  if (running_.load()) {
    return Status::FailedPrecondition(
        "Route() after Start() would race the dispatcher");
  }
  routes_.push_back({method, path, /*is_prefix=*/false, std::move(handler)});
  return Status::OK();
}

Status HttpServer::RoutePrefix(const std::string& method,
                               const std::string& prefix, Handler handler) {
  if (running_.load()) {
    return Status::FailedPrecondition(
        "RoutePrefix() after Start() would race the dispatcher");
  }
  routes_.push_back({method, prefix, /*is_prefix=*/true, std::move(handler)});
  return Status::OK();
}

Status HttpServer::Start(int port) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind failed on port " + std::to_string(port));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::IoError("listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd);
  draining_.store(false);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    pending_.Clear();
  }
  running_.store(true);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  draining_.store(true);
  // Closing the listen socket unblocks accept().
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Connections that were queued but never picked up are closed unserved.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  pending_.ForEach([](const serve::EdfQueue<PendingConn>::Entry& entry) {
    ::close(entry.value.fd);
  });
  pending_.Clear();
}

int HttpServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return static_cast<int>(pending_.size());
}

std::string HttpServer::NextRequestId() {
  return "req-" + std::to_string(port_) + "-" +
         std::to_string(request_counter_.fetch_add(1) + 1);
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load() || draining_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    if (auto slow = FaultInjector::Instance().Hit("replica.slow-accept")) {
      // Chaos: stall the single acceptor thread so the listen backlog
      // grows and clients see admission latency, as on an overloaded
      // replica.
      std::this_thread::sleep_for(std::chrono::milliseconds(slow->amount));
    }
    bool queued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (static_cast<int>(pending_.size()) < options_.max_queue &&
          !draining_.load()) {
        // The body is unread at admission, so the effective deadline is
        // uniform (admission + queue_deadline_ms): with one budget EDF
        // degrades to arrival order, and class-aware ordering takes over
        // at the layers that have parsed the request.
        const auto now = std::chrono::steady_clock::now();
        serve::SchedKey key;
        key.seq = queue_seq_++;
        if (options_.queue_deadline_ms > 0) {
          key.deadline =
              now + std::chrono::milliseconds(options_.queue_deadline_ms);
        }
        pending_.Push(key, PendingConn{fd, now});
        queued = true;
      }
    }
    if (queued) {
      queue_cv_.notify_one();
      continue;
    }
    // Backpressure: reject instead of queueing unbounded latency.
    requests_rejected_.fetch_add(1);
    SetSendTimeout(fd, options_.write_timeout_ms);
    HttpResponse resp = JsonError(503, "overloaded",
                                  "request queue is full", NextRequestId());
    resp.headers["Retry-After"] =
        std::to_string(options_.retry_after_seconds);
    (void)SendAll(fd, RenderResponse(resp, /*keep_alive=*/false));
    LingeringClose(fd);
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    PendingConn conn{-1, {}};
    bool unmeetable = false;
    long long slack_ms = 0;
    int retry_after_s = options_.retry_after_seconds;
    int depth_behind = 0;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return draining_.load() || !pending_.empty();
      });
      if (draining_.load()) break;  // queued fds are closed by Stop()
      // EDF: serve the connection with the least slack first; shed it
      // unserved when the slack already ran out (its budget is provably
      // spent) with a retry hint from the slack left in the rest of the
      // queue — how long until roughly half the queued work has either
      // run or aged out, a live signal instead of a static hint.
      const auto now = std::chrono::steady_clock::now();
      auto entry = pending_.PopBest();
      conn = entry.value;
      if (serve::SchedPolicy::Unmeetable(entry.key, now)) {
        unmeetable = true;
        slack_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       entry.key.SlackAt(now))
                       .count();
        depth_behind = static_cast<int>(pending_.size());
        retry_after_s = std::max(
            options_.retry_after_seconds,
            serve::SchedPolicy::RetryAfterSeconds(pending_.SlacksMillis(now)));
      }
    }
    if (unmeetable) {
      requests_shed_.fetch_add(1);
      const std::string request_id = NextRequestId();
      RT_LOG(Warning) << "http shed request_id=" << request_id
                      << " trace_id=0 reason=queue_deadline queue_deadline_ms="
                      << options_.queue_deadline_ms
                      << " slack_ms=" << slack_ms
                      << " queue_depth=" << depth_behind;
      Json details{Json::Object{}};
      details.Set("retry_after_s", retry_after_s);
      details.Set("queue_depth", depth_behind);
      details.Set("slack_ms", static_cast<double>(slack_ms));
      HttpResponse resp = JsonError(
          504, "deadline_exceeded",
          "request deadline expired while waiting in the accept queue",
          request_id, std::move(details));
      resp.headers["Retry-After"] = std::to_string(retry_after_s);
      SetSendTimeout(conn.fd, options_.write_timeout_ms);
      (void)SendAll(conn.fd, RenderResponse(resp, /*keep_alive=*/false));
      LingeringClose(conn.fd);
      // A shed burns the error budget: no handler ran and no trace
      // exists, but the SLO engine must see the failed exchange.
      obs::OnRequestShed(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - conn.admitted)
                             .count());
      continue;
    }
    ServeConnection(conn.fd, conn.admitted);
    LingeringClose(conn.fd);
  }
}

HttpServer::ReadOutcome HttpServer::ReadOneRequest(int fd,
                                                   std::string* buffer,
                                                   size_t* request_end) {
  const auto complete = [&]() -> bool {
    const size_t header_end = buffer->find("\r\n\r\n");
    if (header_end == std::string::npos) return false;
    const size_t body_needed =
        ContentLengthOf(ToLower(buffer->substr(0, header_end)));
    const size_t total = header_end + 4 + body_needed;
    if (buffer->size() < total) return false;
    *request_end = total;
    return true;
  };

  char buf[4096];
  int waited_ms = 0;
  // Leftover pipelined bytes count as an in-progress request: apply the
  // read budget, not the idle budget.
  bool in_request = !buffer->empty();
  for (;;) {
    if (complete()) return ReadOutcome::kRequest;
    if (buffer->size() > kMaxRequestBytes) return ReadOutcome::kTooLarge;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (draining_.load()) {
      // Drain: serve nothing new; a half-read request is abandoned.
      return ReadOutcome::kClosed;
    }
    if (ready == 0) {
      waited_ms += kPollSliceMs;
      const int budget =
          in_request ? options_.read_timeout_ms : options_.idle_timeout_ms;
      if (waited_ms >= budget) {
        return in_request ? ReadOutcome::kTimeout : ReadOutcome::kClosed;
      }
      continue;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::kClosed;
    }
    auto& faults = FaultInjector::Instance();
    if (auto slow = faults.Hit("http.read.slow")) {
      // A slow client: stall before consuming the bytes the peer sent.
      std::this_thread::sleep_for(std::chrono::milliseconds(slow->amount));
    }
    size_t want = sizeof(buf);
    if (auto fired = faults.Hit("http.read.short")) {
      // Trickle reads: consume at most `amount` bytes per recv so header
      // parsing sees many partial buffers. Clamped to the stack buffer —
      // an over-sized amount must not turn into an overflowing recv.
      want = std::min(sizeof(buf),
                      static_cast<size_t>(std::max(fired->amount, 1)));
    }
    const ssize_t n = ::recv(fd, buf, want, 0);
    if (n == 0) {
      // Peer half-closed. Serve a header-complete request even when the
      // advertised body was cut short; otherwise just close.
      if (buffer->find("\r\n\r\n") != std::string::npos) {
        *request_end = buffer->size();
        return ReadOutcome::kRequest;
      }
      return ReadOutcome::kClosed;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return ReadOutcome::kClosed;
    }
    buffer->append(buf, static_cast<size_t>(n));
    in_request = true;
    waited_ms = 0;  // progress resets the clock
  }
}

void HttpServer::ServeConnection(
    int fd, std::chrono::steady_clock::time_point admitted) {
  SetSendTimeout(fd, options_.write_timeout_ms);
  std::string buffer;
  int served_on_connection = 0;
  bool close_connection = false;
  while (!close_connection) {
    // The first request inherits the connection's queue-admission stamp
    // (its wait for a worker counts against its deadline); later
    // keep-alive requests start their budget here.
    const auto request_admitted = served_on_connection == 0
                                      ? admitted
                                      : std::chrono::steady_clock::now();
    size_t request_end = 0;
    const ReadOutcome outcome = ReadOneRequest(fd, &buffer, &request_end);
    if (outcome == ReadOutcome::kClosed) return;
    HttpRequest request;
    request.admitted_at = request_admitted;
    HttpResponse response;
    bool parsed = false;
    if (outcome == ReadOutcome::kTimeout) {
      response = JsonError(408, "request_timeout",
                           "timed out reading the request", NextRequestId());
      close_connection = true;
    } else if (outcome == ReadOutcome::kTooLarge) {
      response = JsonError(413, "payload_too_large",
                           "request exceeds the 16 MiB cap", NextRequestId());
      close_connection = true;
    } else {
      std::string raw = buffer.substr(0, request_end);
      buffer.erase(0, request_end);
      if (!ParseRequest(raw, &request)) {
        response = JsonError(400, "bad_request", "malformed HTTP request",
                             NextRequestId());
        close_connection = true;
      } else {
        // A fronting router forwards its ids so replica logs, error
        // envelopes, and spans correlate with the client-visible
        // request; without the headers the server mints its own.
        const auto fwd_id = request.headers.find("x-rt-request-id");
        request.request_id =
            fwd_id != request.headers.end() && !fwd_id->second.empty()
                ? fwd_id->second
                : NextRequestId();
        const auto fwd_trace = request.headers.find("x-rt-trace-id");
        const uint64_t forwarded_trace =
            fwd_trace != request.headers.end()
                ? std::strtoull(fwd_trace->second.c_str(), nullptr, 10)
                : 0;
        request.trace_id =
            forwarded_trace != 0
                ? forwarded_trace
                : obs::TraceRecorder::Instance().NextTraceId();
        parsed = true;
        // queue_wait: queue admission (or keep-alive read start) until a
        // worker hands the parsed request to its handler.
        obs::RecordSpanSince(obs::Stage::kQueueWait, request.trace_id,
                             request_admitted);
        response = Dispatch(request);
      }
    }
    if (parsed) {
      const auto it = request.headers.find("connection");
      const std::string conn =
          it == request.headers.end() ? "" : ToLower(it->second);
      if (conn == "close") {
        close_connection = true;
      } else if (request.version == "HTTP/1.0" && conn != "keep-alive") {
        close_connection = true;
      }
    }
    ++served_on_connection;
    if (options_.max_keepalive_requests > 0 &&
        served_on_connection >= options_.max_keepalive_requests) {
      close_connection = true;
    }
    if (draining_.load()) close_connection = true;
    requests_served_.fetch_add(1);
    if (response.stream) {
      // Streaming response: headers first, then the handler drives
      // chunk writes through a ResponseWriter on this worker thread;
      // the zero-length chunk closes the framing. Never keep-alive.
      const auto stream_start = obs::Now();
      const bool header_ok =
          SendAll(fd, RenderStreamHeaders(response)).ok();
      ChunkedWriter writer(fd, request.trace_id);
      if (!header_ok) writer.Kill();
      // The callback always runs, even against a dead writer — it owns
      // resource teardown (session slots, breaker tickets, cache pins)
      // that must not leak because the client vanished early.
      response.stream(writer);
      const bool stream_ok =
          header_ok && !writer.dead() && SendAll(fd, "0\r\n\r\n").ok();
      if (parsed) {
        obs::RecordSpanSince(obs::Stage::kResponseWrite, request.trace_id,
                             stream_start);
        obs::RecordSpanSince(obs::Stage::kRequest, request.trace_id,
                             request_admitted);
        // SLO + slow-trace retention hook: runs on this worker thread,
        // so handler annotations (class, preempt/deadline reason) set
        // during Dispatch / the stream callback are still visible.
        obs::OnRequestComplete(
            request.trace_id, request.request_id, response.status,
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                obs::Now() - request_admitted)
                .count());
        RT_LOG(Debug) << "http " << request.method << " " << request.path
                      << " status=" << response.status << " streamed=1"
                      << " complete=" << (stream_ok ? 1 : 0)
                      << " request_id=" << request.request_id
                      << " trace_id=" << request.trace_id;
      }
      return;
    }
    const auto write_start = obs::Now();
    const bool sent_ok =
        SendAll(fd, RenderResponse(response, !close_connection)).ok();
    if (parsed) {
      obs::RecordSpanSince(obs::Stage::kResponseWrite, request.trace_id,
                           write_start);
      // The root span: whole exchange from admission through the sent
      // (or failed) response; every other span of this trace id nests
      // inside it by time containment.
      obs::RecordSpanSince(obs::Stage::kRequest, request.trace_id,
                           request_admitted);
      obs::OnRequestComplete(
          request.trace_id, request.request_id, response.status,
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              obs::Now() - request_admitted)
              .count());
      RT_LOG(Debug) << "http " << request.method << " " << request.path
                    << " status=" << response.status
                    << " request_id=" << request.request_id
                    << " trace_id=" << request.trace_id;
    }
    if (!sent_ok) {
      // The peer is gone (or the send timed out); writing further
      // responses into this connection would only interleave garbage.
      return;
    }
  }
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) {
  for (const Route_& route : routes_) {
    if (route.method != request.method) continue;
    const bool match = route.is_prefix
                           ? StartsWith(request.path, route.path)
                           : request.path == route.path;
    if (!match) continue;
    try {
      return route.handler(request);
    } catch (const std::exception& e) {
      RT_LOG(Warning) << "handler threw request_id=" << request.request_id
                      << " trace_id=" << request.trace_id
                      << " what=" << e.what();
      return JsonError(500, "internal", e.what(), request.request_id);
    } catch (...) {
      return JsonError(500, "internal", "handler threw",
                       request.request_id);
    }
  }
  HttpResponse resp = JsonError(404, "not_found",
                                "no route for " + request.method + " " +
                                    request.path,
                                request.request_id);
  return resp;
}

StatusOr<HttpClientResponse> HttpGet(int port, const std::string& path,
                                     const HttpCallOptions& options) {
  return OneShotRoundTrip(port,
                          FormatGetRequest(path, /*keep_alive=*/false,
                                           options.headers),
                          options);
}

StatusOr<HttpClientResponse> HttpPost(int port, const std::string& path,
                                      const std::string& body,
                                      const std::string& content_type,
                                      const HttpCallOptions& options) {
  return OneShotRoundTrip(
      port,
      FormatPostRequest(path, body, content_type,
                        /*keep_alive=*/false, options.headers),
      options);
}

StreamingHttpCall::~StreamingHttpCall() {
  if (fd_ >= 0) ::close(fd_);
}

bool StreamingHttpCall::Fill() {
  char buf[4096];
  const int wait = stall_timeout_ms_ > 0 ? stall_timeout_ms_ : -1;
  const ssize_t n = RecvWithDeadline(fd_, buf, sizeof(buf), wait);
  if (n <= 0) return false;
  buffer_.append(buf, static_cast<size_t>(n));
  return true;
}

Status StreamingHttpCall::Open(int port, const std::string& path,
                               const std::string& body,
                               const std::string& content_type,
                               const HttpCallOptions& options) {
  if (fd_ >= 0) return Status::FailedPrecondition("already open");
  stall_timeout_ms_ = options.stall_timeout_ms;
  const bool limited = options.timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options.timeout_ms);
  fd_ = ConnectLoopback(port);
  if (fd_ < 0) {
    return Status::IoError("connect failed to port " +
                           std::to_string(port));
  }
  if (Status sent = SendAll(
          fd_, FormatPostRequest(path, body, content_type,
                                 /*keep_alive=*/false, options.headers));
      !sent.ok()) {
    return sent;
  }
  size_t header_end;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (buffer_.size() > kMaxClientHeaderBytes) {
      return Status::IoError("response headers exceed the 64 KiB cap");
    }
    char buf[4096];
    const ssize_t n = RecvWithDeadline(fd_, buf, sizeof(buf),
                                       RemainingMs(limited, deadline));
    if (n == -2) {
      return Status::IoError("response head timed out after " +
                             std::to_string(options.timeout_ms) + "ms");
    }
    if (n <= 0) {
      return Status::IoError("connection closed before response head");
    }
    buffer_.append(buf, static_cast<size_t>(n));
  }
  if (buffer_.size() < 12 || buffer_.compare(0, 5, "HTTP/") != 0) {
    return Status::IoError("malformed HTTP response");
  }
  status_ = std::atoi(buffer_.c_str() + 9);
  std::istringstream head(buffer_.substr(0, header_end));
  std::string line;
  std::getline(head, line);  // status line
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    headers_[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }
  const auto te = headers_.find("transfer-encoding");
  chunked_ = te != headers_.end() && ToLower(te->second) == "chunked";
  const auto cl = headers_.find("content-length");
  content_length_ = cl != headers_.end()
                        ? std::strtoull(cl->second.c_str(), nullptr, 10)
                        : 0;
  buffer_.erase(0, header_end + 4);
  return Status::OK();
}

StatusOr<std::string> StreamingHttpCall::ReadAll() {
  std::string out;
  Status pumped = Pump([&out](const std::string& data) {
    out += data;
    return true;
  });
  if (!pumped.ok()) return pumped;
  return out;
}

Status StreamingHttpCall::Pump(
    const std::function<bool(const std::string&)>& on_data) {
  if (fd_ < 0) return Status::FailedPrecondition("not open");
  if (!chunked_) {
    // Content-Length framing (or read-to-EOF when absent, since the
    // request asked Connection: close).
    size_t delivered = 0;
    const bool until_eof =
        content_length_ == 0 && headers_.count("content-length") == 0;
    for (;;) {
      if (!buffer_.empty()) {
        std::string data;
        data.swap(buffer_);
        if (!until_eof &&
            delivered + data.size() > content_length_) {
          data.resize(content_length_ - delivered);
        }
        delivered += data.size();
        bytes_delivered_ += data.size();
        if (!on_data(data)) return Status::OK();
      }
      if (!until_eof && delivered >= content_length_) return Status::OK();
      if (!Fill()) {
        if (until_eof) return Status::OK();
        return Status::IoError("connection closed mid-body");
      }
    }
  }
  // Chunked framing: decode and deliver each chunk as it completes, so
  // an SSE relay forwards every event the moment it arrives.
  for (;;) {
    size_t line_end;
    while ((line_end = buffer_.find("\r\n")) == std::string::npos) {
      if (!Fill()) return Status::IoError("truncated chunked body");
    }
    const size_t size = std::strtoull(buffer_.c_str(), nullptr, 16);
    if (size == 0) return Status::OK();
    while (buffer_.size() < line_end + 2 + size + 2) {
      if (!Fill()) return Status::IoError("truncated chunked body");
    }
    const std::string data = buffer_.substr(line_end + 2, size);
    buffer_.erase(0, line_end + 2 + size + 2);
    bytes_delivered_ += data.size();
    if (!on_data(data)) return Status::OK();
  }
}

HttpClient::HttpClient(int port) : port_(port) {}

HttpClient::HttpClient(int port, HttpCallOptions defaults)
    : port_(port), defaults_(std::move(defaults)) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

StatusOr<HttpClientResponse> HttpClient::Get(const std::string& path) {
  return RoundTrip(
      FormatGetRequest(path, /*keep_alive=*/true, defaults_.headers),
      /*retry_on_stale=*/true);
}

StatusOr<HttpClientResponse> HttpClient::Post(
    const std::string& path, const std::string& body,
    const std::string& content_type) {
  return RoundTrip(FormatPostRequest(path, body, content_type,
                                     /*keep_alive=*/true,
                                     defaults_.headers),
                   /*retry_on_stale=*/true);
}

StatusOr<HttpClientResponse> HttpClient::RoundTrip(
    const std::string& request, bool retry_on_stale) {
  const bool limited = defaults_.timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(defaults_.timeout_ms);
  const bool fresh_connection = fd_ < 0;
  if (fd_ < 0) {
    fd_ = ConnectLoopback(port_);
    buffer_.clear();
    if (fd_ < 0) {
      return Status::IoError("connect failed to port " +
                             std::to_string(port_));
    }
  }
  if (Status sent = SendAll(fd_, request); !sent.ok()) {
    // A send failure on a reused connection usually means the server
    // closed it while idle; retry once on a fresh one, same as a read
    // that hits EOF mid-response.
    Close();
    if (retry_on_stale && !fresh_connection) {
      return RoundTrip(request, /*retry_on_stale=*/false);
    }
    return sent;
  }
  HttpClientResponse resp;
  size_t consumed = 0;
  char buf[4096];
  while (!TryParseClientResponse(buffer_, &resp, &consumed)) {
    if (buffer_.find("\r\n\r\n") == std::string::npos &&
        buffer_.size() > kMaxClientHeaderBytes) {
      Close();
      return Status::IoError("response headers exceed the 64 KiB cap");
    }
    const ssize_t n = RecvWithDeadline(fd_, buf, sizeof(buf),
                                       RemainingMs(limited, deadline));
    if (n == -2) {
      // A timeout is not a stale connection: retrying would double the
      // caller's wait on a peer that is genuinely slow or wedged.
      Close();
      return Status::IoError("response timed out after " +
                             std::to_string(defaults_.timeout_ms) + "ms");
    }
    if (n <= 0) {
      // The server may have closed an idle keep-alive connection between
      // requests; retry once on a fresh connection.
      Close();
      if (retry_on_stale && !fresh_connection) {
        return RoundTrip(request, /*retry_on_stale=*/false);
      }
      return Status::IoError("connection closed mid-response");
    }
    buffer_.append(buf, static_cast<size_t>(n));
  }
  buffer_.erase(0, consumed);
  const auto conn = resp.headers.find("connection");
  if (conn != resp.headers.end() && ToLower(conn->second) == "close") {
    Close();
  }
  return resp;
}

}  // namespace rt
