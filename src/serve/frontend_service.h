#ifndef RATATOUILLE_SERVE_FRONTEND_SERVICE_H_
#define RATATOUILLE_SERVE_FRONTEND_SERVICE_H_

#include <atomic>

#include "serve/http.h"

namespace rt {

/// The decoupled frontend microservice (the ReactJS container of paper
/// Sec. VI): serves the single-page UI and reverse-proxies /api/* to the
/// backend service, so the two tiers scale and deploy independently —
/// the decoupling the paper's architecture section calls out.
class FrontendService {
 public:
  /// `backend_port` is the already-running BackendService port.
  explicit FrontendService(int backend_port);

  Status Start(int port);
  void Stop();
  int port() const { return server_.port(); }

  /// The embedded single-page UI markup (exposed for tests).
  static const char* IndexHtml();

  /// Streams relayed to their natural end (backend finished, or the
  /// browser walked away — both are clean from the relay's view).
  long long streams_relayed() const { return streams_relayed_.load(); }
  /// Streams whose backend died mid-relay; each one ended with a
  /// terminal SSE error frame (code "backend_lost") instead of a
  /// silent truncation.
  long long streams_aborted() const { return streams_aborted_.load(); }

 private:
  int backend_port_;
  HttpServer server_;
  std::atomic<long long> streams_relayed_{0};
  std::atomic<long long> streams_aborted_{0};
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_FRONTEND_SERVICE_H_
