#ifndef RATATOUILLE_SERVE_FRONTEND_SERVICE_H_
#define RATATOUILLE_SERVE_FRONTEND_SERVICE_H_

#include "serve/http.h"

namespace rt {

/// The decoupled frontend microservice (the ReactJS container of paper
/// Sec. VI): serves the single-page UI and reverse-proxies /api/* to the
/// backend service, so the two tiers scale and deploy independently —
/// the decoupling the paper's architecture section calls out.
class FrontendService {
 public:
  /// `backend_port` is the already-running BackendService port.
  explicit FrontendService(int backend_port);

  Status Start(int port);
  void Stop();
  int port() const { return server_.port(); }

  /// The embedded single-page UI markup (exposed for tests).
  static const char* IndexHtml();

 private:
  int backend_port_;
  HttpServer server_;
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_FRONTEND_SERVICE_H_
