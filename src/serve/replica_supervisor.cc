#include "serve/replica_supervisor.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "serve/http.h"
#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/strings.h"

namespace rt {
namespace {

/// Binds `n` ephemeral listeners at once (so the kernel hands out
/// distinct ports), reads the ports back, then closes them. The usual
/// pick-a-free-port race is acceptable here: the replica rebinds with
/// SO_REUSEADDR milliseconds later.
StatusOr<std::vector<int>> PickFreePorts(int n) {
  std::vector<int> fds;
  std::vector<int> ports;
  auto cleanup = [&fds] {
    for (int fd : fds) ::close(fd);
  };
  for (int i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      cleanup();
      return Status::IoError("socket() failed picking replica ports");
    }
    fds.push_back(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      cleanup();
      return Status::IoError("bind() failed picking replica ports");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports.push_back(ntohs(addr.sin_port));
  }
  cleanup();
  return ports;
}

}  // namespace

StatusOr<Json> CollectPostmortemFile(const std::string& path,
                                     bool remove_after) {
  StatusOr<Json> parsed = obs::ParsePostmortemFile(path);
  if (parsed.ok() && remove_after) ::unlink(path.c_str());
  return parsed;
}

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kStarting:
      return "starting";
    case ReplicaState::kHealthy:
      return "healthy";
    case ReplicaState::kDraining:
      return "draining";
    case ReplicaState::kRestarting:
      return "restarting";
  }
  return "unknown";
}

ReplicaSupervisor::ReplicaSupervisor(ReplicaSupervisorOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {
  if (options_.replicas < 1) options_.replicas = 1;
  if (options_.backoff_initial_ms < 1) options_.backoff_initial_ms = 1;
  if (options_.backoff_max_ms < options_.backoff_initial_ms) {
    options_.backoff_max_ms = options_.backoff_initial_ms;
  }
}

ReplicaSupervisor::~ReplicaSupervisor() { Stop(); }

Status ReplicaSupervisor::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  if (options_.command.empty()) {
    return Status::InvalidArgument("replica command must not be empty");
  }
  std::vector<int> ports;
  if (options_.base_port > 0) {
    for (int i = 0; i < options_.replicas; ++i) {
      ports.push_back(options_.base_port + i);
    }
  } else {
    auto picked = PickFreePorts(options_.replicas);
    if (!picked.ok()) return picked.status();
    ports = *std::move(picked);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    replicas_.clear();
    replicas_.resize(static_cast<size_t>(options_.replicas));
    for (int i = 0; i < options_.replicas; ++i) {
      Replica& replica = replicas_[static_cast<size_t>(i)];
      replica.index = i;
      replica.port = ports[static_cast<size_t>(i)];
      replica.backoff_ms = options_.backoff_initial_ms;
      SpawnLocked(replica);
    }
  }
  running_.store(true);
  monitor_ = std::thread([this] { MonitorLoop(); });
  return Status::OK();
}

void ReplicaSupervisor::Stop() {
  if (!running_.exchange(false)) return;
  if (monitor_.joinable()) monitor_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  for (Replica& replica : replicas_) {
    if (replica.pid > 0) {
      ::kill(static_cast<pid_t>(replica.pid), SIGTERM);
    }
  }
  // Graceful window, then the hammer: SIGTERM'd children get
  // drain_grace_ms to exit before SIGKILL; everything is reaped so no
  // zombies outlive the supervisor.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.drain_grace_ms);
  for (;;) {
    bool alive = false;
    for (Replica& replica : replicas_) {
      if (replica.pid <= 0) continue;
      int wstatus = 0;
      if (::waitpid(static_cast<pid_t>(replica.pid), &wstatus, WNOHANG) ==
          static_cast<pid_t>(replica.pid)) {
        replica.pid = -1;
      } else {
        alive = true;
      }
    }
    if (!alive || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (Replica& replica : replicas_) {
    if (replica.pid <= 0) continue;
    ::kill(static_cast<pid_t>(replica.pid), SIGKILL);
    int wstatus = 0;
    ::waitpid(static_cast<pid_t>(replica.pid), &wstatus, 0);
    replica.pid = -1;
  }
}

Status ReplicaSupervisor::WaitHealthy(int min_healthy, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int healthy = 0;
    for (const ReplicaStatus& status : Snapshot()) {
      if (status.state == ReplicaState::kHealthy) ++healthy;
    }
    if (healthy >= min_healthy) return Status::OK();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::IoError(
          "fleet never reached " + std::to_string(min_healthy) +
          " healthy replicas within " + std::to_string(timeout_ms) + "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

int ReplicaSupervisor::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(replicas_.size());
}

std::vector<ReplicaStatus> ReplicaSupervisor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ReplicaStatus> out;
  out.reserve(replicas_.size());
  for (const Replica& replica : replicas_) {
    ReplicaStatus status;
    status.index = replica.index;
    status.port = replica.port;
    status.pid = replica.pid;
    status.state = replica.state;
    status.restarts = replica.restarts;
    status.probe_failures = replica.probe_failures;
    out.push_back(status);
  }
  return out;
}

void ReplicaSupervisor::ReportFailure(int index) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index < 0 || index >= static_cast<int>(replicas_.size())) return;
  ++replicas_[static_cast<size_t>(index)].pending_reports;
}

long long ReplicaSupervisor::total_restarts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_restarts_;
}

Json ReplicaSupervisor::PostmortemsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json out{Json::Array{}};
  for (const Json& record : postmortems_) out.Append(record);
  return out;
}

long long ReplicaSupervisor::postmortems_collected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return postmortems_collected_;
}

void ReplicaSupervisor::SpawnLocked(Replica& replica) {
  // Everything the child needs is prepared before fork(): between
  // fork and exec only async-signal-safe calls are legal, because the
  // supervisor lives in a multithreaded process.
  std::vector<std::string> args;
  args.reserve(options_.command.size());
  for (const std::string& arg : options_.command) {
    args.push_back(ReplaceAll(arg, "{port}", std::to_string(replica.port)));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child. Die with the supervisor instead of orphaning.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  const auto now = std::chrono::steady_clock::now();
  if (pid < 0) {
    RT_LOG(Error) << "replica " << replica.index
                  << " fork failed: " << std::strerror(errno);
    ScheduleRestartLocked(replica);
    return;
  }
  if (replica.ever_spawned) {
    ++replica.restarts;
    ++total_restarts_;
  }
  replica.ever_spawned = true;
  replica.pid = pid;
  replica.state = ReplicaState::kStarting;
  replica.state_since = now;
  replica.probe_failures = 0;
  replica.pending_reports = 0;
  RT_LOG(Info) << "replica " << replica.index << " spawned pid=" << pid
               << " port=" << replica.port
               << " restarts=" << replica.restarts;
}

void ReplicaSupervisor::ScheduleRestartLocked(Replica& replica) {
  const auto now = std::chrono::steady_clock::now();
  if (replica.backoff_ms < options_.backoff_initial_ms) {
    replica.backoff_ms = options_.backoff_initial_ms;
  }
  const int jitter = static_cast<int>(
      jitter_.NextBelow(static_cast<uint64_t>(replica.backoff_ms / 2 + 1)));
  replica.pid = -1;
  replica.state = ReplicaState::kRestarting;
  replica.state_since = now;
  replica.next_action =
      now + std::chrono::milliseconds(replica.backoff_ms + jitter);
  RT_LOG(Warning) << "replica " << replica.index << " restart in "
                  << replica.backoff_ms + jitter << "ms (backoff "
                  << replica.backoff_ms << "ms)";
  replica.backoff_ms =
      std::min(replica.backoff_ms * 2, options_.backoff_max_ms);
}

void ReplicaSupervisor::MonitorLoop() {
  // Probe clients are monitor-thread-local: one keep-alive connection
  // per replica slot, reconnecting transparently after a restart.
  std::vector<std::unique_ptr<HttpClient>> probes(replicas_.size());
  struct DeadReplica {
    int index = 0;
    int port = 0;
    long long pid = -1;
    int wstatus = 0;
  };
  while (running_.load()) {
    std::vector<std::pair<int, int>> to_probe;  // (index, port)
    std::vector<DeadReplica> to_collect;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto now = std::chrono::steady_clock::now();
      for (Replica& replica : replicas_) {
        if (replica.pid > 0) {
          int wstatus = 0;
          const pid_t reaped = ::waitpid(static_cast<pid_t>(replica.pid),
                                         &wstatus, WNOHANG);
          if (reaped == static_cast<pid_t>(replica.pid)) {
            RT_LOG(Warning)
                << "replica " << replica.index << " pid=" << replica.pid
                << (WIFSIGNALED(wstatus)
                        ? " killed by signal " +
                              std::to_string(WTERMSIG(wstatus))
                        : " exited status " +
                              std::to_string(WEXITSTATUS(wstatus)));
            if (!options_.postmortem_path_template.empty()) {
              to_collect.push_back({replica.index, replica.port,
                                    replica.pid, wstatus});
            }
            ScheduleRestartLocked(replica);
          }
        }
        switch (replica.state) {
          case ReplicaState::kDraining:
            if (replica.pid > 0 && now >= replica.next_action) {
              // Out-lived the drain grace: stop being polite.
              ::kill(static_cast<pid_t>(replica.pid), SIGKILL);
              // Reaped (and rescheduled) on the next tick.
            }
            break;
          case ReplicaState::kRestarting:
            if (now >= replica.next_action) SpawnLocked(replica);
            break;
          case ReplicaState::kStarting:
          case ReplicaState::kHealthy:
            if (replica.pid > 0) {
              replica.probe_failures += replica.pending_reports;
              replica.pending_reports = 0;
              to_probe.emplace_back(replica.index, replica.port);
            }
            break;
        }
      }
    }
    // Postmortem collection is plain file I/O on a dead replica's dump
    // — done off the lock like the probes so Snapshot() never waits on
    // the filesystem.
    for (const DeadReplica& dead : to_collect) {
      const std::string path =
          ReplaceAll(options_.postmortem_path_template, "{port}",
                     std::to_string(dead.port));
      auto parsed = CollectPostmortemFile(path, /*remove_after=*/true);
      if (!parsed.ok()) {
        // A clean exit (or a kill faster than the first heartbeat)
        // leaves nothing behind; that is not an error.
        RT_LOG(Info) << "replica " << dead.index << " left no postmortem"
                     << " (" << parsed.status().ToString() << ")";
        continue;
      }
      Json record = *std::move(parsed);
      record.Set("replica_index", static_cast<double>(dead.index));
      record.Set("replica_port", static_cast<double>(dead.port));
      record.Set("replica_pid", static_cast<double>(dead.pid));
      record.Set("killed_by_signal",
                 static_cast<double>(
                     WIFSIGNALED(dead.wstatus) ? WTERMSIG(dead.wstatus)
                                               : 0));
      record.Set("exit_status",
                 static_cast<double>(WIFEXITED(dead.wstatus)
                                         ? WEXITSTATUS(dead.wstatus)
                                         : 0));
      {
        std::lock_guard<std::mutex> lock(mutex_);
        postmortems_.push_back(std::move(record));
        while (postmortems_.size() > kMaxPostmortems) {
          postmortems_.pop_front();
        }
        ++postmortems_collected_;
      }
      RT_LOG(Warning) << "replica " << dead.index
                      << " postmortem collected from " << path;
    }
    // Probe I/O off the lock: a wedged replica stalls only this loop's
    // tick (bounded by probe_timeout_ms per replica), never Snapshot().
    std::vector<std::pair<int, bool>> results;
    results.reserve(to_probe.size());
    for (const auto& [index, port] : to_probe) {
      auto& probe = probes[static_cast<size_t>(index)];
      if (!probe) {
        HttpCallOptions probe_options;
        probe_options.timeout_ms = options_.probe_timeout_ms;
        probe = std::make_unique<HttpClient>(port, probe_options);
      }
      auto resp = probe->Get("/v1/healthz");
      const bool ok = resp.ok() && resp->status == 200;
      if (!ok) probe->Close();
      results.emplace_back(index, ok);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto now = std::chrono::steady_clock::now();
      for (const auto& [index, ok] : results) {
        Replica& replica = replicas_[static_cast<size_t>(index)];
        // The state may have moved while we probed (e.g. the process
        // died and was rescheduled) — only kStarting/kHealthy consume
        // probe results.
        if (replica.state != ReplicaState::kStarting &&
            replica.state != ReplicaState::kHealthy) {
          continue;
        }
        if (ok) {
          if (replica.state == ReplicaState::kStarting) {
            replica.state = ReplicaState::kHealthy;
            replica.state_since = now;
            replica.backoff_ms = options_.backoff_initial_ms;
            RT_LOG(Info) << "replica " << replica.index
                         << " healthy on port " << replica.port;
          }
          replica.probe_failures = 0;
          continue;
        }
        ++replica.probe_failures;
        const bool wedged_healthy =
            replica.state == ReplicaState::kHealthy &&
            replica.probe_failures >= options_.probe_failures_to_restart;
        const bool wedged_starting =
            replica.state == ReplicaState::kStarting &&
            now - replica.state_since >
                std::chrono::milliseconds(options_.startup_grace_ms);
        if (wedged_healthy || wedged_starting) {
          // Alive but unresponsive: drain, then kill after the grace.
          replica.state = ReplicaState::kDraining;
          replica.state_since = now;
          replica.next_action =
              now + std::chrono::milliseconds(options_.drain_grace_ms);
          if (replica.pid > 0) {
            ::kill(static_cast<pid_t>(replica.pid), SIGTERM);
          }
          RT_LOG(Warning) << "replica " << replica.index
                          << " wedged (probe_failures="
                          << replica.probe_failures << "); draining";
        }
      }
    }
    // Interruptible sleep so Stop() returns promptly.
    int slept = 0;
    while (running_.load() && slept < options_.probe_interval_ms) {
      const int slice = std::min(20, options_.probe_interval_ms - slept);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      slept += slice;
    }
  }
}

}  // namespace rt
