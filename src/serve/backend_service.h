#ifndef RATATOUILLE_SERVE_BACKEND_SERVICE_H_
#define RATATOUILLE_SERVE_BACKEND_SERVICE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/recipe.h"
#include "models/language_model.h"
#include "serve/circuit_breaker.h"
#include "serve/http.h"
#include "serve/sched_policy.h"
#include "util/deadline.h"
#include "util/json.h"
#include "util/slo.h"

namespace rt {

/// Client-tunable shape of a streamed (`"stream": true`) response.
struct StreamOptions {
  /// Include the `usage` object on the terminal `done` event.
  bool include_usage = true;
  /// Include the parsed recipe on the terminal `done` event.
  bool include_recipe = true;
};

/// A parsed /v1/generate request. Defaults are the resolved decoding
/// parameters echoed back in the response.
struct GenerateRequest {
  std::vector<std::string> ingredients;
  int max_tokens = 256;
  double temperature = 1.0;
  int top_k = 0;
  double top_p = 0.0;
  bool greedy = false;
  int beam_width = 0;
  uint64_t seed = 0;
  /// SSE token streaming instead of one JSON body.
  bool stream = false;
  StreamOptions stream_options;
  /// Model selection by name; empty picks the service default. The
  /// handler resolves it before the callback runs.
  std::string model;
  /// Client-requested budget in milliseconds; 0 means "use the server
  /// default". The handler caps it at BackendOptions::max_timeout_ms.
  int timeout_ms = 0;
  /// Traffic class from the `priority` param ("interactive" | "batch",
  /// default interactive) or the `x-rt-priority` header when the body
  /// omits it. Every queue on the request path orders by deadline slack
  /// with this class as the tiebreak, and batch-class rows are
  /// preemptible under `--batch-share` pressure.
  serve::TrafficClass priority = serve::TrafficClass::kInteractive;
  /// True when the body carried an explicit `priority` (the header
  /// fallback only applies otherwise). Not echoed.
  bool priority_explicit = false;
  /// Resolved by the handler before the session callback runs: the
  /// absolute budget (anchored at queue admission) and the server's
  /// drain token. Session callbacks thread both into GenerationOptions.
  Deadline deadline;
  std::shared_ptr<const CancelToken> cancel;
  /// Request-scoped trace id, copied from HttpRequest by the handler;
  /// session callbacks thread it into GenerationOptions so decode-loop
  /// spans land on this request's trace track. 0 = untraced.
  uint64_t trace_id = 0;
  /// Streaming hook, set by the handler on stream=true requests and
  /// invoked by the session callback once per decoded token with the
  /// token id and its incremental text. Runs on whatever thread decodes
  /// (the batch scheduler thread under batching) and must not block.
  std::function<void(int token_id, const std::string& text)> on_token;
};

/// What one session callback produced: the recipe plus how decoding
/// ended, so the handler can answer 504/503 with partial-progress
/// metadata instead of a bare error.
struct GenerateOutcome {
  Recipe recipe;
  /// Canonical finish reason — one enum shared by the sequential,
  /// batched and streaming paths (rendered with FinishReasonName in
  /// responses and SSE `done` events).
  FinishReason finish = FinishReason::kStopToken;
  /// Tokens the model emitted before finishing or being interrupted.
  long long tokens_generated = 0;
  /// Prompt tokens fed (usage accounting on streamed responses).
  long long prompt_tokens = 0;

  bool deadline_exceeded() const {
    return finish == FinishReason::kDeadlineExceeded;
  }
  bool cancelled() const { return finish == FinishReason::kCancelled; }
};

/// Stable machine-readable error codes emitted by request validation
/// (the `error.code` field of the envelope). See docs/api.md.
///   invalid_json, invalid_request, unknown_field, missing_ingredients,
///   bad_ingredients, bad_max_tokens, bad_temperature, bad_top_k,
///   bad_top_p, bad_beam_width, bad_greedy, bad_seed, bad_model,
///   bad_timeout_ms, bad_stream, bad_stream_options, bad_priority
/// Runtime codes: deadline_exceeded (504), circuit_open (503),
///   shutting_down (503), generation_failed (500).

/// JSON <-> domain converters (exposed for tests and the frontend).
/// On failure `*error_code` (when non-null) receives the stable code.
StatusOr<GenerateRequest> ParseGenerateRequest(const std::string& body,
                                               std::string* error_code);
StatusOr<GenerateRequest> ParseGenerateRequest(const std::string& body);
Json RecipeToJson(const Recipe& recipe);

/// Mutex-protected latency histogram with fixed log-spaced buckets,
/// surfaced at /v1/metrics.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 13;  // 12 finite bounds + +Inf

  /// Upper bucket bounds in seconds (last bucket is +Inf).
  static const std::array<double, kNumBuckets - 1>& Bounds();

  void Record(double seconds);

  /// Adds `latency_bucket_le` / `latency_bucket_count` arrays plus
  /// total/max/mean summary fields (under `prefix`) to `out`.
  void FillMetrics(const std::string& prefix, Json* out) const;

  /// Mean observed latency in seconds (0 before any observation) —
  /// feeds the 504 Retry-After capacity estimate.
  double MeanSeconds() const;

 private:
  mutable std::mutex mutex_;
  std::array<long long, kNumBuckets> counts_{};
  long long observations_ = 0;
  double total_seconds_ = 0.0;
  double max_seconds_ = 0.0;
};

/// Configuration of the generation backend.
struct BackendOptions {
  /// Concurrent generation slots. Each slot owns one model callback, so
  /// independent requests generate in parallel while every model
  /// instance stays single-threaded.
  int model_sessions = 2;
  /// Threaded HTTP server tuning.
  HttpServerOptions http;
  /// Model names advertised by /v1/models; the first entry is the
  /// default used when a request omits `model`. Empty means {"default"}.
  std::vector<std::string> models;
  /// Advertised in every /v1/models entry as `"quantization": "int8"`
  /// vs `"fp32"` — set by `serve --quant int8` so clients can tell a
  /// quantized deployment from full precision (docs/quantization.md).
  bool quantized_int8 = false;
  /// Generation budget applied when a request omits `timeout_ms`.
  /// Deadlines start at queue admission, so time spent waiting for a
  /// worker or a model session counts against the budget.
  int default_timeout_ms = 30000;
  /// Per-model default budgets, consulted before `default_timeout_ms`
  /// when a request omits `timeout_ms` (a beam-search model point wants
  /// a larger budget than a greedy one). Entries are clamped into
  /// [1, max_timeout_ms] at construction; models not listed fall back
  /// to `default_timeout_ms`.
  std::map<std::string, int> model_timeout_ms;
  /// Upper bound on a client-supplied `timeout_ms` (larger asks are
  /// silently capped, echoed back capped in `params`).
  int max_timeout_ms = 120000;
  /// Circuit breaker over generation timeouts: when enough recent
  /// requests blow their deadline the service fast-fails 503 +
  /// Retry-After instead of queueing more doomed work. Each advertised
  /// model gets its own breaker built from these options, so one
  /// model's timeout storm never fast-fails the others.
  CircuitBreakerOptions breaker;
  /// Intra-op compute threads for the shared kernel pool, applied
  /// process-wide at construction (0 = leave the current setting).
  int compute_threads = 0;
  /// Rows the cross-session batch scheduler may coalesce into one model
  /// step (1 = sequential per-session decoding). Clamped into
  /// [1, kMaxDecodeBatch]; when > 1, `model_sessions` is raised to at
  /// least this value so enough concurrent requests exist to fill a
  /// batch. The service itself only normalizes and reports the knob —
  /// the session factory (MakeBatchedPipelineSessionFactory) owns the
  /// scheduler.
  int max_batch = 1;
  /// Fraction of batch slots batch-class (`priority: "batch"`) rows
  /// may occupy at once (`--batch-share`); 1.0 = uncapped. Only
  /// meaningful with max_batch > 1 — forwarded to the batch
  /// scheduler's occupancy cap.
  double batch_share = 1.0;
  /// Optional /v1/metrics extender invoked with the response object;
  /// the batched session wiring installs one that reports scheduler
  /// occupancy (the batch_* gauges).
  std::function<void(Json*)> batch_metrics;
  /// Turns on the process-wide span ring (obs::TraceRecorder) at
  /// construction so GET /v1/trace has data. Per-span cost while serving
  /// is one relaxed-atomic branch plus a ring write; set false to leave
  /// the recorder in whatever state RT_TRACE chose.
  bool tracing = true;
  /// Registers the pre-/v1 aliases (/healthz, /metrics, /api/generate)
  /// with their Deprecation header. Off by default since API v2; turn
  /// on with --enable-deprecated-routes for clients mid-migration.
  bool enable_deprecated_routes = false;
  /// Registers POST /v1/admin/fault, which arms/disarms rt::FaultInjector
  /// points in THIS process. The router's chaos mode uses it to reach
  /// into replicas; it is off by default because it exists to break the
  /// server on purpose — never enable it on a real deployment.
  bool enable_fault_admin = false;
  /// SLO objectives per traffic class, configured into the process-wide
  /// obs::SloEngine at construction: "p99 of <class> requests completes
  /// within <X> ms" plus a shared error-ratio budget. Burn rates are
  /// exported as slo_* gauges and a fast burn (1m window) degrades
  /// /v1/healthz to "degraded" (still HTTP 200 — the process serves,
  /// the objective suffers).
  double slo_interactive_p99_ms = 2000.0;
  double slo_batch_p99_ms = 30000.0;
  double slo_error_ratio = 0.01;
  double slo_fast_burn_threshold = 14.0;
  /// Metrics-history sampler (GET /v1/metrics/history): snapshot
  /// cadence and ring capacity (defaults hold one hour on box).
  int history_interval_ms = 10000;
  int history_capacity = 360;
  /// Bound of the slow-trace archive (GET /v1/debug/slow).
  int slow_trace_capacity = 32;
  /// When non-empty, installs the crash flight recorder writing this
  /// pre-opened postmortem file; the history sampler heartbeats it so
  /// even a SIGKILLed process leaves a collectible dump.
  std::string postmortem_file;
};

/// The generation backend microservice (the Flask-model container of
/// paper Fig. 4/5), redesigned as a versioned REST surface over a pool
/// of model sessions:
///
///   POST /v1/generate   -> structured recipe + resolved params
///   GET  /v1/healthz    -> {"status":"ok"}
///   GET  /v1/metrics    -> atomic counters + latency histogram
///   GET  /v1/models     -> advertised model names
///
/// The pre-/v1 paths (/api/generate, /healthz, /metrics) remain as thin
/// aliases that answer identically plus a `Deprecation: true` header.
///
/// Requests are served concurrently by the HttpServer worker pool; a
/// generate request blocks until a model session is free.
class BackendService {
 public:
  using GenerateFn =
      std::function<StatusOr<GenerateOutcome>(const GenerateRequest&)>;
  /// Legacy callback shape (recipe only); adapt with WrapRecipeFn.
  using RecipeFn = std::function<StatusOr<Recipe>(const GenerateRequest&)>;
  /// Builds the callback for one session slot. Called `model_sessions`
  /// times at construction; each returned callback is only ever invoked
  /// by one request at a time.
  using SessionFactory = std::function<GenerateFn(int session_index)>;

  /// Adapts a recipe-only callback to a GenerateFn whose outcome always
  /// reports a clean "stop_token" finish (used by tests and simple
  /// backends that do not track decoding progress).
  static GenerateFn WrapRecipeFn(RecipeFn fn);

  /// Single-session service (the callback is never run concurrently).
  explicit BackendService(GenerateFn generate);

  BackendService(const SessionFactory& factory, BackendOptions options);

  Status Start(int port);
  void Stop();
  int port() const { return server_.port(); }
  long long requests_served() const { return server_.requests_served(); }
  int model_sessions() const {
    return static_cast<int>(sessions_.size());
  }
  int max_batch() const { return options_.max_batch; }
  const HttpServer& server() const { return server_; }
  /// The on-box time-series ring behind GET /v1/metrics/history
  /// (tests drive SampleNow() directly for determinism).
  obs::MetricsHistory& history() { return history_; }

 private:
  void RegisterRoutes();
  HttpResponse HandleGenerate(const HttpRequest& request);
  /// JSON by default; `?format=prometheus` answers the same metrics as
  /// Prometheus text exposition (rendered from the same Json object, so
  /// the surfaces cannot drift).
  HttpResponse HandleMetrics(const HttpRequest& request) const;
  /// GET /v1/metrics/history?window=<seconds>[&key=<flat key>]:
  /// windowed rollups from the on-box metrics-history ring.
  HttpResponse HandleMetricsHistory(const HttpRequest& request) const;
  /// GET /v1/debug/slow: the tail-sampled slow-trace archive in Chrome
  /// trace format with per-stage budget attribution.
  HttpResponse HandleDebugSlow(const HttpRequest& request) const;
  HttpResponse HandleFaultAdmin(const HttpRequest& request) const;
  /// GET /v1/trace: Chrome trace_event export of the span ring.
  HttpResponse HandleTrace(const HttpRequest& request) const;
  HttpResponse HandleModels() const;
  /// The /v1/metrics response body as a Json object (also the source of
  /// the Prometheus rendering).
  Json MetricsJson() const;

  /// Blocks until a session slot is free or the deadline expires;
  /// returns the slot index, or -1 when the wait timed out. Blocked
  /// acquirers park on a slack-ordered waiter list (serve::
  /// SlotWaitQueue): a freed slot is handed to the tightest-deadline
  /// waiter — interactive before batch at equal deadlines — instead of
  /// whichever thread the OS wakes first.
  int AcquireSession(const Deadline& deadline, serve::TrafficClass cls);
  void ReleaseSession(int index);

  /// One model's breaker plus its rejection count, so /v1/metrics can
  /// report fast-fail pressure per model as well as in aggregate.
  struct ModelBreaker {
    explicit ModelBreaker(const CircuitBreakerOptions& options)
        : breaker(options) {}
    CircuitBreaker breaker;
    std::atomic<long long> rejected{0};
  };

  /// The breaker for `model` (must be an advertised model name).
  ModelBreaker& BreakerFor(const std::string& model) const;

  /// The SSE (`"stream": true`) arm of HandleGenerate. Shed / session
  /// wait still answer plain HTTP errors on the worker thread; once a
  /// session is held the response becomes a chunked-transfer callback
  /// that runs RunStream on the connection. `ticket` is the admitted
  /// breaker ticket — settled here on pre-stream failures, inside
  /// RunStream otherwise.
  HttpResponse HandleGenerateStream(const HttpRequest& request,
                                    GenerateRequest req,
                                    ModelBreaker& model_breaker,
                                    CircuitBreaker::Ticket ticket,
                                    int budget_ms);

  /// Streams one generation over `writer`: decodes on a helper thread,
  /// writes one SSE `token` event per decoded token, and finishes with
  /// a terminal `done` (or `error`) event. Owns teardown: releases the
  /// session slot, settles the breaker ticket, and cancels the decode
  /// when the client disconnects or the server drains.
  void RunStream(ResponseWriter& writer, GenerateRequest req,
                 ModelBreaker& model_breaker,
                 CircuitBreaker::Ticket ticket, int slot,
                 const std::string& request_id, uint64_t trace_id);

  /// The 504 deadline_exceeded envelope (with Retry-After) shared by
  /// the unary and pre-stream paths; bumps the deadline counter.
  /// `slack_ms` is the request's remaining slack (negative once the
  /// deadline passed) — surfaced with the live queue depth in
  /// error.details so clients can back off proportionally.
  HttpResponse DeadlineResponse(const std::string& request_id,
                                ModelBreaker& model_breaker, int budget_ms,
                                long long tokens_generated,
                                long long slack_ms);

  BackendOptions options_;
  std::vector<GenerateFn> sessions_;
  HttpServer server_;
  /// Keyed by advertised model name; built once at construction, so
  /// concurrent handlers read the map without locking.
  std::map<std::string, std::unique_ptr<ModelBreaker>> breakers_;
  /// Fired by Stop() before the HTTP drain so in-flight generations
  /// abort at the next token instead of running to completion.
  std::shared_ptr<CancelToken> drain_cancel_;

  std::mutex session_mutex_;
  std::condition_variable session_cv_;
  std::vector<int> free_sessions_;
  /// Invariant: free_sessions_ is non-empty only while waiters_ is
  /// empty — ReleaseSession hands freed slots straight to the best
  /// waiter, so a slot never sits free while someone is parked.
  serve::SlotWaitQueue waiters_;
  uint64_t session_seq_ = 0;  // arrival stamp, guarded by session_mutex_

  std::atomic<long long> generate_ok_{0};
  std::atomic<long long> generate_client_error_{0};
  std::atomic<long long> generate_server_error_{0};
  std::atomic<long long> generate_deadline_exceeded_{0};
  std::atomic<long long> generate_cancelled_{0};
  std::atomic<long long> breaker_rejected_{0};
  std::atomic<long long> sessions_in_use_{0};
  /// SSE streaming counters (stream_* gauges at /v1/metrics).
  std::atomic<long long> streams_started_{0};
  std::atomic<long long> streams_completed_{0};
  /// Streams torn down early: client disconnect, backpressure timeout,
  /// deadline, cancellation, or a generation error mid-stream.
  std::atomic<long long> streams_aborted_{0};
  std::atomic<long long> stream_tokens_{0};
  LatencyHistogram latency_;
  /// Snapshots MetricsJson() on a cadence; also feeds the flight
  /// recorder's heartbeat. Mutable: Rollup serves const handlers.
  mutable obs::MetricsHistory history_;
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_BACKEND_SERVICE_H_
