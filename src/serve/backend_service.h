#ifndef RATATOUILLE_SERVE_BACKEND_SERVICE_H_
#define RATATOUILLE_SERVE_BACKEND_SERVICE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "data/recipe.h"
#include "serve/http.h"
#include "util/json.h"

namespace rt {

/// A parsed /v1/generate request. Defaults are the resolved decoding
/// parameters echoed back in the response.
struct GenerateRequest {
  std::vector<std::string> ingredients;
  int max_tokens = 256;
  double temperature = 1.0;
  int top_k = 0;
  double top_p = 0.0;
  bool greedy = false;
  int beam_width = 0;
  uint64_t seed = 0;
  /// Model selection by name; empty picks the service default. The
  /// handler resolves it before the callback runs.
  std::string model;
};

/// Stable machine-readable error codes emitted by request validation
/// (the `error.code` field of the envelope). See docs/api.md.
///   invalid_json, invalid_request, unknown_field, missing_ingredients,
///   bad_ingredients, bad_max_tokens, bad_temperature, bad_top_k,
///   bad_top_p, bad_beam_width, bad_greedy, bad_seed, bad_model

/// JSON <-> domain converters (exposed for tests and the frontend).
/// On failure `*error_code` (when non-null) receives the stable code.
StatusOr<GenerateRequest> ParseGenerateRequest(const std::string& body,
                                               std::string* error_code);
StatusOr<GenerateRequest> ParseGenerateRequest(const std::string& body);
Json RecipeToJson(const Recipe& recipe);

/// Mutex-protected latency histogram with fixed log-spaced buckets,
/// surfaced at /v1/metrics.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 13;  // 12 finite bounds + +Inf

  /// Upper bucket bounds in seconds (last bucket is +Inf).
  static const std::array<double, kNumBuckets - 1>& Bounds();

  void Record(double seconds);

  /// Adds `latency_bucket_le` / `latency_bucket_count` arrays plus
  /// total/max/mean summary fields (under `prefix`) to `out`.
  void FillMetrics(const std::string& prefix, Json* out) const;

 private:
  mutable std::mutex mutex_;
  std::array<long long, kNumBuckets> counts_{};
  long long observations_ = 0;
  double total_seconds_ = 0.0;
  double max_seconds_ = 0.0;
};

/// Configuration of the generation backend.
struct BackendOptions {
  /// Concurrent generation slots. Each slot owns one model callback, so
  /// independent requests generate in parallel while every model
  /// instance stays single-threaded.
  int model_sessions = 2;
  /// Threaded HTTP server tuning.
  HttpServerOptions http;
  /// Model names advertised by /v1/models; the first entry is the
  /// default used when a request omits `model`. Empty means {"default"}.
  std::vector<std::string> models;
};

/// The generation backend microservice (the Flask-model container of
/// paper Fig. 4/5), redesigned as a versioned REST surface over a pool
/// of model sessions:
///
///   POST /v1/generate   -> structured recipe + resolved params
///   GET  /v1/healthz    -> {"status":"ok"}
///   GET  /v1/metrics    -> atomic counters + latency histogram
///   GET  /v1/models     -> advertised model names
///
/// The pre-/v1 paths (/api/generate, /healthz, /metrics) remain as thin
/// aliases that answer identically plus a `Deprecation: true` header.
///
/// Requests are served concurrently by the HttpServer worker pool; a
/// generate request blocks until a model session is free.
class BackendService {
 public:
  using GenerateFn =
      std::function<StatusOr<Recipe>(const GenerateRequest&)>;
  /// Builds the callback for one session slot. Called `model_sessions`
  /// times at construction; each returned callback is only ever invoked
  /// by one request at a time.
  using SessionFactory = std::function<GenerateFn(int session_index)>;

  /// Single-session service (the callback is never run concurrently).
  explicit BackendService(GenerateFn generate);

  BackendService(const SessionFactory& factory, BackendOptions options);

  Status Start(int port);
  void Stop();
  int port() const { return server_.port(); }
  long long requests_served() const { return server_.requests_served(); }
  int model_sessions() const {
    return static_cast<int>(sessions_.size());
  }
  const HttpServer& server() const { return server_; }

 private:
  void RegisterRoutes();
  HttpResponse HandleGenerate(const HttpRequest& request);
  HttpResponse HandleMetrics() const;
  HttpResponse HandleModels() const;

  /// Blocks until a session slot is free, returns its index.
  int AcquireSession();
  void ReleaseSession(int index);

  BackendOptions options_;
  std::vector<GenerateFn> sessions_;
  HttpServer server_;

  std::mutex session_mutex_;
  std::condition_variable session_cv_;
  std::vector<int> free_sessions_;

  std::atomic<long long> generate_ok_{0};
  std::atomic<long long> generate_client_error_{0};
  std::atomic<long long> generate_server_error_{0};
  std::atomic<long long> sessions_in_use_{0};
  LatencyHistogram latency_;
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_BACKEND_SERVICE_H_
