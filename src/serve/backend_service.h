#ifndef RATATOUILLE_SERVE_BACKEND_SERVICE_H_
#define RATATOUILLE_SERVE_BACKEND_SERVICE_H_

#include <functional>
#include <string>
#include <vector>

#include "data/recipe.h"
#include "serve/http.h"
#include "util/json.h"

namespace rt {

/// A parsed /api/generate request.
struct GenerateRequest {
  std::vector<std::string> ingredients;
  int max_tokens = 256;
  double temperature = 1.0;
  int top_k = 0;
  uint64_t seed = 0;
};

/// JSON <-> domain converters (exposed for tests and the frontend).
StatusOr<GenerateRequest> ParseGenerateRequest(const std::string& body);
Json RecipeToJson(const Recipe& recipe);

/// The generation backend microservice (the Flask-model container of
/// paper Fig. 4/5): REST endpoints over a model-backed callback.
///
///   GET  /healthz        -> {"status":"ok"}
///   GET  /metrics        -> request/error counters + latency summary
///   POST /api/generate   -> structured recipe JSON
///
/// The callback runs on the server thread; it must be thread-compatible
/// (the server serves one request at a time).
class BackendService {
 public:
  using GenerateFn =
      std::function<StatusOr<Recipe>(const GenerateRequest&)>;

  explicit BackendService(GenerateFn generate);

  Status Start(int port);
  void Stop();
  int port() const { return server_.port(); }
  long long requests_served() const { return server_.requests_served(); }

 private:
  HttpResponse HandleGenerate(const HttpRequest& request);
  HttpResponse HandleMetrics() const;

  GenerateFn generate_;
  HttpServer server_;
  // Generation counters (single-threaded server; plain members suffice).
  long long generate_ok_ = 0;
  long long generate_client_error_ = 0;
  long long generate_server_error_ = 0;
  double total_generate_seconds_ = 0.0;
  double max_generate_seconds_ = 0.0;
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_BACKEND_SERVICE_H_
