#ifndef RATATOUILLE_SERVE_CIRCUIT_BREAKER_H_
#define RATATOUILLE_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>

namespace rt {

/// Tuning for the generation circuit breaker.
struct CircuitBreakerOptions {
  /// Recent generation outcomes considered (sliding window).
  int window = 20;
  /// Never trip before this many outcomes are in the window.
  int min_samples = 4;
  /// Trip when at least this fraction of the window timed out.
  double trip_ratio = 0.5;
  /// How long the breaker stays open before letting one probe through.
  int cooldown_ms = 1000;
};

/// A classic three-state circuit breaker over generation timeouts.
///
///   closed    -> requests flow; outcomes fill a sliding window. When
///                the window's timeout fraction reaches trip_ratio
///                (with >= min_samples outcomes), the breaker opens.
///   open      -> requests fast-fail (the caller answers 503 +
///                Retry-After) until cooldown_ms has passed.
///   half-open -> exactly one probe request is admitted; success closes
///                the breaker, a timeout re-opens it for another
///                cooldown, and an abandoned probe (the request died
///                for a non-timeout reason) frees the probe slot so
///                the next request can probe instead.
///
/// Every admission is identified by a ticket. Allow() hands one out
/// (0 = denied) and exactly one of RecordSuccess / RecordTimeout /
/// RecordAbandoned must be called with it — the Outcome guard below
/// makes that automatic. Tickets issued before the breaker last
/// opened are ignored on record, so stragglers from before a trip can
/// neither close a half-open breaker nor re-trip a recovered one, and
/// only the probe's own outcome drives half-open transitions.
///
/// Thread-safe; every method takes the internal mutex.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// Identifies one admitted request. 0 is never issued and means
  /// "denied"; passing 0 to any Record* is a no-op.
  using Ticket = uint64_t;

  /// Ties an admitted request to exactly one recorded outcome. Call
  /// Success() or Timeout() on the way out; if neither happens (error
  /// paths, cancellation, early shed) the destructor reports the
  /// ticket as abandoned, so a half-open probe can never wedge the
  /// breaker by exiting through a path that forgets to report.
  class Outcome {
   public:
    Outcome(CircuitBreaker& breaker, Ticket ticket)
        : breaker_(breaker), ticket_(ticket) {}
    Outcome(const Outcome&) = delete;
    Outcome& operator=(const Outcome&) = delete;
    ~Outcome() { breaker_.RecordAbandoned(Take()); }

    void Success() { breaker_.RecordSuccess(Take()); }
    void Timeout() { breaker_.RecordTimeout(Take()); }

   private:
    Ticket Take() {
      const Ticket t = ticket_;
      ticket_ = 0;
      return t;
    }

    CircuitBreaker& breaker_;
    Ticket ticket_;
  };

  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// Nonzero ticket when a request may proceed now, 0 to fast-fail. In
  /// the open state this is where the cooldown expiry is noticed and
  /// the probe admitted.
  Ticket Allow();

  /// Reports a generation that completed without a timeout.
  void RecordSuccess(Ticket ticket);

  /// Reports a generation that exceeded its deadline.
  void RecordTimeout(Ticket ticket);

  /// Reports a request that ended without learning anything about
  /// generation health (validation shed, internal error, cancelled).
  void RecordAbandoned(Ticket ticket);

  State state() const;

  /// "closed" / "open" / "half_open" (for /v1/metrics).
  const char* state_name() const;

  /// Milliseconds of cooldown left while open (0 when closed, half-open
  /// or the cooldown has already lapsed) — the Retry-After hint.
  int cooldown_remaining_ms() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Appends one outcome to the sliding window. Caller holds mutex_.
  void PushOutcomeLocked(bool timeout);

  /// Trips to open when the window says so. Caller holds mutex_.
  void MaybeTripLocked();

  /// Moves to open and invalidates all outstanding tickets, so
  /// stragglers admitted earlier cannot influence later states.
  /// Caller holds mutex_.
  void OpenLocked();

  CircuitBreakerOptions options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::deque<bool> outcomes_;  // true = timeout
  int window_timeouts_ = 0;
  Clock::time_point opened_at_{};
  Ticket next_ticket_ = 0;
  Ticket probe_ticket_ = 0;      // nonzero while a probe is in flight
  Ticket min_valid_ticket_ = 1;  // older tickets are stragglers
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_CIRCUIT_BREAKER_H_
