#ifndef RATATOUILLE_SERVE_CIRCUIT_BREAKER_H_
#define RATATOUILLE_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <deque>
#include <mutex>

namespace rt {

/// Tuning for the generation circuit breaker.
struct CircuitBreakerOptions {
  /// Recent generation outcomes considered (sliding window).
  int window = 20;
  /// Never trip before this many outcomes are in the window.
  int min_samples = 4;
  /// Trip when at least this fraction of the window timed out.
  double trip_ratio = 0.5;
  /// How long the breaker stays open before letting one probe through.
  int cooldown_ms = 1000;
};

/// A classic three-state circuit breaker over generation timeouts.
///
///   closed    -> requests flow; outcomes fill a sliding window. When
///                the window's timeout fraction reaches trip_ratio
///                (with >= min_samples outcomes), the breaker opens.
///   open      -> requests fast-fail (the caller answers 503 +
///                Retry-After) until cooldown_ms has passed.
///   half-open -> exactly one probe request is admitted; success closes
///                the breaker, a timeout re-opens it for another
///                cooldown.
///
/// Thread-safe; every method takes the internal mutex. Timeouts of
/// requests already in flight when the breaker opened are ignored, so a
/// burst of stragglers cannot re-trip a freshly recovered breaker.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// True when a request may proceed now. In the open state this is
  /// where the cooldown expiry is noticed and the probe admitted.
  bool Allow();

  /// Reports a generation that completed without a timeout.
  void RecordSuccess();

  /// Reports a generation that exceeded its deadline.
  void RecordTimeout();

  State state() const;

  /// "closed" / "open" / "half_open" (for /v1/metrics).
  const char* state_name() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Trips to open when the window says so. Caller holds mutex_.
  void MaybeTripLocked();

  CircuitBreakerOptions options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::deque<bool> outcomes_;  // true = timeout
  int window_timeouts_ = 0;
  Clock::time_point opened_at_{};
  bool probe_in_flight_ = false;
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_CIRCUIT_BREAKER_H_
