#ifndef RATATOUILLE_SERVE_ROUTER_H_
#define RATATOUILLE_SERVE_ROUTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "serve/circuit_breaker.h"
#include "serve/http.h"
#include "serve/replica_supervisor.h"
#include "serve/sched_policy.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/slo.h"
#include "util/status.h"

namespace rt {

/// Tuning for the replica router.
struct RouterOptions {
  HttpServerOptions http;
  /// Whole-request budget when the client does not ask (ms); a client
  /// timeout_ms is honored up to max_timeout_ms, same contract as the
  /// backend.
  int default_timeout_ms = 30000;
  int max_timeout_ms = 120000;
  /// Dispatch attempts per request (first try + retries), each on a
  /// different replica while one is available.
  int max_tries = 3;
  /// Per-attempt budget (ms). 0 derives it from the request deadline:
  /// remaining budget split over the attempts left, floored at
  /// min_try_timeout_ms so late retries still get a usable slice.
  int per_try_timeout_ms = 0;
  int min_try_timeout_ms = 250;
  /// Jittered exponential backoff between retries.
  int retry_backoff_ms = 25;
  int retry_backoff_max_ms = 500;
  uint64_t jitter_seed = 1;
  /// Longest mid-stream silence tolerated while relaying SSE before the
  /// upstream counts as lost.
  int stream_stall_timeout_ms = 30000;
  /// Per-replica breaker tuning (one CircuitBreaker per replica, so one
  /// sick replica is ejected without tripping the fleet).
  CircuitBreakerOptions breaker;
  /// Record route_try spans in the process trace ring (same contract as
  /// BackendOptions::tracing; the fleet parent has no backend to flip
  /// the recorder on, so the router must).
  bool tracing = true;
  /// On-box metrics-history ring over the router's own MetricsJson
  /// (which embeds the fleet SLO aggregate), same knobs as the backend.
  int history_interval_ms = 10000;
  int history_capacity = 360;
};

/// The routing tier: fronts a ReplicaFleet with least-loaded dispatch,
/// per-try deadlines, bounded jittered retry onto different replicas,
/// and per-replica circuit breakers.
///
///   POST /v1/*        -> dispatch (buffered or SSE relay)
///   GET  /v1/models   -> proxied to a healthy replica
///   GET  /v1/healthz  -> aggregated fleet health (503 when none)
///   GET  /v1/metrics  -> router counters + per-replica state
///   GET  /v1/trace    -> own spans merged with replica spans
///
/// Failure policy per attempt: transport errors and replica 500/502
/// count against the replica's breaker and retry elsewhere; replica
/// 503 (overload/drain) retries elsewhere without blaming generation
/// health; 504 means the budget is gone and passes through; everything
/// else (2xx/4xx) is a settled answer. Streams fail over only while
/// zero body bytes have been relayed — after that a lost backend
/// yields a terminal SSE error frame with finish_reason
/// "backend_lost".
class Router {
 public:
  Router(ReplicaFleet* fleet, RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks a free port).
  Status Start(int port);
  void Stop();
  int port() const { return server_.port(); }

  Json MetricsJson() const;

  /// Requests answered by a replica (any settled HTTP answer).
  long long route_ok() const { return route_ok_.load(); }
  /// Attempts that failed and were retried on another replica.
  long long route_retries() const { return route_retries_.load(); }
  /// Requests answered 503 because no dispatchable replica existed.
  long long route_no_replica() const { return route_no_replica_.load(); }
  /// Requests that burned every try without a settled answer.
  long long route_exhausted() const { return route_exhausted_.load(); }
  /// Streams that relayed to completion.
  long long streams_relayed() const { return streams_relayed_.load(); }
  /// Streams that switched replica before the first relayed byte.
  long long streams_failed_over() const {
    return streams_failed_over_.load();
  }
  /// Streams that died mid-relay (terminal backend_lost frame sent).
  long long streams_aborted() const { return streams_aborted_.load(); }

 private:
  /// Per-replica routing state, index-aligned with the fleet.
  struct ReplicaSlot {
    std::unique_ptr<CircuitBreaker> breaker;
    std::atomic<int> in_flight{0};
    /// Subset of in_flight carrying the batch traffic class. The pick
    /// weights these double for interactive requests, steering latency-
    /// sensitive work away from replicas busy with bulk decodes.
    std::atomic<int> batch_in_flight{0};
    std::atomic<long long> dispatched{0};
    std::atomic<long long> failures{0};
  };

  /// One admitted dispatch attempt.
  struct Pick {
    int index = -1;
    int port = 0;
    CircuitBreaker::Ticket ticket = 0;
  };

  /// Least-loaded healthy replica not in `exclude` whose breaker admits
  /// the request. Falls back to excluded replicas (still healthy, still
  /// admitted) when nothing else is left — a retry may land on the
  /// same replica rather than fail outright. Interactive requests
  /// weight a replica's batch-class load double, so latency-sensitive
  /// work lands on the replica least busy with bulk decodes.
  bool PickReplica(const std::set<int>& exclude, serve::TrafficClass cls,
                   Pick* pick);

  HttpResponse RouteBuffered(const HttpRequest& request,
                             std::chrono::steady_clock::time_point deadline,
                             serve::TrafficClass cls);
  HttpResponse RouteStream(const HttpRequest& request,
                           std::chrono::steady_clock::time_point deadline,
                           serve::TrafficClass cls);
  HttpResponse HandleRoute(const HttpRequest& request);
  HttpResponse HandleHealthz(const HttpRequest& request) const;
  HttpResponse HandleMetrics(const HttpRequest& request) const;
  HttpResponse HandleTrace(const HttpRequest& request) const;
  HttpResponse HandleModels(const HttpRequest& request) const;
  HttpResponse HandleMetricsHistory(const HttpRequest& request) const;
  HttpResponse HandleDebugSlow(const HttpRequest& request) const;
  HttpResponse HandleDebugPostmortem(const HttpRequest& request) const;

  /// GETs and parses /v1/metrics from every healthy replica (best
  /// effort, short per-replica timeout). Feeds the fleet SLO aggregate
  /// and the stage_* histogram merge.
  std::vector<Json> FetchReplicaMetrics() const;

  /// Remaining per-try budget for attempt `attempt` (0-based).
  int TryTimeoutMs(std::chrono::steady_clock::time_point deadline,
                   int attempt) const;
  /// Sleeps the jittered backoff for attempt `attempt`, bounded by the
  /// deadline. False when the deadline would expire first.
  bool BackoffBeforeRetry(int attempt,
                          std::chrono::steady_clock::time_point deadline);
  /// Jitter draws are serialized (Rng is not thread-safe).
  int JitterMs(int base);

  ReplicaFleet* fleet_;
  RouterOptions options_;
  HttpServer server_;
  mutable obs::MetricsHistory history_;
  std::vector<std::unique_ptr<ReplicaSlot>> slots_;
  std::mutex jitter_mutex_;
  Rng jitter_;

  std::atomic<long long> route_ok_{0};
  std::atomic<long long> route_retries_{0};
  std::atomic<long long> route_no_replica_{0};
  std::atomic<long long> route_exhausted_{0};
  std::atomic<long long> streams_relayed_{0};
  std::atomic<long long> streams_failed_over_{0};
  std::atomic<long long> streams_aborted_{0};
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_ROUTER_H_
