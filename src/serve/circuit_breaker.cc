#include "serve/circuit_breaker.h"

namespace rt {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {
  if (options_.window < 1) options_.window = 1;
  if (options_.min_samples < 1) options_.min_samples = 1;
  if (options_.min_samples > options_.window) {
    options_.min_samples = options_.window;
  }
}

CircuitBreaker::Ticket CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return ++next_ticket_;
    case State::kOpen:
      if (Clock::now() - opened_at_ <
          std::chrono::milliseconds(options_.cooldown_ms)) {
        return 0;
      }
      state_ = State::kHalfOpen;
      probe_ticket_ = ++next_ticket_;
      return probe_ticket_;
    case State::kHalfOpen:
      if (probe_ticket_ != 0) return 0;
      probe_ticket_ = ++next_ticket_;
      return probe_ticket_;
  }
  return 0;
}

void CircuitBreaker::RecordSuccess(Ticket ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ticket == 0 || ticket < min_valid_ticket_) return;  // straggler
  switch (state_) {
    case State::kHalfOpen:
      if (ticket != probe_ticket_) return;
      // The probe came back healthy: close and start fresh.
      state_ = State::kClosed;
      probe_ticket_ = 0;
      outcomes_.clear();
      window_timeouts_ = 0;
      return;
    case State::kClosed:
      PushOutcomeLocked(false);
      return;
    case State::kOpen:
      return;
  }
}

void CircuitBreaker::RecordTimeout(Ticket ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ticket == 0 || ticket < min_valid_ticket_) return;  // straggler
  switch (state_) {
    case State::kHalfOpen:
      if (ticket != probe_ticket_) return;
      // The probe timed out too: back to open for another cooldown.
      OpenLocked();
      return;
    case State::kClosed:
      PushOutcomeLocked(true);
      MaybeTripLocked();
      return;
    case State::kOpen:
      return;
  }
}

void CircuitBreaker::RecordAbandoned(Ticket ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ticket == 0 || ticket < min_valid_ticket_) return;  // straggler
  // An abandoned probe proved nothing either way; free the probe slot
  // so the next request can try instead of wedging half-open forever.
  if (state_ == State::kHalfOpen && ticket == probe_ticket_) {
    probe_ticket_ = 0;
  }
}

void CircuitBreaker::PushOutcomeLocked(bool timeout) {
  outcomes_.push_back(timeout);
  if (timeout) ++window_timeouts_;
  if (static_cast<int>(outcomes_.size()) > options_.window) {
    if (outcomes_.front()) --window_timeouts_;
    outcomes_.pop_front();
  }
}

void CircuitBreaker::MaybeTripLocked() {
  const int n = static_cast<int>(outcomes_.size());
  if (n < options_.min_samples) return;
  if (window_timeouts_ < options_.trip_ratio * n) return;
  OpenLocked();
}

void CircuitBreaker::OpenLocked() {
  state_ = State::kOpen;
  opened_at_ = Clock::now();
  probe_ticket_ = 0;
  outcomes_.clear();
  window_timeouts_ = 0;
  min_valid_ticket_ = next_ticket_ + 1;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

const char* CircuitBreaker::state_name() const {
  switch (state()) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "?";
}

int CircuitBreaker::cooldown_remaining_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kOpen) return 0;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - opened_at_);
  const auto remaining = options_.cooldown_ms - elapsed.count();
  return remaining > 0 ? static_cast<int>(remaining) : 0;
}

}  // namespace rt
