#include "serve/circuit_breaker.h"

namespace rt {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {
  if (options_.window < 1) options_.window = 1;
  if (options_.min_samples < 1) options_.min_samples = 1;
  if (options_.min_samples > options_.window) {
    options_.min_samples = options_.window;
  }
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Clock::now() - opened_at_ <
          std::chrono::milliseconds(options_.cooldown_ms)) {
        return false;
      }
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kHalfOpen:
      // The probe came back healthy: close and start fresh.
      state_ = State::kClosed;
      probe_in_flight_ = false;
      outcomes_.clear();
      window_timeouts_ = 0;
      return;
    case State::kClosed:
      outcomes_.push_back(false);
      if (static_cast<int>(outcomes_.size()) > options_.window) {
        if (outcomes_.front()) --window_timeouts_;
        outcomes_.pop_front();
      }
      return;
    case State::kOpen:
      return;  // straggler from before the trip
  }
}

void CircuitBreaker::RecordTimeout() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kHalfOpen:
      // The probe timed out too: back to open for another cooldown.
      state_ = State::kOpen;
      opened_at_ = Clock::now();
      probe_in_flight_ = false;
      return;
    case State::kClosed:
      outcomes_.push_back(true);
      ++window_timeouts_;
      if (static_cast<int>(outcomes_.size()) > options_.window) {
        if (outcomes_.front()) --window_timeouts_;
        outcomes_.pop_front();
      }
      MaybeTripLocked();
      return;
    case State::kOpen:
      return;  // straggler from before the trip
  }
}

void CircuitBreaker::MaybeTripLocked() {
  const int n = static_cast<int>(outcomes_.size());
  if (n < options_.min_samples) return;
  if (window_timeouts_ < options_.trip_ratio * n) return;
  state_ = State::kOpen;
  opened_at_ = Clock::now();
  outcomes_.clear();
  window_timeouts_ = 0;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

const char* CircuitBreaker::state_name() const {
  switch (state()) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "?";
}

}  // namespace rt
