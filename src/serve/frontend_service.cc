#include "serve/frontend_service.h"

namespace rt {
namespace {

constexpr const char kIndexHtml[] = R"html(<!doctype html>
<html>
<head><meta charset="utf-8"><title>Ratatouille - Novel Recipe Generation</title></head>
<body>
<h1>Ratatouille</h1>
<p>Pick ingredients, generate a novel recipe.</p>
<form id="gen">
  <input id="ingredients" placeholder="tomato, onion, garlic">
  <button type="submit">Get Recipe!</button>
</form>
<pre id="result"></pre>
<script>
document.getElementById('gen').addEventListener('submit', async (e) => {
  e.preventDefault();
  const ingredients = document.getElementById('ingredients').value
      .split(',').map(s => s.trim()).filter(Boolean);
  const resp = await fetch('/api/generate', {
    method: 'POST',
    headers: {'Content-Type': 'application/json'},
    body: JSON.stringify({ingredients})
  });
  document.getElementById('result').textContent =
      JSON.stringify(await resp.json(), null, 2);
});
</script>
</body>
</html>
)html";

}  // namespace

FrontendService::FrontendService(int backend_port)
    : backend_port_(backend_port) {
  server_.Route("GET", "/", [](const HttpRequest&) {
    return HttpResponse::Html(kIndexHtml);
  });
  server_.Route("GET", "/healthz", [](const HttpRequest&) {
    return HttpResponse::JsonBody("{\"status\":\"ok\"}");
  });
  // Reverse proxy: the frontend never imports model code; it forwards
  // /api/* to the backend tier over HTTP.
  server_.RoutePrefix("POST", "/api/", [this](const HttpRequest& req) {
    auto resp = HttpPost(backend_port_, req.path, req.body);
    if (!resp.ok()) {
      return HttpResponse::JsonBody(
          "{\"error\":\"backend unreachable\"}", 502);
    }
    return HttpResponse::JsonBody(resp->body, resp->status);
  });
}

Status FrontendService::Start(int port) { return server_.Start(port); }

void FrontendService::Stop() { server_.Stop(); }

const char* FrontendService::IndexHtml() { return kIndexHtml; }

}  // namespace rt
