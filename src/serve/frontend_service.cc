#include "serve/frontend_service.h"

#include <algorithm>
#include <thread>

namespace rt {
namespace {

constexpr const char kIndexHtml[] = R"html(<!doctype html>
<html>
<head><meta charset="utf-8"><title>Ratatouille - Novel Recipe Generation</title></head>
<body>
<h1>Ratatouille</h1>
<p>Pick ingredients, generate a novel recipe.</p>
<form id="gen">
  <input id="ingredients" placeholder="tomato, onion, garlic">
  <button type="submit">Get Recipe!</button>
</form>
<pre id="result"></pre>
<script>
document.getElementById('gen').addEventListener('submit', async (e) => {
  e.preventDefault();
  const ingredients = document.getElementById('ingredients').value
      .split(',').map(s => s.trim()).filter(Boolean);
  const resp = await fetch('/v1/generate', {
    method: 'POST',
    headers: {'Content-Type': 'application/json'},
    body: JSON.stringify({ingredients})
  });
  document.getElementById('result').textContent =
      JSON.stringify(await resp.json(), null, 2);
});
</script>
</body>
</html>
)html";

/// An SSE relay occupies its worker for the whole stream, so sizing
/// the pool to hardware_concurrency() (1 on small containers) would
/// let a single streaming client starve the page and every other
/// proxied call. These workers are I/O-bound relays, not compute —
/// floor the pool at 4.
HttpServerOptions FrontendServerOptions() {
  HttpServerOptions options;
  options.num_workers = static_cast<int>(
      std::max(4u, std::thread::hardware_concurrency()));
  return options;
}

}  // namespace

FrontendService::FrontendService(int backend_port)
    : backend_port_(backend_port), server_(FrontendServerOptions()) {
  const auto healthz = [](const HttpRequest&) {
    return HttpResponse::JsonBody(HealthzJson().Dump());
  };
  (void)server_.Route("GET", "/", [](const HttpRequest&) {
    return HttpResponse::Html(kIndexHtml);
  });
  (void)server_.Route("GET", "/v1/healthz", healthz);
  (void)server_.Route("GET", "/healthz",
                      [healthz](const HttpRequest& req) {
                        HttpResponse resp = healthz(req);
                        resp.headers["Deprecation"] = "true";
                        return resp;
                      });
  // Reverse proxy: the frontend never imports model code; it forwards
  // /v1/* (and the deprecated /api/*) to the backend tier over HTTP.
  // Requests asking for `"stream": true` are relayed incrementally —
  // each SSE event re-chunks to the browser the moment the backend
  // writes it — everything else buffers as before.
  const auto proxy = [this](const HttpRequest& req) {
    bool wants_stream = false;
    if (auto doc = Json::Parse(req.body); doc.ok() && doc->is_object()) {
      const Json& stream = doc->Get("stream");
      wants_stream = stream.is_bool() && stream.AsBool();
    }
    // Forward the scheduling-class header across the hop; the body's
    // own `priority` param still wins at the backend, this only keeps
    // header-only clients working through the proxy tier.
    HttpCallOptions call_options;
    if (const auto it = req.headers.find("x-rt-priority");
        it != req.headers.end()) {
      call_options.headers["x-rt-priority"] = it->second;
    }
    if (wants_stream) {
      auto call = std::make_shared<StreamingHttpCall>();
      if (Status opened = call->Open(backend_port_, req.path, req.body,
                                     "application/json", call_options);
          !opened.ok()) {
        return JsonError(502, "backend_unreachable",
                         "backend did not answer: " + opened.message(),
                         req.request_id);
      }
      if (!call->chunked()) {
        // Pre-stream failure (validation, breaker, shed): a plain JSON
        // error, forwarded buffered like any unary response.
        auto body = call->ReadAll();
        if (!body.ok()) {
          return JsonError(502, "backend_unreachable",
                           "backend hung up mid-response: " +
                               body.status().message(),
                           req.request_id);
        }
        return HttpResponse::JsonBody(*std::move(body), call->status());
      }
      HttpResponse out;
      out.status = call->status();
      const auto ct = call->headers().find("content-type");
      out.content_type = ct != call->headers().end()
                             ? ct->second
                             : "text/event-stream";
      // Dropping `call` at the end of the relay closes the backend
      // connection, which cancels the upstream decode if the browser
      // walked away first.
      const std::string request_id = req.request_id;
      out.stream = [this, call, request_id](ResponseWriter& writer) {
        const Status pumped =
            call->Pump([&writer](const std::string& data) {
              return writer.Write(data);
            });
        if (pumped.ok() || writer.dead()) {
          // Backend finished, or the browser left first — either way
          // the relay ran its course.
          streams_relayed_.fetch_add(1);
          return;
        }
        // The backend died mid-stream. Without a terminal frame the
        // browser would see the SSE stream simply stop and could not
        // tell a finished recipe from a truncated one; say so in-band.
        streams_aborted_.fetch_add(1);
        Json error{Json::Object{}};
        error.Set("code", "backend_lost");
        error.Set("message", "backend connection lost mid-stream: " +
                                 pumped.message());
        error.Set("request_id", request_id);
        error.Set("finish_reason", "backend_lost");
        writer.Write("event: error\ndata: " + error.Dump() + "\n\n");
      };
      return out;
    }
    auto resp = HttpPost(backend_port_, req.path, req.body,
                         "application/json", call_options);
    if (!resp.ok()) {
      return JsonError(502, "backend_unreachable",
                       "backend did not answer: " +
                           resp.status().message(),
                       req.request_id);
    }
    HttpResponse out = HttpResponse::JsonBody(resp->body, resp->status);
    const auto deprecated = resp->headers.find("deprecation");
    if (deprecated != resp->headers.end()) {
      out.headers["Deprecation"] = deprecated->second;
    }
    return out;
  };
  (void)server_.RoutePrefix("POST", "/v1/", proxy);
  (void)server_.RoutePrefix("POST", "/api/", proxy);
}

Status FrontendService::Start(int port) { return server_.Start(port); }

void FrontendService::Stop() { server_.Stop(); }

const char* FrontendService::IndexHtml() { return kIndexHtml; }

}  // namespace rt
