#include "serve/frontend_service.h"

namespace rt {
namespace {

constexpr const char kIndexHtml[] = R"html(<!doctype html>
<html>
<head><meta charset="utf-8"><title>Ratatouille - Novel Recipe Generation</title></head>
<body>
<h1>Ratatouille</h1>
<p>Pick ingredients, generate a novel recipe.</p>
<form id="gen">
  <input id="ingredients" placeholder="tomato, onion, garlic">
  <button type="submit">Get Recipe!</button>
</form>
<pre id="result"></pre>
<script>
document.getElementById('gen').addEventListener('submit', async (e) => {
  e.preventDefault();
  const ingredients = document.getElementById('ingredients').value
      .split(',').map(s => s.trim()).filter(Boolean);
  const resp = await fetch('/v1/generate', {
    method: 'POST',
    headers: {'Content-Type': 'application/json'},
    body: JSON.stringify({ingredients})
  });
  document.getElementById('result').textContent =
      JSON.stringify(await resp.json(), null, 2);
});
</script>
</body>
</html>
)html";

}  // namespace

FrontendService::FrontendService(int backend_port)
    : backend_port_(backend_port) {
  const auto healthz = [](const HttpRequest&) {
    return HttpResponse::JsonBody(HealthzJson().Dump());
  };
  (void)server_.Route("GET", "/", [](const HttpRequest&) {
    return HttpResponse::Html(kIndexHtml);
  });
  (void)server_.Route("GET", "/v1/healthz", healthz);
  (void)server_.Route("GET", "/healthz",
                      [healthz](const HttpRequest& req) {
                        HttpResponse resp = healthz(req);
                        resp.headers["Deprecation"] = "true";
                        return resp;
                      });
  // Reverse proxy: the frontend never imports model code; it forwards
  // /v1/* (and the deprecated /api/*) to the backend tier over HTTP.
  const auto proxy = [this](const HttpRequest& req) {
    auto resp = HttpPost(backend_port_, req.path, req.body);
    if (!resp.ok()) {
      return JsonError(502, "backend_unreachable",
                       "backend did not answer: " +
                           resp.status().message(),
                       req.request_id);
    }
    HttpResponse out = HttpResponse::JsonBody(resp->body, resp->status);
    const auto deprecated = resp->headers.find("deprecation");
    if (deprecated != resp->headers.end()) {
      out.headers["Deprecation"] = deprecated->second;
    }
    return out;
  };
  (void)server_.RoutePrefix("POST", "/v1/", proxy);
  (void)server_.RoutePrefix("POST", "/api/", proxy);
}

Status FrontendService::Start(int port) { return server_.Start(port); }

void FrontendService::Stop() { server_.Stop(); }

const char* FrontendService::IndexHtml() { return kIndexHtml; }

}  // namespace rt
