#ifndef RATATOUILLE_SERVE_CHAOS_H_
#define RATATOUILLE_SERVE_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/replica_supervisor.h"
#include "util/json.h"
#include "util/rng.h"

namespace rt {

/// Tuning for the seeded chaos driver.
struct ChaosOptions {
  /// 0 disables chaos entirely. Any other value seeds the fault
  /// schedule deterministically: same seed + same fleet = same faults
  /// in the same order.
  uint64_t seed = 0;
  /// How often one fault is armed somewhere in the fleet.
  int interval_ms = 400;
  /// Per-arm HTTP budget against the replica's fault-admin endpoint.
  int admin_timeout_ms = 1000;
};

/// Seeded chaos mode: a background thread that walks a deterministic
/// schedule of fault injections across a live fleet. Each tick picks a
/// healthy replica and arms one fault point on it over POST
/// /v1/admin/fault (replicas must run with fault admin enabled). The
/// fault table spans request-level faults (generation failure/latency,
/// slow socket I/O) and process-level ones (replica.exit — the process
/// _Exit(23)s at next admission; replica.hang — healthz wedges;
/// replica.slow-accept) so supervision, retry, and failover all get
/// exercised. The soak gate asserts the client saw nothing worse than
/// a 503 while this runs.
class ChaosDriver {
 public:
  ChaosDriver(ReplicaFleet* fleet, ChaosOptions options);
  ~ChaosDriver();

  ChaosDriver(const ChaosDriver&) = delete;
  ChaosDriver& operator=(const ChaosDriver&) = delete;

  /// No-op when options.seed == 0.
  void Start();
  void Stop();

  /// Faults armed so far, and per-point counts:
  ///   {"enabled":true,"seed":7,"armed_total":12,
  ///    "armed":{"replica.exit":2,...},"arm_failures":0}
  Json StatsJson() const;

 private:
  void Loop();
  /// One tick: pick a healthy replica and a fault, arm it remotely.
  void ArmOne();

  ReplicaFleet* fleet_;
  ChaosOptions options_;
  Rng rng_;
  std::atomic<bool> running_{false};
  std::thread thread_;

  mutable std::mutex stats_mutex_;
  std::vector<std::pair<std::string, long long>> armed_by_point_;
  long long armed_total_ = 0;
  long long arm_failures_ = 0;
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_CHAOS_H_
