#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/logging.h"
#include "util/obs.h"

namespace rt {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::string SseEvent(const char* type, const Json& data) {
  return std::string("event: ") + type + "\ndata: " + data.Dump() +
         "\n\n";
}

/// Rewrites the forwarded body's timeout_ms to the slice this attempt
/// actually has, so the replica's own deadline matches the router's
/// per-try budget instead of the client's whole-request ask. Non-object
/// bodies pass through untouched.
std::string ForwardBody(const std::string& body, int timeout_ms) {
  auto doc = Json::Parse(body);
  if (!doc.ok() || !doc->is_object()) return body;
  doc->Set("timeout_ms", timeout_ms);
  return doc->Dump();
}

std::string ContentTypeOf(const HttpRequest& request) {
  const auto it = request.headers.find("content-type");
  return it != request.headers.end() ? it->second : "application/json";
}

long long MillisUntil(SteadyClock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             deadline - SteadyClock::now())
      .count();
}

/// SSE relays park a worker for their whole duration, same as the
/// frontend tier — floor the pool so streams cannot starve probes of
/// the router's own endpoints.
HttpServerOptions ResolveHttpOptions(HttpServerOptions options,
                                     int default_timeout_ms) {
  if (options.num_workers <= 0) {
    options.num_workers = static_cast<int>(
        std::max(4u, std::thread::hardware_concurrency()));
  }
  if (options.queue_deadline_ms == 0) {
    options.queue_deadline_ms = default_timeout_ms;
  }
  return options;
}

}  // namespace

Router::Router(ReplicaFleet* fleet, RouterOptions options)
    : fleet_(fleet),
      options_(options),
      server_(ResolveHttpOptions(options.http, options.default_timeout_ms)),
      jitter_(options.jitter_seed) {
  slots_.reserve(static_cast<size_t>(fleet_->size()));
  for (int i = 0; i < fleet_->size(); ++i) {
    auto slot = std::make_unique<ReplicaSlot>();
    slot->breaker = std::make_unique<CircuitBreaker>(options_.breaker);
    slots_.push_back(std::move(slot));
  }
  (void)server_.Route("GET", "/v1/healthz", [this](const HttpRequest& req) {
    return HandleHealthz(req);
  });
  (void)server_.Route("GET", "/v1/metrics", [this](const HttpRequest& req) {
    return HandleMetrics(req);
  });
  (void)server_.Route("GET", "/v1/trace", [this](const HttpRequest& req) {
    return HandleTrace(req);
  });
  (void)server_.Route("GET", "/v1/models", [this](const HttpRequest& req) {
    return HandleModels(req);
  });
  (void)server_.Route("GET", "/v1/metrics/history",
                      [this](const HttpRequest& req) {
                        return HandleMetricsHistory(req);
                      });
  (void)server_.Route("GET", "/v1/debug/slow",
                      [this](const HttpRequest& req) {
                        return HandleDebugSlow(req);
                      });
  (void)server_.Route("GET", "/v1/debug/postmortem",
                      [this](const HttpRequest& req) {
                        return HandleDebugPostmortem(req);
                      });
  (void)server_.RoutePrefix("POST", "/v1/", [this](const HttpRequest& req) {
    return HandleRoute(req);
  });
  obs::MetricsHistory::Options history;
  history.interval_ms = options_.history_interval_ms;
  history.capacity = options_.history_capacity;
  // The router's snapshot embeds the fleet SLO aggregate, so the
  // history ring records fleet burn rates over time, not just local
  // routing counters.
  history_.Configure(history, [this] { return MetricsJson(); });
}

Router::~Router() { Stop(); }

Status Router::Start(int port) {
  if (options_.tracing) obs::TraceRecorder::Instance().SetEnabled(true);
  Status status = server_.Start(port);
  if (status.ok()) history_.Start();
  return status;
}

void Router::Stop() {
  history_.Stop();
  server_.Stop();
}

int Router::JitterMs(int base) {
  std::lock_guard<std::mutex> lock(jitter_mutex_);
  return static_cast<int>(
      jitter_.NextBelow(static_cast<uint64_t>(base) + 1));
}

int Router::TryTimeoutMs(SteadyClock::time_point deadline,
                         int attempt) const {
  if (options_.per_try_timeout_ms > 0) return options_.per_try_timeout_ms;
  const long long remaining = MillisUntil(deadline);
  const int tries_left = std::max(1, options_.max_tries - attempt);
  const long long slice = remaining / tries_left;
  return static_cast<int>(std::max<long long>(
      slice, options_.min_try_timeout_ms));
}

bool Router::BackoffBeforeRetry(int attempt,
                                SteadyClock::time_point deadline) {
  const long long remaining = MillisUntil(deadline);
  if (remaining <= 0) return false;
  int base = options_.retry_backoff_ms;
  for (int i = 0; i < attempt && base < options_.retry_backoff_max_ms; ++i) {
    base *= 2;
  }
  base = std::min(base, options_.retry_backoff_max_ms);
  const int delay = static_cast<int>(std::min<long long>(
      base + JitterMs(base / 2 + 1), remaining - 1));
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  return true;
}

bool Router::PickReplica(const std::set<int>& exclude,
                         serve::TrafficClass cls, Pick* pick) {
  const std::vector<ReplicaStatus> snapshot = fleet_->Snapshot();
  std::vector<const ReplicaStatus*> healthy;
  for (const ReplicaStatus& status : snapshot) {
    if (status.state != ReplicaState::kHealthy) continue;
    if (status.index < 0 ||
        status.index >= static_cast<int>(slots_.size())) {
      continue;
    }
    healthy.push_back(&status);
  }
  // Least-loaded first; stable so equal loads fall back to index order.
  // Interactive requests count each batch-class in-flight twice (bulk
  // decodes hold sessions longer), so tight-deadline work lands on the
  // replica least busy with batch traffic. Batch requests use the raw
  // count — they can afford to queue anywhere.
  const auto load = [this, cls](int index) {
    const ReplicaSlot& slot = *slots_[static_cast<size_t>(index)];
    int weight = slot.in_flight.load();
    if (cls == serve::TrafficClass::kInteractive) {
      weight += slot.batch_in_flight.load();
    }
    return weight;
  };
  std::stable_sort(healthy.begin(), healthy.end(),
                   [&load](const ReplicaStatus* a, const ReplicaStatus* b) {
                     return load(a->index) < load(b->index);
                   });
  // Pass 0 prefers replicas this request has not burned yet; pass 1
  // lets a retry land on an already-tried (still healthy, still
  // admitted) replica rather than fail outright.
  for (int pass = 0; pass < 2; ++pass) {
    for (const ReplicaStatus* status : healthy) {
      const bool excluded = exclude.count(status->index) > 0;
      if ((pass == 0) == excluded) continue;
      ReplicaSlot& slot = *slots_[static_cast<size_t>(status->index)];
      const CircuitBreaker::Ticket ticket = slot.breaker->Allow();
      if (ticket == 0) continue;
      pick->index = status->index;
      pick->port = status->port;
      pick->ticket = ticket;
      return true;
    }
  }
  return false;
}

HttpResponse Router::HandleRoute(const HttpRequest& request) {
  // Resolve the whole-request budget exactly like the backend: client
  // ask capped at the maximum, else the default; anchored at queue
  // admission so time spent waiting for a worker counts against it.
  int budget_ms = options_.default_timeout_ms;
  bool wants_stream = false;
  // Traffic class rides the body's `priority` param (header fallback:
  // x-rt-priority) into the pick and onto every forwarded attempt. The
  // router stays lenient about unknown values — the body is forwarded
  // verbatim, so the backend's own validation answers bad_priority.
  serve::TrafficClass cls = serve::TrafficClass::kInteractive;
  if (const auto it = request.headers.find("x-rt-priority");
      it != request.headers.end()) {
    (void)serve::ParseTrafficClass(it->second, &cls);
  }
  if (auto doc = Json::Parse(request.body); doc.ok() && doc->is_object()) {
    if (const Json& t = doc->Get("timeout_ms");
        t.is_number() && t.AsNumber() > 0) {
      budget_ms = std::min(static_cast<int>(t.AsNumber()),
                           options_.max_timeout_ms);
    }
    const Json& stream = doc->Get("stream");
    wants_stream = stream.is_bool() && stream.AsBool();
    if (const Json& priority = doc->Get("priority");
        priority.is_string()) {
      (void)serve::ParseTrafficClass(priority.AsString(), &cls);
    }
  }
  const auto admitted =
      request.admitted_at == SteadyClock::time_point{}
          ? SteadyClock::now()
          : request.admitted_at;
  const auto deadline = admitted + std::chrono::milliseconds(budget_ms);
  return wants_stream ? RouteStream(request, deadline, cls)
                      : RouteBuffered(request, deadline, cls);
}

HttpResponse Router::RouteBuffered(const HttpRequest& request,
                                   SteadyClock::time_point deadline,
                                   serve::TrafficClass cls) {
  std::set<int> tried;
  std::string last_transport;
  bool have_reply = false;
  int reply_status = 0;
  std::string reply_body;
  const bool is_batch = cls == serve::TrafficClass::kBatch;
  for (int attempt = 0; attempt < options_.max_tries; ++attempt) {
    if (MillisUntil(deadline) <= 0) break;
    Pick pick;
    if (!PickReplica(tried, cls, &pick)) {
      route_no_replica_.fetch_add(1);
      HttpResponse resp =
          JsonError(503, "no_healthy_replica",
                    "no replica can accept this request right now",
                    request.request_id);
      resp.headers["Retry-After"] = "1";
      return resp;
    }
    tried.insert(pick.index);
    ReplicaSlot& slot = *slots_[static_cast<size_t>(pick.index)];
    CircuitBreaker::Outcome outcome(*slot.breaker, pick.ticket);
    const int try_timeout = TryTimeoutMs(deadline, attempt);
    HttpCallOptions call;
    call.timeout_ms = try_timeout;
    call.headers["x-rt-request-id"] = request.request_id;
    call.headers["x-rt-trace-id"] = std::to_string(request.trace_id);
    call.headers["x-rt-priority"] = serve::TrafficClassName(cls);
    slot.in_flight.fetch_add(1);
    if (is_batch) slot.batch_in_flight.fetch_add(1);
    slot.dispatched.fetch_add(1);
    const auto try_start = obs::Now();
    auto resp = HttpPost(pick.port, request.path,
                         ForwardBody(request.body, try_timeout),
                         ContentTypeOf(request), call);
    slot.in_flight.fetch_sub(1);
    if (is_batch) slot.batch_in_flight.fetch_sub(1);
    obs::RecordSpanSince(obs::Stage::kRouteTry, request.trace_id,
                         try_start, "replica", pick.index);
    if (!resp.ok()) {
      // Transport failure: the replica is gone or wedged. Blame it,
      // tell the supervisor, try another.
      outcome.Timeout();
      slot.failures.fetch_add(1);
      fleet_->ReportFailure(pick.index);
      route_retries_.fetch_add(1);
      last_transport = resp.status().message();
      RT_LOG(Warning) << "route attempt " << attempt << " replica "
                      << pick.index << " transport error: "
                      << last_transport
                      << " request_id=" << request.request_id;
      if (!BackoffBeforeRetry(attempt, deadline)) break;
      continue;
    }
    const int status = resp->status;
    if (status == 500 || status == 502) {
      // The replica answered but generation is broken there; counts
      // toward its breaker and retries elsewhere.
      outcome.Timeout();
      slot.failures.fetch_add(1);
      route_retries_.fetch_add(1);
      have_reply = true;
      reply_status = status;
      reply_body = resp->body;
      if (!BackoffBeforeRetry(attempt, deadline)) break;
      continue;
    }
    if (status == 503) {
      // Overloaded or draining — a capacity signal, not a generation
      // health signal: the Outcome guard reports the ticket abandoned.
      route_retries_.fetch_add(1);
      have_reply = true;
      reply_status = status;
      reply_body = resp->body;
      if (!BackoffBeforeRetry(attempt, deadline)) break;
      continue;
    }
    if (status == 504) {
      // The budget died inside the replica; retrying cannot help.
      outcome.Timeout();
    } else {
      outcome.Success();
    }
    route_ok_.fetch_add(1);
    HttpResponse out = HttpResponse::JsonBody(resp->body, status);
    const auto ct = resp->headers.find("content-type");
    if (ct != resp->headers.end()) out.content_type = ct->second;
    for (const char* header : {"retry-after", "deprecation"}) {
      const auto it = resp->headers.find(header);
      if (it != resp->headers.end()) out.headers[header] = it->second;
    }
    return out;
  }
  route_exhausted_.fetch_add(1);
  if (MillisUntil(deadline) <= 0) {
    return JsonError(504, "deadline_exceeded",
                     "request budget exhausted while routing",
                     request.request_id);
  }
  if (have_reply) {
    // Every try got the same class of refusal; relay the last one
    // rather than invent a new error.
    return HttpResponse::JsonBody(reply_body, reply_status);
  }
  return JsonError(502, "upstream_unreachable",
                   "no replica completed the request: " + last_transport,
                   request.request_id);
}

HttpResponse Router::RouteStream(const HttpRequest& request,
                                 SteadyClock::time_point deadline,
                                 serve::TrafficClass cls) {
  auto tried = std::make_shared<std::set<int>>();
  const bool is_batch = cls == serve::TrafficClass::kBatch;
  for (int attempt = 0; attempt < options_.max_tries; ++attempt) {
    if (MillisUntil(deadline) <= 0) break;
    Pick pick;
    if (!PickReplica(*tried, cls, &pick)) {
      route_no_replica_.fetch_add(1);
      HttpResponse resp =
          JsonError(503, "no_healthy_replica",
                    "no replica can accept this request right now",
                    request.request_id);
      resp.headers["Retry-After"] = "1";
      return resp;
    }
    tried->insert(pick.index);
    ReplicaSlot& slot = *slots_[static_cast<size_t>(pick.index)];
    // The head exchange gets a per-try slice; the generation itself
    // gets the whole remaining budget, enforced by the replica's own
    // deadline plus our stall timeout.
    const int head_timeout = TryTimeoutMs(deadline, attempt);
    const int remaining = static_cast<int>(
        std::max<long long>(MillisUntil(deadline), 1));
    HttpCallOptions call_options;
    call_options.timeout_ms = head_timeout;
    call_options.stall_timeout_ms = options_.stream_stall_timeout_ms;
    call_options.headers["x-rt-request-id"] = request.request_id;
    call_options.headers["x-rt-trace-id"] =
        std::to_string(request.trace_id);
    call_options.headers["x-rt-priority"] = serve::TrafficClassName(cls);
    auto call = std::make_shared<StreamingHttpCall>();
    slot.in_flight.fetch_add(1);
    if (is_batch) slot.batch_in_flight.fetch_add(1);
    slot.dispatched.fetch_add(1);
    const auto try_start = obs::Now();
    const Status opened =
        call->Open(pick.port, request.path,
                   ForwardBody(request.body, remaining),
                   ContentTypeOf(request), call_options);
    obs::RecordSpanSince(obs::Stage::kRouteTry, request.trace_id,
                         try_start, "replica", pick.index);
    if (!opened.ok()) {
      slot.in_flight.fetch_sub(1);
      if (is_batch) slot.batch_in_flight.fetch_sub(1);
      slot.breaker->RecordTimeout(pick.ticket);
      slot.failures.fetch_add(1);
      fleet_->ReportFailure(pick.index);
      route_retries_.fetch_add(1);
      streams_failed_over_.fetch_add(1);
      RT_LOG(Warning) << "stream open failed replica " << pick.index
                      << ": " << opened.message()
                      << " request_id=" << request.request_id;
      if (!BackoffBeforeRetry(attempt, deadline)) break;
      continue;
    }
    if (!call->chunked()) {
      // A buffered reply instead of a stream: pre-stream validation,
      // shed, or breaker fast-fail. Same retry rules as unary.
      auto body = call->ReadAll();
      slot.in_flight.fetch_sub(1);
      if (is_batch) slot.batch_in_flight.fetch_sub(1);
      const int status = call->status();
      if (!body.ok()) {
        slot.breaker->RecordTimeout(pick.ticket);
        slot.failures.fetch_add(1);
        fleet_->ReportFailure(pick.index);
        route_retries_.fetch_add(1);
        if (!BackoffBeforeRetry(attempt, deadline)) break;
        continue;
      }
      if (status == 500 || status == 502 || status == 503) {
        if (status == 503) {
          slot.breaker->RecordAbandoned(pick.ticket);
        } else {
          slot.breaker->RecordTimeout(pick.ticket);
          slot.failures.fetch_add(1);
        }
        route_retries_.fetch_add(1);
        if (!BackoffBeforeRetry(attempt, deadline)) break;
        continue;
      }
      if (status == 504) {
        slot.breaker->RecordTimeout(pick.ticket);
      } else {
        slot.breaker->RecordSuccess(pick.ticket);
      }
      route_ok_.fetch_add(1);
      return HttpResponse::JsonBody(*std::move(body), status);
    }
    // Chunked head arrived: commit to streaming. The call, the ticket,
    // and the in-flight count move into the relay callback, which runs
    // on the worker thread after our headers are sent — and always
    // runs, so nothing leaks when the client is already gone.
    route_ok_.fetch_add(1);
    HttpResponse out;
    out.status = call->status();
    const auto ct = call->headers().find("content-type");
    out.content_type = ct != call->headers().end()
                           ? ct->second
                           : "text/event-stream";
    const int index = pick.index;
    const CircuitBreaker::Ticket ticket = pick.ticket;
    const std::string request_id = request.request_id;
    const uint64_t trace_id = request.trace_id;
    const std::string path = request.path;
    const std::string body = request.body;
    const std::string content_type = ContentTypeOf(request);
    out.stream = [this, call, index, ticket, tried, request_id, trace_id,
                  path, body, content_type, deadline, cls,
                  is_batch](ResponseWriter& writer) mutable {
      int current = index;
      CircuitBreaker::Ticket current_ticket = ticket;
      auto current_call = call;
      for (;;) {
        const Status pumped =
            current_call->Pump([&writer](const std::string& data) {
              return writer.Write(data);
            });
        ReplicaSlot& current_slot =
            *slots_[static_cast<size_t>(current)];
        current_slot.in_flight.fetch_sub(1);
        if (is_batch) current_slot.batch_in_flight.fetch_sub(1);
        if (pumped.ok()) {
          if (writer.dead()) {
            // The client walked away; the upstream told us nothing
            // about its own health.
            current_slot.breaker->RecordAbandoned(current_ticket);
          } else {
            current_slot.breaker->RecordSuccess(current_ticket);
            streams_relayed_.fetch_add(1);
          }
          return;
        }
        // The upstream died or stalled mid-relay.
        current_slot.breaker->RecordTimeout(current_ticket);
        current_slot.failures.fetch_add(1);
        fleet_->ReportFailure(current);
        if (current_call->bytes_delivered() == 0 && !writer.dead() &&
            MillisUntil(deadline) > 0 &&
            static_cast<int>(tried->size()) < options_.max_tries) {
          // Zero bytes have reached the client: failover is invisible.
          Pick next;
          if (PickReplica(*tried, cls, &next)) {
            tried->insert(next.index);
            ReplicaSlot& next_slot =
                *slots_[static_cast<size_t>(next.index)];
            HttpCallOptions retry_options;
            retry_options.timeout_ms = TryTimeoutMs(
                deadline, static_cast<int>(tried->size()) - 1);
            retry_options.stall_timeout_ms =
                options_.stream_stall_timeout_ms;
            retry_options.headers["x-rt-request-id"] = request_id;
            retry_options.headers["x-rt-trace-id"] =
                std::to_string(trace_id);
            retry_options.headers["x-rt-priority"] =
                serve::TrafficClassName(cls);
            auto next_call = std::make_shared<StreamingHttpCall>();
            next_slot.in_flight.fetch_add(1);
            if (is_batch) next_slot.batch_in_flight.fetch_add(1);
            next_slot.dispatched.fetch_add(1);
            const int remaining_ms = static_cast<int>(
                std::max<long long>(MillisUntil(deadline), 1));
            const Status reopened = next_call->Open(
                next.port, path, ForwardBody(body, remaining_ms),
                content_type, retry_options);
            if (reopened.ok() && next_call->chunked()) {
              streams_failed_over_.fetch_add(1);
              route_retries_.fetch_add(1);
              current = next.index;
              current_ticket = next.ticket;
              current_call = next_call;
              continue;
            }
            next_slot.in_flight.fetch_sub(1);
            if (is_batch) next_slot.batch_in_flight.fetch_sub(1);
            next_slot.breaker->RecordTimeout(next.ticket);
            next_slot.failures.fetch_add(1);
            fleet_->ReportFailure(next.index);
          }
        }
        // Terminal: tell the client the truth in-band.
        streams_aborted_.fetch_add(1);
        Json error{Json::Object{}};
        error.Set("code", "backend_lost");
        error.Set("message", "backend connection lost mid-stream: " +
                                 pumped.message());
        error.Set("request_id", request_id);
        error.Set("finish_reason", "backend_lost");
        writer.Write(SseEvent("error", error));
        return;
      }
    };
    return out;
  }
  route_exhausted_.fetch_add(1);
  if (MillisUntil(deadline) <= 0) {
    return JsonError(504, "deadline_exceeded",
                     "request budget exhausted while routing",
                     request.request_id);
  }
  return JsonError(502, "upstream_unreachable",
                   "no replica could start the stream",
                   request.request_id);
}

HttpResponse Router::HandleHealthz(const HttpRequest&) const {
  int healthy = 0, starting = 0, draining = 0, restarting = 0;
  const auto snapshot = fleet_->Snapshot();
  for (const ReplicaStatus& status : snapshot) {
    switch (status.state) {
      case ReplicaState::kHealthy:
        ++healthy;
        break;
      case ReplicaState::kStarting:
        ++starting;
        break;
      case ReplicaState::kDraining:
        ++draining;
        break;
      case ReplicaState::kRestarting:
        ++restarting;
        break;
    }
  }
  Json body = HealthzJson();
  std::string status = healthy == static_cast<int>(snapshot.size())
                           ? "ok"
                           : healthy > 0 ? "degraded" : "unavailable";
  if (status == "ok") {
    // A fleet that answers probes but burns its error budget is
    // degraded, not ok — same contract as the backend's own healthz
    // (still HTTP 200: restarts don't fix an SLO burn).
    Json aggregate{Json::Object{}};
    obs::AggregateSloMetrics(FetchReplicaMetrics(), &aggregate);
    if (obs::FleetFastBurn(aggregate)) {
      status = "degraded";
      body.Set("slo_fast_burn", true);
    }
  }
  body.Set("status", std::move(status));
  Json replicas{Json::Object{}};
  replicas.Set("total", static_cast<double>(snapshot.size()));
  replicas.Set("healthy", healthy);
  replicas.Set("starting", starting);
  replicas.Set("draining", draining);
  replicas.Set("restarting", restarting);
  body.Set("replicas", std::move(replicas));
  HttpResponse resp = HttpResponse::JsonBody(body.Dump(),
                                             healthy > 0 ? 200 : 503);
  if (healthy == 0) resp.headers["Retry-After"] = "1";
  return resp;
}

Json Router::MetricsJson() const {
  Json out{Json::Object{}};
  out.Set("uptime_s", obs::UptimeSeconds());
  out.Set("requests_total",
          static_cast<double>(server_.requests_served()));
  out.Set("requests_rejected",
          static_cast<double>(server_.requests_rejected()));
  out.Set("requests_shed", static_cast<double>(server_.requests_shed()));
  out.Set("route_ok", static_cast<double>(route_ok_.load()));
  out.Set("route_retries", static_cast<double>(route_retries_.load()));
  out.Set("route_no_replica",
          static_cast<double>(route_no_replica_.load()));
  out.Set("route_exhausted",
          static_cast<double>(route_exhausted_.load()));
  out.Set("streams_relayed",
          static_cast<double>(streams_relayed_.load()));
  out.Set("streams_failed_over",
          static_cast<double>(streams_failed_over_.load()));
  out.Set("streams_aborted",
          static_cast<double>(streams_aborted_.load()));
  const auto snapshot = fleet_->Snapshot();
  int healthy = 0, starting = 0, draining = 0, restarting = 0;
  long long restarts_total = 0;
  Json detail{Json::Array{}};
  for (const ReplicaStatus& status : snapshot) {
    switch (status.state) {
      case ReplicaState::kHealthy:
        ++healthy;
        break;
      case ReplicaState::kStarting:
        ++starting;
        break;
      case ReplicaState::kDraining:
        ++draining;
        break;
      case ReplicaState::kRestarting:
        ++restarting;
        break;
    }
    restarts_total += status.restarts;
    Json entry{Json::Object{}};
    entry.Set("index", status.index);
    entry.Set("port", status.port);
    entry.Set("pid", static_cast<double>(status.pid));
    entry.Set("state", std::string(ReplicaStateName(status.state)));
    entry.Set("restarts", static_cast<double>(status.restarts));
    entry.Set("probe_failures",
              static_cast<double>(status.probe_failures));
    if (status.index >= 0 &&
        status.index < static_cast<int>(slots_.size())) {
      const ReplicaSlot& slot =
          *slots_[static_cast<size_t>(status.index)];
      entry.Set("in_flight", slot.in_flight.load());
      entry.Set("batch_in_flight", slot.batch_in_flight.load());
      entry.Set("dispatched",
                static_cast<double>(slot.dispatched.load()));
      entry.Set("failures", static_cast<double>(slot.failures.load()));
      entry.Set("breaker_state",
                std::string(slot.breaker->state_name()));
    }
    detail.Append(std::move(entry));
  }
  Json replicas{Json::Object{}};
  replicas.Set("total", static_cast<double>(snapshot.size()));
  replicas.Set("healthy", healthy);
  replicas.Set("starting", starting);
  replicas.Set("draining", draining);
  replicas.Set("restarting", restarting);
  out.Set("replicas", std::move(replicas));
  out.Set("replica_restarts_total",
          static_cast<double>(restarts_total));
  out.Set("replica_detail", std::move(detail));
  obs::FillStageMetrics(&out);
  // Fleet-wide view: sum per-replica SLO counts into fleet_slo_* burn
  // rates and fold replica stage_* histograms into this process's own
  // (the router's buckets then cover every hop in the fleet).
  const std::vector<Json> replica_metrics = FetchReplicaMetrics();
  obs::AggregateSloMetrics(replica_metrics, &out);
  for (const Json& metrics : replica_metrics) {
    obs::MergeHistogramFamilies(&out, metrics, "stage_");
  }
  out.Set("replica_postmortems_collected",
          static_cast<double>(fleet_->postmortems_collected()));
  out.Set("history_samples", static_cast<double>(history_.samples()));
  out.Set("history_interval_ms",
          static_cast<double>(history_.interval_ms()));
  return out;
}

std::vector<Json> Router::FetchReplicaMetrics() const {
  std::vector<Json> out;
  for (const ReplicaStatus& status : fleet_->Snapshot()) {
    if (status.state != ReplicaState::kHealthy) continue;
    HttpCallOptions call;
    call.timeout_ms = 500;
    auto resp = HttpGet(status.port, "/v1/metrics", call);
    if (!resp.ok() || resp->status != 200) continue;
    auto doc = Json::Parse(resp->body);
    if (!doc.ok() || !doc->is_object()) continue;
    out.push_back(*std::move(doc));
  }
  return out;
}

HttpResponse Router::HandleMetricsHistory(
    const HttpRequest& request) const {
  // The router's own ring (fleet aggregate over time); per-replica
  // rings stay one hop away on the replicas themselves.
  return HttpResponse::JsonBody(
      history_.RollupForQuery(request.query).Dump());
}

HttpResponse Router::HandleDebugSlow(const HttpRequest&) const {
  // Same merge idiom as HandleTrace: the router's own archive (empty
  // unless something promotes locally) plus every healthy replica's
  // retained slow traces, one shared Chrome-trace timeline.
  Json own = obs::SlowTraceArchive::Instance().ExportChromeJson();
  Json merged_events{Json::Array{}};
  Json merged_traces{Json::Array{}};
  double promoted_total = 0;
  double evicted_total = 0;
  const auto accumulate = [&](const Json& doc) {
    if (const Json& events = doc.Get("traceEvents");
        events.is_array()) {
      for (const Json& event : events.AsArray()) {
        merged_events.Append(event);
      }
    }
    if (const Json& traces = doc.Get("slow_traces");
        traces.is_array()) {
      for (const Json& trace : traces.AsArray()) {
        merged_traces.Append(trace);
      }
    }
    if (const Json& promoted = doc.Get("promoted_total");
        promoted.is_number()) {
      promoted_total += promoted.AsNumber();
    }
    if (const Json& evicted = doc.Get("evicted_total");
        evicted.is_number()) {
      evicted_total += evicted.AsNumber();
    }
  };
  accumulate(own);
  for (const ReplicaStatus& status : fleet_->Snapshot()) {
    if (status.state != ReplicaState::kHealthy) continue;
    HttpCallOptions call;
    call.timeout_ms = 500;
    auto resp = HttpGet(status.port, "/v1/debug/slow", call);
    if (!resp.ok() || resp->status != 200) continue;
    auto doc = Json::Parse(resp->body);
    if (!doc.ok() || !doc->is_object()) continue;
    accumulate(*doc);
  }
  Json out{Json::Object{}};
  if (const Json& unit = own.Get("displayTimeUnit"); unit.is_string()) {
    out.Set("displayTimeUnit", unit.AsString());
  }
  out.Set("archived",
          static_cast<double>(merged_traces.AsArray().size()));
  out.Set("promoted_total", promoted_total);
  out.Set("evicted_total", evicted_total);
  out.Set("traceEvents", std::move(merged_events));
  out.Set("slow_traces", std::move(merged_traces));
  return HttpResponse::JsonBody(out.Dump());
}

HttpResponse Router::HandleDebugPostmortem(const HttpRequest&) const {
  Json out{Json::Object{}};
  out.Set("collected",
          static_cast<double>(fleet_->postmortems_collected()));
  out.Set("postmortems", fleet_->PostmortemsJson());
  return HttpResponse::JsonBody(out.Dump());
}

HttpResponse Router::HandleMetrics(const HttpRequest& request) const {
  Json out = MetricsJson();
  if (request.query.find("format=prometheus") != std::string::npos) {
    HttpResponse resp;
    resp.status = 200;
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = obs::RenderPrometheus(out);
    return resp;
  }
  return HttpResponse::JsonBody(out.Dump());
}

HttpResponse Router::HandleTrace(const HttpRequest& request) const {
  // One track per process: the router's own spans (route_try per
  // attempt) plus, best effort, every healthy replica's spans. The
  // forwarded trace ids line the hops up on a shared timeline.
  Json merged{Json::Array{}};
  Json own = obs::TraceRecorder::Instance().ExportChromeJson();
  if (const Json& events = own.Get("traceEvents"); events.is_array()) {
    for (const Json& event : events.AsArray()) merged.Append(event);
  }
  for (const ReplicaStatus& status : fleet_->Snapshot()) {
    if (status.state != ReplicaState::kHealthy) continue;
    HttpCallOptions call;
    call.timeout_ms = 500;
    auto resp = HttpGet(status.port, "/v1/trace", call);
    if (!resp.ok() || resp->status != 200) continue;
    auto doc = Json::Parse(resp->body);
    if (!doc.ok() || !doc->is_object()) continue;
    if (const Json& events = doc->Get("traceEvents");
        events.is_array()) {
      for (const Json& event : events.AsArray()) merged.Append(event);
    }
  }
  Json out{Json::Object{}};
  if (const Json& unit = own.Get("displayTimeUnit"); unit.is_string()) {
    out.Set("displayTimeUnit", unit.AsString());
  }
  out.Set("traceEvents", std::move(merged));
  (void)request;
  return HttpResponse::JsonBody(out.Dump());
}

HttpResponse Router::HandleModels(const HttpRequest& request) const {
  for (const ReplicaStatus& status : fleet_->Snapshot()) {
    if (status.state != ReplicaState::kHealthy) continue;
    HttpCallOptions call;
    call.timeout_ms = 1000;
    auto resp = HttpGet(status.port, "/v1/models", call);
    if (!resp.ok()) continue;
    return HttpResponse::JsonBody(resp->body, resp->status);
  }
  HttpResponse resp = JsonError(503, "no_healthy_replica",
                                "no replica answered /v1/models",
                                request.request_id);
  resp.headers["Retry-After"] = "1";
  return resp;
}

}  // namespace rt
