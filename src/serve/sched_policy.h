#ifndef RATATOUILLE_SERVE_SCHED_POLICY_H_
#define RATATOUILLE_SERVE_SCHED_POLICY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/deadline.h"

namespace rt::serve {

/// The two traffic classes sharing a fleet: interactive generation
/// (tight latency tolerance, the default) and batch work (audits,
/// bulk scoring — throughput-oriented, preemptible). Carried by the
/// `priority` request param and the `x-rt-priority` header.
enum class TrafficClass {
  kInteractive = 0,
  kBatch = 1,
};

inline const char* TrafficClassName(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kInteractive:
      return "interactive";
    case TrafficClass::kBatch:
      return "batch";
  }
  return "?";
}

/// Parses "interactive" / "batch". Returns false on anything else
/// (the caller answers 400 bad_priority).
inline bool ParseTrafficClass(const std::string& text, TrafficClass* out) {
  if (text == "interactive") {
    *out = TrafficClass::kInteractive;
    return true;
  }
  if (text == "batch") {
    *out = TrafficClass::kBatch;
    return true;
  }
  return false;
}

/// One scheduling policy for every queue in the request path
/// (HTTP admission queue, session waiter list, batch-scheduler
/// pending list): earliest-deadline-first over *slack* — time left
/// until the request's deadline — with interactive beating batch at
/// equal deadlines and arrival order (`seq`) breaking the remaining
/// ties. Uniform deadlines therefore degrade to exact FIFO: the
/// pre-EDF behavior is the degenerate case, not a special case.
struct SchedKey {
  using Clock = std::chrono::steady_clock;

  /// Absolute deadline; Clock::time_point::max() means "no deadline"
  /// (infinite slack — always schedulable last).
  Clock::time_point deadline = Clock::time_point::max();
  TrafficClass cls = TrafficClass::kInteractive;
  /// Monotone arrival stamp assigned by the queue owner.
  uint64_t seq = 0;

  static Clock::time_point DeadlinePoint(const Deadline& d) {
    return d.is_infinite() ? Clock::time_point::max() : d.when();
  }

  /// Remaining slack. Negative when the deadline has passed; max()
  /// when there is no deadline.
  std::chrono::nanoseconds SlackAt(Clock::time_point now) const {
    if (deadline == Clock::time_point::max()) {
      return std::chrono::nanoseconds::max();
    }
    return std::chrono::duration_cast<std::chrono::nanoseconds>(deadline -
                                                                now);
  }

  /// Strict weak ordering: tighter deadline first, interactive before
  /// batch at equal deadlines, then arrival order.
  bool Before(const SchedKey& other) const {
    if (deadline != other.deadline) return deadline < other.deadline;
    if (cls != other.cls) return cls == TrafficClass::kInteractive;
    return seq < other.seq;
  }
};

/// Policy helpers shared by the four scheduling points.
struct SchedPolicy {
  using Clock = SchedKey::Clock;

  /// A request is provably unmeetable once its deadline has passed —
  /// any work spent on it is wasted capacity, so queues shed it at
  /// dequeue instead of running it into a guaranteed 504.
  static bool Unmeetable(const SchedKey& key, Clock::time_point now) {
    return key.deadline != Clock::time_point::max() && now >= key.deadline;
  }

  /// Retry-After hint (seconds, >= 1) derived from the current slack
  /// distribution of the queue: the median positive slack says when
  /// roughly half the queued work will have either run or been shed —
  /// a better estimate of when capacity returns than a static hint.
  /// `slacks_ms` may contain negative entries (already-unmeetable
  /// work); they are ignored. Empty/all-negative falls back to 1 s.
  static int RetryAfterSeconds(std::vector<long long> slacks_ms) {
    slacks_ms.erase(
        std::remove_if(slacks_ms.begin(), slacks_ms.end(),
                       [](long long ms) { return ms <= 0; }),
        slacks_ms.end());
    if (slacks_ms.empty()) return 1;
    std::nth_element(slacks_ms.begin(),
                     slacks_ms.begin() + slacks_ms.size() / 2,
                     slacks_ms.end());
    long long median_ms = slacks_ms[slacks_ms.size() / 2];
    long long seconds = (median_ms + 999) / 1000;
    return static_cast<int>(std::max<long long>(1, seconds));
  }
};

/// A slack-ordered queue of T. Pop returns the entry whose SchedKey
/// orders first (EDF). Bounded queues stay small (default HTTP queue
/// is 64), so selection is a linear scan — no heap bookkeeping, and
/// stability for the FIFO-degenerate case falls out of SchedKey's seq
/// tiebreak. Not thread-safe; the owner holds its own mutex.
template <typename T>
class EdfQueue {
 public:
  struct Entry {
    SchedKey key;
    T value;
  };

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  void Push(const SchedKey& key, T value) {
    entries_.push_back(Entry{key, std::move(value)});
  }

  /// Removes and returns the earliest-deadline entry.
  /// Precondition: !empty().
  Entry PopBest() {
    size_t best = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].key.Before(entries_[best].key)) best = i;
    }
    Entry out = std::move(entries_[best]);
    entries_.erase(entries_.begin() + static_cast<long>(best));
    return out;
  }

  /// Slack of every queued entry at `now`, in milliseconds (clamped to
  /// a large finite value for no-deadline entries) — the input to
  /// SchedPolicy::RetryAfterSeconds.
  std::vector<long long> SlacksMillis(SchedKey::Clock::time_point now) const {
    std::vector<long long> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) {
      auto slack = e.key.SlackAt(now);
      if (slack == std::chrono::nanoseconds::max()) {
        out.push_back(std::numeric_limits<long long>::max() / 2000000);
      } else {
        out.push_back(
            std::chrono::duration_cast<std::chrono::milliseconds>(slack)
                .count());
      }
    }
    return out;
  }

  /// Visits every entry (for drain/teardown).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Entry& e : entries_) fn(e);
  }

  void Clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

/// The waiter list behind BackendService::AcquireSession: blocked
/// acquirers park a Waiter node here and a freed slot is *handed* to
/// the earliest-deadline waiter instead of waking whoever the OS
/// happens to schedule first. All methods require the owner's mutex.
class SlotWaitQueue {
 public:
  struct Waiter {
    SchedKey key;
    /// Set by GrantBest under the owner's mutex; the waiter re-checks
    /// it after every wake.
    bool granted = false;
    int slot = -1;
  };

  void Enqueue(Waiter* waiter) { waiters_.push_back(waiter); }

  /// Removes a waiter that gave up (timeout). Returns false when the
  /// waiter was already granted a slot — the caller must then put the
  /// slot back rather than leak it.
  bool Remove(Waiter* waiter) {
    for (size_t i = 0; i < waiters_.size(); ++i) {
      if (waiters_[i] == waiter) {
        waiters_.erase(waiters_.begin() + static_cast<long>(i));
        return true;
      }
    }
    return false;
  }

  /// Hands `slot` to the earliest-deadline waiter and returns it, or
  /// returns nullptr when nobody is waiting (the caller keeps the
  /// slot in the free pool).
  Waiter* GrantBest(int slot) {
    if (waiters_.empty()) return nullptr;
    size_t best = 0;
    for (size_t i = 1; i < waiters_.size(); ++i) {
      if (waiters_[i]->key.Before(waiters_[best]->key)) best = i;
    }
    Waiter* out = waiters_[best];
    waiters_.erase(waiters_.begin() + static_cast<long>(best));
    out->granted = true;
    out->slot = slot;
    return out;
  }

  bool empty() const { return waiters_.empty(); }
  size_t size() const { return waiters_.size(); }

 private:
  std::vector<Waiter*> waiters_;
};

}  // namespace rt::serve

#endif  // RATATOUILLE_SERVE_SCHED_POLICY_H_
