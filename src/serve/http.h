#ifndef RATATOUILLE_SERVE_HTTP_H_
#define RATATOUILLE_SERVE_HTTP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/sched_policy.h"
#include "util/json.h"
#include "util/status.h"

namespace rt {

/// A parsed HTTP/1.1 request.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/v1/generate" (query string stripped)
  std::string query;   // raw query string without '?'
  std::string version;  // "HTTP/1.1" (empty when absent)
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
  /// Server-assigned id, unique per request ("req-<port>-<n>"). Handlers
  /// echo it in responses and error envelopes.
  std::string request_id;
  /// Request-scoped trace id (obs::TraceRecorder::NextTraceId), assigned
  /// alongside request_id. Every span this request produces — in the
  /// HTTP layer, the backend handler, the batch scheduler, and the
  /// decode loops — carries it, so /v1/trace groups them on one track.
  /// 0 = untraced (e.g. a request that failed to parse).
  uint64_t trace_id = 0;
  /// When the server took responsibility for this request: queue
  /// admission for a connection's first request, start of read for
  /// later keep-alive requests. Per-request deadlines start here, so
  /// time spent waiting for a worker counts against the budget. A
  /// default-constructed (epoch) value means "unknown"; handlers treat
  /// it as now.
  std::chrono::steady_clock::time_point admitted_at{};
};

/// Incremental writer handed to a streaming handler (HttpResponse::
/// stream). Each Write sends one HTTP/1.1 chunk to the client on the
/// calling thread; the socket's SO_SNDTIMEO bounds how long a slow
/// reader can stall a write (backpressure), after which the writer is
/// dead and the handler should stop producing.
class ResponseWriter {
 public:
  virtual ~ResponseWriter() = default;

  /// Sends `data` as one chunk. Returns false once the client is gone
  /// — disconnect, or a write that out-waited the send timeout. After
  /// the first failure every call returns false without touching the
  /// socket.
  virtual bool Write(const std::string& data) = 0;

  /// True after any Write has failed.
  virtual bool dead() const = 0;
};

/// An HTTP response under construction.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;
  /// Extra response headers (e.g. "Retry-After", "Deprecation").
  std::map<std::string, std::string> headers;
  /// When set the response streams: the server sends the status line
  /// and headers with Transfer-Encoding: chunked, invokes this callback
  /// on the worker thread with a live ResponseWriter, and finishes the
  /// framing when it returns. `body` is ignored and the connection
  /// always closes afterwards (no keep-alive reuse).
  std::function<void(ResponseWriter&)> stream;

  static HttpResponse Text(std::string body, int status = 200);
  static HttpResponse Html(std::string body, int status = 200);
  static HttpResponse JsonBody(std::string body, int status = 200);
  static HttpResponse NotFound();
};

/// Builds the structured error envelope used by every non-2xx response:
///   {"error":{"code":"...","message":"...","request_id":"..."}}
HttpResponse JsonError(int status, const std::string& code,
                       const std::string& message,
                       const std::string& request_id);

/// Same envelope plus a machine-readable `error.details` object (e.g.
/// tokens_generated on a DEADLINE_EXCEEDED response).
HttpResponse JsonError(int status, const std::string& code,
                       const std::string& message,
                       const std::string& request_id, Json details);

/// The health body shared by every serve tier (backend and frontend,
/// /v1/healthz and the legacy alias): liveness plus enough identity to
/// debug a fleet — {"status":"ok","uptime_s":<double>,
/// "build_type":"Release|Debug|...","sanitizer":"none|thread|...",
/// "git_sha":"<short sha>|unknown"}.
Json HealthzJson();

/// Tuning knobs for the threaded server.
struct HttpServerOptions {
  /// Worker threads serving connections; <= 0 means
  /// std::thread::hardware_concurrency().
  int num_workers = 0;
  /// Accepted connections waiting for a free worker. When the queue is
  /// full new connections are rejected with 503 + Retry-After.
  int max_queue = 64;
  /// Budget for reading one complete request once its first byte arrived.
  int read_timeout_ms = 5000;
  /// How long a keep-alive connection may sit idle between requests.
  int idle_timeout_ms = 5000;
  /// Socket send timeout per response.
  int write_timeout_ms = 5000;
  /// Close a keep-alive connection after this many requests (0 = no cap).
  int max_keepalive_requests = 0;
  /// Advisory Retry-After (seconds) on 503 responses.
  int retry_after_seconds = 1;
  /// Shed connections that waited in the accept queue longer than this
  /// (ms) with 504 instead of serving a request whose deadline already
  /// passed (0 = never shed). Serving layers set it to their default
  /// request timeout.
  int queue_deadline_ms = 0;
};

/// Loopback HTTP/1.1 server (the Flask stand-in, paper Sec. VI), rebuilt
/// for concurrency: an acceptor thread feeds accepted connections into a
/// bounded queue drained by a fixed worker pool. Connections are served
/// with HTTP/1.1 keep-alive (pipelined requests are answered sequentially
/// in order); when the queue is full the acceptor answers 503 with a
/// Retry-After header instead of queueing unbounded latency.
///
/// Lifecycle: Route()/RoutePrefix() must happen before Start() (they
/// return FailedPrecondition while running — registering mid-flight would
/// race the dispatcher). Start() binds 127.0.0.1:`port` (0 picks a free
/// port). Stop() drains gracefully: stop accepting, finish in-flight
/// requests, close idle and queued connections, join all threads. A
/// stopped server can Start() again.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer();
  explicit HttpServer(HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact (method, path). Fails once the
  /// server is running.
  Status Route(const std::string& method, const std::string& path,
               Handler handler);

  /// Registers a handler for every path starting with `prefix`.
  Status RoutePrefix(const std::string& method, const std::string& prefix,
                     Handler handler);

  /// Binds and starts the acceptor + worker pool.
  Status Start(int port);

  /// Graceful drain; idempotent and safe to call concurrently with
  /// in-flight requests.
  void Stop();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

  bool running() const { return running_.load(); }

  /// Total requests answered (including error responses).
  long long requests_served() const { return requests_served_.load(); }

  /// Connections rejected with 503 because the queue was full.
  long long requests_rejected() const { return requests_rejected_.load(); }

  /// Connections answered 504 unserved because they out-waited
  /// queue_deadline_ms in the accept queue.
  long long requests_shed() const { return requests_shed_.load(); }

  /// Accepted connections currently waiting for a worker.
  int queue_depth() const;

  /// Resolved worker count (valid after Start()).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  const HttpServerOptions& options() const { return options_; }

 private:
  enum class ReadOutcome { kRequest, kClosed, kTimeout, kTooLarge };

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd,
                       std::chrono::steady_clock::time_point admitted);
  /// Waits for one complete request in `buffer` (which may already hold
  /// pipelined bytes), reading more as needed. On kRequest,
  /// `*request_end` is the offset one past the request's body.
  ReadOutcome ReadOneRequest(int fd, std::string* buffer,
                             size_t* request_end);
  HttpResponse Dispatch(const HttpRequest& request);
  std::string NextRequestId();

  struct Route_ {
    std::string method;
    std::string path;
    bool is_prefix;
    Handler handler;
  };

  HttpServerOptions options_;
  std::vector<Route_> routes_;
  /// Atomic: Stop() closes it from another thread to unblock accept().
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<long long> requests_served_{0};
  std::atomic<long long> requests_rejected_{0};
  std::atomic<long long> requests_shed_{0};
  std::atomic<long long> request_counter_{0};

  /// An accepted connection waiting for a worker, stamped with its
  /// admission time so deadlines cover queue wait.
  struct PendingConn {
    int fd;
    std::chrono::steady_clock::time_point admitted;
  };

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  /// Accepted fds awaiting a worker, ordered by deadline slack
  /// (admission + queue_deadline_ms; uniform budgets make this exact
  /// FIFO — see serve::SchedPolicy). Workers shed provably-unmeetable
  /// connections at dequeue with a 504 whose retry hint comes from the
  /// queue's current slack distribution.
  serve::EdfQueue<PendingConn> pending_;
  uint64_t queue_seq_ = 0;  // arrival stamp, guarded by queue_mutex_

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

/// Response as seen by the test/bench clients.
struct HttpClientResponse {
  int status = 0;
  std::string body;
  std::map<std::string, std::string> headers;  // lower-cased keys
};

/// Client-side knobs shared by the one-shot helpers, StreamingHttpCall,
/// and HttpClient. The router tier leans on these: per-try budgets come
/// from the request deadline, and forwarded x-rt-request-id /
/// x-rt-trace-id headers keep one trace across the hop.
struct HttpCallOptions {
  /// Whole-exchange budget in ms (send + response head + body). 0 = no
  /// limit. On expiry the call fails with DeadlineExceeded.
  int timeout_ms = 0;
  /// Longest silence tolerated between body bytes on a streaming Pump()
  /// (ms). 0 = wait forever. A wedged replica mid-stream surfaces as an
  /// IoError instead of a relay that never returns.
  int stall_timeout_ms = 0;
  /// Extra request headers, e.g. {"x-rt-request-id", "req-8080-17"}.
  std::map<std::string, std::string> headers;
};

/// One-shot GET/POST to 127.0.0.1:`port` (Connection: close). Returns
/// IoError on connection failure or malformed response, and
/// DeadlineExceeded when options.timeout_ms expires first. Response
/// heads larger than 64 KiB are rejected as malformed instead of
/// buffered unboundedly.
StatusOr<HttpClientResponse> HttpGet(int port, const std::string& path,
                                     const HttpCallOptions& options = {});
StatusOr<HttpClientResponse> HttpPost(int port, const std::string& path,
                                      const std::string& body,
                                      const std::string& content_type =
                                          "application/json",
                                      const HttpCallOptions& options = {});

/// Client side of one streaming exchange (the frontend's SSE relay):
/// Open() sends a POST and blocks until the response head arrives, so
/// the caller can commit status/headers before any body bytes; Pump()
/// then delivers decoded body data incrementally as the peer writes
/// it. Not thread-safe; the destructor closes the connection (which
/// tears down the upstream stream).
class StreamingHttpCall {
 public:
  StreamingHttpCall() = default;
  ~StreamingHttpCall();

  StreamingHttpCall(const StreamingHttpCall&) = delete;
  StreamingHttpCall& operator=(const StreamingHttpCall&) = delete;

  /// Connects to 127.0.0.1:`port`, sends the POST, and reads the
  /// response head (status line + headers). options.timeout_ms bounds
  /// the whole head exchange; options.stall_timeout_ms carries over to
  /// Pump()/ReadAll(). Heads larger than 64 KiB are rejected.
  Status Open(int port, const std::string& path, const std::string& body,
              const std::string& content_type = "application/json",
              const HttpCallOptions& options = {});

  /// Valid after a successful Open().
  int status() const { return status_; }
  const std::map<std::string, std::string>& headers() const {
    return headers_;  // lower-cased keys
  }
  /// True when the body uses chunked framing — stream it with Pump().
  bool chunked() const { return chunked_; }

  /// Buffers the whole remaining body (non-streaming responses).
  StatusOr<std::string> ReadAll();

  /// Delivers body payloads to `on_data` as they arrive (one call per
  /// decoded chunk when chunked) until the body ends. `on_data`
  /// returning false stops the relay early (still OK) — the caller's
  /// client is gone. When the Open() options set stall_timeout_ms, a
  /// silent peer fails the pump with IoError after that long.
  Status Pump(const std::function<bool(const std::string&)>& on_data);

  /// Body bytes delivered by Pump()/ReadAll() so far. The relay uses
  /// this to decide whether failover is still safe (nothing sent to the
  /// client yet) or the stream must die with a terminal error frame.
  size_t bytes_delivered() const { return bytes_delivered_; }

 private:
  /// Reads more bytes into buffer_. False on EOF, error, or a stall
  /// that out-waited stall_timeout_ms.
  bool Fill();

  int fd_ = -1;
  int status_ = 0;
  bool chunked_ = false;
  size_t content_length_ = 0;
  size_t bytes_delivered_ = 0;
  int stall_timeout_ms_ = 0;
  std::map<std::string, std::string> headers_;
  std::string buffer_;  // body bytes past the parsed head
};

/// Persistent keep-alive client: issues sequential requests over one
/// connection, reconnecting transparently if the server closed it.
/// Not thread-safe; use one instance per client thread.
class HttpClient {
 public:
  explicit HttpClient(int port);
  /// `defaults` applies to every request: timeout_ms bounds each round
  /// trip (the supervisor's probe client uses this so a wedged replica
  /// cannot hang the monitor), headers ride on each request.
  HttpClient(int port, HttpCallOptions defaults);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  StatusOr<HttpClientResponse> Get(const std::string& path);
  StatusOr<HttpClientResponse> Post(const std::string& path,
                                    const std::string& body,
                                    const std::string& content_type =
                                        "application/json");

  /// Closes the current connection (a later request reconnects).
  void Close();

 private:
  StatusOr<HttpClientResponse> RoundTrip(const std::string& request,
                                         bool retry_on_stale);

  int port_;
  HttpCallOptions defaults_;
  int fd_ = -1;
  std::string buffer_;  // bytes past the previous response
};

}  // namespace rt

#endif  // RATATOUILLE_SERVE_HTTP_H_
