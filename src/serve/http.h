#ifndef RATATOUILLE_SERVE_HTTP_H_
#define RATATOUILLE_SERVE_HTTP_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace rt {

/// A parsed HTTP/1.1 request.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/api/generate" (query string stripped)
  std::string query;   // raw query string without '?'
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
};

/// An HTTP response under construction.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;

  static HttpResponse Text(std::string body, int status = 200);
  static HttpResponse Html(std::string body, int status = 200);
  static HttpResponse JsonBody(std::string body, int status = 200);
  static HttpResponse NotFound();
};

/// Minimal loopback HTTP/1.1 server (the Flask stand-in, paper Sec. VI).
///
/// Handlers are registered per (method, exact path) or as a prefix route;
/// each accepted connection is served on the acceptor thread, one request
/// per connection (Connection: close). Start() binds 127.0.0.1:`port`
/// (port 0 picks a free port, see port()).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer();
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact (method, path).
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Registers a handler for every path starting with `prefix`.
  void RoutePrefix(const std::string& method, const std::string& prefix,
                   Handler handler);

  /// Binds and starts the accept loop on a background thread.
  Status Start(int port);

  /// Stops accepting and joins the background thread. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

  bool running() const { return running_.load(); }

  /// Total requests served (for tests/metrics).
  long long requests_served() const { return requests_served_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request);

  struct Route_ {
    std::string method;
    std::string path;
    bool is_prefix;
    Handler handler;
  };

  std::vector<Route_> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<long long> requests_served_{0};
  std::thread accept_thread_;
};

/// Blocking loopback HTTP client used by tests, the frontend proxy and
/// the benchmark harness.
struct HttpClientResponse {
  int status = 0;
  std::string body;
};

/// One-shot GET/POST to 127.0.0.1:`port`. Returns IoError on connection
/// failure or malformed response.
StatusOr<HttpClientResponse> HttpGet(int port, const std::string& path);
StatusOr<HttpClientResponse> HttpPost(int port, const std::string& path,
                                      const std::string& body,
                                      const std::string& content_type =
                                          "application/json");

}  // namespace rt

#endif  // RATATOUILLE_SERVE_HTTP_H_
