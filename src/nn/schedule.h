#ifndef RATATOUILLE_NN_SCHEDULE_H_
#define RATATOUILLE_NN_SCHEDULE_H_

namespace rt {

/// Learning-rate schedules as pure functions of the step index.
enum class ScheduleKind {
  kConstant,
  /// Linear warmup to base_lr over warmup_steps, then linear decay to
  /// min_lr at total_steps.
  kWarmupLinear,
  /// Linear warmup, then cosine decay to min_lr at total_steps.
  kWarmupCosine,
};

struct LrSchedule {
  ScheduleKind kind = ScheduleKind::kConstant;
  float base_lr = 1e-3f;
  float min_lr = 0.0f;
  long long warmup_steps = 0;
  long long total_steps = 1;

  /// Learning rate at `step` (0-based).
  float At(long long step) const;
};

}  // namespace rt

#endif  // RATATOUILLE_NN_SCHEDULE_H_
