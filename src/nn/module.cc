#include "nn/module.h"

namespace rt {

std::vector<Parameter*> Module::Parameters() {
  std::vector<Parameter*> out;
  for (auto& [name, param] : NamedParameters()) out.push_back(param);
  return out;
}

std::vector<std::pair<std::string, Parameter*>> Module::NamedParameters() {
  std::vector<std::pair<std::string, Parameter*>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Parameter*>>* out) {
  for (auto& p : params_) {
    out->emplace_back(prefix + p->name, p.get());
  }
  for (auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

size_t Module::NumParams() {
  size_t n = 0;
  for (Parameter* p : Parameters()) n += p->value.numel();
  return n;
}

void Module::ZeroGrad() {
  for (Parameter* p : Parameters()) p->ZeroGrad();
}

Parameter* Module::RegisterParameter(std::string name, Tensor init) {
  auto p = std::make_unique<Parameter>();
  p->name = std::move(name);
  p->grad = Tensor::Zeros(init.shape());
  p->value = std::move(init);
  params_.push_back(std::move(p));
  return params_.back().get();
}

void Module::RegisterModule(std::string name, Module* child) {
  children_.emplace_back(std::move(name), child);
}

Status CopyParameters(Module& from, Module& to) {
  auto src = from.NamedParameters();
  auto dst = to.NamedParameters();
  if (src.size() != dst.size()) {
    return Status::InvalidArgument(
        "parameter trees differ in size: " + std::to_string(src.size()) +
        " vs " + std::to_string(dst.size()));
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i].first != dst[i].first ||
        src[i].second->value.shape() != dst[i].second->value.shape()) {
      return Status::InvalidArgument("parameter mismatch at '" +
                                     src[i].first + "'");
    }
    dst[i].second->value = src[i].second->value;
    dst[i].second->MarkUpdated();
  }
  return Status::OK();
}

}  // namespace rt
