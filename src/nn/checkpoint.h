#ifndef RATATOUILLE_NN_CHECKPOINT_H_
#define RATATOUILLE_NN_CHECKPOINT_H_

#include <map>
#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace rt {

/// Scalar run metadata stored alongside weights (epoch, step, loss, ...).
using CheckpointMetadata = std::map<std::string, double>;

/// Writes every named parameter of `module` plus metadata to a binary
/// file. Format: magic "RTCKPT02", metadata entries, then per parameter:
/// name, shape, float32 data, then a trailing CRC-32 of everything
/// between magic and checksum. Atomic-ish: written to path + ".tmp" then
/// renamed, so a crash mid-save never corrupts an existing checkpoint
/// (the paper's training environment crashed every 5-7 epochs; resumable
/// checkpoints are a first-class feature here).
Status SaveCheckpoint(Module* module, const CheckpointMetadata& metadata,
                      const std::string& path);

/// Restores parameters by name into `module`. The trailing CRC-32 is
/// verified first, so silent corruption (bit flips, torn writes that
/// survived the rename) fails cleanly instead of loading garbage
/// weights; legacy "RTCKPT01" files load without a checksum. Every
/// parameter of the module must be present in the file with a matching
/// shape. Extra entries in the file are an error (guards against loading
/// the wrong architecture). Metadata is returned through `metadata` if
/// non-null.
Status LoadCheckpoint(Module* module, const std::string& path,
                      CheckpointMetadata* metadata = nullptr);

}  // namespace rt

#endif  // RATATOUILLE_NN_CHECKPOINT_H_
