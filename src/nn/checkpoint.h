#ifndef RATATOUILLE_NN_CHECKPOINT_H_
#define RATATOUILLE_NN_CHECKPOINT_H_

#include <map>
#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace rt {

/// Scalar run metadata stored alongside weights (epoch, step, loss, ...).
using CheckpointMetadata = std::map<std::string, double>;

/// Checkpoint save options. Defaults reproduce the v2 fp32 format
/// byte-for-byte.
struct SaveOptions {
  /// Store 2D parameters quantized to per-output-channel symmetric int8
  /// (one fp32 scale per column, int8 payload — ~4x smaller on disk).
  /// Writes the v3 format ("RTCKPT03", per-parameter dtype tag);
  /// non-2D parameters (biases, layernorm gains) stay fp32. Fails with
  /// InvalidArgument if any weight is non-finite — quantizing NaN/Inf
  /// would silently corrupt the model. Loading dequantizes back into
  /// the module's fp32 parameters; serving with --quant int8 then
  /// re-quantizes in the same orientation the kernels consume, which is
  /// exact (quantization of a dequantized tensor is idempotent).
  bool quantize_int8 = false;
};

/// Writes every named parameter of `module` plus metadata to a binary
/// file. Format: magic "RTCKPT02", metadata entries, then per parameter:
/// name, shape, float32 data, then a trailing CRC-32 of everything
/// between magic and checksum (v3, written when options.quantize_int8 is
/// set, adds a per-parameter dtype tag and int8+scales payloads — see
/// docs/quantization.md). Atomic-ish: written to path + ".tmp" then
/// renamed, so a crash mid-save never corrupts an existing checkpoint
/// (the paper's training environment crashed every 5-7 epochs; resumable
/// checkpoints are a first-class feature here).
Status SaveCheckpoint(Module* module, const CheckpointMetadata& metadata,
                      const std::string& path,
                      const SaveOptions& options = SaveOptions{});

/// Restores parameters by name into `module`. The trailing CRC-32 is
/// verified first, so silent corruption (bit flips, torn writes that
/// survived the rename) fails cleanly instead of loading garbage
/// weights; legacy "RTCKPT01" files load without a checksum. v3 files
/// carry int8-quantized weight payloads which are dequantized into the
/// fp32 parameters on load. Every parameter of the module must be
/// present in the file with a matching shape. Extra entries in the file
/// are an error (guards against loading the wrong architecture).
/// Metadata is returned through `metadata` if non-null.
Status LoadCheckpoint(Module* module, const std::string& path,
                      CheckpointMetadata* metadata = nullptr);

}  // namespace rt

#endif  // RATATOUILLE_NN_CHECKPOINT_H_
