#ifndef RATATOUILLE_NN_MODULE_H_
#define RATATOUILLE_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace rt {

/// A trainable tensor with its gradient accumulator. Parameters are owned
/// by Modules and referenced by optimizers; the autograd tape accumulates
/// into `grad` via leaf grad-sinks.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Bumped on every in-place mutation of `value` (optimizer steps,
  /// checkpoint loads, CopyParameters). Layers key lazily packed weight
  /// caches off this so stale panels are never used after an update.
  uint64_t version = 0;

  void ZeroGrad() { grad.Zero(); }
  void MarkUpdated() { ++version; }
};

/// Base class for neural-network building blocks.
///
/// Subclasses register their parameters (RegisterParameter) and child
/// modules (RegisterModule) in their constructor; Parameters() then walks
/// the tree, yielding stable, fully-qualified names ("blocks.0.attn.wq")
/// used by optimizers and checkpointing. Modules are neither copyable nor
/// movable: parameters are referenced by pointer.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its descendants, in registration
  /// order (deterministic).
  std::vector<Parameter*> Parameters();

  /// Same, with the fully-qualified name of each parameter.
  std::vector<std::pair<std::string, Parameter*>> NamedParameters();

  /// Total number of scalar weights.
  size_t NumParams();

  /// Zeroes every parameter gradient.
  void ZeroGrad();

 protected:
  /// Registers and owns a parameter initialized to `init`.
  Parameter* RegisterParameter(std::string name, Tensor init);

  /// Registers a child (non-owning; the child is a member of the subclass).
  void RegisterModule(std::string name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Parameter*>>* out);

  std::vector<std::unique_ptr<Parameter>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

/// Copies every parameter value of `from` into `to`. The two trees must
/// be structurally identical (same registration order, names, shapes) —
/// the backbone of LanguageModel::Clone(). Gradients are not copied.
Status CopyParameters(Module& from, Module& to);

}  // namespace rt

#endif  // RATATOUILLE_NN_MODULE_H_
