#include "nn/optimizer.h"

#include <cmath>

namespace rt {

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) {
      velocity_.push_back(Tensor::Zeros(p->value.shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    if (momentum_ > 0.0f) {
      Tensor& vel = velocity_[i];
      for (size_t j = 0; j < vel.numel(); ++j) {
        vel[j] = momentum_ * vel[j] + p->grad[j];
        p->value[j] -= lr_ * vel[j];
      }
    } else {
      for (size_t j = 0; j < p->value.numel(); ++j) {
        p->value[j] -= lr_ * p->grad[j];
      }
    }
    p->MarkUpdated();
  }
  ++step_count_;
}

Adam::Adam(std::vector<Parameter*> params, Options options)
    : Optimizer(std::move(params)), opts_(options) {
  lr_ = opts_.lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.push_back(Tensor::Zeros(p->value.shape()));
    v_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void Adam::Step() {
  ++step_count_;
  const float t = static_cast<float>(step_count_);
  const float bias1 = 1.0f - std::pow(opts_.beta1, t);
  const float bias2 = 1.0f - std::pow(opts_.beta2, t);
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (size_t j = 0; j < p->value.numel(); ++j) {
      const float g = p->grad[j];
      m[j] = opts_.beta1 * m[j] + (1.0f - opts_.beta1) * g;
      v[j] = opts_.beta2 * v[j] + (1.0f - opts_.beta2) * g * g;
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      float update = lr_ * mhat / (std::sqrt(vhat) + opts_.eps);
      if (opts_.weight_decay > 0.0f) {
        update += lr_ * opts_.weight_decay * p->value[j];
      }
      p->value[j] -= update;
    }
    p->MarkUpdated();
  }
}

float ClipGradNorm(const std::vector<Parameter*>& params, float max_norm) {
  double sumsq = 0.0;
  for (Parameter* p : params) {
    for (size_t j = 0; j < p->grad.numel(); ++j) {
      sumsq += static_cast<double>(p->grad[j]) * p->grad[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sumsq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) p->grad.Scale(scale);
  }
  return norm;
}

}  // namespace rt
