#ifndef RATATOUILLE_NN_LAYERS_H_
#define RATATOUILLE_NN_LAYERS_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "nn/module.h"
#include "tensor/kernels.h"
#include "tensor/tape.h"
#include "tensor/workspace.h"

namespace rt {

/// Fully-connected layer: y = x W + b. Weights are uniform(+/-1/sqrt(in)).
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng* rng, bool bias = true);

  /// x: [m, in] -> [m, out].
  VarId Forward(Tape* tape, VarId x) const;

  /// Tape-free forward for inference paths.
  Tensor ForwardRaw(const Tensor& x) const;

  /// Tape-free forward into caller memory: y [m, out] is overwritten.
  /// Runs on the packed-weight fast path — the panels are cached across
  /// calls and refreshed lazily when the weight Parameter's version
  /// changes, so repeated decode steps skip the pack entirely.
  void ForwardRawTo(int m, const float* x, float* y) const;

  /// The weight matrix packed for kernels::GemmPacked, refreshed lazily
  /// against weight()->version.
  const kernels::PackedB& PackedWeight() const;

  /// The weight matrix quantized (per-output-channel symmetric int8)
  /// and packed for kernels::GemmPackedInt8, refreshed lazily against
  /// weight()->version. ForwardRawTo switches onto it when
  /// kernels::Config().use_int8 is set; both caches can coexist so
  /// parity tests flip modes without repacking.
  const kernels::PackedBInt8& PackedWeightInt8() const;

  int in_features() const { return in_; }
  int out_features() const { return out_; }

  Parameter* weight() { return weight_; }
  Parameter* bias() { return bias_; }

 private:
  int in_;
  int out_;
  Parameter* weight_;          // [in, out]
  Parameter* bias_ = nullptr;  // [out]
  mutable kernels::PackedB packed_;
  mutable uint64_t packed_version_ = ~0ull;
  mutable kernels::PackedBInt8 packed_int8_;
  mutable uint64_t packed_int8_version_ = ~0ull;
  mutable std::mutex pack_mutex_;
};

/// Token-id -> embedding-row lookup table.
class Embedding : public Module {
 public:
  Embedding(int num_embeddings, int dim, Rng* rng, float stddev = 0.02f);

  /// ids (length m) -> [m, dim].
  VarId Forward(Tape* tape, const std::vector<int>& ids) const;

  int num_embeddings() const { return num_; }
  int dim() const { return dim_; }
  Parameter* table() { return table_; }
  const Parameter* table() const { return table_; }

 private:
  int num_;
  int dim_;
  Parameter* table_;  // [num, dim]
};

/// Row-wise layer normalization with learned gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);

  /// x: [m, dim] -> [m, dim].
  VarId Forward(Tape* tape, VarId x) const;

  /// Tape-free forward for inference paths.
  Tensor ForwardRaw(const Tensor& x) const;

  /// Tape-free forward of one row into caller memory (y may alias x).
  void ForwardRawRow(const float* x, float* y) const;

  Parameter* gain() { return gain_; }
  Parameter* bias() { return bias_; }

 private:
  int dim_;
  Parameter* gain_;  // [dim], ones
  Parameter* bias_;  // [dim], zeros
};

/// One LSTM layer's recurrent state for a batch.
struct LstmState {
  VarId h = kInvalidVar;  // [B, H]
  VarId c = kInvalidVar;  // [B, H]
};

/// Recurrent state for the tape-free single-sequence decode path: one
/// h/c vector of hidden_dim floats per layer. Default-constructed state
/// is lazily zero-initialized by Lstm::StepRaw.
struct LstmDecodeState {
  std::vector<std::vector<float>> h;
  std::vector<std::vector<float>> c;
};

/// Single LSTM layer with the standard i,f,g,o gate parameterization:
///   gates = x Wx + h Wh + b            (gate order: i | f | g | o)
///   c' = sigmoid(f) * c + sigmoid(i) * tanh(g)
///   h' = sigmoid(o) * tanh(c')
/// The forget-gate bias is initialized to +1 (standard trick).
class LstmLayer : public Module {
 public:
  LstmLayer(int input_dim, int hidden_dim, Rng* rng);

  /// Zero initial state for a batch of `batch_size` on `tape`.
  LstmState InitialState(Tape* tape, int batch_size) const;

  /// One timestep: x [B, in], state [B, H] -> new state.
  LstmState Step(Tape* tape, VarId x, const LstmState& state) const;

  /// Tape-free single-row timestep: x [in], h/c [H] updated in place.
  /// `gates` is caller scratch of 4H floats. Uses packed-weight GEMVs.
  void StepRaw(const float* x, float* h, float* c, float* gates) const;

  /// Batched timestep across m independent sequences: x is [m, in],
  /// h_in the gathered [m, H] pre-step hidden block, and row i's state
  /// lives at state_rows[i] + h_offset (h, then c, [H] each), updated
  /// in place. `gates` is caller scratch of m*4H floats. Row i is
  /// bitwise identical to StepRaw on the same inputs: the GEMMs share
  /// the per-row accumulation contract and the cell update is per-row.
  void StepRawBatched(int m, const float* x, const float* h_in,
                      float* const* state_rows, size_t h_offset,
                      float* gates) const;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

 private:
  /// The two gate GEMMs (x Wx, += h Wh) for m rows, on the packed fp32
  /// or packed int8 weights per kernels::Config().use_int8.
  void GateGemms(int m, const float* x, const float* h_in,
                 float* gates) const;

  int input_dim_;
  int hidden_dim_;
  Parameter* wx_;  // [in, 4H]
  Parameter* wh_;  // [H, 4H]
  Parameter* b_;   // [4H]
  mutable kernels::PackedB packed_wx_;
  mutable uint64_t packed_wx_version_ = ~0ull;
  mutable kernels::PackedB packed_wh_;
  mutable uint64_t packed_wh_version_ = ~0ull;
  mutable kernels::PackedBInt8 packed_wx_int8_;
  mutable uint64_t packed_wx_int8_version_ = ~0ull;
  mutable kernels::PackedBInt8 packed_wh_int8_;
  mutable uint64_t packed_wh_int8_version_ = ~0ull;
  mutable std::mutex pack_mutex_;
};

/// Stack of LSTM layers processing a token-embedding sequence.
class Lstm : public Module {
 public:
  Lstm(int input_dim, int hidden_dim, int num_layers, Rng* rng);

  /// Per-timestep inputs xs (each [B, in]) -> per-timestep top-layer
  /// hidden states (each [B, H]). `states` carries the recurrent state
  /// across calls (one entry per layer); pass an empty vector to start
  /// from zeros, and reuse it for truncated BPTT / incremental decoding.
  std::vector<VarId> Forward(Tape* tape, const std::vector<VarId>& xs,
                             std::vector<LstmState>* states) const;

  /// Tape-free single-sequence timestep: feeds x [input_dim] through the
  /// stack, updating `state` in place (lazily zero-initialized when
  /// empty). Scratch comes from `ws`; returns the top layer's hidden
  /// state ([hidden_dim], owned by `state`, valid until the next call).
  const float* StepRaw(const float* x, LstmDecodeState* state,
                       Workspace* ws) const;

  /// Batched single-token step across m independent sequences. x is
  /// [m, input_dim]; state_rows[i] points at row i's pooled recurrent
  /// state of StateFloats() floats laid out per layer as h then c
  /// ([hidden_dim] each), zeroed at admission (CacheArena::Acquire
  /// does). h_top receives the top layer's hidden block [m, H]. Row i
  /// matches the single-sequence StepRaw bitwise.
  void StepRawBatched(int m, const float* x, float* const* state_rows,
                      float* h_top, Workspace* ws) const;

  /// Floats one sequence's recurrent state occupies in StepRawBatched
  /// row storage.
  size_t StateFloats() const {
    return static_cast<size_t>(2) * hidden_dim_ * layers_.size();
  }

  int num_layers() const { return static_cast<int>(layers_.size()); }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_;
  std::vector<std::unique_ptr<LstmLayer>> layers_;
};

/// Pre-LayerNorm GPT-2 transformer block:
///   x = x + Attn(LN1(x)); x = x + MLP(LN2(x)); MLP = proj(gelu(fc(x))).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int dim, int num_heads, float dropout, Rng* rng);

  /// x: [B*T, dim] -> [B*T, dim]. `rng` drives dropout when training.
  VarId Forward(Tape* tape, VarId x, int batch, int seq, Rng* rng,
                bool training) const;

  /// Tape-free full forward over one sequence: x [T, dim] -> [T, dim].
  /// Attention heads run on the shared compute pool.
  Tensor ForwardRaw(const Tensor& x, int seq) const;

  /// Tape-free incremental forward of ONE new position. `x_row` is
  /// [1, dim]; `k_cache`/`v_cache` are preallocated [capacity, dim]
  /// per-layer caches whose first `pos` rows hold previous steps. The new
  /// key/value are written at row `pos`. Returns the block output [1, dim].
  Tensor StepRaw(const Tensor& x_row, Tensor* k_cache, Tensor* v_cache,
                 int pos) const;

  /// Same, allocation-free: x [dim] is the input row, out [dim] receives
  /// the block output (out must not alias x). All scratch comes from
  /// `ws`, so a warmed-up Workspace makes the step heap-allocation-free.
  void StepRaw(const float* x, float* out, Tensor* k_cache, Tensor* v_cache,
               int pos, Workspace* ws) const;

  /// Batched incremental forward of one new position per row. x/out are
  /// [m, dim] (out must not alias x); row i's key/value planes are
  /// k_rows[i]/v_rows[i] ([capacity, dim] row-major each) with
  /// positions[i] prior steps valid — rows attend over ragged lengths
  /// independently, and the new key/value land at row positions[i].
  /// Row i's output is bitwise identical to the single-row StepRaw on
  /// the same cache: the QKV/proj/MLP GEMMs batch m rows under the
  /// kernel layer's per-row accumulation contract while LayerNorm,
  /// attention and GELU run per row.
  void StepRawBatched(int m, const float* x, float* out,
                      float* const* k_rows, float* const* v_rows,
                      const int* positions, int capacity,
                      Workspace* ws) const;

  int dim() const { return dim_; }
  int num_heads() const { return heads_; }

 private:
  int dim_;
  int heads_;
  float dropout_;
  LayerNorm ln1_;
  Linear qkv_;
  Linear attn_proj_;
  LayerNorm ln2_;
  Linear mlp_fc_;
  Linear mlp_proj_;
};

}  // namespace rt

#endif  // RATATOUILLE_NN_LAYERS_H_
