#include "nn/layers.h"

#include <cassert>
#include <cmath>
#include <string>

#include "tensor/ops.h"

namespace rt {
namespace {

/// Creates a tape leaf for a parameter, wiring its gradient sink.
VarId ParamLeaf(Tape* tape, Parameter* p) {
  return tape->Leaf(p->value, &p->grad);
}

}  // namespace

Linear::Linear(int in_features, int out_features, Rng* rng, bool bias)
    : in_(in_features), out_(out_features) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = RegisterParameter(
      "weight", Tensor::Uniform({in_features, out_features}, bound, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

VarId Linear::Forward(Tape* tape, VarId x) const {
  VarId w = ParamLeaf(tape, weight_);
  VarId y = tape->MatMul(x, w);
  if (bias_ != nullptr) {
    y = tape->AddRowBroadcast(y, ParamLeaf(tape, bias_));
  }
  return y;
}

Tensor Linear::ForwardRaw(const Tensor& x) const {
  Tensor y = ops::MatMul(x, weight_->value);
  if (bias_ != nullptr) y = ops::AddRowBroadcast(y, bias_->value);
  return y;
}

Embedding::Embedding(int num_embeddings, int dim, Rng* rng, float stddev)
    : num_(num_embeddings), dim_(dim) {
  table_ = RegisterParameter(
      "table", Tensor::Normal({num_embeddings, dim}, stddev, rng));
}

VarId Embedding::Forward(Tape* tape, const std::vector<int>& ids) const {
  return tape->Embedding(ParamLeaf(tape, table_), ids);
}

LayerNorm::LayerNorm(int dim) {
  gain_ = RegisterParameter("gain", Tensor::Full({dim}, 1.0f));
  bias_ = RegisterParameter("bias", Tensor::Zeros({dim}));
}

VarId LayerNorm::Forward(Tape* tape, VarId x) const {
  return tape->LayerNorm(x, ParamLeaf(tape, gain_),
                         ParamLeaf(tape, bias_));
}

Tensor LayerNorm::ForwardRaw(const Tensor& x) const {
  return ops::LayerNormRows(x, gain_->value, bias_->value, 1e-5f,
                            nullptr);
}

LstmLayer::LstmLayer(int input_dim, int hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  const float bx = 1.0f / std::sqrt(static_cast<float>(input_dim));
  const float bh = 1.0f / std::sqrt(static_cast<float>(hidden_dim));
  wx_ = RegisterParameter(
      "wx", Tensor::Uniform({input_dim, 4 * hidden_dim}, bx, rng));
  wh_ = RegisterParameter(
      "wh", Tensor::Uniform({hidden_dim, 4 * hidden_dim}, bh, rng));
  Tensor bias = Tensor::Zeros({4 * hidden_dim});
  // Forget-gate bias +1 eases gradient flow early in training.
  for (int j = hidden_dim; j < 2 * hidden_dim; ++j) bias[j] = 1.0f;
  b_ = RegisterParameter("b", std::move(bias));
}

LstmState LstmLayer::InitialState(Tape* tape, int batch_size) const {
  LstmState s;
  s.h = tape->Constant(Tensor::Zeros({batch_size, hidden_dim_}));
  s.c = tape->Constant(Tensor::Zeros({batch_size, hidden_dim_}));
  return s;
}

LstmState LstmLayer::Step(Tape* tape, VarId x,
                          const LstmState& state) const {
  const int h = hidden_dim_;
  VarId gates = tape->Add(tape->MatMul(x, ParamLeaf(tape, wx_)),
                          tape->MatMul(state.h, ParamLeaf(tape, wh_)));
  gates = tape->AddRowBroadcast(gates, ParamLeaf(tape, b_));
  VarId i = tape->Sigmoid(tape->SliceCols(gates, 0, h));
  VarId f = tape->Sigmoid(tape->SliceCols(gates, h, 2 * h));
  VarId g = tape->Tanh(tape->SliceCols(gates, 2 * h, 3 * h));
  VarId o = tape->Sigmoid(tape->SliceCols(gates, 3 * h, 4 * h));
  LstmState next;
  next.c = tape->Add(tape->Mul(f, state.c), tape->Mul(i, g));
  next.h = tape->Mul(o, tape->Tanh(next.c));
  return next;
}

Lstm::Lstm(int input_dim, int hidden_dim, int num_layers, Rng* rng)
    : hidden_dim_(hidden_dim) {
  assert(num_layers >= 1);
  for (int l = 0; l < num_layers; ++l) {
    const int in = l == 0 ? input_dim : hidden_dim;
    layers_.push_back(std::make_unique<LstmLayer>(in, hidden_dim, rng));
    RegisterModule("layer" + std::to_string(l), layers_.back().get());
  }
}

std::vector<VarId> Lstm::Forward(Tape* tape, const std::vector<VarId>& xs,
                                 std::vector<LstmState>* states) const {
  assert(!xs.empty());
  const int batch = tape->value(xs[0]).rows();
  if (states->empty()) {
    for (const auto& layer : layers_) {
      states->push_back(layer->InitialState(tape, batch));
    }
  }
  assert(states->size() == layers_.size());
  std::vector<VarId> outputs;
  outputs.reserve(xs.size());
  for (VarId x : xs) {
    VarId inp = x;
    for (size_t l = 0; l < layers_.size(); ++l) {
      (*states)[l] = layers_[l]->Step(tape, inp, (*states)[l]);
      inp = (*states)[l].h;
    }
    outputs.push_back(inp);
  }
  return outputs;
}

TransformerBlock::TransformerBlock(int dim, int num_heads, float dropout,
                                   Rng* rng)
    : dim_(dim),
      heads_(num_heads),
      dropout_(dropout),
      ln1_(dim),
      qkv_(dim, 3 * dim, rng),
      attn_proj_(dim, dim, rng),
      ln2_(dim),
      mlp_fc_(dim, 4 * dim, rng),
      mlp_proj_(4 * dim, dim, rng) {
  assert(dim % num_heads == 0);
  RegisterModule("ln1", &ln1_);
  RegisterModule("qkv", &qkv_);
  RegisterModule("attn_proj", &attn_proj_);
  RegisterModule("ln2", &ln2_);
  RegisterModule("mlp_fc", &mlp_fc_);
  RegisterModule("mlp_proj", &mlp_proj_);
}

VarId TransformerBlock::Forward(Tape* tape, VarId x, int batch, int seq,
                                Rng* rng, bool training) const {
  // Attention sub-block with residual.
  VarId normed = ln1_.Forward(tape, x);
  VarId qkv = qkv_.Forward(tape, normed);
  VarId q = tape->SliceCols(qkv, 0, dim_);
  VarId k = tape->SliceCols(qkv, dim_, 2 * dim_);
  VarId v = tape->SliceCols(qkv, 2 * dim_, 3 * dim_);
  VarId attn = tape->CausalSelfAttention(q, k, v, batch, seq, heads_);
  attn = attn_proj_.Forward(tape, attn);
  attn = tape->Dropout(attn, dropout_, rng, training);
  x = tape->Add(x, attn);

  // MLP sub-block with residual.
  VarId mlp = ln2_.Forward(tape, x);
  mlp = mlp_fc_.Forward(tape, mlp);
  mlp = tape->Gelu(mlp);
  mlp = mlp_proj_.Forward(tape, mlp);
  mlp = tape->Dropout(mlp, dropout_, rng, training);
  return tape->Add(x, mlp);
}

Tensor TransformerBlock::ForwardRaw(const Tensor& x, int seq) const {
  assert(x.rows() == seq);
  const int dh = dim_ / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  Tensor qkv = qkv_.ForwardRaw(ln1_.ForwardRaw(x));
  Tensor attn_out({seq, dim_});
  std::vector<float> scores(seq);
  for (int h = 0; h < heads_; ++h) {
    const int q0 = h * dh;
    const int k0 = dim_ + h * dh;
    const int v0 = 2 * dim_ + h * dh;
    for (int t = 0; t < seq; ++t) {
      const float* qrow = qkv.data() + static_cast<size_t>(t) * 3 * dim_ + q0;
      float mx = -1e30f;
      for (int u = 0; u <= t; ++u) {
        const float* krow =
            qkv.data() + static_cast<size_t>(u) * 3 * dim_ + k0;
        double acc = 0.0;
        for (int d = 0; d < dh; ++d) acc += qrow[d] * krow[d];
        scores[u] = static_cast<float>(acc) * scale;
        mx = std::max(mx, scores[u]);
      }
      double sum = 0.0;
      for (int u = 0; u <= t; ++u) {
        scores[u] = std::exp(scores[u] - mx);
        sum += scores[u];
      }
      const float inv = static_cast<float>(1.0 / sum);
      float* orow = attn_out.data() + static_cast<size_t>(t) * dim_ + q0;
      for (int d = 0; d < dh; ++d) orow[d] = 0.0f;
      for (int u = 0; u <= t; ++u) {
        const float p = scores[u] * inv;
        const float* vrow =
            qkv.data() + static_cast<size_t>(u) * 3 * dim_ + v0;
        for (int d = 0; d < dh; ++d) orow[d] += p * vrow[d];
      }
    }
  }
  Tensor y = ops::Add(x, attn_proj_.ForwardRaw(attn_out));
  Tensor mlp = mlp_proj_.ForwardRaw(
      ops::Gelu(mlp_fc_.ForwardRaw(ln2_.ForwardRaw(y))));
  return ops::Add(y, mlp);
}

Tensor TransformerBlock::StepRaw(const Tensor& x_row, Tensor* k_cache,
                                 Tensor* v_cache, int pos) const {
  assert(x_row.rows() == 1 && x_row.cols() == dim_);
  assert(pos < k_cache->rows());
  const int dh = dim_ / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  Tensor qkv = qkv_.ForwardRaw(ln1_.ForwardRaw(x_row));  // [1, 3*dim]
  // Store this position's key/value.
  for (int j = 0; j < dim_; ++j) {
    k_cache->at(pos, j) = qkv[static_cast<size_t>(dim_) + j];
    v_cache->at(pos, j) = qkv[static_cast<size_t>(2 * dim_) + j];
  }
  Tensor attn_out({1, dim_});
  std::vector<float> scores(pos + 1);
  for (int h = 0; h < heads_; ++h) {
    const int c0 = h * dh;
    const float* qrow = qkv.data() + c0;
    float mx = -1e30f;
    for (int u = 0; u <= pos; ++u) {
      const float* krow = k_cache->data() + static_cast<size_t>(u) * dim_ + c0;
      double acc = 0.0;
      for (int d = 0; d < dh; ++d) acc += qrow[d] * krow[d];
      scores[u] = static_cast<float>(acc) * scale;
      mx = std::max(mx, scores[u]);
    }
    double sum = 0.0;
    for (int u = 0; u <= pos; ++u) {
      scores[u] = std::exp(scores[u] - mx);
      sum += scores[u];
    }
    const float inv = static_cast<float>(1.0 / sum);
    float* orow = attn_out.data() + c0;
    for (int d = 0; d < dh; ++d) orow[d] = 0.0f;
    for (int u = 0; u <= pos; ++u) {
      const float p = scores[u] * inv;
      const float* vrow =
          v_cache->data() + static_cast<size_t>(u) * dim_ + c0;
      for (int d = 0; d < dh; ++d) orow[d] += p * vrow[d];
    }
  }
  Tensor y = ops::Add(x_row, attn_proj_.ForwardRaw(attn_out));
  Tensor mlp = mlp_proj_.ForwardRaw(
      ops::Gelu(mlp_fc_.ForwardRaw(ln2_.ForwardRaw(y))));
  return ops::Add(y, mlp);
}

}  // namespace rt
