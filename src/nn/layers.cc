#include "nn/layers.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <string>

#include "tensor/ops.h"
#include "tensor/thread_pool.h"

namespace rt {
namespace {

/// Creates a tape leaf for a parameter, wiring its gradient sink.
VarId ParamLeaf(Tape* tape, Parameter* p) {
  return tape->Leaf(p->value, &p->grad);
}

/// Refreshes a lazily packed weight cache against the parameter version.
/// Serialized by the caller's mutex; the double-check inside keeps
/// concurrent first-touch packs from racing on the panel storage.
const kernels::PackedB& RefreshPacked(std::mutex* mu,
                                      kernels::PackedB* packed,
                                      uint64_t* cached_version,
                                      const Parameter& p, int k, int n) {
  std::lock_guard<std::mutex> lock(*mu);
  if (*cached_version != p.version) {
    packed->Pack(k, n, p.value.data());
    *cached_version = p.version;
  }
  return *packed;
}

/// Int8 twin of RefreshPacked: quantizes per output channel while
/// packing. Observing the weight (per-column absmax), deriving qparams
/// and swapping the quantized panels in all happen here, keyed on the
/// same Parameter version — an updated weight re-observes on next use.
const kernels::PackedBInt8& RefreshPackedInt8(std::mutex* mu,
                                              kernels::PackedBInt8* packed,
                                              uint64_t* cached_version,
                                              const Parameter& p, int k,
                                              int n) {
  std::lock_guard<std::mutex> lock(*mu);
  if (*cached_version != p.version) {
    packed->Pack(k, n, p.value.data());
    *cached_version = p.version;
  }
  return *packed;
}

}  // namespace

Linear::Linear(int in_features, int out_features, Rng* rng, bool bias)
    : in_(in_features), out_(out_features) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = RegisterParameter(
      "weight", Tensor::Uniform({in_features, out_features}, bound, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

VarId Linear::Forward(Tape* tape, VarId x) const {
  VarId w = ParamLeaf(tape, weight_);
  VarId y = tape->MatMul(x, w);
  if (bias_ != nullptr) {
    y = tape->AddRowBroadcast(y, ParamLeaf(tape, bias_));
  }
  return y;
}

const kernels::PackedB& Linear::PackedWeight() const {
  return RefreshPacked(&pack_mutex_, &packed_, &packed_version_, *weight_,
                       in_, out_);
}

const kernels::PackedBInt8& Linear::PackedWeightInt8() const {
  return RefreshPackedInt8(&pack_mutex_, &packed_int8_,
                           &packed_int8_version_, *weight_, in_, out_);
}

void Linear::ForwardRawTo(int m, const float* x, float* y) const {
  if (kernels::Config().use_int8) {
    kernels::GemmPackedInt8(m, x, PackedWeightInt8(), y, false);
  } else {
    kernels::GemmPacked(m, x, PackedWeight(), y, false);
  }
  if (bias_ != nullptr) {
    for (int i = 0; i < m; ++i) {
      kernels::AddBiasRow(out_, bias_->value.data(),
                          y + static_cast<size_t>(i) * out_);
    }
  }
}

Tensor Linear::ForwardRaw(const Tensor& x) const {
  assert(x.cols() == in_);
  Tensor y({x.rows(), out_});
  ForwardRawTo(x.rows(), x.data(), y.data());
  return y;
}

Embedding::Embedding(int num_embeddings, int dim, Rng* rng, float stddev)
    : num_(num_embeddings), dim_(dim) {
  table_ = RegisterParameter(
      "table", Tensor::Normal({num_embeddings, dim}, stddev, rng));
}

VarId Embedding::Forward(Tape* tape, const std::vector<int>& ids) const {
  return tape->Embedding(ParamLeaf(tape, table_), ids);
}

LayerNorm::LayerNorm(int dim) : dim_(dim) {
  gain_ = RegisterParameter("gain", Tensor::Full({dim}, 1.0f));
  bias_ = RegisterParameter("bias", Tensor::Zeros({dim}));
}

VarId LayerNorm::Forward(Tape* tape, VarId x) const {
  return tape->LayerNorm(x, ParamLeaf(tape, gain_),
                         ParamLeaf(tape, bias_));
}

Tensor LayerNorm::ForwardRaw(const Tensor& x) const {
  return ops::LayerNormRows(x, gain_->value, bias_->value, 1e-5f,
                            nullptr);
}

void LayerNorm::ForwardRawRow(const float* x, float* y) const {
  kernels::LayerNormRow(dim_, x, gain_->value.data(), bias_->value.data(),
                        1e-5f, y, nullptr, nullptr);
}

LstmLayer::LstmLayer(int input_dim, int hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  const float bx = 1.0f / std::sqrt(static_cast<float>(input_dim));
  const float bh = 1.0f / std::sqrt(static_cast<float>(hidden_dim));
  wx_ = RegisterParameter(
      "wx", Tensor::Uniform({input_dim, 4 * hidden_dim}, bx, rng));
  wh_ = RegisterParameter(
      "wh", Tensor::Uniform({hidden_dim, 4 * hidden_dim}, bh, rng));
  Tensor bias = Tensor::Zeros({4 * hidden_dim});
  // Forget-gate bias +1 eases gradient flow early in training.
  for (int j = hidden_dim; j < 2 * hidden_dim; ++j) bias[j] = 1.0f;
  b_ = RegisterParameter("b", std::move(bias));
}

LstmState LstmLayer::InitialState(Tape* tape, int batch_size) const {
  LstmState s;
  s.h = tape->Constant(Tensor::Zeros({batch_size, hidden_dim_}));
  s.c = tape->Constant(Tensor::Zeros({batch_size, hidden_dim_}));
  return s;
}

LstmState LstmLayer::Step(Tape* tape, VarId x,
                          const LstmState& state) const {
  const int h = hidden_dim_;
  VarId gates = tape->Add(tape->MatMul(x, ParamLeaf(tape, wx_)),
                          tape->MatMul(state.h, ParamLeaf(tape, wh_)));
  gates = tape->AddRowBroadcast(gates, ParamLeaf(tape, b_));
  VarId i = tape->Sigmoid(tape->SliceCols(gates, 0, h));
  VarId f = tape->Sigmoid(tape->SliceCols(gates, h, 2 * h));
  VarId g = tape->Tanh(tape->SliceCols(gates, 2 * h, 3 * h));
  VarId o = tape->Sigmoid(tape->SliceCols(gates, 3 * h, 4 * h));
  LstmState next;
  next.c = tape->Add(tape->Mul(f, state.c), tape->Mul(i, g));
  next.h = tape->Mul(o, tape->Tanh(next.c));
  return next;
}

void LstmLayer::GateGemms(int m, const float* x, const float* h_in,
                          float* gates) const {
  if (kernels::Config().use_int8) {
    const kernels::PackedBInt8& pwx = RefreshPackedInt8(
        &pack_mutex_, &packed_wx_int8_, &packed_wx_int8_version_, *wx_,
        input_dim_, 4 * hidden_dim_);
    const kernels::PackedBInt8& pwh = RefreshPackedInt8(
        &pack_mutex_, &packed_wh_int8_, &packed_wh_int8_version_, *wh_,
        hidden_dim_, 4 * hidden_dim_);
    kernels::GemmPackedInt8(m, x, pwx, gates, false);
    kernels::GemmPackedInt8(m, h_in, pwh, gates, true);
    return;
  }
  const kernels::PackedB& pwx = RefreshPacked(
      &pack_mutex_, &packed_wx_, &packed_wx_version_, *wx_, input_dim_,
      4 * hidden_dim_);
  const kernels::PackedB& pwh = RefreshPacked(
      &pack_mutex_, &packed_wh_, &packed_wh_version_, *wh_, hidden_dim_,
      4 * hidden_dim_);
  kernels::GemmPacked(m, x, pwx, gates, false);
  kernels::GemmPacked(m, h_in, pwh, gates, true);
}

void LstmLayer::StepRaw(const float* x, float* h, float* c,
                        float* gates) const {
  GateGemms(1, x, h, gates);
  kernels::AddBiasRow(4 * hidden_dim_, b_->value.data(), gates);
  kernels::LstmCellRow(hidden_dim_, gates, h, c);
}

void LstmLayer::StepRawBatched(int m, const float* x, const float* h_in,
                               float* const* state_rows, size_t h_offset,
                               float* gates) const {
  const int g4 = 4 * hidden_dim_;
  GateGemms(m, x, h_in, gates);
  for (int i = 0; i < m; ++i) {
    float* g = gates + static_cast<size_t>(i) * g4;
    kernels::AddBiasRow(g4, b_->value.data(), g);
    float* h = state_rows[i] + h_offset;
    kernels::LstmCellRow(hidden_dim_, g, h, h + hidden_dim_);
  }
}

Lstm::Lstm(int input_dim, int hidden_dim, int num_layers, Rng* rng)
    : hidden_dim_(hidden_dim) {
  assert(num_layers >= 1);
  for (int l = 0; l < num_layers; ++l) {
    const int in = l == 0 ? input_dim : hidden_dim;
    layers_.push_back(std::make_unique<LstmLayer>(in, hidden_dim, rng));
    RegisterModule("layer" + std::to_string(l), layers_.back().get());
  }
}

std::vector<VarId> Lstm::Forward(Tape* tape, const std::vector<VarId>& xs,
                                 std::vector<LstmState>* states) const {
  assert(!xs.empty());
  const int batch = tape->value(xs[0]).rows();
  if (states->empty()) {
    for (const auto& layer : layers_) {
      states->push_back(layer->InitialState(tape, batch));
    }
  }
  assert(states->size() == layers_.size());
  std::vector<VarId> outputs;
  outputs.reserve(xs.size());
  for (VarId x : xs) {
    VarId inp = x;
    for (size_t l = 0; l < layers_.size(); ++l) {
      (*states)[l] = layers_[l]->Step(tape, inp, (*states)[l]);
      inp = (*states)[l].h;
    }
    outputs.push_back(inp);
  }
  return outputs;
}

const float* Lstm::StepRaw(const float* x, LstmDecodeState* state,
                           Workspace* ws) const {
  const int h = hidden_dim_;
  if (state->h.empty()) {
    state->h.assign(layers_.size(), std::vector<float>(h, 0.0f));
    state->c.assign(layers_.size(), std::vector<float>(h, 0.0f));
  }
  assert(state->h.size() == layers_.size());
  float* gates = ws->Alloc(static_cast<size_t>(4) * h);
  const float* inp = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l]->StepRaw(inp, state->h[l].data(), state->c[l].data(), gates);
    inp = state->h[l].data();
  }
  return inp;
}

void Lstm::StepRawBatched(int m, const float* x, float* const* state_rows,
                          float* h_top, Workspace* ws) const {
  assert(m >= 1);
  const int h = hidden_dim_;
  const size_t row = static_cast<size_t>(h);
  float* gates = ws->Alloc(static_cast<size_t>(m) * 4 * h);
  float* h_in = ws->Alloc(static_cast<size_t>(m) * h);
  const float* inp = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const size_t h_off = 2 * row * l;
    // The recurrent GEMM needs the pre-step hidden rows contiguous;
    // the cell update then overwrites them in their pooled slots.
    for (int i = 0; i < m; ++i) {
      std::memcpy(h_in + row * i, state_rows[i] + h_off,
                  row * sizeof(float));
    }
    layers_[l]->StepRawBatched(m, inp, h_in, state_rows, h_off, gates);
    for (int i = 0; i < m; ++i) {
      std::memcpy(h_top + row * i, state_rows[i] + h_off,
                  row * sizeof(float));
    }
    inp = h_top;
  }
}

TransformerBlock::TransformerBlock(int dim, int num_heads, float dropout,
                                   Rng* rng)
    : dim_(dim),
      heads_(num_heads),
      dropout_(dropout),
      ln1_(dim),
      qkv_(dim, 3 * dim, rng),
      attn_proj_(dim, dim, rng),
      ln2_(dim),
      mlp_fc_(dim, 4 * dim, rng),
      mlp_proj_(4 * dim, dim, rng) {
  assert(dim % num_heads == 0);
  RegisterModule("ln1", &ln1_);
  RegisterModule("qkv", &qkv_);
  RegisterModule("attn_proj", &attn_proj_);
  RegisterModule("ln2", &ln2_);
  RegisterModule("mlp_fc", &mlp_fc_);
  RegisterModule("mlp_proj", &mlp_proj_);
}

VarId TransformerBlock::Forward(Tape* tape, VarId x, int batch, int seq,
                                Rng* rng, bool training) const {
  // Attention sub-block with residual.
  VarId normed = ln1_.Forward(tape, x);
  VarId qkv = qkv_.Forward(tape, normed);
  VarId q = tape->SliceCols(qkv, 0, dim_);
  VarId k = tape->SliceCols(qkv, dim_, 2 * dim_);
  VarId v = tape->SliceCols(qkv, 2 * dim_, 3 * dim_);
  VarId attn = tape->CausalSelfAttention(q, k, v, batch, seq, heads_);
  attn = attn_proj_.Forward(tape, attn);
  attn = tape->Dropout(attn, dropout_, rng, training);
  x = tape->Add(x, attn);

  // MLP sub-block with residual.
  VarId mlp = ln2_.Forward(tape, x);
  mlp = mlp_fc_.Forward(tape, mlp);
  mlp = tape->Gelu(mlp);
  mlp = mlp_proj_.Forward(tape, mlp);
  mlp = tape->Dropout(mlp, dropout_, rng, training);
  return tape->Add(x, mlp);
}

Tensor TransformerBlock::ForwardRaw(const Tensor& x, int seq) const {
  assert(x.rows() == seq);
  const int dh = dim_ / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::ptrdiff_t qkv_stride = 3 * dim_;

  Tensor normed({seq, dim_});
  for (int t = 0; t < seq; ++t) {
    ln1_.ForwardRawRow(x.data() + static_cast<size_t>(t) * dim_,
                       normed.data() + static_cast<size_t>(t) * dim_);
  }
  Tensor qkv({seq, 3 * dim_});
  qkv_.ForwardRawTo(seq, normed.data(), qkv.data());

  // Heads write disjoint column ranges of attn_out; each runs its own
  // causal row sweep over the shared qkv buffer.
  Tensor attn_out({seq, dim_});
  ParallelFor(heads_, [&](int h) {
    std::vector<float> scores(seq);
    const int q0 = h * dh;
    const int k0 = dim_ + h * dh;
    const int v0 = 2 * dim_ + h * dh;
    for (int t = 0; t < seq; ++t) {
      kernels::AttendRow(
          qkv.data() + static_cast<size_t>(t) * qkv_stride + q0,
          qkv.data() + k0, qkv_stride, qkv.data() + v0, qkv_stride, t + 1,
          dh, scale, scores.data(),
          attn_out.data() + static_cast<size_t>(t) * dim_ + q0);
    }
  });

  Tensor y({seq, dim_});
  attn_proj_.ForwardRawTo(seq, attn_out.data(), y.data());
  for (size_t i = 0; i < y.numel(); ++i) y[i] = x[i] + y[i];

  Tensor normed2({seq, dim_});
  for (int t = 0; t < seq; ++t) {
    ln2_.ForwardRawRow(y.data() + static_cast<size_t>(t) * dim_,
                       normed2.data() + static_cast<size_t>(t) * dim_);
  }
  Tensor fc({seq, 4 * dim_});
  mlp_fc_.ForwardRawTo(seq, normed2.data(), fc.data());
  kernels::GeluRow(static_cast<int>(fc.numel()), fc.data(), fc.data());
  Tensor mlp({seq, dim_});
  mlp_proj_.ForwardRawTo(seq, fc.data(), mlp.data());
  for (size_t i = 0; i < y.numel(); ++i) y[i] = y[i] + mlp[i];
  return y;
}

void TransformerBlock::StepRaw(const float* x, float* out, Tensor* k_cache,
                               Tensor* v_cache, int pos,
                               Workspace* ws) const {
  assert(pos < k_cache->rows());
  const int dh = dim_ / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const int capacity = k_cache->rows();

  float* normed = ws->Alloc(dim_);
  ln1_.ForwardRawRow(x, normed);
  float* qkv = ws->Alloc(static_cast<size_t>(3) * dim_);
  qkv_.ForwardRawTo(1, normed, qkv);

  // Store this position's key/value.
  float* krow = k_cache->data() + static_cast<size_t>(pos) * dim_;
  float* vrow = v_cache->data() + static_cast<size_t>(pos) * dim_;
  for (int j = 0; j < dim_; ++j) {
    krow[j] = qkv[static_cast<size_t>(dim_) + j];
    vrow[j] = qkv[static_cast<size_t>(2 * dim_) + j];
  }

  float* attn_out = ws->Alloc(dim_);
  // Scores scratch is capacity-sized (not pos-sized) so the arena's
  // high-water mark stabilizes after the first step — the zero-alloc
  // decode guarantee depends on this.
  float* scores = ws->Alloc(static_cast<size_t>(heads_) * capacity);
  ParallelFor(heads_, [&](int h) {
    const int c0 = h * dh;
    kernels::AttendRow(qkv + c0, k_cache->data() + c0, dim_,
                       v_cache->data() + c0, dim_, pos + 1, dh, scale,
                       scores + static_cast<size_t>(h) * capacity,
                       attn_out + c0);
  });

  float* y = ws->Alloc(dim_);
  attn_proj_.ForwardRawTo(1, attn_out, y);
  for (int j = 0; j < dim_; ++j) y[j] = x[j] + y[j];

  float* normed2 = ws->Alloc(dim_);
  ln2_.ForwardRawRow(y, normed2);
  float* fc = ws->Alloc(static_cast<size_t>(4) * dim_);
  mlp_fc_.ForwardRawTo(1, normed2, fc);
  kernels::GeluRow(4 * dim_, fc, fc);
  float* mlp = ws->Alloc(dim_);
  mlp_proj_.ForwardRawTo(1, fc, mlp);
  for (int j = 0; j < dim_; ++j) out[j] = y[j] + mlp[j];
}

void TransformerBlock::StepRawBatched(int m, const float* x, float* out,
                                      float* const* k_rows,
                                      float* const* v_rows,
                                      const int* positions, int capacity,
                                      Workspace* ws) const {
  assert(m >= 1);
  const int dh = dim_ / heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const size_t d = static_cast<size_t>(dim_);
  const size_t md = static_cast<size_t>(m) * d;

  float* normed = ws->Alloc(md);
  for (int i = 0; i < m; ++i) {
    ln1_.ForwardRawRow(x + d * i, normed + d * i);
  }
  float* qkv = ws->Alloc(3 * md);
  qkv_.ForwardRawTo(m, normed, qkv);

  // Each row's new key/value lands at that row's own cache position.
  for (int i = 0; i < m; ++i) {
    assert(positions[i] >= 0 && positions[i] < capacity);
    const float* q = qkv + 3 * d * i;
    float* krow = k_rows[i] + d * positions[i];
    float* vrow = v_rows[i] + d * positions[i];
    for (int j = 0; j < dim_; ++j) {
      krow[j] = q[d + j];
      vrow[j] = q[2 * d + j];
    }
  }

  float* attn_out = ws->Alloc(md);
  // One capacity-sized scores lane per (row, head) work item, so the
  // arena high-water mark is independent of the ragged cache lengths.
  float* scores =
      ws->Alloc(static_cast<size_t>(m) * heads_ * capacity);
  ParallelFor(m * heads_, [&](int idx) {
    const int i = idx / heads_;
    const int h = idx % heads_;
    const int c0 = h * dh;
    kernels::AttendRow(qkv + 3 * d * i + c0, k_rows[i] + c0, dim_,
                       v_rows[i] + c0, dim_, positions[i] + 1, dh, scale,
                       scores + static_cast<size_t>(idx) * capacity,
                       attn_out + d * i + c0);
  });

  float* y = ws->Alloc(md);
  attn_proj_.ForwardRawTo(m, attn_out, y);
  for (size_t j = 0; j < md; ++j) y[j] = x[j] + y[j];

  float* normed2 = ws->Alloc(md);
  for (int i = 0; i < m; ++i) {
    ln2_.ForwardRawRow(y + d * i, normed2 + d * i);
  }
  float* fc = ws->Alloc(4 * md);
  mlp_fc_.ForwardRawTo(m, normed2, fc);
  kernels::GeluRow(4 * dim_ * m, fc, fc);
  float* mlp = ws->Alloc(md);
  mlp_proj_.ForwardRawTo(m, fc, mlp);
  for (size_t j = 0; j < md; ++j) out[j] = y[j] + mlp[j];
}

Tensor TransformerBlock::StepRaw(const Tensor& x_row, Tensor* k_cache,
                                 Tensor* v_cache, int pos) const {
  assert(x_row.rows() == 1 && x_row.cols() == dim_);
  Workspace ws;
  Tensor out({1, dim_});
  StepRaw(x_row.data(), out.data(), k_cache, v_cache, pos, &ws);
  return out;
}

}  // namespace rt
