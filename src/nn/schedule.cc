#include "nn/schedule.h"

#include <algorithm>
#include <cmath>

namespace rt {

float LrSchedule::At(long long step) const {
  if (kind == ScheduleKind::kConstant) return base_lr;
  if (warmup_steps > 0 && step < warmup_steps) {
    return base_lr * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps);
  }
  const long long decay_total = std::max<long long>(
      1, total_steps - warmup_steps);
  const long long decay_step =
      std::min(std::max<long long>(0, step - warmup_steps), decay_total);
  const float progress =
      static_cast<float>(decay_step) / static_cast<float>(decay_total);
  if (kind == ScheduleKind::kWarmupLinear) {
    return min_lr + (base_lr - min_lr) * (1.0f - progress);
  }
  // Cosine.
  const float cosine = 0.5f * (1.0f + std::cos(progress * 3.14159265f));
  return min_lr + (base_lr - min_lr) * cosine;
}

}  // namespace rt
