#include "nn/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "tensor/quant.h"
#include "util/crc32.h"
#include "util/fault_injection.h"

namespace rt {
namespace {

/// v2 appends a CRC-32 of the payload; v1 files (no checksum) still load.
/// v3 keeps the CRC trailer and adds a per-parameter dtype tag so 2D
/// weights can be stored as per-channel int8 (scales + int8 payload).
constexpr char kMagic[] = "RTCKPT02";
constexpr char kMagicV1[] = "RTCKPT01";
constexpr char kMagicV3[] = "RTCKPT03";
constexpr size_t kMagicLen = 8;

/// Per-parameter dtype tags in the v3 format.
constexpr uint8_t kDtypeF32 = 0;
constexpr uint8_t kDtypeInt8PerColumn = 1;

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Bounds-checked cursor over the in-memory payload. Parsing straight
/// from the single buffer keeps load at one transient copy of the
/// checkpoint (the old substr + istringstream route held three).
class ByteReader {
 public:
  ByteReader(const char* data, size_t size)
      : p_(data), end_(data + size) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  bool ReadRaw(void* out, size_t n) {
    if (n > remaining()) return false;
    std::memcpy(out, p_, n);
    p_ += n;
    return true;
  }

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (len > remaining()) return false;  // reject bogus lengths early
    s->assign(p_, len);
    p_ += len;
    return true;
  }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace

Status SaveCheckpoint(Module* module, const CheckpointMetadata& metadata,
                      const std::string& path, const SaveOptions& options) {
  // The payload is assembled in memory so the CRC covers exactly the
  // bytes that land on disk between the magic and the trailer.
  std::ostringstream payload;
  WriteU32(payload, static_cast<uint32_t>(metadata.size()));
  for (const auto& [key, value] : metadata) {
    WriteString(payload, key);
    WriteF64(payload, value);
  }
  auto named = module->NamedParameters();
  WriteU32(payload, static_cast<uint32_t>(named.size()));
  for (const auto& [name, param] : named) {
    WriteString(payload, name);
    const auto& shape = param->value.shape();
    WriteU32(payload, static_cast<uint32_t>(shape.size()));
    for (int d : shape) WriteU32(payload, static_cast<uint32_t>(d));
    const bool quantize =
        options.quantize_int8 && shape.size() == 2 && shape[0] > 0 &&
        shape[1] > 0;
    if (options.quantize_int8) {
      const uint8_t dtype = quantize ? kDtypeInt8PerColumn : kDtypeF32;
      payload.write(reinterpret_cast<const char*>(&dtype), 1);
    }
    if (quantize) {
      const int rows = shape[0];
      const int cols = shape[1];
      std::vector<int8_t> q(param->value.numel());
      std::vector<float> scales(cols);
      if (!quant::QuantizePerColumn(param->value.data(), rows, cols,
                                    q.data(), scales.data())) {
        return Status::InvalidArgument(
            "non-finite values in parameter " + name +
            "; refusing to quantize");
      }
      payload.write(reinterpret_cast<const char*>(scales.data()),
                    static_cast<std::streamsize>(scales.size() *
                                                 sizeof(float)));
      payload.write(reinterpret_cast<const char*>(q.data()),
                    static_cast<std::streamsize>(q.size()));
    } else {
      payload.write(reinterpret_cast<const char*>(param->value.data()),
                    static_cast<std::streamsize>(param->value.numel() *
                                                 sizeof(float)));
    }
  }

  std::string bytes = payload.str();
  const uint32_t crc = Crc32(bytes);
  std::string file_bytes(options.quantize_int8 ? kMagicV3 : kMagic,
                         kMagicLen);
  file_bytes += bytes;
  file_bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));

  // Fault point for the torn-write tests: drop the tail of the file the
  // way a crash or full disk would, after the CRC was computed.
  if (auto fired = FaultInjector::Instance().Hit("ckpt.truncate")) {
    const size_t chop =
        static_cast<size_t>(fired->amount > 0 ? fired->amount : 4);
    if (chop >= file_bytes.size()) {
      file_bytes.clear();
    } else {
      file_bytes.resize(file_bytes.size() - chop);
    }
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: " + tmp);
    out.write(file_bytes.data(),
              static_cast<std::streamsize>(file_bytes.size()));
    if (!out) return Status::IoError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Status LoadCheckpoint(Module* module, const std::string& path,
                      CheckpointMetadata* metadata) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::IoError("cannot open for read: " + path);
  const std::streamoff file_size = file.tellg();
  file.seekg(0);
  if (file_size < static_cast<std::streamoff>(kMagicLen)) {
    return Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  char magic[kMagicLen];
  if (!file.read(magic, kMagicLen)) {
    return Status::IoError("read failed: " + path);
  }
  const bool v3 = std::memcmp(magic, kMagicV3, kMagicLen) == 0;
  const bool v2 = std::memcmp(magic, kMagic, kMagicLen) == 0 || v3;
  const bool v1 = std::memcmp(magic, kMagicV1, kMagicLen) == 0;
  if (!v2 && !v1) {
    return Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  // v2/v3: the last four bytes are a CRC-32 of everything in between.
  // Only the payload itself is held in memory — the magic and trailer
  // are read around it, so load peaks at one copy of the checkpoint.
  if (v2 && file_size < static_cast<std::streamoff>(kMagicLen +
                                                    sizeof(uint32_t))) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  const size_t payload_size =
      static_cast<size_t>(file_size) - kMagicLen -
      (v2 ? sizeof(uint32_t) : 0);
  std::string payload(payload_size, '\0');
  if (payload_size > 0 &&
      !file.read(payload.data(),
                 static_cast<std::streamsize>(payload_size))) {
    return Status::IoError("read failed: " + path);
  }
  if (v2) {
    uint32_t stored = 0;
    if (!file.read(reinterpret_cast<char*>(&stored), sizeof(stored))) {
      return Status::IoError("truncated checkpoint: " + path);
    }
    if (Crc32(payload) != stored) {
      return Status::IoError(
          "checkpoint CRC mismatch (corrupt or truncated): " + path);
    }
  }
  ByteReader in(payload.data(), payload.size());

  uint32_t meta_count = 0;
  if (!in.ReadU32(&meta_count)) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  CheckpointMetadata meta;
  for (uint32_t i = 0; i < meta_count; ++i) {
    std::string key;
    double value = 0.0;
    if (!in.ReadString(&key) || !in.ReadF64(&value)) {
      return Status::IoError("truncated metadata: " + path);
    }
    meta[key] = value;
  }

  auto named = module->NamedParameters();
  std::map<std::string, Parameter*> by_name;
  for (auto& [name, param] : named) by_name[name] = param;

  uint32_t param_count = 0;
  if (!in.ReadU32(&param_count)) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  if (param_count != named.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " +
        std::to_string(param_count) + ", module has " +
        std::to_string(named.size()));
  }
  size_t loaded = 0;
  for (uint32_t i = 0; i < param_count; ++i) {
    std::string name;
    if (!in.ReadString(&name)) {
      return Status::IoError("truncated parameter name: " + path);
    }
    uint32_t ndim = 0;
    if (!in.ReadU32(&ndim)) {
      return Status::IoError("truncated shape: " + path);
    }
    std::vector<int> shape(ndim);
    for (uint32_t d = 0; d < ndim; ++d) {
      uint32_t dim = 0;
      if (!in.ReadU32(&dim)) {
        return Status::IoError("truncated shape: " + path);
      }
      shape[d] = static_cast<int>(dim);
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("unknown parameter in checkpoint: " + name);
    }
    Parameter* param = it->second;
    if (param->value.shape() != shape) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    uint8_t dtype = kDtypeF32;
    if (v3 && !in.ReadRaw(&dtype, 1)) {
      return Status::IoError("truncated dtype tag: " + path);
    }
    if (dtype == kDtypeF32) {
      if (!in.ReadRaw(param->value.data(),
                      param->value.numel() * sizeof(float))) {
        return Status::IoError("truncated tensor data: " + path);
      }
    } else if (dtype == kDtypeInt8PerColumn) {
      if (shape.size() != 2) {
        return Status::InvalidArgument(
            "int8 payload for non-2D parameter " + name + ": " + path);
      }
      const int rows = shape[0];
      const int cols = shape[1];
      std::vector<float> scales(cols);
      std::vector<int8_t> q(param->value.numel());
      if (!in.ReadRaw(scales.data(), scales.size() * sizeof(float)) ||
          !in.ReadRaw(q.data(), q.size())) {
        return Status::IoError("truncated tensor data: " + path);
      }
      quant::DequantizePerColumn(q.data(), rows, cols, scales.data(),
                                 param->value.data());
    } else {
      return Status::InvalidArgument(
          "unknown dtype tag " + std::to_string(dtype) + " for " + name +
          ": " + path);
    }
    param->MarkUpdated();
    ++loaded;
  }
  if (loaded != named.size()) {
    return Status::InvalidArgument("checkpoint missing parameters");
  }
  if (metadata != nullptr) *metadata = std::move(meta);
  return Status::OK();
}

}  // namespace rt
