#include "nn/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

namespace rt {
namespace {

constexpr char kMagic[] = "RTCKPT01";
constexpr size_t kMagicLen = 8;

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ofstream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ofstream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadF64(std::ifstream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(in, &len)) return false;
  s->resize(len);
  in.read(s->data(), len);
  return in.good();
}

}  // namespace

Status SaveCheckpoint(Module* module, const CheckpointMetadata& metadata,
                      const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: " + tmp);
    out.write(kMagic, kMagicLen);

    WriteU32(out, static_cast<uint32_t>(metadata.size()));
    for (const auto& [key, value] : metadata) {
      WriteString(out, key);
      WriteF64(out, value);
    }

    auto named = module->NamedParameters();
    WriteU32(out, static_cast<uint32_t>(named.size()));
    for (const auto& [name, param] : named) {
      WriteString(out, name);
      const auto& shape = param->value.shape();
      WriteU32(out, static_cast<uint32_t>(shape.size()));
      for (int d : shape) WriteU32(out, static_cast<uint32_t>(d));
      out.write(reinterpret_cast<const char*>(param->value.data()),
                static_cast<std::streamsize>(param->value.numel() *
                                             sizeof(float)));
    }
    if (!out) return Status::IoError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

Status LoadCheckpoint(Module* module, const std::string& path,
                      CheckpointMetadata* metadata) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  if (!in.good() || std::string(magic, kMagicLen) != kMagic) {
    return Status::InvalidArgument("bad checkpoint magic: " + path);
  }

  uint32_t meta_count = 0;
  if (!ReadU32(in, &meta_count)) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  CheckpointMetadata meta;
  for (uint32_t i = 0; i < meta_count; ++i) {
    std::string key;
    double value = 0.0;
    if (!ReadString(in, &key) || !ReadF64(in, &value)) {
      return Status::IoError("truncated metadata: " + path);
    }
    meta[key] = value;
  }

  auto named = module->NamedParameters();
  std::map<std::string, Parameter*> by_name;
  for (auto& [name, param] : named) by_name[name] = param;

  uint32_t param_count = 0;
  if (!ReadU32(in, &param_count)) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  if (param_count != named.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " +
        std::to_string(param_count) + ", module has " +
        std::to_string(named.size()));
  }
  size_t loaded = 0;
  for (uint32_t i = 0; i < param_count; ++i) {
    std::string name;
    if (!ReadString(in, &name)) {
      return Status::IoError("truncated parameter name: " + path);
    }
    uint32_t ndim = 0;
    if (!ReadU32(in, &ndim)) {
      return Status::IoError("truncated shape: " + path);
    }
    std::vector<int> shape(ndim);
    for (uint32_t d = 0; d < ndim; ++d) {
      uint32_t dim = 0;
      if (!ReadU32(in, &dim)) {
        return Status::IoError("truncated shape: " + path);
      }
      shape[d] = static_cast<int>(dim);
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("unknown parameter in checkpoint: " + name);
    }
    Parameter* param = it->second;
    if (param->value.shape() != shape) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    in.read(reinterpret_cast<char*>(param->value.data()),
            static_cast<std::streamsize>(param->value.numel() *
                                         sizeof(float)));
    if (!in.good()) {
      return Status::IoError("truncated tensor data: " + path);
    }
    ++loaded;
  }
  if (loaded != named.size()) {
    return Status::InvalidArgument("checkpoint missing parameters");
  }
  if (metadata != nullptr) *metadata = std::move(meta);
  return Status::OK();
}

}  // namespace rt
