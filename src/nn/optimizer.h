#ifndef RATATOUILLE_NN_OPTIMIZER_H_
#define RATATOUILLE_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"

namespace rt {

/// Base class for gradient-descent optimizers over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the current gradients.
  virtual void Step() = 0;

  /// Zeroes all gradients.
  void ZeroGrad() {
    for (Parameter* p : params_) p->ZeroGrad();
  }

  /// Overrides the learning rate (for schedules).
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// Number of Step() calls so far.
  long long step_count() const { return step_count_; }

 protected:
  std::vector<Parameter*> params_;
  float lr_ = 1e-3f;
  long long step_count_ = 0;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam / AdamW. With weight_decay > 0 the decay is decoupled (AdamW).
class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  Adam(std::vector<Parameter*> params, Options options);
  void Step() override;

 private:
  Options opts_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Parameter*>& params, float max_norm);

}  // namespace rt

#endif  // RATATOUILLE_NN_OPTIMIZER_H_
